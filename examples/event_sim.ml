(* Discrete-event simulation driven by a mound — the "discrete event
   simulation" use case from the paper's introduction.

   We simulate a small open queueing network: jobs arrive in a Poisson
   stream, pass through three exponential-service stations in series, and
   leave. The future-event list is a mound keyed by event time; the hot
   operations are exactly insert (schedule) and extract-min (next event).

   Run with: dune exec examples/event_sim.exe *)

module Event = struct
  (* time is in integer microseconds so the mound's ORDERED is exact *)
  type t = int * int * int (* time, station, job id *)

  let compare (t1, s1, j1) (t2, s2, j2) =
    match Int.compare t1 t2 with
    | 0 -> ( match Int.compare s1 s2 with 0 -> Int.compare j1 j2 | c -> c)
    | c -> c
end

module Fel = Mound.Seq.Make (Event)

let stations = 3

type station_state = {
  mutable busy_until : int;
  mutable jobs_served : int;
  mutable total_wait : int;
  service_mean : int;  (* microseconds *)
}

let exp_sample rng mean =
  (* inverse-CDF exponential, quantized to >= 1us *)
  let u = (float_of_int (Prng.int rng 1_000_000) +. 1.) /. 1_000_001. in
  max 1 (int_of_float (-.float_of_int mean *. log u))

let () =
  let rng = Prng.create 99L in
  let fel = Fel.create ~seed:7L () in
  let arrival_mean = 120 in
  let st =
    [|
      { busy_until = 0; jobs_served = 0; total_wait = 0; service_mean = 80 };
      { busy_until = 0; jobs_served = 0; total_wait = 0; service_mean = 95 };
      { busy_until = 0; jobs_served = 0; total_wait = 0; service_mean = 60 };
    |]
  in
  let jobs = 200_000 in
  (* schedule all external arrivals at station 0 *)
  let t = ref 0 in
  for j = 0 to jobs - 1 do
    t := !t + exp_sample rng arrival_mean;
    Fel.insert fel (!t, 0, j)
  done;
  let completed = ref 0 and horizon = ref 0 and events = ref 0 in
  let rec loop () =
    match Fel.extract_min fel with
    | None -> ()
    | Some (now, s, j) ->
        incr events;
        horizon := max !horizon now;
        let station = st.(s) in
        let start = max now station.busy_until in
        let finish = start + exp_sample rng station.service_mean in
        station.busy_until <- finish;
        station.jobs_served <- station.jobs_served + 1;
        station.total_wait <- station.total_wait + (start - now);
        if s + 1 < stations then Fel.insert fel (finish, s + 1, j)
        else incr completed;
        loop ()
  in
  let t0 = Unix.gettimeofday () in
  loop ();
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "simulated %d jobs through %d stations: %d events in %.2fs (%.0f events/s)\n"
    jobs stations !events dt (float_of_int !events /. dt);
  Array.iteri
    (fun i s ->
      Printf.printf
        "  station %d: served %d, mean queueing wait %.1f us (utilization-ish %.2f)\n"
        i s.jobs_served
        (float_of_int s.total_wait /. float_of_int (max 1 s.jobs_served))
        (float_of_int (s.service_mean * s.jobs_served) /. float_of_int (max 1 !horizon)))
    st;
  assert (!completed = jobs);
  Printf.printf "all %d jobs completed; final event time %.3fs of simulated time\n"
    !completed (float_of_int !horizon /. 1e6)
