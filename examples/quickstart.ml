(* Quickstart: a tour of the mound API.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The lock-free mound on real domains, with integer priorities. *)
  let module M = Mound.Lf_int in
  let q = M.create () in
  List.iter (M.insert q) [ 42; 7; 99; 7; 13 ];
  assert (M.extract_min q = Some 7);
  assert (M.extract_min q = Some 7);
  (* duplicates are fine *)
  Printf.printf "lock-free mound: next minimum is %d\n"
    (Option.get (M.extract_min q));

  (* 2. Concurrent use: domains share the queue with no further setup. *)
  let q = M.create () in
  let producers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 9_999 do
              M.insert q ((i * 4) + d)
            done))
  in
  List.iter Domain.join producers;
  Printf.printf "after 4 producers: size=%d min=%d depth=%d\n" (M.size q)
    (Option.get (M.peek_min q))
    (M.depth q);

  (* 3. extract_many takes a whole sorted batch in one atomic step —
     the paper's prioritized-work-stealing primitive. *)
  let batch = M.extract_many q in
  Printf.printf "extract_many returned a sorted batch of %d: %s...\n"
    (List.length batch)
    (String.concat "," (List.map string_of_int (List.filteri (fun i _ -> i < 5) batch)));

  (* 3b. insert_many is the dual: a sorted batch goes back in one atomic
     splice when a suitable node exists (unconsumed work, say). *)
  M.insert_many q (List.filteri (fun i _ -> i >= 5) batch);
  Printf.printf "returned the unprocessed tail of the batch; size=%d\n"
    (M.size q);

  (* 4. extract_approx trades exactness for lower contention: the result
     is the minimum of a random shallow sub-mound. *)
  (match M.extract_approx q with
  | Some v -> Printf.printf "extract_approx returned %d (near-minimal)\n" v
  | None -> ());

  (* 5. The fine-grained-locking variant has the same interface and lower
     single-operation latency; the sequential variant adds determinism. *)
  let module L = Mound.Lock_int in
  let lq = L.create () in
  List.iter (L.insert lq) [ 3; 1; 2 ];
  assert (L.extract_min lq = Some 1);

  let module S = Mound.Seq_int in
  let sq = S.create ~seed:42L () in
  List.iter (S.insert sq) [ 3; 1; 2 ];
  assert (S.extract_min sq = Some 1);

  (* 6. Any totally ordered type works through the functors. *)
  let module Str_ord = struct
    type t = string

    let compare = String.compare
  end in
  let module SM = Mound.Lf.Make (Runtime.Real) (Str_ord) in
  let names = SM.create () in
  List.iter (SM.insert names) [ "pear"; "apple"; "quince" ];
  Printf.printf "string mound: %s comes first\n"
    (Option.get (SM.extract_min names));

  (* 7. Structure statistics — the instrumentation behind the paper's
     Tables I-IV. *)
  let sq = S.create ~seed:7L () in
  for _ = 1 to 100_000 do
    S.insert sq (Random.int 1_000_000)
  done;
  let stats =
    Mound.Stats.compute
      ~iter:(fun f -> S.fold_nodes sq (fun () i l -> f i l) ())
      ~to_float:float_of_int ()
  in
  Printf.printf "100k inserts: depth=%d, longest list=%d, elements=%d\n"
    stats.depth
    (Mound.Stats.longest_list stats)
    (Mound.Stats.total_elements stats);
  print_endline "quickstart: all assertions passed"
