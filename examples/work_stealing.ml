(* Prioritized work distribution with extract_many — the novel mound use
   the paper's §V proposes ("This technique can be used to implement
   prioritized work stealing").

   A shared lock-free mound holds tasks keyed by priority. Workers grab a
   whole sorted batch per visit with extract_many instead of contending
   once per task; tasks can spawn higher-priority follow-up work, which
   goes back into the mound. We report the batching factor (tasks per
   shared-queue visit) and check that every task ran exactly once and
   that batches are locally priority-sorted.

   Run with: dune exec examples/work_stealing.exe *)

module M = Mound.Lf_int

let workers = 4
let initial_tasks = 40_000
let spawn_per_task = 2 (* first-generation tasks spawn children *)

let () =
  let q = M.create () in
  let rng = Prng.create 5L in
  (* Priorities: generation-0 tasks are "cheap" (high numbers); children
     are urgent (low numbers). Encode task id in the low bits so every
     task is unique: priority = key * 2^26 + id. *)
  let encode ~key ~id = (key lsl 26) lor id in
  let decode_id p = p land ((1 lsl 26) - 1) in
  let next_id = Atomic.make 0 in
  for _ = 1 to initial_tasks do
    let id = Atomic.fetch_and_add next_id 1 in
    M.insert q (encode ~key:(512 + Prng.int rng 512) ~id)
  done;
  let executed = Array.make (initial_tasks * (1 + spawn_per_task)) 0 in
  let visits = Array.make workers 0 in
  let grabbed = Array.make workers 0 in
  let unsorted_batches = Atomic.make 0 in
  let remaining = Atomic.make initial_tasks in
  let run_worker w =
    let wrng = Prng.for_thread ~seed:77L ~id:w in
    (* [remaining] only reaches 0 once every task (including ones sitting
       in another worker's batch) has been processed, because children are
       registered before their parent's decrement. *)
    let rec loop () =
      if Atomic.get remaining > 0 then begin
        match M.extract_many q with
        | [] ->
            Domain.cpu_relax ();
            loop ()
        | batch ->
            visits.(w) <- visits.(w) + 1;
            grabbed.(w) <- grabbed.(w) + List.length batch;
            if batch <> List.sort compare batch then
              Atomic.incr unsorted_batches;
            List.iter
              (fun p ->
                let id = decode_id p in
                executed.(id) <- executed.(id) + 1;
                (* generation-0 tasks spawn urgent children *)
                if p lsr 26 >= 512 then begin
                  for _ = 1 to spawn_per_task do
                    let cid = Atomic.fetch_and_add next_id 1 in
                    M.insert q (encode ~key:(Prng.int wrng 256) ~id:cid)
                  done;
                  Atomic.fetch_and_add remaining spawn_per_task |> ignore
                end;
                Atomic.decr remaining)
              batch;
            loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  let doms = Array.init workers (fun w -> Domain.spawn (fun () -> run_worker w)) in
  Array.iter Domain.join doms;
  let dt = Unix.gettimeofday () -. t0 in
  let total_tasks = Atomic.get next_id in
  let ran_once = Array.for_all (fun c -> c <= 1) executed in
  let ran = Array.fold_left ( + ) 0 executed in
  let total_visits = Array.fold_left ( + ) 0 visits in
  Printf.printf "%d workers processed %d tasks (%d initial + spawned) in %.2fs\n"
    workers ran initial_tasks dt;
  Printf.printf "shared-queue visits: %d  => batching factor %.1f tasks/visit\n"
    total_visits
    (float_of_int ran /. float_of_int (max 1 total_visits));
  Array.iteri
    (fun w v ->
      Printf.printf "  worker %d: %d visits, %d tasks\n" w v grabbed.(w))
    visits;
  assert (ran = total_tasks);
  assert ran_once;
  assert (Atomic.get unsorted_batches = 0);
  print_endline
    "every task ran exactly once; every batch came out priority-sorted"
