(* A* grid pathfinding with a mound as the open list — the paper's
   "artificial intelligence (A* search)" motivating workload.

   We search a randomly generated obstacle grid with the Manhattan
   heuristic (admissible and consistent), using (f, g, cell) entries so
   ties break toward deeper nodes. The returned path length is verified
   against a plain breadth-first search (unit edge costs make BFS exact).

   Run with: dune exec examples/astar.exe *)

module Entry = struct
  type t = int * int * int (* f = g + h, -g (prefer larger g), cell id *)

  let compare = compare
end

module Open_list = Mound.Seq.Make (Entry)

let width = 600
let height = 400

let make_grid ~seed ~obstacle_pct =
  let rng = Prng.create seed in
  Array.init (width * height) (fun i ->
      if i = 0 || i = (width * height) - 1 then false
      else Prng.int rng 100 < obstacle_pct)

let neighbours cell =
  let x = cell mod width and y = cell / width in
  List.filter_map
    (fun (dx, dy) ->
      let nx = x + dx and ny = y + dy in
      if nx >= 0 && nx < width && ny >= 0 && ny < height then
        Some ((ny * width) + nx)
      else None)
    [ (1, 0); (-1, 0); (0, 1); (0, -1) ]

let manhattan cell goal =
  let x = cell mod width and y = cell / width in
  let gx = goal mod width and gy = goal / width in
  abs (x - gx) + abs (y - gy)

let astar blocked ~start ~goal =
  let dist = Array.make (width * height) max_int in
  let open_list = Open_list.create ~seed:4L () in
  dist.(start) <- 0;
  Open_list.insert open_list (manhattan start goal, 0, start);
  let expanded = ref 0 in
  let rec loop () =
    match Open_list.extract_min open_list with
    | None -> None
    | Some (_, neg_g, cell) ->
        let g = -neg_g in
        if cell = goal then Some g
        else if g > dist.(cell) then loop () (* stale entry *)
        else begin
          incr expanded;
          List.iter
            (fun n ->
              if (not blocked.(n)) && g + 1 < dist.(n) then begin
                dist.(n) <- g + 1;
                Open_list.insert open_list
                  (g + 1 + manhattan n goal, -(g + 1), n)
              end)
            (neighbours cell);
          loop ()
        end
  in
  let result = loop () in
  (result, !expanded)

(* Reference: plain BFS (exact for unit costs). *)
let bfs blocked ~start ~goal =
  let dist = Array.make (width * height) max_int in
  let queue = Queue.create () in
  dist.(start) <- 0;
  Queue.add start queue;
  let rec loop () =
    if Queue.is_empty queue then None
    else
      let cell = Queue.pop queue in
      if cell = goal then Some dist.(cell)
      else begin
        List.iter
          (fun n ->
            if (not blocked.(n)) && dist.(n) = max_int then begin
              dist.(n) <- dist.(cell) + 1;
              Queue.add n queue
            end)
          (neighbours cell);
        loop ()
      end
  in
  loop ()

let () =
  let blocked = make_grid ~seed:2026L ~obstacle_pct:30 in
  let start = 0 and goal = (width * height) - 1 in
  let t0 = Unix.gettimeofday () in
  let astar_len, expanded = astar blocked ~start ~goal in
  let t_astar = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let bfs_len = bfs blocked ~start ~goal in
  let t_bfs = Unix.gettimeofday () -. t0 in
  assert (astar_len = bfs_len);
  (match astar_len with
  | Some len ->
      Printf.printf
        "astar on %dx%d grid (30%% obstacles): path length %d, expanded %d/%d cells\n"
        width height len expanded (width * height)
  | None -> Printf.printf "astar: goal unreachable (verified by BFS)\n");
  Printf.printf "astar %.3fs (mound open list)  bfs %.3fs  (answers agree)\n"
    t_astar t_bfs
