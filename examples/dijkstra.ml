(* Dijkstra single-source shortest paths with a mound as the priority
   queue — the classic workload the paper's introduction motivates.

   The mound has no decrease-key, so we use the standard lazy-deletion
   formulation: re-insert a vertex whenever its tentative distance
   improves and skip stale entries on extraction. Entries are (distance,
   vertex) pairs ordered lexicographically. The result is checked against
   a simple reference implementation on a binary heap.

   Run with: dune exec examples/dijkstra.exe *)

module Entry = struct
  type t = int * int (* distance, vertex *)

  let compare (d1, v1) (d2, v2) =
    match Int.compare d1 d2 with 0 -> Int.compare v1 v2 | c -> c
end

module Pq = Mound.Seq.Make (Entry)

type graph = (int * int) list array (* adjacency: (neighbor, weight) *)

let random_graph ~vertices ~degree ~max_weight ~seed =
  let rng = Prng.create seed in
  Array.init vertices (fun _ ->
      List.init degree (fun _ ->
          (Prng.int rng vertices, 1 + Prng.int rng max_weight)))

let dijkstra_mound (g : graph) src =
  let n = Array.length g in
  let dist = Array.make n max_int in
  let q = Pq.create ~seed:11L () in
  dist.(src) <- 0;
  Pq.insert q (0, src);
  let rec loop () =
    match Pq.extract_min q with
    | None -> ()
    | Some (d, v) ->
        if d = dist.(v) then
          (* not stale: relax the out-edges *)
          List.iter
            (fun (w, len) ->
              let nd = d + len in
              if nd < dist.(w) then begin
                dist.(w) <- nd;
                Pq.insert q (nd, w)
              end)
            g.(v);
        loop ()
  in
  loop ();
  dist

(* Reference implementation on the baseline binary heap. *)
module Href = Baselines.Seq_heap.Make (Entry)

let dijkstra_ref (g : graph) src =
  let n = Array.length g in
  let dist = Array.make n max_int in
  let q = Href.create () in
  dist.(src) <- 0;
  Href.insert q (0, src);
  let rec loop () =
    match Href.extract_min q with
    | None -> ()
    | Some (d, v) ->
        if d = dist.(v) then
          List.iter
            (fun (w, len) ->
              let nd = d + len in
              if nd < dist.(w) then begin
                dist.(w) <- nd;
                Href.insert q (nd, w)
              end)
            g.(v);
        loop ()
  in
  loop ();
  dist

let () =
  let vertices = 50_000 and degree = 8 in
  let g = random_graph ~vertices ~degree ~max_weight:100 ~seed:2024L in
  let t0 = Unix.gettimeofday () in
  let dist = dijkstra_mound g 0 in
  let t_mound = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let dist_ref = dijkstra_ref g 0 in
  let t_heap = Unix.gettimeofday () -. t0 in
  assert (dist = dist_ref);
  let reached = Array.fold_left (fun a d -> if d < max_int then a + 1 else a) 0 dist in
  let far = Array.fold_left (fun a d -> if d < max_int then max a d else a) 0 dist in
  Printf.printf
    "dijkstra on %d vertices (degree %d): reached %d, eccentricity %d\n"
    vertices degree reached far;
  Printf.printf "mound: %.3fs   binary heap: %.3fs   (results identical)\n"
    t_mound t_heap
