(* Parallel best-first branch-and-bound (0/1 knapsack) on a shared
   lock-free mound.

   Subproblems are prioritized by an optimistic bound (fractional
   relaxation), so the mound acts as a concurrent best-first frontier.
   Workers take whole batches with extract_many — the paper's prioritized
   work distribution — and prune against a shared incumbent. The result
   is verified against a sequential dynamic-programming solution.

   Run with: dune exec examples/branch_bound.exe *)

let n_items = 30
let capacity = 800

let items ~seed =
  let rng = Prng.create seed in
  Array.init n_items (fun _ ->
      let weight = 20 + Prng.int rng 80 in
      let value = 10 + Prng.int rng 100 in
      (weight, value))

(* Exact reference by dynamic programming over capacities. *)
let dp_solve items =
  let best = Array.make (capacity + 1) 0 in
  Array.iter
    (fun (w, v) ->
      for c = capacity downto w do
        best.(c) <- max best.(c) (best.(c - w) + v)
      done)
    items;
  best.(capacity)

(* Optimistic bound: take remaining items greedily by density, allowing a
   fractional final item (items are pre-sorted by density). *)
let bound items ~idx ~weight ~value =
  let rec go i w acc =
    if i >= n_items then acc
    else
      let iw, iv = items.(i) in
      if w + iw <= capacity then go (i + 1) (w + iw) (acc + iv)
      else acc + (iv * (capacity - w) / iw)
  in
  go idx weight value

(* Frontier entries: priority = negated bound (mound is a min-queue), and
   the subproblem state packed alongside. *)
module Node = struct
  type t = int * (int * int * int) (* -bound, (idx, weight, value) *)

  let compare (a, _) (b, _) = compare a b
end

module Frontier = Mound.Lf.Make (Runtime.Real) (Node)

let () =
  let items = items ~seed:31L in
  Array.sort
    (fun (w1, v1) (w2, v2) -> compare (v2 * w1) (v1 * w2))
    items;
  let expected = dp_solve items in
  let frontier = Frontier.create () in
  let incumbent = Atomic.make 0 in
  let outstanding = Atomic.make 1 in
  let explored = Atomic.make 0 in
  Frontier.insert frontier (-bound items ~idx:0 ~weight:0 ~value:0, (0, 0, 0));
  let rec raise_incumbent v =
    let cur = Atomic.get incumbent in
    if v > cur && not (Atomic.compare_and_set incumbent cur v) then
      raise_incumbent v
  in
  let expand (neg_bound, (idx, weight, value)) =
    Atomic.incr explored;
    raise_incumbent value;
    if -neg_bound > Atomic.get incumbent && idx < n_items then begin
      let w, v = items.(idx) in
      (* branch 1: skip item idx *)
      let b_skip = bound items ~idx:(idx + 1) ~weight ~value in
      if b_skip > Atomic.get incumbent then begin
        Atomic.incr outstanding;
        Frontier.insert frontier (-b_skip, (idx + 1, weight, value))
      end;
      (* branch 2: take item idx if it fits *)
      if weight + w <= capacity then begin
        let b_take = bound items ~idx:(idx + 1) ~weight:(weight + w)
                       ~value:(value + v)
        in
        if b_take > Atomic.get incumbent then begin
          Atomic.incr outstanding;
          Frontier.insert frontier (-b_take, (idx + 1, weight + w, value + v))
        end
      end
    end
  in
  let worker () =
    (* [outstanding] counts queued-but-unfinished nodes: children are
       registered before their parent is marked done, so 0 means the
       whole tree is explored. *)
    let rec loop () =
      if Atomic.get outstanding > 0 then begin
        (match Frontier.extract_many frontier with
        | [] -> Domain.cpu_relax ()
        | batch ->
            List.iter
              (fun node ->
                expand node;
                Atomic.decr outstanding)
              batch);
        loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  let workers = Array.init 4 (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join workers;
  let dt = Unix.gettimeofday () -. t0 in
  let best = Atomic.get incumbent in
  Printf.printf
    "branch&bound knapsack (%d items, capacity %d): best value %d in %.3fs\n"
    n_items capacity best dt;
  Printf.printf "explored %d subproblems across 4 workers (DP reference: %d)\n"
    (Atomic.get explored) expected;
  assert (best = expected);
  print_endline "parallel best-first search agrees with dynamic programming"
