(* Shared test helpers: a sequential priority-queue model and qcheck
   generators, linked into every test executable. *)

(** Sorted-multiset model of an int priority queue. *)
module Pq_model = struct
  type t = int list ref (* ascending *)

  let create () = ref []

  let insert t v =
    let rec ins = function
      | [] -> [ v ]
      | x :: rest as l -> if v <= x then v :: l else x :: ins rest
    in
    t := ins !t

  let extract_min t =
    match !t with
    | [] -> None
    | x :: rest ->
        t := rest;
        Some x

  let peek_min t = match !t with [] -> None | x :: _ -> Some x

  let size t = List.length !t

  let to_list t = !t
end

(** Operations scripts for model-equivalence tests. *)
type op = Insert of int | Extract | Peek | Extract_many | Extract_approx

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun v -> Insert v) (int_bound 1000));
        (3, return Extract);
        (1, return Peek);
        (1, return Extract_many);
        (1, return Extract_approx);
      ])

let op_print = function
  | Insert v -> Printf.sprintf "Insert %d" v
  | Extract -> "Extract"
  | Peek -> "Peek"
  | Extract_many -> "ExtractMany"
  | Extract_approx -> "ExtractApprox"

let ops_arbitrary =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map op_print l))
    QCheck.Gen.(list_size (int_bound 400) op_gen)

(** Interface the model-equivalence checker drives. *)
type sut = {
  sut_insert : int -> unit;
  sut_extract_min : unit -> int option;
  sut_peek_min : unit -> int option;
  sut_extract_many : unit -> int list;
  sut_extract_approx : unit -> int option;
  sut_check : unit -> bool;
  sut_size : unit -> int;
}

(** Run a script against system-under-test and model simultaneously.
    [exact_min] distinguishes structures with exact extract-min semantics
    from approximate operations: extract-min results are compared to the
    model's minimum; extract_many must be a sorted prefix-multiset of the
    model; extract_approx must remove {e some} member. Returns false on
    the first divergence. *)
let agrees_with_model ?(trials = 1) (make_sut : unit -> sut) script =
  let run () =
    let sut = make_sut () in
    let model = Pq_model.create () in
    let ok = ref true in
    (* remove one occurrence of [v] from the model, flagging a divergence
       if it is absent *)
    let remove_one v =
      let rec remove = function
        | [] ->
            ok := false;
            []
        | x :: rest -> if x = v then rest else x :: remove rest
      in
      model := remove !model
    in
    let step op =
      match op with
      | Insert v ->
          sut.sut_insert v;
          Pq_model.insert model v
      | Extract ->
          let got = sut.sut_extract_min () in
          let want = Pq_model.extract_min model in
          if got <> want then ok := false
      | Peek ->
          let got = sut.sut_peek_min () in
          if got <> Pq_model.peek_min model then ok := false
      | Extract_many ->
          (* The batch is the root's sorted list: its head is the global
             minimum, but later elements need not be successive minima
             (the paper calls this out in §V). Check sortedness, that the
             head is the minimum, and multiset membership. *)
          let got = sut.sut_extract_many () in
          if got <> List.sort compare got then ok := false;
          (match (got, Pq_model.peek_min model) with
          | v :: _, Some m -> if v <> m then ok := false
          | [], Some _ -> ok := false
          | _ :: _, None -> ok := false
          | [], None -> ());
          List.iter remove_one got
      | Extract_approx -> (
          (* approximate: must return some member (any sub-mound minimum) *)
          match sut.sut_extract_approx () with
          | None -> if Pq_model.peek_min model <> None then ok := false
          | Some v -> remove_one v)
    in
    List.iter step script;
    if not (sut.sut_check ()) then ok := false;
    if sut.sut_size () <> Pq_model.size model then ok := false;
    (* drain both; remaining contents must agree *)
    let rec drain acc =
      match sut.sut_extract_min () with
      | None -> List.rev acc
      | Some v -> drain (v :: acc)
    in
    if drain [] <> Pq_model.to_list model then ok := false;
    !ok
  in
  let rec go n = n = 0 || (run () && go (n - 1)) in
  go trials

(** Extract_many semantics check: each batch is sorted and is a prefix of
    the model (i.e. a run of successive minima). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
