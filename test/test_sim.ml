(* Tests for the virtual-time concurrency simulator. *)

module R = Sim.Runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let counter_atomicity () =
  let c = R.Atomic.make 0 in
  let body _ = for _ = 1 to 1000 do ignore (R.Atomic.fetch_and_add c 1) done in
  ignore (Sim.Sched.run (Array.make 8 body));
  check_int "no lost updates" 8000 (R.Atomic.get c)

let cas_loop_atomicity () =
  let c = R.Atomic.make 0 in
  let body _ =
    for _ = 1 to 500 do
      let rec bump () =
        let v = R.Atomic.get c in
        if not (R.Atomic.compare_and_set c v (v + 1)) then bump ()
      in
      bump ()
    done
  in
  ignore (Sim.Sched.run ~profile:Sim.Profile.x86 (Array.make 4 body));
  check_int "cas loop exact" 2000 (R.Atomic.get c)

let determinism () =
  (* the body consults the thread-local rng, so the trace depends on the
     seed; replaying a seed must reproduce the interleaving exactly *)
  let run seed =
    let c = R.Atomic.make 0 and d = R.Atomic.make 0 in
    let log = Buffer.create 64 in
    let body tid =
      for _ = 1 to 50 do
        let target = if R.rand_int 2 = 0 then c else d in
        let v = R.Atomic.fetch_and_add target 1 in
        if v mod 17 = 0 then Buffer.add_string log (string_of_int tid)
      done
    in
    let r = Sim.Sched.run ~profile:Sim.Profile.niagara2 ~seed (Array.make 6 body) in
    (r.span, R.Atomic.get c, Buffer.contents log)
  in
  check "same seed, same trace" true (run 5L = run 5L);
  check "different seed, different schedule" true (run 5L <> run 6L)

let exchange_and_set () =
  let c = R.Atomic.make 10 in
  let seen = Array.make 2 0 in
  let body tid = seen.(tid) <- R.Atomic.exchange c (100 + tid) in
  ignore (Sim.Sched.run (Array.make 2 body));
  (* one thread saw 10; the other saw the first thread's value *)
  let final = R.Atomic.get c in
  check "final is one of the stores" true (final = 100 || final = 101);
  check "initial value handed out once" true
    ((seen.(0) = 10) <> (seen.(1) = 10))

let outside_simulation_plain () =
  (* sim atomics degrade to plain cells outside a run *)
  let c = R.Atomic.make 1 in
  R.Atomic.set c 2;
  check_int "set" 2 (R.Atomic.get c);
  check "cas" true (R.Atomic.compare_and_set c 2 3);
  check_int "faa" 3 (R.Atomic.fetch_and_add c 4);
  check_int "after faa" 7 (R.Atomic.get c);
  (* ambient rand works without a scheduler *)
  let v = R.rand_int 10 in
  check "ambient rand bounded" true (v >= 0 && v < 10);
  check_int "ambient self" 0 (R.self ())

let single_thread_costs () =
  (* a lone thread on the uniform profile pays exactly 1 cycle per shared
     access: cost accounting is exact *)
  let c = R.Atomic.make 0 in
  let body _ =
    for _ = 1 to 10 do
      ignore (R.Atomic.get c)
    done;
    R.Atomic.set c 1
  in
  let r = Sim.Sched.run ~profile:Sim.Profile.uniform [| body |] in
  check_int "10 reads + 1 write = 11 cycles" 11 r.span;
  check_int "11 yields" 11 r.yields

let read_hit_vs_miss () =
  (* on x86: first read is a miss, subsequent reads hit *)
  let c = R.Atomic.make 0 in
  let body _ =
    for _ = 1 to 5 do
      ignore (R.Atomic.get c)
    done
  in
  let r = Sim.Sched.run ~profile:Sim.Profile.x86 [| body |] in
  let p = Sim.Profile.x86 in
  check_int "1 miss + 4 hits" (p.read_miss + (4 * p.read_hit)) r.span

let invalidation_costs () =
  (* two alternating writers never hit: writes invalidate the peer *)
  let c = R.Atomic.make 0 in
  let per = 50 in
  let body tid = for i = 1 to per do R.Atomic.set c ((tid * 1000) + i) done in
  let r = Sim.Sched.run ~profile:Sim.Profile.x86 (Array.make 2 body) in
  let p = Sim.Profile.x86 in
  (* perfect alternation would make every write a miss; allow some hits
     when one thread runs ahead, but the bulk must be misses *)
  check "mostly write misses" true
    (r.span > per * (p.write_hit + p.write_miss) / 2)

let load_factor_shape () =
  let p = Sim.Profile.x86 in
  check "1 at or below cores" true
    (Sim.Profile.load_factor p 1 = 1.0 && Sim.Profile.load_factor p 6 = 1.0);
  check "rises through SMT range" true
    (Sim.Profile.load_factor p 9 > 1.0
    && Sim.Profile.load_factor p 12 <= 1.0 +. p.smt_penalty +. 1e-9);
  check "grows when oversubscribed" true
    (Sim.Profile.load_factor p 24 > Sim.Profile.load_factor p 12);
  check "uniform profile is flat" true
    (Sim.Profile.load_factor Sim.Profile.uniform 64 = 1.0)

let seconds_conversion () =
  let p = Sim.Profile.x86 in
  let s = Sim.Profile.seconds p 2_670_000_000 in
  check "1e9 cycles at 2.67GHz ~ 1s" true (abs_float (s -. 1.0) < 1e-9)

let profiles_by_name () =
  check "niagara2" true (Sim.Profile.by_name "niagara2" = Some Sim.Profile.niagara2);
  check "x86" true (Sim.Profile.by_name "x86" = Some Sim.Profile.x86);
  check "unknown" true (Sim.Profile.by_name "vax" = None)

let oversubscription_slows () =
  (* same per-thread work, threads doubled past the hardware contexts:
     the timesharing load factor must show up as a clearly longer
     makespan (ideal parallel scaling would keep the span constant) *)
  let work threads per =
    let c = R.Atomic.make 0 in
    let body _ = for _ = 1 to per do ignore (R.Atomic.fetch_and_add c 1) done in
    (Sim.Sched.run ~profile:Sim.Profile.x86 (Array.make threads body)).span
  in
  let at12 = work 12 200 in
  let at24 = work 24 200 in
  check "oversubscribed is slower" true
    (float_of_int at24 > 1.4 *. float_of_int at12)

let thread_limit () =
  check "65 threads rejected" true
    (try
       ignore (Sim.Sched.run (Array.make 65 (fun _ -> ())));
       false
     with Invalid_argument _ -> true);
  check "0 threads rejected" true
    (try
       ignore (Sim.Sched.run [||]);
       false
     with Invalid_argument _ -> true)

let nested_run_rejected () =
  let saw = ref false in
  (try
     ignore
       (Sim.Sched.run
          [|
            (fun _ ->
              try ignore (Sim.Sched.run [| (fun _ -> ()) |])
              with Sim.Sched.Concurrent_simulation -> saw := true);
          |])
   with _ -> ());
  check "nested run detected" true !saw

let exception_propagates_and_resets () =
  (try
     ignore (Sim.Sched.run [| (fun _ -> failwith "boom") |]);
     Alcotest.fail "expected exception"
   with Failure m -> check "message" true (m = "boom"));
  (* scheduler state reset: a fresh run works *)
  let c = R.Atomic.make 0 in
  ignore (Sim.Sched.run [| (fun _ -> R.Atomic.set c 1) |]);
  check_int "subsequent run fine" 1 (R.Atomic.get c)

let rand_deterministic_per_thread () =
  let draws1 = Array.make 4 [] in
  let body1 tid = for _ = 1 to 5 do draws1.(tid) <- R.rand_int 100 :: draws1.(tid) done in
  ignore (Sim.Sched.run ~seed:9L (Array.init 4 (fun _ -> body1) ));
  let draws2 = Array.make 4 [] in
  let body2 tid = for _ = 1 to 5 do draws2.(tid) <- R.rand_int 100 :: draws2.(tid) done in
  ignore (Sim.Sched.run ~seed:9L (Array.init 4 (fun _ -> body2)));
  check "same seed, same per-thread draws" true (draws1 = draws2)

(* ---- MESI transitions and RMW accounting ------------------------------- *)

(* The DPOR layer keys its conflict analysis on exactly these commit
   reports and the cost model's hit/miss decisions, so the coherence
   transitions are pinned here one by one. *)

let measured f =
  let t0 = Sim.Sched.now () in
  ignore (f ());
  Sim.Sched.now () - t0

let mesi_transitions () =
  (* single thread, x86 profile (hit < miss): cold read misses, the
     second read hits the shared copy, the first write must upgrade
     (miss), further accesses by the owner hit *)
  let c = R.Atomic.make 0 in
  let ok = ref [] in
  let body _ =
    let cost k ~hit = Sim.Sched.access_cost k ~hit in
    let expect name k hit f = ok := (name, measured f = cost k ~hit) :: !ok in
    expect "cold read misses" Sim.Sched.Read false (fun () -> R.Atomic.get c);
    expect "shared copy hits" Sim.Sched.Read true (fun () -> R.Atomic.get c);
    expect "upgrade write misses" Sim.Sched.Write false (fun () ->
        R.Atomic.set c 1);
    expect "exclusive write hits" Sim.Sched.Write true (fun () ->
        R.Atomic.set c 2);
    expect "owner read hits" Sim.Sched.Read true (fun () -> R.Atomic.get c)
  in
  ignore (Sim.Sched.run ~profile:Sim.Profile.x86 [| body |]);
  List.iter (fun (name, b) -> check name true b) !ok

let mesi_peer_invalidation () =
  (* t0 takes a shared copy; t1 writes the cell (a miss: the line is
     shared) which invalidates t0's copy, so t0's re-read misses.
     Flag cells sequence the phases so the costs are deterministic. *)
  let c = R.Atomic.make 0 in
  let ready = R.Atomic.make 0 and fin = R.Atomic.make 0 in
  let ok_before = ref false and ok_peer = ref false and ok_after = ref false in
  let body tid =
    let cost k ~hit = Sim.Sched.access_cost k ~hit in
    if tid = 0 then begin
      ignore (R.Atomic.get c);
      ok_before :=
        measured (fun () -> R.Atomic.get c) = cost Sim.Sched.Read ~hit:true;
      R.Atomic.set ready 1;
      while R.Atomic.get fin = 0 do () done;
      ok_after :=
        measured (fun () -> R.Atomic.get c) = cost Sim.Sched.Read ~hit:false
    end
    else begin
      while R.Atomic.get ready = 0 do () done;
      ok_peer :=
        measured (fun () -> R.Atomic.set c 7) = cost Sim.Sched.Write ~hit:false;
      R.Atomic.set fin 1
    end
  in
  ignore (Sim.Sched.run ~profile:Sim.Profile.x86 (Array.make 2 body));
  check "reader's shared copy hits" true !ok_before;
  check "peer write to a shared line misses" true !ok_peer;
  check "peer write invalidates the reader's copy" true !ok_after

let rmw_accounting_uniform () =
  (* fetch_and_add and exchange go through the same exclusive-acquire
     accounting as compare_and_set — and a failed CAS costs the same as
     a successful one (the line is acquired before the compare) *)
  let a = R.Atomic.make 0 and b = R.Atomic.make 0 in
  let c = R.Atomic.make 0 and d = R.Atomic.make 5 in
  let ok = ref false in
  let body _ =
    let miss = Sim.Sched.access_cost Sim.Sched.Cas ~hit:false in
    let hit = Sim.Sched.access_cost Sim.Sched.Cas ~hit:true in
    let d1 = measured (fun () -> R.Atomic.fetch_and_add a 1) in
    let d2 = measured (fun () -> R.Atomic.exchange b 9) in
    let d3 = measured (fun () -> R.Atomic.compare_and_set c 0 1) in
    let d4 = measured (fun () -> R.Atomic.compare_and_set d 99 1) in
    let d5 = measured (fun () -> R.Atomic.fetch_and_add a 1) in
    ok :=
      d1 = miss && d2 = miss && d3 = miss && d4 = miss (* failed CAS *)
      && d5 = hit (* already owned *)
  in
  ignore (Sim.Sched.run ~profile:Sim.Profile.x86 [| body |]);
  check "faa, exchange, cas-ok and cas-fail all charge alike" true !ok

let commit_kinds_and_wrote () =
  (* the on_commit stream (which the DPOR explorer consumes) reports the
     access kind and whether memory changed: reads and failed CASes are
     wrote:false, everything else wrote:true *)
  let c = R.Atomic.make 0 in
  let log = ref [] in
  let on_commit ~tid:_ ~cell:_ ~kind ~wrote = log := (kind, wrote) :: !log in
  let body _ =
    ignore (R.Atomic.get c);
    R.Atomic.set c 1;
    ignore (R.Atomic.compare_and_set c 1 2);
    ignore (R.Atomic.compare_and_set c 99 3);
    ignore (R.Atomic.fetch_and_add c 1);
    ignore (R.Atomic.exchange c 7)
  in
  let r = Sim.Sched.run ~on_commit [| body |] in
  let expected =
    Sim.Sched.
      [
        (Read, false); (Write, true); (Cas, true); (Cas, false); (Cas, true);
        (Cas, true);
      ]
  in
  check "kinds and wrote flags" true (List.rev !log = expected);
  check_int "reads counted" 1 r.reads;
  check_int "writes counted" 1 r.writes;
  check_int "cases counted (failures included)" 4 r.cases;
  check_int "accesses total" 6 (Array.fold_left ( + ) 0 r.accesses)

(* ---- schedule serialization and replay ---------------------------------- *)

let schedule_strings () =
  let module S = Sim.Sched.Schedule in
  check "rle encoding" true (S.to_string [ 0; 0; 0; 1; 0; 0; 2; 2 ] = "0*3.1.0*2.2*2");
  check "round trip" true
    (S.of_string "0*3.1.0*2.2*2" = [ 0; 0; 0; 1; 0; 0; 2; 2 ]);
  check "empty" true (S.to_string [] = "" && S.of_string "" = []);
  List.iter
    (fun bad ->
      check ("rejects " ^ bad) true
        (match S.of_string bad with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "x"; "0**2"; "0*"; "1.*2"; "-1"; "0*-3" ]

let record_and_replay () =
  let mk () = (R.Atomic.make 0, R.Atomic.make 0) in
  let go ?policy ?record_schedule (c, d) =
    let body tid =
      for _ = 1 to 25 do
        let t = if (tid + R.rand_int 2) mod 2 = 0 then c else d in
        ignore (R.Atomic.fetch_and_add t 1)
      done
    in
    Sim.Sched.run ?policy ?record_schedule ~profile:Sim.Profile.niagara2
      ~seed:11L (Array.make 3 body)
  in
  let p1 = mk () in
  let r1 = go ~record_schedule:true p1 in
  check "schedule recorded" true (r1.schedule <> []);
  (* feeding the recorded schedule back reproduces the run exactly *)
  let p2 = mk () in
  let r2 = go ~policy:(Sim.Sched.replay r1.schedule) ~record_schedule:true p2 in
  check "replay reproduces the schedule" true (r2.schedule = r1.schedule);
  check "replay reproduces final state" true
    (R.Atomic.get (fst p1) = R.Atomic.get (fst p2)
    && R.Atomic.get (snd p1) = R.Atomic.get (snd p2));
  check "replay reproduces clocks" true
    (r1.span = r2.span && r1.clocks = r2.clocks);
  (* and the string form survives the round trip through a shell *)
  let p3 = mk () in
  let sched = Sim.Sched.Schedule.(of_string (to_string r1.schedule)) in
  let r3 = go ~policy:(Sim.Sched.replay sched) p3 in
  check "string round-trip replays" true (r3.span = r1.span)

let clock_monotone_per_thread () =
  let r =
    Sim.Sched.run ~profile:Sim.Profile.niagara2
      (Array.make 3 (fun _ ->
           let c = R.Atomic.make 0 in
           for _ = 1 to 20 do
             ignore (R.Atomic.fetch_and_add c 1)
           done))
  in
  Array.iter (fun c -> check "positive clock" true (c > 0)) r.clocks;
  check "span is max clock" true
    (r.span = Array.fold_left max 0 r.clocks)

let () =
  Alcotest.run "sim"
    [
      ( "atomicity",
        [
          Alcotest.test_case "fetch_and_add" `Quick counter_atomicity;
          Alcotest.test_case "cas loop" `Quick cas_loop_atomicity;
          Alcotest.test_case "exchange" `Quick exchange_and_set;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded replay" `Quick determinism;
          Alcotest.test_case "per-thread rand" `Quick
            rand_deterministic_per_thread;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "single thread exact" `Quick single_thread_costs;
          Alcotest.test_case "read hit vs miss" `Quick read_hit_vs_miss;
          Alcotest.test_case "write invalidation" `Quick invalidation_costs;
          Alcotest.test_case "load factor shape" `Quick load_factor_shape;
          Alcotest.test_case "seconds conversion" `Quick seconds_conversion;
          Alcotest.test_case "profiles by name" `Quick profiles_by_name;
          Alcotest.test_case "oversubscription slows" `Quick
            oversubscription_slows;
          Alcotest.test_case "clocks monotone" `Quick clock_monotone_per_thread;
        ] );
      ( "mesi",
        [
          Alcotest.test_case "single-thread transitions" `Quick
            mesi_transitions;
          Alcotest.test_case "peer-write invalidation" `Quick
            mesi_peer_invalidation;
          Alcotest.test_case "rmw accounting uniform" `Quick
            rmw_accounting_uniform;
          Alcotest.test_case "commit kinds and wrote flags" `Quick
            commit_kinds_and_wrote;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "serializer" `Quick schedule_strings;
          Alcotest.test_case "record and replay" `Quick record_and_replay;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "plain outside run" `Quick
            outside_simulation_plain;
          Alcotest.test_case "thread limits" `Quick thread_limit;
          Alcotest.test_case "nested run rejected" `Quick nested_run_rejected;
          Alcotest.test_case "exception resets state" `Quick
            exception_propagates_and_resets;
        ] );
    ]
