(* Smoke coverage for the wall-clock benchmark pipeline: a tiny in-test
   bench run must produce a schema-valid [Bench_json] document that
   survives a serialize/parse round trip, malformed documents must be
   rejected, and — the regression guard this PR exists for — a fresh
   measurement must not fall below half the committed baseline medians
   in bench/baseline/, compared at matching thread counts only (the
   baseline sweep may be wider or narrower than this machine's; the
   0.5x factor absorbs shared-CI noise and the committed artifacts
   themselves show the true before/after).

   The default run keeps the measured work tiny so `dune runtest` stays
   fast; set BENCH_FULL=1 for the full ops count and the mixed panel. *)

let check = Alcotest.(check bool)

let full = Sys.getenv_opt "BENCH_FULL" = Some "1"

let seed = 7L

(* ops must match the baseline artifacts (recorded at 2^12): the timed
   window includes a fixed per-trial startup cost, so throughputs are
   only comparable at equal op counts; the full sweep matches the
   non-quick CLI default *)
let ops = if full then 1 lsl 15 else 1 lsl 12
let trials = 3
let warmup = 1

(* baseline comparisons need more warmup and more trials than the schema
   smoke runs: the first trials after process start run cold (page
   faults, allocator growth) and a 3-trial median is one hiccup away
   from an outlier *)
let cmp_warmup = 2
let cmp_trials = 5

let tag (panel : Harness.Workload.panel) =
  match panel with
  | Insert -> "insert"
  | Extract -> "extract"
  | Mixed -> "mixed"
  | Extract_many -> "extractmany"

(* 1-thread only: the seq oracle is not thread-safe and single-core CI
   makes multi-thread wall clock meaningless anyway *)
let structures =
  [
    Harness.Pq.seq;
    Harness.Pq.On_real.mound_lf;
    Harness.Pq.On_real.mound_lock;
    (* domains:2 matches the committed baselines' recording sweep (the
       CLI floors max_t at 2), so the queue count — and hence the name
       "MultiQueue"'s meaning — is the same on both sides of the guard *)
    Harness.Pq.On_real.multiqueue ~domains:2 ();
  ]

let bench_doc ?(warmup = warmup) ?(trials = trials) panel =
  let init_size = Harness.Fig2.init_size_for Harness.Fig2.quick_scale panel in
  let series =
    List.map
      (Harness.Real_exp.run_series ~seed ~warmup ~trials ~panel
         ~thread_counts:[ 1 ] ~ops_per_thread:ops ~init_size)
      structures
  in
  Harness.Bench_json.of_panel ~panel:(tag panel) ~seed ~warmup
    ~measured_trials:trials ~ops_per_thread:ops ~init_size series

let panels : Harness.Workload.panel list =
  if full then [ Insert; Extract; Mixed ] else [ Insert; Extract ]

let smoke_docs = lazy (List.map (fun p -> (p, bench_doc p)) panels)

let smoke_bench_validates () =
  List.iter
    (fun (panel, doc) ->
      match Harness.Bench_json.validate doc with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: invalid bench document: %s" (tag panel) e)
    (Lazy.force smoke_docs)

let roundtrip_preserves () =
  List.iter
    (fun (panel, doc) ->
      let reparsed =
        Harness.Bench_json.parse (Harness.Bench_json.to_string doc)
      in
      (match Harness.Bench_json.validate reparsed with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s: reparsed document invalid: %s" (tag panel) e);
      List.iter
        (fun m ->
          let name = (m.Harness.Pq.make ~capacity:16).name in
          let med j = Harness.Bench_json.median_of j ~structure:name ~threads:1 in
          match (med doc, med reparsed) with
          | Some a, Some b ->
              (* floats survive the %.9g print/parse round trip within a
                 relative epsilon *)
              check
                (Printf.sprintf "%s/%s median round-trips" (tag panel) name)
                true
                (Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs a))
          | _ -> Alcotest.failf "%s/%s: median missing" (tag panel) name)
        structures)
    (Lazy.force smoke_docs)

let malformed_rejected () =
  (match Harness.Bench_json.parse "{ \"schema\": " with
  | exception Harness.Bench_json.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated document parsed");
  (match Harness.Bench_json.parse "{} trailing" with
  | exception Harness.Bench_json.Malformed _ -> ()
  | _ -> Alcotest.fail "trailing garbage parsed");
  check "empty object rejected" true
    (Result.is_error (Harness.Bench_json.validate (Harness.Bench_json.Obj [])));
  (* wrong schema tag *)
  let retagged =
    match Lazy.force smoke_docs with
    | (_, Harness.Bench_json.Obj kvs) :: _ ->
        Harness.Bench_json.Obj
          (List.map
             (function
               | "schema", _ -> ("schema", Harness.Bench_json.Str "other/9")
               | kv -> kv)
             kvs)
    | _ -> assert false
  in
  check "wrong schema tag rejected" true
    (Result.is_error (Harness.Bench_json.validate retagged));
  (* a cell reporting fewer trials than declared *)
  let starved =
    match Lazy.force smoke_docs with
    | (_, Harness.Bench_json.Obj kvs) :: _ ->
        Harness.Bench_json.Obj
          (List.map
             (function
               | "measured_trials", _ ->
                   ("measured_trials", Harness.Bench_json.Num 99.)
               | kv -> kv)
             kvs)
    | _ -> assert false
  in
  check "missing trials rejected" true
    (Result.is_error (Harness.Bench_json.validate starved))

(* Fresh medians vs. the committed pre-optimization baseline. Half the
   baseline is a deliberate underbid: an actual hot-path regression
   (e.g. reintroducing per-retry allocation) costs well over 2x on these
   panels, while CI noise on a shared single core stays well under it. *)
let baseline_not_regressed () =
  List.iter
    (fun panel ->
      (* cwd is _build/default/test under `dune runtest` but the project
         root under `dune exec test/test_bench.exe` *)
      let path =
        let rel = Printf.sprintf "bench/baseline/BENCH_%s.json" (tag panel) in
        if Sys.file_exists (Filename.concat ".." rel) then
          Filename.concat ".." rel
        else rel
      in
      let baseline = Harness.Bench_json.load path in
      (match Harness.Bench_json.validate baseline with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: baseline invalid: %s" path e);
      (* keyed to matching thread counts only: the baseline may carry a
         wider sweep (4/8-thread panels from a wide machine) than this
         run measures, and vice versa — compare exactly the counts
         present in both documents *)
      let medians () =
        let doc = bench_doc ~warmup:cmp_warmup ~trials:cmp_trials panel in
        List.concat_map
          (fun m ->
            let name = (m.Harness.Pq.make ~capacity:16).name in
            let common =
              Harness.Bench_json.thread_counts_of doc ~structure:name
              |> List.filter (fun t ->
                     List.mem t
                       (Harness.Bench_json.thread_counts_of baseline
                          ~structure:name))
            in
            if common = [] then
              Alcotest.failf "%s/%s: no matching thread counts" (tag panel)
                name;
            List.map
              (fun t ->
                let fresh =
                  Harness.Bench_json.median_of doc ~structure:name ~threads:t
                and base =
                  Harness.Bench_json.median_of baseline ~structure:name
                    ~threads:t
                in
                match (fresh, base) with
                | Some f, Some b -> (Printf.sprintf "%s@%dt" name t, f, b)
                | _ ->
                    Alcotest.failf "%s/%s@%dt: missing median" (tag panel)
                      name t)
              common)
          structures
      in
      let below (_, f, b) = f < 0.5 *. b in
      let first = medians () in
      if List.exists below first then begin
        (* one re-measure before declaring a regression: a single
           descheduling blip on a shared core can sink a whole run *)
        let retry = medians () in
        List.iter2
          (fun ((name, f1, b) as m1) ((_, f2, _) as m2) ->
            if below m1 && below m2 then
              Alcotest.failf
                "%s/%s: medians %.0f and %.0f ops/s below half of baseline %.0f"
                (tag panel) name f1 f2 b)
          first retry
      end)
    panels

(* The same 0.5x guard over the overload panels: throughput under
   admission control (disposal rate, rejections included) must not
   collapse either. Parameters must match the committed
   BENCH_overload_* artifacts: quick ops, capacity = ops/16. *)
let overload_scenarios : Harness.Real_exp.overload_scenario list =
  if full then [ Bursty; Overcap; Zipf_mix ] else [ Bursty; Overcap ]

let overload_capacity = max 64 (ops / 16)

let overload_structures =
  [
    Harness.Pq.On_real.mound_lf;
    Harness.Pq.On_real.mound_lock;
    Harness.Pq.On_real.multiqueue ~domains:2 ();
  ]

let overload_doc ~warmup ~trials scenario =
  let series =
    List.map
      (Harness.Real_exp.run_overload_series ~seed ~warmup ~trials ~scenario
         ~thread_counts:[ 1 ] ~ops_per_thread:ops
         ~capacity:overload_capacity)
      overload_structures
  in
  Harness.Bench_json.of_panel
    ~panel:("overload_" ^ Harness.Real_exp.scenario_name scenario)
    ~seed ~warmup ~measured_trials:trials ~ops_per_thread:ops
    ~init_size:overload_capacity series

let overload_not_regressed () =
  List.iter
    (fun scenario ->
      let stag = Harness.Real_exp.scenario_name scenario in
      let path =
        let rel = Printf.sprintf "bench/baseline/BENCH_overload_%s.json" stag in
        if Sys.file_exists (Filename.concat ".." rel) then
          Filename.concat ".." rel
        else rel
      in
      let baseline = Harness.Bench_json.load path in
      (match Harness.Bench_json.validate baseline with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: baseline invalid: %s" path e);
      let medians () =
        let doc = overload_doc ~warmup:cmp_warmup ~trials:cmp_trials scenario in
        List.concat_map
          (fun m ->
            let name = (m.Harness.Pq.make ~capacity:16).name in
            let common =
              Harness.Bench_json.thread_counts_of doc ~structure:name
              |> List.filter (fun t ->
                     List.mem t
                       (Harness.Bench_json.thread_counts_of baseline
                          ~structure:name))
            in
            if common = [] then
              Alcotest.failf "overload_%s/%s: no matching thread counts" stag
                name;
            List.map
              (fun t ->
                let fresh =
                  Harness.Bench_json.median_of doc ~structure:name ~threads:t
                and base =
                  Harness.Bench_json.median_of baseline ~structure:name
                    ~threads:t
                in
                match (fresh, base) with
                | Some f, Some b -> (Printf.sprintf "%s@%dt" name t, f, b)
                | _ ->
                    Alcotest.failf "overload_%s/%s@%dt: missing median" stag
                      name t)
              common)
          overload_structures
      in
      let below (_, f, b) = f < 0.5 *. b in
      let first = medians () in
      if List.exists below first then begin
        let retry = medians () in
        List.iter2
          (fun ((name, f1, b) as m1) ((_, f2, _) as m2) ->
            if below m1 && below m2 then
              Alcotest.failf
                "overload_%s/%s: medians %.0f and %.0f ops/s below half of \
                 baseline %.0f"
                stag name f1 f2 b)
          first retry
      end)
    overload_scenarios

let () =
  Alcotest.run "bench"
    [
      ( "pipeline",
        [
          Alcotest.test_case "smoke bench validates" `Quick
            smoke_bench_validates;
          Alcotest.test_case "serialize/parse round trip" `Quick
            roundtrip_preserves;
          Alcotest.test_case "malformed rejected" `Quick malformed_rejected;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "no regression vs committed baseline" `Quick
            baseline_not_regressed;
          Alcotest.test_case "overload panels not regressed" `Quick
            overload_not_regressed;
        ] );
    ]
