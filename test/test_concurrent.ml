(* Concurrency tests on real OCaml domains: multiset conservation,
   per-thread extraction monotonicity (for the linearizable structures),
   and invariant checks at quiescent points. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let domains = 4

type subject = {
  name : string;
  linearizable_extract : bool;
  make : capacity:int -> Harness.Pq.t;
}

let subjects =
  let open Harness.Pq.On_real in
  [
    { name = "mound_lf"; linearizable_extract = true; make = mound_lf.make };
    { name = "mound_lock"; linearizable_extract = true; make = mound_lock.make };
    (* Hunt's delete-min takes the "bottom" element out of the tree
       before locking the root; while that value sits in the deleter's
       hand, larger values can be extracted, and when it re-enters at the
       root a later extract may return it — so per-thread extraction
       sequences are NOT monotone. This is inherent to the algorithm, not
       an implementation artifact. *)
    { name = "hunt"; linearizable_extract = false; make = hunt.make };
    (* the skiplist PQ is quiescently consistent: extraction values need
       not be per-thread monotone, only multiset-correct *)
    { name = "skiplist"; linearizable_extract = false; make = skiplist.make };
    { name = "skiplist_lock"; linearizable_extract = false;
      make = skiplist_lock.make };
    { name = "coarse"; linearizable_extract = true; make = coarse.make };
    { name = "stm_heap"; linearizable_extract = true; make = stm_heap.make };
  ]

(* every value inserted (tagged by domain and sequence) is extracted at
   most once, and inserted+leftover = extracted exactly *)
let conservation subject () =
  let per = 3_000 in
  let q = subject.make ~capacity:(domains * per * 2) in
  let extracted = Array.make domains [] in
  let doms =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed:13L ~id:d in
            for i = 0 to per - 1 do
              q.insert ((((d * per) + i) * 2) + 1);
              if Prng.int rng 3 > 0 then
                match q.extract_min () with
                | Some v -> extracted.(d) <- v :: extracted.(d)
                | None -> ()
            done))
  in
  Harness.Watchdog.join_all ~label:"conservation" doms;
  check (subject.name ^ " invariant") true (q.check ());
  let got = Array.fold_left (fun acc l -> List.rev_append l acc) [] extracted in
  let rec drain acc =
    match q.extract_min () with None -> acc | Some v -> drain (v :: acc)
  in
  let everything = List.sort compare (drain got) in
  let expected =
    List.sort compare
      (List.concat_map
         (fun d -> List.init per (fun i -> (((d * per) + i) * 2) + 1))
         (List.init domains Fun.id))
  in
  check (subject.name ^ " multiset conservation") true (everything = expected)

(* after a quiesced insert phase, concurrent extract-only drains must see
   per-thread non-decreasing sequences when extraction is linearizable *)
let monotone_drain subject () =
  let n = 8_000 in
  let q = subject.make ~capacity:(2 * n) in
  let rng = Prng.create 14L in
  let inserted = Array.init n (fun _ -> Prng.int rng 1_000_000) in
  Array.iter q.insert inserted;
  let per_thread = Array.make domains [] in
  let doms =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            let rec go acc =
              match q.extract_min () with
              | Some v -> go (v :: acc)
              | None -> acc
            in
            per_thread.(d) <- go [] (* reversed: newest first *)))
  in
  Harness.Watchdog.join_all ~label:"monotone_drain" doms;
  let all =
    Array.fold_left (fun acc l -> List.rev_append l acc) [] per_thread
  in
  check_int (subject.name ^ " drained everything") n (List.length all);
  check (subject.name ^ " multiset") true
    (List.sort compare all = List.sort compare (Array.to_list inserted));
  if subject.linearizable_extract then
    Array.iteri
      (fun d l ->
        (* l is newest-first: must be non-increasing *)
        let rec nonincreasing = function
          | [] | [ _ ] -> true
          | a :: (b :: _ as rest) -> a >= b && nonincreasing rest
        in
        check
          (Printf.sprintf "%s thread %d monotone" subject.name d)
          true (nonincreasing l))
      per_thread

(* concurrent extract_many: batches must be sorted and their union the
   full multiset (mounds only; others degrade to singletons) *)
let concurrent_extract_many () =
  List.iter
    (fun (maker : Harness.Pq.maker) ->
      let n = 20_000 in
      let q = maker.make ~capacity:(2 * n) in
      let rng = Prng.create 15L in
      let inserted = Array.init n (fun _ -> Prng.int rng 1_000_000) in
      Array.iter q.insert inserted;
      let batches = Array.make domains [] in
      let doms =
        Array.init domains (fun d ->
            Domain.spawn (fun () ->
                let rec go acc =
                  match q.extract_many () with [] -> acc | b -> go (b :: acc)
                in
                batches.(d) <- go []))
      in
      Harness.Watchdog.join_all ~label:"concurrent_extract_many" doms;
      let all_batches = Array.to_list batches |> List.concat in
      List.iter
        (fun b ->
          check (q.name ^ " batch sorted") true (b = List.sort compare b))
        all_batches;
      let union = List.concat all_batches in
      check (q.name ^ " union complete") true
        (List.sort compare union = List.sort compare (Array.to_list inserted));
      check (q.name ^ " empty after") true (q.extract_min () = None))
    [ Harness.Pq.On_real.mound_lf; Harness.Pq.On_real.mound_lock ]

(* insert-only contention then a full sequential validation drain *)
let parallel_insert_then_drain subject () =
  let per = 5_000 in
  let q = subject.make ~capacity:(2 * domains * per) in
  let doms =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed:16L ~id:d in
            for _ = 1 to per do
              q.insert (Prng.int rng 1_000_000)
            done))
  in
  Harness.Watchdog.join_all ~label:"parallel_insert_then_drain" doms;
  check (subject.name ^ " invariant") true (q.check ());
  check_int (subject.name ^ " size") (domains * per) (q.size ());
  let rec drain prev count =
    match q.extract_min () with
    | None -> count
    | Some v ->
        check (subject.name ^ " global order") true (v >= prev);
        drain v (count + 1)
  in
  check_int (subject.name ^ " drains all") (domains * per) (drain min_int 0)

let mound_approx_under_concurrency () =
  let module M = Mound.Lf_int in
  let q = M.create () in
  let n = 10_000 in
  let rng = Prng.create 17L in
  let inserted = Array.init n (fun _ -> Prng.int rng 1_000_000) in
  Array.iter (M.insert q) inserted;
  let got = Array.make domains [] in
  let doms =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to n / domains / 2 do
              match M.extract_approx q with
              | Some v -> got.(d) <- v :: got.(d)
              | None -> ()
            done))
  in
  Harness.Watchdog.join_all ~label:"mound_approx_under_concurrency" doms;
  check "invariant" true (M.check q);
  let all = Array.fold_left (fun acc l -> List.rev_append l acc) [] got in
  check_int "conservation" n (List.length all + M.size q);
  (* every extracted value must be one of the inserted ones *)
  let module IS = Set.Make (Int) in
  let inserted_set = IS.of_list (Array.to_list inserted) in
  check "members only" true (List.for_all (fun v -> IS.mem v inserted_set) all)

let () =
  let per_subject mk name_suffix =
    List.map
      (fun s ->
        Alcotest.test_case (s.name ^ name_suffix) `Quick (mk s))
      subjects
  in
  Alcotest.run "concurrent (real domains)"
    [
      ("conservation", per_subject conservation " mixed conservation");
      ("monotone drain", per_subject monotone_drain " drain");
      ( "parallel insert",
        per_subject parallel_insert_then_drain " insert+drain" );
      ( "extensions",
        [
          Alcotest.test_case "concurrent extract_many" `Quick
            concurrent_extract_many;
          Alcotest.test_case "extract_approx members" `Quick
            mound_approx_under_concurrency;
        ] );
    ]
