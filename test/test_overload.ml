(* Overload resilience tier: bounded admission (reject / shed / block),
   deadline-aware operations, and wedge recovery when a lock holder is
   killed or stalled on real domains.

   The sim-backed tests are deterministic in their seeds; the real-domain
   tests are smoke tests with generous wall-clock bounds. The crash /
   stall sweeps run a strided subset of fault points by default so
   `dune runtest` stays quick; set OVERLOAD_FULL=1 to cover every point. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let full = Sys.getenv_opt "OVERLOAD_FULL" <> None

(* Wall-clock slack for real-domain deadline assertions: scheduling can
   overshoot a deadline by preemption granularity, never by seconds. *)
let grain_ns = 200_000_000

let ms n = n * 1_000_000

(* ---------------- bounded admission (deterministic) ---------------- *)

module B = Mound.Bounded.Make (Runtime.Real)

let lf_ops : (Mound.Lf_int.t, int) B.ops =
  {
    insert = Mound.Lf_int.insert;
    try_insert = Mound.Lf_int.try_insert;
    insert_until = (fun q ~deadline v -> Mound.Lf_int.insert_until q ~deadline v);
    extract_min = Mound.Lf_int.extract_min;
    extract_min_until =
      (fun q ~deadline -> Mound.Lf_int.extract_min_until q ~deadline);
    extract_approx =
      (fun ~max_level q -> Mound.Lf_int.extract_approx ~max_level q);
  }

(* 2x over-capacity arrivals under Reject: the watermark holds exactly,
   the overflow is refused and counted, and what survives is what came
   before the watermark was reached. *)
let bounded_reject () =
  let q = Mound.Lf_int.create () in
  let b = B.make ~ops:lf_ops ~capacity:64 ~policy:B.Reject q in
  let admitted = ref 0 and rejected = ref 0 in
  for v = 0 to 127 do
    match B.insert b v with
    | Mound.Intf.Ok () -> incr admitted
    | Mound.Intf.Rejected -> incr rejected
    | Mound.Intf.Timeout -> Alcotest.fail "no deadline was set"
  done;
  check_int "admitted to the watermark" 64 !admitted;
  check_int "overflow rejected" 64 !rejected;
  check_int "rejections counted" 64 (B.counters b).rejected;
  check_int "occupancy at the watermark" 64 (B.size b);
  let rec drain i =
    match B.extract_min b with
    | Some v ->
        check_int "survivors are the pre-watermark arrivals" i v;
        drain (i + 1)
    | None -> i
  in
  check_int "exactly the watermark drains back out" 64 (drain 0);
  check_int "occupancy returns to zero" 0 (B.size b)

(* Same overflow under Shed: every over-capacity arrival evicts a
   probably-low-priority victim instead of being refused, so late
   high-priority arrivals displace early low-priority ones. *)
let bounded_shed () =
  let q = Mound.Lf_int.create () in
  let b = B.make ~ops:lf_ops ~capacity:64 ~policy:B.Shed q in
  (* descending arrivals: every late key outranks everything resident *)
  for i = 0 to 127 do
    match B.insert b (127 - i) with
    | Mound.Intf.Ok () -> ()
    | _ -> Alcotest.fail "shed admits every arrival"
  done;
  check_int "one eviction per over-capacity arrival" 64 (B.counters b).shed;
  check_int "occupancy held at the watermark" 64 (B.size b);
  check_int "structure holds exactly the watermark" 64 (Mound.Lf_int.size q);
  (match B.extract_min b with
  | Some v -> check_int "the hottest arrival survived shedding" 0 v
  | None -> Alcotest.fail "queue empty after shedding");
  check "mound invariant intact after shedding" true (Mound.Lf_int.check q)

(* Block policy on a full queue: the insert parks, honours its deadline,
   and admits promptly once an extraction drains below the watermark. *)
let bounded_block_deadline () =
  let q = Mound.Lf_int.create () in
  let b = B.make ~ops:lf_ops ~capacity:8 ~policy:B.Block q in
  for v = 0 to 7 do
    match B.insert b v with
    | Mound.Intf.Ok () -> ()
    | _ -> Alcotest.fail "below the watermark nothing blocks"
  done;
  let budget = ms 20 in
  let t0 = Runtime.Real.monotonic_ns () in
  (match B.insert_until b ~deadline:(t0 + budget) 99 with
  | Mound.Intf.Timeout -> ()
  | _ -> Alcotest.fail "a full Block queue must time out");
  let elapsed = Runtime.Real.monotonic_ns () - t0 in
  check "blocked through the deadline" true (elapsed >= budget);
  check "gave up within scheduling granularity" true
    (elapsed < budget + grain_ns);
  check_int "timeout counted" 1 (B.counters b).deadline_timeouts;
  ignore (B.extract_min b);
  match B.insert_until b ~deadline:(Runtime.Real.monotonic_ns () + ms 1000) 42 with
  | Mound.Intf.Ok () -> ()
  | _ -> Alcotest.fail "draining below the watermark must unblock"

(* Two domains push 2x capacity of traffic through a Shed front-end:
   the watermark holds (up to the documented force-reserve slack) and
   the books balance at quiescence. *)
let bounded_concurrent_smoke () =
  let q = Mound.Lf_int.create () in
  let capacity = 128 in
  let b = B.make ~ops:lf_ops ~capacity ~policy:B.Shed q in
  let per_thread = if full then 8192 else 2048 in
  let doms =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to per_thread do
              match B.insert b ((tid * per_thread) + i) with
              | Mound.Intf.Ok () -> ()
              | _ -> Alcotest.fail "shed admits every arrival"
            done))
  in
  Array.iter Domain.join doms;
  check "shedding fired under sustained overload" true ((B.counters b).shed > 0);
  (* force-reserve can exceed the watermark only while a racing probe
     sees an emptier structure than the admission counter does *)
  check "occupancy within watermark slack" true (B.size b <= capacity + 8);
  check_int "admission counter agrees with the structure" (B.size b)
    (Mound.Lf_int.size q);
  check "mound invariant intact" true (Mound.Lf_int.check q)

(* ---------------- deadline semantics (deterministic) ---------------- *)

(* The first attempt of a [_until] variant always runs: a generous (or
   even already-expired) deadline on an uncontended queue never produces
   a spurious Timeout, and results equal the plain operations'. *)
let deadline_first_attempt () =
  let q = Mound.Lf_int.create () in
  let past = Runtime.Real.monotonic_ns () - 1 in
  (match Mound.Lf_int.insert_until q ~deadline:past 7 with
  | Mound.Intf.Ok () -> ()
  | _ -> Alcotest.fail "uncontended insert completes its first attempt");
  (match Mound.Lf_int.extract_min_until q ~deadline:past with
  | Mound.Intf.Ok (Some v) -> check_int "value round-trips" 7 v
  | _ -> Alcotest.fail "uncontended extract completes its first attempt");
  (match Mound.Lf_int.extract_min_until q ~deadline:past with
  | Mound.Intf.Ok None -> ()
  | _ -> Alcotest.fail "empty is an answer, not a timeout");
  check_int "no spurious timeouts" 0 (Mound.Lf_int.ops q).deadline_timeouts;
  let lq = Mound.Lock_int.create () in
  (match Mound.Lock_int.insert_until lq ~deadline:past 7 with
  | Mound.Intf.Ok () -> ()
  | _ -> Alcotest.fail "uncontended lock insert completes");
  match Mound.Lock_int.extract_min_until lq ~deadline:past with
  | Mound.Intf.Ok (Some 7) -> ()
  | _ -> Alcotest.fail "uncontended lock extract completes"

(* Two domains hammer the LF mound through tiny-deadline variants: no
   call may overrun its deadline by more than scheduling granularity,
   whether it completes or times out. Lock-freedom makes Timeout rare
   here; the property under test is the latency bound, not the verdict. *)
let lf_deadline_bound_under_contention () =
  let q = Mound.Lf_int.create () in
  for i = 0 to 255 do
    Mound.Lf_int.insert q i
  done;
  let per_thread = if full then 4096 else 1024 in
  let worst = Atomic.make 0 in
  let bump_worst d =
    let rec go () =
      let w = Atomic.get worst in
      if d > w && not (Atomic.compare_and_set worst w d) then go ()
    in
    go ()
  in
  let doms =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 1 to per_thread do
              let budget = ms 1 in
              let t0 = Runtime.Real.monotonic_ns () in
              let deadline = t0 + budget in
              (if (i + tid) land 1 = 0 then
                 ignore (Mound.Lf_int.insert_until q ~deadline i)
               else ignore (Mound.Lf_int.extract_min_until q ~deadline));
              let over = Runtime.Real.monotonic_ns () - t0 - budget in
              if over > 0 then bump_worst over
            done))
  in
  Array.iter Domain.join doms;
  check "no call overran its deadline beyond granularity" true
    (Atomic.get worst < grain_ns);
  check "mound invariant intact" true (Mound.Lf_int.check q)

(* ---------------- wedge recovery, simulated (deterministic) -------- *)

module SL = Mound.Lock.Make (Sim.Runtime) (Mound.Int_ord)

let sim_prepop = 16

(* One simulated run: thread 0 extracts once and is crashed at its
   [crash]-th shared access; thread 1 then performs 8 extractions. *)
let sim_run ~lease ~crash ~watchdog =
  Sim.Sched.seed_ambient 11L;
  let q = SL.create ~lease () in
  for i = 0 to sim_prepop - 1 do
    SL.insert q (i * 37 mod 97)
  done;
  let survivor_got = ref 0 in
  let bodies =
    [|
      (fun _ -> ignore (SL.extract_min q));
      (fun _ ->
        for _ = 1 to 8 do
          match SL.extract_min q with
          | Some _ -> incr survivor_got
          | None -> ()
        done);
    |]
  in
  let crashes = if crash = 0 then [] else [ (0, crash) ] in
  let r = Sim.Sched.run ~seed:11L ~crashes ~watchdog bodies in
  (r, !survivor_got, SL.ops q, SL.check q)

let sim_crash_points () =
  (* a fault-free run fixes the victim's crash coordinate space *)
  let r0, _, _, _ = sim_run ~lease:0 ~crash:0 ~watchdog:2_000_000 in
  let max_k = r0.accesses.(0) in
  let stride = if full then 1 else 3 in
  let rec pts k acc = if k > max_k then List.rev acc else pts (k + stride) (k :: acc) in
  pts 1 []

(* With a lease, a crashed lock holder is always recovered from: the
   survivor never wedges, completes all its extractions, and at least
   one crash point requires an actual revocation. Deterministic: the
   whole sweep replays byte-for-byte. *)
let sim_lease_recovery () =
  let recoveries = ref 0 in
  List.iter
    (fun k ->
      let r, got, ops, ok = sim_run ~lease:400 ~crash:k ~watchdog:2_000_000 in
      check "victim crashed as planned" true (r.killed = [ 0 ]);
      check "survivor never wedges under a lease" true (r.wedged = []);
      check_int "survivor completed all extractions" 8 got;
      check "mound invariant intact after recovery" true ok;
      recoveries := !recoveries + ops.lock_recoveries)
    (sim_crash_points ());
  check "some crash point required a revocation" true (!recoveries >= 1);
  (* determinism: replaying the sweep reproduces the recovery count *)
  let again = ref 0 in
  List.iter
    (fun k ->
      let _, _, ops, _ = sim_run ~lease:400 ~crash:k ~watchdog:2_000_000 in
      again := !again + ops.lock_recoveries)
    (sim_crash_points ());
  check_int "sweep is deterministic" !recoveries !again

(* Without a lease the survivor cannot revoke — but a deadline lets it
   give up during the acquisition phase instead of wedging. The deadline
   cannot interrupt the committed phase (after the behead, moundify must
   run to completion, and a dead child lock inside it still wedges —
   that is exactly the gap the lease closes, proven above), so the
   assertion here is: at least one crash point forces a Timeout, and
   every non-wedged run ends in Ok or Timeout. *)
let sim_deadline_instead_of_wedge () =
  let run ~crash =
    Sim.Sched.seed_ambient 13L;
    let q = SL.create () in
    (* lease = 0: revocation off *)
    for i = 0 to sim_prepop - 1 do
      SL.insert q (i * 37 mod 97)
    done;
    let outcome = ref None in
    let bodies =
      [|
        (fun _ -> ignore (SL.extract_min q));
        (fun _ ->
          let deadline = Sim.Runtime.monotonic_ns () + 5_000 in
          outcome := Some (SL.extract_min_until q ~deadline));
      |]
    in
    let r =
      Sim.Sched.run ~seed:13L ~crashes:[ (0, crash) ] ~watchdog:2_000_000
        bodies
    in
    (r, !outcome, SL.ops q)
  in
  let timeouts = ref 0 in
  List.iter
    (fun k ->
      let r, outcome, ops = run ~crash:k in
      match outcome with
      | Some Mound.Intf.Timeout ->
          incr timeouts;
          check "a timed-out survivor never wedges" true (r.wedged = []);
          check "timeout counted" true (ops.deadline_timeouts >= 1)
      | Some (Mound.Intf.Ok _) -> ()
      | Some Mound.Intf.Rejected -> Alcotest.fail "no admission control here"
      | None ->
          (* committed-phase wedge: only the watchdog stopped the
             survivor, which is the lease's job to prevent, not the
             deadline's *)
          check "only a wedge leaves no outcome" true (r.wedged <> []))
    (sim_crash_points ());
  check "some crash point forced a deadline timeout" true (!timeouts >= 1)

(* ---------------- wedge recovery, real domains (smoke) ------------- *)

let wait_until ?(timeout_s = 5.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

module CR = Chaos.Real (Runtime.Real)
module LM = Mound.Lock.Make (CR) (Mound.Int_ord)

let real_prepop = 32

(* Sweep fault points [ks]; at each, a victim domain arms a fault on its
   own k-th shared access and runs one extraction. [victim] returns the
   victim's extraction count; [after] checks each round. Returns total
   revocations observed. *)
let real_sweep ~ks ~lease ~kill () =
  let recoveries = ref 0 in
  List.iter
    (fun k ->
      CR.reset ();
      let q = LM.create ~lease () in
      for i = 0 to real_prepop - 1 do
        LM.insert q (i * 17 mod 97)
      done;
      let victim_done = Atomic.make false in
      let victim_got = Atomic.make 0 in
      let d =
        Domain.spawn (fun () ->
            (if kill then CR.arm_kill else CR.arm_stall)
              ~victim:(CR.self ()) ~after:k;
            (try
               match LM.extract_min q with
               | Some _ -> Atomic.set victim_got 1
               | None -> ()
             with Chaos.Killed -> ());
            Atomic.set victim_done true)
      in
      let reached =
        wait_until (fun () -> CR.fired () || Atomic.get victim_done)
      in
      check "victim neither hung nor vanished" true reached;
      let faulted = CR.fired () && not (Atomic.get victim_done) in
      let survivor_got = ref 0 in
      if faulted then begin
        (* the holder is dead or parked: the survivor must still make
           progress, revoking the lease if the lock is held *)
        (match LM.extract_min q with
        | Some _ -> survivor_got := 1
        | None -> Alcotest.fail "survivor found a populated mound empty");
        if not kill then CR.release ()
      end;
      Domain.join d;
      CR.reset ();
      (* availability: a full drain terminates, revoking on the way any
         dead-held lock it meets (off-path recoveries land here) *)
      let rec drain acc =
        match LM.extract_min q with None -> acc | Some _ -> drain (acc + 1)
      in
      let drained = drain 0 in
      let round_recoveries = (LM.ops q).lock_recoveries in
      recoveries := !recoveries + round_recoveries;
      (* per-node sortedness survives any fault point; the stronger
         guarantees below need to know whether a critical section was
         actually interrupted *)
      check "per-node lists stay sorted" true
        (LM.fold_nodes q
           (fun ok _ l ->
             ok
             &&
             let rec sorted = function
               | [] | [ _ ] -> true
               | a :: (b :: _ as r) -> a <= b && sorted r
             in
             sorted l)
           true);
      if round_recoveries = 0 then
        (* no revocation was needed, so no fault landed inside a
           critical section: nothing lost, nothing duplicated. (When a
           holder IS revoked mid-protocol, recovery promises
           availability and heap repair, not conservation — a holder
           parked mid-swap has the only reference to a detached list;
           see DESIGN.md on the overload model.) *)
        check_int "element books balance" real_prepop
          (drained + Atomic.get victim_got + !survivor_got))
    ks;
  !recoveries

let real_stall_recovery () =
  let ks = if full then List.init 16 (fun i -> i + 1) else [ 2; 3; 4; 6; 9 ] in
  let recoveries = real_sweep ~ks ~lease:(ms 3) ~kill:false () in
  check "a parked holder was revoked at least once" true (recoveries >= 1)

let real_kill_recovery () =
  let ks = if full then List.init 16 (fun i -> i + 1) else [ 3; 4; 6; 9; 12 ] in
  let recoveries = real_sweep ~ks ~lease:(ms 3) ~kill:true () in
  check "a dead holder was revoked at least once" true (recoveries >= 1)

(* A killed holder without a lease wedges the lock mound for good — the
   deadline variant is then the only way out, and it must return within
   its budget plus granularity. Which access index the victim holds the
   root lock at depends on the tree layout, so sweep a few kill points
   and require that at least one leaves a wedge the deadline escapes. *)
let real_kill_deadline_escape () =
  let budget = ms 20 in
  let escaped = ref 0 in
  List.iter
    (fun k ->
      CR.reset ();
      let q = LM.create () in
      (* lease = 0: revocation off, a dead holder wedges its node *)
      for i = 0 to 15 do
        LM.insert q i
      done;
      let d =
        Domain.spawn (fun () ->
            CR.arm_kill ~victim:(CR.self ()) ~after:k;
            try ignore (LM.extract_min q) with Chaos.Killed -> ())
      in
      Domain.join d;
      if CR.fired () then begin
        let t0 = Runtime.Real.monotonic_ns () in
        match LM.extract_min_until q ~deadline:(t0 + budget) with
        | Mound.Intf.Timeout ->
            let elapsed = Runtime.Real.monotonic_ns () - t0 in
            check "waited out the full budget" true (elapsed >= budget);
            check "escaped within scheduling granularity" true
              (elapsed < budget + grain_ns);
            check "timeout counted" true ((LM.ops q).deadline_timeouts >= 1);
            incr escaped
        | Mound.Intf.Ok _ -> () (* died outside any critical section *)
        | Mound.Intf.Rejected -> Alcotest.fail "no admission control here"
      end;
      CR.reset ())
    [ 1; 2; 3; 4; 5; 6; 8; 10 ];
  check "some kill wedged the root; the deadline escaped it" true
    (!escaped >= 1)

(* ---------------- suite ---------------- *)

let () =
  Alcotest.run "overload"
    [
      ( "bounded",
        [
          Alcotest.test_case "reject holds the watermark" `Quick bounded_reject;
          Alcotest.test_case "shed displaces low priority" `Quick bounded_shed;
          Alcotest.test_case "block honours its deadline" `Quick
            bounded_block_deadline;
          Alcotest.test_case "2 domains, watermark holds" `Quick
            bounded_concurrent_smoke;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "first attempt always runs" `Quick
            deadline_first_attempt;
          Alcotest.test_case "latency bound under contention" `Quick
            lf_deadline_bound_under_contention;
        ] );
      ( "sim-recovery",
        [
          Alcotest.test_case "lease revocation, crash sweep" `Quick
            sim_lease_recovery;
          Alcotest.test_case "deadline instead of wedge" `Quick
            sim_deadline_instead_of_wedge;
        ] );
      ( "real-recovery",
        [
          Alcotest.test_case "stalled holder revoked" `Quick
            real_stall_recovery;
          Alcotest.test_case "killed holder revoked" `Quick real_kill_recovery;
          Alcotest.test_case "deadline escapes a wedge" `Quick
            real_kill_deadline_escape;
        ] );
    ]
