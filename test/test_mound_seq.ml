(* Tests for the sequential mound. *)

module S = Mound.Seq_int

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_sut () =
  let q = S.create ~seed:21L () in
  {
    Model.sut_insert = S.insert q;
    sut_extract_min = (fun () -> S.extract_min q);
    sut_peek_min = (fun () -> S.peek_min q);
    sut_extract_many = (fun () -> S.extract_many q);
    sut_extract_approx = (fun () -> S.extract_approx q);
    sut_check = (fun () -> S.check q);
    sut_size = (fun () -> S.size q);
  }

let prop_model =
  QCheck.Test.make ~name:"matches sorted-multiset model" ~count:150
    Model.ops_arbitrary
    (fun script -> Model.agrees_with_model make_sut script)

let heapsort () =
  let rng = Prng.create 31L in
  let input = Array.init 30_000 (fun _ -> Prng.int rng 1_000_000 - 500_000) in
  let q = S.create ~seed:1L () in
  Array.iter (S.insert q) input;
  check "invariant" true (S.check q);
  check_int "size" 30_000 (S.size q);
  let rec drain acc =
    match S.extract_min q with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  let out = drain [] in
  check "sorted output" true (out = List.sort compare (Array.to_list input));
  check "empty at end" true (S.is_empty q)

let duplicates () =
  let q = S.create ~seed:2L () in
  for _ = 1 to 100 do
    S.insert q 7
  done;
  check_int "size" 100 (S.size q);
  for _ = 1 to 100 do
    check "dup extraction" true (S.extract_min q = Some 7)
  done;
  check "exhausted" true (S.extract_min q = None)

let empty_behaviour () =
  let q = S.create () in
  check "extract empty" true (S.extract_min q = None);
  check "peek empty" true (S.peek_min q = None);
  check "extract_many empty" true (S.extract_many q = []);
  check "extract_approx empty" true (S.extract_approx q = None);
  check "is_empty" true (S.is_empty q);
  check_int "size 0" 0 (S.size q);
  check "check on empty" true (S.check q)

(* The paper's best case: decreasing inserts always go to the root, so
   the mound never grows — one sorted list at the root (§VI-B fn. 1). *)
let decreasing_stays_shallow () =
  let q = S.create ~seed:3L () in
  for v = 10_000 downto 1 do
    S.insert q v
  done;
  check_int "depth stays 1" 1 (S.depth q);
  check "still correct" true (S.extract_min q = Some 1)

(* The paper's worst case: increasing inserts make every list a
   singleton, depth one more than a heap would need. *)
let increasing_singleton_lists () =
  let n = 4096 in
  let q = S.create ~seed:4L () in
  for v = 1 to n do
    S.insert q v
  done;
  let max_list =
    S.fold_nodes q (fun m _ l -> max m (List.length l)) 0
  in
  check_int "all lists singleton" 1 max_list;
  (* a heap would need 12 levels for 4096; allow the paper's +2 or so *)
  check "depth near log n" true (S.depth q <= 15);
  check "invariant" true (S.check q)

let random_lists_get_long () =
  let q = S.create ~seed:5L () in
  let rng = Prng.create 6L in
  for _ = 1 to 1 lsl 16 do
    S.insert q (Prng.int rng (1 lsl 30))
  done;
  let max_list = S.fold_nodes q (fun m _ l -> max m (List.length l)) 0 in
  check "random inserts build lists > 1" true (max_list > 2);
  (* mound depth beats a binary heap's for the same element count
     (16 levels) because lists hold multiple elements *)
  check "depth below heap depth" true (S.depth q <= 17)


let insert_many_behaviour () =
  let q = S.create ~seed:12L () in
  (* splice-friendly: narrow batch into an empty mound *)
  S.insert_many q [ 1; 2; 3 ];
  check "invariant" true (S.check q);
  check_int "size" 3 (S.size q);
  (* wide batch over existing content: falls back but stays correct *)
  let rng = Prng.create 13L in
  for _ = 1 to 500 do
    S.insert q (Prng.int rng 1000)
  done;
  S.insert_many q [ 0; 250; 500; 750; 999 ];
  check "invariant after wide batch" true (S.check q);
  check_int "size" 508 (S.size q);
  S.insert_many q [];
  check_int "empty batch no-op" 508 (S.size q);
  check "min" true (S.extract_min q = Some 0)

let extract_many_takes_root_list () =
  let q = S.create ~seed:7L () in
  List.iter (S.insert q) [ 5; 3; 9; 1; 1; 2 ];
  let batch = S.extract_many q in
  check "batch sorted" true (batch = List.sort compare batch);
  check "batch head was minimum" true (List.hd batch = 1);
  check "invariant after" true (S.check q);
  check_int "conservation" 6 (List.length batch + S.size q)

let extract_approx_member () =
  let q = S.create ~seed:8L () in
  let inserted = List.init 500 (fun i -> i * 3) in
  List.iter (S.insert q) inserted;
  match S.extract_approx q with
  | None -> Alcotest.fail "nonempty"
  | Some v ->
      check "member" true (List.mem v inserted);
      check_int "size decremented" 499 (S.size q);
      check "invariant" true (S.check q)

let mixed_churn_keeps_invariant () =
  let q = S.create ~seed:9L () in
  let rng = Prng.create 10L in
  for _ = 1 to 50_000 do
    if Prng.int rng 2 = 0 then S.insert q (Prng.int rng 100_000)
    else ignore (S.extract_min q)
  done;
  check "invariant after churn" true (S.check q)

let deterministic_given_seed () =
  let build () =
    let q = S.create ~seed:77L () in
    let rng = Prng.create 78L in
    for _ = 1 to 5_000 do
      S.insert q (Prng.int rng 1_000_000)
    done;
    (S.depth q, S.fold_nodes q (fun acc i l -> (i, l) :: acc) [])
  in
  check "identical structure" true (build () = build ())

let threshold_and_depth_args () =
  let q = S.create ~threshold:1 ~init_depth:4 ~seed:1L () in
  check_int "initial depth honored" 4 (S.depth q);
  for v = 1 to 1000 do
    S.insert q v
  done;
  check "works with threshold 1" true (S.check q)

let () =
  Alcotest.run "mound_seq"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_model;
          Alcotest.test_case "heapsort 30k" `Quick heapsort;
          Alcotest.test_case "duplicates" `Quick duplicates;
          Alcotest.test_case "empty behaviour" `Quick empty_behaviour;
        ] );
      ( "randomized shape (paper §VI-B)",
        [
          Alcotest.test_case "decreasing stays depth 1" `Quick
            decreasing_stays_shallow;
          Alcotest.test_case "increasing singleton lists" `Quick
            increasing_singleton_lists;
          Alcotest.test_case "random builds long lists" `Quick
            random_lists_get_long;
          Alcotest.test_case "deterministic given seed" `Quick
            deterministic_given_seed;
        ] );
      ( "extensions (paper §V)",
        [
          Alcotest.test_case "extract_many = root list" `Quick
            extract_many_takes_root_list;
          Alcotest.test_case "insert_many" `Quick insert_many_behaviour;
          Alcotest.test_case "extract_approx returns member" `Quick
            extract_approx_member;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "mixed churn invariant" `Quick
            mixed_churn_keeps_invariant;
          Alcotest.test_case "threshold/init_depth args" `Quick
            threshold_and_depth_args;
        ] );
    ]
