(* The model-checking tier: DPOR exploration of small fixed programs
   over the concurrent structures, with vector-clock race detection and
   spin-deadlock detection (lib/check).

   Default budgets keep `dune runtest` quick; DPOR_FULL=1 removes them
   (every program must then be explored to exhaustion). Everything is
   deterministic — a reported counterexample schedule replays exactly,
   here and under `repro dpor --schedule`. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let full = Sys.getenv_opt "DPOR_FULL" <> None

module A = Sim.Runtime.Atomic
module C = Check

let budget max_schedules =
  { C.default_config with
    max_schedules = (if full then 2_000_000 else max_schedules) }

let explore ?(config = budget 50_000) prog =
  let r = C.explore ~config prog in
  Format.printf "  [dpor] %a@." C.pp_report r;
  r

(* ---------------- explorer self-tests on toy programs ---------------- *)

(* Two plain get-then-set increments: the canonical lost update. The
   race detector must flag the unordered writes before the verdict even
   gets a say. *)
let toy_lost_update () =
  let prog =
    {
      C.name = "toy-lost-update";
      prepare =
        (fun () ->
          let c = A.make 0 in
          {
            C.bodies =
              Array.make 2 (fun _ -> A.set c (A.get c + 1));
            verdict =
              (fun () ->
                if A.get c = 2 then None
                else Some (Printf.sprintf "lost update: %d" (A.get c)));
          });
    }
  in
  let r = explore prog in
  match r.C.counterexample with
  | Some { failure = C.Race race; schedule } ->
      check "write-write race" true (race.first.wrote && race.second.wrote);
      (* the counterexample replays to the same failure *)
      let replay = C.run_schedule prog schedule in
      check "replay reproduces the race" true
        (match replay.C.replay_failure with
        | Some (C.Race _) -> true
        | _ -> false)
  | _ -> Alcotest.fail "expected a write-write race counterexample"

(* The same counter with fetch_and_add: no plain writes, no races, and
   every interleaving sums correctly — exploration must come back clean
   and exhaustive. *)
let toy_atomic_counter () =
  let prog =
    {
      C.name = "toy-faa-counter";
      prepare =
        (fun () ->
          let c = A.make 0 in
          {
            C.bodies =
              Array.make 2 (fun _ ->
                  ignore (A.fetch_and_add c 1);
                  ignore (A.fetch_and_add c 1));
            verdict =
              (fun () ->
                if A.get c = 4 then None
                else Some (Printf.sprintf "bad sum: %d" (A.get c)));
          });
    }
  in
  let r = explore prog in
  check "no failure" true (r.C.counterexample = None);
  check "exhaustive" true r.C.complete;
  check "conflicting ops: several inequivalent schedules" true
    (r.C.complete_runs > 1)

(* Threads on disjoint cells commute everywhere: sleep sets must
   collapse the 6 interleavings to a single complete execution. *)
let toy_disjoint_prune () =
  let prog =
    {
      C.name = "toy-disjoint";
      prepare =
        (fun () ->
          let a = A.make 0 and b = A.make 0 in
          {
            C.bodies =
              [|
                (fun _ ->
                  A.set a 1;
                  A.set a 2);
                (fun _ ->
                  A.set b 1;
                  A.set b 2);
              |];
            verdict =
              (fun () ->
                if A.get a = 2 && A.get b = 2 then None else Some "huh");
          });
    }
  in
  let r = explore prog in
  check "no failure" true (r.C.counterexample = None);
  check "exhaustive" true r.C.complete;
  check_int "independent programs need one execution" 1 r.C.complete_runs

(* A thread spinning on a flag nobody will ever set: spin parking must
   turn the livelock into a deadlock verdict naming the spinner. *)
let toy_deadlock () =
  let prog =
    {
      C.name = "toy-deadlock";
      prepare =
        (fun () ->
          let flag = A.make 0 and other = A.make 0 in
          {
            C.bodies =
              [|
                (fun _ ->
                  while A.get flag = 0 do
                    ()
                  done);
                (fun _ -> A.set other 1);
              |];
            verdict = (fun () -> None);
          });
    }
  in
  let r = explore prog in
  match r.C.counterexample with
  | Some { failure = C.Deadlock [ 0 ]; _ } -> ()
  | Some { failure; _ } ->
      Alcotest.failf "expected deadlock of thread 0, got %a" C.pp_failure
        failure
  | None -> Alcotest.fail "expected a deadlock counterexample"

(* The TTAS spinlock protecting a plain-write critical section: the
   checker must prove it — exhaustively, with no deadlock (spin parking
   wakes the loser when the holder releases) and no race report (the
   CAS acquire orders the two critical sections; this is exactly the
   benign get-spin pattern the write-write-only default exists for). *)
let toy_spinlock () =
  let module L = Baselines.Spinlock.Make (Sim.Runtime) in
  let prog =
    {
      C.name = "toy-spinlock";
      prepare =
        (fun () ->
          let lock = L.create () in
          let c = A.make 0 in
          {
            C.bodies =
              Array.make 2 (fun _ ->
                  L.acquire lock;
                  A.set c (A.get c + 1);
                  L.release lock);
            verdict =
              (fun () ->
                if A.get c = 2 then None
                else Some (Printf.sprintf "lock failed: %d" (A.get c)));
          });
    }
  in
  let r = explore prog in
  check "no failure" true (r.C.counterexample = None);
  check "exhaustive" true r.C.complete

(* ---------------- the structure catalog ---------------- *)

let catalog_case name () =
  match Harness.Dpor_exp.find name with
  | None -> Alcotest.failf "unknown catalog program %s" name
  | Some prog ->
      let r = explore ~config:(budget 200_000) prog in
      (match r.C.counterexample with
      | None -> ()
      | Some { failure; schedule } ->
          Alcotest.failf "%s: %a (schedule %s)" name C.pp_failure failure
            (Sim.Sched.Schedule.to_string schedule));
      check "explored to exhaustion" true r.C.complete;
      check "several inequivalent schedules" true (r.C.complete_runs > 1)

(* ---------------- seeded-mutation catches ---------------- *)

(* Shape matters: insert 1 first (it takes the root), then 2 (the root
   no longer dominates it, so it lands in a leaf). The mutant bug needs
   an element *below* the root when the root goes dirty and empty. *)
let two_extracts make =
  Harness.Dpor_exp.pq_program ~name:"two-extracts" ~make
    ~prepopulate:[ 1; 2 ] ~lin:true
    [ [ `Extract ]; [ `Extract ] ]

let mutant_caught () =
  let r = explore (two_extracts Mutant_mound.make_pq) in
  match r.C.counterexample with
  | Some { failure = C.Invariant msg; schedule } ->
      check "the lost element breaks linearizability" true
        (msg = "history not linearizable");
      (* and the schedule replays to the same verdict *)
      let replay =
        C.run_schedule (two_extracts Mutant_mound.make_pq) schedule
      in
      check "replay reproduces the violation" true
        (replay.C.replay_failure = Some (C.Invariant msg))
  | Some { failure; _ } ->
      Alcotest.failf "expected an invariant violation, got %a" C.pp_failure
        failure
  | None ->
      Alcotest.fail "mutant survived: dirty-bit mutation not caught"

(* The same program over the real lock-free mound must pass: the dirty
   check plus helping is exactly what the mutant dropped. *)
let upstream_survives () =
  let make () = Harness.Pq.On_sim.mound_lf.make ~capacity:64 in
  let r = explore ~config:(budget 200_000) (two_extracts make) in
  check "no failure" true (r.C.counterexample = None);
  check "exhaustive" true r.C.complete

(* The racy toy: two inserts via get-then-set. Race detector fires. *)
let racy_toy_caught () =
  let prog =
    Harness.Dpor_exp.pq_program ~name:"racy-toy" ~make:Racy_pq.make_racy
      ~lin:true
      [ [ `Insert 1 ]; [ `Insert 2 ] ]
  in
  let r = explore prog in
  match r.C.counterexample with
  | Some { failure = C.Race _; _ } -> ()
  | Some { failure; _ } ->
      Alcotest.failf "expected a race, got %a" C.pp_failure failure
  | None -> Alcotest.fail "racy toy survived the race detector"

(* Its CAS-loop control is clean under the identical program. *)
let cas_toy_survives () =
  let prog =
    Harness.Dpor_exp.pq_program ~name:"cas-toy" ~make:Racy_pq.make_cas
      ~lin:true
      [ [ `Insert 1; `Extract ]; [ `Insert 2 ] ]
  in
  let r = explore prog in
  check "no failure" true (r.C.counterexample = None);
  check "exhaustive" true r.C.complete

let () =
  Alcotest.run "dpor"
    [
      ( "explorer",
        [
          Alcotest.test_case "lost update caught" `Quick toy_lost_update;
          Alcotest.test_case "atomic counter proven" `Quick toy_atomic_counter;
          Alcotest.test_case "disjoint threads pruned" `Quick
            toy_disjoint_prune;
          Alcotest.test_case "spin deadlock detected" `Quick toy_deadlock;
          Alcotest.test_case "spinlock proven" `Quick toy_spinlock;
        ] );
      ( "structures",
        List.map
          (fun name -> Alcotest.test_case name `Quick (catalog_case name))
          (Harness.Dpor_exp.names ()) );
      ( "mutations",
        [
          Alcotest.test_case "mound dirty-bit mutant caught" `Quick
            mutant_caught;
          Alcotest.test_case "upstream mound survives" `Quick
            upstream_survives;
          Alcotest.test_case "racy toy caught" `Quick racy_toy_caught;
          Alcotest.test_case "cas toy survives" `Quick cas_toy_survives;
        ] );
    ]
