(* Tests for the real runtime: atomic passthrough semantics and the
   domain-local PRNG. *)

module R = Runtime.Real

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let atomic_passthrough () =
  let a = R.Atomic.make 1 in
  check_int "get" 1 (R.Atomic.get a);
  R.Atomic.set a 2;
  check_int "set" 2 (R.Atomic.get a);
  check "cas ok" true (R.Atomic.compare_and_set a 2 3);
  check "cas stale" false (R.Atomic.compare_and_set a 2 4);
  check_int "exchange returns old" 3 (R.Atomic.exchange a 5);
  check_int "faa returns old" 5 (R.Atomic.fetch_and_add a 7);
  check_int "faa applied" 12 (R.Atomic.get a)

let cas_is_physical () =
  let x = ref 1 in
  let a = R.Atomic.make x in
  (* a structurally equal but distinct ref must not match *)
  check "phys-distinct fails" false
    (R.Atomic.compare_and_set a (Sys.opaque_identity (ref 1)) (ref 2));
  check "exact ref succeeds" true (R.Atomic.compare_and_set a x (ref 2))

let rand_bounds () =
  for _ = 1 to 5_000 do
    let v = R.rand_int 13 in
    check "bounded" true (v >= 0 && v < 13)
  done

let rand_distinct_across_domains () =
  (* each domain draws from its own stream; concurrent draws must not
     crash and the streams should differ *)
  let draws =
    List.init 3 (fun _ ->
        Domain.spawn (fun () -> List.init 32 (fun _ -> R.rand_int 1_000_000)))
    |> List.map Domain.join
  in
  match draws with
  | [ a; b; c ] ->
      check "streams differ" true (a <> b && b <> c && a <> c)
  | _ -> assert false

let self_stable_and_distinct () =
  let here = R.self () in
  check_int "stable" here (R.self ());
  let there = Domain.spawn (fun () -> R.self ()) |> Domain.join in
  check "distinct per domain" true (here <> there)

let cpu_relax_returns () =
  (* smoke: callable in a loop without blocking *)
  for _ = 1 to 1_000 do
    R.cpu_relax ()
  done;
  check "returns" true true

let () =
  Alcotest.run "runtime"
    [
      ( "real",
        [
          Alcotest.test_case "atomic passthrough" `Quick atomic_passthrough;
          Alcotest.test_case "cas physical equality" `Quick cas_is_physical;
          Alcotest.test_case "rand bounds" `Quick rand_bounds;
          Alcotest.test_case "rand per-domain streams" `Quick
            rand_distinct_across_domains;
          Alcotest.test_case "self ids" `Quick self_stable_and_distinct;
          Alcotest.test_case "cpu_relax" `Quick cpu_relax_returns;
        ] );
    ]
