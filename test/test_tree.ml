(* Tests for the growable tree substrate shared by all mound variants. *)

module T = Mound.Tree.Make (Runtime.Real)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_tree ?threshold ?init_depth ?rand () =
  T.create ?threshold ?init_depth ?rand (fun () -> ref (-1))

(* Pin the constant-time level_of against the naive shift-loop reference
   it replaced, over every index of a 16-level tree plus the extremes. *)
let level_of_pinned () =
  let reference i =
    let rec go l v = if v <= 1 then l else go (l + 1) (v lsr 1) in
    go 0 i
  in
  for i = 1 to 1 lsl 16 do
    if Mound.Tree.level_of i <> reference i then
      Alcotest.failf "level_of %d: got %d, want %d" i (Mound.Tree.level_of i)
        (reference i)
  done;
  check_int "max_int" 61 (Mound.Tree.level_of max_int);
  check_int "2^40" 40 (Mound.Tree.level_of (1 lsl 40));
  check_int "2^40-1" 39 (Mound.Tree.level_of ((1 lsl 40) - 1))

let level_of () =
  check_int "level 1" 0 (T.level_of 1);
  check_int "level 2" 1 (T.level_of 2);
  check_int "level 3" 1 (T.level_of 3);
  check_int "level 4" 2 (T.level_of 4);
  check_int "level 7" 2 (T.level_of 7);
  check_int "level 8" 3 (T.level_of 8);
  check_int "level 2^20" 20 (T.level_of (1 lsl 20));
  check_int "level 2^20+5" 20 (T.level_of ((1 lsl 20) + 5))

let is_leaf () =
  check "1 is leaf at depth 1" true (T.is_leaf 1 ~depth:1);
  check "1 not leaf at depth 2" false (T.is_leaf 1 ~depth:2);
  check "2 leaf at depth 2" true (T.is_leaf 2 ~depth:2);
  check "3 leaf at depth 2" true (T.is_leaf 3 ~depth:2);
  check "2 not leaf at depth 3" false (T.is_leaf 2 ~depth:3);
  check "4..7 leaves at depth 3" true
    (List.for_all (fun i -> T.is_leaf i ~depth:3) [ 4; 5; 6; 7 ]);
  check "8 not leaf at depth 3" false (T.is_leaf 8 ~depth:3)

let creation_and_get () =
  let t = make_tree ~init_depth:3 () in
  check_int "depth" 3 (T.depth t);
  (* all 7 nodes reachable and distinct: writing each a distinct value
     must not clobber any other *)
  let slots = List.init 7 (fun i -> T.get t (i + 1)) in
  List.iteri (fun i r -> r := i) slots;
  List.iteri (fun i r -> check_int "slot content" i !r) slots

let get_unallocated_rejected () =
  let t = make_tree ~init_depth:1 () in
  (* the hot levels (0..2) are pre-published by [create] for padding,
     so the first genuinely unallocated row is level 3 *)
  List.iter (fun i -> ignore (T.get t i)) [ 2; 4; 7 ];
  Alcotest.check_raises "level 3 not allocated"
    (Invalid_argument "Mound.Tree.get: unallocated level") (fun () ->
      ignore (T.get t 8))

let bad_args_rejected () =
  Alcotest.check_raises "depth 0"
    (Invalid_argument "Mound.Tree.create: bad initial depth") (fun () ->
      ignore (make_tree ~init_depth:0 ()));
  Alcotest.check_raises "bad threshold"
    (Invalid_argument "Mound.Tree.create: bad threshold") (fun () ->
      ignore (make_tree ~threshold:0 ()))

let expansion () =
  let t = make_tree () in
  check_int "initial depth" 1 (T.depth t);
  T.expand t 1;
  check_int "depth 2" 2 (T.depth t);
  ignore (T.get t 2);
  ignore (T.get t 3);
  (* stale expand is a no-op *)
  T.expand t 1;
  check_int "still 2" 2 (T.depth t);
  T.expand t 2;
  check_int "depth 3" 3 (T.depth t);
  ignore (T.get t 7)

let binary_search_on_path () =
  (* ge over node indices along the ancestor chain of leaf 12 at depth 4:
     path is 1, 3, 6, 12 (levels 0..3). *)
  let ge_set set i = List.mem i set in
  (* ge holds from level 2 down: expect node 6 *)
  check_int "finds shallowest ge" 6
    (T.binary_search ~ge:(ge_set [ 6; 12 ]) 12 4);
  (* ge holds everywhere: expect root *)
  check_int "root when all ge" 1
    (T.binary_search ~ge:(ge_set [ 1; 3; 6; 12 ]) 12 4);
  (* ge holds only at the leaf *)
  check_int "leaf when only leaf ge" 12 (T.binary_search ~ge:(ge_set [ 12 ]) 12 4);
  (* depth 1: the root is the leaf *)
  check_int "depth-1 chain" 1 (T.binary_search ~ge:(fun _ -> true) 1 1)

let find_insert_point_expands () =
  (* With ge false everywhere, every probe fails and the tree grows each
     round until ge accepts (here: accept at depth 3). *)
  let t = make_tree () in
  let ge i = T.level_of i >= 2 in
  let c = T.find_insert_point t ~ge in
  check "returned a level >= 2 node" true (T.level_of c >= 2);
  check "tree grew to depth 3" true (T.depth t >= 3)

let find_insert_point_probes_leaves () =
  let t = make_tree ~init_depth:4 () in
  (* accept any leaf; result must lie on a leaf-to-root chain, i.e. be a
     valid node of the tree *)
  for _ = 1 to 100 do
    let c = T.find_insert_point t ~ge:(fun _ -> true) in
    check "root when all ge" true (c = 1)
  done;
  (* ge true only at leaves: returns a leaf *)
  let d = T.depth t in
  for _ = 1 to 100 do
    let c = T.find_insert_point t ~ge:(fun i -> T.is_leaf i ~depth:d) in
    check "leaf returned" true (T.is_leaf c ~depth:d)
  done

let deterministic_with_rand () =
  let mk () =
    let rng = Prng.create 77L in
    make_tree ~init_depth:5 ~rand:(fun b -> Prng.int rng b) ()
  in
  let t1 = mk () and t2 = mk () in
  let picks1 = List.init 50 (fun _ -> T.find_insert_point t1 ~ge:(fun i -> i > 3)) in
  let picks2 = List.init 50 (fun _ -> T.find_insert_point t2 ~ge:(fun i -> i > 3)) in
  check "same rand, same picks" true (picks1 = picks2)

let fold_visits_all () =
  let t = make_tree ~init_depth:3 () in
  for i = 1 to 7 do
    T.get t i := i
  done;
  let visited = T.fold t (fun acc i slot -> (i, !slot) :: acc) [] in
  check_int "7 nodes" 7 (List.length visited);
  check "indices match contents" true
    (List.for_all (fun (i, v) -> i = v) visited)

let row_allocation_accounting () =
  let t = make_tree ~init_depth:1 () in
  check_int "no expand-time allocations at creation" 0 (T.row_allocations t);
  (* levels 1 and 2 are pre-published (hot padding): expanding through
     them advances the depth without allocating *)
  T.expand t 1;
  T.expand t 2;
  check_int "pre-published rows not re-allocated" 0 (T.row_allocations t);
  T.expand t 3;
  check_int "level 3 allocated once" 1 (T.row_allocations t);
  (* a stale expand of an already-published level allocates nothing *)
  T.expand t 3;
  check_int "stale expand allocation-free" 1 (T.row_allocations t);
  T.expand t 4;
  check_int "level 4 allocated once" 2 (T.row_allocations t);
  check_int "depth advanced" 5 (T.depth t)

let concurrent_expansion () =
  (* domains race to expand; depth must advance exactly and all rows must
     be usable afterwards *)
  let t = make_tree ~init_depth:1 () in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for d = 1 to 10 do
              T.expand t d
            done))
  in
  List.iter Domain.join doms;
  check_int "depth 11" 11 (T.depth t);
  for i = 1 to (1 lsl 11) - 1 do
    ignore (T.get t i)
  done

(* property: find_insert_point's result always satisfies ge, and its
   parent (when not the root) does not — for any monotone-on-paths ge *)
let prop_insert_point_contract =
  QCheck.Test.make ~name:"find_insert_point contract" ~count:300
    QCheck.(pair (int_bound 1000) small_int)
    (fun (cut, seed) ->
      (* ge true on nodes with index >= cut+1: anti-monotone along paths
         (descendants have larger indices), like a mound's val >= v *)
      let rng = Prng.create (Int64.of_int (seed + 1)) in
      let t = make_tree ~init_depth:6 ~rand:(fun b -> Prng.int rng b) () in
      let ge i = i > cut in
      if not (ge ((1 lsl 6) - 1)) then true (* deepest leaf may fail ge *)
      else begin
        let c = T.find_insert_point t ~ge in
        ge c && (c = 1 || not (ge (c / 2)))
      end)

let prop_binary_search_boundary =
  QCheck.Test.make ~name:"binary_search finds the boundary" ~count:300
    QCheck.(pair (int_bound 5) small_int)
    (fun (k, leaf_seed) ->
      (* path of leaf at depth 6; ge holds from level k down *)
      let d = 6 in
      let leaf = (1 lsl (d - 1)) + (abs leaf_seed mod (1 lsl (d - 1))) in
      let path = List.init d (fun lvl -> leaf lsr (d - 1 - lvl)) in
      let suffix = List.filteri (fun i _ -> i >= k) path in
      let ge i = List.mem i suffix in
      T.binary_search ~ge leaf d = List.nth path k)

let () =
  Alcotest.run "tree"
    [
      ( "geometry",
        [
          Alcotest.test_case "level_of" `Quick level_of;
          Alcotest.test_case "level_of pinned to loop reference" `Quick
            level_of_pinned;
          Alcotest.test_case "is_leaf" `Quick is_leaf;
        ] );
      ( "storage",
        [
          Alcotest.test_case "creation and get" `Quick creation_and_get;
          Alcotest.test_case "unallocated get rejected" `Quick
            get_unallocated_rejected;
          Alcotest.test_case "bad args rejected" `Quick bad_args_rejected;
          Alcotest.test_case "expansion" `Quick expansion;
          Alcotest.test_case "row allocation accounting" `Quick
            row_allocation_accounting;
          Alcotest.test_case "fold visits all" `Quick fold_visits_all;
          Alcotest.test_case "concurrent expansion" `Quick
            concurrent_expansion;
        ] );
      ( "insert point search",
        [
          Alcotest.test_case "binary search on path" `Quick
            binary_search_on_path;
          Alcotest.test_case "expands when no leaf fits" `Quick
            find_insert_point_expands;
          Alcotest.test_case "probes leaves" `Quick
            find_insert_point_probes_leaves;
          Alcotest.test_case "deterministic with seeded rand" `Quick
            deterministic_with_rand;
          QCheck_alcotest.to_alcotest prop_insert_point_contract;
          QCheck_alcotest.to_alcotest prop_binary_search_boundary;
        ] );
    ]
