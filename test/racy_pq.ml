(* A deliberately broken toy priority queue, fixture for the checking
   tiers: the whole queue is one shared cell holding a sorted list, and
   both operations update it with a plain get-then-set instead of a CAS
   loop. Two consequences, each caught by a different tool:

   - the two [set]s of an interleaved pair of operations are unordered
     plain writes — the vector-clock race detector reports a write-write
     race on the cell;
   - an interleaved insert/insert or insert/extract loses one update, so
     the recorded history stops being linearizable (and usually breaks
     key conservation) — [Harness.Lin] must reject it.

   [make_cas] is the honest control: same structure, same footprint, but
   the read-modify-write is a CAS retry loop. It must survive both the
   race detector and the linearizability check. *)

module A = Sim.Runtime.Atomic

let rec insert_sorted v = function
  | [] -> [ v ]
  | x :: rest as l -> if v <= x then v :: l else x :: insert_sorted v rest

let pq_of ~name ~insert ~extract_min cell : Harness.Pq.t =
  let try_insert, insert_until, extract_min_until =
    Harness.Pq.degraded_until ~insert ~extract_min
  in
  {
    name;
    insert;
    insert_many = (fun b -> List.iter insert b);
    extract_min;
    extract_many =
      (fun () -> match extract_min () with None -> [] | Some v -> [ v ]);
    extract_approx = extract_min;
    try_insert;
    insert_until;
    extract_min_until;
    size = (fun () -> List.length (A.get cell));
    check = (fun () -> true);
    ops = (fun () -> None);
  }

let make_racy () : Harness.Pq.t =
  let cell = A.make [] in
  let insert v = A.set cell (insert_sorted v (A.get cell)) in
  let extract_min () =
    match A.get cell with
    | [] -> None
    | v :: rest ->
        A.set cell rest;
        Some v
  in
  pq_of ~name:"Racy Toy PQ (get-then-set)" ~insert ~extract_min cell

let make_cas () : Harness.Pq.t =
  let cell = A.make [] in
  let rec insert v =
    let cur = A.get cell in
    if not (A.compare_and_set cell cur (insert_sorted v cur)) then insert v
  in
  let rec extract_min () =
    match A.get cell with
    | [] -> None
    | v :: rest as cur ->
        if A.compare_and_set cell cur rest then Some v else extract_min ()
  in
  pq_of ~name:"Toy PQ (CAS loop)" ~insert ~extract_min cell
