(* Shape regressions: the paper's qualitative evaluation claims, encoded
   as deterministic small-scale simulator runs. These are the properties
   EXPERIMENTS.md reports; if a code change flips one, the reproduction
   story has changed and someone should look. All runs are seeded, so
   they are exact regressions, not statistical tests. *)

let check = Alcotest.(check bool)

let tp ?(profile = Sim.Profile.x86) ~panel ~threads ~ops ~init maker =
  (Harness.Sim_exp.run_cell ~profile ~seed:7L ~panel ~threads
     ~ops_per_thread:ops ~init_size:init maker)
    .throughput

(* Fig. 2 (e): the locking mound dominates insert; the Hunt heap does not
   scale. *)
let insert_panel_shape () =
  let t maker = tp ~panel:Insert ~threads:6 ~ops:512 ~init:0 maker in
  let lock = t Harness.Pq.On_sim.mound_lock in
  let lf = t Harness.Pq.On_sim.mound_lf in
  let hunt = t Harness.Pq.On_sim.hunt in
  check "locking mound beats lock-free" true (lock > lf);
  check "locking mound beats hunt by >2x" true (lock > 2. *. hunt);
  let hunt1 = tp ~panel:Insert ~threads:1 ~ops:512 ~init:0 Harness.Pq.On_sim.hunt in
  let lock1 = tp ~panel:Insert ~threads:1 ~ops:512 ~init:0 Harness.Pq.On_sim.mound_lock in
  check "hunt does not scale 1->6" true (hunt /. hunt1 < 2.);
  check "locking mound scales 1->6" true (lock /. lock1 > 1.5)

(* Fig. 2 (f): the skiplist dominates extract-min; the lock-free mound is
   the slowest (O(log N) software DCAS per moundify). *)
let extract_panel_shape () =
  let t maker = tp ~panel:Extract ~threads:6 ~ops:512 ~init:0 maker in
  let sl = t Harness.Pq.On_sim.skiplist in
  let lf = t Harness.Pq.On_sim.mound_lf in
  let lock = t Harness.Pq.On_sim.mound_lock in
  let hunt = t Harness.Pq.On_sim.hunt in
  check "skiplist wins extractmin" true (sl > lock && sl > lf && sl > hunt);
  check "lock-free mound slowest" true (lf < lock && lf < hunt);
  (* "the locking mound and the Hunt queue are similar" *)
  check "lock mound ~ hunt (within 2x)" true
    (lock < 2. *. hunt && hunt < 2. *. lock)

(* Fig. 2 (g): mounds ahead at one thread; skiplist ahead once threads
   are plentiful. *)
let mixed_crossover_shape () =
  let t threads maker = tp ~panel:Mixed ~threads ~ops:512 ~init:2048 maker in
  check "lock mound wins at 1 thread" true
    (t 1 Harness.Pq.On_sim.mound_lock > t 1 Harness.Pq.On_sim.skiplist);
  check "skiplist wins at 6 threads" true
    (t 6 Harness.Pq.On_sim.skiplist > t 6 Harness.Pq.On_sim.mound_lock)

(* Fig. 2 (h): extract_many beats extract_min drains on the mound. *)
let extract_many_advantage () =
  let many =
    tp ~panel:Extract_many ~threads:4 ~ops:0 ~init:4096
      Harness.Pq.On_sim.mound_lock
  in
  let single =
    tp ~panel:Extract ~threads:4 ~ops:1024 ~init:0 Harness.Pq.On_sim.mound_lock
  in
  check "extract_many drains faster" true (many > 1.5 *. single)

(* §I / intro: the STM heap does not scale (aborts at size/root). *)
let stm_declines () =
  let t threads = tp ~panel:Mixed ~threads ~ops:384 ~init:1024 Harness.Pq.On_sim.stm_heap in
  check "stm throughput declines 1->6" true (t 6 < t 1)

(* §IV: software DCAS costs several CAS; locking moundify ~2J+1 vs 5J. *)
let cas_arithmetic () =
  let rows = Harness.Ablation.sync_costs ~n:2048 ~ops:128 () in
  let find s o =
    (List.find
       (fun (r : Harness.Ablation.cost_row) ->
         r.structure = s && r.operation = o)
       rows)
      .cas_per_op
  in
  check "lf extract >= 2x lock extract in CAS" true
    (find "Mound (LF)" "extractmin" >= 2. *. find "Mound (Lock)" "extractmin");
  check "lf insert is one DCSS worth of CAS" true
    (let c = find "Mound (LF)" "insert" in
     c >= 5. && c <= 12.)

let () =
  Alcotest.run "shapes (paper claims as regressions)"
    [
      ( "fig2",
        [
          Alcotest.test_case "insert panel" `Quick insert_panel_shape;
          Alcotest.test_case "extractmin panel" `Quick extract_panel_shape;
          Alcotest.test_case "mixed crossover" `Quick mixed_crossover_shape;
          Alcotest.test_case "extract_many advantage" `Quick
            extract_many_advantage;
        ] );
      ( "prior work / cost analysis",
        [
          Alcotest.test_case "stm declines" `Quick stm_declines;
          Alcotest.test_case "cas arithmetic" `Quick cas_arithmetic;
        ] );
    ]
