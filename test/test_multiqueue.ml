(** The relaxed MultiQueue front-end ({!Mound.Multiqueue}): sequential
    semantics, batch and admission paths, rank-relaxed linearizability
    under the simulator (the relaxation is measured, not hoped), a
    crash-point sweep showing a dead domain never wedges the surviving
    queues, and sanity checks for the {!Harness.Rank_exp} oracle.

    The crash sweep's progress claim is deliberately precise: with a
    victim dead holding one queue's try-lock, every other queue stays
    fully operational — survivor inserts rotate past the dead lock and
    survivor extracts either complete or observe their deadline. What a
    crashed holder {e does} trap is the elements inside its queue; the
    conservation oracle accounts for them explicitly. *)

let check = Alcotest.check

(* Real-runtime instantiation (sequential tests). *)
module M = Mound.Multiqueue_int

(* Simulator instantiation (crash sweep). *)
module Smq = Mound.Multiqueue.Make (Sim.Runtime) (Mound.Int_ord)

(* ---- sequential semantics --------------------------------------------- *)

let test_sequential_drain () =
  let q = M.create ~queues:4 ~domains:1 () in
  let rng = Prng.create 3L in
  let keys = Array.init 512 (fun _ -> Prng.int rng 10_000) in
  Array.iter (M.insert q) keys;
  check Alcotest.int "size counts inserts" 512 (M.size q);
  check Alcotest.bool "invariant" true (M.check q);
  (* Quiescent tops are exact, so peek over them is the true minimum. *)
  let expected_min = Array.fold_left min max_int keys in
  check
    Alcotest.(option int)
    "peek is the true min" (Some expected_min) (M.peek_min q);
  let rec drain acc =
    match M.extract_min q with
    | None -> List.rev acc
    | Some v -> drain (v :: acc)
  in
  let drained = drain [] in
  check
    Alcotest.(list int)
    "conserved"
    (List.sort compare (Array.to_list keys))
    (List.sort compare drained);
  check Alcotest.bool "empty after drain" true (M.is_empty q);
  check Alcotest.bool "invariant after drain" true (M.check q);
  check Alcotest.(option int) "empty peek" None (M.peek_min q)

let test_single_queue_is_exact () =
  (* queues:1 degenerates to one sequential mound behind a lock: the
     relaxed front-end must then be an exact priority queue. *)
  let q = M.create ~queues:1 ~domains:1 () in
  let rng = Prng.create 9L in
  let keys = List.init 256 (fun _ -> Prng.int rng 1000) in
  List.iter (M.insert q) keys;
  let rec drain acc =
    match M.extract_min q with
    | None -> List.rev acc
    | Some v -> drain (v :: acc)
  in
  let drained = drain [] in
  check Alcotest.(list int) "exact sorted drain" (List.sort compare keys)
    drained

let test_batch_and_admission () =
  let q = M.create ~queues:2 ~domains:1 () in
  M.insert_many q [ 1; 2; 3; 4; 5 ];
  check Alcotest.int "batch size" 5 (M.size q);
  check Alcotest.bool "try_insert admits" true (M.try_insert q 0);
  let batch = M.extract_many q in
  check Alcotest.bool "extract_many returns a sorted, nonempty batch" true
    (batch <> [] && List.sort compare batch = batch);
  (match M.insert_until q ~deadline:Mound.Intf.no_deadline 7 with
  | Mound.Intf.Ok () -> ()
  | Mound.Intf.Timeout | Mound.Intf.Rejected ->
      Alcotest.fail "no-deadline insert cannot give up");
  (match M.extract_min_until q ~deadline:Mound.Intf.no_deadline with
  | Mound.Intf.Ok (Some _) -> ()
  | Mound.Intf.Ok None -> Alcotest.fail "spurious empty on a nonempty queue"
  | Mound.Intf.Timeout | Mound.Intf.Rejected ->
      Alcotest.fail "no-deadline extract cannot give up");
  (* extract_many may have drained a whole queue: restock before the
     probabilistic paths so the queue is provably nonempty *)
  M.insert q 9;
  M.insert q 11;
  (match M.extract_approx q with
  | Some _ -> ()
  | None -> Alcotest.fail "extract_approx on a nonempty queue");
  let rec drain () = match M.extract_min q with Some _ -> drain () | None -> () in
  drain ();
  (* Exact emptiness: a drained queue answers None, never a timeout. *)
  (match M.extract_min_until q ~deadline:Mound.Intf.no_deadline with
  | Mound.Intf.Ok None -> ()
  | _ -> Alcotest.fail "drained queue must report empty");
  check Alcotest.bool "ops counters exposed" true
    (let o = M.ops q in
     o.Mound.Stats.Ops.rejected >= 0)

(* ---- relaxed linearizability under the simulator ----------------------- *)

let mq_maker = Harness.Pq.On_sim.multiqueue ~queues:2 ~stickiness:4 ~domains:2 ()

(* Total keys alive never exceeds 6, so rank 6 is the loosest spec this
   history could need; [Lin.min_rank] reports the rank each history
   actually exhibited. *)
let test_relaxed_lin_bounded () =
  for i = 1 to 40 do
    let seed = Int64.of_int (400 + (31 * i)) in
    Sim.Sched.seed_ambient 5L;
    let q = mq_maker.Harness.Pq.make ~capacity:64 in
    List.iter q.Harness.Pq.insert [ 2; 5; 8 ];
    let scripts =
      [ [ `Insert 1; `Extract; `Extract ]; [ `Insert 3; `Extract ] ]
    in
    let recorded =
      List.map (fun s -> Harness.Lin.recorder ~now:Sim.Sched.events q s) scripts
    in
    let bodies =
      Array.of_list (List.map (fun (b, _) _tid -> b ()) recorded)
    in
    ignore (Sim.Sched.run ~seed bodies);
    let events = List.concat_map (fun (_, c) -> c ()) recorded in
    match Harness.Lin.min_rank ~init:[ 2; 5; 8 ] events with
    | Some k ->
        check Alcotest.bool "rank within the total-key bound" true (k <= 6)
    | None -> Alcotest.fail "history not relaxed-linearizable at any rank"
  done

(* The spec's teeth, pinned on a rigid (non-overlapping) history where
   the Wing-Gong reordering freedom cannot explain the skip away: an
   extraction returning the second-smallest key while the smallest is
   definitely present is exactly rank 2 — rejected by the exact spec,
   admitted at rank 2, and [min_rank] reports the 2. Emptiness is never
   relaxed: an [Ext None] with the model nonempty stays a violation at
   every rank, as does a lost element. *)
let test_relaxed_spec_teeth () =
  let ev inv resp op = { Harness.Lin.inv; resp; op } in
  let skip =
    [
      ev 0 1 (Harness.Lin.Ins 1);
      ev 2 3 (Harness.Lin.Ins 2);
      ev 4 5 (Harness.Lin.Ext (Some 2));
      ev 6 7 (Harness.Lin.Ext (Some 1));
    ]
  in
  check Alcotest.bool "exact spec rejects the skip" false
    (Harness.Lin.check skip);
  check Alcotest.bool "rank-2 spec admits the skip" true
    (Harness.Lin.check ~rank:2 skip);
  check Alcotest.(option int) "min_rank records the exhibited 2" (Some 2)
    (Harness.Lin.min_rank skip);
  let spurious_empty =
    [ ev 0 1 (Harness.Lin.Ins 1); ev 2 3 (Harness.Lin.Ext None) ]
  in
  check Alcotest.(option int) "emptiness never relaxed" None
    (Harness.Lin.min_rank spurious_empty);
  let lost =
    [ ev 0 1 (Harness.Lin.Ins 1); ev 2 3 (Harness.Lin.Ext (Some 9)) ]
  in
  check Alcotest.(option int) "invented element never excused" None
    (Harness.Lin.min_rank lost)

(* The structure genuinely relaxes: a single-threaded drain over spread
   queues with stickiness 1 re-samples the two-choice pair every call,
   and some call returns a key larger than a later one — an inversion no
   exact queue produces. Conservation still holds exactly. *)
let test_relaxation_exhibited () =
  let inverted = ref false in
  for seed = 1 to 8 do
    let q =
      M.create ~queues:4 ~stickiness:1 ~domains:2
        ~seed:(Int64.of_int seed) ()
    in
    let rng = Prng.create (Int64.of_int (100 + seed)) in
    let keys = List.init 64 (fun _ -> Prng.int rng 100_000) in
    List.iter (M.insert q) keys;
    let rec drain acc =
      match M.extract_min q with
      | None -> List.rev acc
      | Some v -> drain (v :: acc)
    in
    let drained = drain [] in
    check Alcotest.(list int) "drain conserves" (List.sort compare keys)
      (List.sort compare drained);
    if drained <> List.sort compare drained then inverted := true
  done;
  check Alcotest.bool "some drain is out of order" true !inverted

(* A single-threaded sim history must be exactly linearizable: with no
   concurrency the two-choice extract still returns some queue's true
   minimum, and the checker's rank-1 spec must accept the interleaving
   where each queue's min was the global min at its linearization. *)
let test_relaxed_lin_rank1_sequential () =
  Sim.Sched.seed_ambient 5L;
  let q =
    (Harness.Pq.On_sim.multiqueue ~queues:1 ~domains:1 ()).Harness.Pq.make
      ~capacity:64
  in
  List.iter q.Harness.Pq.insert [ 4; 6 ];
  let recorded =
    Harness.Lin.recorder ~now:Sim.Sched.events q
      [ `Insert 5; `Extract; `Extract; `Extract ]
  in
  let bodies = [| (fun _tid -> (fst recorded) ()) |] in
  ignore (Sim.Sched.run ~seed:1L bodies);
  let events = (snd recorded) () in
  check Alcotest.(option int) "exact at rank 1" (Some 1)
    (Harness.Lin.min_rank ~init:[ 4; 6 ] events)

(* ---- crash-point sweep: a dead domain never wedges the others ---------- *)

let nsurv = 3
let survivor_pairs = 4
let huge = 1_000_000
let prepop = List.init 8 (fun i -> 10 + (i * 7))

(* One simulated run: the victim (tid 0) inserts huge keys and can be
   crashed at any of its shared accesses — including inside a critical
   section, dying with a queue lock held; three survivors run
   insert/extract pairs over small keys. [budget = 0] means no deadline
   (the crash-free calibration run). Returns the scheduler verdict plus
   everything the conservation oracle needs. *)
let crash_run ~crash ~watchdog ~budget ~seed =
  Sim.Sched.seed_ambient 11L;
  let q = Smq.create ~queues:4 ~stickiness:4 ~domains:4 () in
  List.iter (Smq.insert q) prepop;
  let victim_done = ref 0 in
  let extracted = Array.make nsurv [] in
  let timeouts = Array.make nsurv 0 in
  let pairs_done = Array.make nsurv 0 in
  let inserted = Array.make nsurv [] in
  let survivor i =
    for k = 0 to survivor_pairs - 1 do
      let key = 100 + (i * 20) + k in
      Smq.insert q key;
      inserted.(i) <- key :: inserted.(i);
      let deadline =
        if budget = 0 then Mound.Intf.no_deadline
        else Sim.Runtime.monotonic_ns () + budget
      in
      (match Smq.extract_min_until q ~deadline with
      | Mound.Intf.Ok (Some v) -> extracted.(i) <- v :: extracted.(i)
      | Mound.Intf.Ok None ->
          (* The global size counter only reads 0 when every counted
             element is gone; the pre-population alone keeps it positive
             for the whole run, so an empty answer here is a bug. *)
          Alcotest.fail "spurious empty under crash"
      | Mound.Intf.Timeout -> timeouts.(i) <- timeouts.(i) + 1
      | Mound.Intf.Rejected -> Alcotest.fail "deadline extract cannot be rejected");
      pairs_done.(i) <- pairs_done.(i) + 1
    done
  in
  let bodies =
    Array.of_list
      ((fun _tid ->
         for k = 0 to 2 do
           Smq.insert q (huge + k);
           incr victim_done
         done)
      :: List.init nsurv (fun i _tid -> survivor i))
  in
  let crashes = if crash = 0 then [] else [ (0, crash) ] in
  let r = Sim.Sched.run ~seed ?watchdog ~crashes bodies in
  (r, q, victim_done, extracted, timeouts, pairs_done, inserted)

let test_crash_sweep_never_wedges () =
  (* Crash-free calibration: measures the victim's access range (the
     crash coordinate space), the virtual-time span (scales the
     watchdog and the per-op deadline budget), and checks that with no
     faults nothing times out. *)
  let r0, q0, _, _, timeouts0, pairs0, _ =
    crash_run ~crash:0 ~watchdog:None ~budget:0 ~seed:42L
  in
  check Alcotest.(list int) "calibration: no wedges" [] r0.Sim.Sched.wedged;
  check Alcotest.int "calibration: no timeouts" 0
    (Array.fold_left ( + ) 0 timeouts0);
  Array.iter
    (fun p -> check Alcotest.int "calibration: all pairs" survivor_pairs p)
    pairs0;
  check Alcotest.bool "calibration: quiescent invariant" true (Smq.check q0);
  let victim_accesses = r0.Sim.Sched.accesses.(0) in
  check Alcotest.bool "victim has a crash coordinate space" true
    (victim_accesses > 0);
  let budget = 8 * r0.Sim.Sched.span in
  let watchdog = Some (64 * r0.Sim.Sched.span) in
  let stride = if Sys.getenv_opt "MULTIQUEUE_FULL" = Some "1" then 1 else 3 in
  let crash = ref 1 in
  while !crash <= victim_accesses do
    let r, q, victim_done, extracted, _timeouts, pairs_done, inserted =
      crash_run ~crash:!crash ~watchdog ~budget ~seed:42L
    in
    (* The claim: no survivor is ever stopped by the watchdog — every
       operation completes or bounds itself by its deadline, because
       inserts rotate past the dead holder's queue and the emptiness
       scan consults the deadline. *)
    check Alcotest.(list int)
      (Printf.sprintf "crash@%d: no survivor wedged" !crash)
      [] r.Sim.Sched.wedged;
    Array.iter
      (fun p ->
        check Alcotest.int
          (Printf.sprintf "crash@%d: survivor finished" !crash)
          survivor_pairs p)
      pairs_done;
    (* Conservation, trapped elements included: everything the survivors
       extracted plus everything still inside the queues (read directly
       off the node lists, dead lock or not) must equal the
       pre-population plus the survivors' inserts on the small side, and
       the victim's completed inserts — plus at most one in-flight
       insert that may or may not have landed — on the huge side. *)
    let remaining = Smq.fold_nodes q (fun acc _ l -> l @ acc) [] in
    let all_extracted = Array.to_list extracted |> List.concat in
    let smalls l = List.filter (fun v -> v < huge) l in
    let all_inserted = Array.to_list inserted |> List.concat in
    check Alcotest.(list int)
      (Printf.sprintf "crash@%d: small keys conserved" !crash)
      (List.sort compare (prepop @ all_inserted))
      (List.sort compare (smalls remaining @ smalls all_extracted));
    let huges_seen =
      List.length remaining + List.length all_extracted
      - List.length (smalls remaining)
      - List.length (smalls all_extracted)
    in
    check Alcotest.bool
      (Printf.sprintf "crash@%d: huge keys are the victim's completed \
                       inserts (+ at most one in flight)" !crash)
      true
      (huges_seen = !victim_done || huges_seen = !victim_done + 1);
    crash := !crash + stride
  done

(* ---- rank-error oracle sanity ------------------------------------------ *)

let test_rank_oracle_exact_structure () =
  (* An exact structure drained by one domain replays with zero rank
     error, nothing unmatched and nothing spuriously empty: the oracle
     itself adds no noise without concurrency. *)
  let trial, stats =
    Harness.Rank_exp.run_rank_trial ~seed:3L ~threads:1 ~ops_per_thread:2048
      Harness.Pq.On_real.mound_lf
  in
  check Alcotest.int "all extractions replayed" 2048
    stats.Harness.Rank_exp.extractions;
  check Alcotest.int "nothing unmatched" 0 stats.Harness.Rank_exp.unmatched;
  check Alcotest.int "nothing spuriously empty" 0
    stats.Harness.Rank_exp.empty_returns;
  check (Alcotest.float 1e-9) "zero mean rank error" 0.
    stats.Harness.Rank_exp.mean_error;
  check Alcotest.int "zero max rank error" 0
    stats.Harness.Rank_exp.max_error;
  check Alcotest.int "trial ops match" 2048 trial.Harness.Real_exp.ops

let test_rank_oracle_multiqueue_bounded () =
  (* The relaxed front-end still conserves elements: every extraction
     matches the oracle multiset (no inventions, no duplicates), and a
     single-domain drain empties the queue completely. *)
  let _, stats =
    Harness.Rank_exp.run_rank_trial ~seed:3L ~threads:1 ~ops_per_thread:2048
      (Harness.Pq.On_real.multiqueue ~domains:2 ())
  in
  check Alcotest.int "all extractions replayed" 2048
    stats.Harness.Rank_exp.extractions;
  check Alcotest.int "nothing unmatched" 0 stats.Harness.Rank_exp.unmatched;
  check Alcotest.int "nothing spuriously empty" 0
    stats.Harness.Rank_exp.empty_returns

let () =
  Alcotest.run "multiqueue"
    [
      ( "sequential",
        [
          Alcotest.test_case "insert/drain conserves and empties" `Quick
            test_sequential_drain;
          Alcotest.test_case "queues:1 degenerates to an exact queue" `Quick
            test_single_queue_is_exact;
          Alcotest.test_case "batch, admission and deadline paths" `Quick
            test_batch_and_admission;
        ] );
      ( "relaxed-lin",
        [
          Alcotest.test_case "histories rank-bounded under the simulator"
            `Quick test_relaxed_lin_bounded;
          Alcotest.test_case "spec teeth: rank 2 pinned, emptiness exact"
            `Quick test_relaxed_spec_teeth;
          Alcotest.test_case "two-choice drain exhibits inversions" `Quick
            test_relaxation_exhibited;
          Alcotest.test_case "sequential history exact at rank 1" `Quick
            test_relaxed_lin_rank1_sequential;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crash sweep: dead domain never wedges others"
            `Quick test_crash_sweep_never_wedges;
        ] );
      ( "rank-oracle",
        [
          Alcotest.test_case "exact structure replays with zero error" `Quick
            test_rank_oracle_exact_structure;
          Alcotest.test_case "relaxed structure conserves under the oracle"
            `Quick test_rank_oracle_multiqueue_bounded;
        ] );
    ]
