(* Deliberately broken sources seeded for the static-analysis tier.
   Each module plants one defect the {!Analysis} engines must catch —
   and, where a dynamic tier covers the same defect class, carries a
   runnable program so the static verdict can be cross-checked against
   the DPOR / liveness verdict on the very same code:

   - [Lock_inverted_static]: the locking mound's hand-over-hand
     acquisition with the child locked before its parent, over the real
     [c]/[c / 2] index arithmetic. The lock-order analysis must flag
     the ancestor acquisition while a descendant is held; under the
     liveness checker the same code deadlocks against a correctly
     ordered peer (a fair no-write cycle), mirroring
     [Mutant_live.Lock_inverted].

   - [Post_publish_mutation]: an extraction that CASes the root record
     onto itself and then mutates its list field in place — the
     fresh-copy publication discipline of paper Listing 2 deleted. The
     publication analysis must flag both halves (re-publishing a shared
     read, then writing through it); under DPOR the two-extract
     interleaving double-delivers the minimum, breaking
     linearizability.

   - [Aliased_helper_dropped]: an extraction retry loop that binds the
     helper under another name ([let restore = moundify]) and never
     calls it. The token lint's substring heuristic sees "moundify" in
     the chunk and stays silent; helping-discipline v2 works on the
     call graph and must flag the loop. [Aliased_helper_kept] is the
     negative twin — same alias, actually invoked — that must stay
     clean. The dynamic analog (helping deleted means the victim's
     obstruction is never cleared) is [Mutant_live.No_help].

   This file is scanned as source by [test_analysis] (a declared dep of
   the test stanza); it must stay outside [lib/] so the shipped-tree
   lint stays clean. *)

module Lock_inverted_static = struct
  module R = Sim.Runtime

  type lnode = { locked : bool; owner : int }
  type t = { slots : lnode R.Atomic.t array }

  let create n =
    { slots = Array.init n (fun _ -> R.Atomic.make { locked = false; owner = -1 }) }

  let get_at t i = t.slots.(i)

  (* Faithful copies of the locking mound's primitives: the spin backs
     off, so helping-discipline stays quiet and the only defect is the
     acquisition order below. *)
  let set_lock slot =
    let rec spin () =
      let cur = R.Atomic.get slot in
      if cur.locked then begin
        R.cpu_relax ();
        spin ()
      end
      else if not (R.Atomic.compare_and_set slot cur { locked = true; owner = 0 })
      then spin ()
    in
    spin ()

  let unlock slot =
    let cur = R.Atomic.get slot in
    R.Atomic.set slot { cur with locked = false }

  (* THE MUTATION: upstream locks parent before child (ancestor order);
     here the child [c] is locked first, then its parent [c / 2]. *)
  let insert_inverted t c =
    let cslot = get_at t c in
    let pslot = get_at t (c / 2) in
    set_lock cslot;
    set_lock pslot;
    unlock pslot;
    unlock cslot

  (* The correct order, for the deadlock partner and as the analysis'
     in-file negative: ancestor before descendant must not be flagged. *)
  let extract_ordered t c =
    let pslot = get_at t (c / 2) in
    let cslot = get_at t c in
    set_lock pslot;
    set_lock cslot;
    unlock cslot;
    unlock pslot
end

module Post_publish_mutation = struct
  module R = Sim.Runtime
  module M = Mcas.Make (R.Atomic)

  type mnode = { mutable list : int list; seq : int }
  type t = { root : mnode M.loc }

  let create () = { root = M.make { list = []; seq = 0 } }

  (* Insert publishes a fresh record and backs off on contention —
     correct on both analysis dimensions, and the in-file negative. *)
  let rec insert t v =
    let cur = M.get t.root in
    if not (M.cas t.root cur { list = v :: cur.list; seq = cur.seq + 1 })
    then begin
      R.cpu_relax ();
      insert t v
    end

  (* THE MUTATION: the CAS re-installs the very record it read (a
     no-op "lock" by physical equality), then edits it in place. Two
     extractions that read the same root both pass the CAS and both
     deliver the old head. *)
  let rec extract_min t =
    let root = M.get t.root in
    match root.list with
    | [] -> None
    | hd :: tl ->
        if M.cas t.root root root then begin
          root.list <- tl;
          Some hd
        end
        else begin
          R.cpu_relax ();
          extract_min t
        end

  let size t = List.length (M.get t.root).list

  let check t =
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> a <= b && sorted rest
    in
    sorted (M.get t.root).list
end

module Aliased_helper_dropped = struct
  module R = Sim.Runtime
  module M = Mcas.Make (R.Atomic)

  type mnode = { list : int list; dirty : bool; seq : int }

  let moundify slot =
    let cur = M.get slot in
    ignore (M.cas slot cur { list = cur.list; dirty = false; seq = cur.seq + 1 })

  (* THE MUTATION: the helper is aliased — the token lint sees the
     substring "moundify" in the loop's chunk and stays silent — but
     [restore] is never called, so the retry loop neither helps nor
     backs off. *)
  let rec extract_spin t slot =
    let restore = moundify in
    ignore restore;
    let cur = M.get slot in
    match cur.list with
    | [] -> None
    | hd :: tl ->
        if M.cas slot cur { list = tl; dirty = cur.dirty; seq = cur.seq + 1 }
        then Some hd
        else extract_spin t slot

  (* The negative twin: the same alias, actually invoked on failure.
     The call graph resolves [restore] to [moundify], whose completing
     CAS counts as helping — no finding. *)
  let rec extract_helping t slot =
    let restore = moundify in
    let cur = M.get slot in
    match cur.list with
    | [] -> None
    | hd :: tl ->
        if M.cas slot cur { list = tl; dirty = cur.dirty; seq = cur.seq + 1 }
        then Some hd
        else begin
          restore slot;
          extract_helping t slot
        end
end

(* ---- dynamic cross-checks over the mutants ----------------------------- *)

(** Two threads on adjacent tree slots, opposite acquisition orders:
    each holds one lock and spins reading the other — the liveness
    checker must confirm a fair no-write cycle (a deadlock), the same
    verdict class as [Mutant_live.lock_inverted_program]. *)
let lock_inverted_static_program : Liveness.program =
  let prepare () =
    Sim.Sched.seed_ambient 11L;
    let t = Lock_inverted_static.create 4 in
    let ops_done = Array.make 2 0 in
    let bodies =
      [|
        (fun _ ->
          Lock_inverted_static.insert_inverted t 2;
          ops_done.(0) <- 1);
        (fun _ ->
          Lock_inverted_static.extract_ordered t 2;
          ops_done.(1) <- 1);
      |]
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  { Liveness.name = "mutant-lock-inverted-static"; prepare }

(** A [Harness.Pq.t] over the publication mutant, for
    {!Harness.Dpor_exp.pq_program}'s two-extract probe. *)
let post_publish_pq () : Harness.Pq.t =
  let q = Post_publish_mutation.create () in
  let module P = Post_publish_mutation in
  let try_insert, insert_until, extract_min_until =
    Harness.Pq.degraded_until ~insert:(P.insert q)
      ~extract_min:(fun () -> P.extract_min q)
  in
  {
    name = "Mutant root list (post-publish mutation)";
    insert = P.insert q;
    insert_many = (fun b -> List.iter (P.insert q) b);
    extract_min = (fun () -> P.extract_min q);
    extract_many =
      (fun () -> match P.extract_min q with None -> [] | Some v -> [ v ]);
    extract_approx = (fun () -> P.extract_min q);
    try_insert;
    insert_until;
    extract_min_until;
    size = (fun () -> P.size q);
    check = (fun () -> P.check q);
    ops = (fun () -> None);
  }
