(* Deliberately broken sources seeded for the static-analysis tier.
   Each module plants one defect the {!Analysis} engines must catch —
   and, where a dynamic tier covers the same defect class, carries a
   runnable program so the static verdict can be cross-checked against
   the DPOR / liveness verdict on the very same code:

   - [Lock_inverted_static]: the locking mound's hand-over-hand
     acquisition with the child locked before its parent, over the real
     [c]/[c / 2] index arithmetic. The lock-order analysis must flag
     the ancestor acquisition while a descendant is held; under the
     liveness checker the same code deadlocks against a correctly
     ordered peer (a fair no-write cycle), mirroring
     [Mutant_live.Lock_inverted].

   - [Post_publish_mutation]: an extraction that CASes the root record
     onto itself and then mutates its list field in place — the
     fresh-copy publication discipline of paper Listing 2 deleted. The
     publication analysis must flag both halves (re-publishing a shared
     read, then writing through it); under DPOR the two-extract
     interleaving double-delivers the minimum, breaking
     linearizability.

   - [Aliased_helper_dropped]: an extraction retry loop that binds the
     helper under another name ([let restore = moundify]) and never
     calls it. The token lint's substring heuristic sees "moundify" in
     the chunk and stays silent; helping-discipline v2 works on the
     call graph and must flag the loop. [Aliased_helper_kept] is the
     negative twin — same alias, actually invoked — that must stay
     clean. The dynamic analog (helping deleted means the victim's
     obstruction is never cleared) is [Mutant_live.No_help].

   - [Unstamped_publish]: Tree.expand's publish loop with the version
     stamp deleted — the CAS compares the bare pointer read at the top
     of the loop while [retire] recycles the slot concurrently. The
     aba-risk analysis must flag the CAS; [Stamped_publish] is the
     negative twin with the paper's seq discipline restored.

   - [Lost_update]: a sorted-list "priority queue" whose insert and
     extract are get-compute-set — the atomicity analysis must flag
     both plain sets; under DPOR two extractions double-deliver the
     minimum, breaking linearizability (the dynamic cross-check).

   - [Counter_drift]: the same defect on a bare counter ([bump] reads,
     adds one, plain-sets); [bump_atomic] is the negative twin using
     the primitive RMW.

   - [Unpadded_top_row]: a top-row cache record whose two hot mutable
     words sit adjacent with the pad block deleted, touched by two
     RMW-performing operations — the layout analysis must flag the
     record; the padded twin in the same module must stay clean.

   - [Spawn_counter_race]: the flat per-domain slot discipline
     collapsed into one shared cell bumped by every spawned domain with
     a plain read-modify-write. The escape analysis must classify the
     array spawn-captured and static-race must flag the plain write;
     [spawn_counter_program] is the dynamic twin — the same collapsed
     bump on a tracked sim cell, which the DPOR race oracle must report
     as an unordered write pair.

   - [Published_record_write]: a record boxed into an atomic cell whose
     mutable field is then bumped in place through a plain field write —
     escape must classify the field published at its declaration, and
     static-race must flag the unsynchronized access.

   - [Locked_tally]: the negative twin for the lock-region exemption —
     the same spawn-captured shared slot, every access inside a
     [Mutex]-held region; both rules must stay silent.

   - [Local_histogram]: the negative twin for the lattice bottom — a
     mutable array that never leaves its function; no spawn, no
     publish, no module-level binding, no findings.

   This file is scanned as source by [test_analysis] (a declared dep of
   the test stanza); it must stay outside [lib/] so the shipped-tree
   lint stays clean. *)

module Lock_inverted_static = struct
  module R = Sim.Runtime

  type lnode = { locked : bool; owner : int }
  type t = { slots : lnode R.Atomic.t array }

  let create n =
    { slots = Array.init n (fun _ -> R.Atomic.make { locked = false; owner = -1 }) }

  let get_at t i = t.slots.(i)

  (* Faithful copies of the locking mound's primitives: the spin backs
     off, so helping-discipline stays quiet and the only defect is the
     acquisition order below. *)
  let set_lock slot =
    let rec spin () =
      let cur = R.Atomic.get slot in
      if cur.locked then begin
        R.cpu_relax ();
        spin ()
      end
      else if not (R.Atomic.compare_and_set slot cur { locked = true; owner = 0 })
      then spin ()
    in
    spin ()

  let unlock slot =
    let cur = R.Atomic.get slot in
    R.Atomic.set slot { cur with locked = false }

  (* THE MUTATION: upstream locks parent before child (ancestor order);
     here the child [c] is locked first, then its parent [c / 2]. *)
  let insert_inverted t c =
    let cslot = get_at t c in
    let pslot = get_at t (c / 2) in
    set_lock cslot;
    set_lock pslot;
    unlock pslot;
    unlock cslot

  (* The correct order, for the deadlock partner and as the analysis'
     in-file negative: ancestor before descendant must not be flagged. *)
  let extract_ordered t c =
    let pslot = get_at t (c / 2) in
    let cslot = get_at t c in
    set_lock pslot;
    set_lock cslot;
    unlock cslot;
    unlock pslot
end

module Post_publish_mutation = struct
  module R = Sim.Runtime
  module M = Mcas.Make (R.Atomic)

  type mnode = { mutable list : int list; seq : int }
  type t = { root : mnode M.loc }

  let create () = { root = M.make { list = []; seq = 0 } }

  (* Insert publishes a fresh record and backs off on contention —
     correct on both analysis dimensions, and the in-file negative. *)
  let rec insert t v =
    let cur = M.get t.root in
    if not (M.cas t.root cur { list = v :: cur.list; seq = cur.seq + 1 })
    then begin
      R.cpu_relax ();
      insert t v
    end

  (* THE MUTATION: the CAS re-installs the very record it read (a
     no-op "lock" by physical equality), then edits it in place. Two
     extractions that read the same root both pass the CAS and both
     deliver the old head. *)
  let rec extract_min t =
    let root = M.get t.root in
    match root.list with
    | [] -> None
    | hd :: tl ->
        if M.cas t.root root root then begin
          root.list <- tl;
          Some hd
        end
        else begin
          R.cpu_relax ();
          extract_min t
        end

  let size t = List.length (M.get t.root).list

  let check t =
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> a <= b && sorted rest
    in
    sorted (M.get t.root).list
end

module Aliased_helper_dropped = struct
  module R = Sim.Runtime
  module M = Mcas.Make (R.Atomic)

  type mnode = { list : int list; dirty : bool; seq : int }

  let moundify slot =
    let cur = M.get slot in
    ignore (M.cas slot cur { list = cur.list; dirty = false; seq = cur.seq + 1 })

  (* THE MUTATION: the helper is aliased — the token lint sees the
     substring "moundify" in the loop's chunk and stays silent — but
     [restore] is never called, so the retry loop neither helps nor
     backs off. *)
  let rec extract_spin t slot =
    let restore = moundify in
    ignore restore;
    let cur = M.get slot in
    match cur.list with
    | [] -> None
    | hd :: tl ->
        if M.cas slot cur { list = tl; dirty = cur.dirty; seq = cur.seq + 1 }
        then Some hd
        else extract_spin t slot

  (* The negative twin: the same alias, actually invoked on failure.
     The call graph resolves [restore] to [moundify], whose completing
     CAS counts as helping — no finding. *)
  let rec extract_helping t slot =
    let restore = moundify in
    let cur = M.get slot in
    match cur.list with
    | [] -> None
    | hd :: tl ->
        if M.cas slot cur { list = tl; dirty = cur.dirty; seq = cur.seq + 1 }
        then Some hd
        else begin
          restore slot;
          extract_helping t slot
        end
end

module Unstamped_publish = struct
  module R = Sim.Runtime

  type row = { cells : int array }
  type t = { slot : row option R.Atomic.t }

  let create () = { slot = R.Atomic.make None }

  (* THE MUTATION: the expand-style publish loop with the version stamp
     deleted. The CAS compares the bare option read at the top of the
     loop — no counter folded into the fresh value, no dirty/seq
     re-validation between the read and the CAS — while [retire] below
     recycles the slot concurrently. A retire + republish between the
     read and the CAS restores the compared value and the CAS installs
     over a row it never observed. *)
  let rec publish t fresh =
    let cur = R.Atomic.get t.slot in
    match cur with
    | Some _ -> ()
    | None ->
        if not (R.Atomic.compare_and_set t.slot cur (Some fresh)) then begin
          R.cpu_relax ();
          publish t fresh
        end

  (* The recycler that makes the slot ABA-prone. *)
  let retire t = R.Atomic.set t.slot None

  let width t =
    match R.Atomic.get t.slot with
    | None -> 0
    | Some r -> Array.length r.cells
end

module Stamped_publish = struct
  module R = Sim.Runtime

  type row = { cells : int array }
  type vrow = { row : row option; ver : int }
  type t = { slot : vrow R.Atomic.t }

  let create () = { slot = R.Atomic.make { row = None; ver = 0 } }

  (* The negative twin: the same loop, but the compared record folds a
     bumped version counter into the fresh value — the paper's seq
     discipline. Re-publication after a retire cannot restore the
     compared value, so the stale CAS fails; aba-risk must stay
     silent. *)
  let rec publish t fresh =
    let cur = R.Atomic.get t.slot in
    match cur.row with
    | Some _ -> ()
    | None ->
        if
          not
            (R.Atomic.compare_and_set t.slot cur
               { row = Some fresh; ver = cur.ver + 1 })
        then begin
          R.cpu_relax ();
          publish t fresh
        end

  (* At-most-once retire: a lost race means someone else already moved
     the slot on, so there is nothing left to retire. *)
  let retire t =
    let cur = R.Atomic.get t.slot in
    if
      not
        (R.Atomic.compare_and_set t.slot cur
           { row = None; ver = cur.ver + 1 })
    then ()

  let width t =
    match (R.Atomic.get t.slot).row with
    | None -> 0
    | Some r -> Array.length r.cells
end

module Lost_update = struct
  module R = Sim.Runtime

  type t = { cell : int list R.Atomic.t }

  let create () = { cell = R.Atomic.make [] }

  let rec ins v = function
    | [] -> [ v ]
    | hd :: tl -> if v <= hd then v :: hd :: tl else hd :: ins v tl

  (* THE MUTATION: get-compute-set. The sorted insert is computed from
     the read and stored with a plain set — a concurrent update landing
     between the two is silently erased. The atomicity analysis must
     flag both sites; DPOR confirms the defect dynamically (two
     extractions of the same minimum). *)
  let insert t v =
    let cur = R.Atomic.get t.cell in
    R.Atomic.set t.cell (ins v cur)

  let extract_min t =
    match R.Atomic.get t.cell with
    | [] -> None
    | hd :: tl ->
        R.Atomic.set t.cell tl;
        Some hd

  let size t = List.length (R.Atomic.get t.cell)

  let check t =
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> a <= b && sorted rest
    in
    sorted (R.Atomic.get t.cell)
end

module Counter_drift = struct
  module R = Sim.Runtime

  type t = { hits : int R.Atomic.t }

  let create () = { hits = R.Atomic.make 0 }

  (* THE MUTATION: the same lost-update shape on a bare counter —
     concurrent bumps collapse into one. *)
  let bump t =
    let n = R.Atomic.get t.hits in
    R.Atomic.set t.hits (n + 1)

  (* The negative twin: the primitive RMW linearizes the increment and
     must stay clean. *)
  let bump_atomic t = ignore (R.Atomic.fetch_and_add t.hits 1)

  let read t = R.Atomic.get t.hits
end

module Unpadded_top_row = struct
  module R = Sim.Runtime

  (* THE MUTATION: a top-row cache with its pad block deleted — the
     two hot words share a cache line and two RMW-performing
     operations ping-pong it between cores. The layout analysis must
     flag this record, anchored at the first field of the pair. *)
  type top = { mutable top_val : int; mutable top_ver : int }

  (* The negative twin: the same shape with the pad block restored
     (Tree's pads idiom) — adjacency broken, no finding. *)
  type top_padded = {
    mutable pv : int;
    pad : int array;
    mutable pver : int;
  }

  type t = { top : top; shadow : top_padded; word : int R.Atomic.t }

  let create () =
    {
      top = { top_val = max_int; top_ver = 0 };
      shadow = { pv = max_int; pad = Array.make 7 0; pver = 0 };
      word = R.Atomic.make 0;
    }

  let publish t v =
    ignore (R.Atomic.fetch_and_add t.word 1);
    t.top.top_val <- v;
    t.top.top_ver <- t.top.top_ver + 1;
    t.shadow.pv <- v;
    t.shadow.pver <- t.shadow.pver + 1

  let retire t =
    ignore (R.Atomic.fetch_and_add t.word 1);
    t.top.top_ver <- t.top.top_ver + 1;
    t.shadow.pver <- t.shadow.pver + 1

  let top_val t = t.top.top_val
  let pad_live t = Array.length t.shadow.pad
end

module Spawn_counter_race = struct
  (* THE MUTATION: the flat per-domain slot discipline ([counts.(tid)]
     in the real driver) collapsed into one shared cell — every spawned
     domain bumps [tally.(0)] with a plain read-modify-write, and the
     post-join read aliases the same slot. *)
  let race threads =
    let tally = Array.make 1 0 in
    let doms =
      Array.init threads (fun _ ->
          Domain.spawn (fun () -> tally.(0) <- tally.(0) + 1))
    in
    Array.iter Domain.join doms;
    tally.(0)

  (* A second plain writer, so the single-writer census cannot downgrade
     the finding to info: two distinct functions write [tally]. *)
  let drain tally = tally.(0) <- tally.(0) - 1
end

module Published_record_write = struct
  module R = Sim.Runtime

  type slab = { mutable used : int; cap : int }

  let create () = R.Atomic.make { used = 0; cap = 8 }

  (* THE MUTATION: the record travels through the atomic cell, but the
     claim bumps its mutable field in place — a plain write to a
     location the escape lattice classifies published at the [slab]
     declaration (the atomic make boxes a literal carrying [used]). *)
  let claim cell =
    let s = R.Atomic.get cell in
    if s.used < s.cap then begin
      s.used <- s.used + 1;
      true
    end
    else false
end

module Locked_tally = struct
  (* The negative twin for the lock-region exemption: the same
     spawn-captured shared slot as [Spawn_counter_race], but every
     access sits inside a [Mutex]-held region — the dataflow lock
     counter exempts each one, and with every recorded access
     protected, escape classifies the discipline as evident and stays
     silent too. *)
  let guarded threads =
    let lock = Mutex.create () in
    let ledger = Array.make 1 0 in
    let doms =
      Array.init threads (fun _ ->
          Domain.spawn (fun () ->
              Mutex.lock lock;
              ledger.(0) <- ledger.(0) + 1;
              Mutex.unlock lock))
    in
    Array.iter Domain.join doms;
    Mutex.lock lock;
    let v = ledger.(0) in
    Mutex.unlock lock;
    v
end

module Local_histogram = struct
  (* The negative twin for the lattice bottom: the histogram never
     leaves this function — no spawn capture, no publish, no
     module-level binding — so every access is domain-local and both
     rules must stay silent. *)
  let tally n =
    let histo = Array.make 8 0 in
    for i = 0 to n - 1 do
      histo.(i mod 8) <- histo.(i mod 8) + 1
    done;
    Array.fold_left ( + ) 0 histo
end

(* ---- dynamic cross-checks over the mutants ----------------------------- *)

(** Two threads on adjacent tree slots, opposite acquisition orders:
    each holds one lock and spins reading the other — the liveness
    checker must confirm a fair no-write cycle (a deadlock), the same
    verdict class as [Mutant_live.lock_inverted_program]. *)
let lock_inverted_static_program : Liveness.program =
  let prepare () =
    Sim.Sched.seed_ambient 11L;
    let t = Lock_inverted_static.create 4 in
    let ops_done = Array.make 2 0 in
    let bodies =
      [|
        (fun _ ->
          Lock_inverted_static.insert_inverted t 2;
          ops_done.(0) <- 1);
        (fun _ ->
          Lock_inverted_static.extract_ordered t 2;
          ops_done.(1) <- 1);
      |]
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  { Liveness.name = "mutant-lock-inverted-static"; prepare }

(** A [Harness.Pq.t] over the publication mutant, for
    {!Harness.Dpor_exp.pq_program}'s two-extract probe. *)
let post_publish_pq () : Harness.Pq.t =
  let q = Post_publish_mutation.create () in
  let module P = Post_publish_mutation in
  let try_insert, insert_until, extract_min_until =
    Harness.Pq.degraded_until ~insert:(P.insert q)
      ~extract_min:(fun () -> P.extract_min q)
  in
  {
    name = "Mutant root list (post-publish mutation)";
    insert = P.insert q;
    insert_many = (fun b -> List.iter (P.insert q) b);
    extract_min = (fun () -> P.extract_min q);
    extract_many =
      (fun () -> match P.extract_min q with None -> [] | Some v -> [ v ]);
    extract_approx = (fun () -> P.extract_min q);
    try_insert;
    insert_until;
    extract_min_until;
    size = (fun () -> P.size q);
    check = (fun () -> P.check q);
    ops = (fun () -> None);
  }

(** A [Harness.Pq.t] over the lost-update mutant, for
    {!Harness.Dpor_exp.pq_program}'s two-extract probe: both
    extractions read the same head before either plain set lands, and
    the minimum is delivered twice. *)
let lost_update_pq () : Harness.Pq.t =
  let q = Lost_update.create () in
  let module P = Lost_update in
  let try_insert, insert_until, extract_min_until =
    Harness.Pq.degraded_until ~insert:(P.insert q)
      ~extract_min:(fun () -> P.extract_min q)
  in
  {
    name = "Mutant sorted list (lost update)";
    insert = P.insert q;
    insert_many = (fun b -> List.iter (P.insert q) b);
    extract_min = (fun () -> P.extract_min q);
    extract_many =
      (fun () -> match P.extract_min q with None -> [] | Some v -> [ v ]);
    extract_approx = (fun () -> P.extract_min q);
    try_insert;
    insert_until;
    extract_min_until;
    size = (fun () -> P.size q);
    check = (fun () -> P.check q);
    ops = (fun () -> None);
  }

(** The spawn-counter defect on a tracked sim cell, for the DPOR
    race oracle: two threads bump the same slot with a plain
    get-then-set. The explorer must report the unordered write pair —
    the dynamic verdict for the same defect [static-race] flags on
    {!Spawn_counter_race} (real arrays are invisible to the sim
    explorer, so the twin expresses the collapsed slot as a tracked
    cell). *)
let spawn_counter_program : Check.program =
  {
    Check.name = "mutant-spawn-counter-race";
    prepare =
      (fun () ->
        let module A = Sim.Runtime.Atomic in
        let tally = A.make 0 in
        {
          Check.bodies =
            Array.make 2 (fun _ -> A.set tally (A.get tally + 1));
          verdict =
            (fun () ->
              if A.get tally = 2 then None
              else Some (Printf.sprintf "lost bump: %d" (A.get tally)));
        });
  }
