(** Unit tests for the {!Analysis} AST engines: per-rule fixtures
    (positive and negative), waiver interaction, the seeded
    {!Mutant_static} defects, and dynamic cross-checks of the same
    mutant code under the liveness and DPOR tiers.

    The shipped tree being clean under both engines is enforced by the
    [@lint] alias in [bin/dune]; here we pin engine behavior on
    fixtures the way [test_lint] does for the token rules. *)

let scan path src = Analysis.scan ~path src
let with_rule r fs = List.filter (fun f -> f.Analysis.rule = r) fs
let check_count what n fs = Alcotest.(check int) what n (List.length fs)

(* ---- lock-order -------------------------------------------------------- *)

(* The locking mound's primitives, distilled: an acquire loop that backs
   off (so helping-discipline stays quiet) and a plain release. *)
let lock_prims =
  "type lnode = { locked : bool; owner : int }\n\n\
   let set_lock slot =\n\
  \  let rec spin () =\n\
  \    let cur = R.Atomic.get slot in\n\
  \    if cur.locked then begin\n\
  \      R.cpu_relax ();\n\
  \      spin ()\n\
  \    end\n\
  \    else if\n\
  \      not (R.Atomic.compare_and_set slot cur { locked = true; owner = 0 })\n\
  \    then spin ()\n\
  \  in\n\
  \  spin ()\n\n\
   let unlock slot =\n\
  \  let cur = R.Atomic.get slot in\n\
  \  R.Atomic.set slot { cur with locked = false }\n\n"

let test_lock_order () =
  let inverted =
    lock_prims
    ^ "let insert t c =\n\
      \  let cslot = T.get_at t c in\n\
      \  let pslot = T.get_at t (c / 2) in\n\
      \  set_lock cslot;\n\
      \  set_lock pslot;\n\
      \  unlock pslot;\n\
      \  unlock cslot\n"
  in
  let fs = with_rule "lock-order" (scan "lib/core/x.ml" inverted) in
  check_count "child-before-parent flagged" 1 fs;
  let ordered =
    lock_prims
    ^ "let insert t c =\n\
      \  let pslot = T.get_at t (c / 2) in\n\
      \  let cslot = T.get_at t c in\n\
      \  set_lock pslot;\n\
      \  set_lock cslot;\n\
      \  unlock cslot;\n\
      \  unlock pslot\n"
  in
  check_count "parent-before-child fine" 0
    (with_rule "lock-order" (scan "lib/core/x.ml" ordered));
  (* siblings 2n / 2n+1 are unordered: the moundify shape *)
  let siblings =
    lock_prims
    ^ "let swap t n =\n\
      \  let lslot = T.get_at t (2 * n) in\n\
      \  let rslot = T.get_at t ((2 * n) + 1) in\n\
      \  set_lock lslot;\n\
      \  set_lock rslot;\n\
      \  unlock rslot;\n\
      \  unlock lslot\n"
  in
  check_count "siblings fine" 0
    (with_rule "lock-order" (scan "lib/core/x.ml" siblings))

let test_lock_leak () =
  let leaky =
    lock_prims
    ^ "let probe t c =\n\
      \  let cslot = T.get_at t c in\n\
      \  set_lock cslot;\n\
      \  if c > 1 then unlock cslot\n"
  in
  check_count "conditional release leaks" 1
    (with_rule "lock-leak" (scan "lib/core/x.ml" leaky));
  let balanced =
    lock_prims
    ^ "let probe t c =\n\
      \  let cslot = T.get_at t c in\n\
      \  set_lock cslot;\n\
      \  let v = read t c in\n\
      \  unlock cslot;\n\
      \  v\n"
  in
  check_count "balanced fine" 0
    (with_rule "lock-leak" (scan "lib/core/x.ml" balanced));
  (* a raising path needs no release *)
  let raising =
    lock_prims
    ^ "let probe t c =\n\
      \  let cslot = T.get_at t c in\n\
      \  set_lock cslot;\n\
      \  if c = 0 then invalid_arg \"probe\";\n\
      \  unlock cslot\n"
  in
  check_count "raising path fine" 0
    (with_rule "lock-leak" (scan "lib/core/x.ml" raising))

(* ---- publication safety ------------------------------------------------ *)

let test_stale_publish () =
  let bad =
    "let mark q =\n\
    \  let root = M.get q in\n\
    \  ignore (M.cas q root root)\n"
  in
  check_count "re-publishing a shared read flagged" 1
    (with_rule "stale-publish" (scan "lib/core/x.ml" bad));
  let fresh =
    "let mark q =\n\
    \  let root = M.get q in\n\
    \  ignore (M.cas q root { list = root.list; dirty = false })\n"
  in
  check_count "fresh copy fine" 0
    (with_rule "stale-publish" (scan "lib/core/x.ml" fresh))

let test_post_publish_mutation () =
  let bad =
    "let extract q =\n\
    \  let root = M.get q in\n\
    \  if M.cas q root root then root.list <- []\n"
  in
  check_count "mutation after publish flagged" 1
    (with_rule "post-publish-mutation" (scan "lib/core/x.ml" bad));
  let shared =
    "let bump q =\n\
    \  let n = M.get q in\n\
    \  n.count <- n.count + 1\n"
  in
  check_count "mutating a shared read flagged" 1
    (with_rule "post-publish-mutation" (scan "lib/core/x.ml" shared));
  let local =
    "let build v =\n\
    \  let n = { count = 0; v } in\n\
    \  n.count <- 1;\n\
    \  n\n"
  in
  check_count "mutating a local fresh record fine" 0
    (with_rule "post-publish-mutation" (scan "lib/core/x.ml" local))

(* ---- the MultiQueue idioms --------------------------------------------- *)

(* The relaxed front-end's two protocol disciplines, distilled the way
   [lock_prims] distills the locking mound's. The shipped multiqueue.ml
   itself is covered by the clean-tree assertion below (its disciplines
   hold, so both engines stay silent over it); these fixtures pin that
   the rules would actually fire if either discipline broke.

   Sticky locking uses a bare [bool R.Atomic.t] word — the CAS(false,
   true) acquire shape, a different summary-detection path from the
   locking mound's record-literal [locked = true] stores. *)
let mq_lock_prims =
  "let lock_cell l =\n\
  \  let rec spin () =\n\
  \    if not (R.Atomic.compare_and_set l false true) then begin\n\
  \      R.cpu_relax ();\n\
  \      spin ()\n\
  \    end\n\
  \  in\n\
  \  spin ()\n\n\
   let unlock_cell l = R.Atomic.set l false\n\n"

let test_multiqueue_sticky_lock () =
  let leaky =
    mq_lock_prims
    ^ "let extract_if_lucky l q =\n\
      \  lock_cell l;\n\
      \  if happy q then begin\n\
      \    let v = pop q in\n\
      \    unlock_cell l;\n\
      \    v\n\
      \  end\n\
      \  else None\n"
  in
  check_count "unhappy path leaks the cell lock" 1
    (with_rule "lock-leak" (scan "lib/core/x.ml" leaky));
  let balanced =
    mq_lock_prims
    ^ "let extract_always l q =\n\
      \  lock_cell l;\n\
      \  let v = if happy q then pop q else None in\n\
      \  unlock_cell l;\n\
      \  v\n"
  in
  check_count "release on every path fine" 0
    (with_rule "lock-leak" (scan "lib/core/x.ml" balanced))

(* The cached-top word: a peeker must never CAS back the very value it
   read (the cache stops tracking the backing queue the moment the CAS
   succeeds over a concurrent extract); the unlock path publishes a
   freshly recomputed head instead. *)
let test_multiqueue_top_cache () =
  let republish =
    "let refresh_top cell =\n\
    \  let cached = R.Atomic.get cell in\n\
    \  ignore (R.Atomic.compare_and_set cell cached cached)\n"
  in
  check_count "republishing the cached top flagged" 1
    (with_rule "stale-publish" (scan "lib/core/x.ml" republish));
  let recompute =
    "let refresh_top cell q =\n\
    \  let cached = R.Atomic.get cell in\n\
    \  ignore (R.Atomic.compare_and_set cell cached (head q))\n"
  in
  check_count "publishing a recomputed head fine" 0
    (with_rule "stale-publish" (scan "lib/core/x.ml" recompute))

(* ---- helping discipline v2 --------------------------------------------- *)

let test_static_retry () =
  let bare =
    "let rec push q v =\n\
    \  let cur = M.get q in\n\
    \  if M.cas q cur { list = v :: cur.list; seq = cur.seq + 1 } then ()\n\
    \  else push q v\n"
  in
  check_count "bare retry flagged" 1
    (with_rule "static-retry" (scan "lib/core/x.ml" bare));
  let with_backoff =
    "let rec push q v =\n\
    \  let cur = M.get q in\n\
    \  if M.cas q cur { list = v :: cur.list; seq = cur.seq + 1 } then ()\n\
    \  else begin\n\
    \    R.cpu_relax ();\n\
    \    push q v\n\
    \  end\n"
  in
  check_count "backoff silences" 0
    (with_rule "static-retry" (scan "lib/core/x.ml" with_backoff));
  (* helping recognized through an alias, not a name: the helper is
     bound as [restore] and called; the token heuristic never sees a
     helper-shaped identifier in the loop *)
  let aliased_called =
    "let finish q =\n\
    \  let cur = M.get q in\n\
    \  ignore (M.cas q cur { list = cur.list; dirty = false })\n\n\
     let rec pull q =\n\
    \  let restore = finish in\n\
    \  let cur = M.get q in\n\
    \  if M.cas q cur { list = cur.list; dirty = cur.dirty } then ()\n\
    \  else begin\n\
    \    restore q;\n\
    \    pull q\n\
    \  end\n"
  in
  check_count "aliased helper silences" 0
    (with_rule "static-retry" (scan "lib/core/x.ml" aliased_called));
  (* mutual recursion is a cycle too *)
  let mutual =
    "let rec ping q =\n\
    \  if M.cas q 0 1 then () else pong q\n\n\
     and pong q =\n\
    \  if M.cas q 1 0 then () else ping q\n"
  in
  Alcotest.(check bool) "mutual recursion flagged" true
    (with_rule "static-retry" (scan "lib/core/x.ml" mutual) <> []);
  (* exempt trees keep their published loop shapes *)
  check_count "baselines exempt" 0
    (with_rule "static-retry" (scan "lib/baselines/x.ml" bare))

let test_static_deadline () =
  (* the disjoint complement of static-retry: the loop backs off, so
     static-retry is silent, but nothing in its call graph bounds the
     wait *)
  let waiting =
    "let rec push q v =\n\
    \  if M.cas q 0 v then ()\n\
    \  else begin\n\
    \    R.cpu_relax ();\n\
    \    push q v\n\
    \  end\n"
  in
  check_count "unbounded wait flagged" 1
    (with_rule "static-deadline" (scan "lib/core/x.ml" waiting));
  check_count "static-retry stays silent on it" 0
    (with_rule "static-retry" (scan "lib/core/x.ml" waiting));
  (* a deadline consulted directly silences it *)
  let bounded =
    "let rec push q v deadline =\n\
    \  if R.monotonic_ns () > deadline then false\n\
    \  else if M.cas q 0 v then true\n\
    \  else begin\n\
    \    R.cpu_relax ();\n\
    \    push q v deadline\n\
    \  end\n"
  in
  check_count "direct deadline silences" 0
    (with_rule "static-deadline" (scan "lib/core/x.ml" bounded));
  (* ... and one consulted through a callee the token engine cannot
     see: the loop's own chunk names no deadline, the call graph does *)
  let via_callee =
    "let out_of_time deadline =\n\
    \  R.monotonic_ns () > deadline\n\n\
     let give_up d =\n\
    \  out_of_time d\n\n\
     let rec push q v d =\n\
    \  if give_up d then false\n\
    \  else if M.cas q 0 v then true\n\
    \  else begin\n\
    \    R.cpu_relax ();\n\
    \    push q v d\n\
    \  end\n"
  in
  check_count "deadline through the call graph silences" 0
    (with_rule "static-deadline" (scan "lib/core/x.ml" via_callee));
  (* helping loops are exempt, as for static-retry *)
  let helping =
    "let finish q =\n\
    \  ignore (M.cas q cur { list = cur.list; dirty = false })\n\n\
     let rec pull q =\n\
    \  if M.cas q 0 1 then ()\n\
    \  else begin\n\
    \    R.cpu_relax ();\n\
    \    finish q;\n\
    \    pull q\n\
    \  end\n"
  in
  check_count "helping exempt" 0
    (with_rule "static-deadline" (scan "lib/core/x.ml" helping));
  (* exempt trees *)
  check_count "baselines exempt" 0
    (with_rule "static-deadline" (scan "lib/baselines/x.ml" waiting))

(* ---- aba-risk ---------------------------------------------------------- *)

let test_aba_risk () =
  (* the CAS compares the bare read while another function recycles the
     location: the ABA window the paper's seq stamp exists to close *)
  let bare =
    "let recycle q = R.Atomic.set q None\n\n\
     let rec publish q v =\n\
    \  let cur = R.Atomic.get q in\n\
    \  if not (R.Atomic.compare_and_set q cur (Some v)) then begin\n\
    \    R.cpu_relax ();\n\
    \    publish q v\n\
    \  end\n"
  in
  check_count "bare compared read over a recycled slot flagged" 1
    (with_rule "aba-risk" (scan "lib/core/x.ml" bare));
  (* folding a bumped version counter into the fresh value closes it *)
  let stamped =
    "let recycle q =\n\
    \  let cur = R.Atomic.get q in\n\
    \  ignore (R.Atomic.compare_and_set q cur { row = None; ver = cur.ver + 1 })\n\n\
     let rec publish q v =\n\
    \  let cur = R.Atomic.get q in\n\
    \  if\n\
    \    not (R.Atomic.compare_and_set q cur { row = Some v; ver = cur.ver + 1 })\n\
    \  then begin\n\
    \    R.cpu_relax ();\n\
    \    publish q v\n\
    \  end\n"
  in
  check_count "version stamp silences" 0
    (with_rule "aba-risk" (scan "lib/core/x.ml" stamped));
  (* re-validating the read's protocol bits before the CAS also counts *)
  let revalidated =
    "let recycle q = R.Atomic.set q None\n\n\
     let rec publish q v =\n\
    \  let cur = R.Atomic.get q in\n\
    \  if cur.dirty then publish q v\n\
    \  else if not (R.Atomic.compare_and_set q cur (Some v)) then begin\n\
    \    R.cpu_relax ();\n\
    \    publish q v\n\
    \  end\n"
  in
  check_count "dirty re-validation silences" 0
    (with_rule "aba-risk" (scan "lib/core/x.ml" revalidated));
  (* a location nothing else overwrites has no recycler to race *)
  let single_writer =
    "let rec publish q v =\n\
    \  let cur = R.Atomic.get q in\n\
    \  if not (R.Atomic.compare_and_set q cur (Some v)) then begin\n\
    \    R.cpu_relax ();\n\
    \    publish q v\n\
    \  end\n"
  in
  check_count "single-writer location fine" 0
    (with_rule "aba-risk" (scan "lib/core/x.ml" single_writer))

(* ---- atomicity --------------------------------------------------------- *)

let test_atomicity () =
  let lost =
    "let bump q =\n\
    \  let n = R.Atomic.get q in\n\
    \  R.Atomic.set q (n + 1)\n"
  in
  check_count "get-compute-set flagged" 1
    (with_rule "atomicity" (scan "lib/core/x.ml" lost));
  (* the primitive RMW linearizes the same update *)
  let rmw = "let bump q = ignore (R.Atomic.fetch_and_add q 1)\n" in
  check_count "fetch_and_add fine" 0
    (with_rule "atomicity" (scan "lib/core/x.ml" rmw));
  (* storing a value unrelated to the location's own read is a plain
     overwrite, not a lost update *)
  let overwrite =
    "let reset q v =\n\
    \  let n = R.Atomic.get other in\n\
    \  ignore n;\n\
    \  R.Atomic.set q v\n"
  in
  check_count "unrelated store fine" 0
    (with_rule "atomicity" (scan "lib/core/x.ml" overwrite));
  (* the mound's own unlock idiom is release-shaped and exempt *)
  let release =
    "let unlock s =\n\
    \  let cur = R.Atomic.get s in\n\
    \  R.Atomic.set s { cur with locked = false }\n"
  in
  check_count "lock release fine" 0
    (with_rule "atomicity" (scan "lib/core/x.ml" release))

let test_atomicity_interprocedural () =
  (* the plain set lives in a callee; the caller hands it the location
     and a value computed from that location's read — the lost update
     spans the call and only the call graph can see it *)
  let split =
    "let store q v = R.Atomic.set q v\n\n\
     let bump q =\n\
    \  let n = R.Atomic.get q in\n\
    \  store q (n + 1)\n"
  in
  let fs = scan "lib/core/x.ml" split in
  let at = with_rule "atomicity" fs in
  (* the callee's own set stores an opaque parameter (not flagged); the
     call site is *)
  check_count "lost update through a callee flagged once" 1 at;
  Alcotest.(check bool) "finding names the callee" true
    (Analysis.Summary.contains_sub (List.hd at).Analysis.msg "store");
  (* same callee, but the caller passes a value unrelated to the
     location it hands over: nothing lost *)
  let unrelated =
    "let store q v = R.Atomic.set q v\n\n\
     let seed q v =\n\
    \  store q (v * 2)\n"
  in
  check_count "unrelated argument fine" 0
    (with_rule "atomicity" (scan "lib/core/x.ml" unrelated))

(* ---- layout ------------------------------------------------------------ *)

(* Two RMW-performing operations touching the record's hot fields: the
   contention precondition for a false-sharing flag. *)
let layout_ops =
  "let push t v =\n\
  \  ignore (R.Atomic.fetch_and_add t.word 1);\n\
  \  t.h.a <- v;\n\
  \  t.h.b <- t.h.b + 1\n\n\
   let pop t =\n\
  \  ignore (R.Atomic.fetch_and_add t.word 1);\n\
  \  t.h.b <- t.h.b + 1\n"

let test_layout () =
  let unpadded =
    "type hot = { mutable a : int; mutable b : int }\n\n" ^ layout_ops
  in
  check_count "adjacent hot fields under contention flagged" 1
    (with_rule "layout" (scan "lib/core/x.ml" unpadded));
  let padded =
    "type hot = { mutable a : int; pad : int array; mutable b : int }\n\n"
    ^ layout_ops
  in
  check_count "pad block between them silences" 0
    (with_rule "layout" (scan "lib/core/x.ml" padded));
  (* one toucher means no cross-core ping-pong: the reasoned-waiver
     story for single-owner records, here silent by construction *)
  let single_toucher =
    "type hot = { mutable a : int; mutable b : int }\n\n\
     let push t v =\n\
    \  ignore (R.Atomic.fetch_and_add t.word 1);\n\
    \  t.h.a <- v;\n\
    \  t.h.b <- t.h.b + 1\n"
  in
  check_count "single contended toucher fine" 0
    (with_rule "layout" (scan "lib/core/x.ml" single_toucher));
  (* touchers that never CAS/RMW are readers/sequential setup: silent *)
  let cold_touchers =
    "type hot = { mutable a : int; mutable b : int }\n\n\
     let init t v =\n\
    \  t.h.a <- v;\n\
    \  t.h.b <- v\n\n\
     let drain t =\n\
    \  t.h.a <- 0;\n\
    \  t.h.b <- 0\n"
  in
  check_count "no contention source fine" 0
    (with_rule "layout" (scan "lib/core/x.ml" cold_touchers))

(* ---- callgraph resolution through local module aliases ----------------- *)

let test_letmodule_alias_resolution () =
  (* a local [module A = Atomic] must still count as CAS-providing:
     the bare loop below is only a retry loop if A.compare_and_set is
     recognized through the alias *)
  let bare =
    "let rec push q v =\n\
    \  let module A = Atomic in\n\
    \  if A.compare_and_set q 0 v then () else push q v\n"
  in
  check_count "CAS through a local alias of the substrate seen" 1
    (with_rule "static-retry" (scan "lib/core/x.ml" bare));
  (* a helper reached through a local alias of a nested module must
     resolve — the loop helps, so no finding *)
  let kept =
    "module Helpers = struct\n\
    \  let finish q =\n\
    \    let cur = M.get q in\n\
    \    ignore (M.cas q cur { list = cur.list; dirty = false })\n\
     end\n\n\
     let rec pull q =\n\
    \  let module H = Helpers in\n\
    \  let cur = M.get q in\n\
    \  if M.cas q cur { list = cur.list; dirty = cur.dirty } then ()\n\
    \  else begin\n\
    \    H.finish q;\n\
    \    pull q\n\
    \  end\n"
  in
  check_count "helper through a local module alias silences" 0
    (with_rule "static-retry" (scan "lib/core/x.ml" kept));
  (* the twin that binds the alias but never calls the helper keeps
     the finding: resolution must not bleed into mere mention *)
  let dropped =
    "module Helpers = struct\n\
    \  let finish q =\n\
    \    let cur = M.get q in\n\
    \    ignore (M.cas q cur { list = cur.list; dirty = false })\n\
     end\n\n\
     let rec pull q =\n\
    \  let module H = Helpers in\n\
    \  ignore H.finish;\n\
    \  let cur = M.get q in\n\
    \  if M.cas q cur { list = cur.list; dirty = cur.dirty } then ()\n\
    \  else pull q\n"
  in
  check_count "uncalled aliased helper still flagged" 1
    (with_rule "static-retry" (scan "lib/core/x.ml" dropped))

(* ---- waiver interaction ------------------------------------------------ *)

let test_waivers_cover_static_findings () =
  let bare body = "let rec push q v =\n" ^ body in
  ignore bare;
  let flagged =
    "let rec push q v =\n\
    \  if M.cas q 0 v then () else push q v\n"
  in
  check_count "unwaived" 1
    (with_rule "static-retry" (scan "lib/core/x.ml" flagged));
  let waived =
    "(* lint: allow — fixture loop, contention impossible here *)\n"
    ^ flagged
  in
  check_count "reasoned waiver silences" 0 (scan "lib/core/x.ml" waived);
  (* a reasonless waiver is itself a finding, even over a static rule *)
  let reasonless = "(* lint: allow *)\n" ^ flagged in
  check_count "reasonless waiver flagged" 1
    (with_rule "waiver" (scan "lib/core/x.ml" reasonless));
  (* a static finding keeps a waiver live: no stale-waiver complaint *)
  let live =
    "(* lint: allow — fixture loop, contention impossible here *)\n"
    ^ "let rec push q v =\n\
      \  if M.cas q 0 v then () else push q v\n"
  in
  check_count "waiver over static finding not stale" 0
    (with_rule "waiver" (scan "lib/core/x.ml" live))

(* ---- parse errors ------------------------------------------------------ *)

let test_parse_error_reported () =
  let fs = scan "lib/core/x.ml" "let x = (\n" in
  Alcotest.(check bool) "parse finding" true
    (with_rule "parse" fs <> [])

(* ---- the seeded mutants ------------------------------------------------ *)

let mutant_src = "mutant_static.ml"

let scan_mutant () =
  if Sys.file_exists mutant_src then Some (Analysis.scan_file mutant_src)
  else None

let test_mutant_lock_inverted_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      let lo = with_rule "lock-order" fs in
      check_count "one inversion" 1 lo;
      Alcotest.(check bool) "names the ancestor/descendant order" true
        (let f = List.hd lo in
         f.Analysis.msg <> "" && f.Analysis.file = mutant_src);
      (* the correctly ordered partner and the primitives stay clean *)
      check_count "no leak" 0 (with_rule "lock-leak" fs)

let test_mutant_post_publish_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      check_count "stale publish" 1 (with_rule "stale-publish" fs);
      (* the republished root, plus [Published_record_write]'s in-place
         bump — the same discipline broken from the other direction *)
      check_count "post-publish mutation" 2
        (with_rule "post-publish-mutation" fs)

let test_mutant_aliased_helper_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      let sr = with_rule "static-retry" fs in
      check_count "exactly the dropped-alias loop" 1 sr;
      let msg = (List.hd sr).Analysis.msg in
      Alcotest.(check bool) "names extract_spin" true
        (let sub = "Aliased_helper_dropped.extract_spin" in
         let rec has i =
           i + String.length sub <= String.length msg
           && (String.sub msg i (String.length sub) = sub || has (i + 1))
         in
         has 0);
      (* the token engine's substring heuristic misses it: that gap is
         the rule's reason to exist *)
      let token = Lint_rules.scan_file mutant_src in
      check_count "token lint blind to the alias" 0
        (List.filter
           (fun f -> f.Lint_rules.rule = "retry-no-backoff")
           token)

let contains = Analysis.Summary.contains_sub

let test_mutant_unstamped_publish_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      let ar = with_rule "aba-risk" fs in
      (* the unstamped publish loop, plus the post-publish mutant's
         republishing CAS (root is recycled by its insert) — the
         stamped twin and every seq-disciplined loop stay silent *)
      check_count "exactly the two ABA-prone CAS sites" 2 ar;
      Alcotest.(check bool) "one names the recycled slot" true
        (List.exists (fun f -> contains f.Analysis.msg "slot") ar);
      Alcotest.(check bool) "one names the republished root" true
        (List.exists (fun f -> contains f.Analysis.msg "root") ar)

let test_mutant_lost_update_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      let at = with_rule "atomicity" fs in
      check_count "both pq sets and the counter bump" 3 at;
      check_count "two on the sorted-list cell" 2
        (List.filter (fun f -> contains f.Analysis.msg "cell") at);
      check_count "one on the drifting counter" 1
        (List.filter (fun f -> contains f.Analysis.msg "hits") at)

let test_mutant_unpadded_top_row_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      let ly = with_rule "layout" fs in
      check_count "exactly the unpadded record" 1 ly;
      Alcotest.(check bool) "names the adjacent hot pair" true
        (let msg = (List.hd ly).Analysis.msg in
         contains msg "top_val" && contains msg "top_ver")

let test_mutant_spawn_counter_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      Alcotest.(check bool) "tally classified spawn-captured" true
        (List.exists
           (fun f ->
             contains f.Analysis.msg "tally"
             && contains f.Analysis.msg "spawn-captured")
           (with_rule "escape" fs));
      let sr =
        List.filter
          (fun f -> contains f.Analysis.msg "tally")
          (with_rule "static-race" fs)
      in
      check_count "one race finding for the shared slot" 1 sr;
      Alcotest.(check bool) "a plain write, not downgraded" true
        (let m = (List.hd sr).Analysis.msg in
         contains m "plain write" && not (contains m "single-writer"))

let test_mutant_published_record_flagged () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      Alcotest.(check bool) "used classified published at its decl" true
        (List.exists
           (fun f ->
             contains f.Analysis.msg "used"
             && contains f.Analysis.msg "published")
           (with_rule "escape" fs));
      Alcotest.(check bool) "the in-place bump is a race finding" true
        (List.exists
           (fun f -> contains f.Analysis.msg "used")
           (with_rule "static-race" fs))

let test_mutant_escape_twins_clean () =
  match scan_mutant () with
  | None -> ()
  | Some fs ->
      let mentions key f = contains f.Analysis.msg key in
      (* [Locked_tally]: every access mutex-held — both rules silent *)
      check_count "locked ledger: no findings" 0
        (List.filter (mentions "ledger")
           (with_rule "escape" fs @ with_rule "static-race" fs));
      (* [Local_histogram]: never leaves its function — silent *)
      check_count "local histogram: no findings" 0
        (List.filter (mentions "histo")
           (with_rule "escape" fs @ with_rule "static-race" fs))

(* ---- escape & static-race ---------------------------------------------- *)

let spawn_capture_src =
  "let race n =\n\
  \  let tally = Array.make 1 0 in\n\
  \  let doms =\n\
  \    Array.init n (fun _ ->\n\
  \        Domain.spawn (fun () -> tally.(0) <- tally.(0) + 1))\n\
  \  in\n\
  \  Array.iter Domain.join doms;\n\
  \  tally.(0)\n"

let test_escape_spawn_capture () =
  let fs = scan "lib/core/x.ml" spawn_capture_src in
  let esc = with_rule "escape" fs in
  check_count "captured array flagged once" 1 esc;
  Alcotest.(check bool) "classified spawn-captured" true
    (contains (List.hd esc).Analysis.msg "spawn-captured");
  check_count "one race finding for the shared slot" 1
    (with_rule "static-race" fs)

let test_escape_module_global () =
  let src = "let hits = ref 0\n\nlet bump () = incr hits\n" in
  let fs = scan "lib/core/x.ml" src in
  let esc = with_rule "escape" fs in
  check_count "module-level ref flagged" 1 esc;
  Alcotest.(check bool) "classified module-global" true
    (contains (List.hd esc).Analysis.msg "module-global");
  (* one plain-writing function: surfaced, but downgraded *)
  let sr = with_rule "static-race" fs in
  check_count "the bump is still a finding" 1 sr;
  Alcotest.(check bool) "downgraded by the single-writer census" true
    (contains (List.hd sr).Analysis.msg "single-writer")

let test_escape_published () =
  let src =
    "type slab = { mutable used : int; cap : int }\n\n\
     let create () = R.Atomic.make { used = 0; cap = 8 }\n\n\
     let claim cell =\n\
    \  let s = R.Atomic.get cell in\n\
    \  s.used <- s.used + 1\n"
  in
  let fs = scan "lib/core/x.ml" src in
  let esc = with_rule "escape" fs in
  check_count "boxed mutable label flagged" 1 esc;
  Alcotest.(check bool) "classified published, anchored at the decl" true
    (let f = List.hd esc in
     contains f.Analysis.msg "published" && f.Analysis.line = 1);
  check_count "the in-place bump is a race finding" 1
    (with_rule "static-race" fs)

let test_escape_negatives () =
  (* domain-local: the lattice bottom — never spawned, never published *)
  let local =
    "let tally n =\n\
    \  let histo = Array.make 8 0 in\n\
    \  for i = 0 to n - 1 do\n\
    \    histo.(i mod 8) <- histo.(i mod 8) + 1\n\
    \  done;\n\
    \  Array.fold_left ( + ) 0 histo\n"
  in
  let fs = scan "lib/core/x.ml" local in
  check_count "domain-local array: no escape" 0 (with_rule "escape" fs);
  check_count "domain-local array: no race" 0 (with_rule "static-race" fs);
  (* lock-held regions: every access between lock and unlock is
     protected by construction, and with all accesses disciplined the
     capture itself is not a finding either *)
  let locked =
    "let guarded n lock =\n\
    \  let ledger = Array.make 1 0 in\n\
    \  let doms =\n\
    \    Array.init n (fun _ ->\n\
    \        Domain.spawn (fun () ->\n\
    \            Mutex.lock lock;\n\
    \            ledger.(0) <- ledger.(0) + 1;\n\
    \            Mutex.unlock lock))\n\
    \  in\n\
    \  Array.iter Domain.join doms;\n\
    \  Mutex.lock lock;\n\
    \  let v = ledger.(0) in\n\
    \  Mutex.unlock lock;\n\
    \  v\n"
  in
  let fs = scan "lib/core/x.ml" locked in
  check_count "mutex-held accesses: no race" 0 (with_rule "static-race" fs);
  check_count "evident discipline: no escape" 0 (with_rule "escape" fs)

(* ---- waivers over the new rules ---------------------------------------- *)

let test_waivers_cover_new_rules () =
  let lost =
    "let bump q =\n\
    \  let n = R.Atomic.get q in\n\
    \  (* lint: allow — single-writer counter, interference impossible *)\n\
    \  R.Atomic.set q (n + 1)\n"
  in
  check_count "reasoned waiver silences atomicity" 0
    (scan "lib/core/x.ml" lost);
  let unpadded =
    "(* lint: allow — diagnostic-only record, never on the hot path *)\n\
     type hot = { mutable a : int; mutable b : int }\n\n"
    ^ layout_ops
  in
  check_count "reasoned waiver silences layout" 0
    (scan "lib/core/x.ml" unpadded);
  (* the waiver is live (covers a real finding): no staleness complaint
     — and without the finding underneath, the same waiver is stale *)
  let stale =
    "let bump q =\n\
    \  (* lint: allow — single-writer counter, interference impossible *)\n\
    \  ignore (R.Atomic.fetch_and_add q 1)\n"
  in
  check_count "waiver with nothing under it is stale" 1
    (with_rule "waiver" (scan "lib/core/x.ml" stale))

(* Waiver hygiene judged against the union of every engine, including
   the escape rules: a reasoned waiver over an escape/static-race
   finding silences it and is not stale; the same waiver with nothing
   under it is stale; a reasonless one is flagged; and a comment that
   merely mentions the marker in prose waives nothing. *)
let test_waivers_cover_escape_rules () =
  let waived =
    "let race n =\n\
    \  let tally = Array.make 1 0 in\n\
    \  let doms =\n\
    \    Array.init n (fun _ ->\n\
    \        (* lint: allow — fixture: slots joined before any read *)\n\
    \        Domain.spawn (fun () -> tally.(0) <- tally.(0) + 1))\n\
    \  in\n\
    \  Array.iter Domain.join doms;\n\
    \  tally.(0)\n"
  in
  let fs = scan "lib/core/x.ml" waived in
  check_count "escape silenced by the reasoned waiver" 0
    (with_rule "escape" fs);
  check_count "static-race silenced by the same waiver" 0
    (with_rule "static-race" fs);
  check_count "the waiver covers live findings: not stale" 0
    (with_rule "waiver" fs);
  (* the identical waiver with an Atomic underneath covers nothing *)
  let stale =
    "let race q =\n\
    \  (* lint: allow — fixture: slots joined before any read *)\n\
    \  ignore (R.Atomic.fetch_and_add q 1)\n"
  in
  check_count "same waiver without a finding is stale" 1
    (with_rule "waiver" (scan "lib/core/x.ml" stale));
  (* a reasonless waiver over the capture is itself a finding *)
  let reasonless =
    "let race n =\n\
    \  let tally = Array.make 1 0 in\n\
    \  let doms =\n\
    \    Array.init n (fun _ ->\n\
    \        (* lint: allow *)\n\
    \        Domain.spawn (fun () -> tally.(0) <- tally.(0) + 1))\n\
    \  in\n\
    \  Array.iter Domain.join doms;\n\
    \  tally.(0)\n"
  in
  check_count "reasonless waiver flagged" 1
    (with_rule "waiver" (scan "lib/core/x.ml" reasonless));
  (* marker position: prose mentioning the marker is not a waiver *)
  let prose =
    "(* discussed in the lint: allow audit of 2026-07 *)\n"
    ^ spawn_capture_src
  in
  check_count "prose mention waives nothing" 1
    (with_rule "escape" (scan "lib/core/x.ml" prose))

(* ---- dynamic cross-checks on the same mutant code ---------------------- *)

let liveness_config =
  if Sys.getenv_opt "PROGRESS_FULL" = Some "1" then Liveness.default_config
  else Liveness.quick_config

let test_mutant_lock_inverted_deadlocks () =
  let p = Mutant_static.lock_inverted_static_program in
  let r = Liveness.certify ~config:liveness_config p in
  Alcotest.(check bool) "not deadlock-free" false r.Liveness.deadlock_free;
  match r.Liveness.fair_cycle with
  | None -> Alcotest.fail "expected a fair deadlock cycle"
  | Some c ->
      Alcotest.(check bool) "pure spin (no writes in pump)" false
        c.Liveness.pump_writes;
      Alcotest.(check bool) "replayable schedule" true
        (Liveness.check_cycle ~config:liveness_config p c)

module C = Check

let dpor_config =
  {
    C.default_config with
    C.max_schedules =
      (if Sys.getenv_opt "DPOR_FULL" <> None then 2_000_000 else 50_000);
  }

let two_extracts =
  Harness.Dpor_exp.pq_program ~name:"two-extracts-post-publish"
    ~make:Mutant_static.post_publish_pq ~prepopulate:[ 1; 2 ] ~lin:true
    [ [ `Extract ]; [ `Extract ] ]

let test_mutant_post_publish_breaks_linearizability () =
  let r = C.explore ~config:dpor_config two_extracts in
  match r.C.counterexample with
  | Some { failure = C.Invariant msg; schedule; _ } ->
      let replay = C.run_schedule two_extracts schedule in
      Alcotest.(check bool) "replay reproduces the violation" true
        (replay.C.replay_failure = Some (C.Invariant msg))
  | Some { failure; _ } ->
      Alcotest.failf "expected an invariant violation, got %a" C.pp_failure
        failure
  | None ->
      Alcotest.fail "mutant survived: post-publish mutation not caught"

(* The atomicity rule's verdict on [Lost_update], cross-checked
   dynamically: the same code, driven by DPOR, double-delivers the
   minimum — the static lost-update finding is a real linearizability
   violation, not a style nit. The defect's plain get-then-set pair is
   itself an unordered write pair, so the race oracle fires on every
   interesting trace first; silencing it ([race_oracle = false]) lets
   the Lin verdict pronounce on the semantic damage. *)
let two_extracts_lost_update =
  Harness.Dpor_exp.pq_program ~name:"two-extracts-lost-update"
    ~make:Mutant_static.lost_update_pq ~prepopulate:[ 1; 2 ] ~lin:true
    [ [ `Extract ]; [ `Extract ] ]

let test_mutant_lost_update_breaks_linearizability () =
  (* the write-write race is real and detected when asked for... *)
  let r = C.explore ~config:dpor_config two_extracts_lost_update in
  (match r.C.counterexample with
  | Some { failure = C.Race _; _ } -> ()
  | Some { failure; _ } ->
      Alcotest.failf "expected a write-write race, got %a" C.pp_failure
        failure
  | None -> Alcotest.fail "mutant survived the race oracle");
  (* ...and past it, the lost update breaks linearizability: the same
     minimum is delivered to both extractions *)
  let config = { dpor_config with C.race_oracle = false } in
  let r = C.explore ~config two_extracts_lost_update in
  match r.C.counterexample with
  | Some { failure = C.Invariant msg; schedule; _ } ->
      let replay = C.run_schedule ~config two_extracts_lost_update schedule in
      Alcotest.(check bool) "replay reproduces the violation" true
        (replay.C.replay_failure = Some (C.Invariant msg))
  | Some { failure; _ } ->
      Alcotest.failf "expected an invariant violation, got %a" C.pp_failure
        failure
  | None -> Alcotest.fail "mutant survived: lost update not caught"

(* The static-race verdict on [Spawn_counter_race], cross-checked
   dynamically: the same collapsed-slot bump, expressed on a tracked
   sim cell, is an unordered write pair the DPOR race oracle must
   report — the static finding is a real race, not a style nit. *)
let test_mutant_spawn_counter_races_dynamically () =
  let p = Mutant_static.spawn_counter_program in
  let r = C.explore ~config:dpor_config p in
  match r.C.counterexample with
  | Some { failure = C.Race race; schedule; _ } ->
      Alcotest.(check bool) "an unordered write pair" true
        (race.first.wrote && race.second.wrote);
      let replay = C.run_schedule p schedule in
      Alcotest.(check bool) "replay reproduces the race" true
        (match replay.C.replay_failure with
        | Some (C.Race _) -> true
        | _ -> false)
  | Some { failure; _ } ->
      Alcotest.failf "expected a write-write race, got %a" C.pp_failure
        failure
  | None -> Alcotest.fail "mutant survived the race oracle"

(* ---- the shipped tree -------------------------------------------------- *)

let test_shipped_tree_clean () =
  (* Belt and braces alongside the [@lint] alias, as in [test_lint]:
     source may live elsewhere in a sandbox; skip silently then. *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let fs = Analysis.scan_tree "lib" in
    List.iter (fun f -> Format.printf "%a@." Analysis.pp_finding f) fs;
    check_count "shipped lib/ clean under both engines" 0 fs
  end

let () =
  Alcotest.run "analysis"
    [
      ( "lock-order",
        [
          Alcotest.test_case "acquisition order" `Quick test_lock_order;
          Alcotest.test_case "release on every path" `Quick test_lock_leak;
        ] );
      ( "publication",
        [
          Alcotest.test_case "stale publish" `Quick test_stale_publish;
          Alcotest.test_case "post-publish mutation" `Quick
            test_post_publish_mutation;
        ] );
      ( "multiqueue-idioms",
        [
          Alcotest.test_case "sticky-lock discipline" `Quick
            test_multiqueue_sticky_lock;
          Alcotest.test_case "cached-top publish" `Quick
            test_multiqueue_top_cache;
        ] );
      ( "helping-v2",
        [
          Alcotest.test_case "static-retry" `Quick test_static_retry;
          Alcotest.test_case "static-deadline" `Quick test_static_deadline;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "aba-risk" `Quick test_aba_risk;
          Alcotest.test_case "atomicity" `Quick test_atomicity;
          Alcotest.test_case "atomicity across calls" `Quick
            test_atomicity_interprocedural;
          Alcotest.test_case "layout" `Quick test_layout;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "local module aliases resolve" `Quick
            test_letmodule_alias_resolution;
        ] );
      ( "escape",
        [
          Alcotest.test_case "spawn capture" `Quick
            test_escape_spawn_capture;
          Alcotest.test_case "module-global binding" `Quick
            test_escape_module_global;
          Alcotest.test_case "published record label" `Quick
            test_escape_published;
          Alcotest.test_case "negatives: local and locked" `Quick
            test_escape_negatives;
        ] );
      ( "waivers",
        [
          Alcotest.test_case "static findings and waivers" `Quick
            test_waivers_cover_static_findings;
          Alcotest.test_case "waivers over the dataflow rules" `Quick
            test_waivers_cover_new_rules;
          Alcotest.test_case "waivers over the escape rules" `Quick
            test_waivers_cover_escape_rules;
          Alcotest.test_case "parse errors are findings" `Quick
            test_parse_error_reported;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "lock inversion flagged" `Quick
            test_mutant_lock_inverted_flagged;
          Alcotest.test_case "post-publish mutation flagged" `Quick
            test_mutant_post_publish_flagged;
          Alcotest.test_case "dropped aliased helper flagged" `Quick
            test_mutant_aliased_helper_flagged;
          Alcotest.test_case "unstamped publish flagged" `Quick
            test_mutant_unstamped_publish_flagged;
          Alcotest.test_case "lost update flagged" `Quick
            test_mutant_lost_update_flagged;
          Alcotest.test_case "unpadded top row flagged" `Quick
            test_mutant_unpadded_top_row_flagged;
          Alcotest.test_case "spawn counter race flagged" `Quick
            test_mutant_spawn_counter_flagged;
          Alcotest.test_case "published record write flagged" `Quick
            test_mutant_published_record_flagged;
          Alcotest.test_case "escape negative twins clean" `Quick
            test_mutant_escape_twins_clean;
          Alcotest.test_case "lock inversion deadlocks under liveness"
            `Quick test_mutant_lock_inverted_deadlocks;
          Alcotest.test_case "post-publish mutation breaks linearizability"
            `Quick test_mutant_post_publish_breaks_linearizability;
          Alcotest.test_case "lost update breaks linearizability" `Quick
            test_mutant_lost_update_breaks_linearizability;
          Alcotest.test_case "spawn counter races under DPOR" `Quick
            test_mutant_spawn_counter_races_dynamically;
        ] );
      ( "tree",
        [
          Alcotest.test_case "shipped tree clean" `Quick
            test_shipped_tree_clean;
        ] );
    ]
