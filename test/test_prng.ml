(* Unit and property tests for the PRNG substrate. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* SplitMix64 reference vector for seed 0 (Vigna's reference
   implementation; also used by Java's SplittableRandom tests). *)
let splitmix_vector () =
  let t = Prng.Splitmix64.create 0L in
  Alcotest.(check int64) "out0" 0xE220A8397B1DCDAFL (Prng.Splitmix64.next t);
  Alcotest.(check int64) "out1" 0x6E789E6AA1B965F4L (Prng.Splitmix64.next t);
  Alcotest.(check int64) "out2" 0x06C45D188009454FL (Prng.Splitmix64.next t)

let splitmix_copy () =
  let a = Prng.Splitmix64.create 42L in
  ignore (Prng.Splitmix64.next a);
  let b = Prng.Splitmix64.copy a in
  Alcotest.(check int64) "same stream" (Prng.Splitmix64.next a)
    (Prng.Splitmix64.next b)

(* xoshiro256** first output for the documented state {1,2,3,4}:
   rotl(s1 * 5, 7) * 9 = rotl(10, 7) * 9 = 1280 * 9 = 11520; the second
   follows from one state update by hand. *)
let xoshiro_first_outputs () =
  let t = Prng.Xoshiro256.of_state 1L 2L 3L 4L in
  Alcotest.(check int64) "out0" 11520L (Prng.Xoshiro256.next t);
  Alcotest.(check int64) "out1" 0L (Prng.Xoshiro256.next t)

let xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Xoshiro256.of_state: all-zero state") (fun () ->
      ignore (Prng.Xoshiro256.of_state 0L 0L 0L 0L))

let xoshiro_deterministic () =
  let a = Prng.create 12345L and b = Prng.create 12345L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let xoshiro_copy_independent () =
  let a = Prng.create 7L in
  ignore (Prng.int64 a);
  let b = Prng.Xoshiro256.copy a in
  Alcotest.(check int64) "copies agree" (Prng.int64 a) (Prng.int64 b);
  ignore (Prng.int64 a);
  (* advancing one does not advance the other *)
  let va = Prng.int64 a and vb = Prng.int64 b in
  check "diverged after unequal draws" true (va <> vb)

let bounds_respected () =
  let t = Prng.create 5L in
  for _ = 1 to 10_000 do
    let v = Prng.int t 7 in
    check "0 <= v" true (v >= 0);
    check "v < 7" true (v < 7)
  done;
  (* bound 1 is always 0 — this once looped forever (int overflow bug) *)
  check_int "bound 1" 0 (Prng.int t 1)

let int_in_range () =
  let t = Prng.create 6L in
  for _ = 1 to 1_000 do
    let v = Prng.int_in t ~lo:(-5) ~hi:5 in
    check "in range" true (v >= -5 && v <= 5)
  done;
  check_int "singleton range" 3 (Prng.int_in t ~lo:3 ~hi:3)

let rough_uniformity () =
  let t = Prng.create 99L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Prng.int t 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      check
        (Printf.sprintf "bucket %d within 5%% of mean" i)
        true
        (abs (c - (n / 10)) < n / 20))
    buckets

let thread_streams_differ () =
  let a = Prng.for_thread ~seed:1L ~id:0 in
  let b = Prng.for_thread ~seed:1L ~id:1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check "streams differ" true (!same < 2)

let jump_disjoint () =
  let a = Prng.create 3L in
  let b = Prng.Xoshiro256.copy a in
  Prng.Xoshiro256.jump b;
  let overlap = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr overlap
  done;
  check "jumped stream is disjoint" true (!overlap < 2)

let shuffle_is_permutation () =
  let t = Prng.create 8L in
  let a = Array.init 100 Fun.id in
  let orig = Array.copy a in
  Prng.shuffle t a;
  check "same multiset" true
    (List.sort compare (Array.to_list a) = Array.to_list orig);
  check "actually shuffled" true (a <> orig)

let invalid_bounds () =
  let t = Prng.create 1L in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Xoshiro256.next_int: bound must be positive") (fun () ->
      ignore (Prng.int t 0));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Prng.int_in: empty range") (fun () ->
      ignore (Prng.int_in t ~lo:2 ~hi:1))

(* property: next_int over large bounds stays within bounds and hits both
   halves of the range *)
let prop_next_int_bound =
  QCheck.Test.make ~name:"next_int within arbitrary bounds" ~count:500
    QCheck.(pair small_int (int_bound 1_000_000))
    (fun (seed, b) ->
      let bound = b + 1 in
      let t = Prng.create (Int64.of_int seed) in
      let v = Prng.int t bound in
      v >= 0 && v < bound)

let bits30_range () =
  let t = Prng.create 4L in
  for _ = 1 to 10_000 do
    let v = Prng.Xoshiro256.bits30 t in
    check "bits30 range" true (v >= 0 && v < 1 lsl 30)
  done

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "reference vector" `Quick splitmix_vector;
          Alcotest.test_case "copy" `Quick splitmix_copy;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "first outputs" `Quick xoshiro_first_outputs;
          Alcotest.test_case "zero state rejected" `Quick
            xoshiro_zero_state_rejected;
          Alcotest.test_case "deterministic" `Quick xoshiro_deterministic;
          Alcotest.test_case "copy independent" `Quick xoshiro_copy_independent;
          Alcotest.test_case "bits30 range" `Quick bits30_range;
        ] );
      ( "bounded draws",
        [
          Alcotest.test_case "bounds respected" `Quick bounds_respected;
          Alcotest.test_case "int_in range" `Quick int_in_range;
          Alcotest.test_case "rough uniformity" `Quick rough_uniformity;
          Alcotest.test_case "invalid bounds" `Quick invalid_bounds;
          QCheck_alcotest.to_alcotest prop_next_int_bound;
        ] );
      ( "streams",
        [
          Alcotest.test_case "thread streams differ" `Quick
            thread_streams_differ;
          Alcotest.test_case "jump disjoint" `Quick jump_disjoint;
          Alcotest.test_case "shuffle permutation" `Quick
            shuffle_is_permutation;
        ] );
    ]
