(* Tests for the baseline priority queues: sequential heap, coarse heap,
   Hunt heap, skiplist. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let no_many sut_extract_min () =
  match sut_extract_min () with None -> [] | Some v -> [ v ]

let sut_of_seq_heap () =
  let module H = Baselines.Seq_heap_int in
  let q = H.create () in
  let extract_min () = H.extract_min q in
  {
    Model.sut_insert = H.insert q;
    sut_extract_min = extract_min;
    sut_peek_min = (fun () -> H.peek_min q);
    sut_extract_many = no_many extract_min;
    sut_extract_approx = extract_min;
    sut_check = (fun () -> H.check q);
    sut_size = (fun () -> H.size q);
  }

let sut_of_coarse () =
  let module H = Baselines.Coarse_heap_int in
  let q = H.create ~capacity:4096 () in
  let extract_min () = H.extract_min q in
  {
    Model.sut_insert = H.insert q;
    sut_extract_min = extract_min;
    sut_peek_min = (fun () -> H.peek_min q);
    sut_extract_many = no_many extract_min;
    sut_extract_approx = extract_min;
    sut_check = (fun () -> H.check q);
    sut_size = (fun () -> H.size q);
  }

let sut_of_hunt () =
  let module H = Baselines.Hunt_heap_int in
  let q = H.create ~capacity:4096 () in
  let extract_min () = H.extract_min q in
  {
    Model.sut_insert = H.insert q;
    sut_extract_min = extract_min;
    sut_peek_min = (fun () -> H.peek_min q);
    sut_extract_many = no_many extract_min;
    sut_extract_approx = extract_min;
    sut_check = (fun () -> H.check q);
    sut_size = (fun () -> H.size q);
  }

let sut_of_skiplist_lock () =
  let module H = Baselines.Skiplist_lock_pq_int in
  let q = H.create () in
  let extract_min () = H.extract_min q in
  {
    Model.sut_insert = H.insert q;
    sut_extract_min = extract_min;
    sut_peek_min = (fun () -> H.peek_min q);
    sut_extract_many = no_many extract_min;
    sut_extract_approx = extract_min;
    sut_check = (fun () -> H.check q);
    sut_size = (fun () -> H.size q);
  }

let sut_of_skiplist () =
  let module H = Baselines.Skiplist_pq_int in
  let q = H.create () in
  let extract_min () = H.extract_min q in
  {
    Model.sut_insert = H.insert q;
    sut_extract_min = extract_min;
    sut_peek_min = (fun () -> H.peek_min q);
    sut_extract_many = no_many extract_min;
    sut_extract_approx = extract_min;
    sut_check = (fun () -> H.check q);
    sut_size = (fun () -> H.size q);
  }

let model_test name make_sut =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(name ^ " matches sorted-multiset model")
       ~count:100 Model.ops_arbitrary
       (fun script -> Model.agrees_with_model make_sut script))

let heapsort_test (name, mk_insert_extract) () =
  let insert, extract = mk_insert_extract () in
  let rng = Prng.create 55L in
  let input = Array.init 10_000 (fun _ -> Prng.int rng 1_000_000) in
  Array.iter insert input;
  let rec drain acc =
    match extract () with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  check (name ^ " sorts") true
    (drain [] = List.sort compare (Array.to_list input))

(* --- spinlock --- *)

let spinlock_mutual_exclusion () =
  let module L = Baselines.Spinlock.Make (Runtime.Real) in
  let lock = L.create () in
  let counter = ref 0 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              L.with_lock lock (fun () -> incr counter)
            done))
  in
  List.iter Domain.join doms;
  check_int "no lost updates under the lock" 40_000 !counter

let spinlock_trylock_and_exceptions () =
  let module L = Baselines.Spinlock.Make (Runtime.Real) in
  let lock = L.create () in
  check "try_acquire free" true (L.try_acquire lock);
  check "try_acquire held" false (L.try_acquire lock);
  L.release lock;
  check "reacquire after release" true (L.try_acquire lock);
  L.release lock;
  (* with_lock releases on exception *)
  (try L.with_lock lock (fun () -> failwith "boom") with Failure _ -> ());
  check "released after exception" true (L.try_acquire lock);
  L.release lock

let spinlock_sim_fairness () =
  let module L = Baselines.Spinlock.Make (Sim.Runtime) in
  let lock = L.create () in
  let counts = Array.make 6 0 in
  let body tid =
    for _ = 1 to 200 do
      L.with_lock lock (fun () -> counts.(tid) <- counts.(tid) + 1)
    done
  in
  ignore (Sim.Sched.run ~profile:Sim.Profile.x86 ~seed:2L (Array.make 6 body));
  Array.iter (fun c -> check_int "every thread completed" 200 c) counts

(* --- Hunt-specific --- *)

module HH = Baselines.Hunt_heap_int

let hunt_position_bijection () =
  (* position is a bijection from [1..2^k-1] onto itself *)
  let module H = Baselines.Hunt_heap.Make (Runtime.Real) (Mound.Int_ord) in
  let n = (1 lsl 10) - 1 in
  let seen = Array.make (n + 1) false in
  for c = 1 to n do
    let p = H.position c in
    check "in range" true (p >= 1 && p <= n);
    check "not seen" false seen.(p);
    seen.(p) <- true
  done

let hunt_position_scatters () =
  (* consecutive counts within one level land in different subtrees:
     positions 2^k and 2^k+1 differ in their top-level branch *)
  let module H = Baselines.Hunt_heap.Make (Runtime.Real) (Mound.Int_ord) in
  let l = H.position 8 and r = H.position 9 in
  (* 8 -> offset 0 -> 8; 9 -> offset 1 reversed over 3 bits -> 12 *)
  check_int "first of level" 8 l;
  check_int "second scattered" 12 r

let hunt_capacity_rounding () =
  (* capacity is rounded to 2^k - 1 so bit-reversed slots stay in range *)
  let q = HH.create ~capacity:5 () in
  for v = 1 to 7 do
    HH.insert q v
  done;
  check_int "7 fit (rounded to 7)" 7 (HH.size q);
  check "overflow detected" true
    (try
       HH.insert q 8;
       false
     with Failure _ -> true)

let hunt_empty_and_refill () =
  let q = HH.create ~capacity:63 () in
  check "empty" true (HH.extract_min q = None);
  HH.insert q 5;
  check "single" true (HH.extract_min q = Some 5);
  check "empty again" true (HH.extract_min q = None);
  for v = 10 downto 1 do
    HH.insert q v
  done;
  check "invariant" true (HH.check q);
  check "min" true (HH.extract_min q = Some 1);
  check "next" true (HH.extract_min q = Some 2)

(* --- skiplist-specific --- *)

module SL = Baselines.Skiplist_pq_int

let skiplist_duplicates () =
  let q = SL.create () in
  for _ = 1 to 50 do
    SL.insert q 3
  done;
  for _ = 1 to 25 do
    SL.insert q 1
  done;
  check_int "size" 75 (SL.size q);
  for _ = 1 to 25 do
    check "ones first" true (SL.extract_min q = Some 1)
  done;
  for _ = 1 to 50 do
    check "threes" true (SL.extract_min q = Some 3)
  done;
  check "empty" true (SL.extract_min q = None)

let skiplist_interleaved () =
  let q = SL.create () in
  let rng = Prng.create 66L in
  let model = ref [] in
  for _ = 1 to 10_000 do
    if Prng.int rng 2 = 0 then begin
      let v = Prng.int rng 1000 in
      SL.insert q v;
      model := v :: !model
    end
    else begin
      let got = SL.extract_min q in
      let sorted = List.sort compare !model in
      match (got, sorted) with
      | None, [] -> ()
      | Some v, m :: rest when v = m -> model := rest
      | _ -> Alcotest.fail "diverged from model"
    end
  done;
  check "final invariant" true (SL.check q);
  check "final contents" true (SL.to_list q = List.sort compare !model)

let skiplist_to_list_sorted () =
  let q = SL.create () in
  let rng = Prng.create 67L in
  for _ = 1 to 1000 do
    SL.insert q (Prng.int rng 500)
  done;
  let l = SL.to_list q in
  check "sorted" true (l = List.sort compare l);
  check_int "complete" 1000 (List.length l)

let () =
  Alcotest.run "baselines"
    [
      ( "model equivalence",
        [
          model_test "seq_heap" sut_of_seq_heap;
          model_test "coarse_heap" sut_of_coarse;
          model_test "hunt_heap" sut_of_hunt;
          model_test "skiplist" sut_of_skiplist;
          model_test "skiplist_lock" sut_of_skiplist_lock;
        ] );
      ( "heapsort",
        [
          Alcotest.test_case "seq_heap" `Quick
            (heapsort_test
               ( "seq_heap",
                 fun () ->
                   let module H = Baselines.Seq_heap_int in
                   let q = H.create () in
                   (H.insert q, fun () -> H.extract_min q) ));
          Alcotest.test_case "hunt" `Quick
            (heapsort_test
               ( "hunt",
                 fun () ->
                   let q = HH.create ~capacity:16384 () in
                   (HH.insert q, fun () -> HH.extract_min q) ));
          Alcotest.test_case "skiplist" `Quick
            (heapsort_test
               ( "skiplist",
                 fun () ->
                   let q = SL.create () in
                   (SL.insert q, fun () -> SL.extract_min q) ));
          Alcotest.test_case "skiplist_lock" `Quick
            (heapsort_test
               ( "skiplist_lock",
                 fun () ->
                   let module SLL = Baselines.Skiplist_lock_pq_int in
                   let q = SLL.create () in
                   (SLL.insert q, fun () -> SLL.extract_min q) ));
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "mutual exclusion (domains)" `Quick
            spinlock_mutual_exclusion;
          Alcotest.test_case "try_acquire and exceptions" `Quick
            spinlock_trylock_and_exceptions;
          Alcotest.test_case "fairness under sim" `Quick spinlock_sim_fairness;
        ] );
      ( "hunt specifics",
        [
          Alcotest.test_case "position bijection" `Quick
            hunt_position_bijection;
          Alcotest.test_case "position scatters" `Quick hunt_position_scatters;
          Alcotest.test_case "capacity rounding" `Quick hunt_capacity_rounding;
          Alcotest.test_case "empty and refill" `Quick hunt_empty_and_refill;
        ] );
      ( "skiplist specifics",
        [
          Alcotest.test_case "duplicates" `Quick skiplist_duplicates;
          Alcotest.test_case "interleaved vs model" `Quick skiplist_interleaved;
          Alcotest.test_case "to_list sorted" `Quick skiplist_to_list_sorted;
        ] );
    ]
