(* Deterministic schedule exploration in the simulator: every structure
   is run under many seeded interleavings with invariant and conservation
   checks after each. This is the closest thing to a model checker in the
   suite — failures replay exactly from their seed. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let seeds = List.init 12 (fun i -> Int64.of_int (1000 + (7 * i)))

type subject = {
  name : string;
  linearizable_extract : bool;
  maker : Harness.Pq.maker;
}

let subjects =
  let open Harness.Pq.On_sim in
  [
    { name = "mound_lf"; linearizable_extract = true; maker = mound_lf };
    { name = "mound_lock"; linearizable_extract = true; maker = mound_lock };
    (* not monotone: Hunt's in-limbo bottom value, see test_concurrent *)
    { name = "hunt"; linearizable_extract = false; maker = hunt };
    { name = "skiplist"; linearizable_extract = false; maker = skiplist };
    { name = "skiplist_lock"; linearizable_extract = false;
      maker = skiplist_lock };
    { name = "coarse"; linearizable_extract = true; maker = coarse };
    { name = "stm_heap"; linearizable_extract = true; maker = stm_heap };
  ]

let threads = 6
let per = 120

(* mixed insert/extract under many schedules *)
let mixed_schedules subject () =
  List.iter
    (fun seed ->
      let q = subject.maker.make ~capacity:(threads * per * 2) in
      let extracted = Array.make threads [] in
      let body tid =
        for i = 0 to per - 1 do
          q.insert ((((tid * per) + i) * 2) + 1);
          if Sim.Sched.rand_int 3 > 0 then
            match q.extract_min () with
            | Some v -> extracted.(tid) <- v :: extracted.(tid)
            | None -> ()
        done
      in
      ignore (Sim.Sched.run ~seed (Array.make threads body));
      check
        (Printf.sprintf "%s invariant (seed %Ld)" subject.name seed)
        true (q.check ());
      let got =
        Array.fold_left (fun a l -> List.rev_append l a) [] extracted
      in
      check_int
        (Printf.sprintf "%s conservation (seed %Ld)" subject.name seed)
        (threads * per)
        (List.length got + q.size ()))
    seeds

(* drain-only phase: per-thread monotone sequences for the linearizable
   structures, under every seed *)
let drain_schedules subject () =
  List.iter
    (fun seed ->
      let n = 600 in
      let q = subject.maker.make ~capacity:(2 * n) in
      Sim.Sched.seed_ambient seed;
      let rng = Prng.create seed in
      let inserted = Array.init n (fun _ -> Prng.int rng 10_000) in
      Array.iter q.insert inserted;
      let got = Array.make threads [] in
      let body tid =
        let rec go () =
          match q.extract_min () with
          | Some v ->
              got.(tid) <- v :: got.(tid);
              go ()
          | None -> ()
        in
        go ()
      in
      ignore (Sim.Sched.run ~seed (Array.make threads body));
      let all = Array.fold_left (fun a l -> List.rev_append l a) [] got in
      check
        (Printf.sprintf "%s multiset (seed %Ld)" subject.name seed)
        true
        (List.sort compare all = List.sort compare (Array.to_list inserted));
      if subject.linearizable_extract then
        Array.iter
          (fun l ->
            let rec noninc = function
              | [] | [ _ ] -> true
              | a :: (b :: _ as r) -> a >= b && noninc r
            in
            check
              (Printf.sprintf "%s monotone (seed %Ld)" subject.name seed)
              true (noninc l))
          got)
    seeds

(* heavier adversarial run for the two mound variants on the preemptive
   (oversubscribed) niagara2 profile: 32 threads on 8 cores with stalls *)
let oversubscribed_mounds () =
  List.iter
    (fun (subject : subject) ->
      let q = subject.maker.make ~capacity:100_000 in
      let t = 32 and ops = 40 in
      let extracted = Atomic.make 0 in
      let body tid =
        for i = 0 to ops - 1 do
          q.insert ((tid * 1000) + i);
          if i land 1 = 0 then
            match q.extract_min () with
            | Some _ -> Atomic.incr extracted
            | None -> ()
        done
      in
      let profile = { Sim.Profile.niagara2 with hw_threads = 16 } in
      ignore (Sim.Sched.run ~profile ~seed:321L (Array.make t body));
      check (subject.name ^ " invariant oversubscribed") true (q.check ());
      check_int
        (subject.name ^ " conservation oversubscribed")
        (t * ops)
        (Atomic.get extracted + q.size ()))
    (List.filter (fun s -> s.name = "mound_lf" || s.name = "mound_lock") subjects)

(* Regression: the lock-based skiplist once livelocked under this exact
   deterministic schedule (constant-pause try-lock retries re-aligning
   forever); randomized backoff must keep it terminating. *)
let skiplist_lock_livelock_regression () =
  let module SL = Baselines.Skiplist_lock_pq.Make (Sim.Runtime) (Mound.Int_ord) in
  Sim.Sched.seed_ambient 7L;
  let q = SL.create () in
  let rng = Prng.create 24L in
  for _ = 1 to 1024 do
    SL.insert q (Prng.int rng (1 lsl 30))
  done;
  let body _tid =
    for _ = 1 to 384 do
      if Sim.Sched.rand_int 2 = 0 then
        SL.insert q (Sim.Sched.rand_int (1 lsl 30))
      else ignore (SL.extract_min q)
    done
  in
  let r = Sim.Sched.run ~profile:Sim.Profile.x86 ~seed:7L (Array.make 4 body) in
  check "terminates" true (r.span > 0);
  check "still sorted" true (SL.check q)

(* extract_many and extract_approx on the LF mound across schedules *)
let lf_extensions_schedules () =
  let module M = Mound.Lf.Make (Sim.Runtime) (Mound.Int_ord) in
  List.iter
    (fun seed ->
      let q = M.create () in
      Sim.Sched.seed_ambient seed;
      let rng = Prng.create seed in
      let n = 400 in
      let inserted = Array.init n (fun _ -> Prng.int rng 10_000) in
      Array.iter (M.insert q) inserted;
      let got = Array.make threads [] in
      let body tid =
        let rec go () =
          match M.extract_many q with
          | [] -> (
              match M.extract_approx q with
              | Some v ->
                  got.(tid) <- [ v ] :: got.(tid);
                  go ()
              | None -> ())
          | b ->
              got.(tid) <- b :: got.(tid);
              go ()
        in
        go ()
      in
      ignore (Sim.Sched.run ~seed (Array.make threads body));
      let batches = Array.to_list got |> List.concat in
      List.iter
        (fun b -> check "batch sorted" true (b = List.sort compare b))
        batches;
      check "union complete" true
        (List.sort compare (List.concat batches)
        = List.sort compare (Array.to_list inserted));
      check "invariant" true (M.check q))
    seeds

let () =
  let per_subject mk suffix =
    List.map (fun s -> Alcotest.test_case (s.name ^ suffix) `Quick (mk s)) subjects
  in
  Alcotest.run "sim schedules"
    [
      ("mixed", per_subject mixed_schedules " mixed x12 seeds");
      ("drain", per_subject drain_schedules " drain x12 seeds");
      ( "adversarial",
        [
          Alcotest.test_case "oversubscribed mounds" `Quick
            oversubscribed_mounds;
          Alcotest.test_case "lf extensions across schedules" `Quick
            lf_extensions_schedules;
          Alcotest.test_case "skiplist_lock livelock regression" `Quick
            skiplist_lock_livelock_regression;
        ] );
    ]
