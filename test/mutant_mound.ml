(* A deliberately broken copy of [Mound.Lf], seeded for the DPOR tier:
   [extract_min] ignores the root's dirty bit instead of helping
   [moundify] first (the paper's L24–L26 are deleted, and the CAS no
   longer re-checks cleanliness). A thread that observes the root mid-
   extraction — emptied and dirty, its list swapped down but not yet
   restored — concludes the mound is empty and returns [None] while
   elements sit one level below. The model checker must find the
   two-extract interleaving that exposes this; stress tests usually
   don't.

   Everything else (insert, moundify, introspection) is copied verbatim
   from [lib/core/lf_mound.ml], trimmed to what a [Harness.Pq.t] needs,
   so the only semantic difference is the dropped dirty handling. *)

module Make (R : Runtime.S) (Ord : Mound.Intf.ORDERED) = struct
  module M = Mcas.Make (R.Atomic)
  module T = Mound.Tree.Make (R)

  type mnode = { list : Ord.t list; dirty : bool; seq : int }
  type t = { tree : mnode M.loc T.t }

  let vcompare = Mound.Intf.Value.compare Ord.compare
  let node_value n = match n.list with [] -> None | x :: _ -> Some x

  let create () =
    let make_slot () = M.make { list = []; dirty = false; seq = 0 } in
    { tree = T.create make_slot }

  let read t i = M.get (T.get t.tree i)

  let rec moundify t n =
    let slot = T.get t.tree n in
    let node = M.get slot in
    let d = T.depth t.tree in
    if not node.dirty then ()
    else if T.is_leaf n ~depth:d then begin
      if
        M.cas slot node { list = node.list; dirty = false; seq = node.seq + 1 }
      then ()
      else moundify t n
    end
    else begin
      let lslot = T.get t.tree (2 * n) and rslot = T.get t.tree ((2 * n) + 1) in
      let left = M.get lslot in
      let right = M.get rslot in
      if left.dirty then begin
        moundify t (2 * n);
        moundify t n
      end
      else if right.dirty then begin
        moundify t ((2 * n) + 1);
        moundify t n
      end
      else begin
        let vn = node_value node
        and vl = node_value left
        and vr = node_value right in
        if vcompare vl vr <= 0 && vcompare vl vn < 0 then begin
          if
            M.dcas slot node
              { list = left.list; dirty = false; seq = node.seq + 1 }
              lslot left
              { list = node.list; dirty = true; seq = left.seq + 1 }
          then moundify t (2 * n)
          else moundify t n
        end
        else if vcompare vr vl < 0 && vcompare vr vn < 0 then begin
          if
            M.dcas slot node
              { list = right.list; dirty = false; seq = node.seq + 1 }
              rslot right
              { list = node.list; dirty = true; seq = right.seq + 1 }
          then moundify t ((2 * n) + 1)
          else moundify t n
        end
        else begin
          if
            M.cas slot node
              { list = node.list; dirty = false; seq = node.seq + 1 }
          then ()
          else moundify t n
        end
      end
    end

  let rec fallback_point t ~ge =
    let d = T.depth t.tree in
    let leaf = 1 lsl (d - 1) in
    if ge leaf then T.binary_search ~ge leaf d
    else begin
      T.expand t.tree d;
      fallback_point t ~ge
    end

  let max_insert_rounds = 8

  let rec insert_attempt t v round =
    let ge i =
      Mound.Intf.Value.ge_elt Ord.compare (node_value (read t i)) v
    in
    let c =
      if round < max_insert_rounds then T.find_insert_point t.tree ~ge
      else fallback_point t ~ge
    in
    let cslot = T.get t.tree c in
    let cur = M.get cslot in
    if Mound.Intf.Value.ge_elt Ord.compare (node_value cur) v then begin
      let fresh =
        { list = v :: cur.list; dirty = cur.dirty; seq = cur.seq + 1 }
      in
      if c = 1 then begin
        if not (M.cas cslot cur fresh) then insert_attempt t v (round + 1)
      end
      else begin
        let pslot = T.get t.tree (c / 2) in
        let parent = M.get pslot in
        if Mound.Intf.Value.le_elt Ord.compare (node_value parent) v then begin
          if not (M.dcss pslot parent cslot cur fresh) then
            insert_attempt t v (round + 1)
        end
        else insert_attempt t v (round + 1)
      end
    end
    else insert_attempt t v (round + 1)

  let insert t v = insert_attempt t v 0

  (* THE MUTATION. Upstream reads the root and, if it is dirty, helps
     [moundify] before retrying; here a dirty root is treated as clean,
     so its (possibly already-emptied) list is trusted. *)
  let rec extract_min t =
    let slot = T.get t.tree 1 in
    let root = M.get slot in
    match root.list with
    | [] -> None
    | hd :: tl ->
        if M.cas slot root { list = tl; dirty = true; seq = root.seq + 1 }
        then begin
          moundify t 1;
          Some hd
        end
        else extract_min t

  let fold_nodes t f acc =
    T.fold t.tree (fun acc i slot -> f acc i (M.get slot).list) acc

  let size t = fold_nodes t (fun acc _ l -> acc + List.length l) 0

  let rec list_sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Ord.compare a b <= 0 && list_sorted rest

  let check t =
    fold_nodes t
      (fun ok i l ->
        ok && list_sorted l
        &&
        if i = 1 then true
        else
          let parent = read t (i / 2) in
          parent.dirty
          || Mound.Intf.Value.le Ord.compare (node_value parent)
               (match l with [] -> None | x :: _ -> Some x))
      true
end

module On_sim = Make (Sim.Runtime) (Mound.Int_ord)

(** A [Harness.Pq.t] over the mutant, for {!Harness.Dpor_exp.pq_program}. *)
let make_pq () : Harness.Pq.t =
  let q = On_sim.create () in
  let try_insert, insert_until, extract_min_until =
    Harness.Pq.degraded_until ~insert:(On_sim.insert q)
      ~extract_min:(fun () -> On_sim.extract_min q)
  in
  {
    name = "Mutant Mound (LF, dirty check dropped)";
    insert = On_sim.insert q;
    insert_many = (fun b -> List.iter (On_sim.insert q) b);
    extract_min = (fun () -> On_sim.extract_min q);
    extract_many =
      (fun () ->
        match On_sim.extract_min q with None -> [] | Some v -> [ v ]);
    extract_approx = (fun () -> On_sim.extract_min q);
    try_insert;
    insert_until;
    extract_min_until;
    size = (fun () -> On_sim.size q);
    check = (fun () -> On_sim.check q);
    ops = (fun () -> None);
  }
