(** Unit tests for the {!Lint_rules} engine.

    The shipped tree being clean is enforced by the [dune runtest] rule
    in [bin/dune]; here we pin the engine's behavior on fixtures — in
    particular that a direct [Stdlib.Atomic] use in [lib/core] fails,
    and that comments, strings, waivers, and the functor-constraint
    idiom do not. *)

let scan path src = Lint_rules.scan ~path src

let rules fs = List.map (fun f -> f.Lint_rules.rule) fs

let boundary fs =
  List.filter (fun f -> f.Lint_rules.rule = "boundary") fs

let check_count what n fs = Alcotest.(check int) what n (List.length fs)

(* ---- boundary rule ----------------------------------------------------- *)

let test_core_stdlib_atomic () =
  (* The acceptance fixture: direct Stdlib.Atomic in lib/core fails. *)
  let fs = scan "lib/core/bad.ml" "let x = Stdlib.Atomic.make 0\n" in
  check_count "one finding" 1 fs;
  let f = List.hd fs in
  Alcotest.(check string) "rule" "boundary" f.Lint_rules.rule;
  Alcotest.(check int) "line" 1 f.Lint_rules.line

let test_forbidden_idents () =
  let flagged src = boundary (scan "lib/core/x.ml" src) <> [] in
  Alcotest.(check bool) "bare Atomic" true (flagged "let v = Atomic.make 0\n");
  Alcotest.(check bool) "Domain" true (flagged "let d = Domain.spawn f\n");
  Alcotest.(check bool) "Random" true (flagged "let r = Random.int 5\n");
  Alcotest.(check bool) "gettimeofday" true
    (flagged "let t = Unix.gettimeofday ()\n");
  (* prefixed paths go through a runtime functor: fine *)
  Alcotest.(check bool) "R.Atomic ok" false (flagged "let v = R.Atomic.get a\n");
  Alcotest.(check bool) "Runtime.Atomic ok" false
    (flagged "let v = Runtime.Real.Atomic.get a\n");
  Alcotest.(check bool) "domainslib-ish ident ok" false
    (flagged "let x = my_Domain.foo\n")

let test_exempt_paths () =
  let src = "let x = Stdlib.Atomic.make 0\nlet d = Domain.self ()\n" in
  check_count "lib/sim exempt" 0 (boundary (scan "lib/sim/mem.ml" src));
  check_count "lib/runtime exempt" 0
    (boundary (scan "lib/runtime/real.ml" src));
  check_count "nested path still checked" 2
    (boundary (scan "lib/core/sub/x.ml" src))

let test_comments_and_strings () =
  check_count "comment" 0
    (boundary (scan "lib/core/x.ml" "(* Stdlib.Atomic.make *)\nlet x = 1\n"));
  check_count "nested comment" 0
    (boundary
       (scan "lib/core/x.ml" "(* a (* Domain.spawn *) b *)\nlet x = 1\n"));
  check_count "string" 0
    (boundary (scan "lib/core/x.ml" "let s = \"Random.int\"\n"));
  check_count "string with escapes" 0
    (boundary (scan "lib/core/x.ml" "let s = \"\\\"Domain.\\\"\"\n"));
  check_count "comment containing string with close" 0
    (boundary
       (scan "lib/core/x.ml" "(* \"*)\" Unix.gettimeofday *)\nlet x = 1\n"));
  (* a char literal must not open a string *)
  check_count "char literal" 1
    (boundary
       (scan "lib/core/x.ml" "let c = '\"'\nlet x = Atomic.make 0\n"))

let test_waivers () =
  check_count "same-line waiver" 0
    (boundary
       (scan "lib/core/x.ml"
          "let x = Stdlib.Atomic.make 0 (* lint: allow *)\n"));
  check_count "line-above waiver" 0
    (boundary
       (scan "lib/core/x.ml"
          "(* lint: allow — setup only *)\nlet x = Stdlib.Atomic.make 0\n"));
  check_count "waiver does not leak further" 1
    (boundary
       (scan "lib/core/x.ml"
          "(* lint: allow *)\nlet x = 1\nlet y = Domain.self ()\n"));
  check_count "file waiver" 0
    (boundary
       (scan "lib/core/x.ml"
          "(* lint: allow-file *)\nlet x = Stdlib.Atomic.make 0\n\
           let d = Domain.self ()\n"));
  (* a file waiver does not suppress format findings *)
  let fs =
    scan "lib/core/x.ml"
      "(* lint: allow-file — bench driver owns the clock *)\n\
       let t = Unix.gettimeofday () \n"
  in
  Alcotest.(check (list string)) "format survives" [ "format" ] (rules fs)

let test_waiver_hygiene () =
  (* a waiver must carry a reason *)
  let fs =
    scan "lib/core/x.ml" "(* lint: allow *)\nlet x = Stdlib.Atomic.make 0\n"
  in
  Alcotest.(check (list string)) "reasonless waiver" [ "waiver" ] (rules fs);
  (* a waiver must cover a live finding *)
  let fs =
    scan "lib/core/x.ml"
      "(* lint: allow — plenty of justification *)\nlet x = 1\n"
  in
  Alcotest.(check (list string)) "stale waiver" [ "waiver" ] (rules fs);
  (* reasoned and live: silent *)
  check_count "reasoned live waiver" 0
    (scan "lib/core/x.ml"
       "(* lint: allow — setup-only id source *)\n\
        let x = Stdlib.Atomic.make 0\n");
  (* reasonless file waiver *)
  let fs =
    scan "lib/core/x.ml"
      "(* lint: allow-file *)\nlet x = Stdlib.Atomic.make 0\n"
  in
  Alcotest.(check (list string)) "reasonless file waiver" [ "waiver" ]
    (rules fs);
  (* stale file waiver: nothing in the file to waive *)
  let fs =
    scan "lib/core/x.ml"
      "(* lint: allow-file — driver owns its domains *)\nlet x = 1\n"
  in
  Alcotest.(check (list string)) "stale file waiver" [ "waiver" ] (rules fs);
  (* the marker must lead the comment; prose mentioning it is inert *)
  let fs =
    scan "lib/core/x.ml"
      "(* see the lint: allow marker in the docs *)\n\
       let x = Stdlib.Atomic.make 0\n"
  in
  Alcotest.(check (list string)) "mid-comment marker inert" [ "boundary" ]
    (rules fs)

(* ---- helping-discipline rules ------------------------------------------ *)

let test_retry_no_backoff () =
  (* bodies indented 4: chunks split at indentation <= 2, the margin of
     a module body, exactly like the shipped sources *)
  let bare =
    "let rec push q v =\n\
    \    let cur = R.Atomic.get q in\n\
    \    if not (M.cas q cur (v :: cur)) then push q v\n"
  in
  Alcotest.(check (list string)) "bare retry flagged" [ "retry-no-backoff" ]
    (rules (scan "lib/core/x.ml" bare));
  let with_backoff =
    "let rec push q b v =\n\
    \    let cur = R.Atomic.get q in\n\
    \    if not (M.cas q cur (v :: cur)) then begin\n\
    \      B.exponential b;\n\
    \      push q b v\n\
    \    end\n"
  in
  (* backoff silences retry-no-backoff; what remains is the disjoint
     complement — the loop waits, but nothing bounds the wait *)
  Alcotest.(check (list string)) "backoff leaves only deadline-blind"
    [ "deadline-blind" ]
    (rules (scan "lib/core/x.ml" with_backoff));
  let with_help =
    "let rec push q v =\n\
    \    let cur = R.Atomic.get q in\n\
    \    if not (M.cas q cur (v :: cur)) then begin\n\
    \      help_complete q;\n\
    \      push q v\n\
    \    end\n"
  in
  check_count "helping silences" 0 (scan "lib/core/x.ml" with_help);
  (* non-recursive chunks are not retry loops *)
  check_count "straight-line cas fine" 0
    (scan "lib/core/x.ml" "let push q v =\n  if M.cas q [] [ v ] then 1 else 0\n");
  (* baselines reproduce published loops; helping rules do not apply *)
  check_count "baselines exempt" 0 (scan "lib/baselines/x.ml" bare)

let test_deadline_blind () =
  (* waiting without a bound: backoff satisfies retry-no-backoff but
     the loop can wait forever behind a dead peer *)
  let waiting =
    "let rec push q b v =\n\
    \    if M.cas q 0 v then ()\n\
    \    else begin\n\
    \      B.exponential b;\n\
    \      push q b v\n\
    \    end\n"
  in
  Alcotest.(check (list string)) "unbounded wait flagged"
    [ "deadline-blind" ]
    (rules (scan "lib/core/x.ml" waiting));
  (* consulting a deadline bounds the wait *)
  let bounded =
    "let rec push q b v deadline =\n\
    \    if expired ~deadline then Timeout\n\
    \    else if M.cas q 0 v then Ok ()\n\
    \    else begin\n\
    \      B.exponential b;\n\
    \      push q b v deadline\n\
    \    end\n"
  in
  check_count "deadline silences" 0 (scan "lib/core/x.ml" bounded);
  (* the _until operation family is the same vocabulary *)
  let until =
    "let rec push q b v d =\n\
    \    if M.cas q 0 v then Ok () else (B.exponential b; push_until q b v d)\n"
  in
  check_count "_until call silences" 0 (scan "lib/core/x.ml" until);
  (* disjoint from retry-no-backoff: a bare loop gets exactly one
     finding, the one whose remedy (back off first) comes first *)
  let bare =
    "let rec push q v =\n\
    \    if M.cas q 0 v then () else push q v\n"
  in
  Alcotest.(check (list string)) "bare loop is retry-no-backoff only"
    [ "retry-no-backoff" ]
    (rules (scan "lib/core/x.ml" bare));
  (* helping loops are bounded by global progress: exempt *)
  let helping =
    "let rec pull q =\n\
    \    if M.cas q 0 1 then () else (help_complete q; cpu_relax (); pull q)\n"
  in
  check_count "helping exempt" 0 (scan "lib/core/x.ml" helping);
  (* baselines keep their published shapes *)
  check_count "baselines exempt" 0 (scan "lib/baselines/x.ml" waiting);
  (* a reasoned waiver covers it like any other finding *)
  check_count "reasoned waiver silences" 0
    (scan "lib/core/x.ml"
       ("(* lint: allow — fixture: wait bounded by the test harness *)\n"
      ^ waiting))

let test_dirty_spin () =
  let spin =
    "let rec pull q =\n\
    \    let n = M.get q in\n\
    \    if n.dirty then pull q\n\
    \    else (n, B.exponential ())\n"
  in
  Alcotest.(check (list string)) "dirty re-test flagged" [ "dirty-spin" ]
    (rules (scan "lib/core/x.ml" spin));
  let helps =
    "let rec pull q =\n\
    \    let n = M.get q in\n\
    \    if n.dirty then (moundify q 1; pull q)\n\
    \    else n\n"
  in
  check_count "helping silences" 0 (scan "lib/core/x.ml" helps);
  (* [dirty = cur.dirty] in a record copy is not a test *)
  let copy =
    "let rec pull q =\n\
    \    let cur = M.get q in\n\
    \    ignore { list = cur.list; dirty = cur.dirty };\n\
    \    pull q\n"
  in
  Alcotest.(check bool) "record copy not a dirty test" false
    (List.mem "dirty-spin" (rules (scan "lib/core/x.ml" copy)))

let test_cas_discard () =
  Alcotest.(check (list string)) "ignore'd cas" [ "cas-discard" ]
    (rules (scan "lib/core/x.ml" "let reset q =\n  ignore (M.cas q 0 1)\n"));
  Alcotest.(check (list string)) "statement-position cas" [ "cas-discard" ]
    (rules
       (scan "lib/core/x.ml" "let f q r =\n  r := 1;\n  M.cas q 0 1\n"));
  check_count "branched-on cas fine" 0
    (scan "lib/core/x.ml" "let f q = if M.cas q 0 1 then 1 else 0\n");
  (* a CAS ending a sequence whose value is let-bound (or otherwise
     consumed) on a following line is not discarded: only the [;] on
     the preceding line is in sight when walking backwards, so the
     verdict must come from scanning forward to the binder *)
  check_count "let-bound sequence tail fine" 0
    (scan "lib/core/x.ml"
       "let f q r =\n\
       \  let ok =\n\
       \    r := 1;\n\
       \    M.cas q 0 1\n\
       \  in\n\
       \  ok\n");
  check_count "parenthesized condition tail fine" 0
    (scan "lib/core/x.ml"
       "let f q r =\n\
       \  if (r := 1;\n\
       \      M.cas q 0 1) then 1 else 0\n");
  (* but a mid-sequence CAS is still discarded even when a binder
     follows later *)
  Alcotest.(check (list string)) "mid-sequence cas still flagged"
    [ "cas-discard" ]
    (rules
       (scan "lib/core/x.ml"
          "let f q r =\n\
          \  let ok =\n\
          \    r := 1;\n\
          \    M.cas q 0 1;\n\
          \    r := 2\n\
          \  in\n\
          \  ok\n"));
  Alcotest.(check (list string)) "while-body tail still flagged"
    [ "cas-discard" ]
    (rules
       (scan "lib/core/x.ml"
          "let f q r =\n\
          \  while !r do\n\
          \    r := false;\n\
          \    M.cas q 0 1\n\
          \  done\n"));
  (* record labels and counter fields named [cas] are not calls *)
  check_count "field assignment fine" 0
    (scan "lib/core/x.ml" "let reset c =\n  c.cas <- 0\n");
  check_count "record label fine" 0
    (scan "lib/core/x.ml" "let snap c = { gets = c.gets; cas = c.cas }\n");
  check_count "type field fine" 0
    (scan "lib/core/x.ml" "type t = { gets : int; cas : int }\n")

let test_alloc_in_retry () =
  let alloc fs = List.filter (fun f -> f.Lint_rules.rule = "alloc-in-retry") fs in
  (* an array built on every failed attempt *)
  let hot =
    "let rec push q v =\n\
    \    let fresh = Array.make 4 v in\n\
    \    if M.cas q [] fresh then () else push q v\n"
  in
  check_count "array alloc in retry loop" 1 (alloc (scan "lib/core/x.ml" hot));
  (* a ref rebuilt per attempt *)
  let with_ref =
    "let rec push q v =\n\
    \    let cell = ref v in\n\
    \    if M.cas q [] cell then () else push q v\n"
  in
  check_count "ref alloc in retry loop" 1 (alloc (scan "lib/core/x.ml" with_ref));
  (* allocation hoisted before the loop: the blessed shape *)
  let hoisted =
    "let push q v =\n\
    \  let fresh = Array.make 4 v in\n\
    \  let rec go () = if M.cas q [] fresh then () else go () in\n\
    \  go ()\n"
  in
  check_count "hoisted alloc fine" 0 (alloc (scan "lib/core/x.ml" hoisted));
  (* fresh record literals are CAS arguments and must not be flagged *)
  let record =
    "let rec push q v =\n\
    \    let cur = M.get q in\n\
    \    if M.cas q cur { list = v :: cur.list; dirty = false } then ()\n\
    \    else push q v\n"
  in
  check_count "record literal fine" 0 (alloc (scan "lib/core/x.ml" record));
  (* a recursive chunk without a CAS is not a retry loop *)
  let no_cas =
    "let rec build n acc =\n\
    \    if n = 0 then acc else build (n - 1) (ref n :: acc)\n"
  in
  check_count "no cas, no finding" 0 (alloc (scan "lib/core/x.ml" no_cas));
  (* [int ref] in type position is not an allocation *)
  let type_pos =
    "let rec push (q : int ref M.t) v =\n\
    \    if M.cas q [] v then () else push q v\n"
  in
  check_count "ref type annotation fine" 0
    (alloc (scan "lib/core/x.ml" type_pos));
  (* a reasoned waiver silences it *)
  let waived =
    "let rec push q v =\n\
    \    (* lint: allow — rebuilt only when the observed value changed *)\n\
    \    let fresh = Array.make 4 v in\n\
    \    if M.cas q [] fresh then () else push q v\n"
  in
  check_count "waiver silences" 0 (alloc (scan "lib/core/x.ml" waived));
  (* baselines are exempt, as for the other helping-discipline rules *)
  check_count "baselines exempt" 0 (alloc (scan "lib/baselines/x.ml" hot))

let test_functor_constraint_idiom () =
  check_count "with type 'a Atomic.t" 0
    (boundary
       (scan "lib/core/x.mli"
          "include Runtime.S with type 'a Atomic.t = 'a R.Atomic.t\n"))

(* ---- mutable-record-behind-Atomic rule --------------------------------- *)

let test_mutable_atomic () =
  let fs =
    scan "lib/core/x.ml"
      "type node = { mutable next : int }\n\
       type t = { slot : node Atomic.t }\n"
  in
  (* the bare Atomic. is also flagged; look for the mutable finding *)
  Alcotest.(check bool) "flagged" true
    (List.exists (fun f -> f.Lint_rules.rule = "mutable-atomic") fs);
  let fs2 =
    scan "lib/core/x.ml"
      "type node = { mutable next : int }\nlet use (n : node) = n.next\n"
  in
  Alcotest.(check bool) "unpublished record fine" false
    (List.exists (fun f -> f.Lint_rules.rule = "mutable-atomic") fs2);
  let fs3 =
    scan "lib/core/x.ml"
      "type slot = { list : int list; dirty : bool }\n\
       type t = { root : slot A.t }\n"
  in
  Alcotest.(check bool) "immutable record fine" false
    (List.exists (fun f -> f.Lint_rules.rule = "mutable-atomic") fs3)

(* ---- format rules ------------------------------------------------------ *)

let test_format () =
  let fs = scan "lib/core/x.ml" "let x = 1 \nlet\ty = 2\nlet z = 3" in
  Alcotest.(check (list string))
    "three format findings"
    [ "format"; "format"; "format" ]
    (rules fs);
  Alcotest.(check (list int))
    "lines" [ 1; 2; 3 ]
    (List.map (fun f -> f.Lint_rules.line) fs);
  check_count "clean file" 0 (scan "lib/core/x.ml" "let x = 1\n")

(* ---- engine dedupe ------------------------------------------------------ *)

(* One defect, one finding: when the token engine and the AST engine
   flag the same file:line for sibling rules (cas-discard vs the
   protocol analyses), the merged scan keeps the AST finding — it names
   the protocol — and drops the token one. Unrelated co-located
   findings still both surface. *)
let test_sibling_dedupe () =
  let src =
    "let mark q =\n\
    \  let root = M.get q in\n\
    \  ignore (M.cas q root root)\n"
  in
  (* the token engine alone does flag the discarded CAS... *)
  check_count "token cas-discard fires alone" 1
    (List.filter
       (fun f -> f.Lint_rules.rule = "cas-discard")
       (scan "lib/core/x.ml" src));
  (* ...but the merged scan reports the one defect once, as the AST
     sibling *)
  let merged = Analysis.scan ~path:"lib/core/x.ml" src in
  check_count "one finding for the one defect" 1 merged;
  Alcotest.(check string) "the AST sibling wins" "stale-publish"
    (List.hd merged).Lint_rules.rule;
  (* unrelated rules co-located on one line are not siblings: a
     boundary breach and a lost update are two defects, two findings *)
  let two_defects =
    "let bump q =\n\
    \  let n = Atomic.get q in\n\
    \  Atomic.set q (n + 1)\n"
  in
  let merged = Analysis.scan ~path:"lib/core/x.ml" two_defects in
  check_count "boundary kept" 2
    (List.filter (fun f -> f.Lint_rules.rule = "boundary") merged);
  check_count "atomicity kept" 1
    (List.filter (fun f -> f.Lint_rules.rule = "atomicity") merged)

(* The escape pairing: the token heuristic flags the mutable field
   behind an Atomic.t at its declaration line; the escape analysis
   anchors the published label at the same line and names the lattice
   level — one defect, the AST finding wins. *)
let test_sibling_dedupe_escape () =
  let src =
    "type slab = { mutable used : int; cap : int }\n\
     type t = { cell : slab Atomic.t }\n\n\
     let create () = Atomic.make { used = 0; cap = 8 }\n"
  in
  check_count "token mutable-atomic fires alone" 1
    (List.filter
       (fun f -> f.Lint_rules.rule = "mutable-atomic")
       (scan "lib/core/x.ml" src));
  let merged = Analysis.scan ~path:"lib/core/x.ml" src in
  check_count "token sibling dropped from the merged scan" 0
    (List.filter (fun f -> f.Lint_rules.rule = "mutable-atomic") merged);
  check_count "the escape finding stands in its place" 1
    (List.filter (fun f -> f.Lint_rules.rule = "escape") merged)

(* Every sibling pairing must reference registered rules of the right
   engine, and the registry itself must be duplicate-free — the table
   is what [--list-rules], the README and CI all derive from. *)
let test_rule_registry_consistent () =
  List.iter
    (fun (tok, asts) ->
      Alcotest.(check bool)
        (tok ^ " is a registered token rule")
        true
        (List.mem tok Analysis.token_rules);
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (a ^ " is a registered AST rule")
            true
            (List.mem a Analysis.static_rules))
        asts)
    Analysis.sibling_rules;
  let names = List.map (fun (n, _, _) -> n) Analysis.rule_table in
  Alcotest.(check int) "registry names are unique" (List.length names)
    (List.length (List.sort_uniq compare names))

(* ---- mound-lint/1 JSON -------------------------------------------------- *)

(* The [repro lint --json] document, validated the way the bench
   artifacts are: emit, self-validate, parse the emitted string back
   through the Bench_json parser, re-validate, and compare the decoded
   findings field by field. *)
let test_lint_json_roundtrip () =
  let findings =
    Analysis.scan ~path:"lib/core/x.ml"
      "let bump q =\n\
      \  let n = R.Atomic.get q in\n\
      \  R.Atomic.set q (n + 1)\n"
  in
  check_count "fixture yields a finding" 1 findings;
  let doc = Harness.Lint_json.doc ~roots:[ "lib" ] ~rule:None findings in
  (match Harness.Lint_json.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emitted document invalid: %s" e);
  let reparsed = Harness.Bench_json.parse (Harness.Bench_json.to_string doc) in
  (match Harness.Lint_json.validate reparsed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reparsed document invalid: %s" e);
  Alcotest.(check bool) "findings survive the round trip" true
    (Harness.Lint_json.findings_of reparsed = findings);
  (* narrowed runs record the rule *)
  let narrowed =
    Harness.Lint_json.doc ~roots:[ "lib" ] ~rule:(Some "atomicity") findings
  in
  (match Harness.Lint_json.validate narrowed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "narrowed document invalid: %s" e);
  (* malformed documents are rejected: count drift, missing schema *)
  let tamper k v =
    match doc with
    | Harness.Bench_json.Obj kvs ->
        Harness.Bench_json.Obj
          (List.filter_map
             (fun (k', v') ->
               if k' = k then Option.map (fun v -> (k, v)) v
               else Some (k', v'))
             kvs)
    | _ -> assert false
  in
  Alcotest.(check bool) "count drift rejected" true
    (Result.is_error
       (Harness.Lint_json.validate
          (tamper "count" (Some (Harness.Bench_json.Num 99.)))));
  Alcotest.(check bool) "missing schema rejected" true
    (Result.is_error (Harness.Lint_json.validate (tamper "schema" None)))

(* ---- the shipped tree -------------------------------------------------- *)

let test_shipped_tree_clean () =
  (* Belt and braces: the runtest rule in bin/dune already enforces
     this, but running from the test binary keeps the guarantee even if
     the alias wiring regresses. Both engines, like [bin/lint.exe]: a
     token-only scan would misjudge as stale any waiver that covers an
     AST-level finding (stm's static-deadline waiver). Source may live
     elsewhere when built in a sandbox; skip silently if lib/ is not
     present. *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let fs = Analysis.scan_tree "lib" in
    List.iter
      (fun f -> Format.printf "%a@." Lint_rules.pp_finding f)
      fs;
    check_count "shipped lib/ clean" 0 fs
  end

let () =
  Alcotest.run "lint"
    [
      ( "boundary",
        [
          Alcotest.test_case "Stdlib.Atomic in lib/core fails" `Quick
            test_core_stdlib_atomic;
          Alcotest.test_case "forbidden idents" `Quick test_forbidden_idents;
          Alcotest.test_case "runtime and sim exempt" `Quick test_exempt_paths;
          Alcotest.test_case "comments and strings stripped" `Quick
            test_comments_and_strings;
          Alcotest.test_case "waivers" `Quick test_waivers;
          Alcotest.test_case "waiver hygiene" `Quick test_waiver_hygiene;
          Alcotest.test_case "functor constraint idiom" `Quick
            test_functor_constraint_idiom;
        ] );
      ( "helping",
        [
          Alcotest.test_case "retry-no-backoff" `Quick test_retry_no_backoff;
          Alcotest.test_case "deadline-blind" `Quick test_deadline_blind;
          Alcotest.test_case "dirty-spin" `Quick test_dirty_spin;
          Alcotest.test_case "cas-discard" `Quick test_cas_discard;
          Alcotest.test_case "alloc-in-retry" `Quick test_alloc_in_retry;
        ] );
      ( "mutable-atomic",
        [ Alcotest.test_case "heuristic" `Quick test_mutable_atomic ] );
      ("format", [ Alcotest.test_case "rules" `Quick test_format ]);
      ( "dedupe",
        [
          Alcotest.test_case "token/AST siblings deduped" `Quick
            test_sibling_dedupe;
          Alcotest.test_case "mutable-atomic vs escape" `Quick
            test_sibling_dedupe_escape;
          Alcotest.test_case "rule registry consistent" `Quick
            test_rule_registry_consistent;
        ] );
      ( "json",
        [
          Alcotest.test_case "mound-lint/1 round trip" `Quick
            test_lint_json_roundtrip;
        ] );
      ( "tree",
        [
          Alcotest.test_case "shipped tree clean" `Quick
            test_shipped_tree_clean;
        ] );
    ]
