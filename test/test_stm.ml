(* Tests for the TL2-style STM and the STM-based heap. *)

module S = Stm.Make (Runtime.Real)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let read_write_basics () =
  let a = S.make 1 and b = S.make 2 in
  let sum = S.atomically (fun tx -> S.read tx a + S.read tx b) in
  check_int "read" 3 sum;
  S.atomically (fun tx ->
      S.write tx a 10;
      S.write tx b 20);
  check_int "a" 10 (S.peek a);
  check_int "b" 20 (S.peek b)

let read_own_writes () =
  let a = S.make 1 in
  let v =
    S.atomically (fun tx ->
        S.write tx a 5;
        S.write tx a 7;
        S.read tx a)
  in
  check_int "sees own write (latest)" 7 v;
  check_int "committed" 7 (S.peek a)

let transfer_preserves_sum () =
  let a = S.make 1000 and b = S.make 0 in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed:8L ~id:d in
            for _ = 1 to 500 do
              let amt = 1 + Prng.int rng 3 in
              S.atomically (fun tx ->
                  let va = S.read tx a and vb = S.read tx b in
                  S.write tx a (va - amt);
                  S.write tx b (vb + amt))
            done))
  in
  List.iter Domain.join doms;
  check_int "sum invariant" 1000 (S.peek a + S.peek b)

let counter_no_lost_updates () =
  let c = S.make 0 in
  let per = 1000 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              S.atomically (fun tx -> S.write tx c (S.read tx c + 1))
            done))
  in
  List.iter Domain.join doms;
  check_int "exact count" (4 * per) (S.peek c)

let consistent_snapshots () =
  (* invariant a + b = 100 maintained by writers; readers must never
     observe a violation inside a transaction (opacity) *)
  let a = S.make 50 and b = S.make 50 in
  let violations = Atomic.make 0 in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let rng = Prng.create 77L in
        for _ = 1 to 3000 do
          let d = Prng.int rng 10 - 5 in
          S.atomically (fun tx ->
              S.write tx a (S.read tx a + d);
              S.write tx b (S.read tx b - d))
        done;
        Atomic.set stop true)
  in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              let sum = S.atomically (fun tx -> S.read tx a + S.read tx b) in
              if sum <> 100 then Atomic.incr violations
            done))
  in
  Domain.join writer;
  List.iter Domain.join readers;
  check_int "no torn snapshots" 0 (Atomic.get violations)

let sim_deterministic_transfers () =
  let module SS = Stm.Make (Sim.Runtime) in
  let a = SS.make 300 and b = SS.make 0 in
  let body _ =
    for _ = 1 to 100 do
      SS.atomically (fun tx ->
          SS.write tx a (SS.read tx a - 1);
          SS.write tx b (SS.read tx b + 1))
    done
  in
  ignore (Sim.Sched.run ~profile:Sim.Profile.x86 ~seed:3L (Array.make 3 body));
  check_int "a" 0 (SS.peek a);
  check_int "b" 300 (SS.peek b)

(* ---- STM heap ---- *)

module H = Baselines.Stm_heap_int

let heap_sut () =
  let q = H.create ~capacity:4096 () in
  let extract_min () = H.extract_min q in
  {
    Model.sut_insert = H.insert q;
    sut_extract_min = extract_min;
    sut_peek_min = (fun () -> H.peek_min q);
    sut_extract_many =
      (fun () -> match extract_min () with None -> [] | Some v -> [ v ]);
    sut_extract_approx = extract_min;
    sut_check = (fun () -> H.check q);
    sut_size = (fun () -> H.size q);
  }

let prop_heap_model =
  QCheck.Test.make ~name:"stm heap matches sorted-multiset model" ~count:80
    Model.ops_arbitrary
    (fun script -> Model.agrees_with_model heap_sut script)

let heap_sorts () =
  let q = H.create ~capacity:8192 () in
  let rng = Prng.create 12L in
  let input = Array.init 5_000 (fun _ -> Prng.int rng 1_000_000) in
  Array.iter (H.insert q) input;
  check "invariant" true (H.check q);
  let rec drain acc =
    match H.extract_min q with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  check "sorted" true (drain [] = List.sort compare (Array.to_list input))

let heap_concurrent_conservation () =
  let per = 800 in
  let q = H.create ~capacity:(8 * per) () in
  let got = Array.make 4 0 in
  let doms =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              H.insert q ((d * per) + i);
              if i land 1 = 0 then
                match H.extract_min q with
                | Some _ -> got.(d) <- got.(d) + 1
                | None -> ()
            done))
  in
  Array.iter Domain.join doms;
  check "invariant" true (H.check q);
  check_int "conservation" (4 * per)
    (Array.fold_left ( + ) 0 got + H.size q)

let heap_monotone_drain_sim () =
  (* single transactions make the STM heap linearizable: per-thread
     drains are monotone under every schedule *)
  let module HS = Baselines.Stm_heap.Make (Sim.Runtime) in
  List.iter
    (fun seed ->
      let q = HS.create ~capacity:1024 () in
      Sim.Sched.seed_ambient seed;
      let rng = Prng.create seed in
      let n = 300 in
      for _ = 1 to n do
        HS.insert q (Prng.int rng 10_000)
      done;
      let got = Array.make 4 [] in
      let body tid =
        let rec go () =
          match HS.extract_min q with
          | Some v ->
              got.(tid) <- v :: got.(tid);
              go ()
          | None -> ()
        in
        go ()
      in
      ignore (Sim.Sched.run ~seed (Array.make 4 body));
      check_int "drained" n
        (Array.fold_left (fun a l -> a + List.length l) 0 got);
      Array.iter
        (fun l ->
          let rec noninc = function
            | [] | [ _ ] -> true
            | a :: (b :: _ as r) -> a >= b && noninc r
          in
          check "monotone" true (noninc l))
        got)
    [ 5L; 6L; 7L; 8L ]

let () =
  Alcotest.run "stm"
    [
      ( "transactions",
        [
          Alcotest.test_case "read/write basics" `Quick read_write_basics;
          Alcotest.test_case "read own writes" `Quick read_own_writes;
          Alcotest.test_case "transfers (domains)" `Quick
            transfer_preserves_sum;
          Alcotest.test_case "counter (domains)" `Quick
            counter_no_lost_updates;
          Alcotest.test_case "opacity (domains)" `Quick consistent_snapshots;
          Alcotest.test_case "transfers (sim)" `Quick
            sim_deterministic_transfers;
        ] );
      ( "stm heap",
        [
          QCheck_alcotest.to_alcotest prop_heap_model;
          Alcotest.test_case "heapsort 5k" `Quick heap_sorts;
          Alcotest.test_case "concurrent conservation" `Quick
            heap_concurrent_conservation;
          Alcotest.test_case "monotone drains (sim schedules)" `Quick
            heap_monotone_drain_sim;
        ] );
    ]
