(* Tests for the software multi-word CAS (RDCSS / CASN) substrate. *)

module M = Mcas.Make (Runtime.Real.Atomic)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Values are boxed so physical equality is meaningful. [box] builds the
   record through [Sys.opaque_identity] so the compiler cannot share
   structurally equal literals as one static block, which would make
   [box 5 == box 5] true. *)
type box = { v : int }

let box v = { v = Sys.opaque_identity v }

let get_v loc = (M.get loc).v

let single_cas () =
  let a0 = box 1 in
  let l = M.make a0 in
  check "cas succeeds on match" true (M.cas l a0 (box 2));
  check_int "value updated" 2 (get_v l);
  check "cas fails on stale expected" false (M.cas l a0 (box 3));
  check_int "value unchanged" 2 (get_v l)

let physical_equality_semantics () =
  (* two structurally equal but physically distinct boxes do not match *)
  let a = box 5 in
  let l = M.make a in
  check "struct-equal but phys-distinct fails" false (M.cas l (box 5) (box 6));
  check "exact value succeeds" true (M.cas l a (box 6))

let set_overwrites () =
  let l = M.make (box 1) in
  M.set l (box 9);
  check_int "set" 9 (get_v l)

let dcas_both_or_neither () =
  let a0 = box 1 and b0 = box 2 in
  let a = M.make a0 and b = M.make b0 in
  check "dcas succeeds" true (M.dcas a a0 (box 10) b b0 (box 20));
  check_int "a" 10 (get_v a);
  check_int "b" 20 (get_v b);
  let a1 = M.get a and b1 = M.get b in
  (* one leg stale: nothing changes *)
  check "dcas fails on first leg" false (M.dcas a a0 (box 0) b b1 (box 0));
  check "dcas fails on second leg" false (M.dcas a a1 (box 0) b b0 (box 0));
  check_int "a unchanged" 10 (get_v a);
  check_int "b unchanged" 20 (get_v b)

let dcss_swaps_only_data () =
  let c0 = box 1 and d0 = box 2 in
  let ctl = M.make c0 and data = M.make d0 in
  check "dcss succeeds" true (M.dcss ctl c0 data d0 (box 22));
  check_int "data updated" 22 (get_v data);
  check "control untouched" true (M.get ctl == c0);
  check "dcss fails on control mismatch" false
    (M.dcss ctl (box 1) data (M.get data) (box 0));
  check_int "data unchanged" 22 (get_v data)

let casn_k3 () =
  let xs = Array.init 3 (fun i -> box i) in
  let locs = Array.map M.make xs in
  let ops = Array.mapi (fun i l -> (l, xs.(i), box (100 + i))) locs in
  check "casn k=3 succeeds" true (M.casn ops);
  Array.iteri (fun i l -> check_int "updated" (100 + i) (get_v l)) locs;
  (* replay fails (all legs stale) and leaves values alone *)
  check "replay fails" false (M.casn ops);
  Array.iteri (fun i l -> check_int "unchanged" (100 + i) (get_v l)) locs

let casn_partial_failure_restores () =
  let a0 = box 1 and b0 = box 2 and c0 = box 3 in
  let a = M.make a0 and b = M.make b0 and c = M.make c0 in
  (* middle leg is stale *)
  check "casn fails" false
    (M.casn [| (a, a0, box 0); (b, box 2, box 0); (c, c0, box 0) |]);
  check "a restored" true (M.get a == a0);
  check "b untouched" true (M.get b == b0);
  check "c untouched" true (M.get c == c0)

let casn_empty_and_singleton () =
  check "empty casn" true (M.casn [||]);
  let a0 = box 1 in
  let a = M.make a0 in
  check "singleton casn = cas" true (M.casn [| (a, a0, box 5) |]);
  check_int "applied" 5 (get_v a)

let casn_unsorted_input () =
  (* ids increase with allocation order; pass ops in reverse order *)
  let a0 = box 1 and b0 = box 2 and c0 = box 3 in
  let a = M.make a0 and b = M.make b0 and c = M.make c0 in
  check "reverse-order ops accepted" true
    (M.casn [| (c, c0, box 33); (b, b0, box 22); (a, a0, box 11) |]);
  check_int "a" 11 (get_v a);
  check_int "b" 22 (get_v b);
  check_int "c" 33 (get_v c)

(* qcheck: a random sequence of cas/dcas against a two-cell model *)
let prop_model =
  QCheck.Test.make ~name:"cas/dcas sequence matches a sequential model"
    ~count:200
    QCheck.(list (pair (int_bound 3) (pair small_int small_int)))
    (fun script ->
      let a = M.make (box 0) and b = M.make (box 0) in
      let ma = ref 0 and mb = ref 0 in
      List.iter
        (fun (op, (x, y)) ->
          match op with
          | 0 ->
              let cur = M.get a in
              let ok = M.cas a cur (box x) in
              if ok then ma := x;
              assert (ok (* cur is always current sequentially *))
          | 1 ->
              let cur = M.get b in
              if M.cas b cur (box y) then mb := y
          | 2 ->
              let ca = M.get a and cb = M.get b in
              if M.dcas a ca (box x) b cb (box y) then begin
                ma := x;
                mb := y
              end
          | _ ->
              let ca = M.get a and cb = M.get b in
              if M.dcss a ca b cb (box y) then mb := y)
        script;
      get_v a = !ma && get_v b = !mb)

(* concurrent: transfers between two cells via dcas preserve the sum *)
let concurrent_dcas_preserves_sum () =
  let a = M.make (box 1000) and b = M.make (box 1000) in
  let doms =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Prng.for_thread ~seed:3L ~id:d in
            let moved = ref 0 in
            while !moved < 500 do
              let ca = M.get a and cb = M.get b in
              let amt = 1 + Prng.int rng 5 in
              if
                M.dcas a ca (box (ca.v - amt)) b cb (box (cb.v + amt))
              then incr moved
            done))
  in
  List.iter Domain.join doms;
  check_int "sum preserved" 2000 (get_v a + get_v b)

(* concurrent: counters via casn over 3 cells, all incremented together *)
let concurrent_casn_triple () =
  let cells = Array.init 3 (fun _ -> M.make (box 0)) in
  let per = 300 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let done_ = ref 0 in
            while !done_ < per do
              let cur = Array.map M.get cells in
              let ops =
                Array.mapi (fun i l -> (l, cur.(i), box (cur.(i).v + 1))) cells
              in
              if M.casn ops then incr done_
            done))
  in
  List.iter Domain.join doms;
  Array.iter (fun l -> check_int "all equal" (4 * per) (get_v l)) cells

(* deterministic interleavings in the simulator *)
let sim_dcas_sum () =
  let module SM = Mcas.Make (Sim.Runtime.Atomic) in
  let a = SM.make (box 500) and b = SM.make (box 500) in
  let body _tid =
    let moved = ref 0 in
    while !moved < 100 do
      let ca = SM.get a and cb = SM.get b in
      if SM.dcas a ca (box (ca.v - 1)) b cb (box (cb.v + 1)) then incr moved
    done
  in
  List.iter
    (fun seed ->
      ignore (Sim.Sched.run ~seed (Array.make 6 body));
      ())
    [ 1L; 2L; 3L ];
  (* after 3 runs x 6 threads x 100 transfers *)
  check_int "a" (500 - 1800) (SM.get a).v;
  check_int "b" (500 + 1800) (SM.get b).v

let () =
  Alcotest.run "mcas"
    [
      ( "sequential",
        [
          Alcotest.test_case "single cas" `Quick single_cas;
          Alcotest.test_case "physical equality" `Quick
            physical_equality_semantics;
          Alcotest.test_case "set" `Quick set_overwrites;
          Alcotest.test_case "dcas both-or-neither" `Quick dcas_both_or_neither;
          Alcotest.test_case "dcss" `Quick dcss_swaps_only_data;
          Alcotest.test_case "casn k=3" `Quick casn_k3;
          Alcotest.test_case "casn failure restores" `Quick
            casn_partial_failure_restores;
          Alcotest.test_case "casn degenerate sizes" `Quick
            casn_empty_and_singleton;
          Alcotest.test_case "casn unsorted input" `Quick casn_unsorted_input;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "dcas preserves sum (domains)" `Quick
            concurrent_dcas_preserves_sum;
          Alcotest.test_case "casn triple counters (domains)" `Quick
            concurrent_casn_triple;
          Alcotest.test_case "dcas sum (simulated schedules)" `Quick
            sim_dcas_sum;
        ] );
    ]
