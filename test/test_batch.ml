(* Batched-operation coverage: [insert_many] must be observationally
   equivalent to element-wise insertion on every variant, and
   [extract_many]/[insert_many] round trips must conserve the multiset
   and the mound invariant. Concurrent interleavings of the batched
   operations are exercised in test_dpor and test_linearizability; this
   suite pins the sequential semantics all of those rely on. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* One uniform view per variant so the same properties run across all
   three implementations. *)
type sut = {
  name : string;
  insert : int -> unit;
  insert_many : int list -> unit;
  extract_min : unit -> int option;
  extract_many : unit -> int list;
  size : unit -> int;
  invariant : unit -> bool;
}

let seq_sut () =
  let module S = Mound.Seq_int in
  let q = S.create ~seed:5L () in
  {
    name = "seq";
    insert = S.insert q;
    insert_many = S.insert_many q;
    extract_min = (fun () -> S.extract_min q);
    extract_many = (fun () -> S.extract_many q);
    size = (fun () -> S.size q);
    invariant = (fun () -> S.check q);
  }

let lf_sut () =
  let module L = Mound.Lf_int in
  let q = L.create () in
  {
    name = "lf";
    insert = L.insert q;
    insert_many = L.insert_many q;
    extract_min = (fun () -> L.extract_min q);
    extract_many = (fun () -> L.extract_many q);
    size = (fun () -> L.size q);
    invariant = (fun () -> L.check q);
  }

let lock_sut () =
  let module L = Mound.Lock_int in
  let q = L.create () in
  {
    name = "lock";
    insert = L.insert q;
    insert_many = L.insert_many q;
    extract_min = (fun () -> L.extract_min q);
    extract_many = (fun () -> L.extract_many q);
    size = (fun () -> L.size q);
    invariant = (fun () -> L.check q);
  }

let suts = [ seq_sut; lf_sut; lock_sut ]

let drain sut =
  let rec go acc =
    match sut.extract_min () with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []

(* Same seeded key stream fed to a batched and an element-wise instance
   of each variant: draining both must give the same sorted sequence. *)
let batched_equals_elementwise () =
  List.iter
    (fun mk ->
      let batched = mk () and one_at_a_time = mk () in
      let rng = Prng.create 91L in
      for round = 1 to 40 do
        let n = 1 + Prng.int rng 64 in
        let keys = List.init n (fun _ -> Prng.int rng 10_000) in
        let sorted = List.sort compare keys in
        batched.insert_many sorted;
        List.iter one_at_a_time.insert keys;
        (* interleave some extraction so batches land in grown trees *)
        if round mod 3 = 0 then begin
          let a = batched.extract_min () and b = one_at_a_time.extract_min () in
          if a <> b then
            Alcotest.failf "%s: extract diverged (round %d)" batched.name round
        end
      done;
      check (batched.name ^ ": invariant (batched)") true (batched.invariant ());
      check
        (batched.name ^ ": invariant (element-wise)")
        true
        (one_at_a_time.invariant ());
      if drain batched <> drain one_at_a_time then
        Alcotest.failf "%s: drains diverged" batched.name)
    suts

(* Empty and singleton batches are legal and behave like the obvious
   element-wise program. *)
let degenerate_batches () =
  List.iter
    (fun mk ->
      let sut = mk () in
      sut.insert_many [];
      check_int (sut.name ^ ": empty batch") 0 (sut.size ());
      sut.insert_many [ 7 ];
      check_int (sut.name ^ ": singleton batch") 1 (sut.size ());
      sut.insert_many [ 3; 3; 9 ];
      check (sut.name ^ ": invariant") true (sut.invariant ());
      check
        (sut.name ^ ": duplicates preserved")
        true
        (drain sut = [ 3; 3; 7; 9 ]))
    suts

(* extract_many hands back one node's sorted list; insert_many is its
   dual. Round-tripping repeatedly must conserve the multiset, keep the
   invariant, and leave the queue draining in sorted order. *)
let extract_insert_roundtrip () =
  List.iter
    (fun mk ->
      let sut = mk () in
      let rng = Prng.create 17L in
      let input = List.init 3_000 (fun _ -> Prng.int rng 100_000) in
      sut.insert_many (List.sort compare input);
      for _ = 1 to 80 do
        let b = sut.extract_many () in
        check (sut.name ^ ": batch sorted") true (b = List.sort compare b);
        sut.insert_many b
      done;
      check (sut.name ^ ": invariant") true (sut.invariant ());
      check_int (sut.name ^ ": size conserved") 3_000 (sut.size ());
      check
        (sut.name ^ ": drains to sorted input")
        true
        (drain sut = List.sort compare input))
    suts

(* The batched path must also agree across variants: same keys, same
   drained output, regardless of implementation. *)
let variants_agree () =
  let rng = Prng.create 23L in
  let batches =
    List.init 30 (fun _ ->
        let n = 1 + Prng.int rng 50 in
        List.sort compare (List.init n (fun _ -> Prng.int rng 5_000)))
  in
  let run mk =
    let sut = mk () in
    List.iter sut.insert_many batches;
    drain sut
  in
  match List.map run suts with
  | [ a; b; c ] ->
      check "seq = lf" true (a = b);
      check "seq = lock" true (a = c)
  | _ -> assert false

let () =
  Alcotest.run "batch"
    [
      ( "insert_many",
        [
          Alcotest.test_case "batched equals element-wise" `Quick
            batched_equals_elementwise;
          Alcotest.test_case "degenerate batches" `Quick degenerate_batches;
          Alcotest.test_case "variants agree" `Quick variants_agree;
        ] );
      ( "round trip",
        [
          Alcotest.test_case "extract_many/insert_many conserves" `Quick
            extract_insert_roundtrip;
        ] );
    ]
