(* Linearizability of concurrent histories, recorded deterministically in
   the simulator and verified with the Wing-Gong checker in [Lin].

   The mounds, the coarse heap and the STM heap must produce linearizable
   histories under every schedule. The skiplist PQ is only quiescently
   consistent and the Hunt heap's in-limbo bottom value also escapes
   linearizability; for those we only report (and sanity-check that the
   checker itself accepts/rejects hand-built histories correctly). *)

let check = Alcotest.(check bool)

(* ---- checker unit tests on hand-built histories ---- *)

let e inv resp op = { Harness.Lin.inv; resp; op }

let checker_accepts_sequential () =
  check "insert/extract" true
    (Harness.Lin.check [ e 0 1 (Ins 5); e 2 3 (Ext (Some 5)); e 4 5 (Ext None) ]);
  check "ordering respected" true
    (Harness.Lin.check [ e 0 1 (Ins 5); e 2 3 (Ins 3); e 4 5 (Ext (Some 3)) ])

let checker_rejects_wrong_min () =
  (* both inserts strictly precede the extract, which returns the larger *)
  check "wrong min rejected" false
    (Harness.Lin.check [ e 0 1 (Ins 5); e 2 3 (Ins 3); e 4 5 (Ext (Some 5)) ]);
  (* extract of a value never inserted *)
  check "phantom rejected" false (Harness.Lin.check [ e 0 1 (Ins 5); e 2 3 (Ext (Some 7)) ]);
  (* empty-extract while an element is definitely present *)
  check "false empty rejected" false
    (Harness.Lin.check [ e 0 1 (Ins 5); e 2 3 (Ext None) ])

let checker_uses_overlap () =
  (* the extract overlaps the insert, so both Some 5 and None linearize *)
  check "overlap Some" true (Harness.Lin.check [ e 0 10 (Ins 5); e 1 2 (Ext (Some 5)) ]);
  check "overlap None" true (Harness.Lin.check [ e 0 10 (Ins 5); e 1 2 (Ext None) ]);
  (* but a non-overlapping later extract must see the insert *)
  check "after insert" false (Harness.Lin.check [ e 0 1 (Ins 5); e 2 3 (Ext None) ])

let checker_batched_insert () =
  (* an Ins_many lands its whole multiset at one linearization point *)
  check "batch then drain" true
    (Harness.Lin.check
       [
         e 0 1 (Ins_many [ 1; 4 ]);
         e 2 3 (Ext (Some 1));
         e 4 5 (Ext (Some 4));
         e 6 7 (Ext None);
       ]);
  (* a later extract must see the batch's minimum, not a larger member *)
  check "partial batch view rejected" false
    (Harness.Lin.check [ e 0 1 (Ins_many [ 3; 5 ]); e 2 3 (Ext (Some 5)) ]);
  (* an extract overlapping the batch may linearize before it *)
  check "overlap None accepted" true
    (Harness.Lin.check [ e 0 10 (Ins_many [ 3; 5 ]); e 1 2 (Ext None) ]);
  (* but not a non-overlapping one *)
  check "after batch must see it" false
    (Harness.Lin.check [ e 0 1 (Ins_many [ 3; 5 ]); e 2 3 (Ext None) ]);
  (* duplicates within a batch are distinct multiset members *)
  check "batch duplicates" true
    (Harness.Lin.check
       [ e 0 1 (Ins_many [ 2; 2 ]); e 2 3 (Ext (Some 2)); e 4 5 (Ext (Some 2)) ])

let checker_initial_state () =
  check "init respected" true
    (Harness.Lin.check ~init:[ 4 ] [ e 0 1 (Ext (Some 4)) ]);
  check "init min first" false
    (Harness.Lin.check ~init:[ 4; 9 ] [ e 0 1 (Ext (Some 9)) ])

(* ---- recorded histories from the simulator ---- *)

(* Build per-thread scripts deterministically from a seed. *)
let scripts ~threads ~ops ~seed =
  let rng = Prng.create seed in
  List.init threads (fun t ->
      List.init ops (fun i ->
          if Prng.int rng 2 = 0 then `Insert ((t * 1000) + i + Prng.int rng 50)
          else `Extract))

let record_history (maker : Harness.Pq.maker) ~seed =
  let q = maker.make ~capacity:4096 in
  let scr = scripts ~threads:4 ~ops:7 ~seed in
  let pairs = List.map (fun s -> Harness.Lin.recorder q s) scr in
  let bodies = Array.of_list (List.map (fun (b, _) -> fun _ -> b ()) pairs) in
  ignore (Sim.Sched.run ~seed bodies);
  List.concat_map (fun (_, collect) -> collect ()) pairs

let seeds = List.init 25 (fun i -> Int64.of_int (2000 + (13 * i)))

let assert_linearizable name maker () =
  List.iter
    (fun seed ->
      let history = record_history maker ~seed in
      check
        (Printf.sprintf "%s linearizable (seed %Ld)" name seed)
        true (Harness.Lin.check history))
    seeds

(* Batched-insert histories against the sequential oracle. [insert_many]
   splices one node prefix per CAS/lock pair, so it is atomic as a whole
   only when no concurrent extract can observe the gap between splices;
   these scripts keep the atomic [Ins_many] spec sound by construction —
   the only extracting thread runs its extracts after its own batch, and
   every other thread just inserts. *)
let record_batched_history (maker : Harness.Pq.maker) ~seed =
  let q = maker.make ~capacity:4096 in
  let rng = Prng.create seed in
  let batch n lo = List.sort compare (List.init n (fun _ -> lo + Prng.int rng 40)) in
  let scr =
    [
      [ `Insert_many (batch 4 0); `Extract; `Extract; `Extract_many ];
      [ `Insert (Prng.int rng 50); `Insert_many (batch 3 10) ];
      [ `Insert_many (batch 2 20); `Insert (Prng.int rng 50) ];
    ]
  in
  let pairs = List.map (fun s -> Harness.Lin.recorder q s) scr in
  let bodies = Array.of_list (List.map (fun (b, _) -> fun _ -> b ()) pairs) in
  ignore (Sim.Sched.run ~seed bodies);
  List.concat_map (fun (_, collect) -> collect ()) pairs

let assert_batched_linearizable name maker () =
  List.iter
    (fun seed ->
      let history = record_batched_history maker ~seed in
      check
        (Printf.sprintf "%s batched linearizable (seed %Ld)" name seed)
        true (Harness.Lin.check history))
    seeds

let report_only name maker () =
  (* quiescently consistent structures: count how many histories happen
     to be linearizable, and require only conservation-style sanity via
     the checker not crashing *)
  let lin = ref 0 in
  List.iter
    (fun seed ->
      let history = record_history maker ~seed in
      if Harness.Lin.check history then incr lin)
    seeds;
  Printf.printf "  [%s] %d/%d recorded histories were linearizable\n%!" name
    !lin (List.length seeds);
  check "checker ran" true (!lin >= 0)

let tampered_history_caught () =
  (* take a real linearizable history and corrupt one extract result *)
  let history = record_history Harness.Pq.On_sim.mound_lf ~seed:9L in
  check "original ok" true (Harness.Lin.check history);
  let corrupted =
    List.map
      (fun (ev : Harness.Lin.event) ->
        match ev.op with
        | Ext (Some v) -> { ev with op = Harness.Lin.Ext (Some (v + 1_000_000)) }
        | _ -> ev)
      history
  in
  let had_extract =
    List.exists
      (fun (ev : Harness.Lin.event) ->
        match ev.op with Ext (Some _) -> true | _ -> false)
      history
  in
  if had_extract then check "corruption caught" false (Harness.Lin.check corrupted)

(* ---- the checker's own power: a deliberately broken structure ---- *)

(* [Racy_pq.make_racy] updates one shared cell with a plain get-then-set,
   so interleaved operations lose updates; [make_cas] is the honest
   control with the identical footprint. Recording both under the plain
   simulator exercises Lin end to end: it must reject the former on some
   schedule and accept the latter on every schedule. *)

let racy_maker : Harness.Pq.maker =
  { make = (fun ~capacity:_ -> Racy_pq.make_racy ()) }

let cas_maker : Harness.Pq.maker =
  { make = (fun ~capacity:_ -> Racy_pq.make_cas ()) }

let lin_rejects_racy_toy () =
  let violations = ref 0 in
  List.iter
    (fun seed ->
      let history = record_history racy_maker ~seed in
      if not (Harness.Lin.check history) then incr violations)
    seeds;
  Printf.printf "  [racy toy] %d/%d recorded histories non-linearizable\n%!"
    !violations (List.length seeds);
  check "lost updates detected on at least one schedule" true (!violations > 0)

let lin_accepts_cas_control () =
  List.iter
    (fun seed ->
      let history = record_history cas_maker ~seed in
      check
        (Printf.sprintf "cas toy linearizable (seed %Ld)" seed)
        true (Harness.Lin.check history))
    seeds

(* property: histories produced by genuinely sequential executions are
   always linearizable *)
let prop_sequential_always_ok =
  QCheck.Test.make ~name:"sequential histories always linearizable" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (pair bool (int_bound 100)))
    (fun script ->
      let model = ref [] in
      let t = ref 0 in
      let history =
        List.map
          (fun (is_insert, v) ->
            let inv = !t in
            let op =
              if is_insert then begin
                model := List.sort compare (v :: !model);
                Harness.Lin.Ins v
              end
              else
                match !model with
                | [] -> Harness.Lin.Ext None
                | m :: rest ->
                    model := rest;
                    Harness.Lin.Ext (Some m)
            in
            t := !t + 2;
            { Harness.Lin.inv; resp = inv + 1; op })
          script
      in
      Harness.Lin.check history)

(* property: making every operation's interval span the whole history can
   only add legal linearizations, never remove them *)
let prop_widening_monotone =
  QCheck.Test.make ~name:"widening intervals preserves linearizability"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 10) (pair bool (int_bound 50)))
    (fun script ->
      let model = ref [] in
      let t = ref 0 in
      let history =
        List.map
          (fun (is_insert, v) ->
            let inv = !t in
            let op =
              if is_insert then begin
                model := List.sort compare (v :: !model);
                Harness.Lin.Ins v
              end
              else
                match !model with
                | [] -> Harness.Lin.Ext None
                | m :: rest ->
                    model := rest;
                    Harness.Lin.Ext (Some m)
            in
            t := !t + 2;
            { Harness.Lin.inv; resp = inv + 1; op })
          script
      in
      let widened =
        List.map (fun e -> { e with Harness.Lin.inv = 0; resp = 1000 }) history
      in
      (not (Harness.Lin.check history)) || Harness.Lin.check widened)

let () =
  Alcotest.run "linearizability"
    [
      ( "checker",
        [
          Alcotest.test_case "accepts sequential" `Quick
            checker_accepts_sequential;
          Alcotest.test_case "rejects wrong min" `Quick
            checker_rejects_wrong_min;
          Alcotest.test_case "uses overlap" `Quick checker_uses_overlap;
          Alcotest.test_case "batched insert" `Quick checker_batched_insert;
          Alcotest.test_case "initial state" `Quick checker_initial_state;
          Alcotest.test_case "tampered history caught" `Quick
            tampered_history_caught;
          QCheck_alcotest.to_alcotest prop_sequential_always_ok;
          QCheck_alcotest.to_alcotest prop_widening_monotone;
        ] );
      ( "racy toy",
        [
          Alcotest.test_case "get-then-set rejected" `Quick
            lin_rejects_racy_toy;
          Alcotest.test_case "cas control accepted" `Quick
            lin_accepts_cas_control;
        ] );
      ( "structures (25 seeded schedules each)",
        [
          Alcotest.test_case "mound_lf" `Quick
            (assert_linearizable "mound_lf" Harness.Pq.On_sim.mound_lf);
          Alcotest.test_case "mound_lock" `Quick
            (assert_linearizable "mound_lock" Harness.Pq.On_sim.mound_lock);
          Alcotest.test_case "mound_lf batched" `Quick
            (assert_batched_linearizable "mound_lf" Harness.Pq.On_sim.mound_lf);
          Alcotest.test_case "mound_lock batched" `Quick
            (assert_batched_linearizable "mound_lock"
               Harness.Pq.On_sim.mound_lock);
          Alcotest.test_case "coarse" `Quick
            (assert_linearizable "coarse" Harness.Pq.On_sim.coarse);
          Alcotest.test_case "stm_heap" `Quick
            (assert_linearizable "stm_heap" Harness.Pq.On_sim.stm_heap);
          Alcotest.test_case "skiplist (report)" `Quick
            (report_only "skiplist" Harness.Pq.On_sim.skiplist);
          Alcotest.test_case "hunt (report)" `Quick
            (report_only "hunt" Harness.Pq.On_sim.hunt);
        ] );
    ]
