(* Tests for the experiment harness: workloads, barriers, experiment
   drivers and the table/figure generators at reduced scale. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- workload generators --- *)

let keys_orders () =
  let inc = Harness.Workload.keys ~order:Increasing ~n:100 ~seed:1L in
  check "increasing" true (inc = Array.init 100 Fun.id);
  let dec = Harness.Workload.keys ~order:Decreasing ~n:100 ~seed:1L in
  check "decreasing" true (dec = Array.init 100 (fun i -> 99 - i));
  let r1 = Harness.Workload.keys ~order:Random_order ~n:100 ~seed:1L in
  let r2 = Harness.Workload.keys ~order:Random_order ~n:100 ~seed:1L in
  check "random deterministic" true (r1 = r2);
  let r3 = Harness.Workload.keys ~order:Random_order ~n:100 ~seed:2L in
  check "seed sensitive" true (r1 <> r3);
  check "in range" true
    (Array.for_all (fun v -> v >= 0 && v < Harness.Workload.key_range) r1)

let panel_names_roundtrip () =
  List.iter
    (fun p ->
      check "roundtrip" true
        (Harness.Workload.panel_of_string (Harness.Workload.panel_name p)
        = Some p))
    Harness.Workload.[ Insert; Extract; Mixed; Extract_many ]

let run_thread_counts_ops () =
  let module S = Mound.Seq_int in
  let q = S.create ~seed:9L () in
  let pq =
    {
      Harness.Pq.name = "seq";
      insert = S.insert q;
      insert_many = (fun b -> S.insert_many q (List.sort compare b));
      extract_min = (fun () -> S.extract_min q);
      extract_many = (fun () -> S.extract_many q);
      extract_approx = (fun () -> S.extract_min q);
      try_insert = S.try_insert q;
      insert_until = (fun ~deadline v -> S.insert_until q ~deadline v);
      extract_min_until = (fun ~deadline -> S.extract_min_until q ~deadline);
      size = (fun () -> S.size q);
      check = (fun () -> S.check q);
      ops = (fun () -> None);
    }
  in
  let rng = Prng.create 1L in
  let rand b = Prng.int rng b in
  let n = Harness.Workload.run_thread ~panel:Insert ~q:pq ~rand ~ops:50 () in
  check_int "insert count" 50 n;
  check_int "size after" 50 (S.size q);
  let n = Harness.Workload.run_thread ~panel:Extract ~q:pq ~rand ~ops:30 () in
  check_int "extract count" 30 n;
  check_int "size after extracts" 20 (S.size q);
  let n = Harness.Workload.run_thread ~panel:Extract_many ~q:pq ~rand ~ops:0 () in
  check_int "extract_many drains the rest" 20 n;
  check "empty" true (S.is_empty q)

(* --- barrier --- *)

let barrier_releases_all () =
  let b = Harness.Barrier.create 4 in
  let hit = Atomic.make 0 in
  let doms =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Harness.Barrier.wait b;
            Atomic.incr hit;
            (* reusable: second round *)
            Harness.Barrier.wait b;
            Atomic.incr hit))
  in
  Array.iter Domain.join doms;
  check_int "all passed twice" 8 (Atomic.get hit)

(* --- sim experiment driver --- *)

let sim_cell_insert () =
  let p =
    Harness.Sim_exp.run_cell ~profile:Sim.Profile.uniform ~panel:Insert
      ~threads:3 ~ops_per_thread:100 ~init_size:0 Harness.Pq.On_sim.mound_lock
  in
  check_int "all ops counted" 300 p.ops;
  check "positive throughput" true (p.throughput > 0.);
  check "positive span" true (p.span_cycles > 0)

let sim_cell_extract_drains () =
  let p =
    Harness.Sim_exp.run_cell ~profile:Sim.Profile.uniform ~panel:Extract
      ~threads:2 ~ops_per_thread:200 ~init_size:0 Harness.Pq.On_sim.skiplist
  in
  (* pre-populated with threads*ops elements; all extracts succeed *)
  check_int "all extracts succeeded" 400 p.ops

let sim_cell_extract_many_conserves () =
  let p =
    Harness.Sim_exp.run_cell ~profile:Sim.Profile.uniform ~panel:Extract_many
      ~threads:4 ~ops_per_thread:0 ~init_size:500 Harness.Pq.On_sim.mound_lf
  in
  check_int "every element extracted exactly once" 500 p.ops

let sim_series_shape () =
  let s =
    Harness.Sim_exp.run_series ~profile:Sim.Profile.uniform ~panel:Mixed
      ~thread_counts:[ 1; 2 ] ~ops_per_thread:50 ~init_size:100
      Harness.Pq.On_sim.coarse
  in
  check "name" true (s.structure = "Coarse Heap");
  check_int "two points" 2 (List.length s.points)

let sim_determinism () =
  let run () =
    Harness.Sim_exp.run_cell ~profile:Sim.Profile.x86 ~seed:5L ~panel:Mixed
      ~threads:4 ~ops_per_thread:100 ~init_size:200 Harness.Pq.On_sim.mound_lf
  in
  let a = run () and b = run () in
  check "same span" true (a.span_cycles = b.span_cycles);
  check "same ops" true (a.ops = b.ops)

(* --- real experiment driver --- *)

let real_cell_smoke () =
  let c =
    Harness.Real_exp.run_cell ~warmup:1 ~trials:3 ~panel:Mixed ~threads:2
      ~ops_per_thread:500 ~init_size:100 Harness.Pq.On_real.mound_lock
  in
  (* 1–2-thread cells double their measured trials (the low-thread
     noise boost): 3 requested -> 6 recorded *)
  check_int "measured trials" 6 (List.length c.trials);
  List.iter
    (fun (t : Harness.Real_exp.trial) ->
      check_int "ops counted" 1000 t.ops;
      check_int "thread points" 2 (List.length t.thread_points);
      check "throughput positive" true (t.throughput > 0.);
      check "skew non-negative" true (t.skew_s >= 0.);
      List.iter
        (fun (p : Harness.Real_exp.thread_point) ->
          (* per-domain stamps land inside the trial's timed window *)
          check "start after origin" true (p.start_s >= 0.);
          check "stop after start" true (p.stop_s >= p.start_s))
        t.thread_points)
    c.trials;
  check "median positive" true (c.summary.median > 0.);
  check "min <= median" true (c.summary.tp_min <= c.summary.median);
  check "median <= max" true (c.summary.median <= c.summary.tp_max)

(* --- tables at reduced scale --- *)

let table1_shape () =
  let rows = Harness.Tables.table1 ~n:(1 lsl 12) () in
  check_int "two orders" 2 (List.length rows);
  List.iter
    (fun (r : Harness.Tables.row) ->
      check "all elements accounted" true
        (Mound.Stats.total_elements r.stats = 1 lsl 12);
      (* increasing order yields strictly more levels than random *)
      check "plausible depth" true (r.stats.depth >= 10 && r.stats.depth <= 16))
    rows;
  let inc = (List.nth rows 0 : Harness.Tables.row) in
  let rnd = List.nth rows 1 in
  check "increasing deeper or equal" true (inc.stats.depth >= rnd.stats.depth)

let table2_shape () =
  let rows = Harness.Tables.table2 ~n:(1 lsl 12) () in
  check_int "four rows" 4 (List.length rows);
  List.iter
    (fun (r : Harness.Tables.row) ->
      let total = Mound.Stats.total_elements r.stats in
      check "some elements removed" true (total < 1 lsl 12 && total > 0))
    rows

let table3_shape () =
  let rows = Harness.Tables.table3 ~ops:(1 lsl 12) () in
  check_int "three sizes" 3 (List.length rows)

let table4_shape () =
  let stats = Harness.Tables.table4 ~n:(1 lsl 14) () in
  check_int "all elements" (1 lsl 14) (Mound.Stats.total_elements stats);
  (* the paper's key observation: average stored value increases with
     depth (shallow lists hold the small elements) *)
  let levels = Array.to_list stats.levels in
  let nonempty =
    List.filter (fun (l : Mound.Stats.level) -> l.elements > 100) levels
  in
  let avgs = List.filter_map Mound.Stats.avg_value nonempty in
  let rec mostly_increasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b *. 1.5 && mostly_increasing rest
  in
  check "avg value grows with depth" true (mostly_increasing avgs);
  (* and lists near the top are much longer than near the leaves *)
  check "top lists long" true
    (Mound.Stats.avg_list_len stats.levels.(0) > 3.);
  let max_len =
    Array.fold_left
      (fun m lv -> max m (Mound.Stats.avg_list_len lv))
      0. stats.levels
  in
  let last = stats.levels.(stats.depth - 1) in
  check "lists decay toward leaves" true
    (max_len > 2. *. Mound.Stats.avg_list_len last)

(* --- fig2 quick end-to-end --- *)

let fig2_panel_smoke () =
  let scale =
    {
      Harness.Fig2.ops_per_thread = 128;
      mixed_init = 128;
      many_init = 256;
      threads_niagara = [ 1; 2 ];
      threads_x86 = [ 1; 2 ];
    }
  in
  let series =
    Harness.Fig2.run ~scale ~profile:Sim.Profile.x86 ~panel:Insert ()
  in
  check_int "four structures" 4 (List.length series);
  List.iter
    (fun (s : Harness.Sim_exp.series) ->
      check_int "two points" 2 (List.length s.points);
      List.iter
        (fun (p : Harness.Sim_exp.point) ->
          check "positive throughput" true (p.throughput > 0.))
        s.points)
    series;
  (* printing does not raise and mentions every structure *)
  let out =
    Format.asprintf "%a"
      (fun ppf () ->
        Harness.Fig2.print_panel ppf ~profile:Sim.Profile.x86 ~panel:Insert
          series)
      ()
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun name -> check (name ^ " in output") true (contains out name))
    [ "Mound (Lock)"; "Mound (LF)"; "Hunt Heap (Lock)"; "Skip List (QC)" ]

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          Alcotest.test_case "key orders" `Quick keys_orders;
          Alcotest.test_case "panel names" `Quick panel_names_roundtrip;
          Alcotest.test_case "run_thread op counts" `Quick
            run_thread_counts_ops;
        ] );
      ("barrier", [ Alcotest.test_case "releases all" `Quick barrier_releases_all ]);
      ( "sim driver",
        [
          Alcotest.test_case "insert cell" `Quick sim_cell_insert;
          Alcotest.test_case "extract cell drains" `Quick
            sim_cell_extract_drains;
          Alcotest.test_case "extract_many conserves" `Quick
            sim_cell_extract_many_conserves;
          Alcotest.test_case "series shape" `Quick sim_series_shape;
          Alcotest.test_case "deterministic" `Quick sim_determinism;
        ] );
      ("real driver", [ Alcotest.test_case "smoke" `Quick real_cell_smoke ]);
      ( "tables",
        [
          Alcotest.test_case "table1" `Quick table1_shape;
          Alcotest.test_case "table2" `Quick table2_shape;
          Alcotest.test_case "table3" `Quick table3_shape;
          Alcotest.test_case "table4" `Quick table4_shape;
        ] );
      ("fig2", [ Alcotest.test_case "panel smoke" `Quick fig2_panel_smoke ]);
    ]
