(* Tests for the structure-statistics module behind Tables I-IV. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a hand-built "mound": node index -> list *)
let iter_of_alist alist f = List.iter (fun (i, l) -> f i l) alist

let compute alist =
  Mound.Stats.compute ~iter:(iter_of_alist alist) ~to_float:float_of_int ()

let basic_level_accounting () =
  let stats =
    compute
      [ (1, [ 1; 2 ]); (2, [ 3 ]); (3, []); (4, [ 5; 6; 7 ]); (5, []); (6, []); (7, [ 9 ]) ]
  in
  check_int "depth" 3 stats.depth;
  let l0 = stats.levels.(0) and l1 = stats.levels.(1) and l2 = stats.levels.(2) in
  check_int "l0 capacity" 1 l0.capacity;
  check_int "l0 nonempty" 1 l0.nonempty;
  check_int "l0 elements" 2 l0.elements;
  check_int "l1 nonempty" 1 l1.nonempty;
  check_int "l2 nonempty" 2 l2.nonempty;
  check_int "l2 elements" 4 l2.elements;
  check_int "total" 7 (Mound.Stats.total_elements stats);
  check_int "longest list" 3 (Mound.Stats.longest_list stats)

let fullness_percentages () =
  let stats = compute [ (1, [ 1 ]); (2, [ 2 ]); (3, []) ] in
  check "root full" true (Mound.Stats.fullness stats.levels.(0) = 100.);
  check "level1 half full" true (Mound.Stats.fullness stats.levels.(1) = 50.)

let incomplete_levels_format () =
  let stats = compute [ (1, [ 1 ]); (2, [ 2 ]); (3, []) ] in
  (match Mound.Stats.incomplete_levels stats with
  | [ (1, f) ] -> check "50%" true (f = 50.)
  | _ -> Alcotest.fail "expected exactly level 1 incomplete");
  let rendered = Format.asprintf "%a" Mound.Stats.pp_incomplete stats in
  check "renders like the paper" true (rendered = "50.00% (1)")

let avg_value_and_list_len () =
  let stats = compute [ (1, [ 10; 20 ]); (2, [ 30 ]); (3, []) ] in
  (match Mound.Stats.avg_value stats.levels.(0) with
  | Some v -> check "avg value root" true (v = 15.)
  | None -> Alcotest.fail "expected avg");
  check "avg list len includes empties" true
    (Mound.Stats.avg_list_len stats.levels.(1) = 0.5);
  check "empty level has no avg" true
    (Mound.Stats.avg_value stats.levels.(1) <> None);
  let empty_level = compute [ (1, []) ] in
  check "all-empty level" true
    (Mound.Stats.avg_value empty_level.levels.(0) = None)

let skips_nothing_on_sparse_levels () =
  (* allocated nodes on level 2 only: levels 0-1 still reported (empty) *)
  let stats = compute [ (4, [ 1 ]); (5, []); (6, []); (7, []) ] in
  check_int "depth 3" 3 stats.depth;
  check_int "level0 capacity" 1 stats.levels.(0).capacity;
  check_int "level0 nonempty" 0 stats.levels.(0).nonempty;
  check_int "level2 nonempty" 1 stats.levels.(2).nonempty

let agrees_with_seq_mound () =
  let module S = Mound.Seq_int in
  let q = S.create ~seed:71L () in
  let rng = Prng.create 72L in
  for _ = 1 to 10_000 do
    S.insert q (Prng.int rng 1_000_000)
  done;
  let stats =
    Mound.Stats.compute
      ~iter:(fun f -> S.fold_nodes q (fun () i l -> f i l) ())
      ~to_float:float_of_int ()
  in
  check_int "elements = size" (S.size q) (Mound.Stats.total_elements stats);
  check_int "depth matches" (S.depth q) stats.depth;
  (* level capacities are the full binary-tree row sizes *)
  Array.iteri
    (fun l lv -> check_int "capacity" (1 lsl l) lv.Mound.Stats.capacity)
    stats.levels

let () =
  Alcotest.run "stats"
    [
      ( "accounting",
        [
          Alcotest.test_case "levels" `Quick basic_level_accounting;
          Alcotest.test_case "fullness" `Quick fullness_percentages;
          Alcotest.test_case "incomplete levels" `Quick
            incomplete_levels_format;
          Alcotest.test_case "averages" `Quick avg_value_and_list_len;
          Alcotest.test_case "sparse levels" `Quick
            skips_nothing_on_sparse_levels;
          Alcotest.test_case "agrees with seq mound" `Quick
            agrees_with_seq_mound;
        ] );
    ]
