(* Deliberately broken structures seeded for the progress tier. Each
   deletes one liveness ingredient the clean tree depends on, so the
   checker and the helping lint have known-bad inputs to catch:

   - [No_help]: extract_min spins on a dirty root instead of restoring
     it, and the winning extractor skips restoration too — the paper's
     L24–L26 replaced by a bare retry. Once any extraction wins, the
     root is dirty forever and every later extraction spins: the
     liveness checker must confirm a non-progress cycle, and the lint
     must flag both the dirty re-test ([dirty-spin]) and the bare retry
     ([retry-no-backoff]).

   - [No_backoff]: a lock-free CAS insert with the exponential backoff
     deleted. Still lock-free — certification stays green — but the
     [retry-no-backoff] lint must flag it: the point of that rule is
     exactly that progress and contention behavior are separate claims.

   - [Lock_inverted]: the locking mound's hand-over-hand acquisition
     with the parent/child order flipped on one side (upstream locks
     parent before child, F45–F46 of the paper's listing), distilled to
     the two slots involved. Under a fair schedule each thread holds
     one lock and spins reading the other: the checker must confirm a
     fair cycle with no writes in the pump — a deadlock.

   This file is scanned by [test_progress] with {!Lint_rules.scan_file}
   as the lint's acceptance fixture; it must stay outside [lib/] so the
   shipped-tree lint stays clean. *)

module No_help = struct
  module R = Sim.Runtime
  module M = Mcas.Make (R.Atomic)
  module T = Mound.Tree.Make (R)

  type mnode = { list : int list; dirty : bool; seq : int }
  type t = { tree : mnode M.loc T.t }

  let create () =
    let make_slot () = M.make { list = []; dirty = false; seq = 0 } in
    { tree = T.create make_slot }

  (* Root-only insert: just enough to seed the mutant before the race.
     The list is kept in sorted order by inserting descending values. *)
  let rec insert t v =
    let slot = T.get t.tree 1 in
    let cur = M.get slot in
    if
      not
        (M.cas slot cur
           { list = v :: cur.list; dirty = cur.dirty; seq = cur.seq + 1 })
    then insert t v

  (* THE MUTATION: a dirty root is spun on, never restored, and the
     winner leaves it dirty. *)
  let rec extract_min t =
    let slot = T.get t.tree 1 in
    let root = M.get slot in
    if root.dirty then extract_min t
    else
      match root.list with
      | [] -> None
      | hd :: tl ->
          if M.cas slot root { list = tl; dirty = true; seq = root.seq + 1 }
          then Some hd
          else extract_min t
end

module No_backoff = struct
  module R = Sim.Runtime
  module M = Mcas.Make (R.Atomic)

  type t = int list M.loc

  let create () : t = M.make []

  (* Upstream's insert retry runs [B.exponential] between attempts;
     deleted here. *)
  let rec insert (c : t) v =
    let cur = M.get c in
    if not (M.cas c cur (v :: cur)) then insert c v
end

module Lock_inverted = struct
  module R = Sim.Runtime

  type t = { parent : bool R.Atomic.t; child : bool R.Atomic.t }

  let create () =
    { parent = R.Atomic.make false; child = R.Atomic.make false }

  (* Test-and-test-and-set with no backoff: the pure read spin is what
     the checker's no-write fair cycle classifies as a deadlock. *)
  let rec lock slot =
    if R.Atomic.get slot then lock slot
    else if not (R.Atomic.compare_and_set slot false true) then lock slot

  let unlock slot = R.Atomic.set slot false

  let insert_inverted t =
    lock t.child;
    lock t.parent;
    unlock t.parent;
    unlock t.child

  let extract t =
    lock t.parent;
    lock t.child;
    unlock t.child;
    unlock t.parent
end

(* ---- liveness programs over the mutants -------------------------------- *)

let no_help_program : Liveness.program =
  let prepare () =
    Sim.Sched.seed_ambient 11L;
    let q = No_help.create () in
    No_help.insert q 2;
    No_help.insert q 1;
    let ops_done = Array.make 2 0 in
    let bodies =
      [|
        (fun _ ->
          ignore (No_help.extract_min q);
          ops_done.(0) <- 1);
        (fun _ ->
          ignore (No_help.extract_min q);
          ops_done.(1) <- 1);
      |]
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  { Liveness.name = "mutant-no-help"; prepare }

let no_backoff_program : Liveness.program =
  let prepare () =
    Sim.Sched.seed_ambient 11L;
    let c = No_backoff.create () in
    let ops_done = Array.make 2 0 in
    let bodies =
      [|
        (fun _ ->
          No_backoff.insert c 1;
          ops_done.(0) <- 1);
        (fun _ ->
          No_backoff.insert c 2;
          ops_done.(1) <- 1);
      |]
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  { Liveness.name = "mutant-no-backoff"; prepare }

let lock_inverted_program : Liveness.program =
  let prepare () =
    Sim.Sched.seed_ambient 11L;
    let t = Lock_inverted.create () in
    let ops_done = Array.make 2 0 in
    let bodies =
      [|
        (fun _ ->
          Lock_inverted.insert_inverted t;
          ops_done.(0) <- 1);
        (fun _ ->
          Lock_inverted.extract t;
          ops_done.(1) <- 1);
      |]
    in
    { Liveness.bodies; ops_done = (fun () -> Array.copy ops_done) }
  in
  { Liveness.name = "mutant-lock-inverted"; prepare }
