(* The mutation tier: the committed kill matrix is the certificate that
   the static-analysis suite actually detects the defect classes it
   claims to — and this suite is the regression guard on that
   certificate.

   Three layers:

   - mound-mutation/1 artifact hygiene: the emitter's document survives
     a print/parse round trip, and [validate] rejects every tampered
     redundancy (count, killed, kill_rate, rule_kills, status ↔
     killed_by) — a hand-edited matrix cannot quietly misreport its own
     kill rate.

   - the committed baseline (bench/baseline/MUTATION_matrix.json):
     validates, carries at least 30 mutants, no target rule silent, and
     every hand-seeded mutant class from [mutant_static.ml] re-derived
     by a catalog operator and killed by the rule that kills the
     hand-seeded fixture.

   - the live regression guard: regenerate the matrix from the current
     sources and compare against the baseline — the kill rate must not
     drop and no rule with baseline kills may fall silent. The static
     matrix is deterministic, so these are exact comparisons, not
     tolerances. Dynamic-twin escalation is the slow part; it runs only
     under MUTATION_FULL=1 (the @mutation alias declares the env var,
     so flipping it re-runs the tier).

   cwd is _build/default/test under `dune runtest` but the project root
   under `dune exec test/test_mutation.exe`; source-dependent cases
   probe for the tree and skip silently when it is not there, exactly
   like test_analysis's shipped-tree case — the @mutation alias, which
   declares (source_tree ../lib), is where the guard is enforced. *)

let baseline_path () =
  let rel = "bench/baseline/MUTATION_matrix.json" in
  if Sys.file_exists (Filename.concat ".." rel) then Filename.concat ".." rel
  else rel

let lib_root () =
  if Sys.file_exists "lib/core" then Some "lib"
  else if Sys.file_exists "../lib/core" then Some "../lib"
  else None

let full = Sys.getenv_opt "MUTATION_FULL" <> None

(* ---- mound-mutation/1 artifact hygiene --------------------------------- *)

(* A tiny synthetic matrix: one killed mutant, one survivor with a
   mapped twin, built through the real Killmatrix plumbing with an
   injected scanner keyed on the substituted source. *)
let fake_context = [ ("lib/core/f.ml", "PRISTINE") ]

let fake_scan files =
  if List.exists (fun (_, s) -> s = "KILLED-MUTANT") files then
    [
      {
        Lint_rules.file = "lib/core/f.ml";
        line = 3;
        rule = "atomicity";
        msg = "lost update";
      };
    ]
  else []

let fake_mutant ~id ~op ~src =
  {
    Analysis.Mutate.m_id = id;
    m_op = op;
    m_file = "lib/core/f.ml";
    m_line = 3;
    m_note = "synthetic";
    m_src = src;
  }

let fake_matrix () =
  Analysis.Killmatrix.run ~scan:fake_scan ~context:fake_context
    [
      fake_mutant ~id:"demote-rmw:f.ml:3" ~op:"demote-rmw" ~src:"KILLED-MUTANT";
      fake_mutant ~id:"swap-lock-order:f.ml:3" ~op:"swap-lock-order"
        ~src:"SURVIVING-MUTANT";
    ]

let fake_doc () = Harness.Mutation_json.doc (fake_matrix ()) []

let test_round_trip () =
  let doc = fake_doc () in
  (match Harness.Mutation_json.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "emitted doc invalid: %s" e);
  let doc' = Harness.Bench_json.parse (Harness.Bench_json.to_string doc) in
  (match Harness.Mutation_json.validate doc' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "round-tripped doc invalid: %s" e);
  let rows = Harness.Mutation_json.rows_of doc' in
  Alcotest.(check int) "rows survive the trip" 2 (List.length rows);
  let killed =
    List.find
      (fun r -> r.Harness.Mutation_json.mr_id = "demote-rmw:f.ml:3")
      rows
  in
  Alcotest.(check string) "kill recorded" "killed"
    killed.Harness.Mutation_json.mr_status;
  Alcotest.(check (list string))
    "killing rule recorded" [ "atomicity" ]
    killed.Harness.Mutation_json.mr_killed_by;
  let survivor =
    List.find
      (fun r -> r.Harness.Mutation_json.mr_id = "swap-lock-order:f.ml:3")
      rows
  in
  (* escalation not run: the survivor carries its mapped twin *)
  Alcotest.(check string) "survivor status" "survived"
    survivor.Harness.Mutation_json.mr_status;
  Alcotest.(check (option string))
    "mapped twin carried"
    (Some "lock-inversion-deadlock")
    survivor.Harness.Mutation_json.mr_twin

let test_malformed () =
  (match Harness.Bench_json.parse "{ not json" with
  | exception Harness.Bench_json.Malformed _ -> ()
  | _ -> Alcotest.fail "garbage parsed");
  match Harness.Mutation_json.validate (Harness.Bench_json.parse "{}") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty object validated"

(* Every redundant field is cross-checked: tamper with each in turn and
   validate must reject. *)
let tamper name f =
  let doc = fake_doc () in
  let doc' = f doc in
  match Harness.Mutation_json.validate doc' with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "tampered %s validated" name

let rec set_field k v = function
  | Harness.Bench_json.Obj kvs ->
      Harness.Bench_json.Obj
        (List.map (fun (k', v') -> if k' = k then (k, v) else (k', v')) kvs)
  | j ->
      ignore (set_field k v (Harness.Bench_json.Obj []));
      j

let test_tamper () =
  tamper "count" (set_field "count" (Harness.Bench_json.Num 99.));
  tamper "killed" (set_field "killed" (Harness.Bench_json.Num 2.));
  tamper "kill_rate" (set_field "kill_rate" (Harness.Bench_json.Num 1.));
  tamper "rule_kills" (set_field "rule_kills" (Harness.Bench_json.Arr []));
  tamper "schema" (set_field "schema" (Harness.Bench_json.Str "mound-lint/1"));
  (* flip the killed row's status without touching killed_by *)
  tamper "status" (fun doc ->
      match doc with
      | Harness.Bench_json.Obj _ -> (
          match Harness.Bench_json.member "mutants" doc with
          | Some (Harness.Bench_json.Arr ms) ->
              set_field "mutants"
                (Harness.Bench_json.Arr
                   (List.map
                      (fun m ->
                        match Harness.Bench_json.member "id" m with
                        | Some (Harness.Bench_json.Str "demote-rmw:f.ml:3") ->
                            set_field "status"
                              (Harness.Bench_json.Str "survived") m
                        | _ -> m)
                      ms))
                doc
          | _ -> doc)
      | j -> j)

(* ---- the committed baseline -------------------------------------------- *)

(* Each hand-seeded defect class in mutant_static.ml, as the (operator,
   killing rule) pair that re-derives it mechanically. The baseline must
   contain at least one killed mutant per pair — the seeded fixtures and
   the generated mutants certify the same rule from two directions. *)
let seeded_classes =
  [
    ("Lock_inverted_static", "swap-lock-order", "lock-order");
    ("Post_publish_mutation", "inplace-publish", "post-publish-mutation");
    ("Aliased_helper_dropped", "drop-help", "static-retry");
    ("Unstamped_publish", "drop-stamp", "aba-risk");
    ("Lost_update", "demote-rmw", "atomicity");
    ("Counter_drift", "demote-rmw", "atomicity");
    ("Unpadded_top_row", "drop-pad", "layout");
    ("Spawn_counter_race", "mutabilize", "static-race");
    ("Published_record_write", "mutabilize", "escape");
  ]

let load_baseline () =
  let path = baseline_path () in
  let doc = Harness.Bench_json.load path in
  (match Harness.Mutation_json.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: baseline invalid: %s" path e);
  doc

let test_baseline_valid () =
  let doc = load_baseline () in
  let rows = Harness.Mutation_json.rows_of doc in
  Alcotest.(check bool)
    "at least 30 mutants" true
    (List.length rows >= 30);
  (* no target rule silent: every universe rule scores at least one kill *)
  let kills = Harness.Mutation_json.rule_kills_of doc in
  List.iter
    (fun rule ->
      match List.assoc_opt rule kills with
      | Some n when n >= 1 -> ()
      | Some _ -> Alcotest.failf "rule %s silent in the baseline" rule
      | None -> Alcotest.failf "rule %s missing from the baseline" rule)
    Analysis.Mutate.target_rules

let test_baseline_rederives_seeded () =
  let rows = Harness.Mutation_json.rows_of (load_baseline ()) in
  List.iter
    (fun (cls, op, rule) ->
      let hit =
        List.exists
          (fun r ->
            r.Harness.Mutation_json.mr_op = op
            && r.mr_status = "killed"
            && List.mem rule r.mr_killed_by)
          rows
      in
      if not hit then
        Alcotest.failf
          "seeded class %s: no %s mutant killed by %s in the baseline" cls op
          rule)
    seeded_classes

(* ---- the live regression guard ----------------------------------------- *)

let context_roots root =
  List.map (Filename.concat root) [ "core"; "mcas"; "runtime" ]

let live_matrix root =
  let context =
    List.concat_map Lint_rules.files_under (context_roots root)
    |> List.sort compare
    |> List.map (fun p -> (p, Analysis.read_file p))
  in
  let targets =
    List.filter
      (fun (p, _) ->
        Filename.check_suffix p ".ml"
        && Filename.basename (Filename.dirname p) = "core")
      context
  in
  Analysis.killmatrix ~context (Analysis.Mutate.mutants targets)

let test_kill_rate_guard () =
  match lib_root () with
  | None -> () (* sandbox without sources; the @mutation alias has them *)
  | Some root ->
      let doc = load_baseline () in
      let base_rows = Harness.Mutation_json.rows_of doc in
      let base_rate =
        match Harness.Bench_json.member "kill_rate" doc with
        | Some (Harness.Bench_json.Num r) -> r
        | _ -> Alcotest.fail "baseline missing kill_rate"
      in
      let m = live_matrix root in
      let live_rows = List.length m.Analysis.Killmatrix.k_rows in
      Alcotest.(check bool)
        "live matrix has at least 30 mutants" true (live_rows >= 30);
      let live_rate = Analysis.Killmatrix.kill_rate m in
      if live_rate +. 1e-9 < base_rate then
        Alcotest.failf
          "kill rate regressed: %.3f live vs %.3f committed (re-record the \
           baseline only for an intentional rule or operator change)"
          live_rate base_rate;
      (* no rule with committed kills may fall silent *)
      let live_kills = Analysis.Killmatrix.rule_kills m in
      List.iter
        (fun (rule, n) ->
          if n > 0 then
            match List.assoc_opt rule live_kills with
            | Some ln when ln >= 1 -> ()
            | _ ->
                Alcotest.failf
                  "rule %s killed %d in the committed baseline but is now \
                   silent"
                  rule n)
        (Harness.Mutation_json.rule_kills_of doc);
      ignore base_rows

(* Survivor escalation against the dynamic twins: slow (DPOR + liveness
   runs), so MUTATION_FULL=1 only. Every operator with a mapped twin
   whose mutants survive must come back [escalated] or [benign] — a
   [gap] on a mapped twin means the twin table and the catalog drifted. *)
let test_escalation_full () =
  match lib_root () with
  | None -> ()
  | Some root ->
      if not full then ()
      else
        let m = live_matrix root in
        let es = Harness.Mutation_exp.escalate m in
        List.iter
          (fun (e : Harness.Mutation_exp.escalation) ->
            if e.e_status = "gap" && e.e_twin <> None then
              Alcotest.failf "mutant %s: mapped twin %s came back as a gap"
                e.e_id
                (Option.value e.e_twin ~default:"?"))
          es;
        (* the lock-inversion twin must actually deadlock: the class the
           swap operator plants is real and dynamically caught *)
        let swaps =
          List.filter
            (fun (e : Harness.Mutation_exp.escalation) ->
              e.e_twin = Some "lock-inversion-deadlock")
            es
        in
        if swaps <> [] then
          Alcotest.(check bool)
            "some lock-order swap escalates to a confirmed deadlock" true
            (List.exists
               (fun (e : Harness.Mutation_exp.escalation) ->
                 e.e_status = "escalated")
               swaps)

let () =
  Alcotest.run "mutation"
    [
      ( "artifact",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "malformed rejected" `Quick test_malformed;
          Alcotest.test_case "tampering rejected" `Quick test_tamper;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "valid, >=30 mutants, no rule silent" `Quick
            test_baseline_valid;
          Alcotest.test_case "hand-seeded classes re-derived" `Quick
            test_baseline_rederives_seeded;
        ] );
      ( "guard",
        [
          Alcotest.test_case "kill rate not regressed" `Slow
            test_kill_rate_guard;
          Alcotest.test_case "survivors escalate (MUTATION_FULL)" `Slow
            test_escalation_full;
        ] );
    ]
