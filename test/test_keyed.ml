(* Tests for the keyed priority map (decrease-key via lazy deletion). *)

module K = Mound.Keyed.Make (Mound.Int_ord) (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let basics () =
  let m = K.create () in
  check "empty" true (K.pop_min m = None);
  ignore (K.insert m "a" 5);
  ignore (K.insert m "b" 3);
  ignore (K.insert m "c" 9);
  check_int "size" 3 (K.size m);
  check "peek" true (K.peek_min m = Some ("b", 3));
  check "pop b" true (K.pop_min m = Some ("b", 3));
  check "pop a" true (K.pop_min m = Some ("a", 5));
  check "pop c" true (K.pop_min m = Some ("c", 9));
  check "drained" true (K.pop_min m = None)

let decrease_key_wins () =
  let m = K.create () in
  ignore (K.insert m "x" 10);
  ignore (K.insert m "y" 5);
  check "decrease accepted" true (K.decrease_key m "x" 1);
  check "x now first" true (K.pop_min m = Some ("x", 1));
  check "y second" true (K.pop_min m = Some ("y", 5));
  (* stale entry for x at 10 must not resurface *)
  check "no stale" true (K.pop_min m = None)

let increase_ignored () =
  let m = K.create () in
  ignore (K.insert m "x" 3);
  check "worsening rejected" false (K.insert m "x" 7);
  check "priority unchanged" true (K.priority m "x" = Some 3);
  check "pop at 3" true (K.pop_min m = Some ("x", 3))

let reinsert_after_pop () =
  let m = K.create () in
  ignore (K.insert m "x" 4);
  check "pop" true (K.pop_min m = Some ("x", 4));
  check "mem gone" false (K.mem m "x");
  check "reinsert works" true (K.insert m "x" 2);
  check "pop again" true (K.pop_min m = Some ("x", 2))

(* dijkstra on the keyed map equals dijkstra with manual lazy deletion *)
let dijkstra_equivalence () =
  let module Km =
    Mound.Keyed.Make
      (Mound.Int_ord)
      (struct
        type t = int

        let equal = Int.equal
        let hash = Hashtbl.hash
      end)
  in
  let n = 3_000 in
  let rng = Prng.create 23L in
  let adj =
    Array.init n (fun _ ->
        List.init 6 (fun _ -> (Prng.int rng n, 1 + Prng.int rng 50)))
  in
  (* keyed-map version *)
  let dist = Array.make n max_int in
  let m = Km.create () in
  dist.(0) <- 0;
  ignore (Km.insert m 0 0);
  let rec loop () =
    match Km.pop_min m with
    | None -> ()
    | Some (v, d) ->
        List.iter
          (fun (w, len) ->
            if d + len < dist.(w) then begin
              dist.(w) <- d + len;
              ignore (Km.decrease_key m w (d + len))
            end)
          adj.(v);
        loop ()
  in
  loop ();
  (* reference with plain sorted list model *)
  let dist' = Array.make n max_int in
  let module H = Baselines.Seq_heap.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let h = H.create () in
  dist'.(0) <- 0;
  H.insert h (0, 0);
  let rec loop () =
    match H.extract_min h with
    | None -> ()
    | Some (d, v) ->
        if d = dist'.(v) then
          List.iter
            (fun (w, len) ->
              if d + len < dist'.(w) then begin
                dist'.(w) <- d + len;
                H.insert h (d + len, w)
              end)
            adj.(v);
        loop ()
  in
  loop ();
  check "distances agree" true (dist = dist')

let prop_model =
  (* random scripts of insert/decrease/pop against a naive model *)
  QCheck.Test.make ~name:"keyed map matches naive model" ~count:200
    QCheck.(list (pair (int_bound 20) (int_bound 100)))
    (fun script ->
      let m = K.create () in
      let model : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (k, p) ->
          let key = string_of_int k in
          if p mod 5 = 0 then begin
            (* pop *)
            let want =
              Hashtbl.fold
                (fun k p acc ->
                  match acc with
                  | Some (_, bp) when bp < p -> acc
                  | Some (bk, bp) when bp = p && bk <= k -> acc
                  | _ -> Some (k, p))
                model None
            in
            match (K.pop_min m, want) with
            | None, None -> ()
            | Some (gk, gp), Some (_, wp) ->
                (* tie-breaking on equal priorities is unspecified: only
                   the priority must match *)
                if gp <> wp || Hashtbl.find model gk <> gp then ok := false
                else Hashtbl.remove model gk
            | _ -> ok := false
          end
          else begin
            let changed = K.insert m key p in
            let model_changed =
              match Hashtbl.find_opt model key with
              | Some cur when cur <= p -> false
              | _ ->
                  Hashtbl.replace model key p;
                  true
            in
            if changed <> model_changed then ok := false
          end)
        script;
      !ok && K.size m = Hashtbl.length model)

let () =
  Alcotest.run "keyed"
    [
      ( "keyed map",
        [
          Alcotest.test_case "basics" `Quick basics;
          Alcotest.test_case "decrease_key wins" `Quick decrease_key_wins;
          Alcotest.test_case "increase ignored" `Quick increase_ignored;
          Alcotest.test_case "reinsert after pop" `Quick reinsert_after_pop;
          Alcotest.test_case "dijkstra equivalence" `Quick
            dijkstra_equivalence;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
    ]
