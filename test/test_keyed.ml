(* Tests for the keyed priority map (decrease-key via lazy deletion). *)

module K = Mound.Keyed.Make (Mound.Int_ord) (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let basics () =
  let m = K.create () in
  check "empty" true (K.pop_min m = None);
  ignore (K.insert m "a" 5);
  ignore (K.insert m "b" 3);
  ignore (K.insert m "c" 9);
  check_int "size" 3 (K.size m);
  check "peek" true (K.peek_min m = Some ("b", 3));
  check "pop b" true (K.pop_min m = Some ("b", 3));
  check "pop a" true (K.pop_min m = Some ("a", 5));
  check "pop c" true (K.pop_min m = Some ("c", 9));
  check "drained" true (K.pop_min m = None)

let decrease_key_wins () =
  let m = K.create () in
  ignore (K.insert m "x" 10);
  ignore (K.insert m "y" 5);
  check "decrease accepted" true (K.decrease_key m "x" 1);
  check "x now first" true (K.pop_min m = Some ("x", 1));
  check "y second" true (K.pop_min m = Some ("y", 5));
  (* stale entry for x at 10 must not resurface *)
  check "no stale" true (K.pop_min m = None)

let increase_ignored () =
  let m = K.create () in
  ignore (K.insert m "x" 3);
  check "worsening rejected" false (K.insert m "x" 7);
  check "priority unchanged" true (K.priority m "x" = Some 3);
  check "pop at 3" true (K.pop_min m = Some ("x", 3))

let reinsert_after_pop () =
  let m = K.create () in
  ignore (K.insert m "x" 4);
  check "pop" true (K.pop_min m = Some ("x", 4));
  check "mem gone" false (K.mem m "x");
  check "reinsert works" true (K.insert m "x" 2);
  check "pop again" true (K.pop_min m = Some ("x", 2))

(* dijkstra on the keyed map equals dijkstra with manual lazy deletion *)
let dijkstra_equivalence () =
  let module Km =
    Mound.Keyed.Make
      (Mound.Int_ord)
      (struct
        type t = int

        let equal = Int.equal
        let hash = Hashtbl.hash
      end)
  in
  let n = 3_000 in
  let rng = Prng.create 23L in
  let adj =
    Array.init n (fun _ ->
        List.init 6 (fun _ -> (Prng.int rng n, 1 + Prng.int rng 50)))
  in
  (* keyed-map version *)
  let dist = Array.make n max_int in
  let m = Km.create () in
  dist.(0) <- 0;
  ignore (Km.insert m 0 0);
  let rec loop () =
    match Km.pop_min m with
    | None -> ()
    | Some (v, d) ->
        List.iter
          (fun (w, len) ->
            if d + len < dist.(w) then begin
              dist.(w) <- d + len;
              ignore (Km.decrease_key m w (d + len))
            end)
          adj.(v);
        loop ()
  in
  loop ();
  (* reference with plain sorted list model *)
  let dist' = Array.make n max_int in
  let module H = Baselines.Seq_heap.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let h = H.create () in
  dist'.(0) <- 0;
  H.insert h (0, 0);
  let rec loop () =
    match H.extract_min h with
    | None -> ()
    | Some (d, v) ->
        if d = dist'.(v) then
          List.iter
            (fun (w, len) ->
              if d + len < dist'.(w) then begin
                dist'.(w) <- d + len;
                H.insert h (d + len, w)
              end)
            adj.(v);
        loop ()
  in
  loop ();
  check "distances agree" true (dist = dist')

let prop_model =
  (* random scripts of insert/decrease/pop against a naive model *)
  QCheck.Test.make ~name:"keyed map matches naive model" ~count:200
    QCheck.(list (pair (int_bound 20) (int_bound 100)))
    (fun script ->
      let m = K.create () in
      let model : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (k, p) ->
          let key = string_of_int k in
          if p mod 5 = 0 then begin
            (* pop *)
            let want =
              Hashtbl.fold
                (fun k p acc ->
                  match acc with
                  | Some (_, bp) when bp < p -> acc
                  | Some (bk, bp) when bp = p && bk <= k -> acc
                  | _ -> Some (k, p))
                model None
            in
            match (K.pop_min m, want) with
            | None, None -> ()
            | Some (gk, gp), Some (_, wp) ->
                (* tie-breaking on equal priorities is unspecified: only
                   the priority must match *)
                if gp <> wp || Hashtbl.find model gk <> gp then ok := false
                else Hashtbl.remove model gk
            | _ -> ok := false
          end
          else begin
            let changed = K.insert m key p in
            let model_changed =
              match Hashtbl.find_opt model key with
              | Some cur when cur <= p -> false
              | _ ->
                  Hashtbl.replace model key p;
                  true
            in
            if changed <> model_changed then ok := false
          end)
        script;
      !ok && K.size m = Hashtbl.length model)

(* ---- deadline / try / bounded variants (overload tier) ----------------- *)

let ms n = n * 1_000_000

(* A decrease-key storm leaves a pile of stale entries at the head of
   the queue; [pop_min_until]'s deadline is checked between stale
   drops, so a long-gone deadline gives a deterministic [Timeout] per
   stale entry — and no element is ever lost to one. *)
let pop_min_until_storm () =
  let m = K.create () in
  (* one key decreased 100 -> 1 leaves 99 stale entries behind it *)
  ignore (K.insert m "a" 100);
  for p = 99 downto 1 do
    ignore (K.decrease_key m "a" p)
  done;
  check "live head wins" true (K.pop_min m = Some ("a", 1));
  (* the 99 stale entries (2..100,"a") now head the queue; "b" is live *)
  ignore (K.insert m "b" 1000);
  let past = Runtime.Real.monotonic_ns () - ms 1 in
  (* a fresh head is returned even when the deadline is long gone:
     Timeout always means "gave up discarding stale entries" *)
  ignore (K.insert m "c" 1);
  (match K.pop_min_until m ~deadline:past with
  | Mound.Intf.Ok (Some ("c", 1)) -> ()
  | _ -> Alcotest.fail "fresh head must be returned even late");
  (* each expired call drops exactly one stale entry, then times out *)
  let timeouts = ref 0 in
  let rec storm () =
    match K.pop_min_until m ~deadline:past with
    | Mound.Intf.Timeout ->
        incr timeouts;
        storm ()
    | Mound.Intf.Ok (Some ("b", 1000)) -> ()
    | _ -> Alcotest.fail "only b may surface"
  in
  storm ();
  check_int "one stale dropped per timeout" 99 !timeouts;
  check "nothing lost" true (K.pop_min m = None);
  (* no_deadline never expires, whatever the clock says *)
  ignore (K.insert m "d" 7);
  check "no_deadline pops" true
    (K.pop_min_until m ~deadline:Mound.Intf.no_deadline
    = Mound.Intf.Ok (Some ("d", 7)))

(* [try_insert] is [insert] under the front-end's expected name: the
   changed bool already distinguishes admitted from refused *)
let try_insert_changed () =
  let m = K.create () in
  check "new key admitted" true (K.try_insert m "x" 5);
  check "worsening refused" false (K.try_insert m "x" 9);
  check "improvement admitted" true (K.try_insert m "x" 2);
  check "pops at improved priority" true (K.pop_min m = Some ("x", 2))

(* The Bounded front-end over a Keyed-backed queue: the ops record is
   the whole adapter. [extract_approx] degrades to [pop_min] — a
   sequential map has no deep probe — so Shed evicts the current best
   rather than a probably-unimportant victim. *)
let bounded_over_keyed () =
  let module B = Mound.Bounded.Make (Runtime.Real) in
  let keyed_ops : (K.t, string * int) B.ops =
    {
      insert = (fun m (k, p) -> ignore (K.insert m k p));
      try_insert = (fun m (k, p) -> K.try_insert m k p);
      insert_until =
        (fun m ~deadline:_ (k, p) ->
          if K.try_insert m k p then Mound.Intf.Ok ()
          else Mound.Intf.Rejected);
      extract_min = K.pop_min;
      extract_min_until = (fun m ~deadline -> K.pop_min_until m ~deadline);
      extract_approx = (fun ~max_level:_ m -> K.pop_min m);
    }
  in
  let b = B.make ~ops:keyed_ops ~capacity:4 ~policy:B.Reject (K.create ()) in
  for i = 1 to 4 do
    match B.insert b (Printf.sprintf "k%d" i, i * 10) with
    | Mound.Intf.Ok () -> ()
    | _ -> Alcotest.fail "under capacity must admit"
  done;
  check "watermark refuses the fifth" true
    (B.insert b ("k5", 50) = Mound.Intf.Rejected);
  check_int "watermark rejection counted" 1 (B.counters b).rejected;
  check "extraction frees a slot" true (B.extract_min b = Some ("k1", 10));
  check_int "occupancy after pop" 3 (B.size b);
  (* a worsening insert is Rejected by the structure, not the
     watermark, and hands its reserved slot back *)
  check "worsening rejected by the structure" true
    (B.insert b ("k2", 99) = Mound.Intf.Rejected);
  check_int "slot handed back" 3 (B.size b);
  check "freed slot readmits" true
    (B.insert b ("k1", 15) = Mound.Intf.Ok ());
  (* Shed over Keyed: room is made by evicting through pop_min *)
  let s = B.make ~ops:keyed_ops ~capacity:2 ~policy:B.Shed (K.create ()) in
  List.iter
    (fun (k, p) ->
      match B.insert s (k, p) with
      | Mound.Intf.Ok () -> ()
      | _ -> Alcotest.fail "shed admits every arrival")
    [ ("s1", 30); ("s2", 20); ("s3", 10) ];
  check_int "one eviction" 1 (B.counters s).shed;
  check_int "held at the watermark" 2 (B.size s)

let () =
  Alcotest.run "keyed"
    [
      ( "keyed map",
        [
          Alcotest.test_case "basics" `Quick basics;
          Alcotest.test_case "decrease_key wins" `Quick decrease_key_wins;
          Alcotest.test_case "increase ignored" `Quick increase_ignored;
          Alcotest.test_case "reinsert after pop" `Quick reinsert_after_pop;
          Alcotest.test_case "dijkstra equivalence" `Quick
            dijkstra_equivalence;
          QCheck_alcotest.to_alcotest prop_model;
        ] );
      ( "overload variants",
        [
          Alcotest.test_case "pop_min_until under stale storm" `Quick
            pop_min_until_storm;
          Alcotest.test_case "try_insert changed bool" `Quick
            try_insert_changed;
          Alcotest.test_case "bounded over keyed" `Quick bounded_over_keyed;
        ] );
    ]
