(** The progress-certification tier: {!Liveness.certify} over the
    {!Harness.Progress_exp} catalog and the seeded {!Mutant_live}
    mutants.

    The smoke run uses {!Liveness.quick_config}; set [PROGRESS_FULL=1]
    to sweep {!Liveness.default_config} (every quantum, stagger and
    suspension cut) — the tier [repro progress] runs without [--quick].

    Expectations pinned here are the paper's progress claims (§III–§IV):
    the lock-free mound and the CASN primitive certify lock-free, the
    locking mound is deadlock-free but starves under a suspension
    adversary, and every reported cycle replays from its printed
    schedule. The mutants invert the claims: helping removed must yield
    a confirmed non-progress cycle, backoff removed must stay lock-free
    (backoff is contention hygiene, not progress), and the inverted
    lock order must deadlock under a fair schedule. *)

let config =
  if Sys.getenv_opt "PROGRESS_FULL" = Some "1" then Liveness.default_config
  else Liveness.quick_config

let entry name =
  match Harness.Progress_exp.find name with
  | Some e -> e.Harness.Progress_exp.program
  | None -> Alcotest.failf "no progress catalog entry %S" name

let certify p = Liveness.certify ~config p

(* ---- the clean tree ---------------------------------------------------- *)

let test_lf_mound_lock_free () =
  let r = certify (entry "lf-mound") in
  Alcotest.(check int) "inconclusive" 0 r.Liveness.inconclusive;
  Alcotest.(check bool) "lock-free" true r.Liveness.lock_free;
  Alcotest.(check bool) "deadlock-free" true r.Liveness.deadlock_free

let test_mcas_lock_free () =
  let r = certify (entry "mcas") in
  Alcotest.(check int) "inconclusive" 0 r.Liveness.inconclusive;
  Alcotest.(check bool) "lock-free" true r.Liveness.lock_free;
  Alcotest.(check bool) "deadlock-free" true r.Liveness.deadlock_free

let test_lock_mound_starves () =
  let r = certify (entry "lock-mound") in
  (* Deadlock-free under fairness, but a suspended lock holder starves
     the survivors: the lock-freedom refutation. *)
  Alcotest.(check bool) "deadlock-free" true r.Liveness.deadlock_free;
  Alcotest.(check bool) "not lock-free" false r.Liveness.lock_free;
  match r.Liveness.starvation_cycle with
  | None -> Alcotest.fail "expected a starvation cycle"
  | Some c ->
      (match c.Liveness.strategy with
      | Liveness.Suspend _ -> ()
      | s -> Alcotest.failf "starvation under %a" Liveness.pp_strategy s);
      Alcotest.(check bool) "cycle replays" true
        (Liveness.check_cycle ~config (entry "lock-mound") c)

let test_multiqueue_failover_lock_free () =
  (* Lock-based, yet this program certifies lock-free: the threads'
     sticky draws land on distinct queues, so a suspended lock holder
     never owns a survivor's queue and the try-lock failover always
     finds an unlocked one — the progress property the relaxed
     front-end buys over a single shared lock. *)
  let r = certify (entry "multiqueue") in
  Alcotest.(check int) "inconclusive" 0 r.Liveness.inconclusive;
  Alcotest.(check bool) "lock-free" true r.Liveness.lock_free;
  Alcotest.(check bool) "deadlock-free" true r.Liveness.deadlock_free

(* ---- the mutants ------------------------------------------------------- *)

let test_no_help_mutant_cycles () =
  let r = certify Mutant_live.no_help_program in
  Alcotest.(check bool) "not lock-free" false r.Liveness.lock_free;
  let c =
    match (r.Liveness.fair_cycle, r.Liveness.starvation_cycle) with
    | Some c, _ | None, Some c -> c
    | None, None -> Alcotest.fail "expected a non-progress cycle"
  in
  Alcotest.(check bool) "replayable schedule" true
    (Liveness.check_cycle ~config Mutant_live.no_help_program c)

let test_no_backoff_mutant_still_lock_free () =
  let r = certify Mutant_live.no_backoff_program in
  Alcotest.(check int) "inconclusive" 0 r.Liveness.inconclusive;
  Alcotest.(check bool) "lock-free" true r.Liveness.lock_free

let test_lock_inverted_mutant_deadlocks () =
  let r = certify Mutant_live.lock_inverted_program in
  Alcotest.(check bool) "not deadlock-free" false r.Liveness.deadlock_free;
  match r.Liveness.fair_cycle with
  | None -> Alcotest.fail "expected a fair deadlock cycle"
  | Some c ->
      Alcotest.(check bool) "pure spin (no writes in pump)" false
        c.Liveness.pump_writes;
      Alcotest.(check bool) "replayable schedule" true
        (Liveness.check_cycle ~config Mutant_live.lock_inverted_program c)

(* ---- the helping lint against the mutant source ------------------------ *)

let test_lint_flags_no_help_mutant () =
  (* The mutant source is a declared dep of this test; skip silently if
     a future build layout stops copying it into the sandbox. *)
  let src = "mutant_live.ml" in
  if Sys.file_exists src then begin
    let fs = Lint_rules.scan_file src in
    let rules = List.map (fun f -> f.Lint_rules.rule) fs in
    Alcotest.(check bool) "dirty-spin flagged" true
      (List.mem "dirty-spin" rules);
    Alcotest.(check bool) "retry-no-backoff flagged" true
      (List.mem "retry-no-backoff" rules)
  end

let () =
  Alcotest.run "progress"
    [
      ( "clean",
        [
          Alcotest.test_case "lf-mound is lock-free" `Quick
            test_lf_mound_lock_free;
          Alcotest.test_case "mcas is lock-free" `Quick test_mcas_lock_free;
          Alcotest.test_case "lock-mound starves but does not deadlock"
            `Quick test_lock_mound_starves;
          Alcotest.test_case "multiqueue failover certifies lock-free"
            `Quick test_multiqueue_failover_lock_free;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "no-help mutant yields a replayable cycle"
            `Quick test_no_help_mutant_cycles;
          Alcotest.test_case "no-backoff mutant is still lock-free" `Quick
            test_no_backoff_mutant_still_lock_free;
          Alcotest.test_case "inverted lock order deadlocks" `Quick
            test_lock_inverted_mutant_deadlocks;
          Alcotest.test_case "lint flags the no-help mutant" `Quick
            test_lint_flags_no_help_mutant;
        ] );
    ]
