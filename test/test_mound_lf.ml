(* Tests for the lock-free mound (single-threaded semantics; concurrency
   is covered in test_concurrent and test_sim_concurrent). *)

module L = Mound.Lf_int

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_sut () =
  let q = L.create () in
  {
    Model.sut_insert = L.insert q;
    sut_extract_min = (fun () -> L.extract_min q);
    sut_peek_min = (fun () -> L.peek_min q);
    sut_extract_many = (fun () -> L.extract_many q);
    sut_extract_approx = (fun () -> L.extract_approx q);
    sut_check = (fun () -> L.check q);
    sut_size = (fun () -> L.size q);
  }

let prop_model =
  QCheck.Test.make ~name:"matches sorted-multiset model" ~count:120
    Model.ops_arbitrary
    (fun script -> Model.agrees_with_model make_sut script)

let heapsort () =
  let rng = Prng.create 32L in
  let input = Array.init 20_000 (fun _ -> Prng.int rng 1_000_000) in
  let q = L.create () in
  Array.iter (L.insert q) input;
  check "invariant" true (L.check q);
  check_int "size" 20_000 (L.size q);
  let rec drain acc =
    match L.extract_min q with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  check "sorted" true (drain [] = List.sort compare (Array.to_list input))

let empty_behaviour () =
  let q = L.create () in
  check "extract" true (L.extract_min q = None);
  check "peek" true (L.peek_min q = None);
  check "many" true (L.extract_many q = []);
  check "approx" true (L.extract_approx q = None);
  check "is_empty" true (L.is_empty q)

(* The seq counter increments on every update — observable through
   repeated insert/extract at the root. *)
let duplicates_and_root_list () =
  let q = L.create () in
  for _ = 1 to 64 do
    L.insert q 1
  done;
  (* all equal keys pile up; extract_many must fetch a nonempty sorted
     batch whose head is 1 *)
  let batch = L.extract_many q in
  check "nonempty" true (batch <> []);
  check "all ones" true (List.for_all (( = ) 1) batch);
  check "conservation" true (List.length batch + L.size q = 64)


let insert_many_roundtrip () =
  let q = L.create () in
  let rng = Prng.create 14L in
  for _ = 1 to 2000 do
    L.insert q (Prng.int rng 100_000)
  done;
  (* extract_many / insert_many round trips conserve the multiset *)
  for _ = 1 to 50 do
    let b = L.extract_many q in
    L.insert_many q b
  done;
  check "invariant" true (L.check q);
  check_int "size conserved" 2000 (L.size q);
  let rec drain acc =
    match L.extract_min q with None -> acc | Some v -> drain (v :: acc)
  in
  let out = drain [] in
  check "still a priority queue" true
    (List.rev out = List.sort compare out)

let insert_many_concurrent_sim () =
  let module LS = Mound.Lf.Make (Sim.Runtime) (Mound.Int_ord) in
  List.iter
    (fun seed ->
      let q = LS.create () in
      let per = 40 in
      let body tid =
        for i = 0 to per - 1 do
          let base = ((tid * per) + i) * 4 in
          LS.insert_many q [ base; base + 1; base + 2 ]
        done
      in
      ignore (Sim.Sched.run ~seed (Array.make 4 body));
      check "invariant" true (LS.check q);
      check_int "all elements" (4 * per * 3) (LS.size q))
    [ 11L; 12L; 13L ]

let interleaved_ops_invariant () =
  let q = L.create () in
  let rng = Prng.create 33L in
  for _ = 1 to 30_000 do
    match Prng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 -> L.insert q (Prng.int rng 100_000)
    | 5 | 6 | 7 -> ignore (L.extract_min q)
    | 8 -> ignore (L.extract_many q)
    | _ -> ignore (L.extract_approx q)
  done;
  check "invariant" true (L.check q)

(* After any quiescent point no node should remain dirty: every operation
   cleans up after itself. *)
let no_dirty_after_quiesce () =
  let module Lf = Mound.Lf.Make (Runtime.Real) (Mound.Int_ord) in
  let q = Lf.create () in
  let rng = Prng.create 34L in
  for _ = 1 to 5_000 do
    if Prng.int rng 2 = 0 then Lf.insert q (Prng.int rng 1000)
    else ignore (Lf.extract_min q)
  done;
  let dirty =
    Lf.fold_nodes q (fun acc _ _ -> acc) 0 |> fun _ ->
    (* fold_nodes hides the dirty bit; use check, which requires the mound
       property on all non-dirty parents, plus peek which cleans the root *)
    ignore (Lf.peek_min q);
    Lf.check q
  in
  check "clean and consistent" true dirty

let generic_element_type () =
  let module Ord = struct
    type t = float * string

    let compare = compare
  end in
  let module FM = Mound.Lf.Make (Runtime.Real) (Ord) in
  let q = FM.create () in
  FM.insert q (3.14, "pi");
  FM.insert q (2.71, "e");
  FM.insert q (1.41, "sqrt2");
  check "generic min" true (FM.extract_min q = Some (1.41, "sqrt2"));
  check "generic order" true (FM.extract_min q = Some (2.71, "e"))

let grows_under_increasing_inserts () =
  let q = L.create () in
  for v = 1 to 2_000 do
    L.insert q v
  done;
  check "depth grew" true (L.depth q > 5);
  check "invariant" true (L.check q)

let () =
  Alcotest.run "mound_lf"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_model;
          Alcotest.test_case "heapsort 20k" `Quick heapsort;
          Alcotest.test_case "empty behaviour" `Quick empty_behaviour;
          Alcotest.test_case "duplicates via root list" `Quick
            duplicates_and_root_list;
          Alcotest.test_case "insert_many roundtrip" `Quick
            insert_many_roundtrip;
          Alcotest.test_case "insert_many concurrent (sim)" `Quick
            insert_many_concurrent_sim;
        ] );
      ( "structure",
        [
          Alcotest.test_case "interleaved ops invariant" `Quick
            interleaved_ops_invariant;
          Alcotest.test_case "no dirty after quiesce" `Quick
            no_dirty_after_quiesce;
          Alcotest.test_case "generic element type" `Quick
            generic_element_type;
          Alcotest.test_case "grows under increasing inserts" `Quick
            grows_under_increasing_inserts;
        ] );
    ]
