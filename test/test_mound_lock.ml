(* Tests for the fine-grained locking mound (single-threaded semantics;
   concurrency is covered in test_concurrent and test_sim_concurrent). *)

module K = Mound.Lock_int

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_sut () =
  let q = K.create () in
  {
    Model.sut_insert = K.insert q;
    sut_extract_min = (fun () -> K.extract_min q);
    sut_peek_min = (fun () -> K.peek_min q);
    sut_extract_many = (fun () -> K.extract_many q);
    sut_extract_approx = (fun () -> K.extract_approx q);
    sut_check = (fun () -> K.check q);
    sut_size = (fun () -> K.size q);
  }

let prop_model =
  QCheck.Test.make ~name:"matches sorted-multiset model" ~count:120
    Model.ops_arbitrary
    (fun script -> Model.agrees_with_model make_sut script)

let heapsort () =
  let rng = Prng.create 41L in
  let input = Array.init 20_000 (fun _ -> Prng.int rng 1_000_000) in
  let q = K.create () in
  Array.iter (K.insert q) input;
  check "invariant (also: all unlocked)" true (K.check q);
  let rec drain acc =
    match K.extract_min q with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  check "sorted" true (drain [] = List.sort compare (Array.to_list input))

let empty_behaviour () =
  let q = K.create () in
  check "extract" true (K.extract_min q = None);
  check "peek" true (K.peek_min q = None);
  check "many" true (K.extract_many q = []);
  check "is_empty" true (K.is_empty q);
  (* the empty extract must release the root lock: a second call works *)
  check "extract again" true (K.extract_min q = None)

let locks_released_after_each_op () =
  (* K.check verifies no node is locked; interleave every operation *)
  let q = K.create () in
  let rng = Prng.create 42L in
  for i = 1 to 5_000 do
    (match Prng.int rng 5 with
    | 0 | 1 -> K.insert q (Prng.int rng 10_000)
    | 2 -> ignore (K.extract_min q)
    | 3 -> ignore (K.extract_many q)
    | _ -> ignore (K.extract_approx q));
    if i mod 500 = 0 then check "all unlocked" true (K.check q)
  done

let extract_many_then_refill () =
  let q = K.create () in
  for v = 1 to 100 do
    K.insert q v
  done;
  let b1 = K.extract_many q in
  check "first batch has global min" true (List.hd b1 = 1);
  for v = 101 to 200 do
    K.insert q v
  done;
  check "invariant after refill" true (K.check q);
  check_int "conservation" 200 (K.size q + List.length b1)


let insert_many_roundtrip () =
  let q = K.create () in
  let rng = Prng.create 15L in
  for _ = 1 to 2000 do
    K.insert q (Prng.int rng 100_000)
  done;
  for _ = 1 to 50 do
    let b = K.extract_many q in
    K.insert_many q b
  done;
  check "invariant (and all unlocked)" true (K.check q);
  check_int "size conserved" 2000 (K.size q)

let mirrors_lf_results () =
  (* both concurrent variants drain identically from the same inputs *)
  let module L = Mound.Lf_int in
  let rng = Prng.create 43L in
  let input = Array.init 5_000 (fun _ -> Prng.int rng 50_000) in
  let lf = L.create () and lk = K.create () in
  Array.iter (fun v -> L.insert lf v; K.insert lk v) input;
  let rec drain f acc =
    match f () with None -> List.rev acc | Some v -> drain f (v :: acc)
  in
  check "identical drains" true
    (drain (fun () -> L.extract_min lf) [] = drain (fun () -> K.extract_min lk) [])

let () =
  Alcotest.run "mound_lock"
    [
      ( "model",
        [
          QCheck_alcotest.to_alcotest prop_model;
          Alcotest.test_case "heapsort 20k" `Quick heapsort;
          Alcotest.test_case "empty behaviour" `Quick empty_behaviour;
        ] );
      ( "locking discipline",
        [
          Alcotest.test_case "locks released after ops" `Quick
            locks_released_after_each_op;
          Alcotest.test_case "extract_many then refill" `Quick
            extract_many_then_refill;
          Alcotest.test_case "insert_many roundtrip" `Quick
            insert_many_roundtrip;
          Alcotest.test_case "mirrors lock-free results" `Quick
            mirrors_lf_results;
        ] );
    ]
