(* Tests for the ablation experiments and the k-CSS insert variant. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- the k-CSS insert variant must behave exactly like insert --- *)

module L = Mound.Lf_int

let kcss_sequential_equivalence () =
  let q = L.create () in
  let rng = Prng.create 81L in
  let input = Array.init 5_000 (fun _ -> Prng.int rng 1_000_000) in
  Array.iteri
    (fun i v -> if i land 1 = 0 then L.insert q v else L.insert_kcss q v)
    input;
  check "invariant" true (L.check q);
  check_int "size" 5_000 (L.size q);
  let rec drain acc =
    match L.extract_min q with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  check "sorted" true (drain [] = List.sort compare (Array.to_list input))

let kcss_concurrent_conservation () =
  let module LS = Mound.Lf.Make (Sim.Runtime) (Mound.Int_ord) in
  List.iter
    (fun seed ->
      let q = LS.create () in
      let per = 80 in
      let got = Array.make 4 0 in
      let body tid =
        for i = 0 to per - 1 do
          LS.insert_kcss q ((tid * per) + i);
          if i land 1 = 0 then
            match LS.extract_min q with
            | Some _ -> got.(tid) <- got.(tid) + 1
            | None -> ()
        done
      in
      ignore (Sim.Sched.run ~seed (Array.make 4 body));
      check "invariant" true (LS.check q);
      check_int "conservation" (4 * per)
        (Array.fold_left ( + ) 0 got + LS.size q))
    [ 3L; 4L; 5L; 6L ]

let kcss_costs_more () =
  let points = Harness.Ablation.kcss_vs_dcss ~ops_per_thread:256 () in
  match points with
  | [ dcss; kcss ] ->
      check "kcss issues more CAS" true (kcss.cas > 2 * dcss.cas);
      check "kcss slower" true (kcss.throughput < dcss.throughput)
  | _ -> Alcotest.fail "expected two variants"

(* --- threshold sweep --- *)

let threshold_insensitive () =
  (* the paper: "changing this value did not affect performance" — allow a
     2x band across thresholds 2..32 *)
  let points =
    Harness.Ablation.threshold_sweep ~ops_per_thread:512
      ~thresholds:[ 2; 8; 32 ] ()
  in
  let tps = List.map (fun (p : Harness.Ablation.threshold_point) -> p.insert_throughput) points in
  let mn = List.fold_left min infinity tps
  and mx = List.fold_left max 0. tps in
  check "within 2x band" true (mx < 2. *. mn);
  (* larger thresholds may probe longer before growing: depth must be
     non-increasing in threshold *)
  let depths = List.map (fun (p : Harness.Ablation.threshold_point) -> p.final_depth) points in
  check "depth non-increasing" true (List.sort (fun a b -> compare b a) depths = depths)

(* --- extract_approx quality --- *)

let approx_quality_sane () =
  let stats =
    Harness.Ablation.approx_quality ~n:2048 ~samples:512 ~max_levels:[ 0; 2 ] ()
  in
  match stats with
  | [ level0; level2 ] ->
      check "max_level 0 is exact" true (level0.exact_fraction = 1.0);
      check "max_level 0 rank 0" true (level0.max_rank = 0);
      check "level 2 mostly near-minimal" true (level2.mean_rank < 50.);
      check "level 2 bounded by shallow subtree count" true
        (level2.exact_fraction > 0.05)
  | _ -> Alcotest.fail "expected two levels"

(* --- synchronization cost accounting --- *)

let primitive_costs_shape () =
  let rows = Harness.Ablation.primitive_costs () in
  let cas = List.assoc "cas" rows
  and dcas = List.assoc "dcas" rows
  and dcss = List.assoc "dcss" rows in
  check_int "plain cas is one CAS" 1 (snd cas);
  (* the paper's point: a software DCAS costs several hardware CASes *)
  check "dcas >= 5 CAS" true (snd dcas >= 5);
  check "dcss = dcas footprint (implemented via dcas)" true (dcss = dcas)

let sync_costs_shape () =
  let rows = Harness.Ablation.sync_costs ~n:1024 ~ops:128 () in
  let find s o =
    List.find
      (fun (r : Harness.Ablation.cost_row) ->
        r.structure = s && r.operation = o)
      rows
  in
  let lf_ins = find "Mound (LF)" "insert"
  and lf_ext = find "Mound (LF)" "extractmin"
  and lk_ext = find "Mound (Lock)" "extractmin"
  and hunt_ins = find "Hunt Heap (Lock)" "insert" in
  (* §IV: lock-free moundify costs ~5J CAS vs locking 2J+1 *)
  check "lf extract needs ~2-3x the CAS of locking" true
    (lf_ext.cas_per_op > 2. *. lk_ext.cas_per_op);
  (* insert is cheap: one DCSS (~7 CAS) regardless of size *)
  check "lf insert ~one dcss" true
    (lf_ins.cas_per_op >= 5. && lf_ins.cas_per_op <= 12.);
  (* the Hunt heap's O(log n) trickle-up locks on the path *)
  check "hunt insert locks a path" true (hunt_ins.cas_per_op > 3.)

let () =
  Alcotest.run "ablation"
    [
      ( "kcss insert",
        [
          Alcotest.test_case "sequential equivalence" `Quick
            kcss_sequential_equivalence;
          Alcotest.test_case "concurrent conservation" `Quick
            kcss_concurrent_conservation;
          Alcotest.test_case "costs more than dcss" `Quick kcss_costs_more;
        ] );
      ( "threshold",
        [ Alcotest.test_case "insensitive" `Quick threshold_insensitive ] );
      ( "approx quality",
        [ Alcotest.test_case "sane" `Quick approx_quality_sane ] );
      ( "sync costs",
        [
          Alcotest.test_case "primitives" `Quick primitive_costs_shape;
          Alcotest.test_case "structures" `Quick sync_costs_shape;
        ] );
    ]
