(* The chaos tier: crash-stop scheduling, fault injection, and the
   progress-guarantee sweeps.

   The sweeps run a fast crash-point subset by default so `dune runtest`
   stays quick; set CHAOS_FULL=1 to crash the victim at every one of its
   shared accesses. Everything here is deterministic in its seeds — a
   failure replays exactly. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let stride = match Sys.getenv_opt "CHAOS_FULL" with Some _ -> 1 | None -> 7

module SR = Sim.Runtime

(* ---------------- scheduler crash-stop primitives ---------------- *)

(* A declarative crash plan kills the thread at exactly its k-th shared
   access: the access is charged but not performed, and the thread makes
   no further progress. *)
let crash_plan () =
  let a = SR.Atomic.make 0 in
  let done_count = ref 0 in
  let bodies =
    [|
      (fun _ ->
        for i = 1 to 10 do
          SR.Atomic.set a i;
          incr done_count
        done);
      (fun _ -> for _ = 1 to 10 do ignore (SR.Atomic.get a) done);
    |]
  in
  let r = Sim.Sched.run ~seed:3L ~crashes:[ (0, 4) ] bodies in
  check "killed" true (r.killed = [ 0 ]);
  check "no wedge" true (r.wedged = []);
  check_int "victim stopped at its 4th access" 4 r.accesses.(0);
  check_int "survivor unaffected" 10 r.accesses.(1);
  (* the 4th set was charged but not performed: the last landed value is
     the 3rd, and the post-access increment never ran *)
  check_int "fatal access not performed" 3 (SR.Atomic.get a);
  check_int "iterations completed before death" 3 !done_count

(* Remote kill stops a runaway peer; the run terminates. *)
let remote_kill () =
  let a = SR.Atomic.make 0 in
  let bodies =
    [|
      (fun _ ->
        while true do
          ignore (SR.Atomic.fetch_and_add a 1)
        done);
      (fun _ ->
        for _ = 1 to 20 do
          ignore (SR.Atomic.get a)
        done;
        Sim.Sched.kill 0);
    |]
  in
  let r = Sim.Sched.run ~seed:4L bodies in
  check "runaway thread killed" true (r.killed = [ 0 ])

(* Self-kill raises through the fiber: code after it never runs. *)
let self_kill () =
  let after = ref false in
  let a = SR.Atomic.make 0 in
  let bodies =
    [|
      (fun _ ->
        ignore (SR.Atomic.get a);
        Sim.Sched.kill 0;
        after := true);
      (fun _ -> ignore (SR.Atomic.get a));
    |]
  in
  let r = Sim.Sched.run ~seed:5L bodies in
  check "self-killed" true (r.killed = [ 0 ]);
  check "continuation not resumed" false !after

(* The virtual-time watchdog converts an endless spin into a reported
   wedge instead of a hang. *)
let watchdog_wedge () =
  let flag = SR.Atomic.make false in
  let bodies =
    [|
      (fun _ ->
        while not (SR.Atomic.get flag) do
          SR.cpu_relax ()
        done);
      (fun _ -> for _ = 1 to 5 do ignore (SR.Atomic.get flag) done);
    |]
  in
  let r = Sim.Sched.run ~seed:6L ~watchdog:5_000 bodies in
  check "spinner wedged" true (r.wedged = [ 0 ]);
  check "finisher not wedged" true (not (List.mem 1 r.wedged));
  check "wedged is not killed" true (r.killed = [])

(* An exception escaping one body aborts the run, unwinds every other
   fiber, and leaves the scheduler reusable. *)
let exception_cleanup () =
  let a = SR.Atomic.make 0 in
  let bodies =
    [|
      (fun _ ->
        ignore (SR.Atomic.get a);
        failwith "boom");
      (fun _ ->
        while true do
          ignore (SR.Atomic.fetch_and_add a 1)
        done);
    |]
  in
  (match Sim.Sched.run ~seed:7L bodies with
  | _ -> Alcotest.fail "expected the body's exception to propagate"
  | exception Failure m -> Alcotest.(check string) "message" "boom" m);
  (* no Concurrent_simulation, no leaked fibers: a fresh run works *)
  let r = Sim.Sched.run ~seed:7L [| (fun _ -> ignore (SR.Atomic.get a)) |] in
  check_int "scheduler reusable after abort" 1 r.yields

(* ---------------- fault injection ---------------- *)

module C = Chaos.Make (Sim.Runtime)

let chaos_quiet_counts () =
  C.configure Chaos.quiet;
  let a = C.Atomic.make 0 in
  for _ = 1 to 10 do
    ignore (C.Atomic.get a)
  done;
  check "quiet CAS succeeds" true (C.Atomic.compare_and_set a 0 1);
  check_int "gets counted" 10 C.counters.gets;
  check_int "cas counted" 1 C.counters.cas;
  check_int "quiet injects nothing" 0
    (C.counters.spurious_failures + C.counters.delays)

let chaos_spurious_failures () =
  C.configure
    { (Chaos.default ~seed:5L) with cas_fail_permil = 500; delay_permil = 0 };
  let a = C.Atomic.make 0 in
  (* an identity CAS can only fail by injection; drive until one does *)
  let tries = ref 0 in
  while C.counters.spurious_failures = 0 && !tries < 1_000 do
    incr tries;
    ignore (C.Atomic.compare_and_set a 0 0)
  done;
  check "a spurious failure was injected" true
    (C.counters.spurious_failures > 0);
  (* memory untouched by failed injections; a retried CAS still lands *)
  let rec settle n =
    if C.Atomic.compare_and_set a 0 1 then n else settle (n + 1)
  in
  let retries = settle 0 in
  check_int "value landed despite injection" 1 (C.Atomic.get a);
  check "weak-CAS semantics: failures are spurious, not lost updates" true
    (retries >= 0)

let chaos_stream_deterministic () =
  let record () =
    C.configure { (Chaos.default ~seed:9L) with cas_fail_permil = 300 };
    let a = C.Atomic.make 0 in
    List.init 40 (fun _ -> C.Atomic.compare_and_set a 0 0)
  in
  check "same plan, same fault stream" true (record () = record ())

(* ---------------- tree expansion under injected faults ---------------- *)

module CT = Mound.Tree.Make (C)

(* The replacement row is allocated once, before the publish loop: a
   spurious weak-CAS failure retries the publish with the same row, so a
   single-threaded expansion allocates exactly one row per level even
   when injection fails a large fraction of its CAS attempts. *)
let chaos_expand_single_allocation () =
  C.configure
    { (Chaos.default ~seed:21L) with cas_fail_permil = 400; delay_permil = 0 };
  let t = CT.create (fun () -> ref 0) in
  let target = 12 in
  for d = 1 to target - 1 do
    (* the depth CAS is weak — a failed advance is legal; re-drive *)
    while CT.depth t < d + 1 do
      CT.expand t d
    done
  done;
  check_int "depth reached" target (CT.depth t);
  (* levels 0..2 are pre-published by [create]; 3..target-1 by expand *)
  check_int "one allocation per level despite injected failures"
    (target - 3) (CT.row_allocations t);
  for i = 1 to (1 lsl target) - 1 do
    ignore (CT.get t i)
  done

(* Racing expanders: losers may each allocate a row they fail to
   publish, but at most one allocation wins per level — the depth is
   exact, every published row is usable, and the total allocation count
   is bounded by racers x levels rather than retries x levels. *)
let chaos_expand_racing_allocations () =
  C.configure
    { (Chaos.default ~seed:22L) with cas_fail_permil = 200; delay_permil = 0 };
  let t = CT.create (fun () -> ref 0) in
  let threads = 4 and target = 10 in
  let bodies =
    Array.init threads (fun _ _ ->
        for d = 1 to target - 1 do
          while CT.depth t < d + 1 do
            CT.expand t d
          done
        done)
  in
  ignore (Sim.Sched.run ~seed:13L bodies);
  check_int "depth exact after race" target (CT.depth t);
  let expanded = target - 3 in
  check "every expanded level allocated at least once" true
    (CT.row_allocations t >= expanded);
  check "allocations bounded by racers, not by retries" true
    (CT.row_allocations t <= threads * expanded);
  for i = 1 to (1 lsl target) - 1 do
    ignore (CT.get t i)
  done

(* ---------------- mcas helping under crash-stop stalls ---------------- *)

module M = Mcas.Make (Harness.Chaos_exp.CR.Atomic)

(* Crash a thread inside [casn] at every one of its shared accesses in
   turn. Survivors keep reading and identity-rewriting the same
   locations: lock-freedom says they complete by helping the dead
   thread's descriptor, and the operation stays all-or-nothing. *)
let mcas_helping_under_stalls () =
  Harness.Chaos_exp.CR.configure Chaos.quiet;
  let x0 = ref 0 and x1 = ref 1 and y0 = ref 10 and y1 = ref 11 in
  let z0 = ref 20 and z1 = ref 21 in
  let run crash watchdog =
    let a = M.make x0 and b = M.make y0 and c = M.make z0 in
    let bodies =
      [|
        (fun _ -> ignore (M.casn [| (a, x0, x1); (b, y0, y1); (c, z0, z1) |]));
        (fun _ ->
          for _ = 1 to 8 do
            let va = M.get a and vb = M.get b in
            ignore (M.casn [| (a, va, va); (b, vb, vb) |])
          done);
        (fun _ ->
          for _ = 1 to 8 do
            let vb = M.get b and vc = M.get c in
            ignore (M.casn [| (b, vb, vb); (c, vc, vc) |])
          done);
      |]
    in
    let crashes = if crash = 0 then [] else [ (0, crash) ] in
    let r = Sim.Sched.run ~seed:21L ~crashes ?watchdog bodies in
    (r, (a, b, c))
  in
  let baseline, _ = run 0 None in
  let watchdog = Some ((4 * baseline.span) + 20_000) in
  let applied = ref 0 and untouched = ref 0 in
  for k = 1 to baseline.accesses.(0) do
    let r, (a, b, c) = run k watchdog in
    check
      (Printf.sprintf "crash@%d: survivors complete via helping" k)
      true (r.wedged = []);
    check (Printf.sprintf "crash@%d: victim dead" k) true (r.killed = [ 0 ]);
    (* ambient reads help any still-pending descriptor to a decision *)
    let va = M.get a and vb = M.get b and vc = M.get c in
    let all_new = va == x1 && vb == y1 && vc == z1 in
    let all_old = va == x0 && vb == y0 && vc == z0 in
    check (Printf.sprintf "crash@%d: casn is all-or-nothing" k) true
      (all_new || all_old);
    if all_new then incr applied else incr untouched
  done;
  (* the sweep must witness both resolutions: early crashes leave the
     casn unstarted, late ones leave survivors to finish it *)
  check "some crash points leave the casn unapplied" true (!untouched > 0);
  check "some crash points see helpers complete it" true (!applied > 0)

(* ---------------- the progress-guarantee sweeps ---------------- *)

(* Lock-free mound: no crash point may cost the survivors progress,
   linearizability, or elements. Run twice: the sweep itself must be
   deterministic in (plan, seed). *)
let lf_sweep () =
  let s = Harness.Chaos_exp.sweep_lf ~stride ~seed:11L () in
  let open Harness.Chaos_exp in
  check_int "every crash point completed" (List.length s.runs) (completed s);
  check_int "no wedges" 0 (wedged s);
  check "every surviving history linearizable" true (all_linearizable s);
  check "every drain balanced" true (all_conserved s);
  check "crash space covered" true (s.victim_accesses > 0);
  check "helping observed across the sweep" true (s.ops.helps > 0);
  check "faults injected across the sweep" true
    (s.faults.spurious_failures > 0);
  let s' = Harness.Chaos_exp.sweep_lf ~stride ~seed:11L () in
  Alcotest.(check string)
    "sweep deterministic in (plan, seed)" (fingerprint s) (fingerprint s')

(* Locking mound: some crash point must wedge the survivors, the
   watchdog must report it (this test terminating is itself the no-hang
   assertion), and the runs that do complete must still be correct. *)
let lock_sweep () =
  let s =
    Harness.Chaos_exp.sweep_lock ~stride:(max 1 (stride / 2)) ~seed:11L ()
  in
  let open Harness.Chaos_exp in
  check "a crashed lock holder wedges survivors" true (wedged s >= 1);
  check "wedges are reported, not hidden" true
    (List.exists
       (fun r -> match r.outcome with Wedged (_ :: _) -> true | _ -> false)
       s.runs);
  check "completed runs stay linearizable" true (all_linearizable s);
  check "completed runs conserve elements" true (all_conserved s);
  check "lock spinning observed" true (s.ops.lock_spins > 0);
  let s' =
    Harness.Chaos_exp.sweep_lock ~stride:(max 1 (stride / 2)) ~seed:11L ()
  in
  Alcotest.(check string)
    "sweep deterministic in (plan, seed)" (fingerprint s) (fingerprint s')

let () =
  Alcotest.run "chaos"
    [
      ( "sched-crash",
        [
          Alcotest.test_case "declarative crash plan" `Quick crash_plan;
          Alcotest.test_case "remote kill" `Quick remote_kill;
          Alcotest.test_case "self kill" `Quick self_kill;
          Alcotest.test_case "watchdog wedge" `Quick watchdog_wedge;
          Alcotest.test_case "exception cleanup" `Quick exception_cleanup;
        ] );
      ( "injection",
        [
          Alcotest.test_case "quiet plan only counts" `Quick
            chaos_quiet_counts;
          Alcotest.test_case "spurious CAS failures" `Quick
            chaos_spurious_failures;
          Alcotest.test_case "fault stream deterministic" `Quick
            chaos_stream_deterministic;
          Alcotest.test_case "expand: one row allocation per level" `Quick
            chaos_expand_single_allocation;
          Alcotest.test_case "expand: racing allocations bounded" `Quick
            chaos_expand_racing_allocations;
        ] );
      ( "mcas-stall",
        [
          Alcotest.test_case "helping under crash-stop stalls" `Quick
            mcas_helping_under_stalls;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "lf: progress + linearizable + conserved"
            `Quick lf_sweep;
          Alcotest.test_case "lock: wedge detected, never hangs" `Quick
            lock_sweep;
        ] );
    ]
