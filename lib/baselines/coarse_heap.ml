(** Binary heap behind one global spinlock.

    The simplest possible concurrent priority queue: every operation
    serializes on a single lock. It is the ablation point for "how much
    does fine-grained synchronization actually buy" in the benches, and a
    convenient linearizable reference in concurrent tests.

    The backing array stores elements in the runtime's atomic cells even
    though the lock already orders all accesses: under the simulator this
    is what makes the heap's own memory traffic visible to the cost
    model, so the coarse heap is charged fairly against the fine-grained
    structures. Fixed capacity, like the other array-based baselines. *)

module Make (R : Runtime.S) (Ord : Mound.Intf.ORDERED) = struct
  module L = Spinlock.Make (R)

  type elt = Ord.t

  type t = {
    lock : L.t;
    data : elt option R.Atomic.t array;  (** 0-based heap order *)
    size : int R.Atomic.t;
    capacity : int;
  }

  let create ?(capacity = 1 lsl 17) () =
    {
      lock = L.create ();
      data = Array.init capacity (fun _ -> R.Atomic.make None);
      size = R.Atomic.make 0;
      capacity;
    }

  (* All helpers below run under the lock. *)

  let get_exn t i =
    match R.Atomic.get t.data.(i) with
    | Some v -> v
    | None -> invalid_arg "Coarse_heap: empty slot"

  let lt t i j = Ord.compare (get_exn t i) (get_exn t j) < 0

  let swap t i j =
    let vi = R.Atomic.get t.data.(i) in
    R.Atomic.set t.data.(i) (R.Atomic.get t.data.(j));
    R.Atomic.set t.data.(j) vi

  let rec sift_up t i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if lt t i p then begin
        swap t i p;
        sift_up t p
      end
    end

  let rec sift_down t n i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < n && lt t l !smallest then smallest := l;
    if r < n && lt t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t n !smallest
    end

  let insert t v =
    L.with_lock t.lock (fun () ->
        let n = R.Atomic.get t.size in
        if n >= t.capacity then failwith "Coarse_heap.insert: capacity exceeded";
        R.Atomic.set t.data.(n) (Some v);
        R.Atomic.set t.size (n + 1);
        sift_up t n)

  let extract_min t =
    L.with_lock t.lock (fun () ->
        let n = R.Atomic.get t.size in
        if n = 0 then None
        else begin
          let min = R.Atomic.get t.data.(0) in
          R.Atomic.set t.data.(0) (R.Atomic.get t.data.(n - 1));
          R.Atomic.set t.data.(n - 1) None;
          R.Atomic.set t.size (n - 1);
          if n > 1 then sift_down t (n - 1) 0;
          min
        end)

  let peek_min t = L.with_lock t.lock (fun () -> R.Atomic.get t.data.(0))

  let size t = L.with_lock t.lock (fun () -> R.Atomic.get t.size)

  let is_empty t = size t = 0

  let check t =
    L.with_lock t.lock (fun () ->
        let n = R.Atomic.get t.size in
        let ok = ref true in
        for i = 1 to n - 1 do
          if lt t i ((i - 1) / 2) then ok := false
        done;
        for i = n to t.capacity - 1 do
          if R.Atomic.get t.data.(i) <> None then ok := false
        done;
        !ok)
end
