(** Lock-free skiplist-based priority queue — the paper's skiplist (QC)
    baseline.

    Follows Lotan & Shavit's design as made non-blocking (Fraser; Herlihy
    & Shavit ch. 14–15): a lock-free skiplist ordered by key, where

    - [insert] links a node of random height with CASes, bottom level
      first (the bottom-level CAS is the insertion's linearization);
    - [extract_min] scans the bottom level and attempts to CAS each
      candidate's [deleted] flag false→true; the winner owns the element
      and then removes the node physically (mark next pointers top-down,
      then unlink). As the paper notes, the resulting priority queue is
      {e quiescently consistent} rather than linearizable — the scan may
      return an element that was not minimal for the entire duration of
      the call — and almost perfectly disjoint-access parallel, which is
      what makes it scale in Fig. 2 (b)/(f).

    Next pointers hold immutable [{succ; marked}] records; [marked] is the
    Harris-style deletion mark on the {e outgoing} pointer of the node
    being removed. Traversals help unlink marked nodes they pass. *)

module Make (R : Runtime.S) (Ord : Mound.Intf.ORDERED) = struct
  type elt = Ord.t

  let max_height = 20

  type contents = Head | Item of elt | Tail

  type node = {
    c : contents;
    deleted : bool R.Atomic.t;
    next : link R.Atomic.t array;  (** length = node height; [||] for tail *)
  }

  and link = { succ : node; marked : bool }

  type t = { head : node }

  let create () =
    let tail = { c = Tail; deleted = R.Atomic.make false; next = [||] } in
    let head =
      {
        c = Head;
        deleted = R.Atomic.make false;
        next =
          Array.init max_height (fun _ ->
              R.Atomic.make { succ = tail; marked = false });
      }
    in
    { head }

  (* Strictly-before relation used by searches: equal keys are "not
     before", so insertion lands before the first equal key and
     duplicates are supported. *)
  let node_lt n key =
    match n.c with
    | Head -> true
    | Tail -> false
    | Item x -> Ord.compare x key < 0

  let height t = Array.length t.next

  let random_height () =
    let rec flip h = if h >= max_height || R.rand_int 2 = 0 then h else flip (h + 1) in
    flip 1

  exception Retry

  (* Search for [key]: fills [preds]/[plinks]/[succs] per level such that
     preds.(l) < key <= succs.(l), with plinks.(l) the exact link record
     read from preds.(l) (needed as the CAS witness). Unlinks marked nodes
     encountered on the way; restarts from the head when a CAS witness
     goes stale. *)
  let find t key preds plinks succs =
    let rec from_head () =
      try
        let pred = ref t.head in
        for lvl = max_height - 1 downto 0 do
          let rec walk () =
            let plink = R.Atomic.get !pred.next.(lvl) in
            if plink.marked then raise Retry;
            let curr = plink.succ in
            match curr.c with
            | Tail ->
                preds.(lvl) <- !pred;
                plinks.(lvl) <- plink;
                succs.(lvl) <- curr
            | Head -> assert false
            | Item _ ->
                let clink = R.Atomic.get curr.next.(lvl) in
                if clink.marked then begin
                  (* Physically remove [curr] at this level. *)
                  if
                    R.Atomic.compare_and_set !pred.next.(lvl) plink
                      { succ = clink.succ; marked = false }
                  then walk ()
                  else raise Retry
                end
                else if node_lt curr key then begin
                  pred := curr;
                  walk ()
                end
                else begin
                  preds.(lvl) <- !pred;
                  plinks.(lvl) <- plink;
                  succs.(lvl) <- curr
                end
          in
          walk ()
        done
      with Retry -> from_head ()
    in
    from_head ()

  let insert t key =
    let h = random_height () in
    let preds = Array.make max_height t.head in
    let plinks =
      Array.make max_height { succ = t.head; marked = false }
    in
    let succs = Array.make max_height t.head in
    (* Link the bottom level; its CAS linearizes the insert. *)
    let rec bottom () =
      find t key preds plinks succs;
      let node =
        {
          c = Item key;
          deleted = R.Atomic.make false;
          next =
            Array.init h (fun lvl ->
                R.Atomic.make { succ = succs.(min lvl (max_height - 1)); marked = false });
        }
      in
      if
        R.Atomic.compare_and_set preds.(0).next.(0) plinks.(0)
          { succ = node; marked = false }
      then node
      else bottom ()
    in
    let node = bottom () in
    (* Link the upper levels, reusing the predecessors found for the
       bottom-level CAS; re-search only when a CAS witness is stale.
       Abandon linking if the node got deleted (marked) meanwhile. *)
    let rec link lvl ~fresh =
      if lvl < h then begin
        if not fresh then find t key preds plinks succs;
        let nl = R.Atomic.get node.next.(lvl) in
        if nl.marked then () (* node already removed; stop linking *)
        else if nl.succ != succs.(lvl)
                && not
                     (R.Atomic.compare_and_set node.next.(lvl) nl
                        { succ = succs.(lvl); marked = false })
        then link lvl ~fresh:false
        else if
          succs.(lvl) == node
          (* an equal-key re-search can land on the node itself once it is
             reachable; nothing to link then *)
          || R.Atomic.compare_and_set preds.(lvl).next.(lvl) plinks.(lvl)
               { succ = node; marked = false }
        then link (lvl + 1) ~fresh
        else link lvl ~fresh:false
      end
    in
    link 1 ~fresh:true

  (* Mark every level of [node] top-down; returns after the bottom level
     is marked (by us or a helper). Then a search unlinks it. *)
  let remove_physically t node =
    let h = height node in
    for lvl = h - 1 downto 1 do
      let rec mark () =
        let l = R.Atomic.get node.next.(lvl) in
        if not l.marked then
          if not (R.Atomic.compare_and_set node.next.(lvl) l { l with marked = true })
          then mark ()
      in
      mark ()
    done;
    let rec mark_bottom () =
      let l = R.Atomic.get node.next.(0) in
      if not l.marked then
        if not (R.Atomic.compare_and_set node.next.(0) l { l with marked = true })
        then mark_bottom ()
    in
    mark_bottom ();
    (* One search by the removed key unlinks the node at every level. *)
    match node.c with
    | Item key ->
        let preds = Array.make max_height t.head in
        let plinks = Array.make max_height { succ = t.head; marked = false } in
        let succs = Array.make max_height t.head in
        find t key preds plinks succs
    | Head | Tail -> ()

  (** Claim the first undeleted element of the bottom level. The claiming
      CAS on [deleted] is the extraction; physical removal follows and can
      be helped by any later traversal. *)
  let extract_min t =
    let rec scan (curr : node) =
      match curr.c with
      | Tail -> None
      | Head | Item _ ->
          let clink = R.Atomic.get curr.next.(0) in
          let claim key =
            if
              (not (R.Atomic.get curr.deleted))
              && R.Atomic.compare_and_set curr.deleted false true
            then begin
              remove_physically t curr;
              Some key
            end
            else scan clink.succ
          in
          (match curr.c with
          | Head -> scan clink.succ
          | Item key -> claim key
          | Tail -> None)
    in
    scan (R.Atomic.get t.head.next.(0)).succ

  let peek_min t =
    let rec scan (curr : node) =
      match curr.c with
      | Tail -> None
      | Head -> scan (R.Atomic.get curr.next.(0)).succ
      | Item key ->
          if R.Atomic.get curr.deleted then
            scan (R.Atomic.get curr.next.(0)).succ
          else Some key
    in
    scan t.head

  let is_empty t = peek_min t = None

  (* --- quiescent introspection (tests) --- *)

  (** Undeleted elements on the bottom level, in order. *)
  let to_list t =
    let rec go acc (curr : node) =
      match curr.c with
      | Tail -> List.rev acc
      | Head -> go acc (R.Atomic.get curr.next.(0)).succ
      | Item key ->
          let acc = if R.Atomic.get curr.deleted then acc else key :: acc in
          go acc (R.Atomic.get curr.next.(0)).succ
    in
    go [] t.head

  let size t = List.length (to_list t)

  (** Bottom level sorted and, per level, every unmarked link's target
      list is a (sorted) sublist — the basic skiplist shape invariant. *)
  let check t =
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> Ord.compare a b <= 0 && sorted rest
    in
    sorted (to_list t)
end
