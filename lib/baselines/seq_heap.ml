(** Sequential binary min-heap on a growable array.

    The textbook structure the mound is measured against asymptotically:
    O(log N) insert (trickle up) and O(log N) extract-min (sift down).
    Used as the model oracle in tests and as the storage engine of
    {!Coarse_heap}.

    Slots past [size] may retain references to extracted elements until
    overwritten; irrelevant for the small value types used here. *)

module Make (Ord : Mound.Intf.ORDERED) = struct
  type elt = Ord.t

  type t = { mutable data : elt array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let is_empty t = t.size = 0

  let size t = t.size

  (* [filler] seeds the new backing array so no dummy element is needed. *)
  let grow t filler =
    let cap = max 4 (2 * Array.length t.data) in
    let data = Array.make cap filler in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if Ord.compare t.data.(i) t.data.(p) < 0 then begin
        swap t i p;
        sift_up t p
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && Ord.compare t.data.(l) t.data.(!smallest) < 0 then
      smallest := l;
    if r < t.size && Ord.compare t.data.(r) t.data.(!smallest) < 0 then
      smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let insert t v =
    if t.size = Array.length t.data then grow t v;
    t.data.(t.size) <- v;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let peek_min t = if t.size = 0 then None else Some t.data.(0)

  let extract_min t =
    if t.size = 0 then None
    else begin
      let min = t.data.(0) in
      t.size <- t.size - 1;
      t.data.(0) <- t.data.(t.size);
      sift_down t 0;
      Some min
    end

  (** Heap-order invariant, for tests. *)
  let check t =
    let ok = ref true in
    for i = 1 to t.size - 1 do
      if Ord.compare t.data.((i - 1) / 2) t.data.(i) > 0 then ok := false
    done;
    !ok

  let of_array a =
    let t = create () in
    Array.iter (insert t) a;
    t

  let to_sorted_list t =
    let rec go acc =
      match extract_min t with None -> List.rev acc | Some v -> go (v :: acc)
    in
    go []
end
