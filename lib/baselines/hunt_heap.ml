(** The Hunt concurrent binary heap (Hunt, Michael, Parthasarathy & Scott,
    "An Efficient Algorithm for Concurrent Priority Queue Heaps", IPL
    1996) — the fine-grained-locking baseline of the paper's Fig. 2.

    Per-node locks plus one heap lock protecting the size counter. The
    algorithm's two signature ideas:

    - {e bit-reversed insertion points}: consecutive insertions land in
      different subtrees of the bottom level, so their trickle-up paths
      overlap only near the root;
    - {e tagged items}: an inserted item carries its inserter's id while
      it trickles up, so insertion holds at most one parent/child lock
      pair at a time. A concurrent delete-min's sift-down may move a
      tagged item; the inserter detects the foreign tag and chases its
      item upward.

    Unlike the mound, every insert performs O(log N) lock acquisitions and
    swaps on the path to the root — the contention the paper's insert
    benchmark exposes.

    Each node is one atomic holding an immutable [{locked; tag; prio}]
    record; the lock bit is acquired by CAS and the holder publishes fresh
    records, as in the locking mound. The backing array has fixed
    capacity, as in the original. *)

module Make (R : Runtime.S) (Ord : Mound.Intf.ORDERED) = struct
  type elt = Ord.t

  type tag = Empty | Available | Pid of int

  type node = { locked : bool; tag : tag; prio : elt option }

  type hstate = { hlocked : bool; size : int }

  type t = {
    items : node R.Atomic.t array;  (** 1-based; slot 0 unused *)
    hlock : hstate R.Atomic.t;
    capacity : int;
  }

  let create ?(capacity = 1 lsl 17) () =
    (* Round up to 2^k - 1: bit-reversed positions for counts <= 2^k - 1
       stay within [1, 2^k - 1], so every live index is in bounds. *)
    let capacity =
      let rec fit k = if (1 lsl k) - 1 >= capacity then (1 lsl k) - 1 else fit (k + 1) in
      fit 1
    in
    {
      items =
        Array.init (capacity + 1) (fun _ ->
            R.Atomic.make { locked = false; tag = Empty; prio = None });
      hlock = R.Atomic.make { hlocked = false; size = 0 };
      capacity;
    }

  (* --- locks --- *)

  let rec lock_heap t =
    let s = R.Atomic.get t.hlock in
    if (not s.hlocked)
       && R.Atomic.compare_and_set t.hlock s { s with hlocked = true }
    then s.size
    else begin
      R.cpu_relax ();
      lock_heap t
    end

  let unlock_heap t size = R.Atomic.set t.hlock { hlocked = false; size }

  (* Returns the contents observed at acquisition; the holder tracks any
     changes it makes itself. *)
  let rec lock_node t i =
    let slot = t.items.(i) in
    let n = R.Atomic.get slot in
    if (not n.locked) && R.Atomic.compare_and_set slot n { n with locked = true }
    then n
    else begin
      R.cpu_relax ();
      lock_node t i
    end

  let unlock t i tag prio =
    R.Atomic.set t.items.(i) { locked = false; tag; prio }

  (* Store under a held lock, keeping it held. *)
  let store t i tag prio = R.Atomic.set t.items.(i) { locked = true; tag; prio }

  (* --- bit-reversed position of the [c]-th item: consecutive counts map
     to bit-reversed offsets within the bottom level --- *)

  let position c =
    let rec level k = if c lsr (k + 1) = 0 then k else level (k + 1) in
    let k = level 0 in
    let off = c - (1 lsl k) in
    let rec rev i acc bits =
      if bits = 0 then acc
      else rev (i lsr 1) ((acc lsl 1) lor (i land 1)) (bits - 1)
    in
    (1 lsl k) + rev off 0 k

  let prio_lt a b =
    match (a, b) with
    | Some x, Some y -> Ord.compare x y < 0
    | _ -> false (* only reached with both slots non-empty *)

  (* --- insert --- *)

  let rec trickle_up t my i =
    if i = 1 then begin
      (* Reached the root: publish if the item is still ours. *)
      let n1 = lock_node t 1 in
      let tag = if n1.tag = my then Available else n1.tag in
      unlock t 1 tag n1.prio
    end
    else if i > 1 then begin
      let p = i / 2 in
      let np = lock_node t p in
      let ni = lock_node t i in
      match (np.tag, ni.tag) with
      | Available, tg when tg = my ->
          if prio_lt ni.prio np.prio then begin
            (* Swap: our tagged item moves to the parent. *)
            unlock t i np.tag np.prio;
            unlock t p ni.tag ni.prio;
            trickle_up t my p
          end
          else begin
            (* Heap order holds; the item comes to rest here. *)
            unlock t i Available ni.prio;
            unlock t p np.tag np.prio
          end
      | Empty, _ ->
          (* Our item was consumed (or the path collapsed); done. *)
          unlock t i ni.tag ni.prio;
          unlock t p np.tag np.prio
      | _, tg when tg <> my ->
          (* A sift-down moved our item up past us; chase it. *)
          unlock t i ni.tag ni.prio;
          unlock t p np.tag np.prio;
          trickle_up t my p
      | _ ->
          (* The parent is itself in transit (tagged); wait and retry. *)
          unlock t i ni.tag ni.prio;
          unlock t p np.tag np.prio;
          R.cpu_relax ();
          trickle_up t my i
    end

  let insert t v =
    let my = Pid (R.self ()) in
    let size = lock_heap t in
    if size >= t.capacity then begin
      unlock_heap t size;
      failwith "Hunt_heap.insert: capacity exceeded"
    end;
    let i0 = position (size + 1) in
    let _ = lock_node t i0 in
    unlock_heap t (size + 1);
    unlock t i0 my (Some v);
    trickle_up t my i0

  (* --- extract-min --- *)

  (* Sift down from [i], whose lock we hold and whose contents are
     [(tag, prio)]. Children are locked underneath us (hand over hand),
     and at most three locks are ever held. *)
  let rec sift_down t i tag prio =
    let l = 2 * i and r = (2 * i) + 1 in
    let descend c nc =
      if prio_lt nc.prio prio then begin
        (* Swap with the smaller child and follow our item down. *)
        store t c tag prio;
        unlock t i nc.tag nc.prio;
        sift_down t c tag prio
      end
      else begin
        unlock t c nc.tag nc.prio;
        unlock t i tag prio
      end
    in
    if l > t.capacity then unlock t i tag prio
    else begin
      let nl = lock_node t l in
      if r > t.capacity then begin
        if nl.tag = Empty then begin
          unlock t l nl.tag nl.prio;
          unlock t i tag prio
        end
        else descend l nl
      end
      else begin
        let nr = lock_node t r in
        if nl.tag = Empty && nr.tag = Empty then begin
          unlock t r nr.tag nr.prio;
          unlock t l nl.tag nl.prio;
          unlock t i tag prio
        end
        else if nr.tag = Empty || (nl.tag <> Empty && prio_lt nl.prio nr.prio)
        then begin
          unlock t r nr.tag nr.prio;
          descend l nl
        end
        else begin
          unlock t l nl.tag nl.prio;
          descend r nr
        end
      end
    end

  let extract_min t =
    let size = lock_heap t in
    if size = 0 then begin
      unlock_heap t size;
      None
    end
    else begin
      let bottom = position size in
      let nb = lock_node t bottom in
      unlock_heap t (size - 1);
      let moved = nb.prio in
      unlock t bottom Empty None;
      let n1 = lock_node t 1 in
      if n1.tag = Empty then begin
        (* [bottom] was the root: the item we removed is the result. *)
        unlock t 1 n1.tag n1.prio;
        moved
      end
      else begin
        let retval = n1.prio in
        store t 1 Available moved;
        sift_down t 1 Available moved;
        retval
      end
    end

  let peek_min t =
    let n1 = lock_node t 1 in
    unlock t 1 n1.tag n1.prio;
    n1.prio

  let size t =
    let s = lock_heap t in
    unlock_heap t s;
    s

  let is_empty t = size t = 0

  (* --- quiescent checks (tests) --- *)

  (** At a quiescent point: no locks held, every live slot Available, and
      heap order between each live node and its parent. *)
  let check t =
    let s = (R.Atomic.get t.hlock).size in
    let ok = ref (not (R.Atomic.get t.hlock).hlocked) in
    for c = 1 to s do
      let i = position c in
      let n = R.Atomic.get t.items.(i) in
      if n.locked || n.tag <> Available || n.prio = None then ok := false;
      if i > 1 then begin
        let p = R.Atomic.get t.items.(i / 2) in
        match (p.prio, n.prio) with
        | Some a, Some b -> if Ord.compare a b > 0 then ok := false
        | _ -> ok := false
      end
    done;
    !ok
end
