(** Test-and-test-and-set spinlock over a runtime's atomics.

    The locking baselines (and anything else needing mutual exclusion that
    must also run inside the simulator) use this instead of [Mutex]: a
    [Mutex] blocks the whole OS thread, which is meaningless under the
    cooperative simulator, while a spinlock's acquire loop turns waiting
    into visible, costed shared reads. The read-spin between CAS attempts
    keeps the wait local to the cache line copy, as in the classical
    TTAS. *)

module Make (R : Runtime.S) = struct
  type t = bool R.Atomic.t

  let create () = R.Atomic.make false

  let rec acquire t =
    if R.Atomic.compare_and_set t false true then ()
    else begin
      while R.Atomic.get t do
        R.cpu_relax ()
      done;
      acquire t
    end

  let release t = R.Atomic.set t false

  let try_acquire t = R.Atomic.compare_and_set t false true

  let with_lock t f =
    acquire t;
    match f () with
    | v ->
        release t;
        v
    | exception e ->
        release t;
        raise e
end
