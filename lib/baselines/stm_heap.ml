(** Binary min-heap on software transactional memory — the Dragicevic &
    Bauer comparison point from the paper's introduction.

    Every operation is one transaction over {!Stm} tvars: [size] plus one
    tvar per slot. The transaction makes the whole sift path atomic, so
    the structure is trivially linearizable, but an insert conflicts with
    any concurrent operation whose read/write set overlaps its path — in
    particular everything conflicts at [size] and near the root, which is
    why the paper dismisses STM heaps on performance grounds. Keys are
    [int] (the STM is word-based, like TL2).

    Fixed capacity, as in {!Hunt_heap}. *)

module Make (R : Runtime.S) = struct
  module S = Stm.Make (R)

  type t = { data : S.tvar array; size : S.tvar; capacity : int }

  let create ?(capacity = 1 lsl 17) () =
    {
      data = Array.init capacity (fun _ -> S.make 0);
      size = S.make 0;
      capacity;
    }

  let insert t v =
    S.atomically (fun tx ->
        let n = S.read tx t.size in
        if n >= t.capacity then failwith "Stm_heap.insert: capacity exceeded";
        S.write tx t.size (n + 1);
        (* trickle up transactionally *)
        let rec up i v =
          if i = 0 then S.write tx t.data.(0) v
          else
            let p = (i - 1) / 2 in
            let pv = S.read tx t.data.(p) in
            if v < pv then begin
              S.write tx t.data.(i) pv;
              up p v
            end
            else S.write tx t.data.(i) v
        in
        up n v)

  let extract_min t =
    S.atomically (fun tx ->
        let n = S.read tx t.size in
        if n = 0 then None
        else begin
          let min = S.read tx t.data.(0) in
          let last = S.read tx t.data.(n - 1) in
          S.write tx t.size (n - 1);
          let rec down i v =
            let l = (2 * i) + 1 and r = (2 * i) + 2 in
            let size = n - 1 in
            if l >= size then S.write tx t.data.(i) v
            else begin
              let lv = S.read tx t.data.(l) in
              let c, cv =
                if r >= size then (l, lv)
                else
                  let rv = S.read tx t.data.(r) in
                  if lv <= rv then (l, lv) else (r, rv)
              in
              if cv < v then begin
                S.write tx t.data.(i) cv;
                down c v
              end
              else S.write tx t.data.(i) v
            end
          in
          if n > 1 then down 0 last;
          Some min
        end)

  let peek_min t =
    S.atomically (fun tx ->
        if S.read tx t.size = 0 then None else Some (S.read tx t.data.(0)))

  let size t = S.atomically (fun tx -> S.read tx t.size)

  let is_empty t = size t = 0

  (** Quiescent heap-order check. *)
  let check t =
    let n = S.peek t.size in
    let ok = ref true in
    for i = 1 to n - 1 do
      if S.peek t.data.((i - 1) / 2) > S.peek t.data.(i) then ok := false
    done;
    !ok
end
