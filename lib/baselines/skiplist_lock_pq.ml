(** Skiplist priority queue with fine-grained locking — the original
    Lotan & Shavit design (IPDPS 2000), which the paper cites as the
    lock-based precursor of the non-blocking {!Skiplist_pq}.

    A lazy-locking skiplist (per-node spinlock, [removed] flag) plus
    Lotan–Shavit's extraction protocol: delete-min scans the bottom level
    and claims the first element whose [deleted] flag it can CAS, then
    removes the node level by level under predecessor locks. Like the
    original (and the non-blocking version), the resulting priority queue
    is quiescently consistent, not linearizable.

    Inserts follow the lazy skiplist of Herlihy & Shavit ch. 14, with one
    defensive change: predecessor locks are taken with try-lock and the
    whole acquisition is abandoned and retried on any failure, which
    makes deadlock impossible by construction even with duplicate keys
    (where the book's ordering argument does not directly apply). *)

module Make (R : Runtime.S) (Ord : Mound.Intf.ORDERED) = struct
  module B = Runtime.Backoff.Make (R)

  type elt = Ord.t

  let max_height = 20

  type contents = Head | Item of elt | Tail

  type node = {
    c : contents;
    height : int;
    lock : bool R.Atomic.t;
    removed : bool R.Atomic.t;  (** being physically unlinked *)
    deleted : bool R.Atomic.t;  (** logically extracted (PQ claim) *)
    next : node R.Atomic.t array;  (** length [height] *)
  }

  type t = { head : node; tail : node }

  let create () =
    let tail =
      {
        c = Tail;
        height = 0;
        lock = R.Atomic.make false;
        removed = R.Atomic.make false;
        deleted = R.Atomic.make false;
        next = [||];
      }
    in
    let head =
      {
        c = Head;
        height = max_height;
        lock = R.Atomic.make false;
        removed = R.Atomic.make false;
        deleted = R.Atomic.make false;
        next = Array.init max_height (fun _ -> R.Atomic.make tail);
      }
    in
    { head; tail }

  let node_lt n key =
    match n.c with
    | Head -> true
    | Tail -> false
    | Item x -> Ord.compare x key < 0

  let node_le n key =
    match n.c with
    | Head -> true
    | Tail -> false
    | Item x -> Ord.compare x key <= 0

  let try_lock n = R.Atomic.compare_and_set n.lock false true

  let unlock_node n = R.Atomic.set n.lock false

  (* Randomized backoff after a failed optimistic attempt. Determinism of
     retry timing is exactly what must be avoided: two threads whose
     retries re-align forever livelock under a deterministic scheduler
     (and waste cycles on real hardware). *)
  let backoff () = B.jitter ()

  let random_height () =
    let rec flip h =
      if h >= max_height || R.rand_int 2 = 0 then h else flip (h + 1)
    in
    flip 1

  (* Optimistic search, no locks: fills preds/succs for every level. *)
  let find t key preds succs =
    let pred = ref t.head in
    for lvl = max_height - 1 downto 0 do
      let curr = ref (R.Atomic.get !pred.next.(lvl)) in
      while node_lt !curr key do
        pred := !curr;
        curr := R.Atomic.get !pred.next.(lvl)
      done;
      preds.(lvl) <- !pred;
      succs.(lvl) <- !curr
    done

  let insert t key =
    let h = random_height () in
    let preds = Array.make max_height t.head in
    let succs = Array.make max_height t.head in
    let rec attempt () =
      find t key preds succs;
      (* try-lock the distinct predecessors of levels [0, h); abandon and
         retry on any contention or failed validation *)
      let locked = ref [] in
      let release () = List.iter unlock_node !locked in
      let rec acquire lvl =
        if lvl >= h then true
        else begin
          let pred = preds.(lvl) and succ = succs.(lvl) in
          let got =
            List.memq pred !locked
            ||
            (let ok = try_lock pred in
             if ok then locked := pred :: !locked;
             ok)
          in
          got
          && (not (R.Atomic.get pred.removed))
          && (not (R.Atomic.get succ.removed))
          && R.Atomic.get pred.next.(lvl) == succ
          && acquire (lvl + 1)
        end
      in
      if acquire 0 then begin
        let node =
          {
            c = Item key;
            height = h;
            lock = R.Atomic.make false;
            removed = R.Atomic.make false;
            deleted = R.Atomic.make false;
            next = Array.init h (fun lvl -> R.Atomic.make succs.(lvl));
          }
        in
        for lvl = 0 to h - 1 do
          R.Atomic.set preds.(lvl).next.(lvl) node
        done;
        release ()
      end
      else begin
        release ();
        backoff ();
        attempt ()
      end
    in
    attempt ()

  (* Splice [node] out at one level. Walks from the head through nodes
     with keys <= key (chasing pointer identity through duplicates); if
     the walk passes the key range, the node is already unlinked there. *)
  let unlink_level t node key lvl =
    let rec retry () =
      let rec walk p =
        let nxt = R.Atomic.get p.next.(lvl) in
        if nxt == node then begin
          if try_lock p then begin
            let ok =
              (not (R.Atomic.get p.removed))
              && R.Atomic.get p.next.(lvl) == node
            in
            if ok then R.Atomic.set p.next.(lvl) (R.Atomic.get node.next.(lvl));
            unlock_node p;
            if not ok then begin
              backoff ();
              retry ()
            end
          end
          else begin
            backoff ();
            retry ()
          end
        end
        else if node_le nxt key then walk nxt
        else () (* gone at this level *)
      in
      walk t.head
    in
    retry ()

  (* Physically remove a node we claimed. The [removed] flag (set under
     the node's own lock) gives the unlink job to exactly one thread and
     tells optimistic inserters to re-validate. *)
  let remove t node key =
    let rec claim () =
      if try_lock node then begin
        let mine = not (R.Atomic.get node.removed) in
        if mine then R.Atomic.set node.removed true;
        unlock_node node;
        mine
      end
      else begin
        backoff ();
        claim ()
      end
    in
    if claim () then
      (* top-down, so the node stays reachable below while upper levels
         are cut *)
      for lvl = node.height - 1 downto 0 do
        unlink_level t node key lvl
      done

  (** Lotan–Shavit delete-min: claim the first undeleted element on the
      bottom level via CAS on its [deleted] flag, then unlink it. *)
  let extract_min t =
    let rec scan (curr : node) =
      match curr.c with
      | Tail -> None
      | Head -> scan (R.Atomic.get curr.next.(0))
      | Item key ->
          if
            (not (R.Atomic.get curr.deleted))
            && R.Atomic.compare_and_set curr.deleted false true
          then begin
            remove t curr key;
            Some key
          end
          else scan (R.Atomic.get curr.next.(0))
    in
    scan (R.Atomic.get t.head.next.(0))

  let peek_min t =
    let rec scan (curr : node) =
      match curr.c with
      | Tail -> None
      | Head -> scan (R.Atomic.get curr.next.(0))
      | Item key ->
          if R.Atomic.get curr.deleted then scan (R.Atomic.get curr.next.(0))
          else Some key
    in
    scan t.head

  let is_empty t = peek_min t = None

  (** Undeleted elements on the bottom level, in order (quiescent). *)
  let to_list t =
    let rec go acc (curr : node) =
      match curr.c with
      | Tail -> List.rev acc
      | Head -> go acc (R.Atomic.get curr.next.(0))
      | Item key ->
          let acc = if R.Atomic.get curr.deleted then acc else key :: acc in
          go acc (R.Atomic.get curr.next.(0))
    in
    go [] t.head

  let size t = List.length (to_list t)

  let check t =
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> Ord.compare a b <= 0 && sorted rest
    in
    sorted (to_list t)
end
