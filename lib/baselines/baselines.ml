(** Baseline priority queues the mound is evaluated against (paper §VI):

    - {!Hunt_heap}: fine-grained-locking binary heap (Hunt et al. 1996),
      the "Hunt Heap (Lock)" series of Fig. 2;
    - {!Skiplist_pq}: non-blocking skiplist priority queue (Lotan–Shavit
      style), the "Skip List (QC)" series;
    - {!Skiplist_lock_pq}: the original fine-grained-locking Lotan–Shavit
      skiplist priority queue;
    - {!Stm_heap}: binary heap on a TL2-style STM (the Dragicevic & Bauer
      comparison point from the paper's introduction);
    - {!Coarse_heap}: single-lock binary heap, an ablation point;
    - {!Seq_heap}: sequential binary heap, the model oracle;
    - {!Spinlock}: the TTAS lock the locking structures are built from.

    Like the mounds, all concurrent baselines are functors over
    {!Runtime.S} and run both on real domains and in the simulator. *)

module Spinlock = Spinlock
module Seq_heap = Seq_heap
module Coarse_heap = Coarse_heap
module Hunt_heap = Hunt_heap
module Skiplist_pq = Skiplist_pq
module Skiplist_lock_pq = Skiplist_lock_pq
module Stm_heap = Stm_heap

(** Pre-applied integer instances over the real runtime. *)

module Seq_heap_int = Seq_heap.Make (Mound.Int_ord)
module Coarse_heap_int = Coarse_heap.Make (Runtime.Real) (Mound.Int_ord)
module Hunt_heap_int = Hunt_heap.Make (Runtime.Real) (Mound.Int_ord)
module Skiplist_pq_int = Skiplist_pq.Make (Runtime.Real) (Mound.Int_ord)
module Skiplist_lock_pq_int = Skiplist_lock_pq.Make (Runtime.Real) (Mound.Int_ord)
module Stm_heap_int = Stm_heap.Make (Runtime.Real)
