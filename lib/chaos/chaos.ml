(** Deterministic fault injection at the runtime boundary.

    {!Make} wraps any {!Runtime.S} in another {!Runtime.S} whose atomic
    operations misbehave according to a seeded {!plan}:

    - {e spurious [compare_and_set] failures} — the CAS returns [false]
      without touching memory, the weak-CAS (LL/SC) failure mode. Code
      that infers "someone else must have done it" from a failed CAS is
      exactly what this flushes out; every structure in the repository
      is written (and tested) to tolerate it.
    - {e adversarial delay bursts} — a run of [cpu_relax] hints injected
      just before an atomic operation, i.e. at the worst moment: between
      a read and the CAS that validates it. Under the simulator a burst
      advances the thread's virtual clock, so the scheduler runs every
      other thread through the widened window.
    - {e biased scheduling pressure} — one victim thread can be given a
      multiplied fault rate, which under smallest-clock-first scheduling
      systematically starves it relative to its peers.

    Because every concurrent structure here is a functor over
    {!Runtime.S}, chaos composes with all of them, and with the
    simulator's crash-stop plans ([Sim.Sched.run ~crashes]): instantiate
    a structure with [Chaos.Make (Sim.Runtime)] and both fault sources
    apply at once.

    Determinism: one functor application holds one fault stream. Under
    the single-OS-thread simulator a given [(plan, scheduler seed, crash
    plan)] reproduces the same fault sequence and the same counters,
    byte for byte. Over [Runtime.Real] the injection still works but the
    stream is shared racily between domains, so it is adversarial rather
    than reproducible. *)

type plan = {
  seed : int64;  (** seeds the fault stream *)
  cas_fail_permil : int;
      (** ‰ chance a [compare_and_set] fails spuriously (0–1000) *)
  delay_permil : int;
      (** ‰ chance of a delay burst before an atomic operation *)
  delay_relax : int;  (** [cpu_relax] hints per injected burst *)
  bias_tid : int;  (** thread whose fault rates are multiplied; -1: none *)
  bias_factor : int;  (** rate multiplier for [bias_tid] *)
}

(** No faults at all; the wrapped runtime behaves identically to [R]
    apart from operation counting. *)
let quiet =
  {
    seed = 1L;
    cas_fail_permil = 0;
    delay_permil = 0;
    delay_relax = 0;
    bias_tid = -1;
    bias_factor = 1;
  }

(** A moderate default storm: ~3% spurious CAS failures, ~2% delay
    bursts of 64 pauses, no bias. *)
let default ~seed =
  {
    seed;
    cas_fail_permil = 30;
    delay_permil = 20;
    delay_relax = 64;
    bias_tid = -1;
    bias_factor = 4;
  }

(** Injection and operation counters. Mutable and live: read them after
    (or during) a run. On [Runtime.Real] the increments are racy —
    counters are diagnostics, not synchronization. *)
type counters = {
  mutable gets : int;
  mutable sets : int;
  mutable cas : int;  (** [compare_and_set] attempts, injected or real *)
  mutable rmw : int;  (** [exchange] + [fetch_and_add] *)
  mutable spurious_failures : int;  (** CAS attempts failed by injection *)
  mutable delays : int;  (** delay bursts injected *)
}

let pp_counters ppf c =
  Format.fprintf ppf
    "gets %d, sets %d, cas %d, rmw %d; injected: %d spurious CAS \
     failures, %d delay bursts"
    c.gets c.sets c.cas c.rmw c.spurious_failures c.delays

module Make (R : Runtime.S) = struct
  let plan = ref quiet
  let rng = ref (Prng.create quiet.seed)

  let counters =
    { gets = 0; sets = 0; cas = 0; rmw = 0; spurious_failures = 0; delays = 0 }

  let reset_counters () =
    counters.gets <- 0;
    counters.sets <- 0;
    counters.cas <- 0;
    counters.rmw <- 0;
    counters.spurious_failures <- 0;
    counters.delays <- 0

  (** Install a plan, reseeding the fault stream and zeroing the
      counters: two runs configured identically behave identically. *)
  let configure p =
    plan := p;
    rng := Prng.create p.seed;
    reset_counters ()

  let current_plan () = !plan

  (* Effective rate for the calling thread: the biased victim sees its
     rates multiplied. *)
  let rate permil =
    let p = !plan in
    if p.bias_tid >= 0 && R.self () = p.bias_tid then
      min 1000 (permil * p.bias_factor)
    else permil

  let roll permil = permil > 0 && Prng.int !rng 1000 < permil

  let maybe_delay () =
    let p = !plan in
    if roll (rate p.delay_permil) then begin
      counters.delays <- counters.delays + 1;
      for _ = 1 to p.delay_relax do
        R.cpu_relax ()
      done
    end

  module Atomic = struct
    type 'a t = 'a R.Atomic.t

    let make = R.Atomic.make

    let get r =
      counters.gets <- counters.gets + 1;
      maybe_delay ();
      R.Atomic.get r

    let set r v =
      counters.sets <- counters.sets + 1;
      maybe_delay ();
      R.Atomic.set r v

    let compare_and_set r expected v =
      counters.cas <- counters.cas + 1;
      maybe_delay ();
      if roll (rate !plan.cas_fail_permil) then begin
        (* Weak-CAS failure: memory untouched, no ordering implied. *)
        counters.spurious_failures <- counters.spurious_failures + 1;
        false
      end
      else R.Atomic.compare_and_set r expected v

    (* The unconditional read-modify-writes cannot fail on any hardware
       we model, so they only suffer delays. *)
    let exchange r v =
      counters.rmw <- counters.rmw + 1;
      maybe_delay ();
      R.Atomic.exchange r v

    let fetch_and_add r n =
      counters.rmw <- counters.rmw + 1;
      maybe_delay ();
      R.Atomic.fetch_and_add r n
  end

  let cpu_relax = R.cpu_relax
  let self = R.self
  let rand_int = R.rand_int
  let monotonic_ns = R.monotonic_ns
end

exception Killed

(** Cooperative fault injection for {e real} domains, where the simulator's
    crash plans cannot reach. [Real (R)] is a {!Runtime.S} whose atomic
    operations count accesses per registered victim; arming a fault makes
    the victim's k-th counted access either raise {!Killed} {e before} the
    access happens (the domain dies mid-operation, exactly as a crashed
    thread would leave shared state), or park in a [cpu_relax] loop until
    {!Real.release} (a stalled-but-alive holder, for exercising lease
    revocation).

    The access is {e not} performed when the fault fires, matching the
    simulator's crash-plan semantics ("charged but not performed"). Arming
    is keyed on thread id, so the driver can aim at one victim while
    survivor domains run unperturbed through the same functor
    application. *)
module Real (R : Runtime.S) = struct
  type arm = { victim : int; after : int; kill : bool }

  let armed : arm option R.Atomic.t = R.Atomic.make None

  (* counted accesses by the current victim since arming *)
  let count = R.Atomic.make 0

  (* the fault fired: the victim raised Killed or entered the stall loop *)
  let tripped = R.Atomic.make false

  let released = R.Atomic.make false

  let arm ~kill ~victim ~after =
    R.Atomic.set count 0;
    R.Atomic.set tripped false;
    R.Atomic.set released false;
    R.Atomic.set armed (Some { victim; after; kill })

  let arm_kill = arm ~kill:true

  let arm_stall = arm ~kill:false

  let release () = R.Atomic.set released true

  let fired () = R.Atomic.get tripped

  let reset () =
    R.Atomic.set armed None;
    R.Atomic.set released false;
    R.Atomic.set tripped false;
    R.Atomic.set count 0

  let tick () =
    match R.Atomic.get armed with
    | None -> ()
    | Some a when R.self () = a.victim ->
        if R.Atomic.fetch_and_add count 1 + 1 = a.after then begin
          R.Atomic.set tripped true;
          if a.kill then raise Killed
          else
            while not (R.Atomic.get released) do
              R.cpu_relax ()
            done
        end
    | Some _ -> ()

  module Atomic = struct
    type 'a t = 'a R.Atomic.t

    let make = R.Atomic.make

    let get r =
      tick ();
      R.Atomic.get r

    let set r v =
      tick ();
      R.Atomic.set r v

    let compare_and_set r expected v =
      let () = tick () in
      R.Atomic.compare_and_set r expected v

    let exchange r v =
      tick ();
      R.Atomic.exchange r v

    let fetch_and_add r n =
      tick ();
      R.Atomic.fetch_and_add r n
  end

  let cpu_relax = R.cpu_relax
  let self = R.self
  let rand_int = R.rand_int
  let monotonic_ns = R.monotonic_ns
end

(* The wrapped modules really are runtimes; catch drift here, not at
   every instantiation site. *)
module Check (R : Runtime.S) : Runtime.S = Make (R)

module Check_real (R : Runtime.S) : Runtime.S = Real (R)
