(** Deterministic fault injection at the runtime boundary.

    [Chaos.Make (R)] is a {!Runtime.S} that behaves like [R] except that
    its atomic operations misbehave according to a seeded {!plan}:
    spurious [compare_and_set] failures (the weak-CAS / LL/SC failure
    mode, memory untouched), adversarial delay bursts injected just
    before atomic operations, and per-thread biased fault rates. Since
    every concurrent structure in the repository is a functor over
    {!Runtime.S}, chaos composes with all of them — and with the
    simulator's crash-stop plans ([Sim.Sched.run ~crashes]) when wrapped
    around [Sim.Runtime].

    Under the simulator a given [(plan, scheduler seed, crash plan)]
    reproduces the same fault sequence and counters byte for byte; over
    [Runtime.Real] the fault stream is racy and therefore adversarial
    rather than reproducible. *)

type plan = {
  seed : int64;  (** seeds the fault stream *)
  cas_fail_permil : int;
      (** ‰ chance a [compare_and_set] fails spuriously (0–1000) *)
  delay_permil : int;
      (** ‰ chance of a delay burst before an atomic operation *)
  delay_relax : int;  (** [cpu_relax] hints per injected burst *)
  bias_tid : int;  (** thread whose fault rates are multiplied; -1: none *)
  bias_factor : int;  (** rate multiplier for [bias_tid] *)
}

val quiet : plan
(** No faults; the wrapper only counts operations. *)

val default : seed:int64 -> plan
(** A moderate storm: ~3% spurious CAS failures, ~2% delay bursts of 64
    pauses, no bias. *)

(** Injection and operation counters; mutable and live. Racy on
    [Runtime.Real] — diagnostics, not synchronization. *)
type counters = {
  mutable gets : int;
  mutable sets : int;
  mutable cas : int;  (** [compare_and_set] attempts, injected or real *)
  mutable rmw : int;  (** [exchange] + [fetch_and_add] *)
  mutable spurious_failures : int;  (** CAS attempts failed by injection *)
  mutable delays : int;  (** delay bursts injected *)
}

val pp_counters : Format.formatter -> counters -> unit

(** One functor application holds one fault stream and one counter set;
    apply it once per experiment site and {!configure} between runs. *)
module Make (R : Runtime.S) : sig
  include Runtime.S with type 'a Atomic.t = 'a R.Atomic.t

  val configure : plan -> unit
  (** Install a plan, reseed the fault stream and zero the counters: two
      runs configured identically behave identically (under the
      simulator). *)

  val current_plan : unit -> plan

  val counters : counters

  val reset_counters : unit -> unit
end

exception Killed
(** Raised inside a victim thread by {!Real} when an armed kill fires. *)

(** Cooperative fault injection for real domains. [Real (R)] counts the
    registered victim's atomic accesses and, at the armed k-th access,
    either raises {!Killed} before performing it (crash-stop mid-op) or
    parks the victim in a [cpu_relax] loop until {!Real.release} (a
    stalled-but-alive lock holder). Survivor threads pass through
    untouched. One functor application holds one armed fault. *)
module Real (R : Runtime.S) : sig
  include Runtime.S with type 'a Atomic.t = 'a R.Atomic.t

  val arm_kill : victim:int -> after:int -> unit
  (** Make [victim]'s [after]-th counted access raise {!Killed} instead of
      executing. *)

  val arm_stall : victim:int -> after:int -> unit
  (** Make [victim]'s [after]-th counted access park until {!release}. *)

  val release : unit -> unit
  (** Unpark a stalled victim. *)

  val fired : unit -> bool
  (** Whether the armed fault has fired. *)

  val reset : unit -> unit
  (** Disarm and clear all fault state. *)
end
