(** Signatures describing the execution environment a concurrent algorithm
    runs in.

    Every concurrent structure in this repository is a functor over
    {!module-type-S}, so a single algorithm text can be instantiated
    against real shared memory ({!Runtime.Real}: [Stdlib.Atomic] +
    [Domain]) or against the deterministic virtual-time simulator
    ([Sim.Runtime]). The signature is intentionally the smallest set of
    primitives the algorithms use — anything outside it would silently
    bypass the simulator's cost accounting. *)

(** Shared atomic cells, mirroring the part of [Stdlib.Atomic] we rely
    on. *)
module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t

  val get : 'a t -> 'a

  val set : 'a t -> 'a -> unit

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** [compare_and_set r expected v] — physical equality on [expected], as
      in [Stdlib.Atomic]. Concurrent code in this repository therefore
      publishes freshly allocated immutable records, which doubles as ABA
      protection. *)

  val exchange : 'a t -> 'a -> 'a

  val fetch_and_add : int t -> int -> int
end

module type S = sig
  module Atomic : ATOMIC

  val cpu_relax : unit -> unit
  (** Polite spin-wait hint. In the simulator this advances virtual time,
      which is what lets spinning coexist with virtual-time scheduling. *)

  val self : unit -> int
  (** Identifier of the calling thread (domain id, or simulated thread
      id). Stable for the thread's lifetime; not necessarily dense. *)

  val rand_int : int -> int
  (** [rand_int bound] draws uniformly from [\[0, bound)] using a
      thread-local generator, so concurrent callers never contend on RNG
      state. *)

  val monotonic_ns : unit -> int
  (** Monotonic timestamp for deadlines and lease expiry. On real domains
      this is wall-derived nanoseconds (comparable within a process, never
      going backwards in practice); under the simulator it is the calling
      thread's virtual time, so deadline behaviour is deterministic and
      replayable. Only differences are meaningful; the origin is
      unspecified. *)
end
