(** The real execution environment: OCaml 5 domains and [Stdlib.Atomic].

    [rand_int] uses a domain-local xoshiro256** state derived from a global
    seed and the domain id, so runs are reproducible when domains are
    spawned deterministically. *)

module Atomic = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make
  let get = Stdlib.Atomic.get
  let set = Stdlib.Atomic.set
  let compare_and_set = Stdlib.Atomic.compare_and_set
  let exchange = Stdlib.Atomic.exchange
  let fetch_and_add = Stdlib.Atomic.fetch_and_add
end

let cpu_relax = Domain.cpu_relax

let self () = (Domain.self () :> int)

let seed = Stdlib.Atomic.make 0x5EED_0F_ACEDL

let set_seed s = Stdlib.Atomic.set seed s

let rng_key =
  Domain.DLS.new_key (fun () ->
      Prng.for_thread ~seed:(Stdlib.Atomic.get seed) ~id:(self ()))

let rand_int bound = Prng.int (Domain.DLS.get rng_key) bound

(* [Unix.gettimeofday] is the finest-grained clock available without new
   dependencies; converted to an integer nanosecond stamp so deadline
   arithmetic stays allocation-free. Not strictly monotonic across NTP
   steps, but deadline checks only compare against lease-scale spans. *)
let monotonic_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
