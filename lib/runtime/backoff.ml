(** Randomized backoff, shared by every retry loop in the repository.

    Lives in the runtime library because backoff is a property of the
    execution environment, not of any one structure: the pauses are
    [cpu_relax] hints and the jitter comes from the runtime's
    thread-local generator, so under the simulator a backoff advances
    virtual time deterministically while never yielding.

    Randomization is load-bearing, not cosmetic: two threads whose
    retries re-align forever livelock under a deterministic scheduler
    (see the skiplist livelock regression in [test_sim_concurrent]), and
    waste coherence bandwidth on real hardware. *)

module Make (R : Intf.S) = struct
  (** [jitter ?bound ()] pauses for a uniformly random number of
      [cpu_relax] hints in [\[1, bound+1\]] — the flat backoff used after
      a failed optimistic attempt where contention is expected to be
      momentary (try-lock loops). *)
  let jitter ?(bound = 24) () =
    for _ = 0 to R.rand_int bound do
      R.cpu_relax ()
    done

  (** [exponential ?cap_bits round] pauses for a random number of
      [cpu_relax] hints drawn from [\[1, 2^min round cap_bits\]] —
      capped randomized exponential backoff for loops whose failures
      signal sustained contention (transaction aborts, repeated failed
      CAS/DCSS). [round] counts consecutive failures, starting at 0. *)
  let exponential ?(cap_bits = 10) round =
    let cap = 1 lsl min round cap_bits in
    for _ = 0 to R.rand_int cap do
      R.cpu_relax ()
    done
end
