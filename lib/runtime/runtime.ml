(** Execution-environment abstraction: see {!Intf} for the signatures and
    {!Real} for the domains-and-atomics implementation. The simulator's
    implementation lives in the [sim] library to keep this one
    dependency-free. *)

module Intf = Intf
module Real = Real
module Backoff = Backoff

module type ATOMIC = Intf.ATOMIC
module type S = Intf.S
