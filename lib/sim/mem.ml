(** Simulated atomic cells with cache-line ownership tracking.

    Implements {!Runtime.ATOMIC}. Each cell models one cache line in a
    MESI-like way: [owner] is the last writer, [readers] a bitmask of
    threads holding a (shared) copy. A read hits if the thread already has
    a copy; a write or CAS hits only if the thread owns the line
    exclusively. Costs are charged through {!Sched.access_to}, which is
    also the yield point that lets other simulated threads interleave. The
    read-modify-write itself executes after the yield, atomically from the
    point of view of other simulated threads, because the scheduler is
    cooperative; once it has executed, {!Sched.commit} reports it to any
    schedule-exploration observer.

    Every cell carries a process-unique identity [id]: the conflict key
    for the DPOR explorer and the race detector in {!Check}.

    Outside a simulation the cells degrade to plain mutable refs, which
    keeps unit tests of simulated structures runnable without a
    scheduler. *)

type 'a t = {
  id : int;  (** process-unique cell identity, the conflict key *)
  mutable value : 'a;
  mutable owner : int;  (** last writer tid, or -1 *)
  mutable readers : int64;  (** bitmask of tids with a shared copy *)
}

let bit tid = Int64.shift_left 1L tid

(* Strictly single-OS-thread (like the scheduler), so a plain counter is
   enough. Identities stay unique across simulations: the explorer can
   tell cells of a fresh program instance from a previous one's. *)
let next_id = ref 0

(* ---- shared-memory fingerprinting (liveness checker support) ----

   While tracking is on, [fp] maintains a commutative hash of the value
   of every cell created since [track_begin]: the sum over cells of
   mix(id, hash value). Sums commute, so each write only has to subtract
   the cell's previous contribution and add the new one — O(1) per write,
   zero cost when tracking is off. [Hashtbl.hash_param] with a generous
   meaningful-node budget keeps deep structures (mound trees, descriptor
   chains) from collapsing to equal hashes; structures additionally carry
   seq counters that change on every update. *)

let tracking = ref false
let fp = ref 0
let contrib : (int, int) Hashtbl.t = Hashtbl.create 256

let mix id h =
  let x = (id * 0x9E3779B1) lxor (h * 0x85EBCA77) in
  (x lxor (x lsr 15)) land max_int

let value_hash v = Hashtbl.hash_param 128 256 v

let track_record r =
  let c = mix r.id (value_hash r.value) in
  (match Hashtbl.find_opt contrib r.id with
  | Some old -> fp := !fp - old
  | None -> ());
  Hashtbl.replace contrib r.id c;
  fp := !fp + c

let track_begin () =
  tracking := true;
  fp := 0;
  Hashtbl.reset contrib

let track_end () =
  tracking := false;
  fp := 0;
  Hashtbl.reset contrib

let fingerprint () = !fp land max_int

let make v =
  let id = !next_id in
  incr next_id;
  let r = { id; value = v; owner = -1; readers = 0L } in
  if !tracking then track_record r;
  r

let id r = r.id

let has_copy r tid =
  r.owner = tid || Int64.logand r.readers (bit tid) <> 0L

let owns_exclusively r tid =
  r.owner = tid && Int64.logand r.readers (Int64.lognot (bit tid)) = 0L

(* Accesses charge the hit cost up front (the yield point), then settle
   the hit/miss difference at execution time, when the line's true state —
   as left by every operation that executed earlier in virtual time — is
   known. Determining hit/miss at issue time instead would consult stale
   ownership: a peer's write that interleaves during our stall must count
   as an invalidation. *)
let charge_access kind r tid ~exclusive =
  Sched.access_to ~cell:r.id kind ~hit:true;
  let hit = if exclusive then owns_exclusively r tid else has_copy r tid in
  if not hit then
    Sched.work (Sched.access_cost kind ~hit:false - Sched.access_cost kind ~hit:true)

let get r =
  if Sched.active () then begin
    let tid = Sched.tid () in
    charge_access Read r tid ~exclusive:false;
    r.readers <- Int64.logor r.readers (bit tid);
    Sched.commit ~cell:r.id ~kind:Read ~wrote:false
  end;
  r.value

let acquire_exclusive kind r =
  let tid = Sched.tid () in
  charge_access kind r tid ~exclusive:true;
  r.owner <- tid;
  r.readers <- bit tid

let set r v =
  if Sched.active () then begin
    acquire_exclusive Write r;
    r.value <- v;
    if !tracking then track_record r;
    Sched.commit ~cell:r.id ~kind:Write ~wrote:true
  end
  else begin
    r.value <- v;
    if !tracking then track_record r
  end

let compare_and_set r expected v =
  if Sched.active () then begin
    acquire_exclusive Cas r;
    let ok = r.value == expected in
    if ok then begin
      r.value <- v;
      if !tracking then track_record r
    end;
    Sched.commit ~cell:r.id ~kind:Cas ~wrote:ok;
    ok
  end
  else if r.value == expected then begin
    r.value <- v;
    if !tracking then track_record r;
    true
  end
  else false

let exchange r v =
  if Sched.active () then begin
    acquire_exclusive Cas r;
    let old = r.value in
    r.value <- v;
    if !tracking then track_record r;
    Sched.commit ~cell:r.id ~kind:Cas ~wrote:true;
    old
  end
  else begin
    let old = r.value in
    r.value <- v;
    if !tracking then track_record r;
    old
  end

let fetch_and_add (r : int t) n =
  if Sched.active () then begin
    acquire_exclusive Cas r;
    let old = r.value in
    r.value <- old + n;
    if !tracking then track_record r;
    Sched.commit ~cell:r.id ~kind:Cas ~wrote:true;
    old
  end
  else begin
    let old = r.value in
    r.value <- old + n;
    if !tracking then track_record r;
    old
  end
