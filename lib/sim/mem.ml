(** Simulated atomic cells with cache-line ownership tracking.

    Implements {!Runtime.ATOMIC}. Each cell models one cache line in a
    MESI-like way: [owner] is the last writer, [readers] a bitmask of
    threads holding a (shared) copy. A read hits if the thread already has
    a copy; a write or CAS hits only if the thread owns the line
    exclusively. Costs are charged through {!Sched.access_to}, which is
    also the yield point that lets other simulated threads interleave. The
    read-modify-write itself executes after the yield, atomically from the
    point of view of other simulated threads, because the scheduler is
    cooperative; once it has executed, {!Sched.commit} reports it to any
    schedule-exploration observer.

    Every cell carries a process-unique identity [id]: the conflict key
    for the DPOR explorer and the race detector in {!Check}.

    Outside a simulation the cells degrade to plain mutable refs, which
    keeps unit tests of simulated structures runnable without a
    scheduler. *)

type 'a t = {
  id : int;  (** process-unique cell identity, the conflict key *)
  mutable value : 'a;
  mutable owner : int;  (** last writer tid, or -1 *)
  mutable readers : int64;  (** bitmask of tids with a shared copy *)
}

let bit tid = Int64.shift_left 1L tid

(* Strictly single-OS-thread (like the scheduler), so a plain counter is
   enough. Identities stay unique across simulations: the explorer can
   tell cells of a fresh program instance from a previous one's. *)
let next_id = ref 0

let make v =
  let id = !next_id in
  incr next_id;
  { id; value = v; owner = -1; readers = 0L }

let id r = r.id

let has_copy r tid =
  r.owner = tid || Int64.logand r.readers (bit tid) <> 0L

let owns_exclusively r tid =
  r.owner = tid && Int64.logand r.readers (Int64.lognot (bit tid)) = 0L

(* Accesses charge the hit cost up front (the yield point), then settle
   the hit/miss difference at execution time, when the line's true state —
   as left by every operation that executed earlier in virtual time — is
   known. Determining hit/miss at issue time instead would consult stale
   ownership: a peer's write that interleaves during our stall must count
   as an invalidation. *)
let charge_access kind r tid ~exclusive =
  Sched.access_to ~cell:r.id kind ~hit:true;
  let hit = if exclusive then owns_exclusively r tid else has_copy r tid in
  if not hit then
    Sched.work (Sched.access_cost kind ~hit:false - Sched.access_cost kind ~hit:true)

let get r =
  if Sched.active () then begin
    let tid = Sched.tid () in
    charge_access Read r tid ~exclusive:false;
    r.readers <- Int64.logor r.readers (bit tid);
    Sched.commit ~cell:r.id ~kind:Read ~wrote:false
  end;
  r.value

let acquire_exclusive kind r =
  let tid = Sched.tid () in
  charge_access kind r tid ~exclusive:true;
  r.owner <- tid;
  r.readers <- bit tid

let set r v =
  if Sched.active () then begin
    acquire_exclusive Write r;
    r.value <- v;
    Sched.commit ~cell:r.id ~kind:Write ~wrote:true
  end
  else r.value <- v

let compare_and_set r expected v =
  if Sched.active () then begin
    acquire_exclusive Cas r;
    let ok = r.value == expected in
    if ok then r.value <- v;
    Sched.commit ~cell:r.id ~kind:Cas ~wrote:ok;
    ok
  end
  else if r.value == expected then begin
    r.value <- v;
    true
  end
  else false

let exchange r v =
  if Sched.active () then begin
    acquire_exclusive Cas r;
    let old = r.value in
    r.value <- v;
    Sched.commit ~cell:r.id ~kind:Cas ~wrote:true;
    old
  end
  else begin
    let old = r.value in
    r.value <- v;
    old
  end

let fetch_and_add (r : int t) n =
  if Sched.active () then begin
    acquire_exclusive Cas r;
    let old = r.value in
    r.value <- old + n;
    Sched.commit ~cell:r.id ~kind:Cas ~wrote:true;
    old
  end
  else begin
    let old = r.value in
    r.value <- old + n;
    old
  end
