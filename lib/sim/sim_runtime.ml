(** The simulator's implementation of {!Runtime.S}.

    Instantiating a concurrent structure with this module makes every one
    of its shared-memory accesses a costed, interleavable event of the
    active {!Sched} simulation. *)

module Atomic = Mem

let cpu_relax = Sched.relax
let self = Sched.tid
let rand_int = Sched.rand_int

(* virtual "nanoseconds": the calling thread's accumulated virtual time,
   so simulated deadlines expire deterministically *)
let monotonic_ns () = Sched.now ()
