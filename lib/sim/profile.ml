(** Machine cost profiles for the virtual-time simulator.

    A profile assigns a virtual-cycle cost to every kind of shared-memory
    access, distinguishing cache hits from coherence misses, and describes
    the machine's parallelism envelope (physical cores, hardware threads,
    SMT slowdown, and the preemption behaviour once software threads
    outnumber hardware threads). The two built-in profiles mirror the
    paper's testbeds:

    - {!niagara2}: Sun UltraSPARC T2 — 8 simple in-order cores, 8-way
      fine-grained multithreading each (64 hardware threads), a shared L2
      that also implements CAS (so even an uncontended CAS pays an
      L2 round-trip), and a clock of 1.165 GHz.
    - {!x86}: Intel Xeon X5650-class — 6 out-of-order cores, 2-way SMT
      (12 hardware threads), a deep private-cache hierarchy (cheap hits,
      expensive cross-core transfers, CAS cheap when the line is already
      exclusive), 2.67 GHz.

    The absolute numbers are rounded folklore latencies, not measurements;
    what the reproduction relies on is their ordering (hit ≪ miss,
    x86 local CAS ≪ Niagara2 CAS, x86 miss > Niagara2 miss relative to
    hits), which is what shapes the paper's curves. *)

type t = {
  name : string;
  cores : int;  (** physical cores *)
  hw_threads : int;  (** hardware thread contexts (cores × SMT ways) *)
  freq_ghz : float;  (** used only to convert virtual cycles to seconds *)
  read_hit : int;
  read_miss : int;  (** line last written by another thread *)
  write_hit : int;  (** line already exclusively owned *)
  write_miss : int;  (** needs invalidation / transfer *)
  cas_hit : int;
  cas_miss : int;
  relax : int;  (** one [cpu_relax] pause *)
  local_op : int;  (** generic local work charged per RNG draw etc. *)
  smt_penalty : float;
      (** extra per-op slowdown factor reached when all SMT contexts of
          every core are busy (linearly interpolated from 0 as thread
          count grows from [cores] to [hw_threads]) *)
  quantum : int;
      (** once threads > hw_threads: virtual cycles a thread runs before
          the OS timeslices it out *)
  stall : int;
      (** base descheduling stall; scaled by the oversubscription ratio *)
}

let niagara2 =
  {
    name = "niagara2";
    cores = 8;
    hw_threads = 64;
    freq_ghz = 1.165;
    read_hit = 8;
    read_miss = 42;
    write_hit = 12;
    write_miss = 48;
    cas_hit = 46;
    (* CAS executes in the shared L2 on this machine *)
    cas_miss = 60;
    relax = 12;
    local_op = 6;
    smt_penalty = 0.35;
    quantum = 40_000;
    stall = 150_000;
  }

let x86 =
  {
    name = "x86";
    cores = 6;
    hw_threads = 12;
    freq_ghz = 2.67;
    read_hit = 4;
    read_miss = 90;
    write_hit = 6;
    write_miss = 110;
    cas_hit = 22;
    cas_miss = 130;
    relax = 10;
    local_op = 3;
    smt_penalty = 0.30;
    quantum = 40_000;
    stall = 150_000;
  }

(* A frictionless profile: uniform small costs, no SMT or preemption
   effects. Useful in tests, where only the interleaving semantics matter,
   and as the "ideal machine" ablation in the benches. *)
let uniform =
  {
    name = "uniform";
    cores = 1024;
    hw_threads = 1024;
    freq_ghz = 1.0;
    read_hit = 1;
    read_miss = 1;
    write_hit = 1;
    write_miss = 1;
    cas_hit = 1;
    cas_miss = 1;
    relax = 1;
    local_op = 1;
    smt_penalty = 0.0;
    quantum = max_int;
    stall = 0;
  }

let by_name = function
  | "niagara2" -> Some niagara2
  | "x86" -> Some x86
  | "uniform" -> Some uniform
  | _ -> None

let all = [ niagara2; x86; uniform ]

(** [load_factor p n] is the per-op cost multiplier when [n] software
    threads run on profile [p]: 1 up to the core count, rising with SMT
    sharing up to the hardware-thread count, then growing linearly with
    oversubscription (pure timesharing). *)
let load_factor p n =
  if n <= p.cores then 1.0
  else if n <= p.hw_threads then
    let frac =
      float_of_int (n - p.cores) /. float_of_int (max 1 (p.hw_threads - p.cores))
    in
    1.0 +. (p.smt_penalty *. frac)
  else (1.0 +. p.smt_penalty) *. float_of_int n /. float_of_int p.hw_threads

(** Convert a virtual-cycle count to seconds on this profile's clock. *)
let seconds p cycles = float_of_int cycles /. (p.freq_ghz *. 1e9)
