(** Deterministic virtual-time concurrency simulator.

    This library is the hardware substitution of this reproduction (see
    DESIGN.md §3): the container has a single CPU core, so the paper's
    throughput-versus-threads experiments are replayed here instead.
    Concurrent structures written against {!Runtime.S} are instantiated
    with {!Runtime} ([Sim.Runtime]); their threads run under {!Sched} as
    cooperative fibers whose shared accesses are charged virtual-cycle
    costs from a machine {!Profile}.

    A complete simulation of two threads hammering a shared counter:
    {[
      module R = Sim.Runtime
      let counter = R.Atomic.make 0
      let body _tid = for _ = 1 to 1000 do
        ignore (R.Atomic.fetch_and_add counter 1)
      done
      let result = Sim.Sched.run ~profile:Sim.Profile.x86 [| body; body |]
      (* result.span = virtual makespan; counter holds 2000 *)
    ]} *)

(* Check the functor-facing module against the signature once, here, so a
   drift in [Runtime.S] is caught in this library rather than at every use
   site. Done before the [Runtime] alias below shadows the library. *)
module Runtime_check : Runtime.S = Sim_runtime

module Profile = Profile
module Sched = Sched
module Mem = Mem
module Runtime = Sim_runtime
