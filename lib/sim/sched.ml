(** Deterministic virtual-time scheduler for simulated threads.

    Each simulated thread is an effect-handler fiber. Shared-memory
    operations (in {!Mem}) charge a cost taken from the machine
    {!Profile} and perform the {!Yield} effect; the scheduler then always
    resumes the runnable thread with the smallest virtual clock. Because
    every shared access is a yield point, the execution is a sequentially
    consistent interleaving ordered by virtual time, and phenomena like
    failed-CAS retries, helping, lock convoys and cache-line ping-pong
    surface as extra virtual cycles exactly where the algorithms generate
    them.

    Fault model (crash-stop): a thread can be killed — by a declarative
    crash plan ([~crashes], "thread [i] dies at its [k]-th shared
    access"), by {!kill}, or by the virtual-time watchdog. A killed
    thread's fiber is discontinued (unwound), never resumed and never
    leaked; the shared access it died at is charged but {e not}
    performed, so the thread drops dead while any descriptor or lock bit
    it holds is still published. The watchdog bounds the virtual clock:
    when every remaining runnable thread is past the bound, they are
    reported as wedged instead of spinning forever — which is what turns
    "a crashed lock holder blocks everyone" from a hang into a test
    outcome.

    The scheduler is strictly single-OS-thread and fully deterministic in
    [(seed, crash plan, thread bodies)]. At most one simulation can be
    active per domain at a time. *)

type access = Read | Write | Cas

(** The shared access a suspended thread announced just before yielding —
    the one it will perform the moment it is next resumed. [cell] is a
    {!Mem} cell identity ([-1] when the yield did not come from a cell
    access). This is what lets a schedule explorer reason about the next
    transition of every thread without running it. *)
type pending = { cell : int; kind : access }

type thread = {
  tid : int;
  rng : Prng.t;
  mutable clock : int;
  mutable slice : int;
  mutable yields : int;
  mutable pending : pending option;  (* announced-but-unperformed access *)
  mutable crash_at : int;  (* die at this shared-access count; max_int = never *)
  mutable doomed : bool;  (* kill requested from outside the thread *)
  mutable dead : bool;  (* crashed (plan, kill or watchdog) *)
}

type t = {
  profile : Profile.t;
  nthreads : int;
  load : float;
  oversubscribed : bool;
  threads : thread array;
  on_commit : (tid:int -> cell:int -> kind:access -> wrote:bool -> unit) option;
  mutable trace : int list;  (* chosen tids, reversed; only when recording *)
  mutable events : int;  (* global yield count: a logical clock *)
  mutable reads : int;
  mutable writes : int;
  mutable cases : int;  (* CAS-class operations: cas/exchange/fetch_add *)
}

type result = {
  span : int;  (** max final thread clock, in virtual cycles *)
  clocks : int array;
  yields : int;  (** total shared-memory events *)
  accesses : int array;  (** per-thread shared-memory events *)
  reads : int;  (** shared reads issued *)
  writes : int;  (** shared unconditional writes issued *)
  cases : int;  (** CAS-class read-modify-writes issued *)
  killed : int list;  (** tids crashed by plan or {!kill}, ascending *)
  wedged : int list;  (** tids stopped by the watchdog, ascending *)
  schedule : int list;
      (** resumption order (chosen tid per scheduling decision), recorded
          only under [~record_schedule:true]; [[]] otherwise *)
}

(* ------------------------------------------------------------------ *)
(* Schedule strings: the minimal counterexample format. A schedule is
   the sequence of tids resumed at each scheduling decision; replaying
   it (via [~policy:(replay ...)]) reproduces the interleaving exactly,
   because everything else is deterministic in (seed, bodies). *)

module Schedule = struct
  type nonrec t = int list

  (* Run-length encoded: "0*3.1.0*2" = [0;0;0;1;0;0]. Compact enough to
     paste into a shell while staying eyeball-decodable. *)
  let to_string (s : t) =
    let buf = Buffer.create 64 in
    let flush tid n =
      if n > 0 then begin
        if Buffer.length buf > 0 then Buffer.add_char buf '.';
        Buffer.add_string buf (string_of_int tid);
        if n > 1 then begin
          Buffer.add_char buf '*';
          Buffer.add_string buf (string_of_int n)
        end
      end
    in
    let tid, n =
      List.fold_left
        (fun (tid, n) t ->
          if t = tid then (tid, n + 1)
          else begin
            flush tid n;
            (t, 1)
          end)
        (-1, 0) s
    in
    flush tid n;
    Buffer.contents buf

  let of_string str : t =
    let fail () = invalid_arg "Sim.Sched.Schedule.of_string: bad schedule" in
    let int s = match int_of_string_opt s with Some v when v >= 0 -> v | _ -> fail () in
    if String.trim str = "" then []
    else
      String.split_on_char '.' (String.trim str)
      |> List.concat_map (fun seg ->
             match String.split_on_char '*' seg with
             | [ tid ] -> [ int tid ]
             | [ tid; n ] ->
                 let n = int n in
                 if n < 1 then fail ();
                 List.init n (fun _ -> int tid)
             | _ -> fail ())

  let pp ppf s = Format.pp_print_string ppf (to_string s)
end

(** A scheduling policy: given the runnable threads (ascending tid, with
    the access each will perform when resumed, if known), return the tid
    to resume. Exceptions raised by a policy abort the run like an
    exception escaping a thread body: every fiber is unwound first. *)
type policy = (int * pending option) array -> int

(** [replay schedule] follows [schedule] while it lasts (skipping tids
    that are no longer runnable), then falls back to lowest-runnable-tid.
    Feeding back a recorded [result.schedule] reproduces the run. *)
let replay schedule : policy =
  let rest = ref schedule in
  fun runnable ->
    let is_runnable t = Array.exists (fun (tid, _) -> tid = t) runnable in
    let rec next () =
      match !rest with
      | [] -> fst runnable.(0)
      | t :: tl ->
          rest := tl;
          if is_runnable t then t else next ()
    in
    next ()

type _ Effect.t += Yield : unit Effect.t

exception Thread_killed
(** Raised inside a fiber to crash-stop it. Simulated code must let it
    propagate: catching it would resurrect a thread the fault plan
    declared dead. *)

let active_sched : t option ref = ref None
let active_thread : thread option ref = ref None

let active () = !active_thread <> None

(* Outside a simulation (setup/teardown code) there is exactly one caller,
   the ambient thread; it reports id 0. *)
let tid () = match !active_thread with Some th -> th.tid | None -> 0

(** Virtual time of the calling thread. Event timestamps taken this way
    are globally comparable, which is what the linearizability tests use
    to build histories. *)
let now () = match !active_thread with Some th -> th.clock | None -> 0

(* Charge [cost] virtual cycles to the running thread, applying the load
   factor and, when oversubscribed, periodic preemption stalls with a
   deterministic pseudo-random jitter so threads do not stall in
   lockstep. *)
let local_charge sched th cost =
  let cost = int_of_float ((float_of_int cost *. sched.load) +. 0.5) in
  th.clock <- th.clock + cost;
  if sched.oversubscribed then begin
    th.slice <- th.slice + cost;
    let p = sched.profile in
    if th.slice >= p.quantum then begin
      th.slice <- 0;
      let over = sched.nthreads - p.hw_threads in
      let stall = p.stall * over / p.hw_threads in
      if stall > 0 then th.clock <- th.clock + stall + Prng.int th.rng stall
    end
  end

let with_active f =
  match (!active_sched, !active_thread) with
  | Some sched, Some th -> f sched th
  | _ -> ()

(** Charge local work without giving up the processor. Safe for purely
    thread-local computation: ordering of *shared* accesses is established
    only at yield points, which every shared access goes through. *)
let work cost = with_active (fun sched th -> local_charge sched th cost)

(* Charge [cost], announce [pending] and yield. All shared-memory
   accesses funnel through this, so it is also where a crash plan fires:
   the dying access is charged and counted, but the thread unwinds
   before the access is performed. *)
let consume_at pending cost =
  match (!active_sched, !active_thread) with
  | Some sched, Some th ->
      local_charge sched th cost;
      th.yields <- th.yields + 1;
      th.pending <- pending;
      sched.events <- sched.events + 1;
      if th.dead || th.doomed || th.yields >= th.crash_at then begin
        th.dead <- true;
        raise Thread_killed
      end;
      Effect.perform Yield
  | _ -> ()

(** Charge [cost] and yield; the thread resumes once the scheduling
    policy picks it (by default: once it has the smallest virtual
    clock). *)
let consume cost = consume_at None cost

(** Global count of shared-memory events so far: a logical clock that is
    consistent with the execution order under {e any} scheduling policy
    (per-thread virtual time is only globally meaningful under the
    default smallest-clock policy). 0 outside a simulation. *)
let events () =
  match !active_sched with Some sched -> sched.events | None -> 0

(** Report the execution of the shared access the calling thread had
    announced — called by {!Mem} {e after} the read/write/CAS actually
    happened, with [wrote] saying whether memory changed (a failed CAS
    reports [wrote:false]). Feeds the [~on_commit] observer; a no-op
    without one. *)
let commit ~cell ~kind ~wrote =
  match (!active_sched, !active_thread) with
  | Some { on_commit = Some f; _ }, Some th ->
      f ~tid:th.tid ~cell ~kind ~wrote
  | _ -> ()

(** [kill tid] crash-stops simulated thread [tid]: it will never execute
    another shared access. Killing the calling thread takes effect
    immediately (this call does not return); killing a peer takes effect
    before its next resumption. Only meaningful inside a simulation. *)
let kill tid =
  match !active_sched with
  | None -> invalid_arg "Sim.Sched.kill: no active simulation"
  | Some sched ->
      if tid < 0 || tid >= sched.nthreads then
        invalid_arg "Sim.Sched.kill: no such thread";
      let target = sched.threads.(tid) in
      target.doomed <- true;
      (match !active_thread with
      | Some th when th.tid = tid ->
          th.dead <- true;
          raise Thread_killed
      | _ -> ())

let access_cost (kind : access) ~hit =
  match !active_sched with
  | None -> 0
  | Some sched -> (
      let p = sched.profile in
      match (kind, hit) with
      | Read, true -> p.read_hit
      | Read, false -> p.read_miss
      | Write, true -> p.write_hit
      | Write, false -> p.write_miss
      | Cas, true -> p.cas_hit
      | Cas, false -> p.cas_miss)

(** [access_to ~cell kind ~hit] charges one shared-memory access to cell
    [cell] and yields. Also maintains the per-run access counters, which
    is what lets the benches report synchronization operations per
    data-structure op. The cell identity is what a schedule explorer
    keys conflicts on. *)
let access_to ~cell kind ~hit =
  (match !active_sched with
  | None -> ()
  | Some sched -> (
      match kind with
      | Read -> sched.reads <- sched.reads + 1
      | Write -> sched.writes <- sched.writes + 1
      | Cas -> sched.cases <- sched.cases + 1));
  consume_at (Some { cell; kind }) (access_cost kind ~hit)

(** [access kind ~hit] — {!access_to} for an anonymous cell. *)
let access kind ~hit = access_to ~cell:(-1) kind ~hit

let relax () = with_active (fun sched th -> local_charge sched th sched.profile.relax)

(* Ambient generator for code that runs between simulations (e.g. a
   structure being pre-populated before a run); deterministic so that
   setup phases are reproducible. *)
let ambient_rng = ref (Prng.create 0xA3B1E47L)

let seed_ambient seed = ambient_rng := Prng.create seed

(** Hash of simulated thread [tid]'s PRNG state. The liveness checker
    folds it into its state fingerprints: a thread that consumed
    randomness (backoff jitter, workload draws) is in a different control
    state even when shared memory looks identical. 0 outside a run. *)
let rng_fingerprint tid =
  match !active_sched with
  | Some sched when tid >= 0 && tid < sched.nthreads ->
      Prng.fingerprint sched.threads.(tid).rng
  | _ -> 0

let rand_int bound =
  match !active_thread with
  | Some th ->
      work (match !active_sched with Some s -> s.profile.local_op | None -> 0);
      Prng.int th.rng bound
  | None -> Prng.int !ambient_rng bound

(* ------------------------------------------------------------------ *)
(* The driver loop.                                                    *)

type outcome =
  | Finished
  | Died  (** unwound by {!Thread_killed} *)
  | Suspended of (unit, outcome) Effect.Shallow.continuation

let handler : (outcome, outcome) Effect.Shallow.handler =
  {
    retc = (fun o -> o);
    exnc = (function Thread_killed -> Died | e -> raise e);
    effc =
      (fun (type a) (e : a Effect.t) ->
        match e with
        | Yield ->
            Some
              (fun (k : (a, outcome) Effect.Shallow.continuation) ->
                Suspended k)
        | _ -> None);
  }

(* Unwind a suspended fiber by raising [Thread_killed] at its suspension
   point, running any cleanup handlers it installed. Cleanup code that
   yields again is unwound again ([th.dead] makes its next [consume]
   re-raise); cleanup exceptions are dropped — the thread is dead either
   way and the caller may already be propagating a primary exception. *)
let discontinue_thread th k =
  th.dead <- true;
  active_thread := Some th;
  let rec go k =
    match Effect.Shallow.discontinue_with k Thread_killed handler with
    | Finished | Died -> ()
    | Suspended k' -> go k'
    | exception _ -> ()
  in
  go k;
  active_thread := None

exception Concurrent_simulation

let run ?(profile = Profile.uniform) ?(seed = 42L) ?(crashes = [])
    ?watchdog ?policy ?on_commit ?(record_schedule = false) bodies =
  let n = Array.length bodies in
  if n = 0 then invalid_arg "Sim.Sched.run: no threads";
  if n > 64 then invalid_arg "Sim.Sched.run: at most 64 simulated threads";
  if !active_sched <> None then raise Concurrent_simulation;
  let threads =
    Array.init n (fun i ->
        {
          tid = i;
          rng = Prng.for_thread ~seed ~id:i;
          clock = 0;
          slice = 0;
          yields = 0;
          pending = None;
          crash_at = max_int;
          doomed = false;
          dead = false;
        })
  in
  List.iter
    (fun (tid, k) ->
      if tid < 0 || tid >= n then
        invalid_arg "Sim.Sched.run: crash plan names no such thread";
      if k < 1 then invalid_arg "Sim.Sched.run: crash access count must be >= 1";
      threads.(tid).crash_at <- min threads.(tid).crash_at k)
    crashes;
  let sched =
    {
      profile;
      nthreads = n;
      load = Profile.load_factor profile n;
      oversubscribed = n > profile.hw_threads;
      threads;
      on_commit;
      trace = [];
      events = 0;
      reads = 0;
      writes = 0;
      cases = 0;
    }
  in
  (* One pending continuation per thread; [None] once finished. *)
  let pending = Array.make n None in
  for i = 0 to n - 1 do
    let body = bodies.(i) in
    pending.(i) <- Some (Effect.Shallow.fiber (fun () -> body i; Finished))
  done;
  (* Pick the runnable thread with the smallest clock. Ties are broken by
     a rotating scan order: a fixed order (e.g. lowest tid) lets one thread
     keep winning CAS races from a cache-hot line, which starves the others
     far beyond what real arbitration does. *)
  let rr = ref 0 in
  let pick_default () =
    let best = ref (-1) in
    for off = 0 to n - 1 do
      let i = (!rr + off) mod n in
      if pending.(i) <> None
         && (!best < 0 || threads.(i).clock < threads.(!best).clock)
      then best := i
    done;
    incr rr;
    if !best < 0 then None else Some !best
  in
  let pick () =
    match policy with
    | None -> pick_default ()
    | Some choose ->
        let runnable = ref [] in
        for i = n - 1 downto 0 do
          if pending.(i) <> None then
            runnable := (i, threads.(i).pending) :: !runnable
        done;
        if !runnable = [] then None
        else begin
          let c = choose (Array.of_list !runnable) in
          if c < 0 || c >= n || pending.(c) = None then
            invalid_arg "Sim.Sched.run: policy chose a non-runnable thread";
          Some c
        end
  in
  let wedged = ref [] in
  active_sched := Some sched;
  let finish () =
    active_sched := None;
    active_thread := None
  in
  let unwind_pending () =
    Array.iteri
      (fun i k ->
        match k with
        | None -> ()
        | Some k ->
            pending.(i) <- None;
            discontinue_thread threads.(i) k)
      pending
  in
  (try
     let rec loop () =
       match pick () with
       | None -> ()
       | Some i ->
           let th = threads.(i) in
           let k = Option.get pending.(i) in
           pending.(i) <- None;
           if record_schedule then sched.trace <- i :: sched.trace;
           if th.doomed then begin
             discontinue_thread th k;
             loop ()
           end
           else if
             (* Under the default policy the picked thread has the
                smallest clock, so checking it checks every survivor; a
                custom policy picks arbitrarily, so check them all. *)
             match watchdog with
             | None -> false
             | Some w ->
                 th.clock > w
                 && (Option.is_none policy
                    || Array.for_all
                         (fun (t : thread) ->
                           pending.(t.tid) = None || t.clock > w)
                         threads)
           then begin
             (* [th] has the smallest clock of all runnable threads, so
                every one of them is past the bound: no survivor is
                making progress. Record and unwind them all. *)
             pending.(i) <- Some k;
             Array.iter
               (fun (th : thread) ->
                 if pending.(th.tid) <> None then
                   wedged := th.tid :: !wedged)
               threads;
             unwind_pending ()
           end
           else begin
             active_thread := Some th;
             (match Effect.Shallow.continue_with k () handler with
             | Finished -> ()
             | Died -> ()
             | Suspended k -> pending.(i) <- Some k);
             active_thread := None;
             loop ()
           end
     in
     loop ()
   with e ->
     (* An exception escaped one thread's body: unwind every other
        fiber's continuation (running their cleanup handlers) so nothing
        leaks, then propagate. *)
     unwind_pending ();
     finish ();
     raise e);
  finish ();
  let clocks = Array.map (fun th -> th.clock) threads in
  let span = Array.fold_left max 0 clocks in
  let accesses = Array.map (fun (th : thread) -> th.yields) threads in
  let yields = Array.fold_left ( + ) 0 accesses in
  let tids_where pred =
    Array.to_list threads
    |> List.filter_map (fun th -> if pred th then Some th.tid else None)
  in
  let wedged = List.sort compare !wedged in
  let killed =
    tids_where (fun th -> th.dead && not (List.mem th.tid wedged))
  in
  {
    span;
    clocks;
    yields;
    accesses;
    reads = sched.reads;
    writes = sched.writes;
    cases = sched.cases;
    killed;
    wedged;
    schedule = List.rev sched.trace;
  }
