(** Deterministic virtual-time scheduler for simulated threads.

    Each simulated thread is an effect-handler fiber. Shared-memory
    operations (in {!Mem}) charge a cost taken from the machine
    {!Profile} and perform the {!Yield} effect; the scheduler then always
    resumes the runnable thread with the smallest virtual clock. Because
    every shared access is a yield point, the execution is a sequentially
    consistent interleaving ordered by virtual time, and phenomena like
    failed-CAS retries, helping, lock convoys and cache-line ping-pong
    surface as extra virtual cycles exactly where the algorithms generate
    them.

    The scheduler is strictly single-OS-thread and fully deterministic in
    [(seed, thread bodies)]. At most one simulation can be active per
    domain at a time. *)

type access = Read | Write | Cas

type thread = {
  tid : int;
  rng : Prng.t;
  mutable clock : int;
  mutable slice : int;
  mutable yields : int;
}

type t = {
  profile : Profile.t;
  nthreads : int;
  load : float;
  oversubscribed : bool;
  mutable reads : int;
  mutable writes : int;
  mutable cases : int;  (* CAS-class operations: cas/exchange/fetch_add *)
}

type result = {
  span : int;  (** max final thread clock, in virtual cycles *)
  clocks : int array;
  yields : int;  (** total shared-memory events *)
  reads : int;  (** shared reads issued *)
  writes : int;  (** shared unconditional writes issued *)
  cases : int;  (** CAS-class read-modify-writes issued *)
}

type _ Effect.t += Yield : unit Effect.t

let active_sched : t option ref = ref None
let active_thread : thread option ref = ref None

let active () = !active_thread <> None

(* Outside a simulation (setup/teardown code) there is exactly one caller,
   the ambient thread; it reports id 0. *)
let tid () = match !active_thread with Some th -> th.tid | None -> 0

(** Virtual time of the calling thread. Event timestamps taken this way
    are globally comparable, which is what the linearizability tests use
    to build histories. *)
let now () = match !active_thread with Some th -> th.clock | None -> 0

(* Charge [cost] virtual cycles to the running thread, applying the load
   factor and, when oversubscribed, periodic preemption stalls with a
   deterministic pseudo-random jitter so threads do not stall in
   lockstep. *)
let local_charge sched th cost =
  let cost = int_of_float ((float_of_int cost *. sched.load) +. 0.5) in
  th.clock <- th.clock + cost;
  if sched.oversubscribed then begin
    th.slice <- th.slice + cost;
    let p = sched.profile in
    if th.slice >= p.quantum then begin
      th.slice <- 0;
      let over = sched.nthreads - p.hw_threads in
      let stall = p.stall * over / p.hw_threads in
      if stall > 0 then th.clock <- th.clock + stall + Prng.int th.rng stall
    end
  end

let with_active f =
  match (!active_sched, !active_thread) with
  | Some sched, Some th -> f sched th
  | _ -> ()

(** Charge local work without giving up the processor. Safe for purely
    thread-local computation: ordering of *shared* accesses is established
    only at yield points, which every shared access goes through. *)
let work cost = with_active (fun sched th -> local_charge sched th cost)

(** Charge [cost] and yield; the thread resumes once it has the smallest
    virtual clock. All shared-memory accesses funnel through this. *)
let consume cost =
  match (!active_sched, !active_thread) with
  | Some sched, Some th ->
      local_charge sched th cost;
      th.yields <- th.yields + 1;
      Effect.perform Yield
  | _ -> ()

let access_cost (kind : access) ~hit =
  match !active_sched with
  | None -> 0
  | Some sched -> (
      let p = sched.profile in
      match (kind, hit) with
      | Read, true -> p.read_hit
      | Read, false -> p.read_miss
      | Write, true -> p.write_hit
      | Write, false -> p.write_miss
      | Cas, true -> p.cas_hit
      | Cas, false -> p.cas_miss)

(** [access kind ~hit] charges one shared-memory access and yields.
    Also maintains the per-run access counters, which is what lets the
    benches report synchronization operations per data-structure op. *)
let access kind ~hit =
  (match !active_sched with
  | None -> ()
  | Some sched -> (
      match kind with
      | Read -> sched.reads <- sched.reads + 1
      | Write -> sched.writes <- sched.writes + 1
      | Cas -> sched.cases <- sched.cases + 1));
  consume (access_cost kind ~hit)

let relax () = with_active (fun sched th -> local_charge sched th sched.profile.relax)

(* Ambient generator for code that runs between simulations (e.g. a
   structure being pre-populated before a run); deterministic so that
   setup phases are reproducible. *)
let ambient_rng = ref (Prng.create 0xA3B1E47L)

let seed_ambient seed = ambient_rng := Prng.create seed

let rand_int bound =
  match !active_thread with
  | Some th ->
      work (match !active_sched with Some s -> s.profile.local_op | None -> 0);
      Prng.int th.rng bound
  | None -> Prng.int !ambient_rng bound

(* ------------------------------------------------------------------ *)
(* The driver loop.                                                    *)

type outcome =
  | Finished
  | Suspended of (unit, outcome) Effect.Shallow.continuation

let handler : (outcome, outcome) Effect.Shallow.handler =
  {
    retc = (fun o -> o);
    exnc = raise;
    effc =
      (fun (type a) (e : a Effect.t) ->
        match e with
        | Yield ->
            Some
              (fun (k : (a, outcome) Effect.Shallow.continuation) ->
                Suspended k)
        | _ -> None);
  }

exception Concurrent_simulation

let run ?(profile = Profile.uniform) ?(seed = 42L) bodies =
  let n = Array.length bodies in
  if n = 0 then invalid_arg "Sim.Sched.run: no threads";
  if n > 64 then invalid_arg "Sim.Sched.run: at most 64 simulated threads";
  if !active_sched <> None then raise Concurrent_simulation;
  let threads =
    Array.init n (fun i ->
        { tid = i; rng = Prng.for_thread ~seed ~id:i; clock = 0; slice = 0; yields = 0 })
  in
  let sched =
    {
      profile;
      nthreads = n;
      load = Profile.load_factor profile n;
      oversubscribed = n > profile.hw_threads;
      reads = 0;
      writes = 0;
      cases = 0;
    }
  in
  (* One pending continuation per thread; [None] once finished. *)
  let pending = Array.make n None in
  for i = 0 to n - 1 do
    let body = bodies.(i) in
    pending.(i) <- Some (Effect.Shallow.fiber (fun () -> body i; Finished))
  done;
  (* Pick the runnable thread with the smallest clock. Ties are broken by
     a rotating scan order: a fixed order (e.g. lowest tid) lets one thread
     keep winning CAS races from a cache-hot line, which starves the others
     far beyond what real arbitration does. *)
  let rr = ref 0 in
  let pick () =
    let best = ref (-1) in
    for off = 0 to n - 1 do
      let i = (!rr + off) mod n in
      if pending.(i) <> None
         && (!best < 0 || threads.(i).clock < threads.(!best).clock)
      then best := i
    done;
    incr rr;
    if !best < 0 then None else Some !best
  in
  active_sched := Some sched;
  let finish () =
    active_sched := None;
    active_thread := None
  in
  (try
     let rec loop () =
       match pick () with
       | None -> ()
       | Some i ->
           let th = threads.(i) in
           let k = Option.get pending.(i) in
           pending.(i) <- None;
           active_thread := Some th;
           (match Effect.Shallow.continue_with k () handler with
           | Finished -> ()
           | Suspended k -> pending.(i) <- Some k);
           active_thread := None;
           loop ()
     in
     loop ()
   with e ->
     finish ();
     raise e);
  finish ();
  let clocks = Array.map (fun th -> th.clock) threads in
  let span = Array.fold_left max 0 clocks in
  let yields =
    Array.fold_left (fun acc (th : thread) -> acc + th.yields) 0 threads
  in
  {
    span;
    clocks;
    yields;
    reads = sched.reads;
    writes = sched.writes;
    cases = sched.cases;
  }
