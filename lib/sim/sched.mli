(** Deterministic virtual-time scheduler for simulated threads.

    Each simulated thread is an effect-handler fiber. Shared-memory
    operations (in {!Mem}) charge a cost taken from the machine
    {!Profile} and yield; the scheduler always resumes the runnable
    thread with the smallest virtual clock, so the execution is a
    sequentially consistent interleaving ordered by virtual time. Failed
    CAS retries, helping, lock convoys and cache-line ping-pong all
    surface as extra virtual cycles exactly where the algorithms generate
    them.

    Crash-stop faults: threads can die — declaratively ([~crashes]), by
    {!kill}, or via the virtual-time watchdog — with their fibers
    unwound, not leaked, and the access they died at charged but not
    performed. See {!run}.

    Strictly single-OS-thread; at most one simulation is active per
    domain at a time; fully deterministic in
    [(seed, crash plan, thread bodies)]. *)

(** Classes of shared-memory access, charged differently by profiles. *)
type access = Read | Write | Cas

type result = {
  span : int;  (** max final thread clock, in virtual cycles *)
  clocks : int array;  (** per-thread final clocks *)
  yields : int;  (** total shared-memory events *)
  accesses : int array;
      (** per-thread shared-memory events; the crash-plan coordinate
          space: thread [i] can be crashed at any [k] in
          [\[1, accesses.(i)\]] of a fault-free run *)
  reads : int;  (** shared reads issued *)
  writes : int;  (** shared unconditional writes issued *)
  cases : int;  (** CAS-class read-modify-writes issued *)
  killed : int list;  (** tids crashed by plan or {!kill}, ascending *)
  wedged : int list;  (** tids stopped by the watchdog, ascending *)
}

exception Concurrent_simulation
(** Raised by {!run} when a simulation is already active. *)

exception Thread_killed
(** Raised inside a fiber to crash-stop it. Simulated code must let it
    propagate: catching it would resurrect a thread the fault plan
    declared dead. *)

val run :
  ?profile:Profile.t ->
  ?seed:int64 ->
  ?crashes:(int * int) list ->
  ?watchdog:int ->
  (int -> unit) array ->
  result
(** [run bodies] executes [bodies.(i) i] for every [i] as simulated
    threads (at most 64) and returns once all finish. Exceptions escaping
    a body abort the whole simulation — every other fiber is unwound
    first, so no continuation leaks — and propagate after the scheduler
    state is reset.

    [~crashes:\[(i, k); ...\]] crash-stops thread [i] at its [k]-th
    shared access (1-based): the access is charged and counted but not
    performed, and the thread never runs again — it dies still holding
    whatever descriptors or lock bits it had published. Duplicate
    entries for one thread keep the earliest crash point.

    [~watchdog:w] bounds virtual time: once every remaining runnable
    thread's clock exceeds [w], they are unwound and reported in
    [wedged] instead of being resumed — a crashed lock holder therefore
    produces a result that says who wedged, not a hang. Threads that
    finish before exceeding [w] are unaffected. *)

(* ---- primitives used by simulated code ---- *)

val active : unit -> bool
(** Is the caller executing inside a simulation? *)

val tid : unit -> int
(** Simulated thread id; 0 for the ambient (outside-simulation) caller. *)

val now : unit -> int
(** Virtual time of the calling thread; globally comparable across
    threads of one run. 0 outside a simulation. *)

val kill : int -> unit
(** [kill i] crash-stops simulated thread [i]: it will never execute
    another shared access, and its fiber is unwound rather than leaked.
    Killing the calling thread does not return (it raises
    {!Thread_killed} through the fiber); killing a peer takes effect
    before the peer's next resumption. Raises [Invalid_argument] outside
    a simulation. *)

val work : int -> unit
(** Charge local (thread-private) work without yielding. *)

val consume : int -> unit
(** Charge [cost] cycles and yield; no-op outside a simulation. This is
    also where crash plans fire — see {!run}. *)

val access_cost : access -> hit:bool -> int
(** Cost of one access under the active profile (0 when inactive). *)

val access : access -> hit:bool -> unit
(** Charge one shared-memory access, count it, and yield. *)

val relax : unit -> unit
(** A [cpu_relax] pause: local charge, no yield. *)

val rand_int : int -> int
(** Uniform draw from the calling thread's deterministic generator, or
    from the ambient generator outside a simulation. *)

val seed_ambient : int64 -> unit
(** Reseed the ambient generator used outside simulations, so setup
    phases (pre-population) are reproducible. *)
