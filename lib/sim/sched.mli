(** Deterministic virtual-time scheduler for simulated threads.

    Each simulated thread is an effect-handler fiber. Shared-memory
    operations (in {!Mem}) charge a cost taken from the machine
    {!Profile} and yield; the scheduler always resumes the runnable
    thread with the smallest virtual clock, so the execution is a
    sequentially consistent interleaving ordered by virtual time. Failed
    CAS retries, helping, lock convoys and cache-line ping-pong all
    surface as extra virtual cycles exactly where the algorithms generate
    them.

    Strictly single-OS-thread; at most one simulation is active per
    domain at a time; fully deterministic in [(seed, thread bodies)]. *)

(** Classes of shared-memory access, charged differently by profiles. *)
type access = Read | Write | Cas

type result = {
  span : int;  (** max final thread clock, in virtual cycles *)
  clocks : int array;  (** per-thread final clocks *)
  yields : int;  (** total shared-memory events *)
  reads : int;  (** shared reads issued *)
  writes : int;  (** shared unconditional writes issued *)
  cases : int;  (** CAS-class read-modify-writes issued *)
}

exception Concurrent_simulation
(** Raised by {!run} when a simulation is already active. *)

val run :
  ?profile:Profile.t -> ?seed:int64 -> (int -> unit) array -> result
(** [run bodies] executes [bodies.(i) i] for every [i] as simulated
    threads (at most 64) and returns once all finish. Exceptions escaping
    a body abort the whole simulation and propagate after the scheduler
    state is reset. *)

(* ---- primitives used by simulated code ---- *)

val active : unit -> bool
(** Is the caller executing inside a simulation? *)

val tid : unit -> int
(** Simulated thread id; 0 for the ambient (outside-simulation) caller. *)

val now : unit -> int
(** Virtual time of the calling thread; globally comparable across
    threads of one run. 0 outside a simulation. *)

val work : int -> unit
(** Charge local (thread-private) work without yielding. *)

val consume : int -> unit
(** Charge [cost] cycles and yield; no-op outside a simulation. *)

val access_cost : access -> hit:bool -> int
(** Cost of one access under the active profile (0 when inactive). *)

val access : access -> hit:bool -> unit
(** Charge one shared-memory access, count it, and yield. *)

val relax : unit -> unit
(** A [cpu_relax] pause: local charge, no yield. *)

val rand_int : int -> int
(** Uniform draw from the calling thread's deterministic generator, or
    from the ambient generator outside a simulation. *)

val seed_ambient : int64 -> unit
(** Reseed the ambient generator used outside simulations, so setup
    phases (pre-population) are reproducible. *)
