(** Deterministic virtual-time scheduler for simulated threads.

    Each simulated thread is an effect-handler fiber. Shared-memory
    operations (in {!Mem}) charge a cost taken from the machine
    {!Profile} and yield; the scheduler always resumes the runnable
    thread with the smallest virtual clock, so the execution is a
    sequentially consistent interleaving ordered by virtual time. Failed
    CAS retries, helping, lock convoys and cache-line ping-pong all
    surface as extra virtual cycles exactly where the algorithms generate
    them.

    Crash-stop faults: threads can die — declaratively ([~crashes]), by
    {!kill}, or via the virtual-time watchdog — with their fibers
    unwound, not leaked, and the access they died at charged but not
    performed. See {!run}.

    Strictly single-OS-thread; at most one simulation is active per
    domain at a time; fully deterministic in
    [(seed, crash plan, thread bodies)]. *)

(** Classes of shared-memory access, charged differently by profiles. *)
type access = Read | Write | Cas

(** The shared access a suspended thread announced just before yielding —
    the one it will perform the moment it is next resumed. [cell] is a
    {!Mem} cell identity ([-1] when unknown). A schedule explorer uses
    this to know every thread's next transition without running it. *)
type pending = { cell : int; kind : access }

type result = {
  span : int;  (** max final thread clock, in virtual cycles *)
  clocks : int array;  (** per-thread final clocks *)
  yields : int;  (** total shared-memory events *)
  accesses : int array;
      (** per-thread shared-memory events; the crash-plan coordinate
          space: thread [i] can be crashed at any [k] in
          [\[1, accesses.(i)\]] of a fault-free run *)
  reads : int;  (** shared reads issued *)
  writes : int;  (** shared unconditional writes issued *)
  cases : int;  (** CAS-class read-modify-writes issued *)
  killed : int list;  (** tids crashed by plan or {!kill}, ascending *)
  wedged : int list;  (** tids stopped by the watchdog, ascending *)
  schedule : int list;
      (** resumption order (chosen tid per scheduling decision), recorded
          only under [~record_schedule:true]; [[]] otherwise *)
}

(** Minimal counterexample serialization: a schedule — the tid resumed
    at each scheduling decision — as a run-length-encoded string like
    ["0*3.1.0*2"]. Replaying one (see {!replay}) reproduces the
    interleaving exactly, because everything else is deterministic in
    [(seed, bodies)]. This is the format [repro dpor --schedule] and the
    DPOR/chaos counterexample reports speak. *)
module Schedule : sig
  type nonrec t = int list

  val to_string : t -> string

  val of_string : string -> t
  (** Raises [Invalid_argument] on a malformed schedule string. *)

  val pp : Format.formatter -> t -> unit
end

(** A scheduling policy: given the runnable threads (ascending tid, with
    the access each will perform when resumed, if known), return the tid
    to resume. Exceptions raised by a policy abort the run like an
    exception escaping a thread body: every fiber is unwound first. *)
type policy = (int * pending option) array -> int

val replay : Schedule.t -> policy
(** [replay schedule] follows [schedule] while it lasts (skipping tids no
    longer runnable), then falls back to lowest-runnable-tid. Feeding a
    recorded [result.schedule] back reproduces that run. *)

exception Concurrent_simulation
(** Raised by {!run} when a simulation is already active. *)

exception Thread_killed
(** Raised inside a fiber to crash-stop it. Simulated code must let it
    propagate: catching it would resurrect a thread the fault plan
    declared dead. *)

val run :
  ?profile:Profile.t ->
  ?seed:int64 ->
  ?crashes:(int * int) list ->
  ?watchdog:int ->
  ?policy:policy ->
  ?on_commit:(tid:int -> cell:int -> kind:access -> wrote:bool -> unit) ->
  ?record_schedule:bool ->
  (int -> unit) array ->
  result
(** [run bodies] executes [bodies.(i) i] for every [i] as simulated
    threads (at most 64) and returns once all finish. Exceptions escaping
    a body abort the whole simulation — every other fiber is unwound
    first, so no continuation leaks — and propagate after the scheduler
    state is reset.

    [~policy] overrides the smallest-virtual-clock scheduler: at every
    scheduling decision it is handed the runnable threads and picks the
    next to resume. This is the hook the DPOR explorer ({!Check.explore})
    drives; cost accounting still runs, but per-thread virtual clocks are
    then only locally meaningful. With a policy present, [~watchdog]
    wedges the survivors only once {e every} runnable thread is past the
    bound.

    [~on_commit] observes every shared-memory access {e after} it
    executes: the accessing thread, the cell, the access class, and
    whether memory changed ([wrote:false] for reads and failed CASes).

    [~record_schedule:true] records the resumption order into
    [result.schedule] (off by default: a fig2-scale run has millions of
    scheduling decisions).

    [~crashes:\[(i, k); ...\]] crash-stops thread [i] at its [k]-th
    shared access (1-based): the access is charged and counted but not
    performed, and the thread never runs again — it dies still holding
    whatever descriptors or lock bits it had published. Duplicate
    entries for one thread keep the earliest crash point.

    [~watchdog:w] bounds virtual time: once every remaining runnable
    thread's clock exceeds [w], they are unwound and reported in
    [wedged] instead of being resumed — a crashed lock holder therefore
    produces a result that says who wedged, not a hang. Threads that
    finish before exceeding [w] are unaffected. *)

(* ---- primitives used by simulated code ---- *)

val active : unit -> bool
(** Is the caller executing inside a simulation? *)

val tid : unit -> int
(** Simulated thread id; 0 for the ambient (outside-simulation) caller. *)

val now : unit -> int
(** Virtual time of the calling thread; globally comparable across
    threads of one run. 0 outside a simulation. *)

val kill : int -> unit
(** [kill i] crash-stops simulated thread [i]: it will never execute
    another shared access, and its fiber is unwound rather than leaked.
    Killing the calling thread does not return (it raises
    {!Thread_killed} through the fiber); killing a peer takes effect
    before the peer's next resumption. Raises [Invalid_argument] outside
    a simulation. *)

val work : int -> unit
(** Charge local (thread-private) work without yielding. *)

val consume : int -> unit
(** Charge [cost] cycles and yield; no-op outside a simulation. This is
    also where crash plans fire — see {!run}. *)

val events : unit -> int
(** Global count of shared-memory events so far: a logical clock
    consistent with the execution order under {e any} scheduling policy
    (unlike {!now}, which is globally meaningful only under the default
    policy). 0 outside a simulation. *)

val access_cost : access -> hit:bool -> int
(** Cost of one access under the active profile (0 when inactive). *)

val access : access -> hit:bool -> unit
(** Charge one shared-memory access, count it, and yield. *)

val access_to : cell:int -> access -> hit:bool -> unit
(** {!access}, attributed to cell identity [cell] so schedule explorers
    can key conflicts on it. *)

val commit : cell:int -> kind:access -> wrote:bool -> unit
(** Report that the calling thread's announced access actually executed;
    forwards to the run's [~on_commit] observer, if any. Called by
    {!Mem} after performing each operation. *)

val relax : unit -> unit
(** A [cpu_relax] pause: local charge, no yield. *)

val rng_fingerprint : int -> int
(** [rng_fingerprint tid] hashes simulated thread [tid]'s PRNG state
    during an active run (0 otherwise). Liveness fingerprints include it
    so consuming randomness never looks like a repeated state. *)

val rand_int : int -> int
(** Uniform draw from the calling thread's deterministic generator, or
    from the ambient generator outside a simulation. *)

val seed_ambient : int64 -> unit
(** Reseed the ambient generator used outside simulations, so setup
    phases (pre-population) are reproducible. *)
