(** Stateless model checking of simulated programs.

    Replaces {!Sim.Sched}'s smallest-virtual-clock policy with a
    backtracking schedule explorer: dynamic partial-order reduction
    (Flanagan–Godefroid DPOR) with sleep sets, keyed on the per-cell
    access conflicts {!Sim.Mem} reports through [on_commit]. Exploration
    is restart-based: the program is re-executed from scratch for every
    schedule, with a forced prefix replayed and the suffix extended by a
    deterministic first-choice rule — exactly like dscheck, but over the
    simulator's fibers instead of real domains.

    A vector-clock happens-before engine runs over every trace twice:

    - the {e dependence} pass (full per-location SC order) feeds the DPOR
      backtrack analysis, pruning interleavings equivalent to one already
      explored;
    - the {e synchronization} pass treats only CAS-class operations and
      reads-from edges as synchronizing — plain [set] publishes but does
      not absorb — and reports unordered conflicting plain accesses as
      data races.

    Spinning threads are handled Nidhugg-style: a thread about to re-read
    a cell it has already read [spin_threshold] times with no intervening
    write is parked until someone writes that cell. This keeps TTAS-style
    spinlocks finitely explorable, and turns "every runnable thread is
    parked" into a deadlock verdict.

    Every failure carries the full schedule that produced it, in
    {!Sim.Sched.Schedule} syntax, replayable with {!run_schedule} or
    [repro dpor --schedule]. *)

type config = {
  max_schedules : int;  (** execution budget; the explorer stops (with
                            [complete = false]) once this many executions
                            have been launched. *)
  max_steps : int;  (** per-execution bound on scheduling decisions;
                        executions cut by it count as [diverged]. *)
  spin_threshold : int;
      (** consecutive same-cell stutter reads before a thread is parked
          as spinning; [0] disables parking (unbounded loops then hit
          [max_steps]). *)
  stall_threshold : int;
      (** consecutive reads (across {e any} cells) without a write by
          the thread itself, while nothing it has read meanwhile
          changed, before the thread is parked as stalled. Catches
          multi-cell wait loops the single-cell heuristic misses — an
          STM abort-retry cycle re-reading clock/lock/version until a
          holder unlocks. Larger than [spin_threshold] because long
          read-only phases (candidate probing) are normal. *)
  spin_cap : int;
      (** stutter reads before a thread parked with no runnable peers is
          declared deadlocked. Between the parking thresholds and
          [spin_cap] such a thread is let through with escalated
          thresholds: randomized probing (a mound insert re-probing one
          leaf) can stutter a few reads and then progress, where a
          genuine spin loop stutters to the cap. *)
  read_races : bool;
      (** also report unordered plain-read / plain-write pairs. Off by
          default: get-spin against a releasing [set] — the TTAS idiom —
          is exactly that shape and benign under the simulator's SC
          memory. Write-write races are always reported (but see
          [race_oracle]). *)
  race_oracle : bool;
      (** run the vector-clock race scan at all. On by default; turn it
          off for a program whose defect under test {e is} an unordered
          write pair (the lost-update mutants), so the semantic oracles
          — invariant and linearizability — get to pronounce on the
          damage instead of the race masking them on every trace. *)
  profile : Sim.Profile.t;
  seed : int64;
}

let default_config =
  {
    max_schedules = 50_000;
    max_steps = 5_000;
    spin_threshold = 3;
    stall_threshold = 16;
    spin_cap = 64;
    read_races = false;
    race_oracle = true;
    profile = Sim.Profile.uniform;
    seed = 42L;
  }

(** One concrete, freshly-built run of the program under test: thread
    bodies for {!Sim.Sched.run}, plus a verdict evaluated after the
    execution completes (outside the simulation — it may freely inspect
    or drain the structure). [None] means the execution was acceptable. *)
type instance = {
  bodies : (int -> unit) array;
  verdict : unit -> string option;
}

type program = { name : string; prepare : unit -> instance }

(** A committed shared-memory access, as reported by {!Sim.Sched.commit}:
    the conflict alphabet of the explorer. [wrote = false] for reads and
    failed CASes. *)
type event = {
  step : int;
  tid : int;
  cell : int;
  kind : Sim.Sched.access;
  wrote : bool;
  stutter : bool;
      (** a re-read observing a value unchanged since this thread last
          read the cell. Spin and retry loops emit these; they are
          assumed side-effect-free, so the backtrack analysis does not
          explore a conflicting write's position {e within} a stutter
          streak — only against the streak's first read. Without this
          the release-write of a lock-holder is planted at every
          iteration of a waiter's spin, and exploration diverges. *)
}

type race = { cell : int; first : event; second : event }

type failure =
  | Invariant of string  (** the program's own verdict rejected the run *)
  | Race of race
  | Deadlock of int list  (** every runnable thread parked spinning *)
  | Diverged  (** execution exceeded [max_steps] decisions *)

type counterexample = { schedule : Sim.Sched.Schedule.t; failure : failure }

type report = {
  program : string;
  schedules : int;  (** executions launched (incl. pruned/aborted) *)
  complete_runs : int;  (** executions that ran to completion *)
  sleep_prunes : int;  (** subtrees skipped as sleep-set-redundant *)
  backtracks : int;  (** backtrack points planted by the HB analysis *)
  steps : int;  (** scheduling decisions across all executions *)
  max_trace : int;  (** longest execution, in decisions *)
  diverged : int;  (** executions cut by [max_steps] *)
  complete : bool;  (** the whole reduced space fit in the budget *)
  counterexample : counterexample option;
}

let pp_failure ppf = function
  | Invariant msg -> Format.fprintf ppf "invariant violation: %s" msg
  | Race { cell; first; second } ->
      Format.fprintf ppf
        "data race on cell %d: t%d %s at step %d unordered with t%d %s at \
         step %d"
        cell first.tid
        (match first.kind with Read -> "read" | Write -> "write" | Cas -> "cas")
        first.step second.tid
        (match second.kind with
        | Read -> "read"
        | Write -> "write"
        | Cas -> "cas")
        second.step
  | Deadlock tids ->
      Format.fprintf ppf "deadlock: threads [%s] all parked spinning"
        (String.concat "; " (List.map string_of_int tids))
  | Diverged -> Format.fprintf ppf "divergence: step bound exceeded"

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %d schedules (%d complete, %d sleep-pruned, %d diverged), %d \
     backtrack points, %d steps (max trace %d), %s"
    r.program r.schedules r.complete_runs r.sleep_prunes r.diverged
    r.backtracks r.steps r.max_trace
    (if r.complete then "exhaustive" else "budget-bounded");
  match r.counterexample with
  | None -> Format.fprintf ppf ", no failure"
  | Some { schedule; failure } ->
      Format.fprintf ppf ", FAILED (%a) schedule %s" pp_failure failure
        (Sim.Sched.Schedule.to_string schedule)

(* ---- vector clocks ---------------------------------------------------- *)

module Vc = struct
  let make n = Array.make n 0
  let copy = Array.copy

  let join a b =
    for i = 0 to Array.length a - 1 do
      if b.(i) > a.(i) then a.(i) <- b.(i)
    done

  let leq a b =
    let ok = ref true in
    for i = 0 to Array.length a - 1 do
      if a.(i) > b.(i) then ok := false
    done;
    !ok
end

(* ---- explorer --------------------------------------------------------- *)

(* Thread sets are int bitmasks: the simulator caps runs at 64 threads
   and DPOR programs are far smaller. *)
let bit t = 1 lsl t

let mask_to_list m =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if m land bit i <> 0 then i :: acc else acc)
  in
  go 62 []

(* One node per scheduling decision on the current path. [backtrack] and
   [tried] persist across re-executions of the prefix; [enabled], [sleep]
   and [ev] are refreshed each time the prefix is replayed (determinism
   makes the refresh a no-op except after truncation). *)
type node = {
  mutable chosen : int;
  mutable ev : event option;  (** the slice's committed access, if any *)
  mutable enabled : int;  (** runnable and not spin-parked, pre-state *)
  mutable sleep : int;
  mutable backtrack : int;
  mutable tried : int;  (** includes [chosen] *)
}

type abort_reason =
  | Abort_sleep  (** every enabled thread asleep: redundant subtree *)
  | Abort_steps
  | Abort_deadlock of int list

exception Abort of abort_reason

(* Internal per-execution scheduling state: spin detection + the commit
   hook's cursor into the node stack. *)
type exec = {
  stack : node array ref;
  mutable len : int;  (** nodes filled this execution *)
  forced : int;  (** prefix length to replay before extending *)
  (* lint: allow — the explorer itself is sequential: [exec] is the
     model checker's per-execution bookkeeping, mutated by exactly one
     thread of control (only the simulated program is concurrent), so
     co-located mutable words cannot ping-pong between cores *)
  mutable depth : int;  (** decisions taken so far *)
  mutable sleep_cur : int;
  last_cell : int array;  (** per-thread cell of the current read streak *)
  streak : int array;  (** consecutive stutter reads of [last_cell] *)
  snap : int array;  (** write count of [last_cell] at streak start *)
  thr : int array;  (** per-thread parking threshold, escalated when a
                        parked thread is the only way forward *)
  fp : (int, int) Hashtbl.t array;
      (** per-thread read footprint since its last write: cell -> write
          count when last read. A thread whose footprint is entirely
          unchanged is re-deriving the same values. *)
  ro_streak : int array;  (** consecutive reads since the thread's own
                              last write, across all cells *)
  stall_thr : int array;  (** footprint parking threshold, escalated
                              like [thr] *)
  writes : (int, int) Hashtbl.t;  (** per-cell write counter *)
  cfg : config;
}

let node_at ex i = !(ex.stack).(i)

let push_node ex n =
  let st = !(ex.stack) in
  if ex.len = Array.length st then begin
    let st' = Array.make (max 16 (2 * ex.len)) n in
    Array.blit st 0 st' 0 ex.len;
    ex.stack := st'
  end;
  !(ex.stack).(ex.len) <- n;
  ex.len <- ex.len + 1

let write_count ex cell = try Hashtbl.find ex.writes cell with Not_found -> 0

(* Would thread [t]'s announced access commute with committed event [e]?
   Unknown pendings are treated as conflicting (wakes the sleeper: less
   pruning, never unsound). A pending CAS counts as a potential write. *)
let independent (pending : Sim.Sched.pending option) (e : event option) =
  match (pending, e) with
  | _, None -> true (* a slice with no shared access commutes with all *)
  | None, _ -> false
  | Some p, Some e ->
      p.cell <> e.cell
      || ((match p.kind with Read -> true | Write | Cas -> false)
         && not e.wrote)

(* Multi-cell stall: [t] has read [stall_thr] times in a row without
   writing anything itself, and no cell it read meanwhile has changed —
   it is re-deriving the same values (an STM abort-retry cycle walking
   clock/size/lock, say) and will keep doing so until someone writes. *)
let stalled ex t =
  ex.ro_streak.(t) >= ex.stall_thr.(t)
  && Hashtbl.fold
       (fun cell wc ok -> ok && write_count ex cell = wc)
       ex.fp.(t) true

(* Is runnable thread [t], with pending [p], parked as a spinner? *)
let parked ex t (p : Sim.Sched.pending option) =
  ex.cfg.spin_threshold > 0
  && match p with
     | Some { kind = Read; cell } ->
         (ex.last_cell.(t) = cell
          && ex.streak.(t) >= ex.thr.(t)
          && write_count ex cell = ex.snap.(t))
         || stalled ex t
     | _ -> false

(* The scheduling policy for one exploration execution. Replays the
   forced prefix, then extends by the lowest enabled non-sleeping tid,
   maintaining sleep sets as it goes. *)
let make_policy ex : Sim.Sched.policy =
 fun runnable ->
  (* Age the sleep set past the previous decision's event: siblings
     already fully explored at the parent go to sleep; anything
     dependent on what just executed wakes up. *)
  if ex.depth > 0 then begin
    let prev = node_at ex (ex.depth - 1) in
    let base = ex.sleep_cur lor (prev.tried land lnot (bit prev.chosen)) in
    let kept = ref 0 in
    Array.iter
      (fun (t, p) ->
        if base land bit t <> 0 && independent p prev.ev then
          kept := !kept lor bit t)
      runnable;
    ex.sleep_cur <- !kept
  end;
  let enabled = ref 0 and all = ref 0 in
  Array.iter
    (fun (t, p) ->
      all := !all lor bit t;
      if not (parked ex t p) then enabled := !enabled lor bit t)
    runnable;
  if !enabled = 0 then begin
    (* Everyone runnable is parked spinning. Escalate the least-stuck
       thread rather than cry deadlock outright: a randomized prober
       will move on within a few more reads, a true spin loop will
       stutter to the cap. *)
    let best = ref (-1) in
    Array.iter
      (fun (t, _) ->
        if !best < 0 || ex.ro_streak.(t) < ex.ro_streak.(!best) then
          best := t)
      runnable;
    if ex.ro_streak.(!best) >= ex.cfg.spin_cap then
      raise (Abort (Abort_deadlock (mask_to_list !all)));
    ex.thr.(!best) <- ex.streak.(!best) + ex.cfg.spin_threshold;
    ex.stall_thr.(!best) <- ex.ro_streak.(!best) + ex.cfg.stall_threshold;
    enabled := bit !best
  end;
  if ex.depth >= ex.cfg.max_steps then raise (Abort Abort_steps);
  let choice =
    if ex.depth < ex.forced then begin
      (* Replay: the stored choice must still be runnable — the prefix
         is deterministic, so anything else is a bug, not a race. A
         merely parked thread may be forced: parking is a search
         heuristic, not semantics, and a backtrack point deliberately
         runs a thread past where extension would park it. *)
      let n = node_at ex ex.depth in
      if !all land bit n.chosen = 0 then
        invalid_arg "Check: replayed prefix diverged";
      n.enabled <- !enabled lor bit n.chosen;
      n.sleep <- ex.sleep_cur;
      n.ev <- None;
      ex.len <- ex.depth + 1;
      n.chosen
    end
    else begin
      let free = !enabled land lnot ex.sleep_cur in
      if free = 0 then raise (Abort Abort_sleep);
      let c = ref 0 in
      while free land bit !c = 0 do
        incr c
      done;
      push_node ex
        {
          chosen = !c;
          ev = None;
          enabled = !enabled;
          sleep = ex.sleep_cur;
          backtrack = bit !c;
          tried = bit !c;
        };
      !c
    end
  in
  ex.depth <- ex.depth + 1;
  choice

(* The commit hook: attach the executed access to the slice that
   performed it and maintain the spin-streak bookkeeping. *)
let make_on_commit ex ~tid ~cell ~kind ~wrote =
  let n = node_at ex (ex.depth - 1) in
  (* Observing a cell for the first time, or changed since this thread
     last read it, is fresh information — progress. Only a re-read of
     unchanged values is a stutter, advancing the stall counter. A
     failed CAS is read-like: it observed the cell and failed the same
     way it would have last time, so it stutters too (a lock-acquire
     loop retrying CAS against a held lock). *)
  let readlike = not wrote && kind <> Sim.Sched.Write in
  let fresh_info =
    (not readlike)
    ||
    match Hashtbl.find_opt ex.fp.(tid) cell with
    | None -> true
    | Some old -> old <> write_count ex cell
  in
  n.ev <-
    Some
      { step = ex.depth - 1; tid; cell; kind; wrote;
        stutter = (readlike && not fresh_info) };
  if wrote then Hashtbl.replace ex.writes cell (write_count ex cell + 1);
  (match kind with
  | Read ->
      if ex.last_cell.(tid) = cell && write_count ex cell = ex.snap.(tid)
      then ex.streak.(tid) <- ex.streak.(tid) + 1
      else begin
        ex.last_cell.(tid) <- cell;
        ex.streak.(tid) <- 1;
        ex.snap.(tid) <- write_count ex cell;
        ex.thr.(tid) <- ex.cfg.spin_threshold
      end
  | Write | Cas ->
      ex.last_cell.(tid) <- -1;
      ex.streak.(tid) <- 0;
      ex.thr.(tid) <- ex.cfg.spin_threshold);
  if readlike then begin
    Hashtbl.replace ex.fp.(tid) cell (write_count ex cell);
    if fresh_info then begin
      ex.ro_streak.(tid) <- 1;
      ex.stall_thr.(tid) <- ex.cfg.stall_threshold
    end
    else ex.ro_streak.(tid) <- ex.ro_streak.(tid) + 1
  end
  else begin
    Hashtbl.reset ex.fp.(tid);
    ex.ro_streak.(tid) <- 0;
    ex.stall_thr.(tid) <- ex.cfg.stall_threshold
  end

(* ---- trace analyses --------------------------------------------------- *)

let trace_events ex =
  let evs = ref [] in
  for i = ex.len - 1 downto 0 do
    match (node_at ex i).ev with Some e -> evs := e :: !evs | None -> ()
  done;
  !evs

(* DPOR backtrack analysis over one trace, full-dependence vector clocks.
   For each event, find the last conflicting event by another thread not
   already happens-before the acting thread, and plant a backtrack point
   just before it. Earlier races surface transitively in later
   executions. Returns the number of new backtrack bits planted. *)
let analyze_backtracks ex nthreads =
  let vc = Array.init nthreads (fun _ -> Vc.make nthreads) in
  let step_clock = Hashtbl.create 64 in
  (* cell -> last-write (step, tid, write count before it) *)
  let last_w = Hashtbl.create 64 in
  (* cell -> per-thread last read step: [last_r] for planting skips the
     stutter re-reads of a spin streak (flipping a write into the middle
     of a streak is equivalent to flipping it before the streak's first
     read); [last_r_vc] keeps every read so the happens-before clocks
     stay exact. *)
  let last_r = Hashtbl.create 64 and last_r_vc = Hashtbl.create 64 in
  let wc = Hashtbl.create 64 in (* cell -> writes so far in this walk *)
  (* thread -> cell -> (write count, thread-local event index) at its
     last read of the cell *)
  let seen = Array.init nthreads (fun _ -> Hashtbl.create 16) in
  (* per-thread event count, and index of the last "break" — a write,
     CAS, or fresh read: anything after which the thread's local state
     is not just another spin iteration *)
  let idx = Array.make nthreads 0 in
  let last_break = Array.make nthreads (-1) in
  let count c = try Hashtbl.find wc c with Not_found -> 0 in
  let planted = ref 0 in
  let plant step p =
    let n = node_at ex step in
    let add =
      if n.enabled land bit p <> 0 then bit p else n.enabled
    in
    let fresh = add land lnot n.backtrack in
    if fresh <> 0 then begin
      n.backtrack <- n.backtrack lor fresh;
      incr planted
    end
  in
  let reads_of tbl cell =
    match Hashtbl.find_opt tbl cell with
    | Some r -> r
    | None ->
        let r = Array.make nthreads (-1) in
        Hashtbl.replace tbl cell r;
        r
  in
  List.iter
    (fun e ->
      let p = e.tid in
      (* last conflicting step by another thread *)
      let conflict = ref (-1) in
      let conflict_is_w = ref false in
      (match Hashtbl.find_opt last_w e.cell with
      | Some (j, q, _) when q <> p ->
          conflict := j;
          conflict_is_w := true
      | _ -> ());
      if e.wrote then
        (match Hashtbl.find_opt last_r e.cell with
        | Some reads ->
            Array.iteri
              (fun q j ->
                if q <> p && j > !conflict then begin
                  conflict := j;
                  conflict_is_w := false
                end)
              reads
        | None -> ());
      (* Moving a read back across its reads-from write is pointless
         when (a) the pre-write value is exactly what the thread last
         read there, and (b) the thread has done nothing but stutter
         since that previous read — then the moved read is one more
         iteration of the spin the write just ended. Without this skip,
         each release write gets a "read before it" flip planted, whose
         trace spins one iteration longer and plants the next —
         exploration never converges. Condition (b) is what keeps this
         sound: any intervening write or fresh read means the thread's
         continuation could genuinely differ, and the flip is kept. *)
      let moved_read_stutters () =
        (not e.wrote) && e.kind <> Write && !conflict_is_w
        &&
        match
          (Hashtbl.find_opt last_w e.cell, Hashtbl.find_opt seen.(p) e.cell)
        with
        | Some (_, _, before), Some (prev_count, prev_idx) ->
            prev_count = before && last_break.(p) <= prev_idx
        | _ -> false
      in
      (if !conflict >= 0 && not (moved_read_stutters ()) then
         let cj = Hashtbl.find step_clock !conflict in
         if not (Vc.leq cj vc.(p)) then plant !conflict p);
      (* advance the dependence clocks *)
      vc.(p).(p) <- vc.(p).(p) + 1;
      (match Hashtbl.find_opt last_w e.cell with
      | Some (j, _, _) -> Vc.join vc.(p) (Hashtbl.find step_clock j)
      | None -> ());
      if e.wrote then begin
        (match Hashtbl.find_opt last_r_vc e.cell with
        | Some reads ->
            Array.iter
              (fun j ->
                if j >= 0 then Vc.join vc.(p) (Hashtbl.find step_clock j))
              reads
        | None -> ());
        Hashtbl.replace last_w e.cell (e.step, p, count e.cell);
        Hashtbl.replace wc e.cell (count e.cell + 1)
      end
      else begin
        (* A stutter read is skipped as a plant target only when the
           thread has been purely stuttering since its previous read of
           this cell — same condition as [moved_read_stutters], mirrored:
           a write flipped into the middle of such a streak is the same
           as flipping it before the streak. *)
        let pure_stutter =
          e.stutter
          &&
          match Hashtbl.find_opt seen.(p) e.cell with
          | Some (_, prev_idx) -> last_break.(p) <= prev_idx
          | None -> false
        in
        if not pure_stutter then (reads_of last_r e.cell).(p) <- e.step;
        (reads_of last_r_vc e.cell).(p) <- e.step
      end;
      if (not e.wrote) && e.kind <> Write then
        Hashtbl.replace seen.(p) e.cell (count e.cell, idx.(p));
      if not e.stutter then last_break.(p) <- idx.(p);
      idx.(p) <- idx.(p) + 1;
      Hashtbl.replace step_clock e.step (Vc.copy vc.(p)))
    (trace_events ex);
  !planted

(* Race detection over one trace, synchronization-only vector clocks:
   CAS-class operations acquire and (when they write) release; a read
   acquires through its reads-from edge; a plain [set] releases but does
   not absorb. A plain write unordered with the previous plain write is a
   write-write race; with [read_races], unabsorbed earlier plain reads
   race against it too. *)
let find_race ~read_races events nthreads =
  let s = Array.init nthreads (fun _ -> Vc.make nthreads) in
  let published = Hashtbl.create 64 in (* cell -> release clock *)
  let last_plain_w = Hashtbl.create 64 in (* cell -> event * clock *)
  let last_plain_r = Hashtbl.create 64 in
  (* cell -> (event * clock) option array, per thread *)
  let found = ref None in
  (try
     List.iter
       (fun e ->
         let p = e.tid in
         s.(p).(p) <- s.(p).(p) + 1;
         let absorb () =
           match Hashtbl.find_opt published e.cell with
           | Some c -> Vc.join s.(p) c
           | None -> ()
         in
         let release () =
           let c =
             match Hashtbl.find_opt published e.cell with
             | Some c -> c
             | None ->
                 let c = Vc.make nthreads in
                 Hashtbl.replace published e.cell c;
                 c
           in
           Vc.join c s.(p)
         in
         match e.kind with
         | Read ->
             absorb ();
             let slot =
               match Hashtbl.find_opt last_plain_r e.cell with
               | Some a -> a
               | None ->
                   let a = Array.make nthreads None in
                   Hashtbl.replace last_plain_r e.cell a;
                   a
             in
             slot.(p) <- Some (e, Vc.copy s.(p))
         | Cas ->
             absorb ();
             if e.wrote then release ()
         | Write ->
             (match Hashtbl.find_opt last_plain_w e.cell with
             | Some (w, c) when w.tid <> p && not (Vc.leq c s.(p)) ->
                 found := Some { cell = e.cell; first = w; second = e };
                 raise Exit
             | _ -> ());
             if read_races then
               (match Hashtbl.find_opt last_plain_r e.cell with
               | Some slots ->
                   Array.iteri
                     (fun q slot ->
                       match slot with
                       | Some (r, c) when q <> p && not (Vc.leq c s.(p)) ->
                           found :=
                             Some { cell = e.cell; first = r; second = e };
                           raise Exit
                       | _ -> ())
                     slots
               | None -> ());
             release ();
             Hashtbl.replace last_plain_w e.cell (e, Vc.copy s.(p)))
       events
   with Exit -> ());
  !found

(* ---- driver ----------------------------------------------------------- *)

let schedule_of ex len =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (node_at ex i :: acc)
  in
  List.map (fun n -> n.chosen) (go (len - 1) [])

(* Pick the next (deepest) unexplored backtrack candidate; marks
   sleep-set candidates tried without executing them. Returns the new
   forced prefix length, or [None] when the space is exhausted.
   [prunes] is bumped per candidate retired by its sleep set. *)
let next_choice ex prunes =
  let rec at d =
    if d < 0 then None
    else begin
      let n = node_at ex d in
      let fresh () = n.backtrack land lnot n.tried in
      let rec take () =
        let c = fresh () in
        if c = 0 then at (d - 1)
        else begin
          let t = ref 0 in
          while c land bit !t = 0 do
            incr t
          done;
          n.tried <- n.tried lor bit !t;
          if n.sleep land bit !t <> 0 then begin
            incr prunes;
            take ()
          end
          else begin
            n.chosen <- !t;
            n.ev <- None;
            Some (d + 1)
          end
        end
      in
      take ()
    end
  in
  at (ex.len - 1)

let explore ?(config = default_config) (program : program) =
  let stack = ref [||] in
  let schedules = ref 0
  and complete_runs = ref 0
  and prunes = ref 0
  and backtracks = ref 0
  and steps = ref 0
  and max_trace = ref 0
  and diverged = ref 0 in
  let counterexample = ref None in
  let complete = ref false in
  let forced = ref 0 in
  let nthreads = ref 1 in
  (try
     let continue = ref true in
     while !continue do
       if !schedules >= config.max_schedules then begin
         continue := false (* budget out; [complete] stays false *)
       end
       else begin
         incr schedules;
         let inst = program.prepare () in
         nthreads := max !nthreads (Array.length inst.bodies);
         let ex =
           {
             stack;
             len = 0;
             forced = !forced;
             depth = 0;
             sleep_cur = 0;
             last_cell = Array.make (Array.length inst.bodies) (-1);
             streak = Array.make (Array.length inst.bodies) 0;
             snap = Array.make (Array.length inst.bodies) 0;
             thr = Array.make (Array.length inst.bodies) config.spin_threshold;
             fp =
               Array.init (Array.length inst.bodies) (fun _ ->
                   Hashtbl.create 16);
             ro_streak = Array.make (Array.length inst.bodies) 0;
             stall_thr =
               Array.make (Array.length inst.bodies) config.stall_threshold;
             writes = Hashtbl.create 64;
             cfg = config;
           }
         in
         let outcome =
           match
             Sim.Sched.run ~profile:config.profile ~seed:config.seed
               ~policy:(make_policy ex) ~on_commit:(make_on_commit ex)
               inst.bodies
           with
           | (_ : Sim.Sched.result) -> Ok ()
           | exception Abort r -> Error r
         in
         steps := !steps + ex.depth;
         if ex.depth > !max_trace then max_trace := ex.depth;
         (* Plant backtrack points from whatever trace we saw — aborted
            prefixes included; their events are real. *)
         backtracks :=
           !backtracks + analyze_backtracks ex (Array.length inst.bodies);
         let fail f =
           counterexample :=
             Some { schedule = schedule_of ex ex.len; failure = f };
           raise Exit
         in
         (if config.race_oracle then
            match
              find_race ~read_races:config.read_races (trace_events ex)
                (Array.length inst.bodies)
            with
            | Some r -> fail (Race r)
            | None -> ());
         (match outcome with
         | Ok () -> begin
             incr complete_runs;
             match inst.verdict () with
             | Some msg -> fail (Invariant msg)
             | None -> ()
           end
         | Error Abort_sleep -> incr prunes
         | Error Abort_steps ->
             incr diverged;
             fail Diverged
         | Error (Abort_deadlock tids) -> fail (Deadlock tids));
         match next_choice ex prunes with
         | Some f -> forced := f
         | None ->
             complete := true;
             continue := false
       end
     done
   with Exit -> ());
  {
    program = program.name;
    schedules = !schedules;
    complete_runs = !complete_runs;
    sleep_prunes = !prunes;
    backtracks = !backtracks;
    steps = !steps;
    max_trace = !max_trace;
    diverged = !diverged;
    complete = !complete;
    counterexample = !counterexample;
  }

(* ---- single-schedule replay ------------------------------------------- *)

type replay_outcome = {
  followed : int;  (** decisions taken during the replayed run *)
  wedged : int list;  (** threads stopped by the replay watchdog *)
  replay_failure : failure option;
  trace : event list;  (** every committed access, in execution order *)
}

(** Re-execute one schedule (e.g. a counterexample's) under
    {!Sim.Sched.replay}, with the same race scan and verdict as the
    explorer. Past the end of the schedule the run continues under the
    default lowest-tid rule with no spin parking, so a watchdog bounds
    runaway spinning: a deadlock counterexample replays as a wedge. *)
let run_schedule ?(config = default_config) ?(watchdog = 10_000_000)
    (program : program) schedule =
  let inst = program.prepare () in
  let events = ref [] in
  let nsteps = ref 0 in
  let base = Sim.Sched.replay schedule in
  let policy runnable =
    incr nsteps;
    base runnable
  in
  let on_commit ~tid ~cell ~kind ~wrote =
    events :=
      { step = !nsteps - 1; tid; cell; kind; wrote; stutter = false }
      :: !events
  in
  let res =
    Sim.Sched.run ~profile:config.profile ~seed:config.seed ~policy
      ~on_commit ~watchdog inst.bodies
  in
  let events = List.rev !events in
  let failure =
    match
      if config.race_oracle then
        find_race ~read_races:config.read_races events
          (Array.length inst.bodies)
      else None
    with
    | Some r -> Some (Race r)
    | None -> (
        if res.wedged <> [] then None
        else
          match inst.verdict () with
          | Some msg -> Some (Invariant msg)
          | None -> None)
  in
  { followed = !nsteps; wedged = res.wedged; replay_failure = failure;
    trace = events }
