(** Stateless model checking of simulated concurrent programs.

    {!explore} re-executes a {!program} under every schedule the dynamic
    partial-order reduction deems inequivalent — Flanagan–Godefroid
    backtracking with sleep sets over {!Sim.Sched}'s policy hook, keyed
    on the per-cell conflicts {!Sim.Mem} commits — and checks each
    complete execution with the program's own verdict, each trace with a
    vector-clock data-race detector, and each scheduling decision for
    spin-deadlock. Failures carry a replayable schedule
    ({!Sim.Sched.Schedule} syntax); {!run_schedule} replays one. *)

type config = {
  max_schedules : int;  (** execution budget; exceeded → [complete=false] *)
  max_steps : int;  (** per-execution decision bound *)
  spin_threshold : int;
      (** stutter reads before a spinning thread is parked; 0 = off *)
  stall_threshold : int;
      (** consecutive reads without an own write, with an unchanged read
          footprint, before a thread is parked as stalled — catches
          multi-cell wait loops (STM abort-retry) the single-cell
          heuristic misses *)
  spin_cap : int;
      (** stutter reads before a thread parked with no runnable peers
          is declared deadlocked; below it the least-stuck thread is
          escalated and let through (randomized probing stutters a few
          reads then progresses; a genuine spin loop hits the cap) *)
  read_races : bool;
      (** also flag unordered plain-read/plain-write pairs (the TTAS
          get-spin idiom trips this, hence off by default); unordered
          plain write/write pairs are always flagged while the race
          oracle runs *)
  race_oracle : bool;
      (** run the vector-clock race scan at all (default [true]). Turn
          it off for a program whose defect under test {e is} an
          unordered write pair — e.g. a seeded lost-update mutant —
          so the semantic oracles (invariant, linearizability) report
          the damage instead of the race pre-empting them on every
          trace *)
  profile : Sim.Profile.t;
  seed : int64;
}

val default_config : config
(** 50k schedules, 5k steps, spin threshold 3, stall threshold 16, no
    read races, race oracle on, uniform profile, seed 42. *)

(** A fresh run of the program under test. [verdict] is evaluated after
    the execution completes, outside the simulation; [None] = pass. *)
type instance = {
  bodies : (int -> unit) array;
  verdict : unit -> string option;
}

type program = { name : string; prepare : unit -> instance }

(** A committed shared access ([wrote=false]: read or failed CAS). *)
type event = {
  step : int;
  tid : int;
  cell : int;
  kind : Sim.Sched.access;
  wrote : bool;
  stutter : bool;
      (** read or failed CAS observing a value unchanged since this
          thread last observed the cell (a spin/retry iteration);
          assumed side-effect-free and not treated as a backtrack
          target when the streak around it is pure *)
}

type race = { cell : int; first : event; second : event }

type failure =
  | Invariant of string
  | Race of race
  | Deadlock of int list  (** every runnable thread parked spinning *)
  | Diverged

type counterexample = { schedule : Sim.Sched.Schedule.t; failure : failure }

type report = {
  program : string;
  schedules : int;  (** executions launched, incl. pruned/aborted *)
  complete_runs : int;
  sleep_prunes : int;  (** redundant subtrees skipped via sleep sets *)
  backtracks : int;  (** backtrack points planted by the HB analysis *)
  steps : int;
  max_trace : int;
  diverged : int;
  complete : bool;  (** whole reduced space explored within budget *)
  counterexample : counterexample option;
}

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit

val explore : ?config:config -> program -> report
(** Explore until a failure, exhaustion of the reduced schedule space
    ([complete = true]), or the budget runs out. *)

type replay_outcome = {
  followed : int;  (** scheduling decisions taken *)
  wedged : int list;  (** threads stopped by the replay watchdog *)
  replay_failure : failure option;
  trace : event list;  (** every committed access, in execution order *)
}

val run_schedule :
  ?config:config -> ?watchdog:int -> program -> Sim.Sched.Schedule.t ->
  replay_outcome
(** Re-execute one schedule (a counterexample, say) with the same race
    scan and verdict as the explorer. Past the schedule's end the run
    continues under the default lowest-tid rule without spin parking;
    the watchdog (default 10M cycles) turns runaway spinning into a
    [wedged] report — a deadlock counterexample replays as a wedge. *)
