(** Liveness checking: non-progress-cycle detection over {!Sim.Sched}.

    The detector is a lasso search. Every scheduling decision hashes the
    global state into a fingerprint — the incremental shared-memory hash
    {!Sim.Mem.fingerprint} (maintained cell-by-cell as writes commit),
    each runnable thread's announced pending access (its control state at
    the yield granularity), each thread's PRNG state (consuming
    randomness is progress of a kind: randomized backoff must never look
    like a repeated state), and the per-thread completed-operation
    counts. A fingerprint seen before at the same operation counts is a
    candidate cycle whose decision window is "the pump"; the run then
    demands the fingerprint repeat at [confirm] consecutive period
    boundaries. Under a suspension adversary the pump is replayed
    verbatim — any schedule of runnable threads is admissible to an
    unfair adversary. Under a fair strategy replaying the pump would
    abandon fairness (it could silently starve a runnable thread, and a
    single-thread read spin would "confirm" trivially), so the strategy
    keeps making its own picks and the candidate survives only if those
    picks reproduce the window — the cycle must be the fair scheduler's
    own doing. Hash collisions and coincidences die either way and are
    counted as near misses; survivors are genuine non-progress cycles —
    livelock, deadlock or starvation counterexamples with a replayable
    schedule, like {!Check}'s.

    Adversary families map to progress properties:
    - {e fair} strategies (round-robin quanta; staggered solo-start
      sweeps that search for lock-ordering alignments) never stop
      scheduling a runnable thread. A cycle here refutes
      deadlock-freedom: even with every thread running, nothing
      completes.
    - {e suspension} strategies stop scheduling one victim after its
      [cut]-th decision, modelling a thread preempted indefinitely while
      holding whatever it holds. Lock-free structures shrug (survivors
      help the victim's operation and complete — [Survivors_done]);
      lock-based ones spin on the victim's lock forever, which the cycle
      detector reports as a starvation counterexample. *)

type config = {
  max_steps : int;
  confirm : int;
  max_pump : int;
  quanta : int list;
  stagger : int;
  suspend_points : int;
  seeds : int64 list;
  profile : Sim.Profile.t;
}

let default_config =
  {
    max_steps = 20_000;
    confirm = 3;
    max_pump = 512;
    quanta = [ 2; 7 ];
    stagger = 6;
    suspend_points = 24;
    seeds = [ 42L ];
    profile = Sim.Profile.uniform;
  }

let quick_config =
  {
    default_config with
    max_steps = 10_000;
    quanta = [ 2 ];
    stagger = 4;
    suspend_points = 8;
  }

type instance = {
  bodies : (int -> unit) array;
  ops_done : unit -> int array;
}

type program = { name : string; prepare : unit -> instance }

type strategy =
  | Round_robin of { quantum : int }
  | Staggered of { head : int list }
  | Suspend of { victim : int; cut : int }

type cycle = {
  strategy : strategy;
  seed : int64;
  prefix : Sim.Sched.Schedule.t;
  pump : Sim.Sched.Schedule.t;
  pump_writes : bool;
}

type report = {
  program : string;
  runs : int;
  completed : int;
  survivor_runs : int;
  inconclusive : int;
  near_misses : int;
  fair_cycle : cycle option;
  starvation_cycle : cycle option;
  max_op_steps : int;
  lock_free : bool;
  deadlock_free : bool;
}

let pp_strategy ppf = function
  | Round_robin { quantum } -> Format.fprintf ppf "round-robin/%d" quantum
  | Staggered { head } ->
      Format.fprintf ppf "staggered[%s]"
        (Sim.Sched.Schedule.to_string head)
  | Suspend { victim; cut } ->
      Format.fprintf ppf "suspend t%d after %d" victim cut

let cycle_kind c =
  match (c.strategy, c.pump_writes) with
  | Suspend _, _ -> "starvation"
  | _, true -> "livelock"
  | _, false -> "deadlock"

let pp_cycle ppf c =
  Format.fprintf ppf "%s under %a (seed %Ld): prefix '%s' pump '%s'"
    (cycle_kind c) pp_strategy c.strategy c.seed
    (Sim.Sched.Schedule.to_string c.prefix)
    (Sim.Sched.Schedule.to_string c.pump)

let pp_report ppf r =
  Format.fprintf ppf
    "%s: %d runs (%d completed, %d survivor-done, %d inconclusive, %d near \
     misses), worst op span %d decisions — lock-free: %s, deadlock-free: %s"
    r.program r.runs r.completed r.survivor_runs r.inconclusive r.near_misses
    r.max_op_steps
    (if r.lock_free then "yes" else "NO")
    (if r.deadlock_free then "yes" else "NO");
  (match r.fair_cycle with
  | Some c -> Format.fprintf ppf "@,  fair cycle: %a" pp_cycle c
  | None -> ());
  match r.starvation_cycle with
  | Some c -> Format.fprintf ppf "@,  starvation cycle: %a" pp_cycle c
  | None -> ()

(* ---- state fingerprints ------------------------------------------------ *)

let mix h v = (((h lxor v) * 0x01000193) lxor (h lsr 17)) land max_int

(* The runnable set handed to the policy, with each thread's pending
   access, IS the control state at yield granularity: two moments with
   the same memory, same pendings, same PRNG states and same completed-op
   counts evolve identically under the same future choices. *)
let fingerprint (runnable : (int * Sim.Sched.pending option) array) ops =
  let h = ref (Sim.Mem.fingerprint ()) in
  Array.iter
    (fun (t, p) ->
      h := mix !h (t + 1);
      (match p with
      | None -> h := mix !h 0x55
      | Some { Sim.Sched.cell; kind } ->
          h :=
            mix !h
              ((cell * 4)
              + (match kind with Read -> 1 | Write -> 2 | Cas -> 3)));
      h := mix !h (Sim.Sched.rng_fingerprint t))
    runnable;
  Array.iter (fun c -> h := mix !h c) ops;
  !h

(* ---- one run under one adversary --------------------------------------- *)

type outcome = Completed | Survivors_done | Cycle_found of cycle | Out_of_steps

exception Stop of outcome

type run_result = {
  outcome : outcome;
  near : int;
  span : int;
  dec_per_tid : int array;
}

(* Growable parallel logs: the decision sequence (for prefix/pump
   extraction and pump replay) and a committed-write flag per decision. *)
type buf = { mutable a : int array; mutable n : int }

let buf_create () = { a = Array.make 1024 0; n = 0 }

let buf_push b v =
  if b.n = Array.length b.a then begin
    let a' = Array.make (2 * b.n) 0 in
    Array.blit b.a 0 a' 0 b.n;
    b.a <- a'
  end;
  b.a.(b.n) <- v;
  b.n <- b.n + 1

let buf_slice b lo hi = Array.to_list (Array.sub b.a lo (hi - lo))

let run_one ~(cfg : config) ~(program : program) ~strategy ~seed =
  Sim.Mem.track_begin ();
  Fun.protect ~finally:Sim.Mem.track_end @@ fun () ->
  let inst = program.prepare () in
  let n = Array.length inst.bodies in
  let dec = buf_create () and wrote = buf_create () in
  let dec_per_tid = Array.make n 0 in
  let table = Hashtbl.create 997 in
  let last_ops = Array.make n 0 and op_start = Array.make n 0 in
  let span = ref 0 and near = ref 0 in
  (* strategy state *)
  let rr_cur = ref 0 and rr_used = ref 0 and rr_q = ref 1 in
  let head = ref [] in
  let victim = ref (-1) and cut = ref max_int and vcount = ref 0 in
  (match strategy with
  | Round_robin { quantum } -> rr_q := max 1 quantum
  | Staggered { head = h } -> head := h
  | Suspend { victim = v; cut = c } ->
      victim := v;
      cut := c);
  (* confirmation state for a candidate cycle *)
  let confirming = ref false in
  let c_start = ref 0 and c_period = ref 0 and c_pos = ref 0 and c_fp = ref 0 in
  let runnable_mem t runnable = Array.exists (fun (x, _) -> x = t) runnable in
  let fail_confirm fp =
    confirming := false;
    incr near;
    Hashtbl.replace table fp dec.n
  in
  let rr_pick eligible =
    let ok t = List.mem t eligible in
    if ok !rr_cur && !rr_used < !rr_q then begin
      incr rr_used;
      !rr_cur
    end
    else begin
      let rec adv k =
        let t = (!rr_cur + k) mod n in
        if ok t then t else adv (k + 1)
      in
      let t = adv 1 in
      rr_cur := t;
      rr_used := 1;
      t
    end
  in
  let normal_pick runnable =
    let all = Array.to_list (Array.map fst runnable) in
    let eligible =
      if !victim >= 0 && !vcount >= !cut then
        List.filter (fun t -> t <> !victim) all
      else all
    in
    if eligible = [] then raise (Stop Survivors_done);
    let rec from_head () =
      match !head with
      | [] -> rr_pick eligible
      | h :: tl ->
          head := tl;
          if List.mem h eligible then begin
            rr_cur := h;
            rr_used := 1;
            h
          end
          else from_head ()
    in
    from_head ()
  in
  let policy runnable =
    let d = dec.n in
    if d >= cfg.max_steps then raise (Stop Out_of_steps);
    let ops = inst.ops_done () in
    for t = 0 to n - 1 do
      if ops.(t) > last_ops.(t) then begin
        if d - op_start.(t) > !span then span := d - op_start.(t);
        op_start.(t) <- d;
        last_ops.(t) <- ops.(t)
      end
    done;
    let fp = fingerprint runnable ops in
    let replay_pump () =
      (* next decision of the candidate's window, provided its thread is
         still runnable (it must be, if the state truly repeated) *)
      let t = dec.a.(!c_start + (!c_pos mod !c_period)) in
      if runnable_mem t runnable then begin
        incr c_pos;
        Some t
      end
      else None
    in
    (* A fair strategy must keep choosing for itself during
       confirmation — replaying the window verbatim could silently starve
       a runnable thread, turning mere starvation into a bogus fair
       verdict. The candidate survives only if the strategy's own picks
       reproduce the window. *)
    let fair = match strategy with Suspend _ -> false | _ -> true in
    let fair_step () =
      let t = normal_pick runnable in
      if t = dec.a.(!c_start + (!c_pos mod !c_period)) then incr c_pos
      else fail_confirm fp;
      t
    in
    let suspend_step () =
      match replay_pump () with
      | Some t -> t
      | None ->
          fail_confirm fp;
          normal_pick runnable
    in
    let choice =
      if !confirming then begin
        let boundary = !c_pos mod !c_period = 0 in
        if boundary && fp <> !c_fp then begin
          fail_confirm fp;
          normal_pick runnable
        end
        else if boundary && !c_pos >= !c_period * cfg.confirm then begin
          let lo = !c_start and hi = !c_start + !c_period in
          let pump_writes = ref false in
          for i = lo to hi - 1 do
            if wrote.a.(i) <> 0 then pump_writes := true
          done;
          raise
            (Stop
               (Cycle_found
                  {
                    strategy;
                    seed;
                    prefix = buf_slice dec 0 lo;
                    pump = buf_slice dec lo hi;
                    pump_writes = !pump_writes;
                  }))
        end
        else if fair then fair_step ()
        else suspend_step ()
      end
      else
        match Hashtbl.find_opt table fp with
        | Some i when d - i <= cfg.max_pump && d > i ->
            (* A fair strategy schedules every runnable thread infinitely
               often, so a window omitting one (e.g. a read spin inside a
               single quantum) cannot be its infinite behaviour — not a
               candidate, however stable its fingerprint. *)
            let admissible =
              (not fair)
              || Array.for_all
                   (fun (t, _) ->
                     let rec mem k = k < d && (dec.a.(k) = t || mem (k + 1)) in
                     mem i)
                   runnable
            in
            if not admissible then
              (* Keep the oldest occurrence: when every decision lands in
                 the same state (both threads pure-spinning), the revisit
                 distance would otherwise stay pinned at 1 and a window
                 wide enough to cover all runnable threads never forms.
                 The entry refreshes anyway once [d - i] exceeds
                 [max_pump]. *)
              normal_pick runnable
            else begin
              confirming := true;
              c_start := i;
              c_period := d - i;
              c_pos := 0;
              c_fp := fp;
              if fair then fair_step () else suspend_step ()
            end
        | _ ->
            Hashtbl.replace table fp d;
            normal_pick runnable
    in
    if choice = !victim then incr vcount;
    buf_push dec choice;
    buf_push wrote 0;
    dec_per_tid.(choice) <- dec_per_tid.(choice) + 1;
    choice
  in
  let on_commit ~tid:_ ~cell:_ ~kind:_ ~wrote:w =
    (* the commit belongs to the decision just taken *)
    if w && wrote.n > 0 then wrote.a.(wrote.n - 1) <- 1
  in
  let outcome =
    match
      Sim.Sched.run ~profile:cfg.profile ~seed ~policy ~on_commit inst.bodies
    with
    | (_ : Sim.Sched.result) -> Completed
    | exception Stop o -> o
  in
  { outcome; near = !near; span = !span; dec_per_tid }

(* ---- adversary sweeps -------------------------------------------------- *)

let staggered_heads cfg n =
  let rep t k = List.init k (fun _ -> t) in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          if a = b then []
          else
            List.concat_map
              (fun i ->
                List.init cfg.stagger (fun j ->
                    rep a (i + 1) @ rep b (j + 1)))
              (List.init cfg.stagger Fun.id))
        (List.init n Fun.id))
    (List.init n Fun.id)

(* Sample [1..total] at up to [suspend_points] evenly spaced cuts. *)
let suspend_cuts cfg total =
  if total <= 0 then []
  else if total <= cfg.suspend_points then List.init total (fun i -> i + 1)
  else
    List.init cfg.suspend_points (fun i ->
        1 + (i * (total - 1) / (cfg.suspend_points - 1)))
    |> List.sort_uniq compare

let certify ?(config = default_config) (program : program) =
  let n = Array.length ((program.prepare ()).bodies) in
  let runs = ref 0 and completed = ref 0 and survivor = ref 0 in
  let inconclusive = ref 0 and fair_inconclusive = ref 0 in
  let near = ref 0 and span = ref 0 in
  let fair_cycle = ref None and starvation_cycle = ref None in
  let exec ~fair strategy seed =
    incr runs;
    let r = run_one ~cfg:config ~program ~strategy ~seed in
    near := !near + r.near;
    if r.span > !span then span := r.span;
    (match r.outcome with
    | Completed -> incr completed
    | Survivors_done -> incr survivor
    | Out_of_steps ->
        incr inconclusive;
        if fair then incr fair_inconclusive
    | Cycle_found c ->
        if fair then begin
          if !fair_cycle = None then fair_cycle := Some c
        end
        else if !starvation_cycle = None then starvation_cycle := Some c);
    r
  in
  (* Baseline fair run; its per-thread decision counts size the
     suspension-cut coordinate space for each victim. *)
  let seed0 = match config.seeds with s :: _ -> s | [] -> 42L in
  let baseline = exec ~fair:true (Round_robin { quantum = 1 }) seed0 in
  List.iter
    (fun seed ->
      List.iter
        (fun s -> if !fair_cycle = None then ignore (exec ~fair:true s seed))
        (List.map (fun q -> Round_robin { quantum = q }) config.quanta
        @ List.map
            (fun h -> Staggered { head = h })
            (staggered_heads config n));
      for v = 0 to n - 1 do
        List.iter
          (fun c ->
            if !starvation_cycle = None then
              ignore (exec ~fair:false (Suspend { victim = v; cut = c }) seed))
          (suspend_cuts config baseline.dec_per_tid.(v))
      done)
    config.seeds;
  {
    program = program.name;
    runs = !runs;
    completed = !completed;
    survivor_runs = !survivor;
    inconclusive = !inconclusive;
    near_misses = !near;
    fair_cycle = !fair_cycle;
    starvation_cycle = !starvation_cycle;
    max_op_steps = !span;
    lock_free =
      !fair_cycle = None && !starvation_cycle = None && !inconclusive = 0;
    deadlock_free = !fair_cycle = None && !fair_inconclusive = 0;
  }

(* ---- cycle replay ------------------------------------------------------ *)

exception Replay_stop of bool

let run_cycle ?(config = default_config) ?(seed = 42L) (program : program)
    ~prefix ~pump =
  if pump = [] then invalid_arg "Liveness.run_cycle: empty pump";
  Sim.Mem.track_begin ();
  Fun.protect ~finally:Sim.Mem.track_end @@ fun () ->
  let inst = program.prepare () in
  let pre = ref prefix in
  let parr = Array.of_list pump in
  let plen = Array.length parr in
  let pos = ref 0 in
  let expect = ref (-1) in
  let policy runnable =
    let ok t = Array.exists (fun (x, _) -> x = t) runnable in
    match !pre with
    | t :: tl ->
        pre := tl;
        if ok t then t else raise (Replay_stop false)
    | [] ->
        let i = !pos mod plen in
        if i = 0 then begin
          let fp = fingerprint runnable (inst.ops_done ()) in
          if !expect < 0 then expect := fp
          else if fp <> !expect then raise (Replay_stop false)
          else if !pos >= plen * config.confirm then raise (Replay_stop true)
        end;
        incr pos;
        let t = parr.(i) in
        if ok t then t else raise (Replay_stop false)
  in
  match Sim.Sched.run ~profile:config.profile ~seed ~policy inst.bodies with
  | (_ : Sim.Sched.result) -> false (* ran to completion: progress, no cycle *)
  | exception Replay_stop r -> r

let check_cycle ?config (program : program) (c : cycle) =
  run_cycle ?config ~seed:c.seed program ~prefix:c.prefix ~pump:c.pump
