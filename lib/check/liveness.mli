(** Liveness checking of simulated concurrent programs.

    Complements {!Check} (safety: linearizability, races, assertion
    deadlock) with progress properties: {!certify} drives a {!program}
    under a family of demonic schedulers — fair round-robin and staggered
    sweeps, plus unfair thread-suspension adversaries — and watches for
    {e non-progress cycles}: a return to a previously seen global state
    (shared memory + per-thread control + PRNG states) with no operation
    completed in between. A confirmed cycle under a fair scheduler is a
    livelock (memory keeps changing) or a deadlock (pure spinning); under
    a suspension adversary it refutes lock-freedom — the survivors
    starve instead of helping the suspended victim. Cycles carry a
    replayable prefix+pump in {!Sim.Sched.Schedule} syntax, verifiable
    with {!run_cycle} or [repro progress --program … --prefix … --pump …]. *)

type config = {
  max_steps : int;  (** per-run decision bound; exceeded → inconclusive *)
  confirm : int;
      (** pump repetitions a candidate cycle must survive (with the state
          fingerprint repeating at every period boundary) before it is
          reported; failed confirmations count as near misses *)
  max_pump : int;  (** longest candidate cycle period considered *)
  quanta : int list;  (** round-robin quantum sweep (fair adversaries) *)
  stagger : int;
      (** staggered-start sweep width: every ordered thread pair [(a,b)]
          is run [a]×i then [b]×j solo for i,j ≤ [stagger] before fair
          round-robin resumes — the alignment search that exposes
          lock-ordering deadlocks *)
  suspend_points : int;
      (** suspension cut points sampled per victim across its baseline
          access range (unfair adversaries; refute lock-freedom) *)
  seeds : int64 list;
  profile : Sim.Profile.t;
}

val default_config : config
val quick_config : config
(** A time-boxed subset of {!default_config} for the smoke tier. *)

(** A fresh run of the program under test. [ops_done] must report, at any
    moment during the run, the number of {e completed} high-level
    operations per thread — the progress measure; a state revisited with
    these counts unchanged is a non-progress cycle candidate. Bodies must
    perform a fixed, finite number of operations. *)
type instance = {
  bodies : (int -> unit) array;
  ops_done : unit -> int array;
}

type program = { name : string; prepare : unit -> instance }

type strategy =
  | Round_robin of { quantum : int }  (** fair: q decisions per thread *)
  | Staggered of { head : int list }
      (** fair: run the listed tids first, then round-robin quantum 1 *)
  | Suspend of { victim : int; cut : int }
      (** unfair: round-robin, but the victim is never scheduled again
          after its [cut]-th decision — the lock-freedom adversary *)

type cycle = {
  strategy : strategy;
  seed : int64;
  prefix : Sim.Sched.Schedule.t;  (** decisions before the cycle *)
  pump : Sim.Sched.Schedule.t;  (** one period of the repeating cycle *)
  pump_writes : bool;
      (** memory changes inside the pump (and reverts by the period
          boundary): livelock; no writes at all: pure spinning —
          deadlock under a fair strategy, starvation under [Suspend] *)
}

type report = {
  program : string;
  runs : int;
  completed : int;  (** runs where every thread finished *)
  survivor_runs : int;
      (** [Suspend] runs where every non-victim completed — the helping
          discipline working as designed *)
  inconclusive : int;  (** runs cut by [max_steps] with no verdict *)
  near_misses : int;  (** fingerprint revisits that failed confirmation *)
  fair_cycle : cycle option;  (** livelock/deadlock under a fair strategy *)
  starvation_cycle : cycle option;  (** non-progress under [Suspend] *)
  max_op_steps : int;
      (** worst observed scheduling decisions between one thread's
          consecutive operation completions — the measured starvation
          bound, across all adversaries *)
  lock_free : bool;
      (** no cycle under any adversary and nothing inconclusive *)
  deadlock_free : bool;  (** no cycle and no timeout under fair ones *)
}

val pp_strategy : Format.formatter -> strategy -> unit
val pp_cycle : Format.formatter -> cycle -> unit
val pp_report : Format.formatter -> report -> unit

val certify : ?config:config -> program -> report
(** Sweep all adversaries (stopping each family at its first confirmed
    cycle) and aggregate the verdicts. *)

val run_cycle :
  ?config:config -> ?seed:int64 -> program ->
  prefix:Sim.Sched.Schedule.t -> pump:Sim.Sched.Schedule.t -> bool
(** Replay a reported cycle: follow [prefix], then repeat [pump]
    [config.confirm] times, checking that the state fingerprint repeats
    at every period boundary. [true] iff the cycle reproduces. *)

val check_cycle : ?config:config -> program -> cycle -> bool
(** {!run_cycle} with the cycle's own seed, prefix and pump. *)
