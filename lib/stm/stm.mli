(** Word-based software transactional memory in the TL2 style (Dice,
    Shalev & Shavit 2006), over a runtime's atomics — the substrate for
    the STM-heap comparison point the paper's introduction cites
    (Dragicevic & Bauer). A {!Make.tvar} holds one [int], matching TL2's
    word granularity.

    Transactions are opaque (a live transaction never observes an
    inconsistent snapshot), commit by locking the write set in a global
    id order, and retry with randomized exponential backoff on conflict.
    The design is blocking: a preempted committer delays conflicting
    writers — exactly the behaviour the evaluation contrasts with the
    lock-free mound. *)

module Make (_ : Runtime.S) : sig
  type tvar
  (** A transactional variable holding an [int]. *)

  type tx
  (** A transaction in progress; only valid within the callback passed to
      {!atomically}. *)

  exception Abort
  (** Raised internally on conflict; {!atomically} catches it and
      retries. User code may also raise it to force a retry. *)

  val make : int -> tvar

  val read : tx -> tvar -> int
  (** Transactional read, with read-own-writes. *)

  val write : tx -> tvar -> int -> unit
  (** Buffered transactional write, published at commit. *)

  val atomically : (tx -> 'a) -> 'a
  (** [atomically f] runs [f] as a transaction, retrying on conflict.
      [f] must be pure apart from {!read}/{!write} on tvars (it may run
      multiple times). *)

  val peek : tvar -> int
  (** Non-transactional read for quiescent inspection. *)
end
