(** A word-based software transactional memory in the TL2 style
    (Dice, Shalev & Shavit 2006), over a runtime's atomics.

    The paper's introduction cites Dragicevic & Bauer's STM-based
    concurrent heap as prior work whose "overhead of STM resulted in
    unacceptable performance"; this library plus {!Stm_heap} reproduce
    that comparison point. Like TL2 (and like the mound substrate), it is
    word-granular: a {!tvar} holds one [int].

    Algorithm:
    - a global version {e clock};
    - each tvar holds an immutable [{value; version; locked}] record;
    - a transaction records its start clock [rv]; every read checks the
      tvar is unlocked and no newer than [rv] (giving opacity: a live
      transaction never observes an inconsistent snapshot) and is logged;
      writes are buffered;
    - commit locks the write set in tvar-id order (bounded, so deadlock
      free), increments the clock, re-validates the read set, then
      publishes values at the new version and unlocks.

    Conflicts abort and retry with randomized exponential backoff.
    Read-only transactions commit without locking or validation — their
    incremental read checks already guarantee a consistent snapshot.

    This design is {e blocking} (a preempted committer blocks conflicting
    writers), which is precisely the behaviour the evaluation contrasts
    with the lock-free mound. *)

module Make (R : Runtime.S) = struct
  module B = Runtime.Backoff.Make (R)

  type vstate = { value : int; version : int; locked : bool }

  type tvar = { st : vstate R.Atomic.t; id : int }

  (* Transaction-private state. [writes] is kept deduplicated by tvar. *)
  type tx = {
    rv : int;
    (* lint: allow — transaction-private: a [tx] record lives and dies
       on the thread that began it; the read and write sets are never
       shared across domains, so their adjacency cannot false-share *)
    mutable reads : (tvar * int) list;
    mutable writes : (tvar * int) list;
  }

  exception Abort

  (* Both counters use the runtime's atomics: the clock is part of the
     algorithm's shared-memory footprint and must be costed by the
     simulator. The id counter is setup-only but harmless to cost. *)
  let clock = R.Atomic.make 0

  let next_id = Stdlib.Atomic.make 0 (* lint: allow — setup-only id source *)

  let make value =
    {
      st = R.Atomic.make { value; version = 0; locked = false };
      (* lint: allow — id allocation is setup, outside the simulated heap *)
      id = Stdlib.Atomic.fetch_and_add next_id 1;
    }

  (** [read tx tv] — transactional read, with read-own-writes. *)
  let read tx tv =
    match List.find_opt (fun (t, _) -> t == tv) tx.writes with
    | Some (_, v) -> v
    | None ->
        let s = R.Atomic.get tv.st in
        if s.locked || s.version > tx.rv then raise Abort;
        tx.reads <- (tv, s.version) :: tx.reads;
        s.value

  (** [write tx tv v] — buffered transactional write. *)
  let write tx tv v =
    let rec replace = function
      | [] -> [ (tv, v) ]
      | (t, _) :: rest when t == tv -> (tv, v) :: rest
      | e :: rest -> e :: replace rest
    in
    tx.writes <- replace tx.writes

  (* Lock one tvar for commit; returns the observed state for rollback
     bookkeeping. Aborts rather than spinning: TL2 resolves conflicts by
     retrying the whole transaction. *)
  let lock_tvar tv =
    let s = R.Atomic.get tv.st in
    if s.locked then raise Abort;
    if not (R.Atomic.compare_and_set tv.st s { s with locked = true }) then
      raise Abort;
    s

  let unlock_tvar tv (s : vstate) = R.Atomic.set tv.st s

  let commit tx =
    match tx.writes with
    | [] -> () (* read-only: incremental validation already done *)
    | writes ->
        let ws =
          List.sort (fun ((a : tvar), _) (b, _) -> compare a.id b.id) writes
        in
        (* Phase 1: lock the write set in id order. *)
        let locked = ref [] in
        let rollback () =
          List.iter (fun (tv, s) -> unlock_tvar tv s) !locked;
          raise Abort
        in
        List.iter
          (fun (tv, _) ->
            match lock_tvar tv with
            | s -> locked := (tv, s) :: !locked
            | exception Abort -> rollback ())
          ws;
        (* Phase 2: take a commit timestamp. *)
        let wv = R.Atomic.fetch_and_add clock 1 + 1 in
        (* Phase 3: validate the read set: same version as when read, and
           not locked by a competitor (our own locks are fine). *)
        let mine tv = List.exists (fun (t, _) -> t == tv) ws in
        List.iter
          (fun (tv, ver) ->
            let s = R.Atomic.get tv.st in
            if s.version <> ver || (s.locked && not (mine tv)) then rollback ())
          tx.reads;
        (* Phase 4: publish and unlock. *)
        List.iter
          (fun (tv, v) ->
            R.Atomic.set tv.st { value = v; version = wv; locked = false })
          ws

  (** [atomically f] runs [f tx] as a transaction, retrying on conflict
      with randomized exponential backoff. [f] must be pure apart from
      {!read}/{!write} on tvars (it may run multiple times). *)
  let atomically f =
    (* lint: allow — TL2's published shape: unbounded optimistic retry
       with randomized backoff. Deadline-bounded admission belongs to
       the caller (the Bounded front-end), not inside the commit
       protocol. *)
    let rec attempt round =
      let tx = { rv = R.Atomic.get clock; reads = []; writes = [] } in
      match
        let result = f tx in
        commit tx;
        result
      with
      | result -> result
      | exception Abort ->
          (* capped exponential backoff with per-thread jitter *)
          B.exponential round;
          attempt (round + 1)
    in
    attempt 0

  (** Non-transactional read for quiescent inspection. *)
  let peek tv = (R.Atomic.get tv.st).value
end
