(** Interprocedural domain-escape analysis (rule [escape]).

    Every analysis so far leans on [Atomic.t] to mark the shared world.
    The ROADMAP's next arc — per-domain stickiness caches, the
    flat-array plane refactor, sharded ingress — introduces {e plain}
    mutable state whose safety argument is "it never leaves its owning
    domain". This module is the checker for that argument: a lattice
    over mutable {e location keys} (field names and variable names,
    matched globally by string, the same syntactic keying as
    {!Summary.loc_write_key} and the same deliberate collision caveat
    as {!Layout}):

    {v Local  <  Captured  <  Published  <  Global v}

    - [Local]: never observed leaving a function — the default;
    - [Captured]: mentioned inside a closure handed to a
      [Domain.spawn]-shaped call — the spawned domain can reach it;
    - [Published]: stored into a shared sink — a CAS fresh-value slot,
      a non-release dotted [set], a one-argument dotted [make]
      ([Atomic.make r]), a store into an already-shared record, or an
      argument forwarded (transitively, through {!Summary.fshares})
      into such a sink by a callee;
    - [Global]: a module-level [let] binding a fresh mutable value
      ([ref]/[Array.make]/array literal/record with [mutable] fields)
      — reachable by every domain that can see the module.

    Seeds come from three passes: type declarations (which field labels
    are [mutable] anywhere, and where each record's first mutable label
    sits — the anchor the [mutable-atomic] token rule uses, so the two
    rules land on the same line and the engine-dedupe keeps one);
    module-level bindings; and a {!Dataflow} pass per function that
    also records every {e plain access} — [r.f]/[r.f <- v] on mutable
    labels, [!]/[:=]/[incr]/[decr], [Array]/[Bytes] [get]/[set] — with
    the lock-held counter and the pre-publication freshness of the
    receiver at that moment. {!Races} turns those accesses into
    [static-race] findings; this module reports each escaped key once,
    at its seed site.

    Propagation is interprocedural two ways: {!Callgraph}'s transitive
    [escapes] effect marks call paths that reach any escape site, and a
    per-parameter fixpoint over resolved call edges extends
    {!Summary.fcaptures}/{!Summary.fshares} so a wrapper that merely
    forwards its argument into [Atomic.set] still publishes it.

    Soundness caveats, by design and documented in DESIGN.md §12: keys
    are strings matched globally (two types sharing a mutable label
    alias each other); a spawned closure's {e calls} into other
    functions are not expanded (only the syntactic closure body is
    scanned for captured keys); aliasing through data structures is
    invisible; [Hashtbl] and friends are neither seeds nor accesses.
    Each hides an escape at worst — consistent with the engine's
    under-approximation discipline — except the global key matching,
    which can over-approximate and is exactly what reasoned waivers
    are for. *)

open Parsetree

let rule = "escape"

type level = Local | Captured | Published | Global

let rank = function Local -> 0 | Captured -> 1 | Published -> 2 | Global -> 3

let level_name = function
  | Local -> "domain-local"
  | Captured -> "spawn-captured"
  | Published -> "published"
  | Global -> "module-global"

type site = { sfile : string; sline : int; swhy : string }

type access = {
  afile : string;
  afn : string;  (* dotted path of the accessing function *)
  aline : int;
  akey : string;
  awrite : bool;
  aheld : bool;  (* some lock acquired on every path to this access *)
  afresh : bool;  (* receiver still provably pre-publication *)
}

type t = {
  cg : Callgraph.t;
  class_ : (string, level * site) Hashtbl.t;
  accesses : access list;
  writers : (string, string list) Hashtbl.t;
      (* key -> distinct functions that plainly write it, the
         single-writer census behind the info downgrade *)
  mutable_labels : (string, unit) Hashtbl.t;
}

let level_of t key =
  match Hashtbl.find_opt t.class_ key with
  | Some (l, _) -> l
  | None -> Local

let seed_of t key = Option.map snd (Hashtbl.find_opt t.class_ key)

let raise_to t key lvl site =
  match Hashtbl.find_opt t.class_ key with
  | Some (l, _) when rank l >= rank lvl -> ()
  | _ -> Hashtbl.replace t.class_ key (lvl, site)

(* ---- pass 1: type declarations ----------------------------------------- *)

type decl = {
  dfile : string;
  dnames : string list;  (* every label of the record *)
  dmuts : string list;  (* its [mutable] labels *)
  dfirst_mut : int option;  (* line of the first mutable label — the
                               [mutable-atomic] token anchor *)
}

type labels_index = {
  decls : decl list;
  muts : (string, unit) Hashtbl.t;  (* labels mutable in ANY decl *)
  file_labels : (string * string, bool) Hashtbl.t;
      (* (file, label) -> declared mutable in that file; present iff
         the file declares the label at all *)
}

let label_tables parsed : labels_index =
  let muts = Hashtbl.create 64 in
  let file_labels = Hashtbl.create 64 in
  let decls =
    List.concat_map
      (fun (p : Frontend.parsed) ->
        List.map
          (fun (_tname, labels) ->
            let mut_l =
              List.filter
                (fun (l : label_declaration) ->
                  l.pld_mutable = Asttypes.Mutable)
                labels
            in
            List.iter
              (fun (l : label_declaration) ->
                let n = l.pld_name.txt in
                let m = l.pld_mutable = Asttypes.Mutable in
                if m then Hashtbl.replace muts n ();
                let k = (p.p_path, n) in
                let cur =
                  Hashtbl.find_opt file_labels k
                  |> Option.value ~default:false
                in
                Hashtbl.replace file_labels k (cur || m))
              labels;
            {
              dfile = p.p_path;
              dnames =
                List.map (fun (l : label_declaration) -> l.pld_name.txt)
                  labels;
              dmuts =
                List.map (fun (l : label_declaration) -> l.pld_name.txt)
                  mut_l;
              dfirst_mut =
                Option.map
                  (fun (l : label_declaration) ->
                    Frontend.line_of_loc l.pld_loc)
                  (List.nth_opt mut_l 0);
            })
          (Layout.decls_of_structure p.p_ast))
      parsed
  in
  { decls; muts; file_labels }

(* Is a field access on [field] in [file] an access to mutable state?
   The file's own declarations win — [lf_mound]'s immutable [list]
   label is not [seq_mound]'s [mutable list] — falling back to the
   global table only for labels the file never declares itself. *)
let mutable_field idx ~file field =
  match Hashtbl.find_opt idx.file_labels (file, field) with
  | Some m -> m
  | None -> Hashtbl.mem idx.muts field

(* Match a record literal (its label names) to its declaration:
   candidates are decls covering every literal label, same-file decls
   preferred. Returns the literal's mutable keys and the anchor —
   the matched decl's first-mutable-label line, where the
   [mutable-atomic] token rule also lands, so the sibling dedupe
   collapses the two rules into one finding. *)
let literal_info idx ~file labels =
  if labels = [] then ([], None)
  else
    let covers d = List.for_all (fun l -> List.mem l d.dnames) labels in
    let cands = List.filter covers idx.decls in
    let local = List.filter (fun d -> d.dfile = file) cands in
    let chosen = if local <> [] then local else cands in
    let mut_keys =
      List.filter
        (fun l -> List.exists (fun d -> List.mem l d.dmuts) chosen)
        labels
    in
    let anchor =
      List.find_map
        (fun d ->
          Option.map (fun line -> (d.dfile, line)) d.dfirst_mut)
        chosen
    in
    (mut_keys, anchor)

(* ---- pass 2: module-level bindings -------------------------------------- *)

(* The keys a module-level [let name = e] makes global: the binding's
   own name for a fresh cell ([ref]/[Array.make]/[Bytes.create]/array
   literal), the mutable labels for a record literal matched to its
   declaration. Functions, immutable values, and all-constant array
   literals (read-only lookup tables) yield nothing. *)
let global_keys idx ~file name e =
  let is_const e =
    match (Summary.strip_casts e).pexp_desc with
    | Pexp_constant _ -> true
    | _ -> false
  in
  match (Summary.strip_casts e).pexp_desc with
  | Pexp_apply (head, _) -> (
      match Summary.flatten_ident head with
      | Some [ "ref" ] -> [ name ]
      | Some segs when List.length segs >= 2 -> (
          match List.rev segs with
          | ("make" | "create" | "init") :: m :: _
            when m = "Array" || m = "Bytes" ->
              [ name ]
          | _ -> [])
      | _ -> [])
  | Pexp_array (_ :: _ as els) when not (List.for_all is_const els) ->
      [ name ]
  | Pexp_record (fields, _) ->
      fst
        (literal_info idx ~file
           (List.filter_map
              (fun ((lid : Longident.t Asttypes.loc), _) ->
                match lid.txt with
                | Longident.Lident f -> Some f
                | _ -> None)
              fields))
  | _ -> []

(* Functor bodies are deliberately NOT descended into: their [let]s are
   per-application instance state — the {!Stats.Ops}-style record
   threaded by value — visible to this analysis only when it escapes
   through the instance, not module-global. Plain submodules are. *)
let rec globals_of_module (m : module_expr) =
  match m.pmod_desc with
  | Pmod_structure items -> globals_of_structure items
  | Pmod_constraint (m, _) -> globals_of_module m
  | _ -> []

and globals_of_structure items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.filter_map
            (fun vb ->
              let ps, _ = Summary.fn_shape vb.pvb_expr in
              if ps <> [] then None
              else
                match Summary.pat_var vb.pvb_pat with
                | Some name ->
                    Some
                      (name, vb.pvb_expr, Frontend.line_of_loc vb.pvb_loc)
                | None -> None)
            vbs
      | Pstr_module mb -> globals_of_module mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.concat_map (fun mb -> globals_of_module mb.pmb_expr) mbs
      | _ -> [])
    items

(* ---- pass 3: per-parameter capture/share fixpoint ----------------------- *)

(* [fcaptures]/[fshares] list the parameters a function directly hands
   to a spawn closure or a shared sink; this fixpoint closes them over
   resolved call edges, so [let publish r = Atomic.set cell r] makes
   every caller's forwarded argument shared too. Positional matching of
   [Nolabel] arguments to parameters — partial application and labels
   under-approximate, consistent with the engine. *)
let close_params (cg : Callgraph.t) =
  let fns = Callgraph.fns cg in
  let cap = Array.map (fun (f : Summary.fn) -> f.fcaptures) fns in
  let share = Array.map (fun (f : Summary.fn) -> f.fshares) fns in
  let edges = ref [] in
  Array.iteri
    (fun i (f : Summary.fn) ->
      let it = Ast_iterator.default_iterator in
      let expr it' (e : expression) =
        (match e.pexp_desc with
        | Pexp_apply (head, args) -> (
            match Summary.flatten_ident head with
            | Some segs -> (
                match
                  Callgraph.resolve ~from_file:f.ffile cg
                    (Summary.resolve_call f.fscope segs)
                with
                | Some j ->
                    List.iteri
                      (fun ai a ->
                        match (Summary.strip_casts a).pexp_desc with
                        | Pexp_ident { txt = Longident.Lident v; _ } -> (
                            match Summary.param_index f.fparams v with
                            | Some pi -> edges := (i, pi, j, ai) :: !edges
                            | None -> ())
                        | _ -> ())
                      (Summary.nolabel_args args)
                | None -> ())
            | None -> ())
        | _ -> ());
        it.expr it' e
      in
      let it = { it with expr } in
      it.expr it f.fbody)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (i, pi, j, ai) ->
        let prop (tbl : int list array) =
          if List.mem ai tbl.(j) && not (List.mem pi tbl.(i)) then begin
            tbl.(i) <- pi :: tbl.(i);
            changed := true
          end
        in
        prop cap;
        prop share)
      !edges
  done;
  (cap, share)

(* ---- pass 4: per-function dataflow -------------------------------------- *)

(* Mutable keys touched inside a spawned closure's own body: field
   assignments, mutable-label reads, ref/array primitives. Calls made
   from the closure are not expanded — documented under-approximation. *)
let closure_keys idx ~file e =
  let out = ref [] in
  let add k = if not (List.mem k !out) then out := k :: !out in
  let it = Ast_iterator.default_iterator in
  let expr it' (e : expression) =
    (match e.pexp_desc with
    | Pexp_setfield (_, { txt; _ }, _) -> (
        match List.rev (try Longident.flatten txt with _ -> []) with
        | f :: _ -> add f
        | [] -> ())
    | Pexp_field (_, { txt; _ }) -> (
        match List.rev (try Longident.flatten txt with _ -> []) with
        | f :: _ when mutable_field idx ~file f -> add f
        | _ -> ())
    | Pexp_apply (head, args) -> (
        let nargs = Summary.nolabel_args args in
        let base () =
          match nargs with
          | a :: _ -> Option.iter add (Summary.base_var a)
          | [] -> ()
        in
        match Summary.flatten_ident head with
        | Some [ ("!" | ":=" | "incr" | "decr") ] -> base ()
        | Some [ ("Array" | "Bytes"); ("get" | "set" | "unsafe_get" | "unsafe_set") ]
          ->
            base ()
        | _ -> ())
    | _ -> ());
    it.expr it' e
  in
  let it = { it with expr } in
  it.expr it e;
  !out

type collected = {
  mutable seeds : (string * level * site) list;
  mutable accs : access list;
  mutable stores : (string list * string list * int) list;
      (* (dst keys, freshly-stored src keys, line): resolved into
         Published once the dst is known shared, after all seeds land *)
}

let scan_fn (cg : Callgraph.t) (idx : labels_index) (cap : int list array)
    (share : int list array) (out : collected) (f : Summary.fn) =
  let fnname = String.concat "." f.fpath in
  let resolve segs =
    Callgraph.resolve ~from_file:f.ffile cg
      (Summary.resolve_call f.fscope segs)
  in
  let seed key lvl site = out.seeds <- (key, lvl, site) :: out.seeds in
  (* label keys anchor at their matched decl's first-mutable-label line
     — the [mutable-atomic] anchor — fresh-cell variables at [line] *)
  let seed_at key lvl anchor line why =
    let site =
      match anchor with
      | Some (afile, aline) -> { sfile = afile; sline = aline; swhy = why }
      | None -> { sfile = f.ffile; sline = line; swhy = why }
    in
    seed key lvl site
  in
  let is_fresh ctx e =
    match Summary.base_var e with
    | Some v -> (
        match Hashtbl.find_opt ctx.Dataflow.facts v with
        | Some (Dataflow.Fresh_rec _) -> true
        | _ -> false)
    | None -> false
  in
  let record_access (ctx : Dataflow.ctx) ~line ~write key ~fresh =
    out.accs <-
      {
        afile = f.ffile;
        afn = fnname;
        aline = line;
        akey = key;
        awrite = write;
        aheld = ctx.held > 0;
        afresh = fresh;
      }
      :: out.accs
  in
  (* publishable keys of a stored value — (keys, decl anchor): the
     mutable labels of a fresh record per its matched declaration, or
     the variable naming a fresh ref/array cell *)
  let pub_keys ctx v =
    match Dataflow.fact_of ctx v with
    | Some (Dataflow.Fresh_rec { labels = []; _ }) -> (
        match (Summary.strip_casts v).pexp_desc with
        | Pexp_ident { txt = Longident.Lident var; _ } -> ([ var ], None)
        | _ -> ([], None))
    | Some (Dataflow.Fresh_rec { labels; _ }) ->
        literal_info idx ~file:f.ffile labels
    | _ -> ([], None)
  in
  let classify_lock ~segs =
    match segs with
    | [ "Mutex"; ("lock" | "try_lock") ] -> Dataflow.Acquire
    | [ "Mutex"; "unlock" ] -> Dataflow.Release
    | _ -> (
        match resolve segs with
        | Some j ->
            let te = Callgraph.trans_effects cg j in
            if te.Summary.acquires_lock && not te.Summary.releases_lock then
              Dataflow.Acquire
            else if te.Summary.releases_lock && not te.Summary.acquires_lock
            then Dataflow.Release
            else Dataflow.Neither
        | None -> Dataflow.Neither)
  in
  let h_set ctx ~line ~loc:_ ~value =
    let keys, anchor = pub_keys ctx value in
    List.iter
      (fun k -> seed_at k Published anchor line "stored by an atomic set")
      keys
  in
  let h_cas ctx ~line ~op nargs =
    List.iter
      (fun pos ->
        match List.nth_opt nargs pos with
        | Some v ->
            let keys, anchor = pub_keys ctx v in
            List.iter
              (fun k ->
                seed_at k Published anchor line
                  "installed as a CAS fresh value")
              keys
        | None -> ())
      (Summary.fresh_positions op)
  in
  let h_call ctx ~line ~segs nargs =
    let last = List.nth segs (List.length segs - 1) in
    (* plain-access primitives *)
    (let read a =
       Option.iter
         (fun v -> record_access ctx ~line ~write:false v ~fresh:(is_fresh ctx a))
         (Summary.base_var a)
     and write a =
       Option.iter
         (fun v -> record_access ctx ~line ~write:true v ~fresh:(is_fresh ctx a))
         (Summary.base_var a)
     in
     match (segs, nargs) with
     | [ "!" ], [ a ] -> read a
     | [ ":=" ], a :: _ | [ ("incr" | "decr") ], [ a ] -> write a
     | [ ("Array" | "Bytes"); ("get" | "unsafe_get") ], a :: _ -> read a
     | [ ("Array" | "Bytes"); ("set" | "unsafe_set") ], a :: _ -> write a
     | _ -> ());
    (* a spawn-shaped call: whatever mutable keys the closure touches
       are reachable from the new domain *)
    if last = "spawn" then
      List.iter
        (fun a ->
          if Summary.is_closure a then
            List.iter
              (fun k ->
                seed k Captured
                  {
                    sfile = f.ffile;
                    sline = line;
                    swhy = "captured by a spawned closure";
                  })
              (closure_keys idx ~file:f.ffile a))
        nargs;
    (* Atomic.make-shaped constructor: publishes its single argument *)
    if List.length segs >= 2 && last = "make" && List.length nargs = 1 then begin
      let keys, anchor = pub_keys ctx (List.hd nargs) in
      List.iter
        (fun k -> seed_at k Published anchor line "boxed by an atomic make")
        keys
    end;
    (* a fresh mutable value forwarded into a callee whose (transitive)
       parameter position captures or shares it — immutable arguments
       carry no Fresh_rec fact and seed nothing *)
    match resolve segs with
    | Some j ->
        let callee = String.concat "." (Callgraph.fn cg j).fpath in
        List.iteri
          (fun ai a ->
            if List.mem ai share.(j) || List.mem ai cap.(j) then
              let keys, anchor = pub_keys ctx a in
              List.iter
                (fun k ->
                  if List.mem ai share.(j) then
                    seed_at k Published anchor line
                      (Printf.sprintf "shared by a call into %s" callee);
                  if List.mem ai cap.(j) then
                    seed k Captured
                      {
                        sfile = f.ffile;
                        sline = line;
                        swhy =
                          Printf.sprintf
                            "spawn-captured by a call into %s" callee;
                      })
                keys)
          nargs
    | None -> ()
  in
  let h_field ctx ~line ~record ~field =
    if mutable_field idx ~file:f.ffile field then
      record_access ctx ~line ~write:false field ~fresh:(is_fresh ctx record)
  in
  let h_setfield ctx ~line ~record ~field ~value =
    record_access ctx ~line ~write:true field ~fresh:(is_fresh ctx record);
    let dst =
      field
      ::
      (match Summary.base_var record with Some v -> [ v ] | None -> [])
    in
    let src, _ = pub_keys ctx value in
    if src <> [] then out.stores <- (dst, src, line) :: out.stores
  in
  Dataflow.run
    { Dataflow.h_set; h_cas; h_call; h_field; h_setfield; classify_lock }
    f.fbody

(* ---- the analysis ------------------------------------------------------- *)

let analyze (parsed : Frontend.parsed list) (cg : Callgraph.t) : t =
  let idx = label_tables parsed in
  let t =
    {
      cg;
      class_ = Hashtbl.create 64;
      accesses = [];
      writers = Hashtbl.create 64;
      mutable_labels = idx.muts;
    }
  in
  (* module-level bindings *)
  List.iter
    (fun (p : Frontend.parsed) ->
      List.iter
        (fun (name, e, line) ->
          List.iter
            (fun k ->
              raise_to t k Global
                {
                  sfile = p.p_path;
                  sline = line;
                  swhy =
                    Printf.sprintf "module-level mutable binding %s" name;
                })
            (global_keys idx ~file:p.p_path name e))
        (globals_of_structure p.p_ast))
    parsed;
  (* function bodies: seeds, accesses, deferred store edges *)
  let cap, share = close_params cg in
  let out = { seeds = []; accs = []; stores = [] } in
  Array.iter (scan_fn cg idx cap share out) (Callgraph.fns cg);
  List.iter (fun (k, lvl, site) -> raise_to t k lvl site) (List.rev out.seeds);
  (* a fresh value stored into an already-shared record escapes with
     it; iterated because one store can make the next one's dst shared *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (dst, src, line) ->
        if List.exists (fun d -> rank (level_of t d) >= rank Captured) dst
        then
          List.iter
            (fun k ->
              if rank (level_of t k) < rank Published then begin
                raise_to t k Published
                  {
                    sfile = "";
                    sline = line;
                    swhy = "stored into an already-shared record";
                  };
                changed := true
              end)
            src)
      out.stores
  done;
  (* nested functions are walked standalone and folded into their host;
     keep one access per (file, line, key, kind), attributed to the
     longest function path — the innermost owner *)
  let best = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let k = (a.afile, a.aline, a.akey, a.awrite) in
      match Hashtbl.find_opt best k with
      | Some b when String.length b.afn >= String.length a.afn -> ()
      | _ -> Hashtbl.replace best k a)
    out.accs;
  let accesses =
    Hashtbl.fold (fun _ a l -> a :: l) best []
    |> List.sort (fun a b ->
           (* writes sort before reads at the same site, so the
              finding a read-modify-write anchors is the write —
              deterministically, whatever the table's fold order *)
           compare
             (a.afile, a.aline, a.akey, not a.awrite)
             (b.afile, b.aline, b.akey, not b.awrite))
  in
  List.iter
    (fun a ->
      if a.awrite && not a.afresh then
        let cur =
          Hashtbl.find_opt t.writers a.akey |> Option.value ~default:[]
        in
        if not (List.mem a.afn cur) then
          Hashtbl.replace t.writers a.akey (a.afn :: cur))
    accesses;
  { t with accesses }

let single_writer t key =
  match Hashtbl.find_opt t.writers key with
  | None | Some [ _ ] -> true
  | Some _ -> false

(* ---- findings ----------------------------------------------------------- *)

(* One finding per escaped key, at its seed site. Store-edge sites have
   no file of their own (the dst's classification may come from
   anywhere); they are reported at the storing line's file via the
   accesses list when possible, else skipped — the [static-race]
   findings on their accesses still surface the problem.

   A key whose every recorded access is protected — inside a lock-held
   region or still fresh — is escaping under an evident discipline:
   Mutex-guarded shared state is the sanctioned alternative to Atomic,
   not a finding. Keys with no recorded accesses at all stay findings
   (the accesses may be beyond the walker's reach). *)
let scan (t : t) : Lint_rules.finding list =
  let disciplined key =
    let accs = List.filter (fun a -> a.akey = key) t.accesses in
    accs <> [] && List.for_all (fun a -> a.aheld || a.afresh) accs
  in
  Hashtbl.fold
    (fun key (lvl, site) acc ->
      if rank lvl < rank Captured || site.sfile = "" then acc
      else if
        Lint_rules.helping_exempt_path site.sfile
        || Callgraph.is_substrate_file t.cg site.sfile
        || disciplined key
      then acc
      else
        {
          Lint_rules.file = site.sfile;
          line = site.sline;
          rule;
          msg =
            Printf.sprintf
              "mutable location %s is %s (%s): every access must be \
               synchronized — keep scaling state domain-local, make it \
               atomic, or waive with the protecting discipline"
              key (level_name lvl) site.swhy;
        }
        :: acc)
    t.class_ []
  |> List.sort compare
