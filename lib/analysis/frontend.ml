(** Parsing front-end of the AST analyzer.

    Maps an OCaml implementation source to its located {!Parsetree}
    structure via compiler-libs. Interface files are not parsed — the
    token lint already covers them, and every analysis here is about
    function bodies. A file that fails to parse yields a single finding
    under the [parse] rule instead of an exception, so one broken file
    cannot hide the findings of the rest of the tree. *)

type parsed = {
  p_path : string;
  p_src : string;
  p_ast : Parsetree.structure;
}

(** Module name a file's definitions live under: capitalized basename,
    as the compiler does it ([lf_mound.ml] → [Lf_mound]). *)
let module_name_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

let parse ~path src : (parsed, Lint_rules.finding) result =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok { p_path = path; p_src = src; p_ast = ast }
  | exception exn ->
      let line =
        match Location.error_of_exn exn with
        | Some (`Ok err) -> err.main.loc.loc_start.pos_lnum
        | _ -> 1
      in
      Error
        {
          Lint_rules.file = path;
          line;
          rule = "parse";
          msg = "source does not parse; AST analyses skipped for this file";
        }

let line_of_loc (loc : Location.t) = loc.loc_start.pos_lnum
