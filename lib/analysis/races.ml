(** Static data-race analysis (rule [static-race]).

    The enforcement half of {!Escape}: any plain — non-[Atomic],
    non-release-shaped — read or write of a location the escape lattice
    classifies [Captured] or above is a finding. The DPOR tier's race
    oracle proves the same property dynamically on the schedules it
    explores; this rule covers every textual access on every path the
    {!Dataflow} pass can see, which is what lets the flat-array refactor
    scale plain per-domain state without waiting for an unlucky
    interleaving to show up in CI.

    Exemptions, in the order they are checked:

    - {e lock-held regions}: accesses where {!Dataflow}'s held counter
      is positive — between a [Mutex.lock]/resolved-acquirer call and
      its release — are protected by construction. The coarse-lock
      baselines are additionally path-exempt, like every other rule.
    - {e pre-publication}: accesses through a receiver still carrying a
      [Fresh_rec] fact — initialization before the value is handed to
      anyone — cannot race; freshness dies at the first call mentioning
      the value, including the publish itself.
    - {e single-writer downgrade}: locations written by at most one
      function per the plain-write census (the {!Escape} mirror of
      PR-7's [fwrites] summaries) keep their finding but prefixed
      ["info (single-writer): "] — per-domain slot arrays joined before
      read are the motivating benign shape, and the prefix writes the
      waiver reason for you.

    One finding per (file, key): the first unprotected access anchors
    it, further accesses of the same key in the same file are the same
    defect and the same fix — the finding names the function so the
    defect is still addressable. Exempt paths and substrate files are
    skipped as everywhere else in the AST engine. *)

let rule = "static-race"

let scan (esc : Escape.t) : Lint_rules.finding list =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (a : Escape.access) ->
      let lvl = Escape.level_of esc a.akey in
      if
        Escape.rank lvl < Escape.rank Escape.Captured
        || a.aheld || a.afresh
        || Lint_rules.helping_exempt_path a.afile
        || Callgraph.is_substrate_file esc.cg a.afile
        || Hashtbl.mem seen (a.afile, a.akey)
      then None
      else begin
        Hashtbl.replace seen (a.afile, a.akey) ();
        let where =
          match Escape.seed_of esc a.akey with
          | Some s when s.sfile <> "" ->
              Printf.sprintf "%s, escapes at %s:%d" s.swhy s.sfile s.sline
          | Some s -> s.swhy
          | None -> "escape site unknown"
        in
        let prefix =
          if Escape.single_writer esc a.akey then "info (single-writer): "
          else ""
        in
        Some
          {
            Lint_rules.file = a.afile;
            line = a.aline;
            rule;
            msg =
              Printf.sprintf
                "%splain %s of %s in %s, which is %s (%s): unsynchronized \
                 cross-domain access — use Atomic, hold the protecting \
                 lock, or keep it domain-local; further accesses of this \
                 key in this file share this finding"
                prefix
                (if a.awrite then "write" else "read")
                a.akey a.afn
                (Escape.level_name lvl)
                where;
          }
      end)
    esc.accesses
