(** Parsetree-driven mutation engine over the concurrency protocols.

    Generates first-order mutants of the mound sources by locating
    protocol-relevant sites in the Parsetree and performing {e byte-range
    surgery on the original source} at those sites — never a re-print of
    the AST, so comments (and with them the waiver markers the analyses
    honour) survive mutation intact. Each operator in {!catalog} models
    one defect class the static suite claims to catch: demoting a CAS to
    a plain store, deleting a version stamp, dropping a backoff or a
    helping call, swapping a lock-acquisition pair, deleting a pad
    field, and so on — the same classes hand-seeded in
    [test/mutant_static.ml], here re-derived mechanically from the
    shipped sources.

    A mutant is {e valid} when the rewritten source still parses
    ({!Frontend.parse}); validity is checked at generation time, so
    every mutant handed to {!Killmatrix} is analyzable by both engines.
    Parsing is also the only compilation gate: a handful of operators
    (in-place publication on an immutable field, the [Stdlib.Atomic]
    demotion) produce sources the type checker would reject, which is
    fine for certifying {e analyzers} that run on parse trees — the
    caveat is documented in DESIGN.md §14. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Operator catalog                                                    *)
(* ------------------------------------------------------------------ *)

type op = {
  op_name : string;
  op_descr : string;
  op_rules : string list;
      (** static rules this operator is designed to trip; empty means
          the defect class is invisible to the static suite by design
          and the mutant is expected to survive into escalation *)
  op_twin : string option;
      (** name of the canned dynamic program ({!Harness.Mutation_exp})
          that demonstrates the defect class when the static union
          lets the mutant through *)
}

let catalog : op list =
  [
    {
      op_name = "cas-to-set";
      op_descr =
        "demote a compare-and-set to a plain store that assumes success";
      op_rules = [ "atomicity"; "stale-publish" ];
      op_twin = None;
    };
    {
      op_name = "demote-rmw";
      op_descr = "split fetch_and_add into a get-compute-set lost update";
      op_rules = [ "atomicity" ];
      op_twin = Some "size-drift";
    };
    {
      op_name = "drop-backoff";
      op_descr = "delete a cpu_relax/exponential backoff call site";
      op_rules = [ "static-retry"; "retry-no-backoff" ];
      op_twin = None;
    };
    {
      op_name = "drop-deadline";
      op_descr = "replace a deadline-expiry check with false (spin forever)";
      op_rules = [ "static-deadline" ];
      op_twin = None;
    };
    {
      op_name = "drop-help";
      op_descr =
        "delete every helping call (moundify/complete) from a retry loop";
      op_rules = [ "static-retry"; "static-deadline" ];
      op_twin = None;
    };
    {
      op_name = "drop-stamp";
      op_descr =
        "drop the version discipline: freeze seq/version stamps and delete \
         the protocol-bit re-validation reads before the CAS";
      op_rules = [ "aba-risk" ];
      op_twin = None;
    };
    {
      op_name = "drop-completion";
      op_descr =
        "flip a completing dirty=false / releasing locked=false store to true";
      op_rules = [ "static-retry"; "lock-leak" ];
      op_twin = None;
    };
    {
      op_name = "stale-republish";
      op_descr = "CAS back the very value read from the shared structure";
      op_rules = [ "stale-publish" ];
      op_twin = None;
    };
    {
      op_name = "inplace-publish";
      op_descr =
        "republish the shared read and mutate its field in place \
         (fresh-copy discipline deleted)";
      op_rules =
        [ "stale-publish"; "post-publish-mutation"; "escape"; "static-race" ];
      op_twin = None;
    };
    {
      op_name = "swap-lock-order";
      op_descr = "swap an adjacent pair of lock acquisitions";
      op_rules = [ "lock-order" ];
      op_twin = Some "lock-inversion-deadlock";
    };
    {
      op_name = "drop-unlock";
      op_descr = "delete an unlock call site";
      op_rules = [ "lock-leak" ];
      op_twin = None;
    };
    {
      op_name = "drop-pad";
      op_descr = "delete a pad field from a record type and its literals";
      op_rules = [ "layout" ];
      op_twin = None;
    };
    {
      op_name = "demote-atomic-get";
      op_descr = "bypass the Runtime functor with a direct Stdlib.Atomic.get";
      op_rules = [ "boundary" ];
      op_twin = None;
    };
    {
      op_name = "discard-cas";
      op_descr = "ignore a CAS result, deleting its failure path";
      op_rules = [ "cas-discard" ];
      op_twin = None;
    };
    {
      op_name = "alloc-in-retry";
      op_descr = "allocate a fresh array inside a CAS retry loop";
      op_rules = [ "alloc-in-retry" ];
      op_twin = None;
    };
    {
      op_name = "mutabilize";
      op_descr =
        "mark a field of a record published through an Atomic.t mutable";
      op_rules = [ "mutable-atomic" ];
      op_twin = None;
    };
    {
      op_name = "drop-waiver";
      op_descr =
        "delete a lint: allow marker: the waived finding must resurface";
      op_rules = [];
      op_twin = None;
    };
    {
      op_name = "drop-size-update";
      op_descr = "delete a size-counter fetch_and_add";
      op_rules = [];
      op_twin = Some "size-drift";
    };
    {
      op_name = "drop-top-refresh";
      op_descr = "delete the cached-top refresh from the unlock path";
      op_rules = [];
      op_twin = Some "stale-top";
    };
  ]

let op_names = List.map (fun o -> o.op_name) catalog
let find_op name = List.find_opt (fun o -> o.op_name = name) catalog

(** Union of every operator's target rules — the rule universe the kill
    matrix is judged over (hygiene rules and rules with no reachable
    site in the shipped tree are out of scope by construction). *)
let target_rules =
  List.concat_map (fun o -> o.op_rules) catalog |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Sites, edits, mutants                                               *)
(* ------------------------------------------------------------------ *)

type edit = { e_start : int; e_stop : int; e_text : string }

type site = { s_line : int; s_note : string; s_edits : edit list }

type mutant = {
  m_id : string;
  m_op : string;
  m_file : string;
  m_line : int;
  m_note : string;
  m_src : string;  (** the full mutated source *)
}

let span_of_loc (loc : Location.t) =
  (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let sub src (a, b) = String.sub src a (b - a)
let expr_src src e = sub src (span_of_loc e.pexp_loc)
let line_of e = Frontend.line_of_loc e.pexp_loc
let replace e text =
  let a, b = span_of_loc e.pexp_loc in
  { e_start = a; e_stop = b; e_text = text }

(* Apply edits back to front so earlier offsets stay valid; reject
   overlapping spans (a malformed collector, not a user error). *)
let apply_edits src (edits : edit list) : string option =
  let sorted =
    List.sort (fun a b -> compare b.e_start a.e_start) edits
  in
  let ok =
    let rec disjoint = function
      | a :: (b :: _ as rest) -> b.e_stop <= a.e_start && disjoint rest
      | _ -> true
    in
    disjoint sorted
  in
  if not ok then None
  else
    Some
      (List.fold_left
         (fun acc e ->
           String.sub acc 0 e.e_start ^ e.e_text
           ^ String.sub acc e.e_stop (String.length acc - e.e_stop))
         src sorted)

(* Extend a deletion span through the separator that kept the deleted
   element apart from its neighbours: the following [;] if there is
   one, else the preceding [;] (last element of a record). *)
let span_with_separator src (a, b) =
  let n = String.length src in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' in
  if b > a && src.[b - 1] = ';' then (a, b)
    (* the parser's own span already swallowed the trailing separator
       (label_declaration locs do); extending would eat a neighbour's *)
  else
  let j = ref b in
  while !j < n && is_ws src.[!j] do incr j done;
  if !j < n && src.[!j] = ';' then (a, !j + 1)
  else begin
    let i = ref (a - 1) in
    while !i >= 0 && is_ws src.[!i] do decr i done;
    if !i >= 0 && src.[!i] = ';' then (!i, b) else (a, b)
  end

(* ------------------------------------------------------------------ *)
(* Recognizers                                                         *)
(* ------------------------------------------------------------------ *)

let segs_of_head e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

let last_seg segs = List.nth segs (List.length segs - 1)
let prefix_str segs =
  String.concat "." (List.filteri (fun i _ -> i < List.length segs - 1) segs)

let cas_names = [ "cas"; "compare_and_set" ]

(** [M.cas loc expected fresh] / [R.Atomic.compare_and_set loc old new]:
    a dotted CAS-family application with three positional arguments. *)
let cas_app e =
  match e.pexp_desc with
  | Pexp_apply
      ( head,
        [
          (Asttypes.Nolabel, l); (Asttypes.Nolabel, x); (Asttypes.Nolabel, f);
        ] ) -> (
      match segs_of_head head with
      | Some segs when List.length segs >= 2 && List.mem (last_seg segs) cas_names
        ->
          Some (prefix_str segs, l, x, f)
      | _ -> None)
  | _ -> None

let seg_contains seg needle =
  let ls = String.lowercase_ascii seg in
  let ln = String.length needle and n = String.length ls in
  let rec go i = i + ln <= n && (String.sub ls i ln = needle || go (i + 1)) in
  go 0

let app_with_head_pred e pred =
  match e.pexp_desc with
  | Pexp_apply (head, args) -> (
      match segs_of_head head with
      | Some segs when pred segs -> Some (head, args)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* AST walks                                                           *)
(* ------------------------------------------------------------------ *)

let on_exprs (p : Frontend.parsed) (f : expression -> unit) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it p.p_ast

let on_type_decls (p : Frontend.parsed) (f : type_declaration -> unit) =
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it d ->
          f d;
          Ast_iterator.default_iterator.type_declaration it d);
    }
  in
  it.structure it p.p_ast

let rec fun_body e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, b) -> fun_body b
  | Pexp_newtype (_, b) -> fun_body b
  | _ -> e

let pat_var_name (pat : pattern) =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(** Visit every expression under one subtree (a single function body,
    unlike {!on_exprs} which walks the whole file). *)
let on_sub_exprs (body : expression) (f : expression -> unit) =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body

(** Visit every module-level value binding as (name, bound expression) —
    the per-function granularity the compound operators mutate at. *)
let on_bindings (p : Frontend.parsed) (f : string -> expression -> unit) =
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match pat_var_name vb.pvb_pat with
                  | Some name -> f name vb.pvb_expr
                  | None -> ())
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it p.p_ast

(* ------------------------------------------------------------------ *)
(* Enabling edits: summarizable lock primitives                        *)
(*                                                                     *)
(* The locking mound's acquire installs a let-bound witness record and *)
(* its release routes the [locked = false] store through [restamp], so *)
(* neither matches the literal-record shapes {!Summary} keys on — the  *)
(* lock rules are latent over the shipped tree, firing only on the     *)
(* hand-seeded fixtures' "faithful copies" (test/mutant_static.ml).    *)
(* The lock operators therefore carry two {e enabling} edits alongside *)
(* the defect: inline the witness literal into the acquiring CAS, and  *)
(* rewrite [unlock] as a direct release-shaped store. Both preserve    *)
(* the lease-free protocol; they exist so the summaries can see the    *)
(* acquire/release at all (DESIGN.md §14 records the caveat).          *)
(* ------------------------------------------------------------------ *)

let record_field_is fields fname lit =
  List.exists
    (fun ((lid : Longident.t Location.loc), fe) ->
      last_seg (Longident.flatten lid.txt) = fname
      &&
      match fe.pexp_desc with
      | Pexp_construct ({ txt = Lident c; _ }, None) -> c = lit
      | _ -> false)
    fields

(* [let mine = { ...; locked = true; ... } in ... cas loc expected mine]:
   replace the CAS's fresh-argument ident with the record literal so the
   acquire summary sees [locked = true]. First match only — one visible
   acquisition is enough to summarize the primitive. *)
let witness_inline_edits p src =
  let out = ref [] in
  on_exprs p (fun e ->
      match e.pexp_desc with
      | Pexp_let (_, [ vb ], cont) -> (
          match (pat_var_name vb.pvb_pat, vb.pvb_expr.pexp_desc) with
          | Some v, Pexp_record (fields, None)
            when record_field_is fields "locked" "true" ->
              let rec_src = expr_src src vb.pvb_expr in
              on_sub_exprs cont (fun e2 ->
                  match cas_app e2 with
                  | Some (_, _, _, f) -> (
                      match f.pexp_desc with
                      | Pexp_ident { txt = Lident fv; _ }
                        when fv = v && !out = [] ->
                          out := [ replace f rec_src ]
                      | _ -> ())
                  | None -> ())
          | _ -> ())
      | _ -> ());
  !out

(* [let unlock t slot ~witness list = restamp t slot ~witness REC]:
   rewrite the body as [R.Atomic.set slot REC] so the release summary
   sees the [locked = false] store directly. [flip] additionally turns
   the store into [locked = true] — the completion-drop defect. *)
let unlock_release_edits ?(flip = false) p src =
  let out = ref [] in
  on_bindings p (fun name body ->
      if seg_contains name "unlock" && !out = [] then
        let b = fun_body body in
        match b.pexp_desc with
        | Pexp_apply (head, args) -> (
            match segs_of_head head with
            | Some segs when seg_contains (last_seg segs) "restamp" -> (
                match Summary.nolabel_args args with
                | [ _t; slot; rec_arg ] -> (
                    match rec_arg.pexp_desc with
                    | Pexp_record (fields, _)
                      when record_field_is fields "locked" "false" ->
                        let rec_src =
                          if not flip then expr_src src rec_arg
                          else
                            (* splice [true] over the [false] literal,
                               offsets relative to the record span *)
                            let ra, _ = span_of_loc rec_arg.pexp_loc in
                            let fe =
                              List.find_map
                                (fun ((lid : Longident.t Location.loc), fe) ->
                                  if
                                    last_seg (Longident.flatten lid.txt)
                                    = "locked"
                                  then Some fe
                                  else None)
                                fields
                              |> Option.get
                            in
                            let fa, fb = span_of_loc fe.pexp_loc in
                            let rs = expr_src src rec_arg in
                            String.sub rs 0 (fa - ra) ^ "true"
                            ^ String.sub rs (fb - ra)
                                (String.length rs - (fb - ra))
                        in
                        out :=
                          [
                            replace b
                              (Printf.sprintf "R.Atomic.set %s %s"
                                 (expr_src src slot) rec_src);
                          ]
                    | _ -> ())
                | _ -> ())
            | _ -> ())
        | _ -> ());
  !out

(** Both enabling edits, or [] when the file has no such lock machinery
    (the lock operators then have no sites in it). *)
let enabling_lock_edits p src =
  match witness_inline_edits p src with
  | [] -> []
  | w -> w @ unlock_release_edits p src

(* ------------------------------------------------------------------ *)
(* Per-operator site collectors                                        *)
(* ------------------------------------------------------------------ *)

let sites_cas_to_set p src =
  let out = ref [] in
  on_exprs p (fun e ->
      match cas_app e with
      | Some (prefix, l, _x, f) ->
          out :=
            {
              s_line = line_of e;
              s_note = "CAS demoted to " ^ prefix ^ ".set";
              s_edits =
                [
                  replace e
                    (Printf.sprintf "(%s.set (%s) (%s); true)" prefix
                       (expr_src src l) (expr_src src f));
                ];
            }
            :: !out
      | None -> ());
  !out

let sites_demote_rmw p src =
  let out = ref [] in
  on_exprs p (fun e ->
      match
        app_with_head_pred e (fun segs ->
            List.length segs >= 2 && last_seg segs = "fetch_and_add")
      with
      | Some (head, [ (Asttypes.Nolabel, l); (Asttypes.Nolabel, d) ]) ->
          let prefix =
            prefix_str (Option.value (segs_of_head head) ~default:[ "X" ])
          in
          out :=
            {
              s_line = line_of e;
              s_note = "fetch_and_add split into get-compute-set";
              s_edits =
                [
                  replace e
                    (Printf.sprintf
                       "(let __n = %s.get (%s) in %s.set (%s) (__n + (%s)); \
                        __n)"
                       prefix (expr_src src l) prefix (expr_src src l)
                       (expr_src src d));
                ];
            }
            :: !out
      | _ -> ());
  !out

let sites_drop_backoff p _src =
  let out = ref [] in
  on_exprs p (fun e ->
      match
        app_with_head_pred e (fun segs ->
            let s = last_seg segs in
            s = "cpu_relax" || s = "exponential" || s = "once"
            || seg_contains s "backoff")
      with
      | Some _ ->
          out :=
            {
              s_line = line_of e;
              s_note = "backoff call deleted";
              s_edits = [ replace e "()" ];
            }
            :: !out
      | None -> ());
  !out

let sites_drop_deadline p _src =
  let out = ref [] in
  on_exprs p (fun e ->
      match app_with_head_pred e (fun segs -> last_seg segs = "expired") with
      | Some _ ->
          out :=
            {
              s_line = line_of e;
              s_note = "deadline-expiry check replaced with false";
              s_edits = [ replace e "false" ];
            }
            :: !out
      | None -> ());
  !out

(* One compound mutant per self-recursive retry loop: delete {e every}
   helping call it makes (a single dropped site leaves the loop's
   transitive [helps] intact through the others). Loops that also back
   off are skipped — static-retry cannot fire on them, the drop is
   invisible. *)
let sites_drop_help p src =
  let out = ref [] in
  on_bindings p (fun name body ->
      let b = fun_body body in
      let bsrc = expr_src src b in
      let backs_off =
        seg_contains bsrc "cpu_relax" || seg_contains bsrc "backoff"
      in
      if not backs_off then begin
        let self_rec = ref false in
        let helps = ref [] in
        let line = ref max_int in
        on_sub_exprs b (fun e ->
            match app_with_head_pred e (fun segs -> last_seg segs = name) with
            | Some _ -> self_rec := true
            | None -> (
                match
                  app_with_head_pred e (fun segs ->
                      let s = last_seg segs in
                      s <> name
                      && (seg_contains s "moundify"
                         || seg_contains s "help"
                         || seg_contains s "complete"))
                with
                | Some _ ->
                    helps := replace e "()" :: !helps;
                    line := min !line (line_of e)
                | None -> ()));
        if !self_rec && !helps <> [] then
          out :=
            {
              s_line = !line;
              s_note =
                Printf.sprintf "all %d helping calls in %s deleted"
                  (List.length !helps) name;
              s_edits = !helps;
            }
            :: !out
      end);
  !out

let stamp_fields = [ "seq"; "ver"; "stamp"; "epoch" ]

let protocol_field f =
  let lf = String.lowercase_ascii f in
  List.exists (seg_contains lf) [ "seq"; "ver"; "stamp"; "epoch" ]
  || seg_contains lf "dirty"
  || seg_contains lf "lock"

(* A branch condition that is a bare protocol-bit inspection
   ([cur.dirty], [not n.locked]) — the re-validation read the aba-risk
   analysis credits. Guarded shapes only; a condition that also
   performs the CAS is left alone. *)
let rec protocol_read_cond e =
  match e.pexp_desc with
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (try Longident.flatten txt with _ -> []) with
      | f :: _ -> protocol_field f
      | [] -> false)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "not"; _ }; _ },
        [ (Asttypes.Nolabel, a) ] ) ->
      protocol_read_cond a
  | _ -> false

(* One compound mutant per function that CASes directly: every computed
   version stamp becomes the constant [0] and every protocol-bit branch
   condition becomes [false] — the full version discipline deleted, the
   Unstamped_publish class re-derived in place. Both halves are needed:
   an unstamped fresh value alone stays invisible while the loop still
   re-validates [dirty]/[locked] before the CAS. *)
let sites_drop_stamp p _src =
  let direct_cas_heads = [ "cas"; "compare_and_set"; "dcss"; "dcas" ] in
  let out = ref [] in
  on_bindings p (fun _name body ->
      let b = fun_body body in
      let direct_cas = ref false in
      on_sub_exprs b (fun e ->
          match e.pexp_desc with
          | Pexp_apply (h, _) -> (
              match segs_of_head h with
              | Some segs
                when List.length segs >= 2
                     && List.mem (last_seg segs) direct_cas_heads ->
                  direct_cas := true
              | _ -> ())
          | _ -> ());
      if !direct_cas then begin
        let stamps = ref [] in
        let revals = ref [] in
        let line = ref max_int in
        on_sub_exprs b (fun e ->
            match e.pexp_desc with
            | Pexp_record (fields, _) ->
                List.iter
                  (fun ((lid : Longident.t Location.loc), fe) ->
                    if
                      List.mem
                        (last_seg (Longident.flatten lid.txt))
                        stamp_fields
                    then
                      match fe.pexp_desc with
                      | Pexp_apply _ ->
                          stamps := replace fe "0" :: !stamps;
                          line := min !line (line_of fe)
                      | _ -> ())
                  fields
            | Pexp_ifthenelse (cond, _, _) when protocol_read_cond cond ->
                revals := replace cond "false" :: !revals
            | _ -> ());
        if !stamps <> [] then
          out :=
            {
              s_line = !line;
              s_note =
                Printf.sprintf
                  "version discipline dropped: %d stamps frozen, %d \
                   re-validation reads removed"
                  (List.length !stamps) (List.length !revals);
              s_edits = !stamps @ !revals;
            }
            :: !out
      end);
  !out

(* Two shapes, matching the two mounds' completion protocols.

   Lock-free: per function, flip every [dirty = false] literal inside a
   CAS-family fresh argument to [true] — the function's completing
   CASes stop completing, so every retry loop reaching it loses its
   transitive [helps] and static-retry resurfaces. Per-field flips are
   useless here: one intact completing store keeps [helps] true.

   Locking: rewrite [unlock]'s store as [locked = true] (with the
   enabling edits making acquire and release summarizable at all) — the
   release never releases, and every acquiring path leaks. *)
let sites_drop_completion p src =
  let cas_heads = [ "cas"; "compare_and_set"; "dcss"; "dcas" ] in
  let out = ref [] in
  on_bindings p (fun name body ->
      let b = fun_body body in
      let flips = ref [] in
      let line = ref max_int in
      on_sub_exprs b (fun e ->
          match e.pexp_desc with
          | Pexp_apply (h, args) -> (
              match segs_of_head h with
              | Some segs
                when List.length segs >= 2
                     && List.mem (last_seg segs) cas_heads ->
                  List.iter
                    (fun a ->
                      match a.pexp_desc with
                      | Pexp_record (fields, _) ->
                          List.iter
                            (fun ((lid : Longident.t Location.loc), fe) ->
                              let lname =
                                last_seg (Longident.flatten lid.txt)
                              in
                              if lname = "dirty" || lname = "locked" then
                                match fe.pexp_desc with
                                | Pexp_construct
                                    ({ txt = Lident "false"; _ }, None) ->
                                    flips := replace fe "true" :: !flips;
                                    line := min !line (line_of fe)
                                | _ -> ())
                            fields
                      | _ -> ())
                    (Summary.nolabel_args args)
              | _ -> ())
          | _ -> ());
      if !flips <> [] then
        out :=
          {
            s_line = !line;
            s_note =
              Printf.sprintf
                "%d completing stores in %s no longer publish clean"
                (List.length !flips) name;
            s_edits = !flips;
          }
          :: !out);
  (match witness_inline_edits p src with
  | [] -> ()
  | wit -> (
      match unlock_release_edits ~flip:true p src with
      | [ e ] ->
          out :=
            {
              s_line =
                (let rec count i l =
                   if i >= e.e_start || i >= String.length src then l
                   else count (i + 1) (if src.[i] = '\n' then l + 1 else l)
                 in
                 count 0 1);
              s_note = "release store flipped to locked = true: never unlocks";
              s_edits = e :: wit;
            }
            :: !out
      | _ -> ()));
  !out

let sites_stale_republish p src =
  let out = ref [] in
  on_exprs p (fun e ->
      match cas_app e with
      | Some (_, _, x, f) when (match x.pexp_desc with
                                | Pexp_ident _ -> true
                                | _ -> false) ->
          out :=
            {
              s_line = line_of e;
              s_note = "fresh value replaced by the shared read itself";
              s_edits = [ replace f (expr_src src x) ];
            }
            :: !out
      | _ -> ());
  !out

let sites_inplace_publish p src =
  let out = ref [] in
  (* mutabilize the field we write through, when its declaration is in
     this file — the mutant then carries the full defect: a mutable
     field travelling through the shared cell, republished and edited
     in place *)
  let decl_edit fld =
    let found = ref None in
    on_type_decls p (fun d ->
        match d.ptype_kind with
        | Ptype_record labels ->
            List.iter
              (fun (l : label_declaration) ->
                if l.pld_name.txt = fld && l.pld_mutable = Asttypes.Immutable
                then
                  let a, _ = span_of_loc l.pld_loc in
                  found := Some { e_start = a; e_stop = a; e_text = "mutable " })
              labels
        | _ -> ());
    !found
  in
  on_exprs p (fun e ->
      match cas_app e with
      | Some (prefix, l, x, f) -> (
          match (x.pexp_desc, f.pexp_desc) with
          | Pexp_ident _, Pexp_record (((lid : Longident.t Location.loc), _) :: _, _) ->
              let fld = last_seg (Longident.flatten lid.txt) in
              let xs = expr_src src x in
              let body =
                Printf.sprintf
                  "(%s.cas (%s) %s %s && ((%s).%s <- (%s).%s; true))" prefix
                  (expr_src src l) xs xs xs fld xs fld
              in
              let edits =
                replace e body
                :: (match decl_edit fld with Some d -> [ d ] | None -> [])
              in
              out :=
                {
                  s_line = line_of e;
                  s_note =
                    Printf.sprintf
                      "republish and in-place write through .%s" fld;
                  s_edits = edits;
                }
                :: !out
          | _ -> ())
      | None -> ());
  !out

let lock_call e =
  match
    app_with_head_pred e (fun segs ->
        let s = last_seg segs in
        seg_contains s "set_lock" || s = "try_lock" || s = "acquire")
  with
  | Some _ -> true
  | None -> false

let sites_swap_lock_order p src =
  let out = ref [] in
  let swap ?(extra = []) ?note e1 e2 =
    let s1 = span_of_loc e1.pexp_loc and s2 = span_of_loc e2.pexp_loc in
    out :=
      {
        s_line = line_of e1;
        s_note =
          Option.value note ~default:"adjacent lock acquisitions swapped";
        s_edits =
          { e_start = fst s1; e_stop = snd s1; e_text = sub src s2 }
          :: { e_start = fst s2; e_stop = snd s2; e_text = sub src s1 }
          :: extra;
      }
      :: !out
  in
  let enab = enabling_lock_edits p src in
  on_exprs p (fun e ->
      match e.pexp_desc with
      | Pexp_sequence (e1, rest) when lock_call e1 ->
          let head2 =
            match rest.pexp_desc with Pexp_sequence (e2, _) -> e2 | _ -> rest
          in
          if lock_call head2 then swap e1 head2
      | Pexp_let (_, [ vb1 ], body) when lock_call vb1.pvb_expr -> (
          match body.pexp_desc with
          | Pexp_let (_, [ vb2 ], _) when lock_call vb2.pvb_expr ->
              swap vb1.pvb_expr vb2.pvb_expr
          | _ -> ())
      | Pexp_match (s1, cases) when lock_call s1 && enab <> [] ->
          (* [match acquire parent with Some wp -> match acquire child]:
             the hand-over-hand pair of the deadline-aware paths. The
             swap inverts parent/child; the enabling edits let the
             summary track the acquisition so lock-order proves the
             inversion statically. *)
          List.iter
            (fun c ->
              match c.pc_rhs.pexp_desc with
              | Pexp_match (s2, _) when lock_call s2 ->
                  swap
                    ~note:
                      "hand-over-hand acquisitions inverted (witness \
                       inlined for the summary)"
                    ~extra:enab s1 s2
              | _ -> ())
            cases
      | _ -> ());
  !out

(* Delete one release call on a path whose acquisition the summaries
   can track (a direct [set_lock_until] caller, with the enabling edits
   applied) — that path then reaches the end of the function still
   holding the node and lock-leak fires. Files without the witness
   machinery have no sites: their release calls are invisible to the
   analysis in the first place, so the drop could never be observed. *)
let sites_drop_unlock p src =
  let enab = enabling_lock_edits p src in
  let out = ref [] in
  if enab <> [] then
    on_bindings p (fun _name body ->
        let b = fun_body body in
        let tracked = ref false in
        on_sub_exprs b (fun e ->
            match
              app_with_head_pred e (fun segs ->
                  last_seg segs = "set_lock_until")
            with
            | Some _ -> tracked := true
            | None -> ());
        if !tracked then
          on_sub_exprs b (fun e ->
              match
                app_with_head_pred e (fun segs ->
                    seg_contains (last_seg segs) "unlock")
              with
              | Some _ ->
                  out :=
                    {
                      s_line = line_of e;
                      s_note =
                        "unlock call deleted (witness inlined for the \
                         summary)";
                      s_edits = replace e "()" :: enab;
                    }
                    :: !out
              | None -> ()));
  !out

let is_pad name =
  String.length name >= 3 && String.lowercase_ascii (String.sub name 0 3) = "pad"

let sites_drop_pad p src =
  let out = ref [] in
  on_type_decls p (fun d ->
      match d.ptype_kind with
      | Ptype_record labels ->
          List.iter
            (fun (l : label_declaration) ->
              if is_pad l.pld_name.txt then begin
                let decl_span =
                  span_with_separator src (span_of_loc l.pld_loc)
                in
                let literal_edits = ref [] in
                on_exprs p (fun e ->
                    match e.pexp_desc with
                    | Pexp_record (fields, _) ->
                        List.iter
                          (fun ((lid : Longident.t Location.loc), fe) ->
                            if
                              last_seg (Longident.flatten lid.txt)
                              = l.pld_name.txt
                            then
                              let a, _ = span_of_loc lid.loc in
                              let _, b = span_of_loc fe.pexp_loc in
                              let a, b = span_with_separator src (a, b) in
                              literal_edits :=
                                { e_start = a; e_stop = b; e_text = "" }
                                :: !literal_edits)
                          fields
                    | _ -> ());
                out :=
                  {
                    s_line = Frontend.line_of_loc l.pld_loc;
                    s_note = l.pld_name.txt ^ " field deleted";
                    s_edits =
                      {
                        e_start = fst decl_span;
                        e_stop = snd decl_span;
                        e_text = "";
                      }
                      :: !literal_edits;
                  }
                  :: !out
              end)
            labels
      | _ -> ());
  !out

let sites_demote_atomic_get p _src =
  let out = ref [] in
  on_exprs p (fun e ->
      match e.pexp_desc with
      | Pexp_apply (head, _) -> (
          match segs_of_head head with
          | Some segs
            when List.length segs >= 2
                 && last_seg segs = "get"
                 && List.exists (fun s -> s = "Atomic") segs ->
              let a, b = span_of_loc head.pexp_loc in
              out :=
                {
                  s_line = line_of e;
                  s_note = "Runtime read demoted to Stdlib.Atomic.get";
                  s_edits =
                    [ { e_start = a; e_stop = b; e_text = "Stdlib.Atomic.get" } ];
                }
                :: !out
          | _ -> ())
      | _ -> ());
  !out

let sites_discard_cas p src =
  let out = ref [] in
  on_exprs p (fun e ->
      match e.pexp_desc with
      | Pexp_ifthenelse (cond, _, None) -> (
          match cond.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Lident "not"; _ }; _ },
                [ (Asttypes.Nolabel, arg) ] )
            when cas_app arg <> None ->
              out :=
                {
                  s_line = line_of e;
                  s_note = "CAS failure path deleted, result ignored";
                  s_edits =
                    [ replace e (Printf.sprintf "ignore (%s)" (expr_src src arg)) ];
                }
                :: !out
          | _ -> ())
      | _ -> ());
  !out

(* The innermost body of a [fun]-chain: where an inserted binding lands
   inside the function proper, after its parameters. *)
let sites_alloc_in_retry (p : Frontend.parsed) src =
  let out = ref [] in
  let has_cas body =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match cas_app e with Some _ -> found := true | None -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it body;
    !found
  in
  let seen = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (Asttypes.Recursive, vbs) ->
              List.iter
                (fun vb ->
                  let body = fun_body vb.pvb_expr in
                  if has_cas body then begin
                    let a, _ = span_of_loc body.pexp_loc in
                    if not (List.mem a !seen) then begin
                      seen := a :: !seen;
                      out :=
                        {
                          s_line = Frontend.line_of_loc body.pexp_loc;
                          s_note = "array allocated inside the retry loop";
                          s_edits =
                            [
                              {
                                e_start = a;
                                e_stop = a;
                                e_text = "let _pool = Array.make 1 0 in ";
                              };
                            ];
                        }
                        :: !out
                    end
                  end)
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it p.p_ast;
  ignore src;
  !out

(* Identifier-with-dots tokens of [s], mirroring the token engine's
   published-through-an-Atomic test: a record is a target only when its
   name appears immediately before a path ending in [Atomic.t] (or an
   aliased [A.t]) — that is the record the mutable-atomic rule guards.
   A [mutable] on a record held in a plain array is legal OCaml the
   rule rightly ignores. *)
let ident_tokens s =
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident s.[!i] then begin
      let start = !i in
      while !i < n && (is_ident s.[!i] || s.[!i] = '.') do incr i done;
      out := String.sub s start (!i - start) :: !out
    end
    else incr i
  done;
  List.rev !out

let published_through_atomic src name =
  let ends_with ~suffix s =
    let ls = String.length s and lx = String.length suffix in
    ls >= lx && String.sub s (ls - lx) lx = suffix
  in
  let rec go = function
    | t1 :: (t2 :: _ as rest) ->
        (t1 = name && (ends_with ~suffix:"Atomic.t" t2 || t2 = "A.t"))
        || go rest
    | _ -> false
  in
  go (ident_tokens src)

let sites_mutabilize p src =
  let out = ref [] in
  on_type_decls p (fun d ->
      match d.ptype_kind with
      | Ptype_record labels when published_through_atomic src d.ptype_name.txt
        ->
          List.iter
            (fun (l : label_declaration) ->
              if l.pld_mutable = Asttypes.Immutable then
                let a, _ = span_of_loc l.pld_loc in
                out :=
                  {
                    s_line = Frontend.line_of_loc l.pld_loc;
                    s_note =
                      Printf.sprintf
                        "%s.%s marked mutable behind the record's Atomic.t"
                        d.ptype_name.txt l.pld_name.txt;
                    s_edits =
                      [ { e_start = a; e_stop = a; e_text = "mutable " } ];
                  }
                  :: !out)
            labels
      | _ -> ());
  !out

(* Waivers are comments, invisible to the Parsetree: a text scan finds
   each "lint: allow" marker and deletes the whole comment, nesting
   respected. Whatever the waiver was holding back must then
   resurface — the certification that waivers never mask a dead rule. *)
let sites_drop_waiver (p : Frontend.parsed) src =
  ignore p;
  let out = ref [] in
  let n = String.length src in
  let line_at off =
    let l = ref 1 in
    for i = 0 to off - 1 do
      if src.[i] = '\n' then incr l
    done;
    !l
  in
  let rec comment_end i depth =
    if i + 1 >= n then n
    else if src.[i] = '(' && src.[i + 1] = '*' then comment_end (i + 2) (depth + 1)
    else if src.[i] = '*' && src.[i + 1] = ')' then
      if depth = 1 then i + 2 else comment_end (i + 2) (depth - 1)
    else comment_end (i + 1) depth
  in
  let marker = "(* lint: allow" in
  let ml = String.length marker in
  let i = ref 0 in
  while !i + ml <= n do
    if String.sub src !i ml = marker then begin
      let stop = comment_end !i 0 in
      out :=
        {
          s_line = line_at !i;
          s_note = "waiver deleted; the waived finding must resurface";
          s_edits = [ { e_start = !i; e_stop = stop; e_text = "" } ];
        }
        :: !out;
      i := stop
    end
    else incr i
  done;
  !out

let sites_drop_size_update p src =
  let out = ref [] in
  on_exprs p (fun e ->
      match
        app_with_head_pred e (fun segs -> last_seg segs = "fetch_and_add")
      with
      | Some (_, (Asttypes.Nolabel, l) :: _) ->
          let ls = String.lowercase_ascii (expr_src src l) in
          if
            List.exists (fun w -> seg_contains ls w) [ "size"; "count" ]
          then
            out :=
              {
                s_line = line_of e;
                s_note = "size-counter update deleted";
                s_edits = [ replace e "0" ];
              }
              :: !out
      | _ -> ());
  !out

let sites_drop_top_refresh p _src =
  let out = ref [] in
  on_exprs p (fun e ->
      match
        app_with_head_pred e (fun segs ->
            List.length segs >= 2
            && last_seg segs = "set"
            && List.exists (fun s -> s = "Atomic") segs)
      with
      | Some (_, (Asttypes.Nolabel, l) :: _) -> (
          match l.pexp_desc with
          | Pexp_field (_, { txt; _ })
            when seg_contains (last_seg (Longident.flatten txt)) "top" ->
              out :=
                {
                  s_line = line_of e;
                  s_note = "cached-top refresh deleted";
                  s_edits = [ replace e "()" ];
                }
                :: !out
          | _ -> ())
      | _ -> ());
  !out

let collectors =
  [
    ("cas-to-set", sites_cas_to_set);
    ("demote-rmw", sites_demote_rmw);
    ("drop-backoff", sites_drop_backoff);
    ("drop-deadline", sites_drop_deadline);
    ("drop-help", sites_drop_help);
    ("drop-stamp", sites_drop_stamp);
    ("drop-completion", sites_drop_completion);
    ("stale-republish", sites_stale_republish);
    ("inplace-publish", sites_inplace_publish);
    ("swap-lock-order", sites_swap_lock_order);
    ("drop-unlock", sites_drop_unlock);
    ("drop-pad", sites_drop_pad);
    ("demote-atomic-get", sites_demote_atomic_get);
    ("discard-cas", sites_discard_cas);
    ("alloc-in-retry", sites_alloc_in_retry);
    ("mutabilize", sites_mutabilize);
    ("drop-waiver", sites_drop_waiver);
    ("drop-size-update", sites_drop_size_update);
    ("drop-top-refresh", sites_drop_top_refresh);
  ]

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

(** Valid mutants of one source file under the named operators (default:
    the whole catalog). Deterministic: sites are emitted in source
    order per operator, ids carry [op:file:line] plus a [#k]
    disambiguator when one line hosts several sites. Sites whose
    rewritten source no longer parses are dropped. *)
let mutants_of_file ?(ops = op_names) ((path, src) : string * string) :
    mutant list =
  match Frontend.parse ~path src with
  | Error _ -> []
  | Ok p ->
      let base = Filename.basename path in
      List.concat_map
        (fun op ->
          match List.assoc_opt op collectors with
          | None -> []
          | Some collect ->
              let sites =
                collect p src
                |> List.sort (fun a b -> compare (a.s_line, a.s_note) (b.s_line, b.s_note))
              in
              let counts = Hashtbl.create 8 in
              List.filter_map
                (fun s ->
                  match apply_edits src s.s_edits with
                  | None -> None
                  | Some msrc -> (
                      match Frontend.parse ~path msrc with
                      | Error _ -> None
                      | Ok _ ->
                          let key = (op, s.s_line) in
                          let k =
                            Option.value (Hashtbl.find_opt counts key)
                              ~default:0
                          in
                          Hashtbl.replace counts key (k + 1);
                          let id =
                            Printf.sprintf "%s:%s:%d%s" op base s.s_line
                              (if k = 0 then ""
                               else Printf.sprintf "#%d" k)
                          in
                          Some
                            {
                              m_id = id;
                              m_op = op;
                              m_file = path;
                              m_line = s.s_line;
                              m_note = s.s_note;
                              m_src = msrc;
                            }))
                sites)
        ops

(** Valid mutants across a file set, in (file, operator, line) order. *)
let mutants ?ops (files : (string * string) list) : mutant list =
  List.concat_map (fun f -> mutants_of_file ?ops f) files
