(** AST-based static analyzer: entry points and engine composition.

    Drives both engines over a set of sources: the token lint
    ({!Lint_rules}) and the Parsetree analyses ({!Lock_order},
    {!Publication}, {!Helping}, and the {!Dataflow}-powered
    {!Aba_risk}, {!Atomicity} and {!Layout}), merging their findings
    through the
    {e same} waiver machinery — a [lint: allow] comment with a reason
    silences an AST finding on its covered lines exactly as it silences
    a token finding, and waiver hygiene (reason required, stale waivers
    rejected) is judged against the union of both engines' findings.

    Cross-module facts (the call graph, transitive effects) need the
    whole file set at once, so the primary entry is {!scan_files};
    {!scan_tree} feeds it every [.ml] under a root. Interface files get
    the token engine only. Files in exempt paths ([runtime], [sim],
    [baselines]) are still parsed and summarized — their definitions
    ({!Backoff.Make.exponential}) must be linkable — but produce no
    AST findings of their own. *)

module Summary = Summary
module Callgraph = Callgraph
module Frontend = Frontend
module Mutate = Mutate
module Killmatrix = Killmatrix

type finding = Lint_rules.finding = {
  file : string;
  line : int;
  rule : string;
  msg : string;
}

let pp_finding = Lint_rules.pp_finding

(* The single registry every consumer derives from: [repro lint --rule]
   completion, [--list-rules] output, the README rule table (CI greps
   each name against it), and the engine split below. Adding a rule
   means adding a row here — nothing else can drift. *)
type engine = Ast | Token

let rule_table : (string * engine * string) list =
  [
    ("lock-order", Ast, "lock acquired above an already-held ancestor: inversion deadlock");
    ("lock-leak", Ast, "path returns with an acquired lock never released");
    ("stale-publish", Ast, "CASes back a value read from the shared structure without re-validation");
    ("post-publish-mutation", Ast, "plain field write through a record already published to other threads");
    ("static-retry", Ast, "call-graph CAS retry cycle reaching neither helping nor backoff");
    ("static-deadline", Ast, "unbounded retry cycle that never consults a deadline");
    ("aba-risk", Ast, "CAS expected value from an un-revalidated read of a recycled location");
    ("atomicity", Ast, "plain set stores a value computed from the same location's atomic read");
    ("layout", Ast, "adjacent hot fields share a cache line across CAS-performing functions");
    ("escape", Ast, "mutable location leaves its owning domain: spawn-captured, published, or module-global");
    ("static-race", Ast, "plain read/write of an escaped location outside any lock-held region");
    ("parse", Ast, "source does not parse; AST analyses skipped for the file");
    ("boundary", Token, "direct OS/clock/domain primitive where the Runtime functor is required");
    ("mutable-atomic", Token, "mutable record field in concurrent code that should be Atomic.t");
    ("dirty-spin", Token, "loop re-reading a dirty flag without helping the marked node");
    ("cas-discard", Token, "CAS result discarded: failure path never observed");
    ("retry-no-backoff", Token, "retry loop without a backoff call");
    ("deadline-blind", Token, "retry loop that never checks a deadline or until bound");
    ("alloc-in-retry", Token, "fresh allocation inside a CAS retry loop");
    ("format", Token, "tab/trailing-whitespace/final-newline hygiene");
    ("waiver", Token, "lint: allow marker malformed, reasonless, or stale");
  ]

let rule_doc name =
  List.find_map
    (fun (n, _, d) -> if n = name then Some d else None)
    rule_table

let static_rules =
  List.filter_map
    (fun (n, e, _) -> if e = Ast then Some n else None)
    rule_table

let token_rules =
  List.filter_map
    (fun (n, e, _) -> if e = Token then Some n else None)
    rule_table

(* The AST findings for a set of implementation sources, keyed by file.
   Exempt paths contribute summaries but never findings. *)
let static_findings (files : (string * string) list) :
    (string, finding list) Hashtbl.t =
  let parse_errors = ref [] in
  let parsed =
    List.filter_map
      (fun (path, src) ->
        if Filename.check_suffix path ".mli" then None
        else
          match Frontend.parse ~path src with
          | Ok p -> Some p
          | Error f ->
              parse_errors := f :: !parse_errors;
              None)
      files
  in
  let fns = List.concat_map Summary.of_parsed parsed in
  let cg = Callgraph.build fns in
  let esc = Escape.analyze parsed cg in
  let all =
    Lock_order.scan cg @ Publication.scan cg @ Helping.scan cg
    @ Aba_risk.scan cg @ Atomicity.scan cg @ Layout.scan parsed cg
    @ Escape.scan esc @ Races.scan esc
    @ List.rev !parse_errors
  in
  (* nested functions are walked both standalone and inline in their
     host; identical findings collapse *)
  let all = List.sort_uniq compare all in
  let byfile = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Hashtbl.replace byfile f.file
        (f :: (Hashtbl.find_opt byfile f.file |> Option.value ~default:[])))
    all;
  Hashtbl.iter
    (fun k v -> Hashtbl.replace byfile k (List.rev v))
    (Hashtbl.copy byfile);
  byfile

(* One defect, one finding: when both engines flag the same file:line,
   the token rule and its AST sibling describe the same problem from two
   vantage points — keep the AST finding (it names the protocol) and
   drop the token one. Pairings are explicit so unrelated co-located
   findings still both surface. *)
let sibling_rules =
  [
    ("retry-no-backoff", [ "static-retry"; "static-deadline" ]);
    ("deadline-blind", [ "static-deadline"; "static-retry" ]);
    ("dirty-spin", [ "static-retry"; "aba-risk" ]);
    ("cas-discard", [ "atomicity"; "aba-risk"; "stale-publish" ]);
    ("mutable-atomic", [ "escape"; "static-race" ]);
  ]

let dedupe_tokens ~(extra : finding list) (raw : Lint_rules.raw) :
    Lint_rules.raw =
  {
    raw with
    Lint_rules.raw_base =
      List.filter
        (fun (f : finding) ->
          match List.assoc_opt f.rule sibling_rules with
          | None -> true
          | Some asts ->
              not
                (List.exists
                   (fun (g : finding) ->
                     g.file = f.file && g.line = f.line
                     && List.mem g.rule asts)
                   extra))
        raw.Lint_rules.raw_base;
  }

let scan_files ?(merge_siblings = true) (files : (string * string) list) :
    finding list =
  let statics = static_findings files in
  List.concat_map
    (fun (path, src) ->
      let raw = Lint_rules.scan_raw ~path src in
      let extra =
        Hashtbl.find_opt statics path |> Option.value ~default:[]
      in
      let raw = if merge_siblings then dedupe_tokens ~extra raw else raw in
      Lint_rules.apply_waivers ~path raw ~extra)
    files

let scan ~path src = scan_files [ (path, src) ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let scan_file path = scan_files [ (path, read_file path) ]

(** Both engines over every [.ml]/[.mli] under the roots, linked as one
    program: cross-module effect propagation spans all roots. *)
let scan_trees roots : finding list =
  let files =
    List.concat_map Lint_rules.files_under roots
    |> List.sort compare
    |> List.map (fun p -> (p, read_file p))
  in
  scan_files files

let scan_tree root = scan_trees [ root ]

(** Mutant × rule kill matrix of [mutants] over the pristine [context]
    file set — the composition {!Killmatrix} itself cannot perform from
    below the library's main module. The matrix scans {e without}
    sibling merging: the merge is presentation-level (one defect, one
    finding for the human reader), while the matrix asks which rules
    {e detect} a mutant — a token rule deduped into its AST sibling at
    the same line still fired, and its kill is credited. Waivers apply
    as in the merged scan. *)
let killmatrix ~context mutants =
  Killmatrix.run ~scan:(scan_files ~merge_siblings:false) ~context mutants

(** AST engine only — the rule author's fast inner loop ([@analysis]
    alias, [lint.exe --ast-only]). Findings are still waiver-filtered
    (the full two-engine scan computes waiver coverage), then narrowed
    to the AST rule set; waiver-hygiene findings are left to the full
    scan, where staleness is judged against both engines' findings. *)
let scan_trees_static roots : finding list =
  scan_trees roots
  |> List.filter (fun f -> List.mem f.rule static_rules)
