(** Flow-sensitive abstract interpretation over one function body.

    A small dataflow engine shared by the atomic-protocol analyses
    ({!Aba_risk}, {!Atomicity}): a single forward pass over the body in
    evaluation order — let-sequences, matches, conditionals, loops —
    threading an abstract state that maps local names to {e facts}:

    - [Shared_read]: the variable holds the result of a dotted [get] on
      an atomic location, keyed by the location's field/variable name,
      with a mutable [revalidated] flag that flips once the value's
      dirty bit or version counter is inspected ([n.dirty], [n.seq],
      [s.locked], [s.version] — the protocol's own re-validation
      vocabulary);
    - [Derived]: the variable was computed from a [Shared_read] (field
      projection, pattern destructuring, or any expression containing a
      fact-carrying name) and remembers the originating location key;
    - [Fresh_rec]: the variable holds a freshly allocated mutable value
      — a record literal (remembering whether it is {e stamped}: binds a
      version-vocabulary field ([seq]/[ver]/[stamp]/[epoch]) to a
      computed bump rather than a constant or a plain copy, and which
      field labels it carries), a [ref], or an [Array]/[Bytes.make].
      Freshness is {e killed} the first time the variable is mentioned
      in any call argument: handing the value to a callee — a spawn, an
      atomic publish, or an opaque helper — may share it, so accesses
      after that point are no longer provably pre-publication. Hooks
      fire before the kill, so a publish hook still sees the fact.

    The pass also threads a {e lock-held} counter: the [classify_lock]
    hook is consulted at every applied-identifier site, and
    [Acquire]/[Release] verdicts bump [ctx.held] up/down (floored at
    zero) in evaluation order. Path-insensitivity applies here too — a
    conditional acquire leaks its count past the join, which
    over-approximates protection {e inside} that function only; clients
    treat [held > 0] as "under some lock", which errs toward silence,
    never toward a spurious finding.

    The pass is deliberately path-{e in}sensitive: both branches of a
    conditional and every match arm update one shared state, so a fact
    established on any path survives to the join. That over-approximates
    reads (possible false positives, waivable) and never invents
    spurious cleanliness on the path that matters. Aliasing through
    data structures, closures capturing facts, and facts flowing through
    unresolved call results are all invisible — each hides a violation
    at worst, consistent with the rest of the AST engine.

    Clients drive the pass with {!hooks}: callbacks fired at CAS-family
    sites, at non-release dotted [set] sites, and at every other
    resolved call, each {e before} the site's own arguments are walked —
    so the version bump inside a CAS's fresh record ([seq = cur.seq +
    1]) does not count as re-validation of the read it is about to
    replace. *)

open Parsetree

type fact =
  | Shared_read of sr
  | Derived of { dkey : string }
  | Fresh_rec of { stamped : bool; labels : string list }

and sr = { key : string; rline : int; mutable revalidated : bool }

type ctx = { facts : (string, fact) Hashtbl.t; mutable held : int }

(* ---- protocol vocabulary ---------------------------------------------- *)

let version_name f =
  let f = String.lowercase_ascii f in
  Summary.contains_sub f "seq"
  || Summary.contains_sub f "ver"
  || Summary.contains_sub f "stamp"
  || Summary.contains_sub f "epoch"

(* Inspecting any of these on a shared read counts as re-validating it
   before a CAS: the dirty/locked bits and the version counter are the
   fields the mound protocols branch on. *)
let revalidation_name f =
  let lf = String.lowercase_ascii f in
  version_name f
  || Summary.contains_sub lf "dirty"
  || Summary.contains_sub lf "lock"

(* ---- location keys ---------------------------------------------------- *)

(* Same syntactic keying as {!Summary.loc_write_key}: what a function
   writes (its [fwrites]) and what a fact was read from must compare
   under one notion of "the same location". *)
let loc_key = Summary.loc_write_key

(* ---- facts ------------------------------------------------------------ *)

let fact_key = function
  | Shared_read { key; _ } -> Some key
  | Derived { dkey } -> Some dkey
  | Fresh_rec _ -> None

(* A record literal stamped with a fresh version: some version-vocab
   field bound to a computed expression ([seq = cur.seq + 1]), not a
   constant reset or a plain copy of the old counter. *)
let stamped_record fields =
  List.exists
    (fun ((lid : Longident.t Asttypes.loc), v) ->
      (match lid.txt with
      | Longident.Lident f -> version_name f
      | _ -> false)
      &&
      match (Summary.strip_casts v).pexp_desc with
      | Pexp_apply (_, _) -> true
      | _ -> false)
    fields

(* First location key reachable from [e] through known facts or a
   direct dotted [get]: the containment scan used to decide whether a
   stored value was computed from a shared read. *)
let rec contained_key ctx e =
  let e = Summary.strip_casts e in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident v; _ } ->
      Option.bind (Hashtbl.find_opt ctx.facts v) fact_key
  | Pexp_apply (head, args) -> (
      let direct =
        match Summary.flatten_ident head with
        | Some segs when List.length segs >= 2 -> (
            match List.rev segs with
            | "get" :: _ -> (
                match Summary.nolabel_args args with
                | loc :: _ -> loc_key loc
                | [] -> None)
            | _ -> None)
        | _ -> None
      in
      match direct with
      | Some _ as k -> k
      | None ->
          List.find_map (fun (_, a) -> contained_key ctx a) args)
  | Pexp_field (r, _) -> contained_key ctx r
  | Pexp_construct (_, a) | Pexp_variant (_, a) ->
      Option.bind a (contained_key ctx)
  | Pexp_tuple es | Pexp_array es -> List.find_map (contained_key ctx) es
  | Pexp_record (fields, base) -> (
      match List.find_map (fun (_, v) -> contained_key ctx v) fields with
      | Some _ as k -> k
      | None -> Option.bind base (contained_key ctx))
  | Pexp_ifthenelse (_, t, e) -> (
      match contained_key ctx t with
      | Some _ as k -> k
      | None -> Option.bind e (contained_key ctx))
  | Pexp_match (_, cases) ->
      List.find_map (fun c -> contained_key ctx c.pc_rhs) cases
  | _ -> None

(* Abstract value of [e] in the current state. *)
let fact_of ctx e =
  let e = Summary.strip_casts e in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident v; _ } ->
      Hashtbl.find_opt ctx.facts v
  | Pexp_record (fields, _) ->
      Some
        (Fresh_rec
           {
             stamped = stamped_record fields;
             labels =
               List.filter_map
                 (fun ((lid : Longident.t Asttypes.loc), _) ->
                   match lid.txt with
                   | Longident.Lident f -> Some f
                   | _ -> None)
                 fields;
           })
  | Pexp_field (r, _) -> (
      match contained_key ctx r with
      | Some k -> Some (Derived { dkey = k })
      | None -> None)
  | Pexp_apply (head, args) -> (
      match Summary.flatten_ident head with
      | Some [ "ref" ] when args <> [] ->
          (* [ref e]: a fresh cell, keyed (for escape clients) by the
             variable it gets bound to *)
          Some (Fresh_rec { stamped = false; labels = [] })
      | Some segs when List.length segs >= 2 -> (
          match List.rev segs with
          | ("make" | "create" | "init") :: m :: _
            when m = "Array" || m = "Bytes" || m = "Buffer" ->
              Some (Fresh_rec { stamped = false; labels = [] })
          | "get" :: _ -> (
              match Summary.nolabel_args args with
              | loc :: _ -> (
                  match loc_key loc with
                  | Some key ->
                      Some
                        (Shared_read
                           {
                             key;
                             rline = Frontend.line_of_loc e.pexp_loc;
                             revalidated = false;
                           })
                  | None -> None)
              | [] -> None)
          | _ ->
              Option.map
                (fun k -> Derived { dkey = k })
                (contained_key ctx e))
      | _ ->
          Option.map (fun k -> Derived { dkey = k }) (contained_key ctx e))
  | _ ->
      Option.map (fun k -> Derived { dkey = k }) (contained_key ctx e)

(* ---- the walk --------------------------------------------------------- *)

(** Verdict of {!hooks.classify_lock} on one applied identifier. *)
type lock_class = Acquire | Release | Neither

type hooks = {
  h_cas : ctx -> line:int -> op:string -> expression list -> unit;
      (** a dotted CAS-family call; the list is its [Nolabel] args *)
  h_set : ctx -> line:int -> loc:expression -> value:expression -> unit;
      (** a dotted [set] that is not a lock release *)
  h_call : ctx -> line:int -> segs:string list -> expression list -> unit;
      (** any other applied identifier, unresolved segments + args *)
  h_field : ctx -> line:int -> record:expression -> field:string -> unit;
      (** a [r.f] read, fired before [r] itself is walked *)
  h_setfield :
    ctx ->
    line:int ->
    record:expression ->
    field:string ->
    value:expression ->
    unit;  (** a [r.f <- v] store, fired before [r] and [v] are walked *)
  classify_lock : segs:string list -> lock_class;
      (** consulted at every applied-identifier site to maintain the
          lock-held counter [ctx.held] *)
}

let no_hooks =
  {
    h_cas = (fun _ ~line:_ ~op:_ _ -> ());
    h_set = (fun _ ~line:_ ~loc:_ ~value:_ -> ());
    h_call = (fun _ ~line:_ ~segs:_ _ -> ());
    h_field = (fun _ ~line:_ ~record:_ ~field:_ -> ());
    h_setfield = (fun _ ~line:_ ~record:_ ~field:_ ~value:_ -> ());
    classify_lock = (fun ~segs:_ -> Neither);
  }

let rec pat_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (p, { txt; _ }) -> txt :: pat_vars p
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p -> pat_vars p
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pat_vars p
  | Ppat_record (fields, _) ->
      List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | _ -> []

let run (hooks : hooks) (body : expression) : unit =
  let ctx = { facts = Hashtbl.create 16; held = 0 } in
  let rec walk e =
    let e = Summary.strip_casts e in
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        List.iter
          (fun vb ->
            walk vb.pvb_expr;
            let ps, _ = Summary.fn_shape vb.pvb_expr in
            match Summary.pat_var vb.pvb_pat with
            | Some name when ps = [] -> (
                match fact_of ctx vb.pvb_expr with
                | Some fact -> Hashtbl.replace ctx.facts name fact
                | None -> Hashtbl.remove ctx.facts name)
            | Some _ -> ()
            | None -> (
                (* destructuring let: pieces of a fact-carrying value
                   stay derived from its location *)
                match contained_key ctx vb.pvb_expr with
                | Some k ->
                    List.iter
                      (fun v ->
                        Hashtbl.replace ctx.facts v (Derived { dkey = k }))
                      (pat_vars vb.pvb_pat)
                | None ->
                    List.iter
                      (fun v -> Hashtbl.remove ctx.facts v)
                      (pat_vars vb.pvb_pat)))
          vbs;
        walk cont
    | Pexp_apply (head, args) -> (
        let line = Frontend.line_of_loc e.pexp_loc in
        (* handing a fresh value to any callee may share it: its
           pre-publication window ends here, before the arguments —
           including a spawned closure's body — are walked *)
        let kill_fresh () =
          List.iter
            (fun (_, a) ->
              List.iter
                (fun v ->
                  match Hashtbl.find_opt ctx.facts v with
                  | Some (Fresh_rec _) -> Hashtbl.remove ctx.facts v
                  | _ -> ())
                (Summary.idents_of a))
            args
        in
        let fire_then_walk_args fire =
          fire ();
          kill_fresh ();
          List.iter (fun (_, a) -> walk a) args
        in
        let adjust segs =
          match hooks.classify_lock ~segs with
          | Acquire -> ctx.held <- ctx.held + 1
          | Release -> ctx.held <- max 0 (ctx.held - 1)
          | Neither -> ()
        in
        match Summary.flatten_ident head with
        | Some segs when List.length segs >= 2 ->
            let last = List.nth segs (List.length segs - 1) in
            let nargs = Summary.nolabel_args args in
            (if List.mem last Summary.cas_family then
               fire_then_walk_args (fun () ->
                   hooks.h_cas ctx ~line ~op:last nargs)
             else if last = "set" then
               match nargs with
               | [ loc; value ]
                 when not
                        (Summary.record_sets_field "locked" false value
                        || Summary.is_bool_lit false value) ->
                   fire_then_walk_args (fun () ->
                       hooks.h_set ctx ~line ~loc ~value)
               | _ ->
                   (* not an Atomic-shaped 2-arg set: 3-arg [Array.set]
                      (the [a.(i) <- v] sugar) and release-shaped stores
                      are still calls clients must see as plain writes *)
                   fire_then_walk_args (fun () ->
                       hooks.h_call ctx ~line ~segs nargs)
             else
               fire_then_walk_args (fun () ->
                   hooks.h_call ctx ~line ~segs nargs));
            adjust segs
        | Some segs ->
            fire_then_walk_args (fun () ->
                hooks.h_call ctx ~line ~segs (Summary.nolabel_args args));
            adjust segs
        | None ->
            walk head;
            kill_fresh ();
            List.iter (fun (_, a) -> walk a) args)
    | Pexp_field (r, { txt; _ }) -> (
        (match List.rev (try Longident.flatten txt with _ -> []) with
        | f :: _ ->
            hooks.h_field ctx
              ~line:(Frontend.line_of_loc e.pexp_loc)
              ~record:r ~field:f
        | [] -> ());
        walk r;
        (* [n.dirty] / [cur.seq]: inspecting the protocol bits of a
           shared read re-validates it *)
        match (Summary.strip_casts r).pexp_desc with
        | Pexp_ident { txt = Longident.Lident v; _ } -> (
            match
              ( Hashtbl.find_opt ctx.facts v,
                List.rev (try Longident.flatten txt with _ -> []) )
            with
            | Some (Shared_read sr), f :: _ when revalidation_name f ->
                sr.revalidated <- true
            | _ -> ())
        | _ -> ())
    | Pexp_match (s, cases) | Pexp_try (s, cases) ->
        walk s;
        let skey = contained_key ctx s in
        List.iter
          (fun c ->
            (match skey with
            | Some k ->
                List.iter
                  (fun v ->
                    Hashtbl.replace ctx.facts v (Derived { dkey = k }))
                  (pat_vars c.pc_lhs)
            | None ->
                List.iter
                  (fun v -> Hashtbl.remove ctx.facts v)
                  (pat_vars c.pc_lhs));
            Option.iter walk c.pc_guard;
            walk c.pc_rhs)
          cases
    | Pexp_sequence (a, b) ->
        walk a;
        walk b
    | Pexp_ifthenelse (c, t, el) ->
        walk c;
        walk t;
        Option.iter walk el
    | Pexp_function cases ->
        List.iter
          (fun c ->
            Option.iter walk c.pc_guard;
            walk c.pc_rhs)
          cases
    | Pexp_fun (_, _, _, b)
    | Pexp_lazy b
    | Pexp_newtype (_, b)
    | Pexp_open (_, b)
    | Pexp_assert b ->
        walk b
    | Pexp_while (a, b) ->
        walk a;
        walk b
    | Pexp_for (_, a, b, _, c) ->
        walk a;
        walk b;
        walk c
    | Pexp_setfield (r, { txt; _ }, v) ->
        (match List.rev (try Longident.flatten txt with _ -> []) with
        | f :: _ ->
            hooks.h_setfield ctx
              ~line:(Frontend.line_of_loc e.pexp_loc)
              ~record:r ~field:f ~value:v
        | [] -> ());
        walk r;
        walk v
    | Pexp_record (fs, base) ->
        List.iter (fun (_, v) -> walk v) fs;
        Option.iter walk base
    | Pexp_tuple es | Pexp_array es -> List.iter walk es
    | Pexp_construct (_, a) | Pexp_variant (_, a) -> Option.iter walk a
    | Pexp_letmodule (_, _, b) -> walk b
    | _ -> ()
  in
  walk body
