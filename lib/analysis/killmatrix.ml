(** Mutant × rule kill matrix over the static rule union.

    For each {!Mutate.mutant}, the mutated source is substituted into
    the pristine file set and the whole set re-scanned — both engines,
    cross-module effects, the real waiver machinery. The scanner itself
    is injected ([Analysis.scan_files] in practice: this module sits
    below the library's main module, so the composition happens there —
    use [Analysis.killmatrix]). The pristine set scans clean (asserted
    by {!run}), so any surviving finding is attributable to the
    mutation: the set of defect rules that fire is the mutant's kill
    set. Hygiene rules ([parse], [format], [waiver]) never earn kill
    credit — byte surgery legitimately orphans a waiver or leaves
    trailing whitespace without saying anything about the defect the
    operator planted.

    Survivors carry the operator's dynamic-twin name when the catalog
    maps one ({!twin_of_op}); running those twins is the harness'
    business ([Harness.Mutation_exp]) — this module stays below the
    harness in the dependency order and only reports the mapping. *)

type scanner = (string * string) list -> Lint_rules.finding list

type row = {
  r_mutant : Mutate.mutant;
  r_killed_by : string list;  (** defect rules with ≥1 finding, sorted *)
}

type t = {
  k_files : string list;  (** pristine scan context, in scan order *)
  k_rules : string list;  (** rule universe: {!Mutate.target_rules} *)
  k_rows : row list;
}

let hygiene_rules = [ "parse"; "format"; "waiver" ]

exception Dirty_context of Lint_rules.finding list
(** The pristine file set does not scan clean — kill attribution would
    be meaningless. Carries the pre-existing findings. *)

let kill_set ~(scan : scanner) ~(context : (string * string) list)
    (m : Mutate.mutant) : string list =
  let files =
    List.map
      (fun (p, s) -> if p = m.Mutate.m_file then (p, m.Mutate.m_src) else (p, s))
      context
  in
  scan files
  |> List.filter_map (fun (f : Lint_rules.finding) ->
         if List.mem f.rule hygiene_rules then None else Some f.rule)
  |> List.sort_uniq compare

(** Run every mutant through the union. Raises {!Dirty_context} if the
    unmutated context has findings of its own. *)
let run ~(scan : scanner) ~(context : (string * string) list)
    (ms : Mutate.mutant list) : t =
  (match
     scan context
     |> List.filter (fun (f : Lint_rules.finding) ->
            not (List.mem f.rule hygiene_rules))
   with
  | [] -> ()
  | dirty -> raise (Dirty_context dirty));
  {
    k_files = List.map fst context;
    k_rules = Mutate.target_rules;
    k_rows =
      List.map
        (fun m -> { r_mutant = m; r_killed_by = kill_set ~scan ~context m })
        ms;
  }

let killed (t : t) = List.filter (fun r -> r.r_killed_by <> []) t.k_rows
let survivors (t : t) = List.filter (fun r -> r.r_killed_by = []) t.k_rows

let kill_rate (t : t) =
  if t.k_rows = [] then 0.
  else
    float_of_int (List.length (killed t))
    /. float_of_int (List.length t.k_rows)

(** Kills per rule over the whole matrix, every universe rule present
    (possibly at zero) so a silent rule is visible, extra rules the
    mutants tripped appended after. *)
let rule_kills (t : t) : (string * int) list =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun rule ->
          Hashtbl.replace tally rule
            (1 + Option.value (Hashtbl.find_opt tally rule) ~default:0))
        r.r_killed_by)
    t.k_rows;
  let in_universe =
    List.map
      (fun rule ->
        (rule, Option.value (Hashtbl.find_opt tally rule) ~default:0))
      t.k_rules
  in
  let extra =
    Hashtbl.fold
      (fun rule n acc ->
        if List.mem rule t.k_rules then acc else (rule, n) :: acc)
      tally []
    |> List.sort compare
  in
  in_universe @ extra

(** The dynamic twin the catalog maps this operator to, if any. *)
let twin_of_op op =
  match Mutate.find_op op with Some o -> o.Mutate.op_twin | None -> None

(** Escalation status of a matrix row before any twin has run:
    [`Killed rules], [`Escalate twin] (survivor with a mapped dynamic
    program) or [`Gap] (survivor the suite is simply blind to). *)
let triage (r : row) =
  match r.r_killed_by with
  | _ :: _ as rules -> `Killed rules
  | [] -> (
      match twin_of_op r.r_mutant.Mutate.m_op with
      | Some twin -> `Escalate twin
      | None -> `Gap)
