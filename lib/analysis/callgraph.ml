(** Cross-module call graph over {!Summary} facts.

    Functions from all analyzed files are indexed by their full module
    path ([Tree.Make.get_at]). A call resolves to its target by exact
    path match first; failing that, by suffix: the callee's recorded
    path may carry library-wrapper prefixes the definition site does not
    ([Runtime.Backoff.Make.exponential] resolves to the function
    [Backoff.Make.exponential]). Ambiguous suffixes prefer the longest
    definition path, then a definition in the calling file, and resolve
    to nothing otherwise — a missed edge under-approximates effects,
    which for every rule here means a possible false positive (waivable)
    and never a silent pass.

    Transitive effects are a fixpoint over the resolved edges, with one
    deliberate cut: an edge {e crossing files into a CAS substrate} — a
    file defining any of [cas]/[dcas]/[dcss]/[casn]/[compare_and_set] —
    contributes only the substrate's [performs_cas] fact, never its
    [helps] or [backs_off]. {!Mcas} helps internally on every operation
    (that is what makes it lock-free), but a client loop retrying a
    failed [M.cas] is spinning on {e real contention}, which the
    substrate's internal helping does nothing to relieve; without the
    cut every client of [Mcas] would count as helping and the
    helping-discipline rule could flag nothing. Within a substrate file
    its own loops keep their helping facts. *)

type t = {
  fns : Summary.fn array;
  by_path : (string, int list) Hashtbl.t;
  substrate_files : (string, unit) Hashtbl.t;
  edges : int list array;  (* resolved callee ids per function *)
  trans : Summary.effects array;
  reaches_self : bool array;
}

let join = String.concat "."

let rec is_suffix ~suffix l =
  let ls = List.length suffix and ll = List.length l in
  if ls > ll then false
  else if ls = ll then suffix = l
  else match l with [] -> false | _ :: tl -> is_suffix ~suffix tl

let fns t = t.fns

let fn t i = t.fns.(i)

let is_substrate_file t file = Hashtbl.mem t.substrate_files file

(* Resolve a call path to a function id: exact, then definition-path-
   is-suffix-of-call-path (library wrappers), longest match preferred,
   then same-file. *)
let resolve ?from_file t segs =
  match Hashtbl.find_opt t.by_path (join segs) with
  | Some [ i ] -> Some i
  | Some (i :: _ as ids) -> (
      match from_file with
      | Some f -> (
          match List.find_opt (fun j -> t.fns.(j).ffile = f) ids with
          | Some j -> Some j
          | None -> Some i)
      | None -> Some i)
  | _ ->
      let candidates = ref [] in
      Array.iteri
        (fun i (f : Summary.fn) ->
          if is_suffix ~suffix:f.fpath segs then
            candidates := (List.length f.fpath, i) :: !candidates)
        t.fns;
      (match List.sort (fun (a, _) (b, _) -> compare b a) !candidates with
      | [] -> None
      | [ (_, i) ] -> Some i
      | (len, i) :: rest -> (
          let best = i :: List.filter_map
                            (fun (l, j) -> if l = len then Some j else None)
                            rest
          in
          match from_file with
          | Some f -> (
              match
                List.find_opt (fun j -> t.fns.(j).ffile = f) best
              with
              | Some j -> Some j
              | None -> if List.length best = 1 then Some i else None)
          | None -> if List.length best = 1 then Some i else None))

let trans_effects t i = t.trans.(i)

let self_reachable t i = t.reaches_self.(i)

(* Does following this edge cross files into a CAS substrate? *)
let cut_edge t ~from_file j =
  let g = t.fns.(j) in
  g.ffile <> from_file && Hashtbl.mem t.substrate_files g.ffile

let build (all : Summary.fn list) : t =
  let fns = Array.of_list all in
  let by_path = Hashtbl.create 64 in
  Array.iteri
    (fun i (f : Summary.fn) ->
      let k = join f.fpath in
      Hashtbl.replace by_path k
        (i :: (Hashtbl.find_opt by_path k |> Option.value ~default:[])))
    fns;
  let substrate_files = Hashtbl.create 8 in
  Array.iter
    (fun (f : Summary.fn) ->
      match List.rev f.fpath with
      | last :: _ when List.mem last Summary.cas_family ->
          Hashtbl.replace substrate_files f.ffile ()
      | _ -> ())
    fns;
  let t0 =
    {
      fns;
      by_path;
      substrate_files;
      edges = Array.make (Array.length fns) [];
      trans = Array.map (fun (f : Summary.fn) -> f.fdirect) fns;
      reaches_self = Array.make (Array.length fns) false;
    }
  in
  Array.iteri
    (fun i (f : Summary.fn) ->
      t0.edges.(i) <-
        List.filter_map
          (fun (c : Summary.call) ->
            resolve ~from_file:f.ffile t0 c.callee)
          f.fcalls
        |> List.sort_uniq compare)
    fns;
  (* effect fixpoint with the substrate cut *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i (f : Summary.fn) ->
        let cur = t0.trans.(i) in
        let next =
          List.fold_left
            (fun acc j ->
              let contrib =
                if cut_edge t0 ~from_file:f.ffile j then
                  {
                    Summary.no_effects with
                    performs_cas = t0.trans.(j).performs_cas;
                    (* the substrate's whole job is publishing values into
                       shared cells; hiding its [escapes] fact would blind
                       the escape lattice to every client of [Mcas] *)
                    escapes = t0.trans.(j).escapes;
                  }
                else t0.trans.(j)
              in
              Summary.union_effects acc contrib)
            cur t0.edges.(i)
        in
        if next <> cur then begin
          t0.trans.(i) <- next;
          changed := true
        end)
      fns
  done;
  (* self-reachability: is the function part of a call-graph cycle? *)
  let n = Array.length fns in
  for i = 0 to n - 1 do
    let seen = Array.make n false in
    let rec dfs j =
      List.exists
        (fun k ->
          k = i
          || (not seen.(k))
             && begin
                  seen.(k) <- true;
                  dfs k
                end)
        t0.edges.(j)
    in
    t0.reaches_self.(i) <- dfs i
  done;
  t0
