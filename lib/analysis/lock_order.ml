(** Lock-order and lock-leak analysis (rules [lock-order], [lock-leak]).

    The locking mound is deadlock-free because every path acquires node
    locks in ancestor-before-descendant tree order (paper Listing 3:
    moundify locks parents before children, insert locks [c/2] before
    [c]). This analysis walks each function body in evaluation order
    with an abstract lock state and flags:

    - [lock-order]: an acquisition whose node index is {e provably} a
      strict ancestor of a node already held — descendant-then-ancestor
      is the deadlock-prone inversion;
    - [lock-leak]: a non-raising path that reaches the end of the
      function with a lock still held and no release in sight.

    Node indices are tracked symbolically in the paper's 1-based
    arithmetic: from a base expression, [e / 2] moves up one level and
    [2 * e] / [2 * e + 1] move down to the left/right child, so a held
    set like {[c/2]; then acquire [c]} proves parent-before-child while
    {[c]; then acquire [c/2]} is a must-inversion for every [c >= 2].
    Integer literals are paths from the root (node 1). The ancestor
    check is a {e must} judgment — unknown bits introduced by division
    never prove an inversion, so sibling acquisitions ([2n] then
    [2n+1]) pass.

    Soundness caveats (documented over/under-approximation):
    - a call to any function that transitively releases a lock is
      assumed to discharge {e every} held lock — the hand-over-hand
      idiom hands the whole chain to the callee (under-approximates
      leaks through such calls);
    - functions that acquire inside a closure passed to a higher-order
      function (the STM commit's write-set fold) are skipped entirely —
      the walk cannot track per-iteration state (under-approximates);
    - acquire/release primitives themselves (bodies performing the
      locking CAS / unlocking store) are exempt: they are the mechanism
      being built, not users of it;
    - branches are explored independently and joined by union, so a
      lock provably released on every branch is not a leak, and state
      explosion is capped — beyond the cap the function is skipped. *)

open Parsetree

type base = Root | Var of string | Opaque of int

type sym = { sbase : base; ups : int; downs : int list }

(* lint: allow — analyzer-internal gensym; the scan is single-threaded,
   no domain ever shares this counter *)
let opaque_ctr = ref 0

let fresh_opaque () =
  (* lint: allow — same single-threaded gensym as its declaration *)
  incr opaque_ctr;
  { sbase = Opaque !opaque_ctr; ups = 0; downs = [] }

let int_literal e =
  match (Summary.strip_casts e).pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> int_of_string_opt s
  | _ -> None

(* Bits of [k] after the leading 1: the root-to-node path of index [k]. *)
let path_of_index k =
  let rec go k acc = if k <= 1 then acc else go (k / 2) ((k land 1) :: acc) in
  go k []

let rec norm env e =
  let e = Summary.strip_casts e in
  match int_literal e with
  | Some k when k >= 1 -> { sbase = Root; ups = 0; downs = path_of_index k }
  | _ -> (
      match e.pexp_desc with
      | Pexp_ident { txt = Lident v; _ } -> (
          match List.assoc_opt v env with
          | Some s -> s
          | None -> { sbase = Var v; ups = 0; downs = [] })
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident op; _ }; _ }, args)
        -> (
          let nargs = Summary.nolabel_args args in
          match (op, nargs) with
          | "/", [ a; b ] when int_literal b = Some 2 -> (
              let s = norm env a in
              match List.rev s.downs with
              | _ :: rest -> { s with downs = List.rev rest }
              | [] -> { s with ups = s.ups + 1 })
          | "*", [ a; b ] -> (
              match (int_literal a, int_literal b) with
              | Some 2, None ->
                  let s = norm env b in
                  { s with downs = s.downs @ [ 0 ] }
              | None, Some 2 ->
                  let s = norm env a in
                  { s with downs = s.downs @ [ 0 ] }
              | _ -> fresh_opaque ())
          | "+", [ a; b ] -> (
              let side one x =
                if int_literal one = Some 1 then
                  let s = norm env x in
                  match List.rev s.downs with
                  | 0 :: rest -> Some { s with downs = List.rev (1 :: rest) }
                  | _ -> None
                else None
              in
              match side b a with
              | Some s -> Some s
              | None -> side a b)
              |> Option.value ~default:(fresh_opaque ())
          | _ -> fresh_opaque ())
      | _ -> fresh_opaque ())

let rec proper_prefix a b =
  match (a, b) with
  | [], [] -> false
  | [], _ :: _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys -> x = y && proper_prefix xs ys

(* [a] is a strict ancestor of [b] for {e every} valuation of the shared
   base. Raising above the base truncates unknown bits, so an ancestor
   judgment through extra [ups] only holds when [a] adds no definite
   bits of its own. Opaque bases never prove anything against others. *)
let must_strict_ancestor a b =
  let same =
    match (a.sbase, b.sbase) with
    | Root, Root -> true
    | Var x, Var y -> x = y
    | Opaque x, Opaque y -> x = y
    | _ -> false
  in
  same
  && (if a.ups > b.ups then a.downs = []
      else if a.ups = b.ups then proper_prefix a.downs b.downs
      else false)

(* ---- the abstract walk ------------------------------------------------- *)

type held = { hkey : string; hsym : sym; hline : int }

type state = { env : (string * sym) list; locks : held list }

let max_states = 64

(* A slot-fetch call binds the variable to the node index it names:
   [T.get_at t ~level:lvl i] / [T.get t i] — the index is the last
   unlabelled argument when there are at least two (Mcas.get takes one
   argument and is not a slot fetch). *)
let slot_fetch_index args =
  let nargs = Summary.nolabel_args args in
  if List.length nargs >= 2 then Some (List.nth nargs (List.length nargs - 1))
  else None

let arg_var e =
  match (Summary.strip_casts e).pexp_desc with
  | Pexp_ident { txt = Lident v; _ } -> Some v
  | _ -> None

exception Give_up

let scan_fn (cg : Callgraph.t) (f : Summary.fn) : Lint_rules.finding list =
  let findings = ref [] in
  let add line rule msg =
    findings := { Lint_rules.file = f.ffile; line; rule; msg } :: !findings
  in
  (* extra venv for functions let-bound inside this body *)
  let extra = ref [] in
  let resolve segs =
    let scope =
      { f.fscope with Summary.venv = !extra @ f.fscope.Summary.venv }
    in
    Callgraph.resolve ~from_file:f.ffile cg (Summary.resolve_call scope segs)
  in
  let closure_acquire = ref false in
  (* detect acquisitions inside closure arguments: per-iteration lock
     state is beyond this walk, skip such functions wholesale *)
  let rec detect in_closure e =
    match e.pexp_desc with
    | Pexp_apply (head, args) ->
        (match Summary.flatten_ident head with
        | Some segs when in_closure -> (
            match resolve segs with
            | Some j
              when (Callgraph.fn cg j).flock_param <> None
                   && (Callgraph.fn cg j).fdirect.acquires_lock ->
                closure_acquire := true
            | _ -> ())
        | _ -> ());
        List.iter
          (fun (_, a) ->
            match a.pexp_desc with
            | Pexp_fun _ | Pexp_function _ -> detect true a
            | _ -> detect in_closure a)
          args;
        detect in_closure head
    | _ ->
        (* default_iterator-free shallow recursion *)
        iter_children (detect in_closure) e
  and iter_children g e =
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        List.iter (fun vb -> g vb.pvb_expr) vbs;
        g cont
    | Pexp_sequence (a, b) ->
        g a;
        g b
    | Pexp_ifthenelse (c, t, e) ->
        g c;
        g t;
        Option.iter g e
    | Pexp_match (s, cs) | Pexp_try (s, cs) ->
        g s;
        List.iter (fun c -> g c.pc_rhs) cs
    | Pexp_function cs -> List.iter (fun c -> g c.pc_rhs) cs
    | Pexp_fun (_, _, _, b)
    | Pexp_lazy b
    | Pexp_newtype (_, b)
    | Pexp_constraint (b, _)
    | Pexp_open (_, b)
    | Pexp_assert b ->
        g b
    | Pexp_while (a, b) | Pexp_setfield (a, _, b) ->
        g a;
        g b
    | Pexp_for (_, a, b, _, c) ->
        g a;
        g b;
        g c
    | Pexp_record (fs, base) ->
        List.iter (fun (_, v) -> g v) fs;
        Option.iter g base
    | Pexp_tuple es | Pexp_array es -> List.iter g es
    | Pexp_construct (_, a) | Pexp_variant (_, a) -> Option.iter g a
    | Pexp_apply (h, args) ->
        g h;
        List.iter (fun (_, a) -> g a) args
    | _ -> ()
  in
  detect false f.fbody;
  if !closure_acquire then []
  else begin
    (* evaluation-order walk; [states] is the disjunction of abstract
       lock states reaching the current point; raising paths vanish *)
    let rec walk states e : state list =
      if List.length states > max_states then raise Give_up;
      let e = Summary.strip_casts e in
      match e.pexp_desc with
      | Pexp_let (_, vbs, cont) ->
          let states =
            List.fold_left
              (fun sts vb ->
                let ps, _ = Summary.fn_shape vb.pvb_expr in
                match Summary.pat_var vb.pvb_pat with
                | Some name when ps <> [] ->
                    (* nested function: callable later, body analyzed as
                       its own summary elsewhere *)
                    extra := (name, f.fpath @ [ name ]) :: !extra;
                    sts
                | Some name ->
                    let sts = walk sts vb.pvb_expr in
                    List.map
                      (fun st ->
                        let sym =
                          match
                            (Summary.strip_casts vb.pvb_expr).pexp_desc
                          with
                          | Pexp_apply (head, args) -> (
                              match Summary.flatten_ident head with
                              | Some segs -> (
                                  let last =
                                    List.nth segs (List.length segs - 1)
                                  in
                                  match
                                    (last, slot_fetch_index args)
                                  with
                                  | ("get_at" | "get"), Some idx ->
                                      Some (norm st.env idx)
                                  | _ -> None)
                              | None -> None)
                          | _ -> Some (norm st.env vb.pvb_expr)
                        in
                        match sym with
                        | Some s -> { st with env = (name, s) :: st.env }
                        | None -> st)
                      sts
                | None -> walk sts vb.pvb_expr)
              states vbs
          in
          walk states cont
      | Pexp_sequence (a, b) -> walk (walk states a) b
      | Pexp_ifthenelse (c, t, el) -> (
          let states = walk states c in
          let st = walk states t in
          match el with
          | Some el -> st @ walk states el
          | None -> st @ states)
      | Pexp_match (s, cases) | Pexp_try (s, cases) ->
          let states = walk states s in
          List.concat_map (fun c -> walk states c.pc_rhs) cases
      | Pexp_while (c, b) ->
          let states = walk states c in
          states @ walk states b
      | Pexp_for (_, a, b, _, body) ->
          let states = walk (walk states a) b in
          states @ walk states body
      | Pexp_apply (head, args) -> (
          let states =
            List.fold_left
              (fun sts (_, a) ->
                match a.pexp_desc with
                | Pexp_fun _ | Pexp_function _ -> sts (* closures: no acquires inside, per [detect] *)
                | _ -> walk sts a)
              states args
          in
          match Summary.flatten_ident head with
          | None -> walk states head
          | Some segs -> (
              let last = List.nth segs (List.length segs - 1) in
              if List.mem last Summary.raising_heads && List.length segs = 1
              then [] (* raise/failwith/invalid_arg: path ends *)
              else
                match resolve segs with
                | None -> states
                | Some j ->
                    let g = Callgraph.fn cg j in
                    let nargs = Summary.nolabel_args args in
                    if g.flock_param <> None && g.fdirect.acquires_lock
                    then
                      let k = Option.get g.flock_param in
                      let key, sym =
                        match List.nth_opt nargs k with
                        | Some a -> (
                            match arg_var a with
                            | Some v ->
                                ( v,
                                  List.assoc_opt v
                                    (List.concat_map
                                       (fun st -> st.env)
                                       states)
                                  |> Option.value
                                       ~default:(fresh_opaque ()) )
                            | None -> ("?", fresh_opaque ()))
                        | None -> ("?", fresh_opaque ())
                      in
                      let line = Frontend.line_of_loc e.pexp_loc in
                      List.map
                        (fun st ->
                          let sym =
                            match List.assoc_opt key st.env with
                            | Some s -> s
                            | None -> sym
                          in
                          List.iter
                            (fun h ->
                              if must_strict_ancestor sym h.hsym then
                                add line "lock-order"
                                  (Printf.sprintf
                                     "acquires an ancestor node while \
                                      holding its descendant (locked at \
                                      line %d); hand-over-hand order is \
                                      ancestor before descendant"
                                     h.hline))
                            st.locks;
                          {
                            st with
                            locks =
                              { hkey = key; hsym = sym; hline = line }
                              :: st.locks;
                          })
                        states
                    else if g.funlock_param <> None then
                      let k = Option.get g.funlock_param in
                      let key =
                        match List.nth_opt nargs k with
                        | Some a -> arg_var a
                        | None -> None
                      in
                      List.map
                        (fun st ->
                          {
                            st with
                            locks =
                              List.filter
                                (fun h -> Some h.hkey <> key)
                                st.locks;
                          })
                        states
                    else if (Callgraph.trans_effects cg j).releases_lock
                    then
                      (* hand-over-hand: the callee owns every held lock
                         now (moundify, or the recursive retry) *)
                      List.map (fun st -> { st with locks = [] }) states
                    else states))
      | Pexp_assert a -> (
          match (Summary.strip_casts a).pexp_desc with
          | Pexp_construct ({ txt = Lident "false"; _ }, None) -> []
          | _ -> walk states a)
      | Pexp_fun _ | Pexp_function _ -> states
      | Pexp_lazy a | Pexp_newtype (_, a) | Pexp_open (_, a) ->
          walk states a
      | Pexp_setfield (r, _, v) -> walk (walk states r) v
      | Pexp_record (fs, base) ->
          let states =
            List.fold_left (fun sts (_, v) -> walk sts v) states fs
          in
          (match base with Some b -> walk states b | None -> states)
      | Pexp_tuple es | Pexp_array es ->
          List.fold_left walk states es
      | Pexp_construct (_, a) | Pexp_variant (_, a) -> (
          match a with Some a -> walk states a | None -> states)
      | Pexp_field (a, _) -> walk states a
      | _ -> states
    in
    match walk [ { env = []; locks = [] } ] f.fbody with
    | exception Give_up -> []
    | final ->
        let leaked = Hashtbl.create 4 in
        List.iter
          (fun st ->
            List.iter
              (fun h ->
                if not (Hashtbl.mem leaked h.hline) then begin
                  Hashtbl.replace leaked h.hline ();
                  add h.hline "lock-leak"
                    (Printf.sprintf
                       "lock on %s acquired here can reach the end of %s \
                        still held; release it on every non-raising path"
                       h.hkey
                       (String.concat "." f.fpath))
                end)
              st.locks)
          final;
        List.rev !findings
  end

let scan (cg : Callgraph.t) : Lint_rules.finding list =
  Array.to_list (Callgraph.fns cg)
  |> List.concat_map (fun (f : Summary.fn) ->
         if Lint_rules.helping_exempt_path f.ffile then []
         else if
           (* the locking primitives themselves are the mechanism *)
           f.fdirect.acquires_lock || f.fdirect.releases_lock
         then []
         else scan_fn cg f)
