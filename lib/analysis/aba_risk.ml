(** ABA / version-discipline analysis (rule [aba-risk]).

    The mound's CAS protocol survives slot recycling for two reasons:
    every published record folds a bumped sequence counter into the
    compared word ([seq = cur.seq + 1]), and every retry loop
    re-validates the dirty/locked/version bits it read before CASing.
    A CAS that compares a {e bare} payload read — no counter in the
    fresh value, no re-validation between the read and the CAS — on a
    location that other code also overwrites is the textbook ABA
    victim: the location can pass through A → B → A between read and
    CAS and the stale compare still succeeds (cf. the single-word-CAS
    deque literature this repo's PAPERS.md carries; the flat-array
    refactor of ROADMAP item 2 is exactly where the stamp is easiest to
    lose).

    Per CAS-family site, via the {!Dataflow} pass:

    - the {e expected} argument must carry a [Shared_read] fact whose
      location key matches the CAS target's key, still un-revalidated
      (no [.dirty] / [.seq] / [.locked] inspection since the read);
    - the {e fresh} argument must be unstamped — not a record literal
      (or a variable bound to one) bumping a version-vocabulary field;
    - the location key must be {e recycled elsewhere}: some other
      function in the call graph also CASes or sets a location of the
      same key ({!Summary.fwrites}) — a location with a single writer
      cannot ABA under it.

    Substrate files (the {!Mcas} descriptor machinery) are skipped:
    their internal read–CAS loops compare descriptor identities, where
    freshness-by-allocation is the defence, and every mound-level
    protocol above them is analyzed on its own. Exempt paths (runtime,
    sim, baselines) are skipped as everywhere else. Expected values
    that are parameters or call results are untracked (no fact), an
    under-approximation shared with {!Publication}. *)

let rule = "aba-risk"

(* location key -> paths of functions writing it *)
let writers_table (cg : Callgraph.t) =
  let tbl : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun (f : Summary.fn) ->
      List.iter
        (fun k ->
          let cur = Hashtbl.find_opt tbl k |> Option.value ~default:[] in
          Hashtbl.replace tbl k (String.concat "." f.fpath :: cur))
        f.fwrites)
    (Callgraph.fns cg);
  tbl

(* 0-based (loc, expected, fresh) triples among the Nolabel args. *)
let cas_triples = function
  | "cas" | "compare_and_set" -> [ (0, 1, 2) ]
  | "dcss" -> [ (2, 3, 4) ]
  | "dcas" -> [ (0, 1, 2); (3, 4, 5) ]
  | _ -> []

let scan_fn writers (f : Summary.fn) : Lint_rules.finding list =
  let findings = ref [] in
  let self = String.concat "." f.fpath in
  let recycled_elsewhere key =
    match Hashtbl.find_opt writers key with
    | Some ws -> List.exists (fun w -> w <> self) ws
    | None -> false
  in
  let stamped ctx e =
    match Dataflow.fact_of ctx e with
    | Some (Dataflow.Fresh_rec { stamped; _ }) -> stamped
    | _ -> false
  in
  let h_cas ctx ~line ~op nargs =
    List.iter
      (fun (li, ei, fi) ->
        match
          (List.nth_opt nargs li, List.nth_opt nargs ei, List.nth_opt nargs fi)
        with
        | Some loc, Some expected, Some fresh -> (
            match (Dataflow.loc_key loc, Dataflow.fact_of ctx expected) with
            | Some key, Some (Dataflow.Shared_read sr)
              when sr.key = key && (not sr.revalidated)
                   && (not (stamped ctx fresh))
                   && recycled_elsewhere key ->
                findings :=
                  {
                    Lint_rules.file = f.ffile;
                    line;
                    rule;
                    msg =
                      Printf.sprintf
                        "%s compares the bare read of %s from line %d: no \
                         version counter in the fresh value and no \
                         dirty/seq re-validation since the read, while %s \
                         is also overwritten elsewhere — ABA-prone; fold \
                         a bumped seq into the compared record"
                        op key sr.rline key;
                  }
                  :: !findings
            | _ -> ())
        | _ -> ())
      (cas_triples op)
  in
  Dataflow.run { Dataflow.no_hooks with h_cas } f.fbody;
  List.rev !findings

let scan (cg : Callgraph.t) : Lint_rules.finding list =
  let writers = writers_table cg in
  Array.to_list (Callgraph.fns cg)
  |> List.concat_map (fun (f : Summary.fn) ->
         if
           Lint_rules.helping_exempt_path f.ffile
           || Callgraph.is_substrate_file cg f.ffile
         then []
         else scan_fn writers f)
