(** Lost-update analysis (rule [atomicity]).

    A read-modify-write on an atomic location must linearize: either a
    CAS loop re-validating the read, or a primitive RMW
    ([fetch_and_add]). The broken shape is [Atomic.get x] flowing into
    a computation that is then stored back with a plain [Atomic.set x]
    — any concurrent update between the get and the set is silently
    lost. The DPOR tier already proves this dynamically on the racy-pq
    mutant; this rule catches the shape statically, on every path the
    {!Dataflow} pass can see.

    Per non-release dotted [set] site: flag when the stored value
    {e derives from} a read of the same location key — it contains a
    variable carrying a [Shared_read]/[Derived] fact for that key
    (through let-bindings, field projections and match destructuring),
    or a direct inline [get] of it.

    Interprocedurally: a call into a function whose {e transitive}
    effects include the new {!Summary.effects.writes_nonatomically}
    fact is flagged when some argument is (or keys) a location [k] and
    another argument carries a fact derived from [k] — the callee
    stores plainly, the caller handed it both the location and a value
    computed from that location's read.

    Lock-release stores ([locked = false] records, literal [false]) are
    the mound's own unlock idiom and exempt by shape. Substrate files
    are skipped (their [set] {e is} the primitive being wrapped), as
    are exempt paths: the coarse-lock baselines do get-compute-set
    under their lock by design. Stores of values not derived from any
    tracked read — parameters, call results — are untracked, the same
    under-approximation as everywhere else in the engine. *)

let rule = "atomicity"

let scan_fn (cg : Callgraph.t) (f : Summary.fn) : Lint_rules.finding list =
  let findings = ref [] in
  let add line msg =
    findings := { Lint_rules.file = f.ffile; line; rule; msg } :: !findings
  in
  let resolve segs =
    Callgraph.resolve ~from_file:f.ffile cg
      (Summary.resolve_call f.fscope segs)
  in
  let h_set ctx ~line ~loc ~value =
    match Dataflow.loc_key loc with
    | Some key when Dataflow.contained_key ctx value = Some key ->
        add line
          (Printf.sprintf
             "plain set of %s stores a value computed from its own atomic \
              read: a concurrent update between the get and this set is \
              lost — use compare_and_set (re-validating the read) or \
              fetch_and_add"
             key)
    | _ -> ()
  in
  let h_call ctx ~line ~segs nargs =
    match resolve segs with
    | Some j
      when (Callgraph.trans_effects cg j).Summary.writes_nonatomically
           && not (Callgraph.cut_edge cg ~from_file:f.ffile j) ->
        let g = Callgraph.fn cg j in
        let keyed =
          List.filter_map
            (fun a ->
              match Dataflow.loc_key a with
              | Some k when Dataflow.fact_of ctx a = None -> Some k
              | _ -> None)
            nargs
        in
        List.iter
          (fun a ->
            match Dataflow.contained_key ctx a with
            | Some k when List.mem k keyed ->
                add line
                  (Printf.sprintf
                     "passes %s together with a value computed from its \
                      atomic read into %s, which stores it with a plain \
                      set — the update does not linearize; use a \
                      CAS-based update"
                     k
                     (String.concat "." g.fpath))
            | _ -> ())
          nargs
    | _ -> ()
  in
  Dataflow.run { Dataflow.no_hooks with h_set; h_call } f.fbody;
  List.rev !findings

let scan (cg : Callgraph.t) : Lint_rules.finding list =
  Array.to_list (Callgraph.fns cg)
  |> List.concat_map (fun (f : Summary.fn) ->
         if
           Lint_rules.helping_exempt_path f.ffile
           || Callgraph.is_substrate_file cg f.ffile
         then []
         else scan_fn cg f)
