(** Per-function summaries over the Parsetree.

    For every function defined in a file — top-level, nested in modules
    and functors, or [let]-bound inside another function — this module
    records where it is, what it calls, and which primitive {e effect
    sites} its body contains:

    - {e performs-CAS}: a dotted call whose final component is one of the
      CAS family ([cas], [dcas], [dcss], [casn], [compare_and_set]);
    - {e helps}: a completing CAS — either its fresh value is a record
      literal carrying [dirty = false] (the moundify idiom, recognized by
      shape rather than by the callee's name), or the CAS result is
      statically discarded ([ignore (...)], [let _ =], sequence
      position), the one-shot completion idiom of {!Mcas.rdcss_complete}
      and {!Tree.expand}: any thread may fire it, exactly one takes
      effect, nobody retries on its account;
    - {e backs-off}: a call to [cpu_relax] (every backoff primitive in
      the tree bottoms out there);
    - {e acquires-lock}: a CAS whose fresh value is a record literal
      carrying [locked = true], or a bare boolean CAS from [false] to
      [true] — with the parameter index of the lock's location when the
      site locks one of the function's own parameters ([lock_param]);
    - {e releases-lock}: a dotted [set] storing a record literal carrying
      [locked = false], or storing literal [false];
    - {e allocates}: [Array.make]/[Array.init], [Bytes.create]/
      [Bytes.make], applied [ref], or [lazy].

    Calls are resolved through lexical scope — [let]-bound inner
    functions, value aliases ([let restore = moundify]) and module
    aliases ([module T = Tree.Make (R)]) — into full module-path
    segments, so the call graph sees through the renamings that defeat
    a token-level scanner. Sites inside a nested function are attributed
    to the nested function {e and} folded into its host, so a wrapper
    whose loop lives in an inner [let rec] still summarizes truthfully.

    [publishes] lists the parameters the function forwards into a CAS
    fresh-value position ({!Lf_mound}'s [cas_reusing]/[dcss_reusing]
    take the fresh record as an argument), letting the publication
    analysis treat such wrappers as publication sites. *)

open Parsetree

type effects = {
  performs_cas : bool;
  helps : bool;
  backs_off : bool;
  checks_deadline : bool;
  acquires_lock : bool;
  releases_lock : bool;
  allocates : bool;
  writes_nonatomically : bool;
      (* a dotted [set] that is not a lock release: a plain store into
         an atomic location, the sink of a lost update *)
  escapes : bool;
      (* the body contains an escape site: a [Domain.spawn]-shaped call
         taking a closure (whatever the closure captures leaves this
         domain), or a store of a value into a shared sink — an atomic
         [set]/[make] or a CAS fresh-value slot. Propagated transitively
         by {!Callgraph} so the escape analysis can treat a call into a
         publishing wrapper as a potential escape of its arguments *)
}

let no_effects =
  {
    performs_cas = false;
    helps = false;
    backs_off = false;
    checks_deadline = false;
    acquires_lock = false;
    releases_lock = false;
    allocates = false;
    writes_nonatomically = false;
    escapes = false;
  }

let union_effects a b =
  {
    performs_cas = a.performs_cas || b.performs_cas;
    helps = a.helps || b.helps;
    backs_off = a.backs_off || b.backs_off;
    checks_deadline = a.checks_deadline || b.checks_deadline;
    acquires_lock = a.acquires_lock || b.acquires_lock;
    releases_lock = a.releases_lock || b.releases_lock;
    allocates = a.allocates || b.allocates;
    writes_nonatomically = a.writes_nonatomically || b.writes_nonatomically;
    escapes = a.escapes || b.escapes;
  }

type call = { callee : string list; call_line : int }

type fn = {
  fpath : string list;  (* e.g. ["Lock_mound"; "Make"; "set_lock"] *)
  ffile : string;
  fline : int;
  fparams : string list;
  fcalls : call list;
  fdirect : effects;
  flock_param : int option;  (* acquire primitive: param that is the slot *)
  funlock_param : int option;  (* release primitive: param that is the slot *)
  fpublishes : int list;  (* params forwarded to a CAS fresh-value slot *)
  fwrites : string list;
      (* syntactic keys of atomic locations this function writes — the
         CAS-target and dotted-[set] location names ([root], [slot]…) —
         so the ABA analysis can ask which locations are recycled by
         more than one function *)
  fcaptures : int list;
      (* params mentioned inside a closure handed to a [spawn]-shaped
         call: the spawned domain can reach them, so whatever mutable
         state they carry is at least Captured on the escape lattice *)
  fshares : int list;
      (* params forwarded into a shared sink other than a CAS fresh
         slot — the value argument of a dotted [set], or the argument
         of a one-argument dotted [make] (an [Atomic.make]-shaped
         constructor): the callee publishes them into shared memory *)
  fbody : expression;
  fscope : scope;
      (* lexical scope at the function's entry, for re-resolving call
         sites during the per-body analyses; aliases bound later inside
         the body are only visible to the summary walk itself *)
}

and scope = {
  modpath : string list;
  menv : (string * string list) list;  (* module alias -> full path *)
  venv : (string * string list) list;  (* value alias / nested fn -> path *)
}

let cas_family = [ "cas"; "casn"; "dcas"; "dcss"; "compare_and_set" ]

(* Deadline awareness by vocabulary, the AST mirror of the token lint's
   [is_deadline]: a name (identifier segment or labelled argument)
   carrying the [_until] / [deadline] / [expired] vocabulary. *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let deadline_name s =
  let s = String.lowercase_ascii s in
  contains_sub s "deadline" || contains_sub s "until"
  || contains_sub s "expired"

(* 0-based positions (among [Nolabel] arguments) of the freshly-published
   value for each CAS-family operation, and of the location being
   written. [casn] takes an array of triples — unanalyzed. *)
let fresh_positions = function
  | "cas" | "compare_and_set" -> [ 2 ]
  | "dcss" -> [ 4 ]
  | "dcas" -> [ 2; 5 ]
  | _ -> []

(* 0-based positions (among [Nolabel] arguments) of the locations each
   CAS-family operation writes. [dcss] only validates its first leg. *)
let write_positions = function
  | "cas" | "compare_and_set" -> [ 0 ]
  | "dcss" -> [ 2 ]
  | "dcas" -> [ 0; 3 ]
  | _ -> []

(* ---- small AST probes -------------------------------------------------- *)

let rec strip_casts e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_casts e
  | _ -> e

let flatten_ident e =
  match (strip_casts e).pexp_desc with
  | Pexp_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | _ -> None

(* The variable at the root of [v], [v.f], [v.f.g] — how lock locations
   and mutation receivers are written. *)
let rec base_var e =
  match (strip_casts e).pexp_desc with
  | Pexp_ident { txt = Lident v; _ } -> Some v
  | Pexp_field (e, _) -> base_var e
  | _ -> None

(* The syntactic key of a written atomic location: the last field name
   of [t.root] / [t.tree.rows], the variable itself for a bare [slot],
   the receiver's key for an indexing call like [t.rows.(d)]. *)
let rec loc_write_key e =
  match (strip_casts e).pexp_desc with
  | Pexp_ident { txt = Lident v; _ } -> Some v
  | Pexp_field (_, { txt; _ }) -> (
      match List.rev (try Longident.flatten txt with _ -> []) with
      | f :: _ -> Some f
      | [] -> None)
  | Pexp_apply (_, (Asttypes.Nolabel, a) :: _) -> loc_write_key a
  | _ -> None

let is_bool_lit b e =
  match (strip_casts e).pexp_desc with
  | Pexp_construct ({ txt = Lident c; _ }, None) ->
      c = (if b then "true" else "false")
  | _ -> false

(* A record literal (or functional update) binding [field] to the boolean
   literal [b] — [{ list; locked = true }], [{ s with locked = true }]. *)
let record_sets_field field b e =
  match (strip_casts e).pexp_desc with
  | Pexp_record (fields, _) ->
      List.exists
        (fun ((lid : Longident.t Asttypes.loc), v) ->
          (match lid.txt with Longident.Lident f -> f = field | _ -> false)
          && is_bool_lit b v)
        fields
  | _ -> false

let is_fresh_value e =
  match (strip_casts e).pexp_desc with
  | Pexp_record _ -> true
  | Pexp_construct (_, _) -> true
  | Pexp_tuple _ -> true
  | _ -> false

let pat_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* Every simple (unqualified) identifier mentioned in a subtree —
   the conservative free-variable probe used to decide what a spawn
   closure captures. Over-approximates (shadowing inside the closure is
   ignored), which for capture detection errs toward reporting. *)
let idents_of e =
  let out = ref [] in
  let it = Ast_iterator.default_iterator in
  let expr it' (e : expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident v; _ } ->
        if not (List.mem v !out) then out := v :: !out
    | _ -> ());
    it.expr it' e
  in
  let it = { it with expr } in
  it.expr it e;
  !out

let is_closure e =
  match (strip_casts e).pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | _ -> false

(* Unwrap a binding's function structure: parameter patterns (in order)
   and the innermost body. A [function]-style body contributes one
   anonymous parameter. *)
let rec fn_shape e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
      let params, inner = fn_shape body in
      (Option.value (pat_var pat) ~default:"_" :: params, inner)
  | Pexp_newtype (_, body) -> fn_shape body
  | Pexp_constraint (body, _) -> fn_shape body
  | Pexp_function _ -> ([ "_" ], e)
  | _ -> ([], e)

(* ---- scoped call resolution -------------------------------------------- *)

let resolve_module scope m =
  match List.assoc_opt m scope.menv with Some p -> p | None -> [ m ]

let resolve_call scope segs =
  match segs with
  | [ s ] -> (
      match List.assoc_opt s scope.venv with
      | Some p -> p
      | None -> scope.modpath @ [ s ])
  | m :: rest -> resolve_module scope m @ rest
  | [] -> []

(* ---- the body walk ----------------------------------------------------- *)

let rec module_head (m : module_expr) =
  match m.pmod_desc with
  | Pmod_ident { txt; _ } -> ( try Some (Longident.flatten txt) with _ -> None)
  | Pmod_apply (f, _) -> module_head f
  | Pmod_constraint (m, _) -> module_head m
  | _ -> None

type collector = {
  mutable calls : call list;
  mutable eff : effects;
  mutable lock_param : int option;
  mutable unlock_param : int option;
  mutable publishes : int list;
  mutable writes : string list;
  mutable captures : int list;
  mutable shares : int list;
  mutable out : fn list;  (* nested functions, innermost first *)
}

let nolabel_args args =
  List.filter_map
    (fun (lbl, e) -> if lbl = Asttypes.Nolabel then Some e else None)
    args

let param_index params v =
  let rec go i = function
    | [] -> None
    | p :: _ when p = v -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 params

let raising_heads = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* Walk [expr] collecting the current function's facts into [col],
   registering nested [let]-bound functions as their own summaries (and
   folding their facts into the host). [disc] is true when the value of
   [expr] is statically discarded. *)
let rec walk ~file ~scope ~params ~fnpath col disc expr =
  let self = walk ~file ~scope ~params ~fnpath col in
  match expr.pexp_desc with
  | Pexp_apply (head, args) -> (
      List.iter
        (fun (lbl, _) ->
          match lbl with
          | Asttypes.Labelled s | Asttypes.Optional s ->
              if deadline_name s then
                col.eff <- { col.eff with checks_deadline = true }
          | Asttypes.Nolabel -> ())
        args;
      List.iter
        (fun (_, a) ->
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ ->
              (* a closure argument runs under its consumer; its sites
                 belong to this function *)
              let _, inner = fn_shape a in
              self false inner
          | _ -> self false a)
        args;
      match flatten_ident head with
      | None -> self false head
      | Some segs ->
          let last = List.nth segs (List.length segs - 1) in
          let dotted = List.length segs >= 2 in
          let resolved = resolve_call scope segs in
          let line = Frontend.line_of_loc expr.pexp_loc in
          col.calls <- { callee = resolved; call_line = line } :: col.calls;
          if List.exists deadline_name segs then
            col.eff <- { col.eff with checks_deadline = true };
          let nargs = nolabel_args args in
          let arg i = List.nth_opt nargs i in
          if dotted && List.mem last cas_family then begin
            col.eff <- { col.eff with performs_cas = true };
            List.iter
              (fun e ->
                match loc_write_key e with
                | Some k when not (List.mem k col.writes) ->
                    col.writes <- k :: col.writes
                | _ -> ())
              (List.filter_map arg (write_positions last));
            let fresh_args = List.filter_map arg (fresh_positions last) in
            if fresh_args <> [] then
              (* the fresh value becomes reachable by every domain *)
              col.eff <- { col.eff with escapes = true };
            (* completing CAS: publishes a clean record, or fires blind *)
            if
              disc
              || List.exists (record_sets_field "dirty" false) fresh_args
            then col.eff <- { col.eff with helps = true };
            (* acquire shape: locks a record, or a bare boolean lock *)
            let bool_lock =
              last = "compare_and_set"
              && (match arg 1 with Some e -> is_bool_lit false e | None -> false)
              && match arg 2 with Some e -> is_bool_lit true e | None -> false
            in
            if
              List.exists (record_sets_field "locked" true) fresh_args
              || bool_lock
            then begin
              col.eff <- { col.eff with acquires_lock = true };
              match arg 0 with
              | Some loc_e -> (
                  match base_var loc_e with
                  | Some v -> (
                      match param_index params v with
                      | Some i when col.lock_param = None ->
                          col.lock_param <- Some i
                      | _ -> ())
                  | None -> ())
              | None -> ()
            end;
            (* params forwarded as the fresh value *)
            List.iter
              (fun e ->
                match base_var (strip_casts e) with
                | Some v -> (
                    match ((strip_casts e).pexp_desc, param_index params v)
                    with
                    | Pexp_ident _, Some i
                      when not (List.mem i col.publishes) ->
                        col.publishes <- i :: col.publishes
                    | _ -> ())
                | None -> ())
              fresh_args
          end
          else if dotted && last = "set" && List.length nargs = 2 then begin
            (* exactly [X.set loc v] — the atomic-store shape; [a.(i) <-
               x] desugars to the 3-argument [Array.set] and is a plain
               heap write, not a shared-location store *)
            (match arg 0 with
            | Some loc_e -> (
                match loc_write_key loc_e with
                | Some k when not (List.mem k col.writes) ->
                    col.writes <- k :: col.writes
                | _ -> ())
            | None -> ());
            match arg 1 with
            | Some v
              when record_sets_field "locked" false v || is_bool_lit false v
              -> begin
                col.eff <- { col.eff with releases_lock = true };
                match arg 0 with
                | Some loc_e -> (
                    match base_var loc_e with
                    | Some bv -> (
                        match param_index params bv with
                        | Some i when col.unlock_param = None ->
                            col.unlock_param <- Some i
                        | _ -> ())
                    | None -> ())
                | None -> ()
              end
            | Some v ->
                col.eff <-
                  { col.eff with writes_nonatomically = true; escapes = true };
                (match ((strip_casts v).pexp_desc, base_var v) with
                | Pexp_ident _, Some bv -> (
                    match param_index params bv with
                    | Some i when not (List.mem i col.shares) ->
                        col.shares <- i :: col.shares
                    | _ -> ())
                | _ -> ())
            | None -> ()
          end
          else if dotted && last = "make" && List.length nargs = 1 then begin
            (* [X.make v] — the Atomic.make-shaped constructor: [v] is
               published as the cell's initial contents *)
            col.eff <- { col.eff with escapes = true };
            match arg 0 with
            | Some v -> (
                match ((strip_casts v).pexp_desc, base_var v) with
                | Pexp_ident _, Some bv -> (
                    match param_index params bv with
                    | Some i when not (List.mem i col.shares) ->
                        col.shares <- i :: col.shares
                    | _ -> ())
                | _ -> ())
            | None -> ()
          end
          else if last = "spawn" && List.exists (fun (_, a) -> is_closure a) args
          then begin
            (* a [Domain.spawn]-shaped call: everything the closure
               argument mentions is reachable from the new domain *)
            col.eff <- { col.eff with escapes = true };
            List.iter
              (fun (_, a) ->
                if is_closure a then
                  List.iter
                    (fun v ->
                      match param_index params v with
                      | Some i when not (List.mem i col.captures) ->
                          col.captures <- i :: col.captures
                      | _ -> ())
                    (idents_of a))
              args
          end
          else if last = "cpu_relax" then
            col.eff <- { col.eff with backs_off = true }
          else if
            (match segs with
            | [ "Array"; ("make" | "init") ] -> true
            | [ "Bytes"; ("create" | "make") ] -> true
            | _ -> false)
            || (segs = [ "ref" ] && nargs <> [])
          then col.eff <- { col.eff with allocates = true }
          else if segs = [ "ignore" ] then
            (* re-walk the argument as discarded; the generic arg walk
               above already visited it undiscarded, which only matters
               for the helps bit, set here *)
            List.iter (fun (_, a) -> self true a) args
          else if List.mem last raising_heads && not dotted then ())
  | Pexp_let (_, vbs, cont) ->
      List.iter
        (fun vb ->
          match pat_var vb.pvb_pat with
          | Some name -> (
              let ps, _ = fn_shape vb.pvb_expr in
              if ps <> [] then begin
                (* nested function: its own summary, folded into ours *)
                let inner_scope =
                  {
                    scope with
                    venv = (name, fnpath @ [ name ]) :: scope.venv;
                  }
                in
                let nested =
                  collect_fn ~file ~scope:inner_scope
                    ~fnpath:(fnpath @ [ name ])
                    ~line:(Frontend.line_of_loc vb.pvb_loc)
                    vb.pvb_expr
                in
                col.out <- nested @ col.out;
                (* fold the nested body into the host under the HOST's
                   parameters: a lock acquired by an inner spin loop on
                   a slot the host received ([set_lock]'s shape) makes
                   the host itself the acquirer *)
                let col2 =
                  {
                    calls = [];
                    eff = no_effects;
                    lock_param = None;
                    unlock_param = None;
                    publishes = [];
                    writes = [];
                    captures = [];
                    shares = [];
                    out = [];
                  }
                in
                walk ~file ~scope:inner_scope ~params ~fnpath col2 false
                  vb.pvb_expr;
                col.eff <- union_effects col.eff col2.eff;
                col.calls <- List.rev_append col2.calls col.calls;
                if col.lock_param = None then
                  col.lock_param <- col2.lock_param;
                if col.unlock_param = None then
                  col.unlock_param <- col2.unlock_param;
                List.iter
                  (fun p ->
                    if not (List.mem p col.publishes) then
                      col.publishes <- p :: col.publishes)
                  col2.publishes;
                List.iter
                  (fun k ->
                    if not (List.mem k col.writes) then
                      col.writes <- k :: col.writes)
                  col2.writes;
                (* the fold walk ran under the host's params, so the
                   nested capture/share indices already point at them *)
                List.iter
                  (fun p ->
                    if not (List.mem p col.captures) then
                      col.captures <- p :: col.captures)
                  col2.captures;
                List.iter
                  (fun p ->
                    if not (List.mem p col.shares) then
                      col.shares <- p :: col.shares)
                  col2.shares
              end
              else
                match flatten_ident vb.pvb_expr with
                | Some segs ->
                    (* value alias: [let restore = moundify] *)
                    ignore segs
                | None -> self false vb.pvb_expr)
          | None ->
              let d =
                match vb.pvb_pat.ppat_desc with
                | Ppat_any -> true
                | _ -> false
              in
              self d vb.pvb_expr)
        vbs;
      (* aliases and nested names extend scope for the continuation *)
      let scope' =
        List.fold_left
          (fun sc vb ->
            match pat_var vb.pvb_pat with
            | Some name -> (
                let ps, _ = fn_shape vb.pvb_expr in
                if ps <> [] then
                  { sc with venv = (name, fnpath @ [ name ]) :: sc.venv }
                else
                  match flatten_ident vb.pvb_expr with
                  | Some segs ->
                      {
                        sc with
                        venv = (name, resolve_call sc segs) :: sc.venv;
                      }
                  | None -> sc)
            | None -> sc)
          scope vbs
      in
      walk ~file ~scope:scope' ~params ~fnpath col disc cont
  | Pexp_sequence (e1, e2) ->
      self true e1;
      self disc e2
  | Pexp_ifthenelse (c, t, e) ->
      self false c;
      self disc t;
      Option.iter (self disc) e
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      self false s;
      List.iter (fun c -> self disc c.pc_rhs) cases
  | Pexp_function cases -> List.iter (fun c -> self false c.pc_rhs) cases
  | Pexp_fun (_, _, _, body) -> self false body
  | Pexp_while (c, b) ->
      self false c;
      self true b
  | Pexp_for (_, a, b, _, body) ->
      self false a;
      self false b;
      self true body
  | Pexp_lazy e ->
      col.eff <- { col.eff with allocates = true };
      self false e
  | Pexp_setfield (r, _, v) ->
      self false r;
      self false v
  | Pexp_field (e, _) | Pexp_newtype (_, e) | Pexp_constraint (e, _)
  | Pexp_coerce (e, _, _) | Pexp_open (_, e) | Pexp_assert e ->
      self false e
  | Pexp_record (fields, base) ->
      List.iter (fun (_, v) -> self false v) fields;
      Option.iter (self false) base
  | Pexp_tuple es | Pexp_array es -> List.iter (self false) es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
      Option.iter (self false) arg
  | Pexp_letmodule (name, me, e) ->
      (* [let module A = Atomic in …]: the local alias must resolve like
         a structure-level one, or calls through it lose their target *)
      let scope' =
        match (name.txt, module_head me) with
        | Some n, Some (hd :: rest) ->
            { scope with menv = (n, resolve_module scope hd @ rest) :: scope.menv }
        | _ -> scope
      in
      walk ~file ~scope:scope' ~params ~fnpath col disc e
  | Pexp_ident _ -> (
      match flatten_ident expr with
      | Some segs when List.exists deadline_name segs ->
          col.eff <- { col.eff with checks_deadline = true }
      | _ -> ())
  | _ -> ()

(* Summarize one function binding; returns the function followed by its
   nested functions. *)
and collect_fn ~file ~scope ~fnpath ~line e : fn list =
  let params, body = fn_shape e in
  let col =
    {
      calls = [];
      eff = no_effects;
      lock_param = None;
      unlock_param = None;
      publishes = [];
      writes = [];
      captures = [];
      shares = [];
      out = [];
    }
  in
  walk ~file ~scope ~params ~fnpath col false body;
  {
    fpath = fnpath;
    ffile = file;
    fline = line;
    fparams = params;
    fcalls = List.rev col.calls;
    fdirect = col.eff;
    flock_param = col.lock_param;
    funlock_param = col.unlock_param;
    fpublishes = List.sort compare col.publishes;
    fwrites = List.sort_uniq compare col.writes;
    fcaptures = List.sort compare col.captures;
    fshares = List.sort compare col.shares;
    fbody = body;
    fscope = scope;
  }
  :: List.rev col.out

(* ---- structures and modules -------------------------------------------- *)

let rec walk_module ~file ~scope name (m : module_expr) : fn list * scope =
  match m.pmod_desc with
  | Pmod_structure items ->
      let fns =
        walk_structure ~file
          ~scope:{ scope with modpath = scope.modpath @ [ name ] }
          items
      in
      (* register the nested module itself: later references
         ([Helpers.finish], or a local [module H = Helpers]) must
         resolve to the definition's full path *)
      ( fns,
        {
          scope with
          menv = (name, scope.modpath @ [ name ]) :: scope.menv;
        } )
  | Pmod_functor (_, body) -> walk_module ~file ~scope name body
  | Pmod_constraint (m, _) -> walk_module ~file ~scope name m
  | Pmod_ident _ | Pmod_apply _ -> (
      match module_head m with
      | Some (hd :: rest) ->
          let target = resolve_module scope hd @ rest in
          ([], { scope with menv = (name, target) :: scope.menv })
      | _ -> ([], scope))
  | _ -> ([], scope)

and walk_structure ~file ~scope items : fn list =
  let scope = ref scope in
  let acc = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match pat_var vb.pvb_pat with
              | Some name -> (
                  let ps, _ = fn_shape vb.pvb_expr in
                  if ps <> [] then
                    acc :=
                      collect_fn ~file ~scope:!scope
                        ~fnpath:(!scope.modpath @ [ name ])
                        ~line:(Frontend.line_of_loc vb.pvb_loc)
                        vb.pvb_expr
                      :: !acc
                  else
                    match flatten_ident vb.pvb_expr with
                    | Some segs ->
                        scope :=
                          {
                            !scope with
                            venv =
                              (name, resolve_call !scope segs) :: !scope.venv;
                          }
                    | None -> ())
              | None -> ())
            vbs
      | Pstr_module mb ->
          let name = Option.value mb.pmb_name.txt ~default:"_" in
          let fns, scope' = walk_module ~file ~scope:!scope name mb.pmb_expr in
          acc := fns :: !acc;
          scope := scope'
      | Pstr_recmodule mbs ->
          List.iter
            (fun mb ->
              let name = Option.value mb.pmb_name.txt ~default:"_" in
              let fns, scope' =
                walk_module ~file ~scope:!scope name mb.pmb_expr
              in
              acc := fns :: !acc;
              scope := scope')
            mbs
      | _ -> ())
    items;
  List.concat (List.rev !acc)

let of_parsed (p : Frontend.parsed) : fn list =
  let root = Frontend.module_name_of_path p.p_path in
  walk_structure ~file:p.p_path
    ~scope:{ modpath = [ root ]; menv = []; venv = [] }
    p.p_ast
