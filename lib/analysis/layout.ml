(** False-sharing layout analysis (rule [layout]).

    Walks every record type declaration in the analyzed files and flags
    {e unpadded hot-field adjacency}: two consecutive fields that are
    both hot — an [Atomic.t]-headed type or a [mutable] field — in a
    record whose hot fields are touched by at least two distinct
    CAS-performing (or primitive-RMW-performing) functions per the call
    graph. Two hot words updated by different operations from the same
    cache line ping-pong the line between cores; the fix is a pad block
    between them ({!Tree}'s [pads] idiom) or splitting the record.

    This is the guard rail for ROADMAP item 2 (the flat-array plane
    refactor): plane records replacing today's boxed nodes must keep
    their pad blocks, and a refactor that drops one trips this rule in
    CI rather than in a perf regression three PRs later.

    Mechanics: a field is {e hot} when declared [mutable] or when its
    type head is [….Atomic.t]; a field whose name carries "pad" is
    recognized as deliberate spacing (it also breaks adjacency simply
    by sitting between the hot pair). Touch-counting is by field name:
    a function touches the record when its body reads or assigns any of
    the record's hot field names, and it counts as a contention source
    when its transitive effects include [performs_cas] or its body
    calls a primitive RMW ([fetch_and_add] / [exchange]). One finding
    per record, anchored at the first offending pair.

    Caveats, by design: field names are matched globally (two records
    sharing a hot field name can attribute touches to each other);
    single-writer records — and records only ever touched by one
    operation — are not flagged, which is exactly the reasoned-waiver
    story for the diagnostic counter blocks. Exempt paths and substrate
    files are skipped. *)

open Parsetree

let rule = "layout"

let hot_type (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> (
      match List.rev (try Longident.flatten txt with _ -> []) with
      | "t" :: "Atomic" :: _ -> true
      | _ -> false)
  | _ -> false

let is_pad name = Summary.contains_sub (String.lowercase_ascii name) "pad"

let hot_label (l : label_declaration) =
  (not (is_pad l.pld_name.txt))
  && (l.pld_mutable = Asttypes.Mutable || hot_type l.pld_type)

(* ---- who touches which fields ----------------------------------------- *)

let rmw_heads = [ "fetch_and_add"; "exchange" ]

(* One pass over every function body: the field names it reads/assigns,
   and whether it calls a primitive RMW directly. *)
let touch_tables (cg : Callgraph.t) =
  let touched : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let has_rmw = Array.make (Array.length (Callgraph.fns cg)) false in
  Array.iteri
    (fun i (f : Summary.fn) ->
      let self = String.concat "." f.fpath in
      let note lid =
        match List.rev (try Longident.flatten lid with _ -> []) with
        | name :: _ ->
            let cur =
              Hashtbl.find_opt touched name |> Option.value ~default:[]
            in
            if not (List.mem self cur) then
              Hashtbl.replace touched name (self :: cur)
        | [] -> ()
      in
      let it = Ast_iterator.default_iterator in
      let expr it' (e : expression) =
        (match e.pexp_desc with
        | Pexp_field (_, { txt; _ }) -> note txt
        | Pexp_setfield (_, { txt; _ }, _) -> note txt
        | Pexp_apply (head, _) -> (
            match Summary.flatten_ident head with
            | Some segs
              when List.length segs >= 2
                   && List.mem (List.nth segs (List.length segs - 1)) rmw_heads
              ->
                has_rmw.(i) <- true
            | _ -> ())
        | _ -> ());
        it.expr it' e
      in
      let it = { it with expr } in
      it.expr it f.fbody)
    (Callgraph.fns cg);
  (touched, has_rmw)

(* ---- record declarations ---------------------------------------------- *)

let rec decls_of_module (m : module_expr) =
  match m.pmod_desc with
  | Pmod_structure items -> decls_of_structure items
  | Pmod_functor (_, body) -> decls_of_module body
  | Pmod_constraint (m, _) -> decls_of_module m
  | _ -> []

and decls_of_structure items =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_type (_, decls) ->
          List.filter_map
            (fun d ->
              match d.ptype_kind with
              | Ptype_record labels -> Some (d.ptype_name.txt, labels)
              | _ -> None)
            decls
      | Pstr_module mb -> decls_of_module mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.concat_map (fun mb -> decls_of_module mb.pmb_expr) mbs
      | _ -> [])
    items

let scan (parsed : Frontend.parsed list) (cg : Callgraph.t) :
    Lint_rules.finding list =
  let touched, has_rmw = touch_tables cg in
  (* paths of functions that are contention sources *)
  let hot_paths : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (f : Summary.fn) ->
      if (Callgraph.trans_effects cg i).Summary.performs_cas || has_rmw.(i)
      then Hashtbl.replace hot_paths (String.concat "." f.fpath) ())
    (Callgraph.fns cg);
  let contended_touchers name =
    Hashtbl.find_opt touched name
    |> Option.value ~default:[]
    |> List.filter (Hashtbl.mem hot_paths)
  in
  List.concat_map
    (fun (p : Frontend.parsed) ->
      if
        Lint_rules.helping_exempt_path p.p_path
        || Callgraph.is_substrate_file cg p.p_path
      then []
      else
        decls_of_structure p.p_ast
        |> List.filter_map (fun (tname, labels) ->
               let hot = List.filter hot_label labels in
               let rec first_pair = function
                 | a :: (b :: _ as rest) ->
                     if hot_label a && hot_label b then Some (a, b)
                     else first_pair rest
                 | _ -> None
               in
               match first_pair labels with
               | Some (a, b) ->
                   let writers =
                     List.concat_map
                       (fun (l : label_declaration) ->
                         contended_touchers l.pld_name.txt)
                       hot
                     |> List.sort_uniq compare
                   in
                   if List.length writers >= 2 then
                     Some
                       {
                         Lint_rules.file = p.p_path;
                         line = Frontend.line_of_loc a.pld_loc;
                         rule;
                         msg =
                           Printf.sprintf
                             "record %s puts hot fields %s and %s on one \
                              cache line (%d CAS/RMW-performing functions \
                              touch its hot fields) — false-sharing risk; \
                              put a pad block between them (Tree's pads \
                              idiom) or split the record"
                             tname a.pld_name.txt b.pld_name.txt
                             (List.length writers);
                       }
                   else None
               | None -> None))
    parsed
