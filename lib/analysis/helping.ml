(** Helping-discipline v2 (rules [static-retry], [static-deadline]).

    The token lint's retry rules recognize helping by substring — an
    identifier containing [help], [moundify] or [complete] — which an
    alias ([let restore = moundify]) or a rename defeats in both
    directions. This pass replaces the heuristic with call-graph facts:
    a function that is part of a call-graph cycle (an unbounded retry
    loop, whether self-recursive, mutually recursive, or spinning
    through a nested loop) and whose transitive effects include a CAS
    must also transitively reach a {e helping site} (a completing CAS,
    by shape — see {!Summary}) or a {e backoff} ([cpu_relax]). A loop
    reaching neither spins on contention it does nothing to relieve —
    Sundell & Tsigas's livelock-prone shape.

    The substrate cut in {!Callgraph} is what gives the rule teeth:
    {!Mcas} helps internally on every operation, so without the cut any
    client loop around [M.cas] would inherit a vacuous [helps]. With
    it, the client must bring its own helping or backoff — exactly the
    paper's discipline ([insert] backs off, [extract] helps via
    [moundify]).

    Paths exempt from the token helping rules ([runtime], [sim],
    [baselines]) are exempt here for the same reasons. *)

let scan (cg : Callgraph.t) : Lint_rules.finding list =
  let fns = Callgraph.fns cg in
  let out = ref [] in
  Array.iteri
    (fun i (f : Summary.fn) ->
      if not (Lint_rules.helping_exempt_path f.ffile) then begin
        let eff = Callgraph.trans_effects cg i in
        if
          Callgraph.self_reachable cg i
          && eff.performs_cas
          && (not eff.helps)
          && not eff.backs_off
        then
          out :=
            {
              Lint_rules.file = f.ffile;
              line = f.fline;
              rule = "static-retry";
              msg =
                Printf.sprintf
                  "retry loop %s performs a CAS but its call graph \
                   reaches neither a helping routine nor a backoff; \
                   help the obstructing operation or back off"
                  (String.concat "." f.fpath);
            }
            :: !out;
        (* Disjoint complement, the AST twin of [deadline-blind]: a
           waiting loop (backs off, does not help) whose call graph
           never consults a deadline keeps waiting behind a dead peer
           forever. The substrate cut applies to [checks_deadline] as
           to [helps]: the caller must bring its own bound. *)
        if
          Callgraph.self_reachable cg i
          && eff.performs_cas && eff.backs_off
          && (not eff.helps)
          && not eff.checks_deadline
        then
          out :=
            {
              Lint_rules.file = f.ffile;
              line = f.fline;
              rule = "static-deadline";
              msg =
                Printf.sprintf
                  "retry loop %s backs off but its call graph never \
                   consults a deadline; bound the wait (the _until / \
                   expired family) or record why waiting forever is \
                   safe"
                  (String.concat "." f.fpath);
            }
            :: !out
      end)
    fns;
  List.rev !out
