(** Publication-safety analysis (rules [stale-publish],
    [post-publish-mutation]).

    The lock-free mound's correctness rests on fresh-copy publication
    (paper Listing 2): every CAS/DCSS installs a {e newly allocated}
    immutable record, and a record that has been published — or was read
    from shared memory — is never mutated in place. Physical equality is
    the ABA defence, so writing through a published record would be a
    racy write other threads can observe half-done, and re-publishing a
    record previously read from a location re-introduces ABA.

    Per function, in evaluation order:

    - a CAS-family fresh-value argument that is a variable bound to a
      {e shared read} ([M.get]/[R.Atomic.get]-shaped call) is flagged
      [stale-publish] — the dirty-bit idiom must go through a fresh
      copy, not recycle what it read;
    - a field assignment [v.f <- e] where [v] was earlier passed as a
      CAS fresh value, or was bound to a shared read, is flagged
      [post-publish-mutation] — mutation after (or of) shared state.

    Calls into functions that forward a parameter to a fresh-value slot
    ({!Lf_mound}'s [cas_reusing]/[dcss_reusing]; the {!Summary}
    [publishes] fact) are treated as publication sites for the
    corresponding argument.

    Under-approximations, by design: variables with unknown bindings
    (parameters, record fields, call results other than [get]) are not
    tracked; [casn]'s operation array is not analyzed; aliasing through
    data structures is invisible. Each can hide a violation, none
    produces a spurious finding — mutants exercise the covered idioms. *)

open Parsetree

type binding = Fresh | Shared_read | Unknown

let scan_fn (cg : Callgraph.t) (f : Summary.fn) : Lint_rules.finding list =
  let findings = ref [] in
  let add line rule msg =
    findings := { Lint_rules.file = f.ffile; line; rule; msg } :: !findings
  in
  let extra = ref [] in
  let resolve segs =
    let scope =
      { f.fscope with Summary.venv = !extra @ f.fscope.Summary.venv }
    in
    Callgraph.resolve ~from_file:f.ffile cg (Summary.resolve_call scope segs)
  in
  let bindings : (string, binding) Hashtbl.t = Hashtbl.create 8 in
  let published : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let classify e =
    let e = Summary.strip_casts e in
    match e.pexp_desc with
    | Pexp_record _ | Pexp_tuple _ -> Fresh
    | Pexp_construct (_, _) -> Fresh
    | Pexp_apply (head, _) -> (
        match Summary.flatten_ident head with
        | Some segs when List.length segs >= 2 -> (
            match List.rev segs with
            | "get" :: _ -> Shared_read
            | _ -> Unknown)
        | _ -> Unknown)
    | _ -> Unknown
  in
  let publish_site line arg =
    match (Summary.strip_casts arg).pexp_desc with
    | Pexp_ident { txt = Lident v; _ } -> (
        (match Hashtbl.find_opt bindings v with
        | Some Shared_read ->
            add line "stale-publish"
              (Printf.sprintf
                 "publishes %s, a record read from shared memory; CAS \
                  must install a freshly allocated copy (ABA and torn \
                  observation risk)"
                 v)
        | _ -> ());
        Hashtbl.replace published v line)
    | _ -> ()
  in
  let rec walk e =
    let e = Summary.strip_casts e in
    match e.pexp_desc with
    | Pexp_let (_, vbs, cont) ->
        List.iter
          (fun vb ->
            walk vb.pvb_expr;
            let ps, _ = Summary.fn_shape vb.pvb_expr in
            match Summary.pat_var vb.pvb_pat with
            | Some name when ps <> [] ->
                extra := (name, f.fpath @ [ name ]) :: !extra
            | Some name -> Hashtbl.replace bindings name (classify vb.pvb_expr)
            | None -> ())
          vbs;
        walk cont
    | Pexp_apply (head, args) ->
        List.iter (fun (_, a) -> walk a) args;
        (match Summary.flatten_ident head with
        | Some segs -> (
            let last = List.nth segs (List.length segs - 1) in
            let nargs = Summary.nolabel_args args in
            let line = Frontend.line_of_loc e.pexp_loc in
            if List.length segs >= 2 && List.mem last Summary.cas_family
            then
              List.iter
                (fun i ->
                  match List.nth_opt nargs i with
                  | Some a -> publish_site line a
                  | None -> ())
                (Summary.fresh_positions last)
            else
              match resolve segs with
              | Some j ->
                  let g = Callgraph.fn cg j in
                  List.iter
                    (fun p ->
                      match List.nth_opt nargs p with
                      | Some a -> publish_site line a
                      | None -> ())
                    g.fpublishes
              | None -> ())
        | None -> walk head)
    | Pexp_setfield (r, _, v) -> (
        walk v;
        walk r;
        match Summary.base_var r with
        | Some bv -> (
            let line = Frontend.line_of_loc e.pexp_loc in
            match (Hashtbl.find_opt published bv, Hashtbl.find_opt bindings bv)
            with
            | Some pline, _ ->
                add line "post-publish-mutation"
                  (Printf.sprintf
                     "mutates a field of %s after it was published by the \
                      CAS at line %d; other threads already see this \
                      record — publish a fresh copy instead"
                     bv pline)
            | None, Some Shared_read ->
                add line "post-publish-mutation"
                  (Printf.sprintf
                     "mutates a field of %s, which was read from shared \
                      memory; in-place writes race with concurrent \
                      readers — publish a fresh copy instead"
                     bv)
            | _ -> ())
        | None -> ())
    | Pexp_sequence (a, b) ->
        walk a;
        walk b
    | Pexp_ifthenelse (c, t, el) ->
        walk c;
        walk t;
        Option.iter walk el
    | Pexp_match (s, cs) | Pexp_try (s, cs) ->
        walk s;
        List.iter (fun c -> walk c.pc_rhs) cs
    | Pexp_function cs -> List.iter (fun c -> walk c.pc_rhs) cs
    | Pexp_fun (_, _, _, b)
    | Pexp_lazy b
    | Pexp_newtype (_, b)
    | Pexp_open (_, b)
    | Pexp_assert b ->
        walk b
    | Pexp_while (a, b) ->
        walk a;
        walk b
    | Pexp_for (_, a, b, _, c) ->
        walk a;
        walk b;
        walk c
    | Pexp_record (fs, base) ->
        List.iter (fun (_, v) -> walk v) fs;
        Option.iter walk base
    | Pexp_tuple es | Pexp_array es -> List.iter walk es
    | Pexp_construct (_, a) | Pexp_variant (_, a) -> Option.iter walk a
    | Pexp_field (a, _) -> walk a
    | _ -> ()
  in
  walk f.fbody;
  List.rev !findings

let scan (cg : Callgraph.t) : Lint_rules.finding list =
  Array.to_list (Callgraph.fns cg)
  |> List.concat_map (fun (f : Summary.fn) ->
         if Lint_rules.helping_exempt_path f.ffile then []
         else scan_fn cg f)
