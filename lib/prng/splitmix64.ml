type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The mix function from the reference implementation: two xor-shift
   multiplies that turn the weak counter sequence into 64 well-mixed bits. *)
let next t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound must be positive";
  (* Take the top bits (best mixed) and reduce by modulo; the modulo bias is
     at most [bound]/2^62, far below anything observable in our uses. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  bits mod bound
