type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let of_state s0 s1 s2 s3 =
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Xoshiro256.of_state: all-zero state";
  { s0; s1; s2; s3 }

let create seed =
  let sm = Splitmix64.create seed in
  (* SplitMix64 output is equidistributed, so the all-zero state cannot
     occur for any seed; no need to re-check. *)
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* A cheap mixing of the four state words into one int; used by the
   liveness checker to include "how much randomness has this thread
   consumed" in its state fingerprints. Not a hash of the output stream —
   equal fingerprints mean equal states for all practical purposes. *)
let fingerprint t =
  let mix acc w =
    let acc = Int64.logxor acc w in
    let acc = Int64.mul acc 0xFF51AFD7ED558CCDL in
    Int64.logxor acc (Int64.shift_right_logical acc 33)
  in
  let h = mix (mix (mix (mix 0x9E3779B97F4A7C15L t.s0) t.s1) t.s2) t.s3 in
  Int64.to_int h land max_int

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let bits30 t = Int64.to_int (Int64.shift_right_logical (next t) 34)

(* Unbiased bounded draw: reject draws from the incomplete final bucket of
   the 2^61 range (61 bits so the range itself fits OCaml's 63-bit int).
   The rejection probability is < bound/2^61, so the loop runs once in
   practice. *)
let next_int t bound =
  if bound <= 0 then invalid_arg "Xoshiro256.next_int: bound must be positive";
  let range = 1 lsl 61 in
  let limit = range - (range mod bound) in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next t) 3) in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let jump_table = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3
