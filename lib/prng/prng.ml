module Splitmix64 = Splitmix64
module Xoshiro256 = Xoshiro256

type t = Xoshiro256.t

let create = Xoshiro256.create

(* Hash the thread id into the seed with SplitMix64 so that ids 0,1,2,...
   land on unrelated points of the seed space rather than adjacent ones. *)
let for_thread ~seed ~id =
  let sm = Splitmix64.create (Int64.add seed (Int64.of_int id)) in
  ignore (Splitmix64.next sm);
  Xoshiro256.create (Splitmix64.next sm)

let int = Xoshiro256.next_int

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + Xoshiro256.next_int t (hi - lo + 1)

let bool t = Int64.logand (Xoshiro256.next t) 1L = 1L

let int64 = Xoshiro256.next

let fingerprint = Xoshiro256.fingerprint

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Xoshiro256.next_int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
