(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood 2014).

    A tiny, fast, full-period generator over a 64-bit state. Its main role
    here is seeding: {!Xoshiro256} states are expanded from a single seed
    through SplitMix64, as its authors recommend, which guarantees distinct,
    well-mixed states for every simulated or real thread. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a generator whose stream is a pure function of
    [seed]. Any seed, including [0L], is acceptable. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)]. [bound] must be
    positive. *)
