module Splitmix64 = Splitmix64
module Xoshiro256 = Xoshiro256

(** Convenience front-end over the generators in this library.

    [Prng.t] is the generator type the rest of the repository passes
    around; today it is xoshiro256**, and the alias keeps that choice in
    one place. *)

type t = Xoshiro256.t

val create : int64 -> t
(** [create seed] — see {!Xoshiro256.create}. *)

val for_thread : seed:int64 -> id:int -> t
(** [for_thread ~seed ~id] derives a stream for thread [id] that is
    deterministic in [(seed, id)] and statistically independent of every
    other thread's stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool

val int64 : t -> int64

val fingerprint : t -> int
(** Hash of the generator's current state — see {!Xoshiro256.fingerprint}. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
