(** xoshiro256** pseudo-random number generator (Blackman & Vigna 2018).

    The workhorse generator for the repository: every thread — real domain
    or simulated thread — owns one state and draws leaf indices, keys and
    operation choices from it. It is fast (a handful of shifts and adds per
    draw), has period 2^256 - 1, and passes BigCrush. Determinism matters
    here: the simulator replays identical schedules from identical seeds. *)

type t
(** Mutable generator state (four 64-bit words, never all zero). *)

val create : int64 -> t
(** [create seed] expands [seed] into a full 256-bit state via
    {!Splitmix64}, per the authors' recommendation. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] uses the given words directly.
    @raise Invalid_argument if all four words are zero. *)

val copy : t -> t
(** Independent generator with the same future stream. *)

val fingerprint : t -> int
(** Non-negative hash of the current 256-bit state. Two generators with
    the same fingerprint have (for all practical purposes) the same state;
    the liveness checker folds this into its state fingerprints so that a
    thread consuming randomness never looks like a repeated state. *)

val next : t -> int64
(** Next 64-bit output. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)] (Lemire-style rejection,
    no modulo bias). [bound] must be positive. *)

val bits30 : t -> int
(** 30 uniform bits as a non-negative [int]; cheaper than {!next_int} when a
    raw bit source is enough. *)

val jump : t -> unit
(** Advance [t] by 2^128 steps; used to derive widely separated streams
    from a common ancestor state. *)
