(** Priority-map adapter: decrease-key on top of a mound.

    Mounds (like most concurrent priority queues) have no native
    decrease-key; the standard workaround — used by the Dijkstra and A*
    examples — is lazy deletion: re-insert the element under its better
    priority and drop stale entries at extraction time. This functor
    packages that pattern as a keyed priority map over the {e sequential}
    mound, for algorithms that want the textbook
    [insert / decrease_key / pop_min] interface.

    Entries are (priority, key) pairs; a hash table tracks each key's
    current best priority. [pop_min] filters entries whose priority no
    longer matches. Stale entries cost O(log N) each at pop time, the
    usual lazy-deletion trade. *)

module Make (P : Intf.ORDERED) (K : Hashtbl.HashedType) = struct
  module Entry = struct
    type t = P.t * K.t

    (* Order by priority only: keys are tie-broken arbitrarily but
       deterministically by insertion order inside the mound's lists. *)
    let compare (p1, _) (p2, _) = P.compare p1 p2
  end

  module Q = Seq_mound.Make (Entry)
  module H = Hashtbl.Make (K)

  type t = { queue : Q.t; best : P.t H.t }

  let create ?seed () = { queue = Q.create ?seed (); best = H.create 64 }

  let mem t k = H.mem t.best k

  let priority t k = H.find_opt t.best k

  (** [insert t k p] adds key [k] at priority [p], or improves its
      priority if [p] is better. Worsening an existing priority is
      ignored; returns [true] when the map changed. *)
  let insert t k p =
    match H.find_opt t.best k with
    | Some cur when P.compare cur p <= 0 -> false
    | _ ->
        H.replace t.best k p;
        Q.insert t.queue (p, k);
        true

  (** [decrease_key t k p] — synonym of {!insert} with intent spelled
      out. *)
  let decrease_key = insert

  (** Remove and return the key with the smallest current priority. *)
  let rec pop_min t =
    match Q.extract_min t.queue with
    | None -> None
    | Some (p, k) -> (
        match H.find_opt t.best k with
        | Some cur when P.compare cur p = 0 ->
            H.remove t.best k;
            Some (k, p)
        | _ -> pop_min t (* stale entry superseded by a decrease_key *))

  (** [try_insert]: {!insert}'s result already distinguishes "changed"
      from "refused" (a worse priority), so the try variant is the same
      operation under the front-end's expected name. *)
  let try_insert = insert

  (** Deadline-checking {!pop_min} for churn-heavy workloads: lazy
      deletion makes a single pop O(S log N) in the number of stale
      entries [S], so under decrease-key storms even the sequential map
      can blow a latency budget. The deadline ([Runtime.Real.monotonic_ns]
      stamp; [Intf.no_deadline] never expires) is checked between stale
      drops — a fresh head is returned even if it arrives late, so
      [Timeout] always means "gave up while discarding stale entries",
      with the discarded entries genuinely stale (no element is lost). *)
  let rec pop_min_until t ~deadline =
    match Q.extract_min t.queue with
    | None -> Intf.Ok None
    | Some (p, k) -> (
        match H.find_opt t.best k with
        | Some cur when P.compare cur p = 0 ->
            H.remove t.best k;
            Intf.Ok (Some (k, p))
        | _ ->
            (* stale entry superseded by a decrease_key *)
            if
              deadline <> Intf.no_deadline
              && Runtime.Real.monotonic_ns () > deadline
            then Intf.Timeout
            else pop_min_until t ~deadline)

  let rec peek_min t =
    match Q.peek_min t.queue with
    | None -> None
    | Some (p, k) -> (
        match H.find_opt t.best k with
        | Some cur when P.compare cur p = 0 -> Some (k, p)
        | _ ->
            (* drop the stale head and look again *)
            ignore (Q.extract_min t.queue);
            peek_min t)

  let is_empty t = peek_min t = None

  (** Live keys (stale queue entries excluded). *)
  let size t = H.length t.best
end
