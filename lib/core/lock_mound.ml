(** Fine-grained locking mound (paper §IV, Listing 3).

    Each node is an atomic holding an immutable [{list; locked; seq}]
    record — the paper reuses the dirty field as the lock bit, and
    unlocked nodes are never dirty. [set_lock] is a test-and-CAS spinlock
    on the node; the [seq] stamp increments on every transition, so each
    lock tenure is identified by the physically-unique locked record the
    holder installed (its {e witness}).

    [moundify] performs the downward restoration with hand-over-hand
    locking, always locking parents before children; [insert] locks the
    insertion point's parent before the insertion point for the same
    global order, which makes the scheme deadlock-free. Compared with the
    lock-free variant, a critical section that would take one software
    DCAS (≈5 CAS) costs at most three plain CAS acquisitions here —
    the latency advantage the paper measures.

    {2 Lease-based wedge recovery}

    A thread that dies holding a lock wedges every future operation that
    needs that node — the failure mode the paper's lock-freedom argument
    is about. With [create ~lease], a spinner that observes the {e same}
    witness record locked for longer than the lease presumes the holder
    dead and revokes the lock: it CASes the witness to a fresh locked
    record of its own, restores the mound property below the node (the
    holder may have died mid-protocol), and then competes for the lock
    normally. Revocation is safe against slow-but-alive holders because
    every write a holder makes to a held node is a CAS against its
    witness — once revoked, those CASes fail and the holder abandons the
    node (an unpublished insert retries; a torn moundify swap is repaired
    by the revoker's own moundify).

    Recovery restores availability and the heap property in bounded
    time. It does {e not} make the locking mound crash-tolerant: a holder
    that dies at certain interior moundify points can leave an element
    duplicated or dropped — inherent to blocking designs, and exactly the
    contrast with the lock-free variant that the paper draws. The lease
    defaults to off, preserving the classic blocking behaviour. *)

module Make (R : Runtime.S) (Ord : Intf.ORDERED) = struct
  module T = Tree.Make (R)

  type elt = Ord.t

  type lnode = { list : elt list; locked : bool; seq : int }

  type t = {
    tree : lnode R.Atomic.t T.t;
    ops : Stats.Ops.t;
    lease : int;
        (** ns (virtual time under the simulator) a lock may be held
            before spinners may revoke it; 0 disables revocation *)
  }

  let vcompare = Intf.Value.compare Ord.compare

  let node_value n = match n.list with [] -> None | x :: _ -> Some x

  let create ?threshold ?init_depth ?(lease = 0) () =
    let make_slot () = R.Atomic.make { list = []; locked = false; seq = 0 } in
    {
      tree = T.create ?threshold ?init_depth make_slot;
      ops = Stats.Ops.create ();
      lease;
    }

  (** Spin / retry counters since creation. Exact and deterministic
      under the simulator; racy (diagnostic) on real domains. *)
  let ops t = t.ops

  let depth t = T.depth t.tree

  let expired ~deadline =
    deadline <> Intf.no_deadline && R.monotonic_ns () > deadline

  let bump_timeout t = t.ops.deadline_timeouts <- t.ops.deadline_timeouts + 1

  (* Every write to a held node goes through the witness the holder
     installed. Without a lease nobody can revoke us, so the plain store
     of the classic algorithm is kept; with a lease the write must CAS
     against the witness — failure means a recoverer revoked the lock and
     the node is no longer ours to touch. *)
  let restamp t slot ~witness fresh =
    if t.lease = 0 then begin
      R.Atomic.set slot fresh;
      true
    end
    else R.Atomic.compare_and_set slot witness fresh

  let unlock t slot ~witness list =
    restamp t slot ~witness { list; locked = false; seq = witness.seq + 1 }

  (* Consecutive failed acquisitions of one [set_lock] call before the
     wait is counted as a livelock near miss (sustained non-progress that
     eventually resolved — the dynamic shadow of the liveness checker). *)
  let near_miss_spins = 64

  (* Spin until the node is acquired, honouring [deadline] and — when a
     lease is set — revoking holders that exceed it. Returns the locked
     record we installed (the witness), or [None] on deadline expiry.
     [node]/[level] locate the slot in the tree so an expired-lease
     takeover can restore the mound property below it (paper F1–F4, plus
     recovery). *)
  let rec set_lock_until t slot ~node ~level ~deadline =
    (* [seen]/[since]: the first observation of the current holder's
       witness and our clock at that observation — the lease timer. A
       different record restarts the timer (a new tenure began). *)
    let rec spin tries seen since =
      let n = R.Atomic.get slot in
      if not n.locked then begin
        let mine = { list = n.list; locked = true; seq = n.seq + 1 } in
        if R.Atomic.compare_and_set slot n mine then Some mine
        else miss tries seen since
      end
      else if t.lease > 0 then begin
        let now = R.monotonic_ns () in
        match seen with
        | Some w when w == n ->
            if now - since > t.lease then begin
              (* Holder exceeded its lease: presume it dead and take the
                 lock directly from its witness. The CAS is the whole
                 revocation — from here on the old holder's witnessed
                 writes all fail. *)
              let mine = { list = n.list; locked = true; seq = n.seq + 1 } in
              if R.Atomic.compare_and_set slot n mine then begin
                t.ops.lock_recoveries <- t.ops.lock_recoveries + 1;
                (* The holder may have died mid-protocol; restore the
                   mound property below this node (which also releases
                   it), then compete for the lock normally. *)
                moundify t node ~level ~witness:mine;
                spin tries None 0
              end
              else miss tries seen since
            end
            else miss tries seen since
        | _ -> miss tries (Some n) now
      end
      else miss tries seen since
    and miss tries seen since =
      t.ops.lock_spins <- t.ops.lock_spins + 1;
      if tries = near_miss_spins then
        t.ops.livelock_near_misses <- t.ops.livelock_near_misses + 1;
      if expired ~deadline then None
      else begin
        R.cpu_relax ();
        spin (tries + 1) seen since
      end
    in
    spin 0 None 0

  and set_lock t slot ~node ~level =
    match set_lock_until t slot ~node ~level ~deadline:Intf.no_deadline with
    | Some w -> w
    | None -> assert false (* no deadline: the spin never gives up *)

  (* Precondition: the caller holds the lock on [n] via [witness], and
     [level] is ⌊log₂ n⌋ — the traversal always knows it (the root is
     level 0, children one deeper), so slots are fetched with [get_at]
     instead of recomputing the level per access. Restores the mound
     property below [n] and releases every lock it takes, including
     [n]'s (paper F14–F35). A witnessed write that fails means the lease
     recoverer revoked us; the node is abandoned and the revoker's own
     moundify repairs it. *)
  and moundify t n ~level ~witness =
    let slot = T.get_at t.tree ~level n in
    let nlist = witness.list in
    let d = T.depth t.tree in
    if T.is_leaf n ~depth:d then ignore (unlock t slot ~witness nlist)
    else begin
      let lslot = T.get_at t.tree ~level:(level + 1) (2 * n)
      and rslot = T.get_at t.tree ~level:(level + 1) ((2 * n) + 1) in
      let wl = set_lock t lslot ~node:(2 * n) ~level:(level + 1) in
      let wr = set_lock t rslot ~node:((2 * n) + 1) ~level:(level + 1) in
      let vn = match nlist with [] -> None | x :: _ -> Some x
      and vl = node_value wl
      and vr = node_value wr in
      if vcompare vl vr <= 0 && vcompare vl vn < 0 then begin
        (* Swap lists with the left child, which keeps our old list and
           stays locked while we recurse into it — hand-over-hand. The
           child is re-stamped first so that if our own lock on [n] has
           been revoked, the swap aborts with both lists intact. *)
        let wl' = { list = nlist; locked = true; seq = wl.seq + 1 } in
        if restamp t lslot ~witness:wl wl' then begin
          ignore (unlock t rslot ~witness:wr wr.list);
          ignore (unlock t slot ~witness wl.list);
          moundify t (2 * n) ~level:(level + 1) ~witness:wl'
        end
        else begin
          ignore (unlock t rslot ~witness:wr wr.list);
          ignore (unlock t slot ~witness nlist)
        end
      end
      else if vcompare vr vl < 0 && vcompare vr vn < 0 then begin
        let wr' = { list = nlist; locked = true; seq = wr.seq + 1 } in
        if restamp t rslot ~witness:wr wr' then begin
          ignore (unlock t lslot ~witness:wl wl.list);
          ignore (unlock t slot ~witness wr.list);
          moundify t ((2 * n) + 1) ~level:(level + 1) ~witness:wr'
        end
        else begin
          ignore (unlock t lslot ~witness:wl wl.list);
          ignore (unlock t slot ~witness nlist)
        end
      end
      else begin
        ignore (unlock t slot ~witness nlist);
        ignore (unlock t lslot ~witness:wl wl.list);
        ignore (unlock t rslot ~witness:wr wr.list)
      end
    end

  let rec extract_min_until t ~deadline =
    let slot = T.get_at t.tree ~level:0 1 in
    match set_lock_until t slot ~node:1 ~level:0 ~deadline with
    | None ->
        bump_timeout t;
        Intf.Timeout
    | Some w -> (
        match w.list with
        | [] ->
            ignore (unlock t slot ~witness:w []);
            Intf.Ok None
        | hd :: tl ->
            (* Remove the head, keep the root locked, and let moundify
               release it (F9–F12). *)
            let w' = { list = tl; locked = true; seq = w.seq + 1 } in
            if restamp t slot ~witness:w w' then begin
              moundify t 1 ~level:0 ~witness:w';
              Intf.Ok (Some hd)
            end
            else begin
              (* revoked between acquisition and behead: nothing removed *)
              t.ops.extract_retries <- t.ops.extract_retries + 1;
              if expired ~deadline then begin
                bump_timeout t;
                Intf.Timeout
              end
              else extract_min_until t ~deadline
            end)

  let extract_min t =
    match extract_min_until t ~deadline:Intf.no_deadline with
    | Intf.Ok r -> r
    | Timeout | Rejected -> assert false (* no deadline, no admission *)

  (** Take the root's entire list (§V): identical protocol with the list
      emptied instead of beheaded. *)
  let rec extract_many t =
    let slot = T.get_at t.tree ~level:0 1 in
    let w = set_lock t slot ~node:1 ~level:0 in
    match w.list with
    | [] ->
        ignore (unlock t slot ~witness:w []);
        []
    | taken ->
        let w' = { list = []; locked = true; seq = w.seq + 1 } in
        if restamp t slot ~witness:w w' then begin
          moundify t 1 ~level:0 ~witness:w';
          taken
        end
        else begin
          t.ops.extract_retries <- t.ops.extract_retries + 1;
          extract_many t
        end

  (** Probabilistic extract-min (§V): lock a random node within the first
      [max_level+1] levels and extract its head, which is the minimum of
      the sub-mound rooted there. Falls back to the exact operation on an
      empty probe. *)
  let rec extract_approx ?(max_level = 2) t =
    let d = T.depth t.tree in
    let lvl = min max_level (d - 1) in
    let span = (1 lsl (lvl + 1)) - 1 in
    let n = 1 + R.rand_int span in
    let nlvl = T.level_of n in
    let slot = T.get_at t.tree ~level:nlvl n in
    let w = set_lock t slot ~node:n ~level:nlvl in
    match w.list with
    | [] ->
        ignore (unlock t slot ~witness:w []);
        extract_min t
    | hd :: tl ->
        let w' = { list = tl; locked = true; seq = w.seq + 1 } in
        if restamp t slot ~witness:w w' then begin
          moundify t n ~level:nlvl ~witness:w';
          Some hd
        end
        else begin
          t.ops.extract_retries <- t.ops.extract_retries + 1;
          extract_approx ~max_level t
        end

  (* [ge] is built once per [insert] call and reused across retries —
     the validation predicate does not change, so no fresh closure per
     attempt. The deadline bounds both the lock waits and the
     revalidation retries; [Timeout] guarantees [v] was not published. *)
  let rec insert_attempt t v ~ge ~deadline =
    let retry () =
      t.ops.insert_retries <- t.ops.insert_retries + 1;
      if expired ~deadline then begin
        bump_timeout t;
        Intf.Timeout
      end
      else insert_attempt t v ~ge ~deadline
    in
    let c, clvl = T.find_insert_point_lv t.tree ~ge in
    let cslot = T.get_at t.tree ~level:clvl c in
    if c = 1 then
      match set_lock_until t cslot ~node:1 ~level:0 ~deadline with
      | None ->
          bump_timeout t;
          Intf.Timeout
      | Some w ->
          if Intf.Value.ge_elt Ord.compare (node_value w) v then
            if unlock t cslot ~witness:w (v :: w.list) then Intf.Ok ()
            else retry () (* revoked before publication: not inserted *)
          else begin
            ignore (unlock t cslot ~witness:w w.list);
            retry ()
          end
    else begin
      (* Parent before child, matching moundify's order (F45–F46). *)
      let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
      match set_lock_until t pslot ~node:(c / 2) ~level:(clvl - 1) ~deadline with
      | None ->
          bump_timeout t;
          Intf.Timeout
      | Some wp -> (
          match set_lock_until t cslot ~node:c ~level:clvl ~deadline with
          | None ->
              ignore (unlock t pslot ~witness:wp wp.list);
              bump_timeout t;
              Intf.Timeout
          | Some wc ->
              if
                Intf.Value.ge_elt Ord.compare (node_value wc) v
                && Intf.Value.le_elt Ord.compare (node_value wp) v
              then begin
                let published = unlock t cslot ~witness:wc (v :: wc.list) in
                ignore (unlock t pslot ~witness:wp wp.list);
                if published then Intf.Ok () else retry ()
              end
              else begin
                ignore (unlock t pslot ~witness:wp wp.list);
                ignore (unlock t cslot ~witness:wc wc.list);
                retry ()
              end)
    end

  let insert t v =
    let ge i =
      Intf.Value.ge_elt Ord.compare (node_value (R.Atomic.get (T.get t.tree i))) v
    in
    match insert_attempt t v ~ge ~deadline:Intf.no_deadline with
    | Intf.Ok () -> ()
    | Timeout | Rejected -> assert false (* no deadline, no admission *)

  let insert_until t ~deadline v =
    let ge i =
      Intf.Value.ge_elt Ord.compare (node_value (R.Atomic.get (T.get t.tree i))) v
    in
    insert_attempt t v ~ge ~deadline

  (* Single acquisition attempt: no spinning, no lease accounting. *)
  let try_lock t slot =
    let n = R.Atomic.get slot in
    if n.locked then begin
      t.ops.lock_spins <- t.ops.lock_spins + 1;
      None
    end
    else
      let mine = { list = n.list; locked = true; seq = n.seq + 1 } in
      if R.Atomic.compare_and_set slot n mine then Some mine
      else begin
        t.ops.lock_spins <- t.ops.lock_spins + 1;
        None
      end

  (** One bounded pass with try-locks: probe once, acquire without
      spinning, publish or report [false]. Never blocks behind a held
      lock — the admission path the bounded front-end uses. *)
  let try_insert t v =
    let ge i =
      Intf.Value.ge_elt Ord.compare (node_value (R.Atomic.get (T.get t.tree i))) v
    in
    let c, clvl = T.find_insert_point_lv t.tree ~ge in
    let cslot = T.get_at t.tree ~level:clvl c in
    let ok =
      if c = 1 then
        match try_lock t cslot with
        | None -> false
        | Some w ->
            if Intf.Value.ge_elt Ord.compare (node_value w) v then
              unlock t cslot ~witness:w (v :: w.list)
            else begin
              ignore (unlock t cslot ~witness:w w.list);
              false
            end
      else
        let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
        match try_lock t pslot with
        | None -> false
        | Some wp -> (
            match try_lock t cslot with
            | None ->
                ignore (unlock t pslot ~witness:wp wp.list);
                false
            | Some wc ->
                if
                  Intf.Value.ge_elt Ord.compare (node_value wc) v
                  && Intf.Value.le_elt Ord.compare (node_value wp) v
                then begin
                  let published = unlock t cslot ~witness:wc (v :: wc.list) in
                  ignore (unlock t pslot ~witness:wp wp.list);
                  published
                end
                else begin
                  ignore (unlock t pslot ~witness:wp wp.list);
                  ignore (unlock t cslot ~witness:wc wc.list);
                  false
                end)
    in
    if not ok then t.ops.rejected <- t.ops.rejected + 1;
    ok

  (* Longest prefix of the sorted batch fitting under [limit] ([None] is
     ⊤), paired with the remainder — same shape as the other variants. *)
  let rec split_prefix limit acc = function
    | x :: rest when Intf.Value.ge_elt Ord.compare limit x ->
        split_prefix limit (x :: acc) rest
    | rest -> (List.rev acc, rest)

  let batch_tries = 4

  (** Insert a {e sorted} batch — the dual of [extract_many]. The batch
      is walked front to back: each round finds the insert point for the
      current head once, then splices the longest prefix that fits that
      node ([val(parent c) <= hd] and every spliced element [<= val(c)])
      under one lock pair — probing and binary search are amortized over
      the whole run instead of paid per element. Under contention the
      head falls back to the element-wise [insert] and batching resumes
      with the remainder. *)
  let insert_many t batch =
    let rec go batch tries =
      match batch with
      | [] -> ()
      | hd :: rest_after_hd ->
          if tries = 0 then begin
            insert t hd;
            go rest_after_hd batch_tries
          end
          else begin
            let ge i =
              Intf.Value.ge_elt Ord.compare
                (node_value (R.Atomic.get (T.get t.tree i)))
                hd
            in
            let c, clvl = T.find_insert_point_lv t.tree ~ge in
            let cslot = T.get_at t.tree ~level:clvl c in
            if c = 1 then begin
              let w = set_lock t cslot ~node:1 ~level:0 in
              let limit = node_value w in
              if Intf.Value.ge_elt Ord.compare limit hd then begin
                let prefix, rest = split_prefix limit [] batch in
                if unlock t cslot ~witness:w (prefix @ w.list) then
                  go rest batch_tries
                else go batch (tries - 1)
              end
              else begin
                ignore (unlock t cslot ~witness:w w.list);
                go batch (tries - 1)
              end
            end
            else begin
              let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
              let wp = set_lock t pslot ~node:(c / 2) ~level:(clvl - 1) in
              let wc = set_lock t cslot ~node:c ~level:clvl in
              let limit = node_value wc in
              if
                Intf.Value.ge_elt Ord.compare limit hd
                && Intf.Value.le_elt Ord.compare (node_value wp) hd
              then begin
                let prefix, rest = split_prefix limit [] batch in
                let published = unlock t cslot ~witness:wc (prefix @ wc.list) in
                ignore (unlock t pslot ~witness:wp wp.list);
                if published then go rest batch_tries else go batch (tries - 1)
              end
              else begin
                ignore (unlock t pslot ~witness:wp wp.list);
                ignore (unlock t cslot ~witness:wc wc.list);
                go batch (tries - 1)
              end
            end
          end
    in
    go batch batch_tries

  let peek_min t =
    let slot = T.get_at t.tree ~level:0 1 in
    let w = set_lock t slot ~node:1 ~level:0 in
    ignore (unlock t slot ~witness:w w.list);
    node_value w

  let is_empty t = peek_min t = None

  (* ----- quiescent introspection ----- *)

  let fold_nodes t f acc =
    T.fold t.tree (fun acc i slot -> f acc i (R.Atomic.get slot).list) acc

  let size t = fold_nodes t (fun acc _ l -> acc + List.length l) 0

  let rec list_sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Ord.compare a b <= 0 && list_sorted rest

  (** Quiescent check: sorted lists and the mound property at every
      parent/child pair (no node should be locked at a quiescent point). *)
  let check t =
    fold_nodes t
      (fun ok i l ->
        ok && list_sorted l
        && (not (R.Atomic.get (T.get t.tree i)).locked)
        &&
        if i = 1 then true
        else
          Intf.Value.le Ord.compare
            (node_value (R.Atomic.get (T.get t.tree (i / 2))))
            (match l with [] -> None | x :: _ -> Some x))
      true
end
