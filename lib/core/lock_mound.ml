(** Fine-grained locking mound (paper §IV, Listing 3).

    Each node is an atomic holding an immutable [{list; locked}] record —
    the paper reuses the dirty field as the lock bit, and unlocked nodes
    are never dirty, so no dirty flag or sequence counter is needed.
    [set_lock] is a test-and-CAS spinlock on the node; unlocking is a
    plain store of a fresh unlocked record, valid because only the lock
    holder writes a locked node.

    [moundify] performs the downward restoration with hand-over-hand
    locking, always locking parents before children; [insert] locks the
    insertion point's parent before the insertion point for the same
    global order, which makes the scheme deadlock-free. Compared with the
    lock-free variant, a critical section that would take one software
    DCAS (≈5 CAS) costs at most three plain CAS acquisitions here —
    the latency advantage the paper measures. *)

module Make (R : Runtime.S) (Ord : Intf.ORDERED) = struct
  module T = Tree.Make (R)

  type elt = Ord.t

  type lnode = { list : elt list; locked : bool }

  type t = { tree : lnode R.Atomic.t T.t; ops : Stats.Ops.t }

  let vcompare = Intf.Value.compare Ord.compare

  let node_value n = match n.list with [] -> None | x :: _ -> Some x

  let create ?threshold ?init_depth () =
    let make_slot () = R.Atomic.make { list = []; locked = false } in
    { tree = T.create ?threshold ?init_depth make_slot; ops = Stats.Ops.create () }

  (** Spin / retry counters since creation. Exact and deterministic
      under the simulator; racy (diagnostic) on real domains. *)
  let ops t = t.ops

  let depth t = T.depth t.tree

  (* Consecutive failed acquisitions of one [set_lock] call before the
     wait is counted as a livelock near miss (sustained non-progress that
     eventually resolved — the dynamic shadow of the liveness checker). *)
  let near_miss_spins = 64

  (* Spin until the node is acquired; returns the contents observed at
     acquisition time (paper F1–F4). *)
  let set_lock t slot =
    let rec spin tries =
      let n = R.Atomic.get slot in
      if
        (not n.locked)
        && R.Atomic.compare_and_set slot n { list = n.list; locked = true }
      then n
      else begin
        t.ops.lock_spins <- t.ops.lock_spins + 1;
        if tries = near_miss_spins then
          t.ops.livelock_near_misses <- t.ops.livelock_near_misses + 1;
        R.cpu_relax ();
        spin (tries + 1)
      end
    in
    spin 0

  let unlock slot list = R.Atomic.set slot { list; locked = false }

  (* Precondition: the caller holds the lock on [n], whose current list
     is [nlist], and [level] is ⌊log₂ n⌋ — the traversal always knows it
     (the root is level 0, children one deeper), so slots are fetched
     with [get_at] instead of recomputing the level per access. Restores
     the mound property below [n] and releases every lock it takes,
     including [n]'s (paper F14–F35). *)
  let rec moundify t n ~level nlist =
    let slot = T.get_at t.tree ~level n in
    let d = T.depth t.tree in
    if T.is_leaf n ~depth:d then unlock slot nlist
    else begin
      let lslot = T.get_at t.tree ~level:(level + 1) (2 * n)
      and rslot = T.get_at t.tree ~level:(level + 1) ((2 * n) + 1) in
      let left = set_lock t lslot in
      let right = set_lock t rslot in
      let vn = match nlist with [] -> None | x :: _ -> Some x
      and vl = node_value left
      and vr = node_value right in
      if vcompare vl vr <= 0 && vcompare vl vn < 0 then begin
        unlock rslot right.list;
        unlock slot left.list;
        (* The left child keeps our old list and stays locked while we
           recurse into it — hand-over-hand. *)
        R.Atomic.set lslot { list = nlist; locked = true };
        moundify t (2 * n) ~level:(level + 1) nlist
      end
      else if vcompare vr vl < 0 && vcompare vr vn < 0 then begin
        unlock lslot left.list;
        unlock slot right.list;
        R.Atomic.set rslot { list = nlist; locked = true };
        moundify t ((2 * n) + 1) ~level:(level + 1) nlist
      end
      else begin
        unlock slot nlist;
        unlock lslot left.list;
        unlock rslot right.list
      end
    end

  let extract_min t =
    let slot = T.get_at t.tree ~level:0 1 in
    let root = set_lock t slot in
    match root.list with
    | [] ->
        unlock slot [];
        None
    | hd :: tl ->
        (* Remove the head, keep the root locked, and let moundify release
           it (F9–F12). *)
        R.Atomic.set slot { list = tl; locked = true };
        moundify t 1 ~level:0 tl;
        Some hd

  (** Take the root's entire list (§V): identical protocol with the list
      emptied instead of beheaded. *)
  let extract_many t =
    let slot = T.get_at t.tree ~level:0 1 in
    let root = set_lock t slot in
    match root.list with
    | [] ->
        unlock slot [];
        []
    | taken ->
        R.Atomic.set slot { list = []; locked = true };
        moundify t 1 ~level:0 [];
        taken

  (** Probabilistic extract-min (§V): lock a random node within the first
      [max_level+1] levels and extract its head, which is the minimum of
      the sub-mound rooted there. Falls back to the exact operation on an
      empty probe. *)
  let extract_approx ?(max_level = 2) t =
    let d = T.depth t.tree in
    let lvl = min max_level (d - 1) in
    let span = (1 lsl (lvl + 1)) - 1 in
    let n = 1 + R.rand_int span in
    let nlvl = T.level_of n in
    let slot = T.get_at t.tree ~level:nlvl n in
    let node = set_lock t slot in
    match node.list with
    | [] ->
        unlock slot [];
        extract_min t
    | hd :: tl ->
        R.Atomic.set slot { list = tl; locked = true };
        moundify t n ~level:nlvl tl;
        Some hd

  (* [ge] is built once per [insert] call and reused across retries —
     the validation predicate does not change, so no fresh closure per
     attempt. *)
  let rec insert_attempt t v ~ge =
    let c, clvl = T.find_insert_point_lv t.tree ~ge in
    let cslot = T.get_at t.tree ~level:clvl c in
    if c = 1 then begin
      let root = set_lock t cslot in
      if Intf.Value.ge_elt Ord.compare (node_value root) v then
        unlock cslot (v :: root.list)
      else begin
        unlock cslot root.list;
        t.ops.insert_retries <- t.ops.insert_retries + 1;
        insert_attempt t v ~ge
      end
    end
    else begin
      (* Parent before child, matching moundify's order (F45–F46). *)
      let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
      let parent = set_lock t pslot in
      let child = set_lock t cslot in
      if
        Intf.Value.ge_elt Ord.compare (node_value child) v
        && Intf.Value.le_elt Ord.compare (node_value parent) v
      then begin
        unlock cslot (v :: child.list);
        unlock pslot parent.list
      end
      else begin
        unlock pslot parent.list;
        unlock cslot child.list;
        t.ops.insert_retries <- t.ops.insert_retries + 1;
        insert_attempt t v ~ge
      end
    end

  let insert t v =
    let ge i =
      Intf.Value.ge_elt Ord.compare (node_value (R.Atomic.get (T.get t.tree i))) v
    in
    insert_attempt t v ~ge

  (* Longest prefix of the sorted batch fitting under [limit] ([None] is
     ⊤), paired with the remainder — same shape as the other variants. *)
  let rec split_prefix limit acc = function
    | x :: rest when Intf.Value.ge_elt Ord.compare limit x ->
        split_prefix limit (x :: acc) rest
    | rest -> (List.rev acc, rest)

  let batch_tries = 4

  (** Insert a {e sorted} batch — the dual of [extract_many]. The batch
      is walked front to back: each round finds the insert point for the
      current head once, then splices the longest prefix that fits that
      node ([val(parent c) <= hd] and every spliced element [<= val(c)])
      under one lock pair — probing and binary search are amortized over
      the whole run instead of paid per element. Under contention the
      head falls back to the element-wise [insert] and batching resumes
      with the remainder. *)
  let insert_many t batch =
    let rec go batch tries =
      match batch with
      | [] -> ()
      | hd :: rest_after_hd ->
          if tries = 0 then begin
            insert t hd;
            go rest_after_hd batch_tries
          end
          else begin
            let ge i =
              Intf.Value.ge_elt Ord.compare
                (node_value (R.Atomic.get (T.get t.tree i)))
                hd
            in
            let c, clvl = T.find_insert_point_lv t.tree ~ge in
            let cslot = T.get_at t.tree ~level:clvl c in
            if c = 1 then begin
              let root = set_lock t cslot in
              let limit = node_value root in
              if Intf.Value.ge_elt Ord.compare limit hd then begin
                let prefix, rest = split_prefix limit [] batch in
                unlock cslot (prefix @ root.list);
                go rest batch_tries
              end
              else begin
                unlock cslot root.list;
                go batch (tries - 1)
              end
            end
            else begin
              let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
              let parent = set_lock t pslot in
              let child = set_lock t cslot in
              let limit = node_value child in
              if
                Intf.Value.ge_elt Ord.compare limit hd
                && Intf.Value.le_elt Ord.compare (node_value parent) hd
              then begin
                let prefix, rest = split_prefix limit [] batch in
                unlock cslot (prefix @ child.list);
                unlock pslot parent.list;
                go rest batch_tries
              end
              else begin
                unlock pslot parent.list;
                unlock cslot child.list;
                go batch (tries - 1)
              end
            end
          end
    in
    go batch batch_tries

  let peek_min t =
    let slot = T.get_at t.tree ~level:0 1 in
    let root = set_lock t slot in
    unlock slot root.list;
    node_value root

  let is_empty t = peek_min t = None

  (* ----- quiescent introspection ----- *)

  let fold_nodes t f acc =
    T.fold t.tree (fun acc i slot -> f acc i (R.Atomic.get slot).list) acc

  let size t = fold_nodes t (fun acc _ l -> acc + List.length l) 0

  let rec list_sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Ord.compare a b <= 0 && list_sorted rest

  (** Quiescent check: sorted lists and the mound property at every
      parent/child pair (no node should be locked at a quiescent point). *)
  let check t =
    fold_nodes t
      (fun ok i l ->
        ok && list_sorted l
        && (not (R.Atomic.get (T.get t.tree i)).locked)
        &&
        if i = 1 then true
        else
          Intf.Value.le Ord.compare
            (node_value (R.Atomic.get (T.get t.tree (i / 2))))
            (match l with [] -> None | x :: _ -> Some x))
      true
end
