(** Structure statistics for the paper's Tables I–IV.

    All statistics are computed at quiescent points from a mound's
    [fold_nodes] iteration (index and per-node sorted list). A level's
    {e fullness} is the fraction of its nodes with a non-empty list —
    Tables I–III report the levels that are not 100% full; Table IV
    reports the average list length and average stored value per level. *)

(** Dynamic operation counters for the concurrent variants: retries,
    helping and backoff, the progress-behaviour numbers that Tables I–IV
    style fullness reports say nothing about. Counters are mutable and
    maintained racily on real domains (diagnostics, not
    synchronization); under the simulator they are exact and
    deterministic. The chaos harness ([repro chaos]) prints them
    alongside the fullness tables. *)
module Ops = struct
  type t = {
    (* lint: allow — diagnostic counters are racy by contract (see the
       module doc): bumps tolerate lost updates and false sharing, and
       padding eleven diagnostic words would bloat every mound; the
       hot-path data planes (Tree's rows) carry the pad blocks *)
    mutable insert_retries : int;
        (** failed candidate validations / CAS / DCSS during insert *)
    mutable insert_backoffs : int;  (** backoff pauses taken by insert *)
    mutable root_fallbacks : int;
        (** inserts that abandoned randomized probing for the
            deterministic root-chain escape hatch *)
    mutable extract_retries : int;  (** failed extraction CAS attempts *)
    mutable helps : int;
        (** operations that completed another thread's work (moundify on
            a node someone else dirtied) *)
    mutable lock_spins : int;
        (** failed lock acquisitions (locking variant only) *)
    mutable livelock_near_misses : int;
        (** retry/spin loops that ran unusually long before succeeding —
            the dynamic shadow of the liveness checker's cycle detector:
            sustained non-progress that eventually resolved *)
    mutable deadline_timeouts : int;
        (** [_until] operations that observed their deadline expire *)
    mutable rejected : int;
        (** operations refused by an admission policy or try-lock miss *)
    mutable shed : int;
        (** elements evicted by the bounded front-end's shedding policy *)
    mutable lock_recoveries : int;
        (** expired-lease locks revoked from a presumed-dead holder
            (locking variant only) *)
  }

  let create () =
    {
      insert_retries = 0;
      insert_backoffs = 0;
      root_fallbacks = 0;
      extract_retries = 0;
      helps = 0;
      lock_spins = 0;
      livelock_near_misses = 0;
      deadline_timeouts = 0;
      rejected = 0;
      shed = 0;
      lock_recoveries = 0;
    }

  let reset c =
    c.insert_retries <- 0;
    c.insert_backoffs <- 0;
    c.root_fallbacks <- 0;
    c.extract_retries <- 0;
    c.helps <- 0;
    c.lock_spins <- 0;
    c.livelock_near_misses <- 0;
    c.deadline_timeouts <- 0;
    c.rejected <- 0;
    c.shed <- 0;
    c.lock_recoveries <- 0

  let pp ppf c =
    Format.fprintf ppf
      "insert retries %d (backoffs %d, root fallbacks %d), extract \
       retries %d, helps %d, lock spins %d, livelock near misses %d, \
       timeouts %d, rejected %d, shed %d, lock recoveries %d"
      c.insert_retries c.insert_backoffs c.root_fallbacks c.extract_retries
      c.helps c.lock_spins c.livelock_near_misses c.deadline_timeouts
      c.rejected c.shed c.lock_recoveries
end

type level = {
  level : int;
  capacity : int;  (** 2^level nodes *)
  nonempty : int;  (** nodes with a non-empty list *)
  elements : int;  (** total elements stored on the level *)
  value_sum : float;  (** sum of all stored values (via [to_float]) *)
  longest_list : int;
}

type t = { levels : level array; depth : int }

(** [compute ~iter ~to_float ()] walks the structure once.
    [iter f] must call [f index list] for every allocated node. *)
let compute ~iter ~to_float () =
  let acc : (int, level) Hashtbl.t = Hashtbl.create 32 in
  let max_level = ref 0 in
  iter (fun i list ->
      let l = Tree.level_of i in
      if l > !max_level then max_level := l;
      let cur =
        match Hashtbl.find_opt acc l with
        | Some c -> c
        | None ->
            {
              level = l;
              capacity = 1 lsl l;
              nonempty = 0;
              elements = 0;
              value_sum = 0.;
              longest_list = 0;
            }
      in
      let len = List.length list in
      let sum = List.fold_left (fun s v -> s +. to_float v) 0. list in
      Hashtbl.replace acc l
        {
          cur with
          nonempty = (cur.nonempty + if len > 0 then 1 else 0);
          elements = cur.elements + len;
          value_sum = cur.value_sum +. sum;
          longest_list = max cur.longest_list len;
        });
  let depth = !max_level + 1 in
  let levels =
    Array.init depth (fun l ->
        match Hashtbl.find_opt acc l with
        | Some c -> c
        | None ->
            {
              level = l;
              capacity = 1 lsl l;
              nonempty = 0;
              elements = 0;
              value_sum = 0.;
              longest_list = 0;
            })
  in
  { levels; depth }

let fullness lv = 100. *. float_of_int lv.nonempty /. float_of_int lv.capacity

let avg_list_len lv =
  if lv.nonempty = 0 then 0.
  else float_of_int lv.elements /. float_of_int lv.capacity

let avg_value lv =
  if lv.elements = 0 then None
  else Some (lv.value_sum /. float_of_int lv.elements)

let total_elements t =
  Array.fold_left (fun s lv -> s + lv.elements) 0 t.levels

let longest_list t =
  Array.fold_left (fun m lv -> max m lv.longest_list) 0 t.levels

(** The levels that are not 100% full, as (level, fullness%) pairs — the
    format of Tables I–III. Trailing all-empty levels are included only if
    allocated and reached. *)
let incomplete_levels t =
  Array.to_list t.levels
  |> List.filter_map (fun lv ->
         if lv.nonempty < lv.capacity then Some (lv.level, fullness lv)
         else None)

(** Render [incomplete_levels] like the paper: "99.96% (17), 97.75% (18)".
    Levels with zero occupancy are dropped. *)
let pp_incomplete ppf t =
  let items =
    incomplete_levels t |> List.filter (fun (_, f) -> f > 0.)
  in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
    (fun ppf (l, f) -> Format.fprintf ppf "%.2f%% (%d)" f l)
    ppf items
