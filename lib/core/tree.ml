(** Growable array-based complete binary tree shared by all mound
    variants.

    Mirrors the paper's implementation choice (§VI-A): instead of one flat
    array, the tree is a fixed table of per-level rows, where row [l]
    holds the 2^l nodes of level [l] and is allocated only when the mound
    first reaches that depth. Indices are 1-based as in the paper: node
    [i] has parent [i/2] and children [2i], [2i+1]; its level is
    ⌊log₂ i⌋. Rows and the depth counter are atomics so the tree can grow
    under concurrency: a row is published before the depth CAS that makes
    it reachable.

    The leaf-probing / binary-search logic of [findInsertPoint] (paper
    Listing 2, L16–L21) lives here too, parameterized by how a node's
    value is read, because it is identical across the lock-free, locking
    and sequential variants — it performs only reads plus the
    depth-expansion CAS. *)

(** ⌊log₂ i⌋ in constant time by binary decomposition of the shift
    distance (6 branches on 63-bit ints, vs. one branch per bit for the
    naive shift loop). Requires [i >= 1]; shared by the functor below
    and by {!Stats}. *)
let level_of i =
  let l = ref 0 and v = ref i in
  if !v lsr 32 <> 0 then begin
    l := !l + 32;
    v := !v lsr 32
  end;
  if !v lsr 16 <> 0 then begin
    l := !l + 16;
    v := !v lsr 16
  end;
  if !v lsr 8 <> 0 then begin
    l := !l + 8;
    v := !v lsr 8
  end;
  if !v lsr 4 <> 0 then begin
    l := !l + 4;
    v := !v lsr 4
  end;
  if !v lsr 2 <> 0 then begin
    l := !l + 2;
    v := !v lsr 2
  end;
  if !v lsr 1 <> 0 then incr l;
  !l

module Make (R : Runtime.S) = struct
  (* 2^30 nodes at the deepest level is already beyond feasible memory;
     the cap exists to bound the rows table, not as a realistic limit. *)
  let max_levels = 30

  let level_of = level_of

  (* Every traversal starts at the root, so the slots of the first few
     levels are the hottest words in the structure. Their rows are
     pre-published by [create] (7 slots — negligible memory) with live
     pad blocks interleaved between consecutive slot allocations, so
     sibling atomics do not start out on the same cache line. Best
     effort under a moving collector, but the pads are reachable from
     the tree record, which keeps the spacing from collapsing at the
     first minor collection. *)
  let hot_levels = 3

  (* 64-byte line on 64-bit, minus the block header word *)
  let pad_words = 7

  type 'slot t = {
    rows : 'slot array option R.Atomic.t array;
    depth : int R.Atomic.t;
    make_slot : unit -> 'slot;
    threshold : int;
    rand : int -> int;  (* thread-safe source of random leaf offsets *)
    row_allocs : int R.Atomic.t;
        (* full rows allocated by [expand]; exceeds the number of
           published rows only when racing expanders both allocate *)
    pads : int array list;  (* keeps the hot-level padding live *)
  }

  let create ?(threshold = Intf.default_threshold) ?(init_depth = 1)
      ?(rand = R.rand_int) make_slot =
    if init_depth < 1 || init_depth > max_levels then
      invalid_arg "Mound.Tree.create: bad initial depth";
    if threshold < 1 then invalid_arg "Mound.Tree.create: bad threshold";
    let pads = ref [] in
    let make_padded () =
      let s = make_slot () in
      pads := Array.make pad_words 0 :: !pads;
      s
    in
    let prealloc = max init_depth hot_levels in
    let rows =
      Array.init max_levels (fun l ->
          if l < prealloc then
            R.Atomic.make
              (Some
                 (Array.init (1 lsl l) (fun _ ->
                      if l < hot_levels then make_padded () else make_slot ())))
          else R.Atomic.make None)
    in
    {
      rows;
      depth = R.Atomic.make init_depth;
      make_slot;
      threshold;
      rand;
      row_allocs = R.Atomic.make 0;
      pads = !pads;
    }

  let depth t = R.Atomic.get t.depth

  (** Full-row allocations performed by {!expand} since creation (the
      pre-published hot rows are not counted). With the allocation
      hoisted behind the publish loop, a single-threaded expansion —
      even under spurious weak-CAS failures — allocates each row exactly
      once; concurrent expanders can still each allocate, but only one
      allocation per level is ever published. *)
  let row_allocations t = R.Atomic.get t.row_allocs

  (** [get_at t ~level i] is the slot of node [i] (1-based) when
      [level_of i] is already known from the traversal, skipping the
      recomputation. The row must have been published, which holds for
      any index derived from a read of [depth]. *)
  let get_at t ~level i =
    match R.Atomic.get t.rows.(level) with
    | Some row -> row.(i - (1 lsl level))
    | None -> invalid_arg "Mound.Tree.get: unallocated level"

  let get t i = get_at t ~level:(level_of i) i

  (* Publish row [d] (the new leaf level) if needed, then try to advance
     the depth. The row is allocated at most once per call, before the
     publish loop: a spurious weak-CAS failure (the chaos runtime)
     retries the publish with the same row instead of re-allocating, and
     a caller that observes another thread's row allocates nothing. The
     publish loops until the row is observably [Some] — advancing
     [depth] past an unpublished row would make [get] fail. The depth
     CAS needs no such loop: callers re-read [depth] and call [expand]
     again if it has not moved. *)
  (* lint: allow — the inner publish loop retries only on spurious
     weak-CAS failure and exits as soon as any thread's row is visible *)
  let expand t d =
    if d >= max_levels then failwith "Mound.Tree.expand: tree is full";
    (match R.Atomic.get t.rows.(d) with
    | Some _ -> ()
    | None ->
        let row = Some (Array.init (1 lsl d) (fun _ -> t.make_slot ())) in
        ignore (R.Atomic.fetch_and_add t.row_allocs 1);
        let rec publish () =
          match R.Atomic.get t.rows.(d) with
          | Some _ -> ()
          | None ->
              (* lint: allow — idempotent publish; the loop re-reads the row *)
              ignore (R.Atomic.compare_and_set t.rows.(d) None row);
              publish ()
        in
        publish ());
    (* lint: allow — depth advance is optional; callers re-read and retry *)
    ignore (R.Atomic.compare_and_set t.depth d (d + 1))

  (* Probe up to [k] random leaves of a [first_leaf]-based leaf row for
     one satisfying [ge]; returns 0 when none does. Explicit-parameter
     recursion — unlike an inner closure, no environment is allocated
     per call on the insert hot path. *)
  let rec probe_leaves ~ge rand first_leaf k =
    if k = 0 then 0
    else
      let leaf = first_leaf + rand first_leaf in
      if ge leaf then leaf else probe_leaves ~ge rand first_leaf (k - 1)

  (* Binary search along the ancestor chain of [leaf] (depth [d] levels)
     for the shallowest node whose value dominates [v] — O(log log N)
     probes since the chain has length ⌊log₂ N⌋. Precondition: [ge] holds
     at the leaf itself. Under concurrency the chain may momentarily not
     be sorted; the caller re-validates before writing. The final [lo]
     is the level of the returned node, so callers get it for free. *)
  let binary_search_lv ~ge leaf d =
    let lo = ref 0 and hi = ref (d - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ge (leaf lsr (d - 1 - mid)) then hi := mid else lo := mid + 1
    done;
    (leaf lsr (d - 1 - !lo), !lo)

  let binary_search ~ge leaf d = fst (binary_search_lv ~ge leaf d)

  (** [find_insert_point_lv t ~ge] probes up to [t.threshold] random
      leaves for one whose value dominates the element being inserted
      ([ge i] must be [val(node i) >= v]), then binary-searches its
      ancestor chain for the candidate insertion point, returned with
      its level. If every probe fails, the tree is one level too shallow
      for this element and is expanded. *)
  let rec find_insert_point_lv t ~ge =
    let d = R.Atomic.get t.depth in
    let first_leaf = 1 lsl (d - 1) in
    match probe_leaves ~ge t.rand first_leaf t.threshold with
    | 0 ->
        expand t d;
        find_insert_point_lv t ~ge
    | leaf -> binary_search_lv ~ge leaf d

  let find_insert_point t ~ge = fst (find_insert_point_lv t ~ge)

  (** [is_leaf t i ~depth:d] — is [i] on the deepest level of a tree of
      depth [d]? *)
  let is_leaf i ~depth:d = i land (1 lsl (d - 1)) <> 0 && i < 1 lsl d

  (** Quiescent fold over all reachable slots in index order, with the
      node index. Not linearizable; meant for statistics and tests. *)
  let fold t f acc =
    let d = R.Atomic.get t.depth in
    let acc = ref acc in
    for l = 0 to d - 1 do
      match R.Atomic.get t.rows.(l) with
      | None -> ()
      | Some row ->
          Array.iteri (fun j slot -> acc := f !acc ((1 lsl l) + j) slot) row
    done;
    !acc
end
