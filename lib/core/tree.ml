(** Growable array-based complete binary tree shared by all mound
    variants.

    Mirrors the paper's implementation choice (§VI-A): instead of one flat
    array, the tree is a fixed table of per-level rows, where row [l]
    holds the 2^l nodes of level [l] and is allocated only when the mound
    first reaches that depth. Indices are 1-based as in the paper: node
    [i] has parent [i/2] and children [2i], [2i+1]; its level is
    ⌊log₂ i⌋. Rows and the depth counter are atomics so the tree can grow
    under concurrency: a row is published before the depth CAS that makes
    it reachable.

    The leaf-probing / binary-search logic of [findInsertPoint] (paper
    Listing 2, L16–L21) lives here too, parameterized by how a node's
    value is read, because it is identical across the lock-free, locking
    and sequential variants — it performs only reads plus the
    depth-expansion CAS. *)

module Make (R : Runtime.S) = struct
  (* 2^30 nodes at the deepest level is already beyond feasible memory;
     the cap exists to bound the rows table, not as a realistic limit. *)
  let max_levels = 30

  type 'slot t = {
    rows : 'slot array option R.Atomic.t array;
    depth : int R.Atomic.t;
    make_slot : unit -> 'slot;
    threshold : int;
    rand : int -> int;  (* thread-safe source of random leaf offsets *)
  }

  let level_of i =
    let rec go l v = if v <= 1 then l else go (l + 1) (v lsr 1) in
    go 0 i

  let create ?(threshold = Intf.default_threshold) ?(init_depth = 1)
      ?(rand = R.rand_int) make_slot =
    if init_depth < 1 || init_depth > max_levels then
      invalid_arg "Mound.Tree.create: bad initial depth";
    if threshold < 1 then invalid_arg "Mound.Tree.create: bad threshold";
    let rows =
      Array.init max_levels (fun l ->
          if l < init_depth then
            R.Atomic.make (Some (Array.init (1 lsl l) (fun _ -> make_slot ())))
          else R.Atomic.make None)
    in
    { rows; depth = R.Atomic.make init_depth; make_slot; threshold; rand }

  let depth t = R.Atomic.get t.depth

  (** [get t i] is the slot of node [i] (1-based). The row must have been
      published, which holds for any index derived from a read of
      [depth]. *)
  let get t i =
    let l = level_of i in
    match R.Atomic.get t.rows.(l) with
    | Some row -> row.(i - (1 lsl l))
    | None -> invalid_arg "Mound.Tree.get: unallocated level"

  (* Publish row [d] (the new leaf level) if needed, then try to advance
     the depth. The publish loops until the row is observably [Some]:
     under weak-CAS semantics (the chaos runtime's spurious failures) a
     failed CAS does not imply another thread published the row, and
     advancing [depth] past an unpublished row would make [get] fail.
     The depth CAS needs no such loop — callers re-read [depth] and call
     [expand] again if it has not moved. *)
  (* lint: allow — publish retries only on spurious weak-CAS failure
     and exits as soon as any thread's row is visible; no backoff *)
  let expand t d =
    if d >= max_levels then failwith "Mound.Tree.expand: tree is full";
    let row = lazy (Array.init (1 lsl d) (fun _ -> t.make_slot ())) in
    let rec publish () =
      match R.Atomic.get t.rows.(d) with
      | Some _ -> ()
      | None ->
          (* lint: allow — idempotent publish; the loop re-reads the row *)
          ignore (R.Atomic.compare_and_set t.rows.(d) None (Some (Lazy.force row)));
          publish ()
    in
    publish ();
    (* lint: allow — depth advance is optional; callers re-read and retry *)
    ignore (R.Atomic.compare_and_set t.depth d (d + 1))

  (* Binary search along the ancestor chain of [leaf] (depth [d] levels)
     for the shallowest node whose value dominates [v] — O(log log N)
     probes since the chain has length ⌊log₂ N⌋. Precondition: [ge] holds
     at the leaf itself. Under concurrency the chain may momentarily not
     be sorted; the caller re-validates before writing. *)
  let binary_search ~ge leaf d =
    let lo = ref 0 and hi = ref (d - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ge (leaf lsr (d - 1 - mid)) then hi := mid else lo := mid + 1
    done;
    leaf lsr (d - 1 - !lo)

  (** [find_insert_point t ~ge] probes up to [t.threshold] random leaves
      for one whose value dominates the element being inserted ([ge i]
      must be [val(node i) >= v]), then binary-searches its ancestor chain
      for the candidate insertion point. If every probe fails, the tree is
      one level too shallow for this element and is expanded. *)
  let rec find_insert_point t ~ge =
    let d = R.Atomic.get t.depth in
    let first_leaf = 1 lsl (d - 1) in
    let rec attempts k =
      if k = 0 then None
      else
        let leaf = first_leaf + t.rand first_leaf in
        if ge leaf then Some leaf else attempts (k - 1)
    in
    match attempts t.threshold with
    | Some leaf -> binary_search ~ge leaf d
    | None ->
        expand t d;
        find_insert_point t ~ge

  (** [is_leaf t i ~depth:d] — is [i] on the deepest level of a tree of
      depth [d]? *)
  let is_leaf i ~depth:d = i land (1 lsl (d - 1)) <> 0 && i < 1 lsl d

  (** Quiescent fold over all allocated slots in index order, with the
      node index. Not linearizable; meant for statistics and tests. *)
  let fold t f acc =
    let d = R.Atomic.get t.depth in
    let acc = ref acc in
    for l = 0 to d - 1 do
      match R.Atomic.get t.rows.(l) with
      | None -> ()
      | Some row ->
          Array.iteri (fun j slot -> acc := f !acc ((1 lsl l) + j) slot) row
    done;
    !acc
end
