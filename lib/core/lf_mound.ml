(** Lock-free mound (paper §III, Listing 2).

    Each tree node is an {!Mcas} location holding an immutable record
    [{list; dirty; seq}] — the paper's ⟨list, dirty, c⟩ triple. A single
    [Mcas.get] is the paper's atomic READ; publishing a fresh record per
    update gives the counter-stamped-CAS semantics of the paper (we keep
    the [seq] counter for fidelity and diagnostics, but in OCaml physical
    equality on the fresh record already rules out ABA).

    - [insert] finds a candidate with randomized leaf probing + binary
      search (O(log log N) reads), re-validates the candidate and its
      parent, and linearizes with a single CAS (at the root) or DCSS
      (elsewhere) — L4–L15.
    - [extract_min] linearizes with a CAS that removes the root list's
      head and sets the root dirty, then restores the mound property with
      [moundify] — L22–L32.
    - [moundify] fixes one parent/children triangle at a time with a DCAS
      list swap, helping any dirty child first; concurrent operations that
      meet the same dirty node help each other — L33–L58.

    Progress: every loop iteration that fails does so because some CAS,
    DCSS or DCAS by another thread succeeded, and the {!Mcas} operations
    are themselves lock-free, so the structure is lock-free. *)

module Make (R : Runtime.S) (Ord : Intf.ORDERED) = struct
  module M = Mcas.Make (R.Atomic)
  module T = Tree.Make (R)
  module B = Runtime.Backoff.Make (R)

  type elt = Ord.t

  type mnode = { list : elt list; dirty : bool; seq : int }

  type t = { tree : mnode M.loc T.t; ops : Stats.Ops.t }

  let vcompare = Intf.Value.compare Ord.compare

  let node_value n = match n.list with [] -> None | x :: _ -> Some x

  let create ?threshold ?init_depth () =
    let make_slot () = M.make { list = []; dirty = false; seq = 0 } in
    { tree = T.create ?threshold ?init_depth make_slot; ops = Stats.Ops.create () }

  (** Retry / helping / backoff counters since creation. Exact and
      deterministic under the simulator; racy (diagnostic) on real
      domains. *)
  let ops t = t.ops

  let depth t = T.depth t.tree

  let read t i = M.get (T.get t.tree i)

  (* ----- moundify: restore the mound property at a dirty node ----- *)

  (* [level] must be ⌊log₂ n⌋: the traversal always knows it (the root
     is level 0, children are one deeper), so node slots are fetched
     with [get_at] instead of recomputing the level on every access. *)
  let rec moundify t n ~level =
    let slot = T.get_at t.tree ~level n in
    let node = M.get slot in
    let d = T.depth t.tree in
    if not node.dirty then () (* helped by someone else — L36 *)
    else if T.is_leaf n ~depth:d then begin
      (* L37–L39: a leaf trivially satisfies the property. *)
      if
        M.cas slot node { list = node.list; dirty = false; seq = node.seq + 1 }
      then ()
      else moundify t n ~level
    end
    else begin
      let lslot = T.get_at t.tree ~level:(level + 1) (2 * n)
      and rslot = T.get_at t.tree ~level:(level + 1) ((2 * n) + 1) in
      let left = M.get lslot in
      let right = M.get rslot in
      if left.dirty then begin
        (* dirtied by another operation: helping (L41–L44) *)
        t.ops.helps <- t.ops.helps + 1;
        moundify t (2 * n) ~level:(level + 1);
        moundify t n ~level
      end
      else if right.dirty then begin
        t.ops.helps <- t.ops.helps + 1;
        moundify t ((2 * n) + 1) ~level:(level + 1);
        moundify t n ~level
      end
      else begin
        let vn = node_value node
        and vl = node_value left
        and vr = node_value right in
        if vcompare vl vr <= 0 && vcompare vl vn < 0 then begin
          (* Swap lists with the left child (L48–L51). The child becomes
             dirty and is cleaned recursively. *)
          if
            M.dcas slot node
              { list = left.list; dirty = false; seq = node.seq + 1 }
              lslot left
              { list = node.list; dirty = true; seq = left.seq + 1 }
          then moundify t (2 * n) ~level:(level + 1)
          else moundify t n ~level
        end
        else if vcompare vr vl < 0 && vcompare vr vn < 0 then begin
          if
            M.dcas slot node
              { list = right.list; dirty = false; seq = node.seq + 1 }
              rslot right
              { list = node.list; dirty = true; seq = right.seq + 1 }
          then moundify t ((2 * n) + 1) ~level:(level + 1)
          else moundify t n ~level
        end
        else begin
          (* L56–L58: the node already dominates both children. *)
          if
            M.cas slot node
              { list = node.list; dirty = false; seq = node.seq + 1 }
          then ()
          else moundify t n ~level
        end
      end
    end

  (* ----- spurious-failure-tolerant publication ----- *)

  (* Under the chaos runtime a weak CAS can fail with the location
     observably unchanged. Re-attempting with the same fresh record
     costs nothing; re-probing the tree and re-allocating the record
     would. Both loops exit at the first real change (physical
     inequality), so on the default runtimes they never iterate. *)

  (* lint: allow — retries only while the location is observably
     unchanged, i.e. on spurious weak-CAS failure; a real change exits *)
  let rec cas_reusing slot cur fresh =
    M.cas slot cur fresh
    || (M.get slot == cur && cas_reusing slot cur fresh)

  (* lint: allow — same spurious-failure-only retry as cas_reusing *)
  let rec dcss_reusing pslot parent cslot cur fresh =
    M.dcss pslot parent cslot cur fresh
    || M.get cslot == cur
       && M.get pslot == parent
       && dcss_reusing pslot parent cslot cur fresh

  (* ----- deadlines ----- *)

  (* Absolute [R.monotonic_ns] stamp; [Intf.no_deadline] short-circuits
     so the unbounded paths never read the clock. *)
  let expired ~deadline =
    deadline <> Intf.no_deadline && R.monotonic_ns () > deadline

  let bump_timeout t = t.ops.deadline_timeouts <- t.ops.deadline_timeouts + 1

  (* ----- insert ----- *)

  (* After this many failed candidate selections, stop re-rolling random
     leaves and take the deterministic escape hatch below. *)
  let max_insert_rounds = 8

  (* The paper's escape hatch for repeated selection failures: abandon
     randomized probing and binary-search the leftmost root-to-leaf
     chain (falling back toward the root — the root itself is the
     candidate when [v] dominates the whole chain). If even the leftmost
     leaf does not dominate [v], the tree grows a level; a fresh leaf is
     empty (⊤), so this loop always produces a candidate without further
     randomization. *)
  let rec fallback_point_lv t ~ge =
    let d = T.depth t.tree in
    let leaf = 1 lsl (d - 1) in
    if ge leaf then T.binary_search_lv ~ge leaf d
    else begin
      T.expand t.tree d;
      fallback_point_lv t ~ge
    end

  (* [ge] is built once per [insert] call and threaded through the retry
     loop — the candidate-validation predicate does not change across
     attempts, so there is no reason to allocate a fresh closure on
     every retry. *)
  let rec insert_attempt t v ~ge ~deadline round =
    let c, clvl =
      if round < max_insert_rounds then T.find_insert_point_lv t.tree ~ge
      else begin
        if round = max_insert_rounds then begin
          t.ops.root_fallbacks <- t.ops.root_fallbacks + 1;
          (* a full round budget burned without landing the insert *)
          t.ops.livelock_near_misses <- t.ops.livelock_near_misses + 1
        end;
        fallback_point_lv t ~ge
      end
    in
    let cslot = T.get_at t.tree ~level:clvl c in
    let cur = M.get cslot in
    (* Double-check the candidate (L7): probing was unsynchronized. *)
    if Intf.Value.ge_elt Ord.compare (node_value cur) v then begin
      let fresh = { list = v :: cur.list; dirty = cur.dirty; seq = cur.seq + 1 } in
      if c = 1 then begin
        (* Root insert linearizes with a plain CAS (L9–L10). *)
        if cas_reusing cslot cur fresh then Intf.Ok ()
        else insert_retry t v ~ge ~deadline round
      end
      else begin
        let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
        let parent = M.get pslot in
        if Intf.Value.le_elt Ord.compare (node_value parent) v then begin
          (* DCSS: write the child only if the parent is unchanged
             (L12–L14). *)
          if dcss_reusing pslot parent cslot cur fresh then Intf.Ok ()
          else insert_retry t v ~ge ~deadline round
        end
        else insert_retry t v ~ge ~deadline round
      end
    end
    else insert_retry t v ~ge ~deadline round

  (* A first failure retries immediately (benign race, exactly the
     paper's loop); sustained failure backs off exponentially so
     contending inserters spread out instead of re-colliding. A deadline
     is checked here, between attempts, so a [Timeout] can only be
     returned with the element unpublished. *)
  and insert_retry t v ~ge ~deadline round =
    t.ops.insert_retries <- t.ops.insert_retries + 1;
    if expired ~deadline then begin
      bump_timeout t;
      Intf.Timeout
    end
    else begin
      if round > 0 then begin
        t.ops.insert_backoffs <- t.ops.insert_backoffs + 1;
        B.exponential ~cap_bits:6 (round - 1)
      end;
      insert_attempt t v ~ge ~deadline (round + 1)
    end

  let insert t v =
    let ge i = Intf.Value.ge_elt Ord.compare (node_value (read t i)) v in
    match insert_attempt t v ~ge ~deadline:Intf.no_deadline 0 with
    | Intf.Ok () -> ()
    | Timeout | Rejected -> assert false (* no deadline, no admission *)

  let insert_until t ~deadline v =
    let ge i = Intf.Value.ge_elt Ord.compare (node_value (read t i)) v in
    insert_attempt t v ~ge ~deadline 0

  (** One bounded publication pass: probe, validate, and attempt the
      linearizing CAS/DCSS once (re-issuing only while the location is
      observably unchanged, i.e. on spurious weak-CAS failure). Any real
      interference reports [false] instead of retrying. *)
  let try_insert t v =
    let ge i = Intf.Value.ge_elt Ord.compare (node_value (read t i)) v in
    let c, clvl = T.find_insert_point_lv t.tree ~ge in
    let cslot = T.get_at t.tree ~level:clvl c in
    let cur = M.get cslot in
    let ok =
      Intf.Value.ge_elt Ord.compare (node_value cur) v
      &&
      let fresh =
        { list = v :: cur.list; dirty = cur.dirty; seq = cur.seq + 1 }
      in
      if c = 1 then cas_reusing cslot cur fresh
      else
        let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
        let parent = M.get pslot in
        Intf.Value.le_elt Ord.compare (node_value parent) v
        && dcss_reusing pslot parent cslot cur fresh
    in
    if not ok then t.ops.rejected <- t.ops.rejected + 1;
    ok

  (** Alternative insert for the ablation study: the paper's §III-D opens
      with "the simplest technique for making insert lock-free is to use a
      k-compare-single-swap operation (k-CSS), in which the entire set of
      nodes that are read in the binary search are kept constant during
      the insertion" — before showing that validating only the
      parent/child pair (the DCSS of {!insert}) suffices. This version
      implements the naive k-CSS scheme with a CASN whose upper legs
      rewrite each ancestor to itself, so benches can quantify what the
      DCSS insight saves. *)
  (* lint: allow — deliberately naive ablation baseline: the paper's
     strawman k-CSS insert retries without backoff by construction *)
  let rec insert_kcss t v =
    let ge i = Intf.Value.ge_elt Ord.compare (node_value (read t i)) v in
    let c = T.find_insert_point t.tree ~ge in
    (* Snapshot the whole ancestor chain root..c. *)
    let rec chain i acc = if i = 0 then acc else chain (i / 2) (i :: acc) in
    let path = chain c [] in
    let snap = List.map (fun i -> (i, M.get (T.get t.tree i))) path in
    let valid =
      List.for_all
        (fun (i, node) ->
          if i = c then Intf.Value.ge_elt Ord.compare (node_value node) v
          else Intf.Value.le_elt Ord.compare (node_value node) v)
        snap
    in
    if not valid then insert_kcss t v
    else
      let ops =
        List.map
          (fun (i, node) ->
            let slot = T.get t.tree i in
            if i = c then
              (slot, node,
               { list = v :: node.list; dirty = node.dirty; seq = node.seq + 1 })
            else (slot, node, node))
          snap
        |> Array.of_list
      in
      if not (M.casn ops) then insert_kcss t v

  (* Longest prefix of the sorted [batch] whose elements fit under
     [limit] (the candidate node's value; [None] is ⊤, keeping the whole
     batch), paired with the remainder. Shared shape with the other two
     variants. *)
  let rec split_prefix limit acc = function
    | x :: rest when Intf.Value.ge_elt Ord.compare limit x ->
        split_prefix limit (x :: acc) rest
    | rest -> (List.rev acc, rest)

  (* Attempts per run before conceding the head to element-wise
     [insert] (which carries the backoff) and resuming batching. *)
  let batch_tries = 4

  (** Insert a {e sorted} batch — the dual of [extract_many], for
      returning unconsumed work to the pool. The batch is walked front
      to back: each round finds the insert point for the current head
      once, then splices the longest prefix that fits that node
      ([val(parent c) <= hd] and every spliced element [<= val(c)]) in a
      single CAS/DCSS — probing and binary search are amortized over the
      whole run instead of paid per element. Under contention the head
      falls back to the element-wise [insert] and batching resumes with
      the remainder. *)
  let insert_many t batch =
    let rec go batch tries =
      match batch with
      | [] -> ()
      | hd :: rest_after_hd ->
          if tries = 0 then begin
            insert t hd;
            go rest_after_hd batch_tries
          end
          else begin
            let ge i =
              Intf.Value.ge_elt Ord.compare (node_value (read t i)) hd
            in
            let c, clvl = T.find_insert_point_lv t.tree ~ge in
            let cslot = T.get_at t.tree ~level:clvl c in
            let cur = M.get cslot in
            let limit = node_value cur in
            (* Double-check the candidate: probing was unsynchronized. *)
            if Intf.Value.ge_elt Ord.compare limit hd then begin
              let prefix, rest = split_prefix limit [] batch in
              let fresh =
                {
                  list = prefix @ cur.list;
                  dirty = cur.dirty;
                  seq = cur.seq + 1;
                }
              in
              if c = 1 then begin
                if cas_reusing cslot cur fresh then go rest batch_tries
                else go batch (tries - 1)
              end
              else begin
                let pslot = T.get_at t.tree ~level:(clvl - 1) (c / 2) in
                let parent = M.get pslot in
                if Intf.Value.le_elt Ord.compare (node_value parent) hd
                then begin
                  if dcss_reusing pslot parent cslot cur fresh then
                    go rest batch_tries
                  else go batch (tries - 1)
                end
                else go batch (tries - 1)
              end
            end
            else go batch (tries - 1)
          end
    in
    go batch batch_tries

  (* ----- extraction ----- *)

  (* Consecutive non-progress iterations of one extraction before the
     attempt is counted as a livelock near miss: sustained spinning that
     eventually resolved, the dynamic shadow of the liveness checker. *)
  let near_miss_spins = 8

  let bump_near_miss t spin =
    if spin = near_miss_spins then
      t.ops.livelock_near_misses <- t.ops.livelock_near_misses + 1

  let rec extract_min_spin t ~deadline spin =
    bump_near_miss t spin;
    if spin > 0 && expired ~deadline then begin
      (* checked only on retry iterations: the first attempt always
         runs, so a generous deadline never turns into a spurious
         [Timeout], and nothing has been removed when we give up *)
      bump_timeout t;
      Intf.Timeout
    end
    else
      let slot = T.get_at t.tree ~level:0 1 in
      let root = M.get slot in
      if root.dirty then begin
        (* An extraction is mid-flight; help restore the property
           (L24–L26). *)
        t.ops.helps <- t.ops.helps + 1;
        moundify t 1 ~level:0;
        extract_min_spin t ~deadline (spin + 1)
      end
      else
        match root.list with
        | [] -> Intf.Ok None (* L27: linearizes at the root READ *)
        | hd :: tl ->
            if
              cas_reusing slot root
                { list = tl; dirty = true; seq = root.seq + 1 }
            then begin
              moundify t 1 ~level:0;
              Intf.Ok (Some hd)
            end
            else begin
              t.ops.extract_retries <- t.ops.extract_retries + 1;
              extract_min_spin t ~deadline (spin + 1)
            end

  let extract_min t =
    match extract_min_spin t ~deadline:Intf.no_deadline 0 with
    | Intf.Ok r -> r
    | Timeout | Rejected -> assert false (* no deadline, no admission *)

  let extract_min_until t ~deadline = extract_min_spin t ~deadline 0

  (** Take the root's whole sorted list in one linearizable step (§V):
      the same protocol as [extract_min], with the list emptied rather
      than beheaded. *)
  let rec extract_many_spin t spin =
    bump_near_miss t spin;
    let slot = T.get_at t.tree ~level:0 1 in
    let root = M.get slot in
    if root.dirty then begin
      t.ops.helps <- t.ops.helps + 1;
      moundify t 1 ~level:0;
      extract_many_spin t (spin + 1)
    end
    else
      match root.list with
      | [] -> []
      | taken ->
          if
            cas_reusing slot root
              { list = []; dirty = true; seq = root.seq + 1 }
          then begin
            moundify t 1 ~level:0;
            taken
          end
          else begin
            t.ops.extract_retries <- t.ops.extract_retries + 1;
            extract_many_spin t (spin + 1)
          end

  let extract_many t = extract_many_spin t 0

  (** Probabilistic extract-min (§V): any non-dirty node is the root of a
      sub-mound, so extracting from a random node within the first
      [max_level+1] levels returns an element that is a minimum of that
      sub-mound — probably close to the global minimum, at much lower
      contention. Falls back to the exact operation when the probed node
      is empty or stays contended. *)
  let extract_approx ?(max_level = 2) t =
    let d = T.depth t.tree in
    let lvl = min max_level (d - 1) in
    let span = (1 lsl (lvl + 1)) - 1 in
    let n = 1 + R.rand_int span in
    if n = 1 then extract_min t
    else
      let nlvl = T.level_of n in
      let slot = T.get_at t.tree ~level:nlvl n in
      let rec attempt tries =
        if tries = 0 then extract_min t
        else
          let node = M.get slot in
          if node.dirty then begin
            moundify t n ~level:nlvl;
            attempt (tries - 1)
          end
          else
            match node.list with
            | [] -> extract_min t
            | hd :: tl ->
                if
                  M.cas slot node
                    { list = tl; dirty = true; seq = node.seq + 1 }
                then begin
                  moundify t n ~level:nlvl;
                  Some hd
                end
                else attempt (tries - 1)
      in
      attempt 4

  let rec peek_min t =
    let root = read t 1 in
    if root.dirty then begin
      t.ops.helps <- t.ops.helps + 1;
      moundify t 1 ~level:0;
      peek_min t
    end
    else node_value root

  let is_empty t = peek_min t = None

  (* ----- quiescent introspection (stats, tests) ----- *)

  let fold_nodes t f acc =
    T.fold t.tree (fun acc i slot -> f acc i (M.get slot).list) acc

  let size t = fold_nodes t (fun acc _ l -> acc + List.length l) 0

  let rec list_sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Ord.compare a b <= 0 && list_sorted rest

  (** Quiescent check of per-list sortedness and the (dirty-aware) mound
      property of §II: a non-dirty parent dominates its children. *)
  let check t =
    fold_nodes t
      (fun ok i l ->
        ok && list_sorted l
        &&
        if i = 1 then true
        else
          let parent = read t (i / 2) in
          parent.dirty
          || Intf.Value.le Ord.compare (node_value parent)
               (match l with [] -> None | x :: _ -> Some x))
      true
end
