(** Shared signatures and value-ordering helpers for the mound library.

    A mound node's logical value is the head of its sorted list, or +∞
    when the list is empty (the paper's ⊤). We represent that as
    ['elt option] with [None] meaning +∞, so no sentinel element is ever
    required of the user. *)

(** Totally ordered elements storable in a priority queue. *)
module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

(** Result of a deadline- or admission-aware operation. [Timeout] means
    the operation observed its deadline expire before it could complete
    and gave up without taking effect; [Rejected] means an admission
    policy (capacity watermark, try-lock miss) refused it outright.
    Either way the queue is unchanged as far as the caller's element is
    concerned. *)
type 'a outcome = Ok of 'a | Timeout | Rejected

(** Deadlines are absolute [Runtime.S.monotonic_ns] stamps; this sentinel
    means "no deadline", and retry loops short-circuit on it so the
    unbounded paths never read the clock. *)
let no_deadline = max_int

(** The operations every priority queue in this repository provides. *)
module type CORE = sig
  type elt
  type t

  val insert : t -> elt -> unit

  val extract_min : t -> elt option
  (** [extract_min t] removes and returns a minimum element, or [None] if
      the queue was empty at the linearization point. *)

  val is_empty : t -> bool
end

(** The full interface shared by the three mound variants (sequential,
    lock-free, locking). [Mound.Seq], [Mound.Lf] and [Mound.Lock] are
    checked against it in [mound.ml], so the variants cannot drift
    apart. Creation is variant-specific (seeds, thresholds) and therefore
    not part of this signature. *)
module type MOUND = sig
  type elt
  type t

  val insert : t -> elt -> unit
  (** [insert t v] adds [v]. O(log log N) expected: probe random leaves,
      binary-search one ancestor chain, one atomic write. *)

  val extract_min : t -> elt option
  (** [extract_min t] removes and returns a minimum element, or [None] on
      an empty mound. O(log N): behead the root list, then restore the
      mound property downward. *)

  val peek_min : t -> elt option
  (** [peek_min t] reads the minimum without removing it. *)

  val extract_many : t -> elt list
  (** [extract_many t] atomically takes the root's whole sorted list
      (paper §V). Its head is the global minimum; later elements are small
      but not necessarily the next minima. Empty list on an empty mound. *)

  val insert_many : t -> elt list -> unit
  (** [insert_many t batch] inserts a {e sorted} batch, splicing it into
      a single node in one atomic step when the randomized probing finds
      a node that accommodates the whole batch, and falling back to
      element-wise insertion otherwise. The dual of {!extract_many};
      behaviour is unspecified if [batch] is not sorted. *)

  val try_insert : t -> elt -> bool
  (** [try_insert t v] attempts one bounded insertion pass and returns
      whether it took effect: no unbounded retrying, no blocking on locks.
      The overload front-end ([Bounded]) uses it to keep admission cheap
      when the structure is contended. *)

  val insert_until : t -> deadline:int -> elt -> unit outcome
  (** [insert_until t ~deadline v] inserts [v], giving up with [Timeout]
      once [Runtime.S.monotonic_ns] passes the absolute [deadline].
      [deadline = no_deadline] never times out. A [Timeout] guarantees [v]
      was not published. *)

  val extract_min_until : t -> deadline:int -> (elt option) outcome
  (** Deadline-checking {!extract_min}: [Ok None] is an observed empty
      mound, [Timeout] means the retry/lock loop outlived [deadline]
      without extracting (nothing was removed). *)

  val extract_approx : ?max_level:int -> t -> elt option
  (** [extract_approx t] extracts the minimum of a {e random sub-mound}
      rooted within the first [max_level+1] levels (default 2) — probably
      close to the global minimum, at much lower contention (paper §V).
      Falls back to [extract_min] when the probed node is empty. *)

  val is_empty : t -> bool

  val depth : t -> int
  (** Number of tree levels currently in use. *)

  val size : t -> int
  (** Total stored elements. O(N); meant for quiescent points. *)

  val fold_nodes : t -> ('acc -> int -> elt list -> 'acc) -> 'acc -> 'acc
  (** Quiescent fold over (node index, node list) in index order; feeds
      {!Stats.compute}. *)

  val check : t -> bool
  (** Quiescent invariant check: sorted per-node lists plus the mound
      property (and, for the locking variant, that no node is locked). *)
end

(** Comparison of node values, where [None] is +∞. *)
module Value = struct
  let compare cmp a b =
    match (a, b) with
    | None, None -> 0
    | None, Some _ -> 1
    | Some _, None -> -1
    | Some x, Some y -> cmp x y

  let le cmp a b = compare cmp a b <= 0
  let lt cmp a b = compare cmp a b < 0

  (** [ge_elt cmp node v]: does the node value dominate element [v]
      (i.e. [val(node) >= v], so [v] may be pushed onto the node)? *)
  let ge_elt cmp node v =
    match node with None -> true | Some x -> cmp x v >= 0

  (** [le_elt cmp node v]: [val(node) <= v], the parent-side insertion
      condition. An empty node (+∞) never satisfies it. *)
  let le_elt cmp node v =
    match node with None -> false | Some x -> cmp x v <= 0
end

(** Default number of random leaves probed before the tree grows a level;
    the paper's THRESHOLD, set to its value of 8 (§VI-A). *)
let default_threshold = 8
