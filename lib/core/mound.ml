(** Mounds: array-based concurrent priority queues.

    A mound (Liu & Spear, ICPP 2012) is a rooted tree of sorted lists,
    balanced by randomization, supporting O(log log N) [insert] and
    O(log N) [extract_min]. This library provides the paper's three
    variants plus its §V extensions ([extract_many], probabilistic
    [extract_approx]):

    - {!Seq}: sequential reference implementation;
    - {!Lf}: lock-free, built on software DCAS/DCSS ({!Mcas});
    - {!Lock}: fine-grained locking with hand-over-hand [moundify].

    The concurrent variants are functors over {!Runtime.S}, so they run
    both on real domains ([Runtime.Real]) and inside the virtual-time
    simulator ([Sim.Runtime]). Pre-applied integer versions over the real
    runtime are provided for the common case:

    {[
      let q = Mound.Lf_int.create () in
      Mound.Lf_int.insert q 42;
      assert (Mound.Lf_int.extract_min q = Some 42)
    ]} *)

module Intf = Intf
module Tree = Tree
module Stats = Stats

module type ORDERED = Intf.ORDERED

module Seq = Seq_mound
module Lf = Lf_mound
module Lock = Lock_mound

(** Keyed priority map (decrease-key via lazy deletion) over the
    sequential mound. *)
module Keyed = Keyed

(** Relaxed MultiQueue front-end: c·P try-locked sequential mounds with
    two-choice randomized delete-min and sticky queue selection.
    [extract_min] returns the minimum of a sampled queue — rank error is
    measured, not bounded — while emptiness stays exact. *)
module Multiqueue = Multiqueue

(** Bounded admission front-end: capacity watermark + reject / shed /
    block overload policies over any of the variants. *)
module Bounded = Bounded

module Int_ord = struct
  type t = int

  let compare = Int.compare
end

(** Sequential integer mound. *)
module Seq_int = Seq_mound.Make (Int_ord)

(** Lock-free integer mound on real domains. *)
module Lf_int = Lf_mound.Make (Runtime.Real) (Int_ord)

(** Fine-grained-locking integer mound on real domains. *)
module Lock_int = Lock_mound.Make (Runtime.Real) (Int_ord)

(** Relaxed integer MultiQueue on real domains. *)
module Multiqueue_int = Multiqueue.Make (Runtime.Real) (Int_ord)

(* Compile-time conformance: every variant implements the documented
   {!Intf.MOUND} interface, so they cannot drift apart. *)
module type MOUND = Intf.MOUND

module Check_seq : MOUND with type elt = int = Seq_int
module Check_lf : MOUND with type elt = int = Lf_int
module Check_lock : MOUND with type elt = int = Lock_int
module Check_multiqueue : MOUND with type elt = int = Multiqueue_int
