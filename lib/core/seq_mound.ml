(** Sequential mound.

    The reference implementation: same tree of sorted lists, same
    randomized leaf probing and binary-search insertion, same
    sift-down-by-list-swap extraction as the concurrent variants, but with
    plain mutable nodes and no dirty bits (the mound property is restored
    before each operation returns). It serves three roles: the oracle in
    tests, the engine for the paper's sequential structure experiments
    (Tables I–IV), and the single-thread baseline in benches. *)

module Make (Ord : Intf.ORDERED) = struct
  module T = Tree.Make (Runtime.Real)

  type elt = Ord.t

  type node = { mutable list : elt list }

  type t = { tree : node T.t; rng : Prng.t }

  let vcompare = Intf.Value.compare Ord.compare

  let node_value n = match n.list with [] -> None | x :: _ -> Some x

  let create ?threshold ?init_depth ?(seed = 1L) () =
    let rng = Prng.create seed in
    let tree =
      T.create ?threshold ?init_depth ~rand:(fun bound -> Prng.int rng bound)
        (fun () -> { list = [] })
    in
    { tree; rng }

  let depth t = T.depth t.tree

  let value_at t i = node_value (T.get t.tree i)

  let insert t v =
    let ge i = Intf.Value.ge_elt Ord.compare (value_at t i) v in
    let c, clvl = T.find_insert_point_lv t.tree ~ge in
    let node = T.get_at t.tree ~level:clvl c in
    node.list <- v :: node.list

  (* Restore the mound property below node [n] by swapping lists with the
     smaller child until the node dominates both children — the
     sequential skeleton of the paper's moundify. [level] is ⌊log₂ n⌋,
     threaded down so child slots are fetched without recomputing it. *)
  let rec moundify t n ~level =
    let d = T.depth t.tree in
    if not (T.is_leaf n ~depth:d) then begin
      let node = T.get_at t.tree ~level n in
      let left = T.get_at t.tree ~level:(level + 1) (2 * n) in
      let right = T.get_at t.tree ~level:(level + 1) ((2 * n) + 1) in
      let vn = node_value node
      and vl = node_value left
      and vr = node_value right in
      if vcompare vl vr <= 0 && vcompare vl vn < 0 then begin
        let tmp = node.list in
        node.list <- left.list;
        left.list <- tmp;
        moundify t (2 * n) ~level:(level + 1)
      end
      else if vcompare vr vl < 0 && vcompare vr vn < 0 then begin
        let tmp = node.list in
        node.list <- right.list;
        right.list <- tmp;
        moundify t ((2 * n) + 1) ~level:(level + 1)
      end
    end

  let extract_min t =
    let root = T.get_at t.tree ~level:0 1 in
    match root.list with
    | [] -> None
    | hd :: tl ->
        root.list <- tl;
        moundify t 1 ~level:0;
        Some hd

  (* Longest prefix of the sorted batch fitting under [limit] ([None] is
     ⊤), paired with the remainder — same shape as the concurrent
     variants. *)
  let rec split_prefix limit acc = function
    | x :: rest when Intf.Value.ge_elt Ord.compare limit x ->
        split_prefix limit (x :: acc) rest
    | rest -> (List.rev acc, rest)

  (** Insert a {e sorted} batch: the dual of [extract_many], useful for
      returning unconsumed work to the pool. The batch is walked front
      to back; each round finds the insert point for the current head
      once and splices the longest prefix that fits that node in one
      write, amortizing probing and binary search over runs of keys that
      share an insertion point. No validation or fallback is needed
      sequentially: [find_insert_point] guarantees [val(parent) < hd],
      and the prefix is bounded by [val(c)] by construction. *)
  let insert_many t batch =
    let rec go = function
      | [] -> ()
      | hd :: _ as batch ->
          let ge i = Intf.Value.ge_elt Ord.compare (value_at t i) hd in
          let c, clvl = T.find_insert_point_lv t.tree ~ge in
          let node = T.get_at t.tree ~level:clvl c in
          let prefix, rest = split_prefix (node_value node) [] batch in
          node.list <- prefix @ node.list;
          go rest
    in
    go batch

  (** Take the root's entire sorted list in one operation (§V of the
      paper). *)
  let extract_many t =
    let root = T.get_at t.tree ~level:0 1 in
    match root.list with
    | [] -> []
    | taken ->
        root.list <- [];
        moundify t 1 ~level:0;
        taken

  (** Extract from a random non-empty node within the first [max_level+1]
      levels: the result is the minimum of the sub-mound rooted there, so
      it is probably close to the global minimum (§V). Falls back to an
      exact [extract_min] when the probe finds only empty nodes. *)
  let extract_approx ?(max_level = 2) t =
    let d = T.depth t.tree in
    let lvl = min max_level (d - 1) in
    let span = (1 lsl (lvl + 1)) - 1 in
    let n = 1 + Prng.int t.rng span in
    let nlvl = T.level_of n in
    let node = T.get_at t.tree ~level:nlvl n in
    match node.list with
    | [] -> extract_min t
    | hd :: tl ->
        node.list <- tl;
        moundify t n ~level:nlvl;
        Some hd

  (* Sequential operations never retry, so the deadline/try variants are
     the plain operations with the successful outcome: they exist so the
     oracle satisfies the same MOUND signature the concurrent variants
     are checked against. *)
  let try_insert t v =
    insert t v;
    true

  let insert_until t ~deadline:_ v =
    insert t v;
    Intf.Ok ()

  let extract_min_until t ~deadline:_ = Intf.Ok (extract_min t)

  let peek_min t = node_value (T.get_at t.tree ~level:0 1)

  let is_empty t = peek_min t = None

  let fold_nodes t f acc = T.fold t.tree (fun acc i n -> f acc i n.list) acc

  let size t = fold_nodes t (fun acc _ l -> acc + List.length l) 0

  (* --- invariant checking (tests) --- *)

  let rec list_sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Ord.compare a b <= 0 && list_sorted rest

  (** The mound property plus per-node list sortedness, checked over the
      whole tree. *)
  let check t =
    fold_nodes t
      (fun ok i l ->
        ok && list_sorted l
        &&
        if i = 1 then true
        else
          Intf.Value.le Ord.compare
            (value_at t (i / 2))
            (match l with [] -> None | x :: _ -> Some x))
      true
end
