(** Bounded admission front-end: backpressure and shedding over any mound.

    A mound accepts unbounded traffic; under sustained overload that
    means unbounded memory and collapsing latency. [Bounded.Make (R)]
    wraps any queue (anything providing the {!type-ops} record — the
    three mound variants, or a [Keyed] map) with a capacity watermark and
    a pluggable policy for what happens to arrivals beyond it:

    - {!Reject}: refuse the new element ([Rejected]), counting it;
    - {!Shed}: evict a probably-low-priority victim via the underlying
      [extract_approx] probed {e deep} — in a min-queue the mound
      property pushes large (low-priority) values away from the root, so
      a deep probe sheds cheap, unimportant work to make room;
    - {!Block}: wait (politely spinning) until the queue drains below the
      watermark, bounded by the caller's deadline in the [_until]
      variants.

    Occupancy is tracked with a single [fetch_and_add] counter reserved
    {e before} touching the structure — cheap, approximate (an in-flight
    failed insert briefly inflates it), and never requiring the O(N)
    [size] walk. Shed / rejected / timeout events are counted in the
    wrapper's own {!Stats.Ops} record. *)

module Make (R : Runtime.S) = struct
  type policy = Reject | Shed | Block

  let policy_name = function
    | Reject -> "reject"
    | Shed -> "shed"
    | Block -> "block"

  (** The operations [Bounded] needs from the wrapped queue, as a plain
      record so one functor application serves every structure (the
      mounds are functors themselves; a record dodges a functor-of-
      functors tangle and lets baselines participate too). *)
  type ('q, 'elt) ops = {
    insert : 'q -> 'elt -> unit;
    try_insert : 'q -> 'elt -> bool;
    insert_until : 'q -> deadline:int -> 'elt -> unit Intf.outcome;
    extract_min : 'q -> 'elt option;
    extract_min_until : 'q -> deadline:int -> 'elt option Intf.outcome;
    extract_approx : max_level:int -> 'q -> 'elt option;
  }

  type ('q, 'elt) t = {
    q : 'q;
    ops : ('q, 'elt) ops;
    capacity : int;
    policy : policy;
    occupancy : int R.Atomic.t;
    counters : Stats.Ops.t;
  }

  (* Deep enough that a probe lands well below the root on any loaded
     mound (levels 0..6 span 127 nodes), so shedding rarely steals the
     minimum; harmlessly clamped by extract_approx on shallow trees. *)
  let shed_probe_level = 6

  (* Bounded eviction attempts before an over-capacity insert under
     [Shed] is admitted anyway: occupancy is approximate, so "full with
     nothing to evict" is possible and must not loop. *)
  let shed_tries = 4

  let make ~ops ~capacity ~policy q =
    {
      q;
      ops;
      capacity = max 1 capacity;
      policy;
      occupancy = R.Atomic.make 0;
      counters = Stats.Ops.create ();
    }

  let capacity t = t.capacity

  let policy t = t.policy

  (** Shed / rejected / timeout counters of the front-end itself (the
      wrapped structure keeps its own). *)
  let counters t = t.counters

  (** Approximate occupancy — the admission counter, not an O(N) walk. *)
  let size t = R.Atomic.get t.occupancy

  let expired ~deadline =
    deadline <> Intf.no_deadline && R.monotonic_ns () > deadline

  (* Reserve a slot below the watermark: the admission decision is one
     fetch_and_add, undone if the watermark was crossed. *)
  let admit t =
    if R.Atomic.fetch_and_add t.occupancy 1 < t.capacity then true
    else begin
      ignore (R.Atomic.fetch_and_add t.occupancy (-1));
      false
    end

  let release t = ignore (R.Atomic.fetch_and_add t.occupancy (-1))

  (* Evict one probably-low-priority element to make room. [false] means
     the probe found nothing to evict (occupancy is approximate). *)
  let shed_one t =
    match t.ops.extract_approx ~max_level:shed_probe_level t.q with
    | Some _ ->
        t.counters.shed <- t.counters.shed + 1;
        release t;
        true
    | None -> false

  let rec insert_until t ~deadline v =
    if admit t then begin
      (* the slot is reserved; a Timeout below must hand it back *)
      match t.ops.insert_until t.q ~deadline v with
      | Intf.Ok () -> Intf.Ok ()
      | (Intf.Timeout | Intf.Rejected) as r ->
          release t;
          if r = Intf.Timeout then
            t.counters.deadline_timeouts <- t.counters.deadline_timeouts + 1;
          r
    end
    else
      match t.policy with
      | Reject ->
          t.counters.rejected <- t.counters.rejected + 1;
          Intf.Rejected
      | Shed ->
          let rec evict tries =
            if admit t then true
            else if tries > 0 && shed_one t then evict (tries - 1)
            else false
          in
          if not (evict shed_tries) then
            (* force-reserve over the watermark rather than drop the
               arrival when eviction found nothing: occupancy is a
               watermark, not a hard invariant *)
            ignore (R.Atomic.fetch_and_add t.occupancy 1);
          (match t.ops.insert_until t.q ~deadline v with
          | Intf.Ok () -> Intf.Ok ()
          | (Intf.Timeout | Intf.Rejected) as r ->
              release t;
              if r = Intf.Timeout then
                t.counters.deadline_timeouts <- t.counters.deadline_timeouts + 1;
              r)
      | Block ->
          if expired ~deadline then begin
            t.counters.deadline_timeouts <- t.counters.deadline_timeouts + 1;
            Intf.Timeout
          end
          else begin
            R.cpu_relax ();
            insert_until t ~deadline v
          end

  let insert t v = insert_until t ~deadline:Intf.no_deadline v

  (** Admission-only fast path: one reservation attempt, one bounded
      publication attempt, never blocks and never sheds. *)
  let try_insert t v =
    if not (admit t) then begin
      t.counters.rejected <- t.counters.rejected + 1;
      false
    end
    else if t.ops.try_insert t.q v then true
    else begin
      release t;
      t.counters.rejected <- t.counters.rejected + 1;
      false
    end

  let extract_min_until t ~deadline =
    match t.ops.extract_min_until t.q ~deadline with
    | Intf.Ok (Some v) ->
        release t;
        Intf.Ok (Some v)
    | Intf.Ok None -> Intf.Ok None
    | (Intf.Timeout | Intf.Rejected) as r ->
        if r = Intf.Timeout then
          t.counters.deadline_timeouts <- t.counters.deadline_timeouts + 1;
        r

  let extract_min t =
    match t.ops.extract_min t.q with
    | Some v ->
        release t;
        Some v
    | None -> None
end
