(** Relaxed MultiQueue front-end over sequential mounds.

    The committed benches show the single shared mound collapsing under
    concurrent [extract_min] — every thread fights over one root. The
    MultiQueue construction (Williams & Sanders, "Engineering
    MultiQueues") side-steps the bottleneck by relaxing the contract:
    [c·P] independent queues, inserts spread across them, and
    [extract_min] popping the smaller-topped of {e two} randomly sampled
    queues. The returned element is the minimum of a sampled queue, not
    of the whole structure; how far from the global minimum it ranks is
    a measured quantity ([Harness.Rank_exp]), not a promise.

    Design notes:

    - Each inner queue is a {!Seq_mound} behind a single-word try-lock.
      Operations hold exactly one lock at a time, so there is no lock
      ordering to get wrong and a crashed holder stalls only its own
      queue.
    - Each queue's top key is cached in a dedicated atomic, republished
      before every unlock. Two-choice sampling reads only these cached
      tops; whenever a lock is observed free the cached top is exact.
    - Stickiness: a domain re-uses its last insert queue (and its last
      delete pair) for [stickiness] consecutive operations before
      re-rolling, amortizing cache traffic; [insert_many] splices a whole
      sorted batch into the one sticky queue.
    - A global element counter makes emptiness exact: [extract_min]
      returns [None] only after a full scan finds nothing {e and} the
      counter reads zero. Linearizing inserts at their increment and
      extractions at their decrement (both inside the owning critical
      section) makes the counter equal the abstract size at every
      instant, so a zero read is a sound linearization point for
      [None] — emptiness is the one thing this structure does {e not}
      relax.
    - Retry paths (lock failover, the empty/busy rescan) rotate
      deterministically and draw no randomness; the thread-local PRNG is
      consumed only when a sticky assignment expires. Liveness
      certification needs revisitable states, and a PRNG draw inside a
      retry loop would make every spin look like fresh progress. *)

module Make (R : Runtime.S) (Ord : Intf.ORDERED) = struct
  module Q = Seq_mound.Make (Ord)

  type elt = Ord.t

  (* Same line-spacing discipline as [Tree]: 64-byte lines, one word of
     block header. *)
  let pad_words = 7

  (* One inner queue. The try-lock word and the cached-top word are the
     two contended atomics; live pad blocks keep them (and the cold
     mound pointer) off each other's cache lines. *)
  type cell = {
    lock : bool R.Atomic.t;
    pad_lock : int array;
    top : elt option R.Atomic.t;  (* exact whenever [lock] is free *)
    pad_top : int array;
    q : Q.t;
  }

  (* Sticky-choice state is per-domain heuristic data reached through
     [self () mod slot_count]: a hash collision (or a torn read after
     one) only changes which queue a domain prefers next, never what
     the structure contains; racy by contract, like [Stats.Ops]. *)
  type slot = {
    (* lint: allow — one domain's private counters: fields sharing a
       cache line here is locality, not false sharing *)
    mutable ins_q : int;  (* sticky insert queue *)
    mutable ins_left : int;  (* inserts before re-rolling [ins_q] *)
    mutable del_a : int;  (* sticky delete pair *)
    mutable del_b : int;
    mutable del_left : int;
    pad_slot : int array;  (* keep neighbouring slots off one line *)
  }

  type t = {
    cells : cell array;
    slots : slot array;
    size : int R.Atomic.t;  (* exact element count; see emptiness note *)
    stickiness : int;
    ops : Stats.Ops.t;
  }

  let vcompare = Intf.Value.compare Ord.compare

  let slot_count = 64

  (* Mirrors [Lock_mound]: spin stretches beyond this are counted as
     livelock near misses. *)
  let near_miss_spins = 64

  let create ?(c = 2) ?(stickiness = 8) ?threshold ?init_depth ?(seed = 1L)
      ?queues ~domains () =
    if domains < 1 then invalid_arg "Mound.Multiqueue.create: bad domains";
    if c < 1 then invalid_arg "Mound.Multiqueue.create: bad c";
    if stickiness < 1 then
      invalid_arg "Mound.Multiqueue.create: bad stickiness";
    let nq = match queues with Some n -> n | None -> c * domains in
    if nq < 1 then invalid_arg "Mound.Multiqueue.create: bad queue count";
    (* derive inner seeds before [Array.init]: its application order is
       unspecified, and the per-queue seeds must not depend on it *)
    let sm = Prng.Splitmix64.create seed in
    let seeds = Array.make nq 0L in
    for i = 0 to nq - 1 do
      seeds.(i) <- Prng.Splitmix64.next sm
    done;
    let cells =
      Array.init nq (fun i ->
          {
            lock = R.Atomic.make false;
            pad_lock = Array.make pad_words 0;
            top = R.Atomic.make None;
            pad_top = Array.make pad_words 0;
            q = Q.create ?threshold ?init_depth ~seed:seeds.(i) ();
          })
    in
    let slots =
      Array.init slot_count (fun _ ->
          {
            ins_q = 0;
            ins_left = 0;
            del_a = 0;
            del_b = 0;
            del_left = 0;
            pad_slot = Array.make pad_words 0;
          })
    in
    {
      cells;
      slots;
      size = R.Atomic.make 0;
      stickiness;
      ops = Stats.Ops.create ();
    }

  let ops t = t.ops

  let queue_count t = Array.length t.cells

  let slot_for t = t.slots.(R.self () mod slot_count)

  let expired ~deadline =
    deadline <> Intf.no_deadline && R.monotonic_ns () > deadline

  (* Republish the cached top, then release. This order is what makes
     [top] exact under a free lock: any thread that later observes the
     lock free also observes a top written after our last mutation. *)
  let unlock cell =
    R.Atomic.set cell.top (Q.peek_min cell.q);
    R.Atomic.set cell.lock false

  (* --- sticky choice ------------------------------------------------ *)

  let sticky_ins t slot =
    if slot.ins_left <= 0 then begin
      slot.ins_q <- R.rand_int (Array.length t.cells);
      slot.ins_left <- t.stickiness
    end;
    slot.ins_left <- slot.ins_left - 1;
    slot.ins_q

  let sticky_del t slot =
    if slot.del_left <= 0 then begin
      let nq = Array.length t.cells in
      slot.del_a <- R.rand_int nq;
      slot.del_b <- R.rand_int nq;
      slot.del_left <- t.stickiness
    end;
    slot.del_left <- slot.del_left - 1;
    (slot.del_a, slot.del_b)

  (* --- insert ------------------------------------------------------- *)

  (* Acquire some queue's lock, preferring [i]: one CAS on the sticky
     queue, then a deterministic rotation over the others (no PRNG in
     the retry path). Returns the acquired index, or [None] on deadline
     expiry. An unbounded acquire always terminates as long as some
     holder keeps releasing: every rotation retries all [nq] locks. *)
  let rec acquire t i tries ~deadline =
    if R.Atomic.compare_and_set t.cells.(i).lock false true then Some i
    else begin
      t.ops.lock_spins <- t.ops.lock_spins + 1;
      if tries = near_miss_spins then
        t.ops.livelock_near_misses <- t.ops.livelock_near_misses + 1;
      if expired ~deadline then None
      else begin
        let nq = Array.length t.cells in
        if (tries + 1) mod nq = 0 then R.cpu_relax ();
        acquire t ((i + 1) mod nq) (tries + 1) ~deadline
      end
    end

  let insert_until t ~deadline v =
    let slot = slot_for t in
    let start = sticky_ins t slot in
    match acquire t start 0 ~deadline with
    | None ->
        t.ops.deadline_timeouts <- t.ops.deadline_timeouts + 1;
        Intf.Timeout
    | Some i ->
        if i <> start then begin
          (* failed over: stick to the queue we actually acquired *)
          slot.ins_q <- i;
          t.ops.insert_retries <- t.ops.insert_retries + 1
        end;
        let cell = t.cells.(i) in
        Q.insert cell.q v;
        ignore (R.Atomic.fetch_and_add t.size 1);
        unlock cell;
        Intf.Ok ()

  let insert t v =
    match insert_until t ~deadline:Intf.no_deadline v with
    | Intf.Ok () -> ()
    | Timeout | Rejected -> assert false (* no deadline: acquire never gives up *)

  let try_insert t v =
    let slot = slot_for t in
    let start = sticky_ins t slot in
    let nq = Array.length t.cells in
    let won i =
      let cell = t.cells.(i) in
      Q.insert cell.q v;
      ignore (R.Atomic.fetch_and_add t.size 1);
      unlock cell;
      slot.ins_q <- i;
      true
    in
    if R.Atomic.compare_and_set t.cells.(start).lock false true then won start
    else begin
      t.ops.lock_spins <- t.ops.lock_spins + 1;
      let alt = (start + 1) mod nq in
      if alt <> start && R.Atomic.compare_and_set t.cells.(alt).lock false true
      then won alt
      else begin
        if alt <> start then t.ops.lock_spins <- t.ops.lock_spins + 1;
        t.ops.rejected <- t.ops.rejected + 1;
        false
      end
    end

  (** Insert a {e sorted} batch into the sticky queue in one critical
      section, so [Seq_mound.insert_many]'s prefix splicing amortizes
      probing over the whole batch. *)
  let insert_many t batch =
    match batch with
    | [] -> ()
    | _ -> (
        let slot = slot_for t in
        let start = sticky_ins t slot in
        match acquire t start 0 ~deadline:Intf.no_deadline with
        | None -> assert false (* no deadline: acquire never gives up *)
        | Some i ->
            slot.ins_q <- i;
            let cell = t.cells.(i) in
            Q.insert_many cell.q batch;
            ignore (R.Atomic.fetch_and_add t.size (List.length batch));
            unlock cell)

  (* --- extract ------------------------------------------------------ *)

  type attempt = Got of elt | Nothing

  (* One try-lock extraction attempt on queue [i]. [Nothing] covers both
     a busy lock and an empty queue: either way the caller moves on, and
     global emptiness is decided by the counter, not by this probe. The
     unlocked-and-top-[None] shortcut can race an in-flight publish and
     report [Nothing] for a just-filled queue; the counter-guarded
     rescan in [scan] re-examines it. *)
  let pop_at t i =
    let cell = t.cells.(i) in
    if R.Atomic.get cell.top = None && not (R.Atomic.get cell.lock) then
      Nothing
    else if not (R.Atomic.compare_and_set cell.lock false true) then begin
      t.ops.lock_spins <- t.ops.lock_spins + 1;
      Nothing
    end
    else begin
      let r = Q.extract_min cell.q in
      (match r with
      | Some _ -> ignore (R.Atomic.fetch_and_add t.size (-1))
      | None -> ());
      unlock cell;
      match r with Some v -> Got v | None -> Nothing
    end

  (* Deterministic rotation over every queue, restarted while the size
     counter says elements remain. Terminates with [Ok None] only on a
     zero counter read — the sound emptiness point — and with [Timeout]
     once the deadline passes. No randomness is drawn here. *)
  let rec scan t i left rounds ~deadline =
    if left = 0 then begin
      if R.Atomic.get t.size = 0 then Intf.Ok None
      else if expired ~deadline then begin
        t.ops.deadline_timeouts <- t.ops.deadline_timeouts + 1;
        Intf.Timeout
      end
      else begin
        t.ops.extract_retries <- t.ops.extract_retries + 1;
        if rounds = near_miss_spins then
          t.ops.livelock_near_misses <- t.ops.livelock_near_misses + 1;
        R.cpu_relax ();
        scan t i (Array.length t.cells) (rounds + 1) ~deadline
      end
    end
    else
      match pop_at t i with
      | Got v -> Intf.Ok (Some v)
      | Nothing ->
          scan t ((i + 1) mod Array.length t.cells) (left - 1) rounds ~deadline

  let extract_min_until t ~deadline =
    let slot = slot_for t in
    let a, b = sticky_del t slot in
    let ta = R.Atomic.get t.cells.(a).top
    and tb = R.Atomic.get t.cells.(b).top in
    (* two-choice: pop from the sampled queue with the smaller cached
       top ([None] is +∞), falling back to the other *)
    let first, second = if vcompare ta tb <= 0 then (a, b) else (b, a) in
    match pop_at t first with
    | Got v -> Intf.Ok (Some v)
    | Nothing -> (
        match if second <> first then pop_at t second else Nothing with
        | Got v -> Intf.Ok (Some v)
        | Nothing ->
            (* both samples empty or busy: re-roll on the next op, and
               decide emptiness via the full counter-guarded rotation *)
            slot.del_left <- 0;
            let nq = Array.length t.cells in
            scan t ((first + 1) mod nq) nq 0 ~deadline)

  let extract_min t =
    match extract_min_until t ~deadline:Intf.no_deadline with
    | Intf.Ok r -> r
    | Timeout | Rejected -> assert false (* no deadline: scan never gives up *)

  (* Take one queue's whole root list: the relaxed analogue of the
     paper's extract-many (its head is that queue's minimum, not
     necessarily the global one). Same two-choice + counter-guarded
     rotation as [extract_min], so an empty result means an observed
     empty structure. *)
  let take_at t i =
    let cell = t.cells.(i) in
    if R.Atomic.get cell.top = None && not (R.Atomic.get cell.lock) then []
    else if not (R.Atomic.compare_and_set cell.lock false true) then begin
      t.ops.lock_spins <- t.ops.lock_spins + 1;
      []
    end
    else begin
      let r = Q.extract_many cell.q in
      (match r with
      | [] -> ()
      | l -> ignore (R.Atomic.fetch_and_add t.size (-(List.length l))));
      unlock cell;
      r
    end

  (* lint: allow — [extract_many] has no deadline variant in the MOUND
     signature (matching the other mound variants); the wait resolves as
     soon as any lock holder releases, and a zero counter read exits. *)
  let rec take_scan t i left =
    if left = 0 then begin
      if R.Atomic.get t.size = 0 then []
      else begin
        t.ops.extract_retries <- t.ops.extract_retries + 1;
        R.cpu_relax ();
        take_scan t i (Array.length t.cells)
      end
    end
    else
      match take_at t i with
      | [] -> take_scan t ((i + 1) mod Array.length t.cells) (left - 1)
      | taken -> taken

  let extract_many t =
    let slot = slot_for t in
    let a, b = sticky_del t slot in
    let ta = R.Atomic.get t.cells.(a).top
    and tb = R.Atomic.get t.cells.(b).top in
    let first, second = if vcompare ta tb <= 0 then (a, b) else (b, a) in
    match take_at t first with
    | [] -> (
        match if second <> first then take_at t second else [] with
        | [] ->
            slot.del_left <- 0;
            let nq = Array.length t.cells in
            take_scan t ((first + 1) mod nq) nq
        | taken -> taken)
    | taken -> taken

  (* Doubly approximate: sample one sticky queue, then let the inner
     mound's probabilistic extract pick a near-minimum within it. Busy
     or empty samples fall back to the exact (still rank-relaxed)
     [extract_min]. *)
  let extract_approx ?max_level t =
    let slot = slot_for t in
    let a, b = sticky_del t slot in
    let approx_at i =
      let cell = t.cells.(i) in
      if not (R.Atomic.compare_and_set cell.lock false true) then begin
        t.ops.lock_spins <- t.ops.lock_spins + 1;
        None
      end
      else begin
        let r = Q.extract_approx ?max_level cell.q in
        (match r with
        | Some _ -> ignore (R.Atomic.fetch_and_add t.size (-1))
        | None -> ());
        unlock cell;
        r
      end
    in
    match approx_at a with
    | Some v -> Some v
    | None -> (
        match if b <> a then approx_at b else None with
        | Some v -> Some v
        | None -> extract_min t)

  (* --- observers ---------------------------------------------------- *)

  let peek_min t =
    Array.fold_left
      (fun acc cell ->
        let v = R.Atomic.get cell.top in
        if vcompare v acc < 0 then v else acc)
      None t.cells

  let is_empty t = R.Atomic.get t.size = 0

  let size t = R.Atomic.get t.size

  let depth t =
    Array.fold_left (fun acc cell -> max acc (Q.depth cell.q)) 0 t.cells

  (* Node indices repeat across the inner mounds (each is its own
     1-based tree); [Stats.compute] aggregates per level, which stays
     meaningful as a per-level aggregate across all queues. *)
  let fold_nodes t f acc =
    Array.fold_left (fun acc cell -> Q.fold_nodes cell.q f acc) acc t.cells

  (* Quiescent invariants: every lock free, every inner mound valid,
     every cached top exact, and the global counter equal to the sum of
     inner sizes. *)
  let check t =
    let ok = ref true in
    let total = ref 0 in
    Array.iter
      (fun cell ->
        ok :=
          !ok
          && (not (R.Atomic.get cell.lock))
          && Q.check cell.q
          && vcompare (R.Atomic.get cell.top) (Q.peek_min cell.q) = 0;
        total := !total + Q.size cell.q)
      t.cells;
    !ok && !total = R.Atomic.get t.size
end
