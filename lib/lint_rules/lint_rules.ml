(** Source-level lint for the runtime boundary and basic formatting.

    Everything in [lib/] except [lib/runtime] and [lib/sim] must reach
    shared memory, domains, time, and randomness through the {!Runtime}
    functor interface — that is what lets one algorithm run both on real
    hardware and under the deterministic simulator. This module scans
    OCaml sources (comments and string literals stripped) and reports:

    - direct uses of [Stdlib.Atomic], bare [Atomic.], [Domain.],
      [Random.] or [Unix.gettimeofday] outside the runtime layer;
    - [mutable] record fields in a type that the same file publishes
      through an [Atomic.t] cell — such records look atomic but their
      fields are plain racy memory;
    - formatting nits that otherwise accumulate: tab characters,
      trailing whitespace, missing final newline.

    A comment containing ["lint: allow"] waives findings on its own and
    the following line; ["lint: allow-file"] waives the whole file's
    boundary findings (formatting still applies). The exemption for
    [lib/runtime] and [lib/sim] is by path: any file with a [runtime] or
    [sim] directory component may touch the forbidden primitives — they
    are the boundary. *)

type finding = { file : string; line : int; rule : string; msg : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.msg

(* ---- source preprocessing --------------------------------------------- *)

type stripped = {
  clean : string;
      (* comments and string/char literals blanked out, newlines kept *)
  waived : (int, unit) Hashtbl.t;  (* line numbers covered by a waiver *)
  file_waived : bool;
}

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Blank out comments (nested, and containing strings) and string/char
   literals, recording waiver comments as we go. The cleaned buffer has
   the same length and line structure as the source. *)
let strip src =
  let n = String.length src in
  let clean = Bytes.of_string src in
  let waived = Hashtbl.create 8 in
  let file_waived = ref false in
  let line = ref 1 in
  let blank i = if Bytes.get clean i <> '\n' then Bytes.set clean i ' ' in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  (* skip a string literal body starting after its opening quote,
     blanking it; returns index past the closing quote *)
  let rec skip_string i =
    if i >= n then i
    else
      let c = src.[i] in
      bump c;
      blank i;
      if c = '\\' && i + 1 < n then begin
        blank (i + 1);
        bump src.[i + 1];
        skip_string (i + 2)
      end
      else if c = '"' then i + 1
      else skip_string (i + 1)
  in
  let contains_sub s sub =
    let ls = String.length s and lb = String.length sub in
    let rec go i =
      i + lb <= ls && (String.sub s i lb = sub || go (i + 1))
    in
    go 0
  in
  let rec skip_comment i depth start =
    if i >= n then i
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      skip_comment (i + 2) (depth + 1) start
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then i + 2 else skip_comment (i + 2) (depth - 1) start
    end
    else if src.[i] = '"' then begin
      blank i;
      skip_comment (skip_string (i + 1)) depth start
    end
    else begin
      bump src.[i];
      blank i;
      skip_comment (i + 1) depth start
    end
  in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let from = !i in
      blank !i;
      blank (!i + 1);
      i := skip_comment (!i + 2) 1 !i;
      let text = String.sub src from (min n !i - from) in
      if contains_sub text "lint: allow-file" then file_waived := true
      else if contains_sub text "lint: allow" then begin
        Hashtbl.replace waived start_line ();
        Hashtbl.replace waived (start_line + 1) ();
        (* a waiver on its own line covers the next code line too *)
        Hashtbl.replace waived (!line + 1) ()
      end
    end
    else if c = '"' then begin
      blank !i;
      i := skip_string (!i + 1)
    end
    else if
      (* char literals, so that '"' does not open a string; a bare
         apostrophe after an identifier is a type variable or prime *)
      c = '\''
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
      && !i + 2 < n
      && ((src.[!i + 1] = '\\')
         || (src.[!i + 1] <> '\'' && src.[!i + 2] = '\''))
    then
      if src.[!i + 1] = '\\' then begin
        (* escaped char literal: blank to the closing quote *)
        blank !i;
        incr i;
        while !i < n && src.[!i] <> '\'' do
          bump src.[!i];
          blank !i;
          incr i
        done;
        if !i < n then begin
          blank !i;
          incr i
        end
      end
      else begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        bump src.[!i + 1];
        i := !i + 3
      end
    else begin
      bump c;
      incr i
    end
  done;
  { clean = Bytes.to_string clean; waived; file_waived = !file_waived }

let line_index src =
  let lines = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then lines := (i + 1) :: !lines) src;
  Array.of_list (List.rev !lines)

let line_of idx off =
  (* binary search: greatest line start <= off *)
  let lo = ref 0 and hi = ref (Array.length idx - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if idx.(mid) <= off then lo := mid else hi := mid - 1
  done;
  !lo + 1

(* ---- runtime-boundary rule -------------------------------------------- *)

let forbidden =
  [
    ("Stdlib.Atomic", "direct Stdlib.Atomic use; go through Runtime");
    ("Atomic.", "bare Atomic module access; go through Runtime");
    ("Domain.", "direct Domain use; only lib/runtime may spawn or relax");
    ("Random.", "ambient Random use; use the runtime's seeded PRNG");
    ("Unix.gettimeofday", "wall-clock read; timing belongs to the harness \
                           runtime layer");
  ]

let exempt_path path =
  String.split_on_char '/' path
  |> List.exists (fun seg -> seg = "runtime" || seg = "sim")

(* [with type 'a Atomic.t = ...] names the signature's own submodule, the
   repo's standard functor-constraint idiom, not an ambient Atomic use. *)
let type_var_before clean off =
  let i = ref (off - 1) in
  while !i >= 0 && clean.[!i] = ' ' do
    decr i
  done;
  !i >= 1 && clean.[!i] = 'a' && clean.[!i - 1] = '\''

let scan_boundary ~path ~file s idx =
  if exempt_path path then []
  else
    List.concat_map
      (fun (pat, msg) ->
        let lp = String.length pat in
        let out = ref [] in
        let off = ref 0 in
        let n = String.length s.clean in
        while !off + lp <= n do
          let at = !off in
          if
            String.sub s.clean at lp = pat
            && (at = 0
               || (not (is_ident_char s.clean.[at - 1]))
                  && s.clean.[at - 1] <> '.')
            && not (pat = "Atomic." && type_var_before s.clean at)
          then
            out := { file; line = line_of idx at; rule = "boundary"; msg }
                   :: !out;
          incr off
        done;
        List.rev !out)
      forbidden

(* ---- mutable-record-behind-Atomic rule -------------------------------- *)

(* Tokenize identifiers-with-dots out of the cleaned source. *)
let tokens clean =
  let n = String.length clean in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident_char clean.[!i] then begin
      let start = !i in
      while
        !i < n && (is_ident_char clean.[!i] || clean.[!i] = '.')
      do
        incr i
      done;
      out := (String.sub clean start (!i - start), start) :: !out
    end
    else incr i
  done;
  List.rev !out

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Record types declaring [mutable] fields, as (name, line of the first
   mutable field). Purely textual: [type <params>? <name> = {...}]. *)
let mutable_records clean idx =
  let n = String.length clean in
  let out = ref [] in
  List.iter
    (fun (tok, off) ->
      if tok = "type" then begin
        (* the declaration head runs to the first '='; the type's name
           is the last lowercase identifier in it *)
        let eq = ref (off + 4) in
        while !eq < n && clean.[!eq] <> '=' && clean.[!eq] <> ';' do
          incr eq
        done;
        if !eq < n && clean.[!eq] = '=' then begin
          let head = String.sub clean (off + 4) (!eq - off - 4) in
          let name =
            List.fold_left
              (fun acc (t, _) ->
                if t.[0] >= 'a' && t.[0] <= 'z' && t <> "nonrec" then Some t
                else acc)
              None (tokens head)
          in
          (* after '=': a record body? *)
          let k = ref (!eq + 1) in
          while
            !k < n
            && (clean.[!k] = ' ' || clean.[!k] = '\n' || clean.[!k] = '\t')
          do
            incr k
          done;
          match name with
          | Some name when !k < n && clean.[!k] = '{' ->
              let close = ref !k in
              while !close < n && clean.[!close] <> '}' do
                incr close
              done;
              let body = String.sub clean !k (!close - !k) in
              (match List.find_opt (fun (t, _) -> t = "mutable") (tokens body)
               with
              | Some (_, o) -> out := (name, line_of idx (!k + o)) :: !out
              | None -> ())
          | _ -> ()
        end
      end)
    (tokens clean);
  List.rev !out

let scan_mutable_atomic ~file s idx =
  let recs = mutable_records s.clean idx in
  if recs = [] then []
  else
    let toks = tokens s.clean in
    let published name =
      (* [name] immediately followed by a path ending in Atomic.t (or
         an aliased A.t): the record is being put inside an atomic *)
      let rec go = function
        | (t1, _) :: (((t2, _) :: _) as rest) ->
            if
              t1 = name
              && (ends_with ~suffix:"Atomic.t" t2 || t2 = "A.t")
            then true
            else go rest
        | _ -> false
      in
      go toks
    in
    List.filter_map
      (fun (name, line) ->
        if published name then
          Some
            {
              file;
              line;
              rule = "mutable-atomic";
              msg =
                Printf.sprintf
                  "record %s has mutable fields but is published through \
                   an Atomic.t; fields are plain racy memory"
                  name;
            }
        else None)
      recs

(* ---- format rules ------------------------------------------------------ *)

let scan_format ~file src =
  let out = ref [] in
  let add line rule msg = out := { file; line; rule; msg } :: !out in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i l ->
      let ln = i + 1 in
      if String.contains l '\t' then add ln "format" "tab character";
      let len = String.length l in
      if len > 0 && (l.[len - 1] = ' ' || l.[len - 1] = '\t') then
        add ln "format" "trailing whitespace")
    lines;
  let n = String.length src in
  if n > 0 && src.[n - 1] <> '\n' then
    add (List.length lines) "format" "missing final newline";
  List.rev !out

(* ---- entry points ------------------------------------------------------ *)

let scan ~path src =
  let s = strip src in
  let idx = line_index src in
  let boundary =
    if s.file_waived then []
    else scan_boundary ~path ~file:path s idx @ scan_mutable_atomic ~file:path s idx
  in
  let all = boundary @ scan_format ~file:path src in
  List.filter (fun f -> not (Hashtbl.mem s.waived f.line)) all
  |> List.sort (fun a b -> compare (a.line, a.rule) (b.line, b.rule))

let scan_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  scan ~path src

let rec files_under dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.concat_map (fun e ->
             let p = Filename.concat dir e in
             if Sys.is_directory p then files_under p
             else if
               Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
             then [ p ]
             else [])
  | exception Sys_error _ -> []

let scan_tree root = files_under root |> List.sort compare
                     |> List.concat_map scan_file
