(** Source-level lint for the runtime boundary and basic formatting.

    Everything in [lib/] except [lib/runtime] and [lib/sim] must reach
    shared memory, domains, time, and randomness through the {!Runtime}
    functor interface — that is what lets one algorithm run both on real
    hardware and under the deterministic simulator. This module scans
    OCaml sources (comments and string literals stripped) and reports:

    - direct uses of [Stdlib.Atomic], bare [Atomic.], [Domain.],
      [Random.] or [Unix.gettimeofday] outside the runtime layer;
    - [mutable] record fields in a type that the same file publishes
      through an [Atomic.t] cell — such records look atomic but their
      fields are plain racy memory;
    - violations of the helping discipline the lock-free mound depends
      on (rules [dirty-spin], [cas-discard], [retry-no-backoff]): a
      retry loop that re-tests a [dirty] bit without calling a
      restoration/helping routine, a compare-and-set whose result is
      silently discarded, and an unbounded retry loop around a CAS with
      neither backoff nor helping. Recognition is by naming convention:
      an identifier containing [help], [moundify] or [complete] marks a
      helping call; one containing [backoff], [exponential] or
      [cpu_relax] marks backoff;
    - allocation inside a CAS retry loop (rule [alloc-in-retry]): in a
      recursive chunk that performs a CAS, an [Array.make]/[Array.init],
      [Bytes.create]/[Bytes.make], [lazy] or [ref]-application token
      after the chunk's [rec] keyword allocates on every retry — the
      hot-path discipline is to hoist the fresh value out of the loop
      and retry with it. Record literals are deliberately not flagged:
      a CAS argument must be a fresh record, and hoisted descriptors
      are rebuilt only when the observed value actually changed;
    - formatting nits that otherwise accumulate: tab characters,
      trailing whitespace, missing final newline.

    A comment that {e begins} with ["lint: allow"] waives findings on
    its own and the following line; one beginning with
    ["lint: allow-file"] waives the whole file's boundary findings
    (formatting still applies). Prose that merely mentions a marker —
    like this paragraph — registers nothing. Every waiver must carry a
    reason after the marker (["lint: allow — setup-only id source"]); a
    reasonless waiver, and a waiver whose covered lines produce no
    finding (stale), are themselves findings under the [waiver] rule —
    which no waiver can silence. The exemption for [lib/runtime] and
    [lib/sim] is by path: any file with a [runtime] or [sim] directory
    component may touch the forbidden primitives — they are the
    boundary. [lib/baselines] is exempt from the helping rules only:
    its files reproduce published third-party algorithms (Hunt heap,
    Lotan–Shavit and lock-free skiplists) whose loops are faithful to
    the originals, and the mound's helping discipline does not apply to
    them. *)

type finding = { file : string; line : int; rule : string; msg : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.msg

(* ---- source preprocessing --------------------------------------------- *)

type stripped = {
  clean : string;
      (* comments and string/char literals blanked out, newlines kept *)
  waived : (int, unit) Hashtbl.t;  (* line numbers covered by a waiver *)
  waivers : (int * int list * bool) list;
      (* each line waiver: its line, the lines it covers, reasoned? *)
  file_waivers : (int * bool) list;  (* each allow-file: line, reasoned? *)
  file_waived : bool;
}

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let has_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

(* A waiver's reason is whatever follows the marker inside the comment;
   demand enough of it to actually say something. *)
let reasoned_after text marker =
  let lt = String.length text and lm = String.length marker in
  let rec find i =
    if i + lm > lt then None
    else if String.sub text i lm = marker then Some (i + lm)
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some j ->
      let alnum = ref 0 in
      String.iter
        (fun c -> if is_ident_char c then incr alnum)
        (String.sub text j (lt - j));
      !alnum >= 8

(* Blank out comments (nested, and containing strings) and string/char
   literals, recording waiver comments as we go. The cleaned buffer has
   the same length and line structure as the source. *)
let strip src =
  let n = String.length src in
  let clean = Bytes.of_string src in
  let waived = Hashtbl.create 8 in
  let waivers = ref [] in
  let file_waivers = ref [] in
  let file_waived = ref false in
  let line = ref 1 in
  let blank i = if Bytes.get clean i <> '\n' then Bytes.set clean i ' ' in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  (* skip a string literal body starting after its opening quote,
     blanking it; returns index past the closing quote *)
  let rec skip_string i =
    if i >= n then i
    else
      let c = src.[i] in
      bump c;
      blank i;
      if c = '\\' && i + 1 < n then begin
        blank (i + 1);
        bump src.[i + 1];
        skip_string (i + 2)
      end
      else if c = '"' then i + 1
      else skip_string (i + 1)
  in
  (* A waiver comment is dedicated: the marker must lead the comment,
     after the opener's asterisks and whitespace. Prose that merely
     mentions a marker mid-sentence registers nothing — otherwise this
     module's own documentation would waive itself. *)
  let leads_with text marker =
    let lt = String.length text and lm = String.length marker in
    let j = ref 2 in
    while
      !j < lt && (text.[!j] = '*' || text.[!j] = ' ' || text.[!j] = '\n')
    do
      incr j
    done;
    !j + lm <= lt && String.sub text !j lm = marker
  in
  let rec skip_comment i depth start =
    if i >= n then i
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      skip_comment (i + 2) (depth + 1) start
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then i + 2 else skip_comment (i + 2) (depth - 1) start
    end
    else if src.[i] = '"' then begin
      blank i;
      skip_comment (skip_string (i + 1)) depth start
    end
    else begin
      bump src.[i];
      blank i;
      skip_comment (i + 1) depth start
    end
  in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let from = !i in
      blank !i;
      blank (!i + 1);
      i := skip_comment (!i + 2) 1 !i;
      let text = String.sub src from (min n !i - from) in
      if leads_with text "lint: allow-file" then begin
        file_waived := true;
        file_waivers :=
          (start_line, reasoned_after text "lint: allow-file")
          :: !file_waivers
      end
      else if leads_with text "lint: allow" then begin
        (* a waiver on its own line covers the next code line too *)
        let covered =
          List.sort_uniq compare [ start_line; start_line + 1; !line + 1 ]
        in
        List.iter (fun l -> Hashtbl.replace waived l ()) covered;
        waivers :=
          (start_line, covered, reasoned_after text "lint: allow")
          :: !waivers
      end
    end
    else if c = '"' then begin
      blank !i;
      i := skip_string (!i + 1)
    end
    else if
      (* char literals, so that '"' does not open a string; a bare
         apostrophe after an identifier is a type variable or prime *)
      c = '\''
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
      && !i + 2 < n
      && ((src.[!i + 1] = '\\')
         || (src.[!i + 1] <> '\'' && src.[!i + 2] = '\''))
    then
      if src.[!i + 1] = '\\' then begin
        (* escaped char literal: blank to the closing quote *)
        blank !i;
        incr i;
        while !i < n && src.[!i] <> '\'' do
          bump src.[!i];
          blank !i;
          incr i
        done;
        if !i < n then begin
          blank !i;
          incr i
        end
      end
      else begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        bump src.[!i + 1];
        i := !i + 3
      end
    else begin
      bump c;
      incr i
    end
  done;
  {
    clean = Bytes.to_string clean;
    waived;
    waivers = List.rev !waivers;
    file_waivers = List.rev !file_waivers;
    file_waived = !file_waived;
  }

let line_index src =
  let lines = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then lines := (i + 1) :: !lines) src;
  Array.of_list (List.rev !lines)

let line_of idx off =
  (* binary search: greatest line start <= off *)
  let lo = ref 0 and hi = ref (Array.length idx - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if idx.(mid) <= off then lo := mid else hi := mid - 1
  done;
  !lo + 1

(* ---- runtime-boundary rule -------------------------------------------- *)

let forbidden =
  [
    ("Stdlib.Atomic", "direct Stdlib.Atomic use; go through Runtime");
    ("Atomic.", "bare Atomic module access; go through Runtime");
    ("Domain.", "direct Domain use; only lib/runtime may spawn or relax");
    ("Random.", "ambient Random use; use the runtime's seeded PRNG");
    ("Unix.gettimeofday", "wall-clock read; timing belongs to the harness \
                           runtime layer");
  ]

let exempt_path path =
  String.split_on_char '/' path
  |> List.exists (fun seg -> seg = "runtime" || seg = "sim")

(* [with type 'a Atomic.t = ...] names the signature's own submodule, the
   repo's standard functor-constraint idiom, not an ambient Atomic use. *)
let type_var_before clean off =
  let i = ref (off - 1) in
  while !i >= 0 && clean.[!i] = ' ' do
    decr i
  done;
  !i >= 1 && clean.[!i] = 'a' && clean.[!i - 1] = '\''

let scan_boundary ~path ~file s idx =
  if exempt_path path then []
  else
    List.concat_map
      (fun (pat, msg) ->
        let lp = String.length pat in
        let out = ref [] in
        let off = ref 0 in
        let n = String.length s.clean in
        while !off + lp <= n do
          let at = !off in
          if
            String.sub s.clean at lp = pat
            && (at = 0
               || (not (is_ident_char s.clean.[at - 1]))
                  && s.clean.[at - 1] <> '.')
            && not (pat = "Atomic." && type_var_before s.clean at)
          then
            out := { file; line = line_of idx at; rule = "boundary"; msg }
                   :: !out;
          incr off
        done;
        List.rev !out)
      forbidden

(* ---- mutable-record-behind-Atomic rule -------------------------------- *)

(* Tokenize identifiers-with-dots out of the cleaned source. *)
let tokens clean =
  let n = String.length clean in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if is_ident_char clean.[!i] then begin
      let start = !i in
      while
        !i < n && (is_ident_char clean.[!i] || clean.[!i] = '.')
      do
        incr i
      done;
      out := (String.sub clean start (!i - start), start) :: !out
    end
    else incr i
  done;
  List.rev !out

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Record types declaring [mutable] fields, as (name, line of the first
   mutable field). Purely textual: [type <params>? <name> = {...}]. *)
let mutable_records clean idx =
  let n = String.length clean in
  let out = ref [] in
  List.iter
    (fun (tok, off) ->
      if tok = "type" then begin
        (* the declaration head runs to the first '='; the type's name
           is the last lowercase identifier in it *)
        let eq = ref (off + 4) in
        while !eq < n && clean.[!eq] <> '=' && clean.[!eq] <> ';' do
          incr eq
        done;
        if !eq < n && clean.[!eq] = '=' then begin
          let head = String.sub clean (off + 4) (!eq - off - 4) in
          let name =
            List.fold_left
              (fun acc (t, _) ->
                if t.[0] >= 'a' && t.[0] <= 'z' && t <> "nonrec" then Some t
                else acc)
              None (tokens head)
          in
          (* after '=': a record body? *)
          let k = ref (!eq + 1) in
          while
            !k < n
            && (clean.[!k] = ' ' || clean.[!k] = '\n' || clean.[!k] = '\t')
          do
            incr k
          done;
          match name with
          | Some name when !k < n && clean.[!k] = '{' ->
              let close = ref !k in
              while !close < n && clean.[!close] <> '}' do
                incr close
              done;
              let body = String.sub clean !k (!close - !k) in
              (match List.find_opt (fun (t, _) -> t = "mutable") (tokens body)
               with
              | Some (_, o) -> out := (name, line_of idx (!k + o)) :: !out
              | None -> ())
          | _ -> ()
        end
      end)
    (tokens clean);
  List.rev !out

let scan_mutable_atomic ~file s idx =
  let recs = mutable_records s.clean idx in
  if recs = [] then []
  else
    let toks = tokens s.clean in
    let published name =
      (* [name] immediately followed by a path ending in Atomic.t (or
         an aliased A.t): the record is being put inside an atomic *)
      let rec go = function
        | (t1, _) :: (((t2, _) :: _) as rest) ->
            if
              t1 = name
              && (ends_with ~suffix:"Atomic.t" t2 || t2 = "A.t")
            then true
            else go rest
        | _ -> false
      in
      go toks
    in
    List.filter_map
      (fun (name, line) ->
        if published name then
          Some
            {
              file;
              line;
              rule = "mutable-atomic";
              msg =
                Printf.sprintf
                  "record %s has mutable fields but is published through \
                   an Atomic.t; fields are plain racy memory"
                  name;
            }
        else None)
      recs

(* ---- helping-discipline rules ------------------------------------------ *)

let last_seg tok =
  match String.rindex_opt tok '.' with
  | Some i -> String.sub tok (i + 1) (String.length tok - i - 1)
  | None -> tok

let cas_names = [ "cas"; "casn"; "dcas"; "dcss"; "compare_and_set" ]

(* A CAS {e call} site is a dotted path ([M.cas],
   [R.Atomic.compare_and_set]) that is not the target of a field
   assignment. A bare [cas] is a record label or type field
   ([cas : int], [cas = r.cases]); a dotted token followed by [<-] is a
   counter update ([counters.cas <- 0]). Neither performs a CAS. *)
let is_cas clean (tok, off) =
  List.mem (last_seg tok) cas_names
  && String.contains tok '.'
  &&
  let n = String.length clean in
  let j = ref (off + String.length tok) in
  while !j < n && clean.[!j] = ' ' do
    incr j
  done;
  not (!j + 1 < n && clean.[!j] = '<' && clean.[!j + 1] = '-')

let is_help tok =
  has_sub tok "help" || has_sub tok "moundify" || has_sub tok "complete"

let is_backoff tok =
  has_sub tok "ackoff" || has_sub tok "exponential" || has_sub tok "cpu_relax"

(* Deadline awareness by vocabulary: the [_until] operation family, the
   [expired]/[deadline] helpers, or a [no_deadline] plumb-through. *)
let is_deadline tok =
  has_sub tok "deadline" || has_sub tok "until" || has_sub tok "expired"

(* Top-level-ish definition chunks: a chunk starts at each [let] that
   begins a line at indentation <= 2 (file scope, or the body of one
   functor/module). [and] continuations stay in the same chunk, so a
   mutually recursive group is judged as a whole. *)
type chunk = { c_line : int; c_toks : (string * int) list; c_rec : bool }

let chunks clean idx =
  let at_margin off =
    let i = ref (off - 1) and ok = ref true and c = ref 0 in
    while !i >= 0 && clean.[!i] <> '\n' do
      if clean.[!i] <> ' ' then ok := false;
      decr i;
      incr c
    done;
    !ok && !c <= 2
  in
  let out = ref [] and cur = ref [] and cur_line = ref 0 in
  let flush () =
    match !cur with
    | [] -> ()
    | toks ->
        let toks = List.rev toks in
        out :=
          {
            c_line = !cur_line;
            c_toks = toks;
            c_rec = List.exists (fun (t, _) -> t = "rec") toks;
          }
          :: !out
  in
  List.iter
    (fun (tok, off) ->
      if tok = "let" && at_margin off then begin
        flush ();
        cur := [];
        cur_line := line_of idx off
      end;
      cur := (tok, off) :: !cur)
    (tokens clean);
  flush ();
  List.rev !out

(* Is the [.dirty] access at [off] (token [tok]) a branch test? Walk the
   line backwards over the receiver expression: a test is introduced by
   [if]/[while] (possibly through [not] and parentheses) or continues a
   condition after [&&]/[||]. [dirty = cur.dirty] in a record copy walks
   back to [=] and is not a test. *)
let dirty_test clean off =
  let i = ref (off - 1) in
  let continue_ = ref true and verdict = ref false in
  while !continue_ do
    while !i >= 0 && (clean.[!i] = ' ' || clean.[!i] = '(') do
      decr i
    done;
    if !i < 0 || clean.[!i] = '\n' then continue_ := false
    else if clean.[!i] = '&' || clean.[!i] = '|' then begin
      verdict := true;
      continue_ := false
    end
    else if is_ident_char clean.[!i] then begin
      let e = !i in
      while !i >= 0 && is_ident_char clean.[!i] do
        decr i
      done;
      let w = String.sub clean (!i + 1) (e - !i) in
      if w = "if" || w = "while" then begin
        verdict := true;
        continue_ := false
      end
      else if w <> "not" then continue_ := false
    end
    else continue_ := false
  done;
  !verdict

(* After a CAS in statement-looking position (a [;] precedes it), decide
   whether its value nevertheless flows somewhere: scan {e forward} past
   the call for the first decisive token at bracket depth <= 0. [in],
   [then], [else], [&&], [||] and [|>] mean the CAS ends a sequence whose
   value is bound or tested ([let ok = bump (); M.cas ... in ...] — the
   multiline-split shape that used to false-positive); a further [;],
   [done] or end of file means the value really is dropped. Unmatched
   closing brackets are transparent: the value flows out of the
   parenthesis to whatever consumes it there. *)
let value_consumed_ahead clean off =
  let n = String.length clean in
  let depth = ref 0 in
  let i = ref off in
  let verdict = ref None in
  while !verdict = None && !i < n do
    let c = clean.[!i] in
    if c = '(' || c = '[' || c = '{' then begin
      incr depth;
      incr i
    end
    else if c = ')' || c = ']' || c = '}' then begin
      decr depth;
      incr i
    end
    else if !depth > 0 then incr i
    else if c = ';' then verdict := Some false
    else if c = '&' && !i + 1 < n && clean.[!i + 1] = '&' then
      verdict := Some true
    else if c = '|' && !i + 1 < n && clean.[!i + 1] = '|' then
      verdict := Some true
    else if c = '|' && !i + 1 < n && clean.[!i + 1] = '>' then
      verdict := Some true
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char clean.[!i] do
        incr i
      done;
      match String.sub clean start (!i - start) with
      | "in" | "then" | "else" -> verdict := Some true
      | "done" -> verdict := Some false
      | _ -> ()
    end
    else incr i
  done;
  Option.value !verdict ~default:false

(* Is the CAS-family call at [off] discarded? [ignore (M.cas ...)],
   [let _ = M.cas ...], or statement position after [;] — unless the
   forward scan shows the sequence's value is consumed. *)
let cas_discarded clean off =
  let i = ref (off - 1) in
  let skip_ws () =
    while
      !i >= 0 && (clean.[!i] = ' ' || clean.[!i] = '\n' || clean.[!i] = '\t')
    do
      decr i
    done
  in
  let prev_word () =
    let e = !i in
    while !i >= 0 && is_ident_char clean.[!i] do
      decr i
    done;
    String.sub clean (!i + 1) (e - !i)
  in
  skip_ws ();
  if !i < 0 then false
  else if clean.[!i] = ';' then not (value_consumed_ahead clean off)
  else if clean.[!i] = '(' then begin
    decr i;
    skip_ws ();
    !i >= 0 && is_ident_char clean.[!i] && prev_word () = "ignore"
  end
  else if clean.[!i] = '=' then begin
    decr i;
    skip_ws ();
    !i >= 0 && is_ident_char clean.[!i] && prev_word () = "_"
  end
  else false

(* [lib/baselines] reproduces third-party algorithms structurally
   faithful to their publications; the mound's helping discipline does
   not bind them (the runtime-boundary rules still do). *)
let helping_exempt_path path =
  exempt_path path
  || String.split_on_char '/' path
     |> List.exists (fun seg -> seg = "baselines")

let scan_helping ~path ~file s idx =
  if helping_exempt_path path then []
  else
    List.concat_map
      (fun ch ->
        let has p = List.exists (fun (t, _) -> p t) ch.c_toks in
        let helped = has is_help in
        let has_cas_call = List.exists (is_cas s.clean) ch.c_toks in
        let out = ref [] in
        if ch.c_rec && has_cas_call && (not (has is_backoff)) && not helped
        then
          out :=
            {
              file;
              line = ch.c_line;
              rule = "retry-no-backoff";
              msg =
                "unbounded retry loop around a compare-and-set with \
                 neither backoff nor helping";
            }
            :: !out;
        (* Disjoint complement of retry-no-backoff: the loop does wait
           between attempts, but nothing bounds how long it keeps
           waiting — a dead peer wedges it forever. Helping loops are
           exempt (bounded by global progress, the lock-free argument);
           everything else must consult a deadline on the retry path. *)
        if
          ch.c_rec && has_cas_call && has is_backoff && (not helped)
          && not (has is_deadline)
        then
          out :=
            {
              file;
              line = ch.c_line;
              rule = "deadline-blind";
              msg =
                "retry loop backs off but never consults a deadline; \
                 unbounded waiting wedges behind a dead peer — thread \
                 ~deadline through (the _until / expired family) or \
                 record why waiting forever is safe";
            }
            :: !out;
        if ch.c_rec && not helped then
          List.iter
            (fun (t, off) ->
              if
                last_seg t = "dirty"
                && String.contains t '.'
                && dirty_test s.clean off
              then
                out :=
                  {
                    file;
                    line = line_of idx off;
                    rule = "dirty-spin";
                    msg =
                      "retry loop re-tests a dirty bit without helping; \
                       call the restoration routine (moundify) instead \
                       of spinning";
                  }
                  :: !out)
            ch.c_toks;
        if not helped then
          List.iter
            (fun (t, off) ->
              if is_cas s.clean (t, off) && cas_discarded s.clean off then
                out :=
                  {
                    file;
                    line = line_of idx off;
                    rule = "cas-discard";
                    msg =
                      "compare-and-set result silently discarded; branch \
                       on it (retry or help) or record why it is \
                       irrelevant";
                  }
                  :: !out)
            ch.c_toks;
        List.rev !out)
      (chunks s.clean idx)

(* ---- allocation-in-retry-loop rule ------------------------------------- *)

let alloc_calls = [ "Array.make"; "Array.init"; "Bytes.create"; "Bytes.make" ]

(* A [ref] token in expression position: preceded by a delimiter (a type
   position, [int ref], follows an identifier) and applied to an
   argument. *)
let ref_application clean off =
  let before =
    let i = ref (off - 1) in
    while !i >= 0 && (clean.[!i] = ' ' || clean.[!i] = '\n') do
      decr i
    done;
    !i < 0 || not (is_ident_char clean.[!i])
  in
  let after =
    let n = String.length clean in
    let j = ref (off + 3) in
    while !j < n && (clean.[!j] = ' ' || clean.[!j] = '\n') do
      incr j
    done;
    !j < n
    && (is_ident_char clean.[!j]
       || clean.[!j] = '(' || clean.[!j] = '[' || clean.[!j] = '{')
  in
  before && after

let is_alloc clean (tok, off) =
  List.exists (fun a -> tok = a || ends_with ~suffix:("." ^ a) tok) alloc_calls
  || tok = "lazy"
  || (tok = "ref" && ref_application clean off)

(* Allocation on the retry path: any allocation token after the [rec]
   keyword of a chunk that performs a CAS runs again on every failed
   attempt. Fresh records for the CAS itself are fine (record literals
   are not tokens); arrays, lazies and refs built per attempt are the
   pattern this PR's hot-path pass removes, so the lint keeps them from
   coming back. *)
let scan_alloc_retry ~path ~file s idx =
  if helping_exempt_path path then []
  else
    List.concat_map
      (fun ch ->
        if not (ch.c_rec && List.exists (is_cas s.clean) ch.c_toks) then []
        else
          let rec_off =
            List.find_map
              (fun (t, off) -> if t = "rec" then Some off else None)
              ch.c_toks
            |> Option.value ~default:0
          in
          List.filter_map
            (fun (t, off) ->
              if off > rec_off && is_alloc s.clean (t, off) then
                Some
                  {
                    file;
                    line = line_of idx off;
                    rule = "alloc-in-retry";
                    msg =
                      Printf.sprintf
                        "%s allocates on every CAS retry; hoist the fresh \
                         value out of the loop and reuse it across attempts"
                        t;
                  }
              else None)
            ch.c_toks)
      (chunks s.clean idx)

(* ---- format rules ------------------------------------------------------ *)

let scan_format ~file src =
  let out = ref [] in
  let add line rule msg = out := { file; line; rule; msg } :: !out in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i l ->
      let ln = i + 1 in
      if String.contains l '\t' then add ln "format" "tab character";
      let len = String.length l in
      if len > 0 && (l.[len - 1] = ' ' || l.[len - 1] = '\t') then
        add ln "format" "trailing whitespace")
    lines;
  let n = String.length src in
  if n > 0 && src.[n - 1] <> '\n' then
    add (List.length lines) "format" "missing final newline";
  List.rev !out

(* ---- entry points ------------------------------------------------------ *)

(* The token scan split in two, so a second engine (the AST analyzer in
   [lib/analysis]) can contribute findings to the {e same} waiver
   machinery: [scan_raw] produces the unfiltered token findings plus the
   stripped-source waiver info; [apply_waivers] filters any finding list
   through those waivers and judges waiver hygiene against the union —
   a waiver covering only an AST-level finding is live, not stale. *)
type raw = {
  raw_base : finding list;  (* token findings, pre-waiver *)
  raw_boundary_all : finding list;
      (* boundary findings before the allow-file filter; the file-waiver
         staleness check needs them *)
  raw_stripped : stripped;
}

let scan_raw ~path src =
  let s = strip src in
  let idx = line_index src in
  let boundary_all =
    scan_boundary ~path ~file:path s idx
    @ scan_mutable_atomic ~file:path s idx
  in
  let boundary = if s.file_waived then [] else boundary_all in
  let base =
    boundary
    @ scan_helping ~path ~file:path s idx
    @ scan_alloc_retry ~path ~file:path s idx
    @ scan_format ~file:path src
  in
  { raw_base = base; raw_boundary_all = boundary_all; raw_stripped = s }

let apply_waivers ~path raw ~extra =
  let s = raw.raw_stripped in
  let base = raw.raw_base @ extra in
  let boundary_all = raw.raw_boundary_all in
  (* Waiver hygiene: a waiver needs a reason and a live finding to
     waive. These findings are not themselves waivable. *)
  let hygiene =
    List.filter_map
      (fun (line, covered, reasoned) ->
        if not reasoned then
          Some
            {
              file = path;
              line;
              rule = "waiver";
              msg =
                "waiver without a reason; say why, e.g. (* lint: allow \
                 — setup-only id source *)";
            }
        else if not (List.exists (fun f -> List.mem f.line covered) base)
        then
          Some
            {
              file = path;
              line;
              rule = "waiver";
              msg = "stale waiver: no finding on the lines it covers";
            }
        else None)
      s.waivers
    @ List.filter_map
        (fun (line, reasoned) ->
          if not reasoned then
            Some
              {
                file = path;
                line;
                rule = "waiver";
                msg = "file waiver without a reason; say why";
              }
          else if boundary_all = [] then
            Some
              {
                file = path;
                line;
                rule = "waiver";
                msg = "stale file waiver: no boundary finding in the file";
              }
          else None)
        s.file_waivers
  in
  List.filter (fun f -> not (Hashtbl.mem s.waived f.line)) base @ hygiene
  |> List.sort (fun a b -> compare (a.line, a.rule) (b.line, b.rule))

let scan ~path src = apply_waivers ~path (scan_raw ~path src) ~extra:[]

let scan_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  scan ~path src

let rec files_under dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.concat_map (fun e ->
             let p = Filename.concat dir e in
             if Sys.is_directory p then files_under p
             else if
               Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
             then [ p ]
             else [])
  | exception Sys_error _ -> []

let scan_tree root = files_under root |> List.sort compare
                     |> List.concat_map scan_file
