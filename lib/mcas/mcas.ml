(** Software multi-word compare-and-swap.

    This is the synchronization substrate the paper's lock-free mound
    stands on: commodity hardware (and OCaml's [Atomic]) provides only
    single-word CAS, while Listing 2 of the paper needs DCAS and DCSS. We
    follow the same construction the paper uses — Harris, Fraser & Pratt,
    "A Practical Multi-Word Compare-and-Swap Operation" (DISC 2002):

    - a {e location} ({!Make.loc}) holds either a plain value or a
      descriptor left by an in-progress operation;
    - RDCSS (restricted double-compare single-swap) conditionally installs
      a CASN descriptor into one location, guarded by the operation's
      status word;
    - CASN installs descriptors into all locations in a global allocation
      order (for lock-freedom), decides the status with a single CAS, and
      writes back final values. Any thread that encounters a descriptor
      helps the operation to completion, so the construction is lock-free:
      a thread can only be delayed by another thread making progress.

    Cost structure matters for the evaluation: a DCAS here issues roughly
    five CASes on the uncontended path (two RDCSS installs at two CASes
    each, one status decision) plus two write-back CASes — the "5 CAS per
    DCAS" the paper's §IV compares against fine-grained locking.

    Equality is {e physical} ([==]), as in [Stdlib.Atomic]: users are
    expected to store freshly allocated immutable records, which is also
    what rules out ABA without the paper's version counters. *)

(** Operation statuses are immediate constructors, so physical equality on
    them is value equality. *)
type status = Undecided | Succeeded | Failed

module Make (A : Runtime.ATOMIC) = struct
  type 'a state =
    | V of 'a
    | R of 'a rdcss_desc
    | C of 'a casn_desc

  (* Descriptors carry [as_state], the exact wrapper block that gets
     installed into locations. CASes that install or remove a descriptor
     must compare against that one block — a freshly allocated [R rd] or
     [C d] would never be physically equal to what is in the location. *)
  and 'a casn_desc = {
    status : status A.t;
    ops : ('a loc * 'a * 'a) array;
    c_state : 'a state;
  }

  and 'a rdcss_desc = {
    casn : 'a casn_desc;
    loc : 'a loc;
    exp : 'a;
    r_state : 'a state;
  }

  and 'a loc = { st : 'a state A.t; id : int }

  let make_casn_desc status ops =
    let rec d = { status; ops; c_state = C d } in
    d

  let make_rdcss_desc casn loc exp =
    let rec rd = { casn; loc; exp; r_state = R rd } in
    rd

  (* Allocation order for descriptor installation. Uses the host atomic
     directly (not [A]): location creation is setup, not part of any
     simulated algorithm's hot path. *)
  let next_id = Stdlib.Atomic.make 0 (* lint: allow — setup-only id source *)

  let make v =
    (* lint: allow — id allocation is setup, outside the simulated heap *)
    { st = A.make (V v); id = Stdlib.Atomic.fetch_and_add next_id 1 }

  (* Resolve an RDCSS descriptor found in [rd.loc]: install the CASN
     descriptor unless the operation already failed, in which case the
     expected value is restored. Every thread that sees the descriptor
     performs this same CAS, so exactly one takes effect.

     The guard is [== Failed], not [== Undecided], deliberately: under
     weak-CAS semantics (the chaos runtime's spurious failures) an RDCSS
     descriptor can linger past a successful decision — the installer's
     completing CAS failed spuriously, nobody else resolved it, and the
     CASN decided [Succeeded] believing the location installed. Restoring
     [exp] then would undo a committed operation; installing [c_state]
     instead hands the location to the ordinary write-back/helping path.
     Under strong CAS a descriptor never survives the decision, so the
     two guards are equivalent there. *)
  let rdcss_complete rd =
    let installed =
      if A.get rd.casn.status == Failed then V rd.exp else rd.casn.c_state
    in
    ignore (A.compare_and_set rd.loc.st rd.r_state installed)

  (* Attempt to replace [V rd.exp] in [rd.loc] by the CASN descriptor,
     provided the status is still undecided. Returns the state that ruled
     the attempt: [V v] with [v == rd.exp] means the descriptor was (or no
     longer needed to be) installed; anything else is what the caller must
     deal with. *)
  let rec rdcss rd =
    let cur = A.get rd.loc.st in
    match cur with
    | R other ->
        rdcss_complete other;
        rdcss rd
    | V v when v == rd.exp ->
        if A.compare_and_set rd.loc.st cur rd.r_state then begin
          rdcss_complete rd;
          cur
        end
        else rdcss rd
    | V _ | C _ -> cur

  let rec casn_help (d : 'a casn_desc) : bool =
    let nops = Array.length d.ops in
    (* Phase 1: install the descriptor into every location, helping any
       other CASN we trip over. Since all operations install in increasing
       location id order, the one with the smallest conflicting location
       wins and the system as a whole makes progress. *)
    let rec install i =
      if i >= nops then Succeeded
      else
        let loc, exp, _ = d.ops.(i) in
        match rdcss (make_rdcss_desc d loc exp) with
        | C d' when d' == d -> install (i + 1)
        | C d' ->
            ignore (casn_help d');
            install i
        | V v when v == exp -> install (i + 1)
        | V _ -> Failed
        | R _ -> assert false
    in
    let outcome =
      if A.get d.status == Undecided then install 0 else A.get d.status
    in
    (* Decide. Loop rather than fire-and-forget: a spurious failure of
       the decision CAS (weak-CAS semantics) would otherwise leave the
       status [Undecided] while this helper proceeds to restore values —
       and a later helper would then re-execute the whole operation. *)
    while A.get d.status == Undecided do
      ignore (A.compare_and_set d.status Undecided outcome)
    done;
    let success = A.get d.status == Succeeded in
    (* Phase 2: write back. Failed helpers' CASes fail harmlessly. *)
    Array.iter
      (fun (loc, exp, n) ->
        ignore
          (A.compare_and_set loc.st d.c_state
             (V (if success then n else exp))))
      d.ops;
    success

  let rec get loc =
    match A.get loc.st with
    | V v -> v
    | R rd ->
        rdcss_complete rd;
        get loc
    | C d ->
        ignore (casn_help d);
        get loc

  (** Unconditional store. Only safe when no concurrent operation can hold
      a descriptor in [loc] (initialization, quiescent phases). *)
  let set loc v = A.set loc.st (V v)

  let rec cas loc exp v =
    let cur = A.get loc.st in
    match cur with
    | V x when x == exp ->
        if A.compare_and_set loc.st cur (V v) then true else cas loc exp v
    | V _ -> false
    | R rd ->
        rdcss_complete rd;
        cas loc exp v
    | C d ->
        ignore (casn_help d);
        cas loc exp v

  (** [casn ops] atomically: checks that every [(loc, exp, _)] holds [exp]
      (physically) and, if all do, stores each new value. Locations must
      be distinct. *)
  let casn ops =
    match Array.length ops with
    | 0 -> true
    | 1 ->
        let loc, exp, n = ops.(0) in
        cas loc exp n
    | _ ->
        let ops = Array.copy ops in
        Array.sort (fun (a, _, _) (b, _, _) -> compare a.id b.id) ops;
        casn_help (make_casn_desc (A.make Undecided) ops)

  (** Double compare-and-swap over two distinct locations. *)
  let dcas l1 e1 n1 l2 e2 n2 = casn [| (l1, e1, n1); (l2, e2, n2) |]

  (** Double-compare single-swap: writes [l2 <- n2] only if [l1] holds
      [e1] and [l2] holds [e2]. Implemented with a DCAS whose first leg
      rewrites [e1] to itself, exactly as the paper's implementation
      chooses to (§VI-A). *)
  let dcss l1 e1 l2 e2 n2 = casn [| (l1, e1, e1); (l2, e2, n2) |]
end
