(** Software multi-word compare-and-swap (Harris, Fraser & Pratt, DISC
    2002) — the DCAS/DCSS substrate the paper's lock-free mound needs on
    single-CAS hardware. Lock-free: any thread that encounters another
    operation's descriptor helps it complete.

    Equality is {e physical} ([==]) as in [Stdlib.Atomic]; store freshly
    allocated immutable values, which also rules out ABA.

    Cost structure (measured by `repro ablation costs`): an uncontended
    DCAS/DCSS issues ~7 hardware CASes — the "several CAS per software
    DCAS" that the paper's §IV cost comparison builds on. *)

(** Status of an in-flight CASN; immediate constructors, so physical
    equality on them is value equality. *)
type status = Undecided | Succeeded | Failed

module Make (_ : Runtime.ATOMIC) : sig
  type 'a loc
  (** A shared location holding values of type ['a]. *)

  val make : 'a -> 'a loc

  val get : 'a loc -> 'a
  (** Read the current value, helping any in-flight operation first. *)

  val set : 'a loc -> 'a -> unit
  (** Unconditional store. Only safe when no concurrent operation can
      hold a descriptor in the location (initialization, quiescence). *)

  val cas : 'a loc -> 'a -> 'a -> bool
  (** [cas loc expected v] — single-location CAS with helping. *)

  val casn : ('a loc * 'a * 'a) array -> bool
  (** [casn ops] atomically checks every [(loc, expected, _)] and, if all
      match, stores each new value. Locations must be distinct; they are
      locked in allocation order internally, so callers need not sort. *)

  val dcas : 'a loc -> 'a -> 'a -> 'a loc -> 'a -> 'a -> bool
  (** [dcas l1 e1 n1 l2 e2 n2] — double compare-and-swap over two
      distinct locations. *)

  val dcss : 'a loc -> 'a -> 'a loc -> 'a -> 'a -> bool
  (** [dcss l1 e1 l2 e2 n2] — double-compare single-swap: writes
      [l2 <- n2] only if [l1 = e1] and [l2 = e2]. Implemented with a DCAS
      whose first leg rewrites [e1] to itself, as the paper does
      (§VI-A). *)
end
