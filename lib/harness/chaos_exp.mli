(** Crash-stop sweep experiments over the chaos runtime: crash a victim
    thread at every one of its shared accesses in turn and check the
    survivors' progress, linearizability and element conservation. Used
    by [repro chaos] and the chaos test tier. See the implementation
    header for the workload design. *)

(** The chaos-wrapped simulator runtime the sweeps run on; exposed so
    tests can build further experiments on the same fault stream. *)
module CR : sig
  include Runtime.S

  val configure : Chaos.plan -> unit

  val current_plan : unit -> Chaos.plan

  val counters : Chaos.counters

  val reset_counters : unit -> unit
end

type outcome =
  | Completed  (** every survivor finished its script *)
  | Leaked_lock
      (** survivors finished, but the victim left a node locked (or the
          invariant broken) — the structure is poisoned for later users *)
  | Wedged of int list  (** these survivors lost progress (watchdog) *)

type run_report = {
  crash_point : int;  (** victim's fatal shared-access index; 0 = none *)
  outcome : outcome;
  linearizable : bool option;
      (** surviving small-key history; [None] when survivors wedged *)
  conserved : bool option;
      (** post-run drain matches the books; [None] when not drainable *)
}

type sweep = {
  structure : string;
  plan : Chaos.plan;
  victim_accesses : int;  (** crash coordinate space (fault-free run) *)
  runs : run_report list;
  faults : Chaos.counters;  (** summed over all runs of the sweep *)
  ops : Mound.Stats.Ops.t;  (** summed over all runs of the sweep *)
  stats : Mound.Stats.t;  (** fullness snapshot after the last run *)
}

val add_ops : Mound.Stats.Ops.t -> Mound.Stats.Ops.t -> unit
(** [add_ops into o] accumulates [o]'s counters into [into] — used to
    merge per-component counter snapshots (e.g. a Bounded front-end's
    shed/rejected counts with the structure's own retries). *)

val sweep_lf : ?plan:Chaos.plan -> ?stride:int -> seed:int64 -> unit -> sweep
(** Crash-stop sweep on the lock-free mound: crash points
    [1, 1+stride, ...] up to the victim's access count. *)

val sweep_lock :
  ?plan:Chaos.plan -> ?stride:int -> seed:int64 -> unit -> sweep
(** Same sweep on the locking mound. Runs that wedge or leak a lock are
    reported as such (never drained, never hung). *)

val completed : sweep -> int

val leaked : sweep -> int

val wedged : sweep -> int

val all_linearizable : sweep -> bool
(** No run's surviving history failed the linearizability check. *)

val all_conserved : sweep -> bool
(** No drained run's element books failed to balance. *)

val fingerprint : sweep -> string
(** Deterministic digest of every outcome, verdict and counter: equal
    plans and seeds must yield byte-for-byte equal fingerprints. *)

val print_sweep : Format.formatter -> sweep -> unit
