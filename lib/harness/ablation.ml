(** Ablation experiments for the design choices DESIGN.md calls out.

    - {!threshold_sweep}: the paper sets THRESHOLD = 8 and reports that
      "changing this value did not affect performance" (§VI-A); the sweep
      quantifies that on the simulator.
    - {!kcss_vs_dcss}: §III-D rejects whole-path k-CSS insertion in favour
      of the parent/child DCSS; this measures the gap.
    - {!approx_quality}: §V argues probabilistic extract-min returns
      near-minimal elements; this measures the rank error distribution.
    - {!sync_costs}: §IV argues costs in units of CAS (a software DCAS ≈
      5 CAS; a locking moundify needs 2J+1 CAS to the lock-free 5J); the
      simulator's access counters measure the real numbers per
      operation. *)

module Lf_sim = Mound.Lf.Make (Sim.Runtime) (Mound.Int_ord)
module Lock_sim = Mound.Lock.Make (Sim.Runtime) (Mound.Int_ord)

(* ---------------- THRESHOLD sweep ---------------- *)

type threshold_point = {
  threshold : int;
  insert_throughput : float;  (** kops/s, simulated *)
  final_depth : int;
}

let threshold_sweep ?(profile = Sim.Profile.x86) ?(threads = 6)
    ?(ops_per_thread = 1 lsl 10) ?(seed = 5L)
    ?(thresholds = [ 1; 2; 4; 8; 16; 32 ]) () =
  List.map
    (fun threshold ->
      let q = Lf_sim.create ~threshold () in
      let body _tid =
        for _ = 1 to ops_per_thread do
          Lf_sim.insert q (Sim.Sched.rand_int Workload.key_range)
        done
      in
      let r = Sim.Sched.run ~profile ~seed (Array.make threads body) in
      let seconds = Sim.Profile.seconds profile r.span in
      {
        threshold;
        insert_throughput =
          float_of_int (threads * ops_per_thread) /. seconds /. 1000.;
        final_depth = Lf_sim.depth q;
      })
    thresholds

let print_threshold ppf points =
  Format.fprintf ppf
    "Ablation: THRESHOLD leaf probes (lock-free mound, insert)@.";
  Format.fprintf ppf "%-10s %-22s %s@." "THRESHOLD" "insert kops/s (sim)"
    "final depth";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-10d %-22.0f %d@." p.threshold p.insert_throughput
        p.final_depth)
    points

(* ---------------- k-CSS vs DCSS insert ---------------- *)

type insert_variant_point = { variant : string; throughput : float; cas : int }

let kcss_vs_dcss ?(profile = Sim.Profile.x86) ?(threads = 6)
    ?(ops_per_thread = 1 lsl 10) ?(seed = 5L) () =
  List.map
    (fun (variant, insert) ->
      let q = Lf_sim.create () in
      let body _tid =
        for _ = 1 to ops_per_thread do
          insert q (Sim.Sched.rand_int Workload.key_range)
        done
      in
      let r = Sim.Sched.run ~profile ~seed (Array.make threads body) in
      let seconds = Sim.Profile.seconds profile r.span in
      {
        variant;
        throughput =
          float_of_int (threads * ops_per_thread) /. seconds /. 1000.;
        cas = r.cases;
      })
    [
      ("insert (DCSS, paper)", Lf_sim.insert);
      ("insert_kcss (whole path)", Lf_sim.insert_kcss);
    ]

let print_kcss ppf points =
  Format.fprintf ppf
    "Ablation: validate whole search path (k-CSS) vs parent/child (DCSS)@.";
  Format.fprintf ppf "%-28s %-18s %s@." "insert variant" "kops/s (sim)"
    "total CAS issued";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-28s %-18.0f %d@." p.variant p.throughput p.cas)
    points

(* ---------------- probabilistic extract-min quality ---------------- *)

type approx_stats = {
  max_level : int;
  samples : int;
  exact_fraction : float;  (** extracted the true minimum *)
  mean_rank : float;  (** 0 = minimum *)
  p95_rank : int;
  max_rank : int;
}

(** Runs on the sequential mound: after each [extract_approx], the rank of
    the returned element (how many smaller elements remained) is computed
    against a mirror multiset. *)
let approx_quality ?(n = 1 lsl 14) ?(samples = 1 lsl 12) ?(seed = 9L)
    ?(max_levels = [ 0; 1; 2; 3 ]) () =
  List.map
    (fun max_level ->
      let module S = Mound.Seq_int in
      let q = S.create ~seed () in
      let rng = Prng.create (Int64.add seed 1L) in
      let mirror = ref [] in
      for _ = 1 to n do
        let v = Prng.int rng Workload.key_range in
        S.insert q v;
        mirror := v :: !mirror
      done;
      let sorted = ref (List.sort compare !mirror) in
      let ranks = ref [] in
      for _ = 1 to samples do
        match S.extract_approx ~max_level q with
        | None -> ()
        | Some v ->
            (* rank = index of v in the sorted mirror *)
            let rec rank i = function
              | [] -> assert false
              | x :: _ when x = v -> i
              | _ :: rest -> rank (i + 1) rest
            in
            let r = rank 0 !sorted in
            ranks := r :: !ranks;
            let rec remove = function
              | [] -> []
              | x :: rest -> if x = v then rest else x :: remove rest
            in
            sorted := remove !sorted
      done;
      let ranks = List.sort compare !ranks in
      let m = List.length ranks in
      let nth k = List.nth ranks (min (m - 1) k) in
      {
        max_level;
        samples = m;
        exact_fraction =
          float_of_int (List.length (List.filter (( = ) 0) ranks))
          /. float_of_int (max 1 m);
        mean_rank =
          List.fold_left (fun a r -> a +. float_of_int r) 0. ranks
          /. float_of_int (max 1 m);
        p95_rank = nth (95 * m / 100);
        max_rank = nth (m - 1);
      })
    max_levels

let print_approx ppf stats =
  Format.fprintf ppf
    "Extension: probabilistic extract-min quality (rank 0 = true minimum)@.";
  Format.fprintf ppf "%-10s %-9s %-11s %-11s %-9s %s@." "max_level" "samples"
    "exact frac" "mean rank" "p95 rank" "max rank";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-10d %-9d %-11.3f %-11.1f %-9d %d@." s.max_level
        s.samples s.exact_fraction s.mean_rank s.p95_rank s.max_rank)
    stats

(* ---------------- synchronization cost accounting ---------------- *)

type cost_row = {
  structure : string;
  operation : string;
  reads_per_op : float;
  writes_per_op : float;
  cas_per_op : float;
}

(* Measure one structure's per-op shared-memory profile: populate outside
   the simulation (free), then run a single simulated thread doing [ops]
   operations and read the scheduler's access counters. *)
let measure_costs ~name ~make_insert_extract ~prepopulate ~ops =
  let insert, extract = make_insert_extract () in
  Sim.Sched.seed_ambient 41L;
  let rng = Prng.create 43L in
  prepopulate (fun () -> insert (Prng.int rng Workload.key_range));
  let run op_name f =
    let r = Sim.Sched.run ~seed:44L [| (fun _ -> for _ = 1 to ops do f () done) |] in
    {
      structure = name;
      operation = op_name;
      reads_per_op = float_of_int r.reads /. float_of_int ops;
      writes_per_op = float_of_int r.writes /. float_of_int ops;
      cas_per_op = float_of_int r.cases /. float_of_int ops;
    }
  in
  let insert_row =
    run "insert" (fun () -> insert (Prng.int rng Workload.key_range))
  in
  let extract_row = run "extractmin" (fun () -> ignore (extract ())) in
  [ insert_row; extract_row ]

let sync_costs ?(n = 1 lsl 12) ?(ops = 512) () =
  let prepop insert =
    for _ = 1 to n do
      insert ()
    done
  in
  List.concat_map
    (fun (maker : Pq.maker) ->
      let q = maker.make ~capacity:(4 * n) in
      measure_costs ~name:q.name
        ~make_insert_extract:(fun () -> (q.insert, q.extract_min))
        ~prepopulate:prepop ~ops)
    Pq.On_sim.extended_set

let print_costs ppf rows =
  Format.fprintf ppf
    "Synchronization operations per op (simulator, 1 thread, %s)@."
    "structure prepopulated with 2^12 random keys";
  Format.fprintf ppf "%-18s %-12s %10s %10s %10s@." "structure" "op" "reads"
    "writes" "CAS";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s %-12s %10.1f %10.1f %10.1f@." r.structure
        r.operation r.reads_per_op r.writes_per_op r.cas_per_op)
    rows

(** CAS cost of the DCAS/DCSS primitives themselves, the paper's "5 CAS
    per software DCAS" (§IV). *)
let primitive_costs () =
  let module M = Mcas.Make (Sim.Runtime.Atomic) in
  let count f =
    let r = Sim.Sched.run ~seed:45L [| (fun _ -> f ()) |] in
    (r.reads, r.cases)
  in
  let a = M.make 1 and b = M.make 2 in
  (* [drop] deliberately sinks each primitive's result: this measures
     the cost of the attempt, not its outcome (the cells are
     uncontended, so every attempt succeeds anyway). *)
  let drop (_ : bool) = () in
  let cas_counts = count (fun () -> drop (M.cas a (M.get a) 3)) in
  let dcas_counts =
    count (fun () -> drop (M.dcas a (M.get a) 4 b (M.get b) 5))
  in
  let dcss_counts = count (fun () -> drop (M.dcss a (M.get a) b (M.get b) 6)) in
  [ ("cas", cas_counts); ("dcas", dcas_counts); ("dcss", dcss_counts) ]

let print_primitives ppf rows =
  Format.fprintf ppf "Mcas primitive footprint (uncontended, simulator)@.";
  Format.fprintf ppf "%-8s %8s %8s@." "op" "reads" "CAS";
  List.iter
    (fun (name, (reads, cas)) ->
      Format.fprintf ppf "%-8s %8d %8d@." name reads cas)
    rows
