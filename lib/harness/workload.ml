(** Workload definitions shared by the simulator and real-domain drivers.

    The four panels of the paper's Fig. 2 (§VI-C..F), plus key-order
    generators for the sequential structure experiments (Tables I–III). *)

type panel = Insert | Extract | Mixed | Extract_many

let panel_name = function
  | Insert -> "insert"
  | Extract -> "extractmin"
  | Mixed -> "mixed"
  | Extract_many -> "extractmany"

let panel_of_string = function
  | "insert" -> Some Insert
  | "extractmin" | "extract" -> Some Extract
  | "mixed" -> Some Mixed
  | "extractmany" | "extract-many" -> Some Extract_many
  | _ -> None

(** Key range for random keys; a wide range keeps accidental duplicates
    rare, as in the paper's "randomly selected values". *)
let key_range = 1 lsl 30

(** Insertion orders for the randomization experiments (Table I–III):
    [Random] is the average case, [Increasing] the worst (every list has
    one element), [Decreasing] the best (the mound degenerates to one
    sorted list at the root). *)
type order = Random_order | Increasing | Decreasing

let order_name = function
  | Random_order -> "Random"
  | Increasing -> "Increasing"
  | Decreasing -> "Decreasing"

(** [keys ~order ~n ~seed] materializes an insertion sequence. *)
let keys ~order ~n ~seed =
  match order with
  | Increasing -> Array.init n (fun i -> i)
  | Decreasing -> Array.init n (fun i -> n - 1 - i)
  | Random_order ->
      let rng = Prng.create seed in
      Array.init n (fun _ -> Prng.int rng key_range)

(** One thread's share of a panel. [rand] must be the executing thread's
    own generator; [ops] is the operation budget. Returns the number of
    {e elements} processed (for [Extract_many], calls can cover many
    elements; for the others it equals completed operations). *)
let run_thread ~(panel : panel) ~(q : Pq.t) ~rand ~ops () =
  match panel with
  | Insert ->
      for _ = 1 to ops do
        q.insert (rand key_range)
      done;
      ops
  | Extract ->
      let done_ = ref 0 in
      for _ = 1 to ops do
        match q.extract_min () with Some _ -> incr done_ | None -> ()
      done;
      !done_
  | Mixed ->
      let done_ = ref 0 in
      for _ = 1 to ops do
        if rand 2 = 0 then begin
          q.insert (rand key_range);
          incr done_
        end
        else
          match q.extract_min () with
          | Some _ -> incr done_
          | None -> incr done_ (* an empty extract is still an operation *)
      done;
      !done_
  | Extract_many ->
      let got = ref 0 in
      let rec drain () =
        match q.extract_many () with
        | [] -> ()
        | l ->
            got := !got + List.length l;
            drain ()
      in
      drain ();
      !got
