(** Workload definitions shared by the simulator and real-domain drivers.

    The four panels of the paper's Fig. 2 (§VI-C..F), plus key-order
    generators for the sequential structure experiments (Tables I–III). *)

type panel = Insert | Extract | Mixed | Extract_many

let panel_name = function
  | Insert -> "insert"
  | Extract -> "extractmin"
  | Mixed -> "mixed"
  | Extract_many -> "extractmany"

let panel_of_string = function
  | "insert" -> Some Insert
  | "extractmin" | "extract" -> Some Extract
  | "mixed" -> Some Mixed
  | "extractmany" | "extract-many" -> Some Extract_many
  | _ -> None

(** Key range for random keys; a wide range keeps accidental duplicates
    rare, as in the paper's "randomly selected values". *)
let key_range = 1 lsl 30

(** Insertion orders for the randomization experiments (Table I–III):
    [Random] is the average case, [Increasing] the worst (every list has
    one element), [Decreasing] the best (the mound degenerates to one
    sorted list at the root). *)
type order = Random_order | Increasing | Decreasing

let order_name = function
  | Random_order -> "Random"
  | Increasing -> "Increasing"
  | Decreasing -> "Decreasing"

(** [keys ~order ~n ~seed] materializes an insertion sequence. *)
let keys ~order ~n ~seed =
  match order with
  | Increasing -> Array.init n (fun i -> i)
  | Decreasing -> Array.init n (fun i -> n - 1 - i)
  | Random_order ->
      let rng = Prng.create seed in
      Array.init n (fun _ -> Prng.int rng key_range)

(** Zipfian key distribution for the overload scenarios: real queues see
    skewed keys (a few hot priorities, a long cold tail), which
    concentrates mound traffic on few nodes. Sampled by inverse CDF over
    a precomputed cumulative weight table of [ranks] ranks with exponent
    [skew] (≈1 is the classic web-trace value). *)
type zipf = { cum : float array; stride : int }

let zipf ?(ranks = 1024) ?(skew = 0.99) () =
  let w = Array.init ranks (fun i -> 1. /. (float_of_int (i + 1) ** skew)) in
  let total = Array.fold_left ( +. ) 0. w in
  let cum = Array.make ranks 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i x ->
      acc := !acc +. x;
      cum.(i) <- !acc /. total)
    w;
  { cum; stride = key_range / ranks }

(** [zipf_key z ~rand] draws a key: rank 0 (the hottest) maps to the
    smallest keys, so skew pressure lands near the mound's root. [rand]
    is the caller's thread-local generator, as in {!run_thread}. *)
let zipf_key z ~rand =
  let res = 1 lsl 20 in
  let u = float_of_int (rand res) /. float_of_int res in
  let lo = ref 0
  and hi = ref (Array.length z.cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cum.(mid) < u then lo := mid + 1 else hi := mid
  done;
  (!lo * z.stride) + rand z.stride

(** Key distribution for the core panels: [Uniform] is the paper's
    "randomly selected values"; [Zipf] reuses the overload tier's skewed
    generator so the insert-side panels can exercise hot-key pressure
    near the mound roots. *)
type dist = Uniform | Zipf

let dist_name = function Uniform -> "uniform" | Zipf -> "zipf"

let dist_of_string = function
  | "uniform" -> Some Uniform
  | "zipf" -> Some Zipf
  | _ -> None

(* One shared inverse-CDF table, built eagerly at module load: it is
   read-only after construction (safe to share across domains), and
   building it inside [run_thread] would put a fixed setup cost in the
   timed window. *)
let default_zipf = zipf ()

(** [key ~dist ~rand] draws one insert key. *)
let key ~dist ~rand =
  match dist with
  | Uniform -> rand key_range
  | Zipf -> zipf_key default_zipf ~rand

(** One thread's share of a panel. [rand] must be the executing thread's
    own generator; [ops] is the operation budget. Returns the number of
    {e elements} processed (for [Extract_many], calls can cover many
    elements; for the others it equals completed operations). *)
let run_thread ?(dist = Uniform) ~(panel : panel) ~(q : Pq.t) ~rand ~ops () =
  match panel with
  | Insert ->
      for _ = 1 to ops do
        q.insert (key ~dist ~rand)
      done;
      ops
  | Extract ->
      let done_ = ref 0 in
      for _ = 1 to ops do
        match q.extract_min () with Some _ -> incr done_ | None -> ()
      done;
      !done_
  | Mixed ->
      let done_ = ref 0 in
      for _ = 1 to ops do
        if rand 2 = 0 then begin
          q.insert (key ~dist ~rand);
          incr done_
        end
        else
          match q.extract_min () with
          | Some _ -> incr done_
          | None -> incr done_ (* an empty extract is still an operation *)
      done;
      !done_
  | Extract_many ->
      let got = ref 0 in
      let rec drain () =
        match q.extract_many () with
        | [] -> ()
        | l ->
            got := !got + List.length l;
            drain ()
      in
      drain ();
      !got
