(** Machine-readable kill-matrix artifacts — schema [mound-mutation/1].

    Built on {!Bench_json}'s emitter/parser like {!Lint_json}, with the
    same self-validation discipline: the emitter validates what it is
    about to print, and the tests parse the emitted string back and
    re-validate.

    Shape:

    {v
    { "schema": "mound-mutation/1",
      "files": ["lib/core/lf_mound.ml", ...],
      "rules": ["aba-risk", ...],
      "operators": [ {"name": ..., "descr": ..., "rules": [...],
                      "twin": null | "size-drift"} ],
      "count": N, "killed": K, "kill_rate": K/N,
      "rule_kills": [ {"rule": ..., "kills": n} ],
      "mutants": [ {"id": ..., "op": ..., "file": ..., "line": ...,
                    "note": ..., "status": "killed" | "survived" |
                    "escalated" | "benign" | "gap",
                    "killed_by": [...], "twin": null | ...,
                    "detail": ...} ] }
    v}

    [count], [killed], [kill_rate] and [rule_kills] are all redundant
    with [mutants] by design, and {!validate} rejects every possible
    mismatch — a hand-edited matrix cannot quietly misreport its own
    kill rate. *)

open Bench_json

let schema_version = "mound-mutation/1"

let statuses = [ "killed"; "survived"; "escalated"; "benign"; "gap" ]

(** One mutant row, decoded. *)
type mrow = {
  mr_id : string;
  mr_op : string;
  mr_file : string;
  mr_line : int;
  mr_note : string;
  mr_status : string;
  mr_killed_by : string list;
  mr_twin : string option;
  mr_detail : string;
}

let doc (k : Analysis.Killmatrix.t)
    (escalations : Mutation_exp.escalation list) : json =
  let status_of (r : Analysis.Killmatrix.row) =
    let id = r.r_mutant.Analysis.Mutate.m_id in
    match
      List.find_opt (fun e -> e.Mutation_exp.e_id = id) escalations
    with
    | Some e -> (e.Mutation_exp.e_status, e.e_twin, e.e_detail)
    | None ->
        if r.r_killed_by <> [] then
          ("killed", None, String.concat "," r.r_killed_by)
        else
          ( "survived",
            Analysis.Killmatrix.twin_of_op r.r_mutant.Analysis.Mutate.m_op,
            "escalation not run" )
  in
  let killed = List.length (Analysis.Killmatrix.killed k) in
  let total = List.length k.k_rows in
  Obj
    [
      ("schema", Str schema_version);
      ("files", Arr (List.map (fun f -> Str f) k.k_files));
      ("rules", Arr (List.map (fun r -> Str r) k.k_rules));
      ( "operators",
        Arr
          (List.map
             (fun (o : Analysis.Mutate.op) ->
               Obj
                 [
                   ("name", Str o.op_name);
                   ("descr", Str o.op_descr);
                   ("rules", Arr (List.map (fun r -> Str r) o.op_rules));
                   ( "twin",
                     match o.op_twin with None -> Null | Some t -> Str t );
                 ])
             Analysis.Mutate.catalog) );
      ("count", Num (float_of_int total));
      ("killed", Num (float_of_int killed));
      ( "kill_rate",
        Num (if total = 0 then 0. else float_of_int killed /. float_of_int total)
      );
      ( "rule_kills",
        Arr
          (List.map
             (fun (rule, n) ->
               Obj [ ("rule", Str rule); ("kills", Num (float_of_int n)) ])
             (Analysis.Killmatrix.rule_kills k)) );
      ( "mutants",
        Arr
          (List.map
             (fun (r : Analysis.Killmatrix.row) ->
               let status, twin, detail = status_of r in
               let m = r.r_mutant in
               Obj
                 [
                   ("id", Str m.Analysis.Mutate.m_id);
                   ("op", Str m.m_op);
                   ("file", Str m.m_file);
                   ("line", Num (float_of_int m.m_line));
                   ("note", Str m.m_note);
                   ("status", Str status);
                   ( "killed_by",
                     Arr (List.map (fun x -> Str x) r.r_killed_by) );
                   ("twin", match twin with None -> Null | Some t -> Str t);
                   ("detail", Str detail);
                 ])
             k.k_rows) );
    ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let get k o =
  match member k o with
  | Some v -> v
  | None -> raise (Malformed (Printf.sprintf "missing %S" k))

let int_exn what j =
  let f = num_exn j in
  if Float.of_int (int_of_float f) <> f then
    raise (Malformed ("non-integral " ^ what));
  int_of_float f

let str_list_exn what j =
  match j with
  | Arr xs -> List.map str_exn xs
  | _ -> raise (Malformed (what ^ " must be an array of strings"))

(** Decode the mutants array; raises {!Bench_json.Malformed} on shape
    errors. *)
let rows_of (j : json) : mrow list =
  match member "mutants" j with
  | Some (Arr ms) ->
      List.map
        (fun m ->
          {
            mr_id = str_exn (get "id" m);
            mr_op = str_exn (get "op" m);
            mr_file = str_exn (get "file" m);
            mr_line = int_exn "line" (get "line" m);
            mr_note = str_exn (get "note" m);
            mr_status = str_exn (get "status" m);
            mr_killed_by = str_list_exn "killed_by" (get "killed_by" m);
            mr_twin =
              (match get "twin" m with
              | Null -> None
              | Str t -> Some t
              | _ -> raise (Malformed "twin must be null or a string"));
            mr_detail = str_exn (get "detail" m);
          })
        ms
  | Some _ -> raise (Malformed "mutants must be an array")
  | None -> raise (Malformed "missing \"mutants\"")

let rule_kills_of (j : json) : (string * int) list =
  match member "rule_kills" j with
  | Some (Arr ks) ->
      List.map
        (fun k -> (str_exn (get "rule" k), int_exn "kills" (get "kills" k)))
        ks
  | Some _ -> raise (Malformed "rule_kills must be an array")
  | None -> raise (Malformed "missing \"rule_kills\"")

let validate (j : json) : (unit, string) result =
  let ( let* ) = Result.bind in
  try
    let* () =
      match member "schema" j with
      | Some (Str s) when s = schema_version -> Ok ()
      | Some (Str s) ->
          Error (Printf.sprintf "schema %S, want %S" s schema_version)
      | _ -> Error "missing schema tag"
    in
    let* () =
      match member "files" j with
      | Some (Arr (_ :: _ as fs))
        when List.for_all (function Str _ -> true | _ -> false) fs ->
          Ok ()
      | _ -> Error "files must be a non-empty array of strings"
    in
    let rules =
      match member "rules" j with
      | Some r -> str_list_exn "rules" r
      | None -> raise (Malformed "missing \"rules\"")
    in
    let rows = rows_of j in
    let* () =
      if List.exists (fun r -> r.mr_line < 1) rows then
        Error "line must be >= 1"
      else Ok ()
    in
    let* () =
      match
        List.find_opt (fun r -> not (List.mem r.mr_status statuses)) rows
      with
      | Some r -> Error (Printf.sprintf "unknown status %S" r.mr_status)
      | None -> Ok ()
    in
    let* () =
      match
        List.find_opt
          (fun r -> r.mr_status = "killed" <> (r.mr_killed_by <> []))
          rows
      with
      | Some r ->
          Error
            (Printf.sprintf "mutant %s: status %S inconsistent with killed_by"
               r.mr_id r.mr_status)
      | None -> Ok ()
    in
    let* () =
      match member "count" j with
      | Some (Num c) when int_of_float c = List.length rows -> Ok ()
      | Some (Num c) ->
          Error
            (Printf.sprintf "count %d does not match %d mutants"
               (int_of_float c) (List.length rows))
      | _ -> Error "missing count"
    in
    let killed_rows =
      List.length (List.filter (fun r -> r.mr_status = "killed") rows)
    in
    let* () =
      match member "killed" j with
      | Some (Num c) when int_of_float c = killed_rows -> Ok ()
      | Some (Num c) ->
          Error
            (Printf.sprintf "killed %d does not match %d killed mutants"
               (int_of_float c) killed_rows)
      | _ -> Error "missing killed"
    in
    let* () =
      match member "kill_rate" j with
      | Some (Num r) ->
          let want =
            if rows = [] then 0.
            else float_of_int killed_rows /. float_of_int (List.length rows)
          in
          if Float.abs (r -. want) < 1e-9 then Ok ()
          else Error (Printf.sprintf "kill_rate %g does not match %g" r want)
      | _ -> Error "missing kill_rate"
    in
    let kills = rule_kills_of j in
    let* () =
      match List.find_opt (fun ru -> not (List.mem_assoc ru kills)) rules with
      | Some ru -> Error (Printf.sprintf "rule %S missing from rule_kills" ru)
      | None -> Ok ()
    in
    let recount rule =
      List.length (List.filter (fun r -> List.mem rule r.mr_killed_by) rows)
    in
    match
      List.find_opt (fun (rule, n) -> recount rule <> n) kills
    with
    | Some (rule, n) ->
        Error
          (Printf.sprintf "rule_kills[%s] = %d but mutants record %d kills"
             rule n (recount rule))
    | None -> Ok ()
  with Malformed m -> Error m
