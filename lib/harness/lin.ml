(** Linearizability checking of priority-queue histories.

    A history is a set of operations with invocation/response timestamps
    taken from the simulator's virtual clock. The checker is the classic
    Wing & Gong search: repeatedly pick an operation that no other pending
    operation strictly precedes (its response before the candidate's
    invocation), apply it to a sequential sorted-multiset model, and
    recurse; memoizing on the set of applied operations keeps the search
    tractable in practice (the model state is a function of that set,
    because each extract's return value is fixed by the history). *)

type op =
  | Ins of int
  | Ins_many of int list
  | Ext of int option
  | Ext_many of int list

type event = { inv : int; resp : int; op : op }

(** Record one thread's operations against a [Harness.Pq.t] inside a
    simulation; returns the thread body and a closure to collect events
    after the run. [~now] supplies the timestamp clock — the default,
    {!Sim.Sched.now}, is only globally ordered under the default
    smallest-clock policy; schedule explorers pass {!Sim.Sched.events},
    which any policy keeps consistent with execution order. *)
let recorder ?(now = Sim.Sched.now) (q : Pq.t) script =
  let events = ref [] in
  let body =
    List.iter (fun action ->
        let inv = now () in
        let op =
          match action with
          | `Insert v ->
              q.insert v;
              Ins v
          | `Insert_many b ->
              q.insert_many b;
              Ins_many b
          | `Extract -> Ext (q.extract_min ())
          | `Extract_many -> Ext_many (q.extract_many ())
          | `Extract_approx -> Ext (q.extract_approx ())
        in
        let resp = now () in
        events := { inv; resp; op } :: !events)
  in
  ((fun () -> body script), fun () -> !events)

exception Too_large

(** [check events] — is the history linearizable with respect to a
    priority queue initially holding [init]? At most 62 events.

    [rank] (default 1) selects the specification's strictness: an
    extraction may return any of the [rank] smallest elements of the
    model at its linearization point. [rank = 1] is the exact
    priority-queue spec; larger ranks are the relaxed spec satisfied by
    the MultiQueue, whose [extract_min] pops a {e sampled} queue's
    minimum. Emptiness is never relaxed — [Ext None] and [Ext_many []]
    still require an empty model — and every returned element must
    exist, so relaxation never excuses lost or duplicated elements. *)
let check ?(init = []) ?(rank = 1) events =
  let events = Array.of_list events in
  let n = Array.length events in
  if n > 62 then raise Too_large;
  let visited = Hashtbl.create 1024 in
  (* model is an ascending list *)
  let rec insert_sorted v = function
    | [] -> [ v ]
    | x :: rest as l -> if v <= x then v :: l else x :: insert_sorted v rest
  in
  (* Remove each element of the (sorted) [l] from the (sorted) [model]
     multiset; a merge-style walk. *)
  let rec subtract model l =
    match (model, l) with
    | _, [] -> Some model
    | [], _ :: _ -> None
    | m :: mrest, x :: xrest ->
        if m = x then subtract mrest xrest
        else if m < x then
          match subtract mrest l with
          | Some rest -> Some (m :: rest)
          | None -> None
        else None
  in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a <= b && sorted rest
  in
  (* Remove [v] from the (sorted) model if it sits among the first
     [rank] elements. *)
  let rec remove_within k v model =
    match model with
    | [] -> None
    | x :: rest ->
        if x = v then Some rest
        else if k <= 1 then None
        else (
          match remove_within (k - 1) v rest with
          | Some rest' -> Some (x :: rest')
          | None -> None)
  in
  let rec within k v = function
    | [] -> false
    | x :: rest -> x = v || (k > 1 && within (k - 1) v rest)
  in
  let apply model = function
    | Ins v -> Some (insert_sorted v model)
    | Ins_many b ->
        (* a batched insert is atomic at its linearization point: the
           whole multiset lands at once *)
        Some (List.fold_left (fun m v -> insert_sorted v m) model b)
    | Ext None -> if model = [] then Some [] else None
    | Ext (Some v) -> remove_within rank v model
    | Ext_many [] -> if model = [] then Some [] else None
    | Ext_many (hd :: _ as l) ->
        (* an extract-many takes one node's whole sorted list whose head
           is the (rank-relaxed) minimum; the tail is NOT the k smallest *)
        if sorted l && within rank hd model then subtract model l else None
  in
  let rec explore done_mask model =
    if done_mask = (1 lsl n) - 1 then true
    else if Hashtbl.mem visited done_mask then false
    else begin
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let e = events.(!i) in
        if done_mask land (1 lsl !i) = 0 then begin
          (* e may be linearized next iff no other pending op finished
             strictly before e began *)
          let preceded = ref false in
          for j = 0 to n - 1 do
            if j <> !i && done_mask land (1 lsl j) = 0 then
              if events.(j).resp < e.inv then preceded := true
          done;
          if not !preceded then
            match apply model e.op with
            | Some model' ->
                if explore (done_mask lor (1 lsl !i)) model' then ok := true
            | None -> ()
        end;
        incr i
      done;
      if not !ok then Hashtbl.add visited done_mask ();
      !ok
    end
  in
  explore 0 (List.sort compare init)

(** Smallest [rank] for which {!check} accepts the history, searched up
    to [limit] — the relaxation a run {e actually} exhibited, recorded
    rather than hoped for. [None] means even [rank = limit] does not
    linearize: an element was lost, duplicated, invented, or emptiness
    was misreported, which no rank relaxation excuses. *)
let min_rank ?init ?(limit = 8) events =
  let rec go k =
    if k > limit then None
    else if check ?init ~rank:k events then Some k
    else go (k + 1)
  in
  go 1
