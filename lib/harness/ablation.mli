(** Ablation experiments for the design choices DESIGN.md calls out:
    THRESHOLD sensitivity (§VI-A), whole-path k-CSS vs parent/child DCSS
    insertion (§III-D), probabilistic extract-min quality (§V), and
    per-operation synchronization-cost accounting (§IV). *)

(** {1 THRESHOLD sweep} *)

type threshold_point = {
  threshold : int;
  insert_throughput : float;  (** kops/s, simulated *)
  final_depth : int;
}

val threshold_sweep :
  ?profile:Sim.Profile.t ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?seed:int64 ->
  ?thresholds:int list ->
  unit ->
  threshold_point list

val print_threshold : Format.formatter -> threshold_point list -> unit

(** {1 k-CSS vs DCSS insertion} *)

type insert_variant_point = { variant : string; throughput : float; cas : int }

val kcss_vs_dcss :
  ?profile:Sim.Profile.t ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?seed:int64 ->
  unit ->
  insert_variant_point list

val print_kcss : Format.formatter -> insert_variant_point list -> unit

(** {1 Probabilistic extract-min quality} *)

type approx_stats = {
  max_level : int;
  samples : int;
  exact_fraction : float;  (** extracted the true minimum *)
  mean_rank : float;  (** 0 = minimum *)
  p95_rank : int;
  max_rank : int;
}

val approx_quality :
  ?n:int ->
  ?samples:int ->
  ?seed:int64 ->
  ?max_levels:int list ->
  unit ->
  approx_stats list
(** Rank-error distribution of [extract_approx] against a mirror
    multiset, per probing depth. *)

val print_approx : Format.formatter -> approx_stats list -> unit

(** {1 Synchronization cost accounting} *)

type cost_row = {
  structure : string;
  operation : string;
  reads_per_op : float;
  writes_per_op : float;
  cas_per_op : float;
}

val sync_costs : ?n:int -> ?ops:int -> unit -> cost_row list
(** Per-operation shared-memory footprint of every structure, measured
    with the simulator's access counters on a single thread. *)

val print_costs : Format.formatter -> cost_row list -> unit

val primitive_costs : unit -> (string * (int * int)) list
(** [(name, (reads, cas))] for the cas/dcas/dcss primitives — the paper's
    "a software DCAS costs ~5 CAS" (§IV). *)

val print_primitives :
  Format.formatter -> (string * (int * int)) list -> unit
