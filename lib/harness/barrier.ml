(** Sense-reversing spin barrier for real-domain experiments.

    All measurement threads block here until everyone is ready, so the
    timed region starts simultaneously. Reusable across rounds: the sense
    flips each time the last arrival releases the others. Goes through
    {!Runtime.Real} rather than [Stdlib.Atomic] directly so the runtime
    boundary lint holds for the whole harness. *)

module A = Runtime.Real.Atomic

type t = {
  parties : int;
  arrived : int A.t;
  sense : bool A.t;
}

let create parties =
  if parties < 1 then invalid_arg "Barrier.create";
  { parties; arrived = A.make 0; sense = A.make false }

let wait t =
  let my_sense = not (A.get t.sense) in
  if A.fetch_and_add t.arrived 1 = t.parties - 1 then begin
    A.set t.arrived 0;
    (* lint: allow — single-writer store: only the last arrival (the
       thread whose fetch_and_add returned [parties - 1]) reaches this
       branch, so no concurrent update can land between its read of the
       sense and this flip *)
    A.set t.sense my_sense
  end
  else
    while A.get t.sense <> my_sense do
      Runtime.Real.cpu_relax ()
    done
