(** Driver and printer for the paper's Fig. 2 (throughput vs threads,
    eight panels = 4 workloads × 2 machines).

    Machines are simulator profiles ({!Sim.Profile.niagara2} /
    {!Sim.Profile.x86}); each panel prints one series per structure in
    thousands of operations per second, the paper's axis unit. *)

type scale = {
  ops_per_thread : int;  (** paper: 2^16 *)
  mixed_init : int;  (** paper: 2^16 *)
  many_init : int;  (** paper: 2^20 *)
  threads_niagara : int list;
  threads_x86 : int list;
}

let paper_scale =
  {
    ops_per_thread = 1 lsl 16;
    mixed_init = 1 lsl 16;
    many_init = 1 lsl 20;
    threads_niagara = [ 1; 2; 4; 8; 16; 24; 32; 48; 64 ];
    threads_x86 = [ 1; 2; 4; 6; 8; 10; 12 ];
  }

(** Reduced scale for quick runs (bench/main, tests). The thread sweeps
    keep the inflection points (core count, hardware-thread count). *)
let quick_scale =
  {
    ops_per_thread = 1 lsl 10;
    mixed_init = 1 lsl 12;
    many_init = 1 lsl 14;
    threads_niagara = [ 1; 4; 8; 16; 32; 64 ];
    threads_x86 = [ 1; 2; 4; 6; 8; 12 ];
  }

let init_size_for scale (panel : Workload.panel) =
  match panel with
  | Insert | Extract -> 0
  | Mixed -> scale.mixed_init
  | Extract_many -> scale.many_init

let threads_for scale (profile : Sim.Profile.t) =
  if profile.name = "niagara2" then scale.threads_niagara
  else scale.threads_x86

(** Run one panel on one machine profile. *)
let run ?(scale = quick_scale) ?(makers = Pq.On_sim.paper_set) ~profile
    ~panel () =
  Sim_exp.run_panel ~profile ~panel
    ~thread_counts:(threads_for scale profile)
    ~ops_per_thread:scale.ops_per_thread
    ~init_size:(init_size_for scale panel) makers

let print_panel ppf ~(profile : Sim.Profile.t) ~panel
    (series : Sim_exp.series list) =
  Format.fprintf ppf "@.Fig. 2 [%s %s] throughput (1000 ops/sec) vs threads@."
    profile.name (Workload.panel_name panel);
  let threads =
    match series with
    | [] -> []
    | s :: _ -> List.map (fun (p : Sim_exp.point) -> p.threads) s.points
  in
  Format.fprintf ppf "%-18s" "threads";
  List.iter (fun t -> Format.fprintf ppf "%10d" t) threads;
  Format.fprintf ppf "@.";
  List.iter
    (fun (s : Sim_exp.series) ->
      Format.fprintf ppf "%-18s" s.structure;
      List.iter
        (fun (p : Sim_exp.point) ->
          Format.fprintf ppf "%10.0f" (p.throughput /. 1000.))
        s.points;
      Format.fprintf ppf "@.")
    series

(** Run and print every panel of Fig. 2 for both machines. *)
let run_all ?scale ?makers ppf () =
  List.iter
    (fun profile ->
      List.iter
        (fun panel ->
          let series = run ?scale ?makers ~profile ~panel () in
          print_panel ppf ~profile ~panel series)
        [ Workload.Insert; Workload.Extract; Workload.Mixed;
          Workload.Extract_many ])
    [ Sim.Profile.niagara2; Sim.Profile.x86 ]
