(** The DPOR program catalog: small fixed concurrent programs over the
    repo's structures, shaped for exhaustive exploration by
    {!Check.explore} — 2–3 threads, 3–6 operations total.

    Each priority-queue program records per-thread histories with
    {!Lin.recorder} (timestamped by {!Sim.Sched.events}, the clock that
    stays consistent with execution order under the explorer's policies)
    and checks, after every complete execution: the structure's own
    quiescent invariant, key conservation (prepopulated ∪ inserted =
    extracted ∪ drained as multisets), and — for structures that claim
    it — linearizability of the recorded history. The quiescently
    consistent skip list gets the conservation oracle only.

    Shared by [test_dpor] and the [repro dpor] subcommand. *)

type script =
  [ `Insert of int
  | `Insert_many of int list
  | `Extract
  | `Extract_many
  | `Extract_approx ]
  list

(** Build a {!Check.program} over any priority queue. [lin:false]
    downgrades the oracle to invariant + conservation (for quiescently
    consistent structures); [rank] (default 1 = exact) relaxes the
    linearizability oracle to rank-[k] semantics for relaxed queues —
    extractions may return any of the top-[rank] keys, while emptiness
    and conservation stay exact. *)
let pq_program ~name ~(make : unit -> Pq.t) ?(prepopulate = [])
    ~(lin : bool) ?(rank = 1) (scripts : script list) : Check.program =
  let prepare () =
    (* Construction and prepopulation run outside the simulation, on the
       ambient generator; reseeding it pins the initial structure (e.g.
       which leaf a randomized mound insert probes), so every
       re-execution starts from an identical state — the explorer's
       replayed prefixes depend on it. *)
    Sim.Sched.seed_ambient 11L;
    let q = make () in
    List.iter q.insert prepopulate;
    let recorded =
      List.map (fun s -> Lin.recorder ~now:Sim.Sched.events q s) scripts
    in
    let bodies =
      Array.of_list (List.map (fun (body, _) _tid -> body ()) recorded)
    in
    let verdict () =
      let events = List.concat_map (fun (_, collect) -> collect ()) recorded in
      if not (q.check ()) then Some "quiescent invariant violated"
      else begin
        let inserted =
          prepopulate
          @ List.concat_map
              (List.concat_map (function
                | `Insert v -> [ v ]
                | `Insert_many b -> b
                | _ -> []))
              scripts
        in
        let extracted =
          List.concat_map
            (function
              | { Lin.op = Ext (Some v); _ } -> [ v ]
              | { Lin.op = Ext_many l; _ } -> l
              | _ -> [])
            events
        in
        let rec drain acc =
          match q.extract_min () with
          | Some v -> drain (v :: acc)
          | None -> acc
        in
        let drained = drain [] in
        if
          List.sort compare (extracted @ drained)
          <> List.sort compare inserted
        then Some "key conservation violated"
        else if lin && not (Lin.check ~init:prepopulate ~rank events) then
          Some
            (if rank = 1 then "history not linearizable"
             else
               Printf.sprintf "history not rank-%d relaxed-linearizable" rank)
        else None
      end
    in
    { Check.bodies; verdict }
  in
  { Check.name; prepare }

(* The standard shape: one queue prepopulated with a middle key, one
   thread racing insert-then-extract against a second thread's insert.
   Small enough to explore exhaustively on every structure, adversarial
   enough to exercise insert/extract and extract/extract conflicts. *)
let standard ~name ~lin (maker : Pq.maker) =
  pq_program ~name
    ~make:(fun () -> maker.Pq.make ~capacity:64)
    ~prepopulate:[ 2 ] ~lin
    [ [ `Insert 1; `Extract ]; [ `Insert 3 ] ]

(* CASN helping: two threads issue overlapping double-word CASNs from
   the same initial state, with legs in opposite orders. Exactly one
   must win, and both locations must agree afterwards — a torn CASN or
   lost help shows up as mixed values or two winners. *)
let mcas_program : Check.program =
  let module M = Mcas.Make (Sim.Runtime.Atomic) in
  let prepare () =
    let a = M.make 0 and b = M.make 0 in
    let won = Array.make 2 false in
    let bodies =
      [|
        (fun _ -> won.(0) <- M.casn [| (a, 0, 1); (b, 0, 1) |]);
        (fun _ -> won.(1) <- M.casn [| (b, 0, 2); (a, 0, 2) |]);
      |]
    in
    let verdict () =
      let va = M.get a and vb = M.get b in
      if va <> vb then
        Some (Printf.sprintf "torn casn: a=%d b=%d" va vb)
      else
        match (won.(0), won.(1), va) with
        | true, false, 1 | false, true, 2 -> None
        | false, false, _ -> Some "both casns failed from initial state"
        | true, true, _ -> Some "both casns claim success"
        | _, _, v ->
            Some (Printf.sprintf "winner/value mismatch: value %d" v)
    in
    { Check.bodies; verdict }
  in
  { Check.name = "mcas"; prepare }

(* extract-many racing an insert: the root CAS (lock-free) or root lock
   (locking) conflicts with the insert's validation; the Ext_many history
   entry exercises the checker's whole-list linearization rule. *)
let many ~name ~lin (maker : Pq.maker) =
  pq_program ~name
    ~make:(fun () -> maker.Pq.make ~capacity:64)
    ~prepopulate:[ 2 ] ~lin
    [ [ `Insert 1; `Extract_many ]; [ `Insert 3 ] ]

(* Batched insert racing a plain insert, followed by the inserting
   thread's own extract. [insert_many] splices one node prefix per
   CAS/lock pair, so it is only atomic as a whole when no concurrent
   extract can observe the gap between splices; here the sole extract is
   program-ordered after the batch completes, which makes the atomic
   [Lin.Ins_many] spec sound while still exploring every interleaving of
   the splices with the racing insert's validation. *)
let batch ~name ~lin (maker : Pq.maker) =
  pq_program ~name
    ~make:(fun () -> maker.Pq.make ~capacity:64)
    ~prepopulate:[ 2 ] ~lin
    [ [ `Insert_many [ 1; 4 ]; `Extract ]; [ `Insert 3 ] ]

(* Batch/extract-many round trip with an extract racing the batch. The
   batch [1; 1] is bounded by the prepopulated root key 2, so the whole
   batch lands in a single splice (one CAS / one lock pair) — genuinely
   atomic, so the racing extract cannot observe a partial batch and the
   atomic spec is exact. *)
let batch_roundtrip ~name ~lin (maker : Pq.maker) =
  pq_program ~name
    ~make:(fun () -> maker.Pq.make ~capacity:64)
    ~prepopulate:[ 2 ] ~lin
    [ [ `Insert_many [ 1; 1 ]; `Extract_many ]; [ `Extract ] ]

(* extract-approx probes a random shallow node, so its return value is
   only quiescently meaningful — conservation oracle only (lin:false). *)
let approx ~name (maker : Pq.maker) =
  pq_program ~name
    ~make:(fun () -> maker.Pq.make ~capacity:64)
    ~prepopulate:[ 2 ] ~lin:false
    [ [ `Insert 1; `Extract_approx ]; [ `Insert 3 ] ]

(* Relaxed MultiQueue entries. Every [extract_min] returns the exact
   minimum of some inner queue, so the keys it may skip are exactly the
   keys residing in the other queues — with these tiny key sets the
   worst placement leaves at most 3 smaller keys elsewhere, hence
   [rank:4]. Emptiness and conservation stay exact (the relaxed spec
   never excuses a lost, invented or spurious-empty answer), so DPOR
   still certifies the global size counter and the two-choice locking
   protocol. [stickiness:8] exceeds each thread's op count: the queue
   choice is one ambient draw per thread, keeping re-executions pinned
   by [seed_ambient] just like the mounds' randomized insert probes. *)
let mq_make () =
  (Pq.On_sim.multiqueue ~queues:2 ~stickiness:8 ~domains:2 ()).Pq.make
    ~capacity:64

(* The standard shape on the relaxed front-end. *)
let mq_standard =
  pq_program ~name:"multiqueue" ~make:mq_make ~prepopulate:[ 2 ] ~lin:true
    ~rank:4
    [ [ `Insert 1; `Extract ]; [ `Insert 3 ] ]

(* Two domains racing two-choice delete-min on a prepopulated queue:
   both sample the cached tops, both may try-lock the same best queue,
   and the loser must fail over — the adversarial shape for the
   lock/top/size protocol. *)
let mq_race =
  pq_program ~name:"multiqueue-race" ~make:mq_make ~prepopulate:[ 1; 2; 3 ]
    ~lin:true ~rank:4
    [ [ `Extract ]; [ `Extract ] ]

let catalog : (string * Check.program) list =
  [
    ("lf-mound", standard ~name:"lf-mound" ~lin:true Pq.On_sim.mound_lf);
    ("lock-mound", standard ~name:"lock-mound" ~lin:true Pq.On_sim.mound_lock);
    ("lf-mound-many", many ~name:"lf-mound-many" ~lin:true Pq.On_sim.mound_lf);
    ( "lock-mound-many",
      many ~name:"lock-mound-many" ~lin:true Pq.On_sim.mound_lock );
    ("lf-mound-batch", batch ~name:"lf-mound-batch" ~lin:true Pq.On_sim.mound_lf);
    ( "lock-mound-batch",
      batch ~name:"lock-mound-batch" ~lin:true Pq.On_sim.mound_lock );
    ( "lf-mound-batch-rt",
      batch_roundtrip ~name:"lf-mound-batch-rt" ~lin:true Pq.On_sim.mound_lf );
    ("lf-mound-approx", approx ~name:"lf-mound-approx" Pq.On_sim.mound_lf);
    ("multiqueue", mq_standard);
    ("multiqueue-race", mq_race);
    ("stm-heap", standard ~name:"stm-heap" ~lin:true Pq.On_sim.stm_heap);
    ("skiplist", standard ~name:"skiplist" ~lin:false Pq.On_sim.skiplist);
    ("mcas", mcas_program);
  ]

let find name = List.assoc_opt name catalog
let names () = List.map fst catalog
