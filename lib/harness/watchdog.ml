(* lint: allow-file — the watchdog is wall-clock infrastructure by
   definition: it spawns a monitor domain and reads real time to convert
   a wedged Domain.join into a fast failure. Nothing here touches the
   simulated heap. *)

(** Wall-clock watchdog for real-domain tests.

    A wedged domain (a genuinely lost lock, a livelock the chaos tier
    failed to provoke deterministically) turns [Domain.join] into a
    silent CI hang. OCaml gives no way to unwind a running domain from
    outside, so the honest fallback is a monitor that converts the hang
    into a loud, fast failure: print which join timed out and exit the
    process nonzero. The simulator's virtual-time watchdog
    ([Sim.Sched.run ~watchdog]) plays the same role deterministically;
    this is its blunt wall-clock cousin for tests that must run on real
    domains. *)

let default_timeout_s = 60.

(** [join_all ?timeout_s ?label doms] joins every domain in [doms],
    aborting the whole process (exit 124, like timeout(1)) with a
    diagnostic on stderr if they have not all returned within
    [timeout_s] (default {!default_timeout_s}) of the call. *)
let join_all ?(timeout_s = default_timeout_s) ?(label = "join_all") doms =
  let joined = Atomic.make false in
  let monitor =
    Domain.spawn (fun () ->
        let t0 = Unix.gettimeofday () in
        let rec watch () =
          if Atomic.get joined then ()
          else if Unix.gettimeofday () -. t0 > timeout_s then begin
            Printf.eprintf
              "[watchdog] %s: %d domain(s) still running after %.0fs — \
               wedged; aborting\n\
               %!"
              label (Array.length doms) timeout_s;
            exit 124
          end
          else begin
            Unix.sleepf 0.05;
            watch ()
          end
        in
        watch ())
  in
  Array.iter Domain.join doms;
  Atomic.set joined true;
  Domain.join monitor
