(** Experiment harness: everything needed to regenerate the paper's
    evaluation.

    - {!Tables}: the sequential structure experiments (Tables I–IV);
    - {!Fig2}: the throughput-versus-threads panels (Fig. 2), run on the
      virtual-time simulator under the [niagara2] and [x86] machine
      profiles;
    - {!Ablation}: THRESHOLD sweep, k-CSS vs DCSS insert, probabilistic
      extract-min quality, and per-operation synchronization-cost
      accounting;
    - {!Sim_exp} / {!Real_exp}: the underlying drivers (simulator /
      real domains);
    - {!Pq}: uniform handles over every priority-queue implementation;
    - {!Workload}: panel and key-order definitions;
    - {!Barrier}: start-line synchronization for real-domain runs;
    - {!Lin}: Wing–Gong linearizability checking of recorded histories,
      exact or rank-relaxed;
    - {!Rank_exp}: rank-error measurement for the relaxed MultiQueue —
      timestamped concurrent drains replayed against an oracle
      multiset, behind [repro rank];
    - {!Chaos_exp}: crash-stop sweeps under fault injection — the
      progress-guarantee evaluation behind [repro chaos];
    - {!Dpor_exp}: the fixed small programs model-checked by
      {!Check.explore} — behind [repro dpor] and the DPOR test tier;
    - {!Progress_exp}: the fixed programs certified by
      {!Liveness.certify} — behind [repro progress] and the progress
      test tier;
    - {!Watchdog}: wall-clock join watchdog turning a wedged real-domain
      test into a loud fast failure instead of a CI hang;
    - {!Lint_json}: the mound-lint/1 emitter/validator behind
      [repro lint --json];
    - {!Mutation_exp}: dynamic escalation twins for kill-matrix
      survivors — behind [repro mutate] and the mutation test tier;
    - {!Mutation_json}: the mound-mutation/1 emitter/validator behind
      [repro mutate --json]. *)

module Barrier = Barrier
module Pq = Pq
module Workload = Workload
module Sim_exp = Sim_exp
module Real_exp = Real_exp
module Bench_json = Bench_json
module Lint_json = Lint_json
module Tables = Tables
module Fig2 = Fig2
module Ablation = Ablation
module Lin = Lin
module Rank_exp = Rank_exp
module Chaos_exp = Chaos_exp
module Dpor_exp = Dpor_exp
module Progress_exp = Progress_exp
module Watchdog = Watchdog
module Mutation_exp = Mutation_exp
module Mutation_json = Mutation_json
