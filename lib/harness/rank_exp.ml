(* lint: allow-file — this module is a real-hardware driver like
   Real_exp: it spawns domains and reads wall-derived clocks by
   design. *)

(** Rank-error measurement for relaxed priority queues.

    Methodology per "Engineering MultiQueues": pre-populate a queue with
    a known key multiset, let [threads] domains drain it concurrently
    while timestamping every extraction, then replay the merged,
    stamp-ordered extraction log against an oracle multiset. An
    extraction's {e rank error} is the number of elements still present
    in the oracle that are strictly smaller than the value it returned —
    0 for an exact [extract_min], and for a MultiQueue a measured
    quantity whose distribution (mean / max per thread count) is the
    price paid for scalability.

    Timestamps are [Runtime.Real.monotonic_ns] read immediately after
    each extraction returns, so the replay order approximates the real
    linearization order; inversions between near-simultaneous
    extractions can shift individual errors by a few ranks but leave the
    distribution intact (each inversion swaps two adjacent replay
    steps). The exact structures double as a calibration: their measured
    mean stays near zero, bounding the noise this approximation adds.

    The per-extraction rank query must not be quadratic in the drain
    size, so the oracle is a Fenwick (binary-indexed) tree over the
    compressed key universe: O(log K) per query/removal. *)

type point = { stamp : int; value : int }

type rank_stats = {
  extractions : int;  (** successful extractions replayed *)
  empty_returns : int;  (** [None] returns (drain raced dry) *)
  unmatched : int;
      (** extracted values absent from the oracle — always 0 unless the
          structure invented or duplicated an element *)
  mean_error : float;
  max_error : int;
}

type cell = {
  threads : int;
  trial : Real_exp.trial;  (** wall-clock timing of the drain *)
  stats : rank_stats;
}

type series = { structure : string; cells : cell list }

(* --- Fenwick tree over the compressed key universe ----------------- *)

module Fenwick = struct
  type t = { tree : int array; n : int }

  let create n = { tree = Array.make (n + 1) 0; n }

  (* add [d] at 1-based index [i] *)
  let add t i d =
    let i = ref i in
    while !i <= t.n do
      t.tree.(!i) <- t.tree.(!i) + d;
      i := !i + (!i land - !i)
    done

  (* sum of indices [1..i] *)
  let prefix t i =
    let i = ref i and s = ref 0 in
    while !i > 0 do
      s := !s + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !s
end

(* Binary search [v] in the sorted distinct-key array; the keys come
   from the populated multiset, so extracted values are present unless
   the structure invented one. *)
let find_key keys v =
  let lo = ref 0 and hi = ref (Array.length keys - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < v then lo := mid + 1 else hi := mid
  done;
  if Array.length keys > 0 && keys.(!lo) = v then Some !lo else None

(** Replay a stamp-ordered extraction log against the oracle holding the
    [init] multiset. *)
let replay ~init (log : point list) =
  let distinct = List.sort_uniq compare (Array.to_list init) in
  let keys = Array.of_list distinct in
  let k = Array.length keys in
  let fw = Fenwick.create k in
  Array.iter
    (fun v ->
      match find_key keys v with
      | Some i -> Fenwick.add fw (i + 1) 1
      | None -> assert false)
    init;
  let extractions = ref 0
  and unmatched = ref 0
  and sum = ref 0
  and max_e = ref 0 in
  List.iter
    (fun p ->
      match find_key keys p.value with
      | None -> incr unmatched
      | Some i ->
          if Fenwick.prefix fw (i + 1) - Fenwick.prefix fw i <= 0 then
            (* all copies of this key already drained: a duplicate *)
            incr unmatched
          else begin
            let smaller = Fenwick.prefix fw i in
            incr extractions;
            sum := !sum + smaller;
            if smaller > !max_e then max_e := smaller;
            Fenwick.add fw (i + 1) (-1)
          end)
    log;
  {
    extractions = !extractions;
    empty_returns = 0;
    unmatched = !unmatched;
    mean_error =
      (if !extractions = 0 then 0.
       else float_of_int !sum /. float_of_int !extractions);
    max_error = !max_e;
  }

(** One timed drain: populate with [threads * ops_per_thread] keys, let
    every domain extract its share with timestamps, replay. Same
    barrier / pre-barrier clock-origin protocol as {!Real_exp}. *)
let run_rank_trial ?(seed = 7L) ~threads ~ops_per_thread (maker : Pq.maker) =
  let n = threads * ops_per_thread in
  let q = maker.make ~capacity:n in
  let rng = Prng.create (Int64.add seed 17L) in
  let init = Array.init n (fun _ -> Prng.int rng Workload.key_range) in
  Array.iter q.Pq.insert init;
  let barrier = Barrier.create (threads + 1) in
  let logs = Array.make threads [] in
  let empties = Array.make threads 0 in
  let starts = Array.make threads 0. in
  let stops = Array.make threads 0. in
  let domains =
    Array.init threads (fun tid ->
        (* lint: allow — per-domain slot arrays: each domain writes only
           its own [tid] index; [Domain.join] is the synchronization *)
        Domain.spawn (fun () ->
            Barrier.wait barrier;
            starts.(tid) <- Unix.gettimeofday (); (* lint: allow — writes only its own slot *)
            let log = ref [] and empty = ref 0 in
            for _ = 1 to ops_per_thread do
              match q.Pq.extract_min () with
              | Some v ->
                  let stamp = Runtime.Real.monotonic_ns () in
                  (* lint: allow — [log] never leaves this domain's closure;
                     only its final contents are published via [logs.(tid)] *)
                  log := { stamp; value = v } :: !log
              | None -> incr empty
            done;
            (* program order restored: the merge's stable sort then keeps
               intra-thread order when coarse clocks produce stamp ties *)
            logs.(tid) <- List.rev !log; (* lint: allow — writes only its own slot *)
            empties.(tid) <- !empty; (* lint: allow — writes only its own slot *)
            stops.(tid) <- Unix.gettimeofday () (* lint: allow — writes only its own slot *)))
  in
  let t0 = Unix.gettimeofday () in
  Barrier.wait barrier;
  Array.iter Domain.join domains;
  let last_stop = Array.fold_left max neg_infinity stops in
  let seconds = last_stop -. t0 in
  let merged =
    Array.to_list logs |> List.concat
    |> List.sort (fun a b -> compare a.stamp b.stamp)
  in
  let stats = replay ~init merged in
  let stats =
    { stats with empty_returns = Array.fold_left ( + ) 0 empties }
  in
  let ops = stats.extractions in
  let first_start = Array.fold_left min infinity starts in
  let last_start = Array.fold_left max neg_infinity starts in
  let trial : Real_exp.trial =
    {
      seconds;
      ops;
      throughput = (if seconds > 0. then float_of_int ops /. seconds else 0.);
      skew_s = last_start -. first_start;
      thread_points =
        List.init threads (fun tid ->
            {
              Real_exp.tid;
              start_s = starts.(tid) -. t0;
              stop_s = stops.(tid) -. t0;
              ops = List.length logs.(tid);
            });
    }
  in
  (trial, stats)

(** Warmup + measured trials for one (structure, thread count) cell.
    Rank stats are aggregated across the measured trials: extraction
    counts and error sums add, the max is the max. *)
let run_rank_cell ?(seed = 7L) ?(warmup = 1) ?(trials = 3) ~threads
    ~ops_per_thread (maker : Pq.maker) =
  let trial_seed i = Int64.add seed (Int64.of_int (1000 * i)) in
  for i = 1 to warmup do
    ignore (run_rank_trial ~seed:(trial_seed (-i)) ~threads ~ops_per_thread maker)
  done;
  let measured =
    List.init trials (fun i ->
        run_rank_trial ~seed:(trial_seed i) ~threads ~ops_per_thread maker)
  in
  let trial = fst (List.nth measured (trials - 1)) in
  let agg =
    List.fold_left
      (fun acc (_, s) ->
        {
          extractions = acc.extractions + s.extractions;
          empty_returns = acc.empty_returns + s.empty_returns;
          unmatched = acc.unmatched + s.unmatched;
          mean_error =
            acc.mean_error +. (s.mean_error *. float_of_int s.extractions);
          max_error = max acc.max_error s.max_error;
        })
      {
        extractions = 0;
        empty_returns = 0;
        unmatched = 0;
        mean_error = 0.;
        max_error = 0;
      }
      measured
  in
  let agg =
    {
      agg with
      mean_error =
        (if agg.extractions = 0 then 0.
         else agg.mean_error /. float_of_int agg.extractions);
    }
  in
  ( { threads; trial; stats = agg },
    List.map fst measured )

let run_rank_series ?seed ?warmup ?trials ~thread_counts ~ops_per_thread
    (maker : Pq.maker) =
  let name = (maker.make ~capacity:16).name in
  let cells =
    List.map
      (fun threads ->
        run_rank_cell ?seed ?warmup ?trials ~threads ~ops_per_thread maker)
      thread_counts
  in
  ({ structure = name; cells = List.map fst cells }, List.map snd cells)

(** Emit the rank sweep as a mound-bench/1 document: the standard
    series/cells timing skeleton (so the generic tooling parses and
    validates it) with a ["rank"] key carrying the per-cell rank-error
    stats — extra keys are legal under the schema's validator. *)
let to_bench_json ?(seed = 7L) ?(warmup = 1) ?(trials = 3) ~ops_per_thread
    results =
  let series_json =
    List.map
      (fun ((s : series), per_cell_trials) ->
        {
          Real_exp.structure = s.structure;
          cells =
            List.map2
              (fun (c : cell) measured ->
                {
                  Real_exp.threads = c.threads;
                  warmup;
                  trials = measured;
                  summary = Real_exp.summarize measured;
                  counters = None;
                })
              s.cells per_cell_trials;
        })
      results
  in
  let doc =
    Bench_json.of_panel ~panel:"rankerror" ~seed ~warmup
      ~measured_trials:trials ~ops_per_thread ~init_size:0 series_json
  in
  let rank_json =
    Bench_json.Arr
      (List.concat_map
         (fun ((s : series), _) ->
           List.map
             (fun (c : cell) ->
               Bench_json.Obj
                 [
                   ("structure", Bench_json.Str s.structure);
                   ("threads", Bench_json.Num (float_of_int c.threads));
                   ( "extractions",
                     Bench_json.Num (float_of_int c.stats.extractions) );
                   ( "empty_returns",
                     Bench_json.Num (float_of_int c.stats.empty_returns) );
                   ( "unmatched",
                     Bench_json.Num (float_of_int c.stats.unmatched) );
                   ("mean_rank_error", Bench_json.Num c.stats.mean_error);
                   ( "max_rank_error",
                     Bench_json.Num (float_of_int c.stats.max_error) );
                 ])
             s.cells)
         results)
  in
  match doc with
  | Bench_json.Obj kvs -> Bench_json.Obj (kvs @ [ ("rank", rank_json) ])
  | other -> other
