(** First-class priority-queue handles, so the experiment drivers can
    treat every structure uniformly. Keys are [int], as in the paper's
    microbenchmarks. *)

type t = {
  name : string;  (** display name, matching the paper's Fig. 2 legend *)
  insert : int -> unit;
  insert_many : int list -> unit;
      (** batched insert; the handle sorts the batch, structures without
          a native batched path degrade to element-wise [insert] *)
  extract_min : unit -> int option;
  extract_many : unit -> int list;
      (** structures without a native extract-many degrade to a singleton
          [extract_min] *)
  extract_approx : unit -> int option;
      (** probabilistic extract-min (mounds only); structures without a
          native variant degrade to the exact [extract_min] *)
  try_insert : int -> bool;
      (** one bounded insertion pass (mounds); structures without a
          native variant degrade to [insert] and always succeed *)
  insert_until : deadline:int -> int -> unit Mound.Intf.outcome;
      (** deadline-checking insert (mounds); others degrade to the
          unbounded [insert] and always report [Ok] *)
  extract_min_until : deadline:int -> int option Mound.Intf.outcome;
      (** deadline-checking extract (mounds); others degrade to
          [extract_min] *)
  size : unit -> int;  (** quiescent element count *)
  check : unit -> bool;  (** quiescent invariant check *)
  ops : unit -> Mound.Stats.Ops.t option;
      (** dynamic progress counters, for the structures that keep them *)
}

type maker = { make : capacity:int -> t }
(** Deferred constructor; [capacity] bounds the fixed-size array
    structures (Hunt heap, STM heap, coarse heap) and is ignored by the
    unbounded ones. *)

val degraded_until :
  insert:(int -> unit) ->
  extract_min:(unit -> int option) ->
  (int -> bool)
  * (deadline:int -> int -> unit Mound.Intf.outcome)
  * (deadline:int -> int option Mound.Intf.outcome)
(** [(try_insert, insert_until, extract_min_until)] for a structure
    without native deadline support: the unbounded operations under the
    new names, always succeeding. *)

(** Every structure instantiated over one runtime. *)
module Of_runtime (_ : Runtime.S) : sig
  val mound_lock : maker
  val mound_lf : maker

  val multiqueue :
    ?c:int -> ?stickiness:int -> ?queues:int -> domains:int -> unit -> maker
  (** Relaxed MultiQueue over [c·domains] (default [c = 2], or exactly
      [queues]) try-locked sequential mounds with two-choice delete-min
      and sticky queue selection. [domains] should be the peak thread
      count the handle will see — the queue count is fixed at creation.
      The handle name stays ["MultiQueue"] across configurations so
      bench baselines compare across sweeps. *)

  val hunt : maker
  val skiplist : maker
  val skiplist_lock : maker
  val stm_heap : maker
  val coarse : maker

  val paper_set : maker list
  (** The four structures of the paper's Fig. 2, in its legend order. *)

  val extended_set : maker list
  (** [paper_set] plus the coarse-lock, STM-heap and lock-based-skiplist
      ablations. *)
end

val seq : maker
(** The sequential mound oracle behind the uniform handle. NOT
    thread-safe — benchmark pipelines must run it only at one thread
    (single-thread reference row). *)

(** On real OCaml domains. *)
module On_real : module type of Of_runtime (Runtime.Real)

(** On the virtual-time simulator. *)
module On_sim : module type of Of_runtime (Sim.Runtime)
